#include "retro/prefetch_scheduler.h"

#include <algorithm>

#include "common/clock.h"

namespace rql::retro {

PrefetchScheduler::PrefetchScheduler(SnapshotStore* store, Options options)
    : store_(store), options_(std::move(options)) {
  const int n = std::max(1, options_.workers);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  // Register for consumption callbacks only once the workers exist; from
  // here on demand readers may call OnArchivedPageServed concurrently.
  store_->set_prefetch_tracker(this);
}

PrefetchScheduler::~PrefetchScheduler() { Shutdown(); }

void PrefetchScheduler::Schedule(SnapshotId snap) {
  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_ || jobs_.count(snap) != 0) return;
  auto job = std::make_shared<Job>();
  job->snap = snap;
  jobs_[snap] = job;
  queue_.push_back(std::move(job));
  work_cv_.notify_one();
}

PrefetchScheduler::JobReport PrefetchScheduler::Cancel(SnapshotId snap) {
  return Finish(snap, /*keep_error=*/false);
}

PrefetchScheduler::JobReport PrefetchScheduler::Collect(SnapshotId snap) {
  return Finish(snap, /*keep_error=*/true);
}

PrefetchScheduler::JobReport PrefetchScheduler::Finish(SnapshotId snap,
                                                       bool keep_error) {
  std::shared_ptr<Job> job;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = jobs_.find(snap);
    if (it == jobs_.end()) return JobReport{};
    job = it->second;
    jobs_.erase(it);
    job->cancel.store(true, std::memory_order_release);
    // Still queued: it never reached a worker, so finish it in place —
    // nothing was planned or issued, nothing to wait for.
    auto qit = std::find(queue_.begin(), queue_.end(), job);
    if (qit != queue_.end()) {
      queue_.erase(qit);
      job->done = true;
    }
    // Otherwise a worker owns it; the cancel token stops further issue
    // after the at-most-one in-flight page, bounding this wait by a single
    // archive read.
    done_cv_.wait(lock, [&job] { return job->done; });
  }
  JobReport report;
  report.scheduled = true;
  report.issued = job->issued;
  report.cancelled = job->cancelled;
  report.overlap_us = job->overlap_us;
  if (keep_error) report.error = job->error;
  return report;
}

int64_t PrefetchScheduler::TakeHits() {
  std::lock_guard<std::mutex> lock(track_mu_);
  int64_t hits = hits_;
  hits_ = 0;
  return hits;
}

void PrefetchScheduler::Drain(SnapshotId snap) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(snap);
  if (it == jobs_.end()) return;
  std::shared_ptr<Job> job = it->second;
  done_cv_.wait(lock, [&job] { return job->done; });
}

int64_t PrefetchScheduler::TakeWasted() {
  std::lock_guard<std::mutex> lock(track_mu_);
  int64_t wasted = static_cast<int64_t>(loaded_.size());
  loaded_.clear();
  return wasted;
}

void PrefetchScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [snap, job] : jobs_) {
      job->cancel.store(true, std::memory_order_release);
    }
    // Queued-but-never-started jobs finish here so a Finish already
    // waiting on them is released.
    for (const std::shared_ptr<Job>& job : queue_) job->done = true;
    queue_.clear();
  }
  work_cv_.notify_all();
  done_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.clear();
  }
  // Deregister only after the workers are gone: past this line no thread
  // of this scheduler touches the store, so the engine may destroy it
  // before the run returns without an Env/file use-after-free window.
  store_->clear_prefetch_tracker(this);
}

void PrefetchScheduler::OnArchivedPageServed(uint64_t pagelog_offset) {
  std::lock_guard<std::mutex> lock(track_mu_);
  if (loaded_.erase(pagelog_offset) != 0) ++hits_;
}

void PrefetchScheduler::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // only reachable on shutdown
      job = queue_.front();
      queue_.pop_front();
    }
    if (!job->cancel.load(std::memory_order_acquire)) RunJob(job.get());
    {
      std::lock_guard<std::mutex> lock(mu_);
      job->done = true;
    }
    done_cv_.notify_all();
  }
}

void PrefetchScheduler::RunJob(Job* job) {
  const int64_t start_us = NowMicros();
  uint64_t epoch = 0;
  std::vector<uint64_t> plan;
  // A planning failure is dropped silently on purpose: the foreground
  // OpenSnapshot re-derives the same SPT and surfaces the same error on
  // the synchronous path, so nothing is lost — the iteration just runs
  // unprefetched.
  if (Plan(job, &epoch, &plan).ok()) {
    for (size_t i = 0; i < plan.size(); ++i) {
      if (job->cancel.load(std::memory_order_acquire) ||
          store_->truncate_epoch() != epoch) {
        // Epoch moved: compaction rewrote the archive, these offsets no
        // longer name the bytes the plan meant.
        job->cancelled += static_cast<int64_t>(plan.size() - i);
        break;
      }
      const uint64_t offset = plan[i];
      // Claim the offset before the load so a demand read that coalesces
      // onto our in-flight fetch counts as a hit; release the claim below
      // if the load turns out not to be ours.
      bool claimed;
      {
        std::lock_guard<std::mutex> lock(track_mu_);
        claimed = loaded_.insert(offset).second;
      }
      int64_t fetches = 0;
      storage::BufferPool::GetOutcome outcome;
      auto loader = store_->MakeArchiveLoader(&fetches, /*prefetch=*/true);
      Result<storage::PinnedPage> r = store_->snapshot_cache_.Get(
          offset, loader, &outcome, storage::BufferPool::Admission::kPrefetch);
      // Same bounded-retry policy as the demand path, but the retries are
      // not folded into the store's iteration stats: background attempts
      // must not distort the foreground run's attribution.
      int attempts = store_->archive_read_retries_;
      while (!r.ok() && attempts-- > 0) {
        outcome = storage::BufferPool::GetOutcome{};
        r = store_->snapshot_cache_.Get(
            offset, loader, &outcome,
            storage::BufferPool::Admission::kPrefetch);
      }
      if (r.ok() && outcome.loaded) {
        ++job->issued;
      } else if (claimed) {
        // Resident already, someone else's load, or an error: not a page
        // we fetched ahead, so the claim would inflate the hit count.
        std::lock_guard<std::mutex> lock(track_mu_);
        loaded_.erase(offset);
      }
      if (!r.ok()) {
        // Park the first failure for Collect; the consuming iteration
        // surfaces it exactly as the synchronous batched pass would have.
        job->error = r.status();
        job->cancelled += static_cast<int64_t>(plan.size() - i - 1);
        break;
      }
    }
  }
  job->overlap_us = NowMicros() - start_us;
}

Status PrefetchScheduler::Plan(const Job* job, uint64_t* epoch,
                               std::vector<uint64_t>* plan) {
  // plan_mu_ serializes workers on the single private cursor; the store's
  // reader lock keeps the Maplog and latest-snapshot mark stable.
  std::lock_guard<std::mutex> plan_lock(plan_mu_);
  std::shared_lock<std::shared_mutex> store_lock(store_->mu_);
  *epoch = store_->truncate_epoch();
  if (job->snap == kNoSnapshot || job->snap > store_->latest_snap_) {
    return Status::InvalidArgument("prefetch: snapshot not declared");
  }
  // Local build stats: background planning never pollutes the run's
  // SPT-build attribution.
  SptBuildStats build;
  int64_t delta_entries = 0;
  RQL_RETURN_IF_ERROR(
      cursor_.Seek(*store_->maplog_, job->snap, &build, &delta_entries));
  const SnapshotPageTable& table = cursor_.table();

  std::unordered_set<uint64_t> planned;
  auto want = [&](uint64_t offset) {
    if (store_->snapshot_cache_.Contains(offset)) return false;
    if (options_.is_decoded && options_.is_decoded(offset)) return false;
    return planned.insert(offset).second;
  };

  // Delta pages — the ones whose mapping changed since the previous step —
  // are certainly not warm from earlier iterations, so they go ahead of
  // the residual sweep and survive a budget clip.
  std::vector<uint64_t> head;
  if (cursor_.last_delta_valid()) {
    for (storage::PageId id : cursor_.last_delta()) {
      auto it = table.find(id);
      if (it != table.end() && want(it->second)) head.push_back(it->second);
    }
  }
  std::vector<uint64_t> tail;
  tail.reserve(table.size());
  for (const auto& [id, offset] : table) {
    (void)id;
    if (want(offset)) tail.push_back(offset);
  }
  // Offset order within each group: the archive's sequential-read regime.
  std::sort(head.begin(), head.end());
  std::sort(tail.begin(), tail.end());
  plan->clear();
  plan->reserve(head.size() + tail.size());
  plan->insert(plan->end(), head.begin(), head.end());
  plan->insert(plan->end(), tail.begin(), tail.end());
  // The clip drops the probably-resident tail of the sweep; clipped pages
  // are not counted as cancelled — the budget is policy, not interruption.
  if (options_.budget_pages > 0 &&
      plan->size() > static_cast<size_t>(options_.budget_pages)) {
    plan->resize(static_cast<size_t>(options_.budget_pages));
  }
  return Status::OK();
}

}  // namespace rql::retro

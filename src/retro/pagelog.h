#ifndef RQL_RETRO_PAGELOG_H_
#define RQL_RETRO_PAGELOG_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/cleanup.h"
#include "common/status.h"
#include "storage/env.h"
#include "storage/page.h"

namespace rql::retro {

/// Snapshot archive representation.
enum class PagelogMode {
  /// Every pre-state is stored as a full page (Retro's baseline).
  kFull,
  /// Pre-states are stored as byte diffs against the page's previously
  /// archived version when profitable — the adaptive page-diff approach of
  /// Thresher (Shrira & Xu, USENIX ATC'06) the paper cites as the space /
  /// reconstruction-cost trade-off. Reading a diffed pre-state walks the
  /// diff chain back to a full page; chains are bounded by
  /// `max_diff_chain`.
  kDiff,
};

/// The on-disk log-structured snapshot archive. Retro copies out the
/// pre-modification state (pre-state) of each page the first time the page
/// is modified after a snapshot declaration and appends it here. Records
/// are immutable once written; snapshots reference them by byte offset.
///
/// Record immutability is what lets concurrent snapshot readers call Read
/// without any engine lock: Read touches only the file (whose
/// implementations serialize against a racing Append's buffer growth),
/// while Append's counter updates stay under the snapshot store's writer
/// lock.
///
/// Record layout:
///   u8  type (1 = full, 2 = diff)
///   u8  depth (length of the diff chain below this record)
///   u16 range_count (diff only)
///   u32 payload_len
///   u64 base_offset (diff only; the record this diff applies to)
///   payload: full page bytes, or range_count x (u16 off, u16 len)
///            followed by the concatenated replacement bytes
class Pagelog {
 public:
  static Result<std::unique_ptr<Pagelog>> Open(storage::Env* env,
                                               const std::string& name);

  /// Appends a full pre-state page; returns its record offset.
  Result<uint64_t> AppendFull(const storage::Page& page);

  /// Appends `page`, stored as a diff against the record at `base_offset`
  /// (whose content is `base`) when the diff is small enough and the chain
  /// depth permits; falls back to a full page otherwise. Returns the new
  /// record's offset.
  Result<uint64_t> AppendDiff(const storage::Page& page,
                              uint64_t base_offset,
                              const storage::Page& base);

  /// Reconstructs the pre-state at `offset`, walking diff chains.
  /// `records_fetched`, when non-null, is incremented once per record
  /// touched — the I/O units a cold read of this pre-state costs.
  Status Read(uint64_t offset, storage::Page* page,
              int64_t* records_fetched = nullptr) const;

  /// Diff-chain depth of the record at `offset` (0 for full pages).
  Result<int> DepthAt(uint64_t offset) const;

  /// Flushes appended records to stable storage. The snapshot store calls
  /// this before every page-store commit becomes durable (archive-ahead
  /// ordering), so a crash can only lose records nothing references yet.
  Status Sync() { return file_->Sync(); }

  /// Total archive size in bytes. Grows with history length, limited only
  /// by storage — the paper's motivation for the cold-cache assumption.
  uint64_t SizeBytes() const { return file_->Size(); }

  /// Number of page-sized units the archive occupies (space reporting).
  uint64_t page_count() const {
    return (file_->Size() + storage::kPageSize - 1) / storage::kPageSize;
  }

  uint64_t record_count() const { return record_count_; }
  uint64_t full_record_count() const { return full_records_; }
  uint64_t diff_record_count() const { return diff_records_; }

  /// Registers observability gauges on `registry` under `prefix`:
  /// `<prefix>.records`, `.full_records`, `.diff_records`, `.size_bytes`,
  /// `.pages`. The gauges read the log directly (no copied state), but
  /// they capture `this`: the returned handle removes them on destruction
  /// and MUST NOT outlive the log or the registry.
  template <typename Registry>
  [[nodiscard]] ScopedCleanup RegisterMetrics(Registry* registry,
                                              const std::string& prefix) const {
    const Pagelog* log = this;
    registry->SetGauge(prefix + ".records", [log] {
      return static_cast<int64_t>(log->record_count());
    });
    registry->SetGauge(prefix + ".full_records", [log] {
      return static_cast<int64_t>(log->full_record_count());
    });
    registry->SetGauge(prefix + ".diff_records", [log] {
      return static_cast<int64_t>(log->diff_record_count());
    });
    registry->SetGauge(prefix + ".size_bytes", [log] {
      return static_cast<int64_t>(log->SizeBytes());
    });
    registry->SetGauge(prefix + ".pages", [log] {
      return static_cast<int64_t>(log->page_count());
    });
    return ScopedCleanup(
        [registry, prefix] { registry->RemoveGaugesWithPrefix(prefix + "."); });
  }

  /// Longest diff chain before a full page is forced (kDiff mode).
  int max_diff_chain() const { return max_diff_chain_; }
  void set_max_diff_chain(int depth) { max_diff_chain_ = depth; }

  /// A diff larger than this many payload bytes is stored as a full page.
  static constexpr uint32_t kDiffPayloadLimit = storage::kPageSize / 2;

 private:
  explicit Pagelog(std::unique_ptr<storage::File> file)
      : file_(std::move(file)) {}

  Status ScanExisting();

  /// Appends `record`, truncating back any torn tail on failure.
  Result<uint64_t> AppendRecord(const std::string& record);

  std::unique_ptr<storage::File> file_;
  uint64_t record_count_ = 0;
  uint64_t full_records_ = 0;
  uint64_t diff_records_ = 0;
  int max_diff_chain_ = 8;
};

}  // namespace rql::retro

#endif  // RQL_RETRO_PAGELOG_H_

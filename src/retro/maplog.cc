#include "retro/maplog.h"

#include <algorithm>
#include <unordered_set>

#include "common/clock.h"

namespace rql::retro {

Result<std::unique_ptr<Maplog>> Maplog::Open(storage::Env* env,
                                             const std::string& name) {
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                       env->OpenFile(name));
  uint64_t size = file->Size();
  uint64_t aligned = size - size % sizeof(MaplogEntry);
  if (aligned != size) {
    // A partial trailing entry is an interrupted append: entries are
    // synced before any dependent commit, so nothing references the tail —
    // recovery drops it.
    RQL_RETURN_IF_ERROR(file->Truncate(aligned));
  }
  auto log = std::unique_ptr<Maplog>(new Maplog(std::move(file)));
  log->entry_count_ = log->file_->Size() / sizeof(MaplogEntry);
  RQL_RETURN_IF_ERROR(log->LoadMirror());
  return log;
}

Status Maplog::LoadMirror() {
  entries_.resize(entry_count_);
  if (entry_count_ > 0) {
    RQL_RETURN_IF_ERROR(file_->Read(
        0, entry_count_ * sizeof(MaplogEntry),
        reinterpret_cast<char*>(entries_.data())));
  }
  for (uint64_t i = 0; i < entry_count_; ++i) {
    if (entries_[i].type == MaplogEntry::kSnapshotMark) {
      if (entries_[i].end_snap != snap_mark_index_.size() + 1) {
        return Status::Corruption("maplog snapshot marks out of order");
      }
      snap_mark_index_.push_back(i);
    } else if (entries_[i].type == MaplogEntry::kTruncate) {
      earliest_ = std::max(earliest_, entries_[i].end_snap);
    }
  }
  return Status::OK();
}

Status Maplog::AppendEntry(const MaplogEntry& entry) {
  uint64_t pre_size = file_->Size();
  uint64_t offset = 0;
  Status s = file_->Append(sizeof(MaplogEntry),
                           reinterpret_cast<const char*>(&entry), &offset);
  if (!s.ok()) {
    // A torn append may have left a partial entry; drop it (best effort)
    // so the log stays entry-aligned for later appends.
    (void)file_->Truncate(pre_size);
    return s;
  }
  entries_.push_back(entry);
  ++entry_count_;
  return Status::OK();
}

Status Maplog::AppendCapture(storage::PageId page, SnapshotId start,
                             SnapshotId end, uint64_t pagelog_offset) {
  MaplogEntry entry;
  entry.type = MaplogEntry::kCapture;
  entry.page = page;
  entry.start_snap = start;
  entry.end_snap = end;
  entry.pagelog_offset = pagelog_offset;
  return AppendEntry(entry);
}

Status Maplog::AppendSnapshotMark(SnapshotId snap) {
  if (snap != snap_mark_index_.size() + 1) {
    return Status::InvalidArgument("snapshot marks must be sequential");
  }
  MaplogEntry entry;
  entry.type = MaplogEntry::kSnapshotMark;
  entry.end_snap = snap;
  uint64_t mark_index = entry_count_;
  RQL_RETURN_IF_ERROR(AppendEntry(entry));
  snap_mark_index_.push_back(mark_index);
  return Status::OK();
}

Status Maplog::AppendTruncate(SnapshotId keep_from) {
  MaplogEntry entry;
  entry.type = MaplogEntry::kTruncate;
  entry.end_snap = keep_from;
  earliest_ = std::max(earliest_, keep_from);
  return AppendEntry(entry);
}

Status Maplog::AppendAlloc(storage::PageId page, SnapshotId latest) {
  MaplogEntry entry;
  entry.type = MaplogEntry::kAlloc;
  entry.page = page;
  entry.end_snap = latest;
  return AppendEntry(entry);
}

void Maplog::ScanEntries(const MaplogEntry* entries, size_t count,
                         SnapshotId snap, SnapshotPageTable* spt) const {
  for (size_t i = 0; i < count; ++i) {
    const MaplogEntry& entry = entries[i];
    if (entry.type != MaplogEntry::kCapture) continue;
    if (entry.start_snap > snap || entry.end_snap < snap) continue;
    spt->emplace(entry.page, entry.pagelog_offset);
  }
}

Status Maplog::BuildSptLinear(SnapshotId snap, SnapshotPageTable* spt,
                              SptBuildStats* stats) const {
  uint64_t begin = snap_mark_index_[snap - 1];
  ScanEntries(entries_.data() + begin, entry_count_ - begin, snap, spt);
  if (stats != nullptr) {
    int64_t scanned = static_cast<int64_t>(entry_count_ - begin);
    stats->entries_scanned += scanned;
    stats->maplog_pages_read +=
        (scanned + kEntriesPerPage - 1) / kEntriesPerPage;
  }
  return Status::OK();
}

const std::vector<MaplogEntry>& Maplog::GetRun(uint32_t level,
                                               SnapshotId start) const {
  std::lock_guard<std::mutex> lock(runs_mu_);
  return GetRunLocked(level, start);
}

const std::vector<MaplogEntry>& Maplog::GetRunLocked(uint32_t level,
                                                     SnapshotId start) const {
  uint64_t key = (static_cast<uint64_t>(level) << 32) | start;
  auto it = runs_.find(key);
  if (it != runs_.end()) return it->second;

  std::vector<MaplogEntry> run;
  if (level == 0) {
    uint64_t begin = EpochBegin(start);
    uint64_t end = EpochEnd(start);
    run.reserve(end - begin);
    for (uint64_t i = begin; i < end; ++i) {
      if (entries_[i].type == MaplogEntry::kCapture) {
        run.push_back(entries_[i]);
      }
    }
  } else {
    const std::vector<MaplogEntry>& left = GetRunLocked(level - 1, start);
    const std::vector<MaplogEntry>& right =
        GetRunLocked(level - 1, start + (1u << (level - 1)));
    run.reserve(left.size() + right.size());
    std::unordered_set<storage::PageId> seen;
    seen.reserve(left.size() + right.size());
    for (const std::vector<MaplogEntry>* half : {&left, &right}) {
      for (const MaplogEntry& entry : *half) {
        if (seen.insert(entry.page).second) run.push_back(entry);
      }
    }
  }
  return runs_.emplace(key, std::move(run)).first->second;
}

Status Maplog::BuildSptSkippy(SnapshotId snap, SnapshotPageTable* spt,
                              SptBuildStats* stats) const {
  int64_t scanned = 0;
  int64_t pages = 0;
  SnapshotId e = snap;
  SnapshotId last = latest();
  while (e <= last) {
    if (e == last) {
      // The open epoch (after the most recent mark) is still growing; scan
      // it directly without memoizing.
      uint64_t begin = EpochBegin(e);
      uint64_t count = entry_count_ - begin;
      ScanEntries(entries_.data() + begin, count, snap, spt);
      scanned += static_cast<int64_t>(count);
      pages += (static_cast<int64_t>(count) + kEntriesPerPage - 1) /
               kEntriesPerPage;
      break;
    }
    // Largest aligned run of closed epochs starting at e.
    uint32_t level = 0;
    while ((static_cast<uint64_t>(e - 1) % (1ull << (level + 1))) == 0 &&
           e + (1u << (level + 1)) - 1 <= last - 1) {
      ++level;
    }
    const std::vector<MaplogEntry>& run = GetRun(level, e);
    // The run keeps the first capture per page, so "first match wins"
    // across runs remains correct.
    for (const MaplogEntry& entry : run) {
      if (entry.start_snap > snap || entry.end_snap < snap) continue;
      spt->emplace(entry.page, entry.pagelog_offset);
    }
    scanned += static_cast<int64_t>(run.size());
    pages += std::max<int64_t>(
        1, (static_cast<int64_t>(run.size()) + kEntriesPerPage - 1) /
               kEntriesPerPage);
    e += 1u << level;
  }
  if (stats != nullptr) {
    stats->entries_scanned += scanned;
    stats->maplog_pages_read += pages;
  }
  return Status::OK();
}

Status Maplog::PrewarmSkippy() const {
  if (latest() == kNoSnapshot) return Status::OK();
  // Building SPT(1) visits (and memoizes) the maximal runs; the remaining
  // alignments are covered by building from a few more start points.
  SnapshotPageTable scratch;
  SptBuildStats stats;
  for (SnapshotId s = 1; s <= latest(); s = s * 2 + 1) {
    scratch.clear();
    RQL_RETURN_IF_ERROR(BuildSptSkippy(s, &scratch, &stats));
  }
  return Status::OK();
}

Status Maplog::BuildSpt(SnapshotId snap, SnapshotPageTable* spt,
                        uint64_t* resume_index, SptBuildStats* stats) const {
  if (snap == kNoSnapshot || snap > snap_mark_index_.size()) {
    return Status::NotFound("unknown snapshot id " + std::to_string(snap));
  }
  if (snap < earliest_) {
    return Status::NotFound("snapshot " + std::to_string(snap) +
                            " has been truncated (earliest is " +
                            std::to_string(earliest_) + ")");
  }
  spt->clear();
  int64_t start_us = NowMicros();
  Status s = use_skippy_ ? BuildSptSkippy(snap, spt, stats)
                         : BuildSptLinear(snap, spt, stats);
  *resume_index = entry_count_;
  if (stats != nullptr) stats->cpu_us += NowMicros() - start_us;
  return s;
}

Status Maplog::RefreshSpt(SnapshotId snap, SnapshotPageTable* spt,
                          uint64_t* resume_index, SptBuildStats* stats) const {
  int64_t start_us = NowMicros();
  int64_t scanned = 0;
  for (uint64_t index = *resume_index; index < entry_count_; ++index) {
    const MaplogEntry& entry = entries_[index];
    ++scanned;
    if (entry.type != MaplogEntry::kCapture) continue;
    if (entry.start_snap > snap || entry.end_snap < snap) continue;
    spt->emplace(entry.page, entry.pagelog_offset);
  }
  *resume_index = entry_count_;
  if (stats != nullptr) {
    stats->entries_scanned += scanned;
    stats->maplog_pages_read += (scanned + kEntriesPerPage - 1) /
                                kEntriesPerPage;
    stats->cpu_us += NowMicros() - start_us;
  }
  return Status::OK();
}

Status SptCursor::Seek(const Maplog& log, SnapshotId snap,
                       SptBuildStats* stats, int64_t* delta_entries) {
  if (snap == kNoSnapshot || snap > log.snap_mark_index_.size()) {
    return Status::NotFound("unknown snapshot id " + std::to_string(snap));
  }
  if (snap < log.earliest_) {
    return Status::NotFound("snapshot " + std::to_string(snap) +
                            " has been truncated (earliest is " +
                            std::to_string(log.earliest_) + ")");
  }
  if (snap_ == kNoSnapshot || snap < snap_) return Rebase(log, snap, stats);
  int64_t start_us = NowMicros();
  Advance(log, snap, stats, delta_entries);
  if (stats != nullptr) stats->cpu_us += NowMicros() - start_us;
  return Status::OK();
}

Status SptCursor::Rebase(const Maplog& log, SnapshotId snap,
                         SptBuildStats* stats) {
  int64_t start_us = NowMicros();
  chains_.clear();
  wake_.clear();
  table_.clear();
  last_delta_.clear();
  last_delta_valid_ = false;
  snap_ = snap;
  // Every capture at or after snap's mark has end_snap >= snap (it was
  // appended in some epoch e >= snap), so the whole suffix belongs in the
  // chains and no future rewind below snap is possible.
  uint64_t begin = log.snap_mark_index_[snap - 1];
  for (uint64_t i = begin; i < log.entry_count_; ++i) {
    const MaplogEntry& e = log.entries_[i];
    if (e.type != MaplogEntry::kCapture) continue;
    chains_[e.page].caps.push_back(
        {e.start_snap, e.end_snap, e.pagelog_offset});
  }
  ingested_ = log.entry_count_;
  for (const auto& [page, chain] : chains_) Reposition(page);
  if (stats != nullptr) {
    int64_t scanned = static_cast<int64_t>(log.entry_count_ - begin);
    stats->entries_scanned += scanned;
    stats->maplog_pages_read +=
        (scanned + Maplog::kEntriesPerPage - 1) / Maplog::kEntriesPerPage;
    stats->cpu_us += NowMicros() - start_us;
  }
  return Status::OK();
}

void SptCursor::Ingest(const Maplog& log,
                       std::vector<storage::PageId>* reawakened) {
  for (uint64_t i = ingested_; i < log.entry_count_; ++i) {
    const MaplogEntry& e = log.entries_[i];
    if (e.type != MaplogEntry::kCapture) continue;
    Chain& chain = chains_[e.page];
    // An exhausted chain has no pending wake entry, so schedule the page
    // for repositioning now that it has captures again. (Covers brand-new
    // pages too: next == caps.size() == 0 before the push.)
    if (chain.next == chain.caps.size()) reawakened->push_back(e.page);
    chain.caps.push_back({e.start_snap, e.end_snap, e.pagelog_offset});
  }
  ingested_ = log.entry_count_;
}

void SptCursor::Reposition(storage::PageId page) {
  Chain& chain = chains_[page];
  while (chain.next < chain.caps.size() &&
         chain.caps[chain.next].end < snap_) {
    ++chain.next;
  }
  if (chain.next == chain.caps.size()) {
    table_.erase(page);  // shared with the current database from here on
    return;
  }
  const Capture& cap = chain.caps[chain.next];
  if (cap.start <= snap_) {
    table_[page] = cap.offset;
    wake_[cap.end + 1].push_back(page);
  } else {
    // Allocation gap: the page is absent from SPTs until cap.start.
    table_.erase(page);
    wake_[cap.start].push_back(page);
  }
}

void SptCursor::Advance(const Maplog& log, SnapshotId snap,
                        SptBuildStats* stats, int64_t* delta_entries) {
  std::vector<storage::PageId> reawakened;
  if (log.entry_count_ > ingested_) Ingest(log, &reawakened);
  if (snap > snap_) {
    // Charge the physical analog of the incremental build: the log delta
    // between the two declaration marks.
    int64_t delta = static_cast<int64_t>(log.snap_mark_index_[snap - 1] -
                                         log.snap_mark_index_[snap_ - 1]);
    if (delta_entries != nullptr) *delta_entries += delta;
    if (stats != nullptr) {
      stats->entries_scanned += delta;
      stats->maplog_pages_read +=
          (delta + Maplog::kEntriesPerPage - 1) / Maplog::kEntriesPerPage;
    }
  }
  snap_ = snap;
  std::unordered_set<storage::PageId> pending;
  while (!wake_.empty() && wake_.begin()->first <= snap) {
    for (storage::PageId page : wake_.begin()->second) pending.insert(page);
    wake_.erase(wake_.begin());
  }
  for (storage::PageId page : reawakened) pending.insert(page);
  last_delta_.assign(pending.begin(), pending.end());
  last_delta_valid_ = true;
  for (storage::PageId page : pending) Reposition(page);
}

Status Maplog::RecoverModEpochs(
    std::unordered_map<storage::PageId, SnapshotId>* mod_epochs,
    SnapshotId* latest_snapshot,
    std::unordered_map<storage::PageId, uint64_t>* last_offsets) const {
  mod_epochs->clear();
  *latest_snapshot = kNoSnapshot;
  if (last_offsets != nullptr) last_offsets->clear();
  for (const MaplogEntry& entry : entries_) {
    switch (entry.type) {
      case MaplogEntry::kSnapshotMark:
        *latest_snapshot = entry.end_snap;
        break;
      case MaplogEntry::kCapture:
        // After a capture the page's content belongs to the epoch following
        // snapshot end_snap.
        (*mod_epochs)[entry.page] = entry.end_snap;
        if (last_offsets != nullptr) {
          (*last_offsets)[entry.page] = entry.pagelog_offset;
        }
        break;
      case MaplogEntry::kAlloc:
        (*mod_epochs)[entry.page] = entry.end_snap;
        break;
      case MaplogEntry::kTruncate:
        break;  // earliest_ handled at load
      default:
        return Status::Corruption("bad maplog entry type");
    }
  }
  return Status::OK();
}

}  // namespace rql::retro

#ifndef RQL_RETRO_MAPLOG_H_
#define RQL_RETRO_MAPLOG_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/env.h"
#include "storage/page.h"

namespace rql::retro {

/// Snapshot identifier. Snapshots are numbered 1, 2, 3, ... in declaration
/// order; 0 means "no snapshot" / the current state.
using SnapshotId = uint32_t;
inline constexpr SnapshotId kNoSnapshot = 0;

/// One fixed-width record in the Maplog.
struct MaplogEntry {
  enum Type : uint8_t {
    /// A pre-state capture: `page` as of snapshots [start_snap, end_snap]
    /// lives in the Pagelog at `pagelog_offset`.
    kCapture = 1,
    /// Declaration boundary for snapshot `end_snap`; marks where the scan
    /// for that snapshot's page table begins.
    kSnapshotMark = 2,
    /// `page` was (re)allocated during the epoch following snapshot
    /// `end_snap`; used only to recover modification epochs on reopen.
    kAlloc = 3,
    /// History before snapshot `end_snap` has been truncated away
    /// (TruncateHistory); snapshots below it are no longer reconstructable.
    kTruncate = 4,
  };

  uint8_t type = 0;
  uint8_t pad[3] = {};
  storage::PageId page = storage::kInvalidPageId;
  SnapshotId start_snap = 0;
  SnapshotId end_snap = 0;
  uint64_t pagelog_offset = 0;
};

static_assert(sizeof(MaplogEntry) == 24);

/// Aggregate cost of one snapshot-page-table construction; feeds the
/// "SPT build" bar in the paper's cost breakdowns (Figures 8-13).
struct SptBuildStats {
  int64_t entries_scanned = 0;
  int64_t maplog_pages_read = 0;  // entries_scanned rounded up to log pages
  int64_t cpu_us = 0;
};

/// The snapshot page table: for every page captured after snapshot S was
/// declared, its Pagelog location as of S. Pages absent from the table are
/// shared with the current database state.
using SnapshotPageTable = std::unordered_map<storage::PageId, uint64_t>;

/// The on-disk log-structured list of page->Pagelog-location mappings
/// (Shaull et al., "Skippy", SIGMOD'08). Mappings are appended in capture
/// order, so entries relevant to snapshot S form a suffix starting at S's
/// declaration mark; an efficient forward scan of that suffix constructs
/// SPT(S).
///
/// Two scan strategies are provided:
///   * linear — read the whole suffix (the naive baseline);
///   * Skippy skip levels (the default) — precomputed runs of 2^k epochs
///     keeping only the first mapping per page, so a scan reads each
///     page's mapping roughly once per level instead of once per
///     overwrite, giving the paper's ~n log n scan length.
/// An in-memory mirror of the log avoids per-entry file reads; the
/// simulated Maplog I/O cost is still charged per log page scanned.
class Maplog {
 public:
  static Result<std::unique_ptr<Maplog>> Open(storage::Env* env,
                                              const std::string& name);

  /// Appends a capture record. `start..end` is the contiguous range of
  /// snapshot ids whose as-of state of `page` is the recorded pre-state.
  Status AppendCapture(storage::PageId page, SnapshotId start, SnapshotId end,
                       uint64_t pagelog_offset);

  /// Appends the declaration boundary for snapshot `snap`.
  Status AppendSnapshotMark(SnapshotId snap);

  /// Appends an allocation record for `page` in the epoch after `latest`.
  Status AppendAlloc(storage::PageId page, SnapshotId latest);

  /// Appends a truncation record: snapshots below `keep_from` are gone.
  Status AppendTruncate(SnapshotId keep_from);

  /// The oldest snapshot that can still be opened (1 if never truncated).
  SnapshotId earliest() const { return earliest_; }

  /// Read-only view of the in-memory mirror (history compaction).
  const std::vector<MaplogEntry>& entries() const { return entries_; }

  /// Builds SPT(snap) by scanning forward from snap's declaration mark.
  /// Also returns in `resume_index` the log index scans should resume from
  /// when refreshing the table after later captures.
  Status BuildSpt(SnapshotId snap, SnapshotPageTable* spt,
                  uint64_t* resume_index, SptBuildStats* stats) const;

  /// Extends `spt` with captures appended at or after `*resume_index`
  /// (exclusive of pages already mapped); advances `*resume_index`. Used to
  /// keep an open snapshot view consistent across interleaved updates.
  Status RefreshSpt(SnapshotId snap, SnapshotPageTable* spt,
                    uint64_t* resume_index, SptBuildStats* stats) const;

  /// Recovers per-page modification epochs: for each page, the id of the
  /// latest snapshot declared before the page's last recorded modification.
  /// Also recovers the number of declared snapshots and (optionally) each
  /// page's most recent Pagelog capture offset, used as the diff base in
  /// PagelogMode::kDiff.
  Status RecoverModEpochs(
      std::unordered_map<storage::PageId, SnapshotId>* mod_epochs,
      SnapshotId* latest_snapshot,
      std::unordered_map<storage::PageId, uint64_t>* last_offsets =
          nullptr) const;

  uint64_t entry_count() const { return entry_count_; }
  uint64_t SizeBytes() const { return file_->Size(); }

  /// Flushes appended entries to stable storage. Called (after
  /// Pagelog::Sync) before every page-store commit becomes durable, and
  /// after each snapshot declaration mark.
  Status Sync() { return file_->Sync(); }

  /// Selects the SPT scan strategy (default: Skippy skip levels).
  void set_use_skippy(bool use) { use_skippy_ = use; }
  bool use_skippy() const { return use_skippy_; }

  /// Materializes the skip-level runs for the whole current history. Retro
  /// maintains Skippy incrementally as snapshots are declared; this plays
  /// that role after opening an existing log, so the construction cost is
  /// not charged to the first query's SPT-build time.
  Status PrewarmSkippy() const;

  /// Entries per on-disk log page; used to convert scan lengths to I/O.
  static constexpr int64_t kEntriesPerPage =
      storage::kPageSize / sizeof(MaplogEntry);

 private:
  friend class SptCursor;

  explicit Maplog(std::unique_ptr<storage::File> file)
      : file_(std::move(file)) {}

  Status LoadMirror();
  Status AppendEntry(const MaplogEntry& entry);

  /// Number of declared snapshots (== number of marks).
  SnapshotId latest() const {
    return static_cast<SnapshotId>(snap_mark_index_.size());
  }

  /// Index of the first entry of epoch `s` (entries appended after
  /// snapshot s's declaration mark).
  uint64_t EpochBegin(SnapshotId s) const { return snap_mark_index_[s - 1] + 1; }
  /// One past the last entry of epoch `s`.
  uint64_t EpochEnd(SnapshotId s) const {
    return s < latest() ? snap_mark_index_[s] : entry_count_;
  }

  Status BuildSptLinear(SnapshotId snap, SnapshotPageTable* spt,
                        SptBuildStats* stats) const;
  Status BuildSptSkippy(SnapshotId snap, SnapshotPageTable* spt,
                        SptBuildStats* stats) const;

  /// The Skippy run covering epochs [start, start + 2^level), containing
  /// the first capture per page in log order. Memoized (thread-safe); only
  /// called for closed epochs (start + 2^level - 1 < latest()), so the
  /// returned reference stays valid and immutable after the memo lock is
  /// released.
  const std::vector<MaplogEntry>& GetRun(uint32_t level,
                                         SnapshotId start) const;
  /// Requires runs_mu_ (GetRun recurses through this form).
  const std::vector<MaplogEntry>& GetRunLocked(uint32_t level,
                                               SnapshotId start) const;

  void ScanEntries(const MaplogEntry* entries, size_t count, SnapshotId snap,
                   SnapshotPageTable* spt) const;

  std::unique_ptr<storage::File> file_;
  uint64_t entry_count_ = 0;
  // snap_mark_index_[s-1] = log index of snapshot s's declaration mark.
  std::vector<uint64_t> snap_mark_index_;
  // In-memory mirror of the on-disk log.
  std::vector<MaplogEntry> entries_;
  SnapshotId earliest_ = 1;
  bool use_skippy_ = true;
  // Memoized skip-level runs, keyed by (level << 32) | start. Guarded by
  // runs_mu_: concurrent SPT builds (parallel snapshot readers) memoize
  // into the same map. Runs are built for closed epochs only, so a cached
  // run never goes stale while the lock is dropped.
  mutable std::mutex runs_mu_;
  mutable std::unordered_map<uint64_t, std::vector<MaplogEntry>> runs_;
};

/// Incremental SPT construction over an ascending snapshot set (the RQL
/// iteration-setup amortization path). The first Seek performs one cold
/// suffix scan and organizes the captures into per-page chains; every
/// later Seek to a larger snapshot advances per-page chain cursors instead
/// of re-scanning the suffix, and is charged only the Maplog delta between
/// the two declaration marks — the entries a physical delta scan would
/// read. A chain whose captures are exhausted means the page is shared
/// with the current database and is evicted from the table.
///
/// Key invariant (why only chain-cursor advances are needed): for a given
/// page, capture ranges are appended in increasing [start, end] order and
/// are disjoint, so SPT(s+1) differs from SPT(s) only by (a) entries whose
/// range ended at s (evicted or moved to the page's next capture) and
/// (b) pages whose next capture's range begins at s+1 after an allocation
/// gap. Both are found via expiry/wake buckets keyed by snapshot id — no
/// log entries are touched except newly appended ones (Ingest).
class SptCursor {
 public:
  /// Positions the cursor at `snap`, leaving SPT(snap) in table(). An
  /// ascending seek advances incrementally; the first seek — or a seek to
  /// a smaller id — rebuilds cold with a linear suffix scan. Entries
  /// appended to the log since the last seek are ingested, so interleaved
  /// updates are safe. `delta_entries`, when non-null, accumulates the
  /// number of log entries covered by incremental advances.
  Status Seek(const Maplog& log, SnapshotId snap, SptBuildStats* stats,
              int64_t* delta_entries);

  const SnapshotPageTable& table() const { return table_; }
  SnapshotId position() const { return snap_; }

  /// After an incremental advance, the pages whose table() mapping may
  /// differ from the previous position (a conservative superset: every page
  /// whose mapping — including absence — changed is listed; a listed page
  /// may turn out unchanged). A page modified between the two snapshots
  /// always has a capture expiring in that window, so content changes are
  /// covered too. Invalid after a rebase (first seek, backward seek, or a
  /// truncated prefix): there is no predecessor position to diff against.
  const std::vector<storage::PageId>& last_delta() const {
    return last_delta_;
  }
  bool last_delta_valid() const { return last_delta_valid_; }

 private:
  struct Capture {
    SnapshotId start = 0;
    SnapshotId end = 0;
    uint64_t offset = 0;
  };
  struct Chain {
    size_t next = 0;  // active (or next future) capture; caps.size() = done
    std::vector<Capture> caps;
  };

  Status Rebase(const Maplog& log, SnapshotId snap, SptBuildStats* stats);
  void Advance(const Maplog& log, SnapshotId snap, SptBuildStats* stats,
               int64_t* delta_entries);
  /// Folds log entries appended since the last seek into the chains;
  /// returns the pages whose chain was exhausted before the new captures
  /// (they have no pending wake entry and must be repositioned).
  void Ingest(const Maplog& log, std::vector<storage::PageId>* reawakened);
  /// Advances `page`'s chain cursor past captures that ended before the
  /// current position and places the page in (or evicts it from) the
  /// table, scheduling the next wake-up.
  void Reposition(storage::PageId page);

  SnapshotId snap_ = kNoSnapshot;
  uint64_t ingested_ = 0;  // log entries already folded into chains_
  std::unordered_map<storage::PageId, Chain> chains_;
  // Pages whose active capture expires (key = end + 1) or whose next
  // capture begins (key = start) at the keyed snapshot; drained in id
  // order as the cursor advances.
  std::map<SnapshotId, std::vector<storage::PageId>> wake_;
  SnapshotPageTable table_;
  std::vector<storage::PageId> last_delta_;
  bool last_delta_valid_ = false;
};

}  // namespace rql::retro

#endif  // RQL_RETRO_MAPLOG_H_

#ifndef RQL_RETRO_METRICS_H_
#define RQL_RETRO_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rql::retro {

/// A process- or run-scoped registry of named metrics, unifying the ad-hoc
/// counters that grew across `RqlRunStats`, `SnapshotStore`, `BufferPool`
/// and `Pagelog`. Three metric kinds:
///
///   - Counter:   monotonic int64, relaxed-atomic `Add` (lock-free on the
///                hot path; the registry mutex is only taken on first
///                lookup of a name).
///   - Gauge:     a callback returning the *current* value of something
///                owned elsewhere (buffer-pool hit count, pagelog size).
///                Gauges never copy state, so they cannot drift from the
///                component's own accounting.
///   - Histogram: fixed power-of-two microsecond buckets plus count/sum,
///                for latency-shaped values.
///
/// Naming convention: `<component>.<metric>` in lower snake case, e.g.
/// `rql.qq_parse_count`, `buffer_pool.hits`, `pagelog.size_bytes`.
/// The engine publishes every legacy `RqlRunStats` counter under `rql.*`
/// once per run, so a registry delta taken around a run equals the legacy
/// struct exactly (see metrics_test.cc).
///
/// Lifetime: `Counter*`/`Histogram*` handles are stable for the registry's
/// lifetime. Gauge callbacks capture the component they read; callers that
/// register gauges on a registry outliving the component must RemoveGauge
/// (or use a locally scoped registry, as tools/rql_report does).
class MetricsRegistry {
 public:
  class Counter {
   public:
    void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
    void Increment() { Add(1); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

   private:
    friend class MetricsRegistry;
    void Reset() { v_.store(0, std::memory_order_relaxed); }
    std::atomic<int64_t> v_{0};
  };

  class Histogram {
   public:
    /// Bucket b covers [2^(b-1), 2^b) us, bucket 0 covers [0, 1); the last
    /// bucket absorbs everything >= 2^(kBuckets-2) us (~4.4 minutes).
    static constexpr int kBuckets = 20;

    void ObserveUs(int64_t us);
    int64_t count() const;
    int64_t sum_us() const;
    /// Inclusive lower bound of `bucket` in microseconds.
    static int64_t BucketLowerBoundUs(int bucket);

   private:
    friend class MetricsRegistry;
    void Reset();
    std::array<std::atomic<int64_t>, kBuckets> buckets_{};
    std::atomic<int64_t> sum_us_{0};
  };

  using GaugeFn = std::function<int64_t()>;

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide default registry; used when `RqlOptions::metrics` is
  /// null. Never destroyed (avoids shutdown-order races with gauges).
  static MetricsRegistry* Default();

  /// Returns the counter named `name`, creating it (at zero) on first use.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Installs (or replaces) the gauge named `name`.
  void SetGauge(const std::string& name, GaugeFn fn);
  void RemoveGauge(const std::string& name);
  /// Removes every gauge whose name starts with `prefix` (component
  /// teardown helper).
  void RemoveGaugesWithPrefix(const std::string& prefix);

  struct HistogramSnapshot {
    std::vector<int64_t> buckets;
    int64_t count = 0;
    int64_t sum_us = 0;
  };
  struct Snapshot {
    std::map<std::string, int64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /// Counter and histogram values become `this - before`; a name absent
    /// from `before` counts as zero there. Gauges keep their current
    /// (point-in-time) value — they are views, not accumulators.
    Snapshot DeltaFrom(const Snapshot& before) const;
    /// Counter value by name; 0 when absent.
    int64_t counter(const std::string& name) const;
  };

  /// Point-in-time copy of every metric (gauge callbacks are invoked).
  Snapshot TakeSnapshot() const;

  /// Zeroes all counters and histograms. Gauges are untouched — they read
  /// live component state the registry does not own.
  void Reset();

 private:
  mutable std::mutex mu_;  // guards the maps, not counter values
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, GaugeFn> gauges_;
};

}  // namespace rql::retro

#endif  // RQL_RETRO_METRICS_H_

#ifndef RQL_RETRO_PREFETCH_SCHEDULER_H_
#define RQL_RETRO_PREFETCH_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "retro/maplog.h"
#include "retro/snapshot_store.h"

namespace rql::retro {

/// Background archive-read pipeline for sequential RQL runs: while the
/// engine executes iteration i, a small worker pool fetches the archive
/// pages iteration i+1 will need, so the next iteration starts against a
/// warm snapshot cache and its I/O wall time overlaps the current
/// iteration's CPU time.
///
/// Per scheduled snapshot the pipeline:
///   - plans under the store's reader lock with a private SptCursor:
///     seeks the snapshot's SPT incrementally, then collects the mapped
///     Pagelog offsets that are not already resident (BufferPool probe)
///     and whose decoded form is not already cached (the optional
///     `is_decoded` probe, wired to SharedScanCache); when the cursor's
///     last_delta() is valid, the delta's pages — the ones that certainly
///     changed mapping since the previous step — are planned ahead of the
///     residual sweep, so a budget clip drops the probably-resident tail,
///     not the certainly-missing head;
///   - issues the plan offset-ordered (the archive's sequential-read
///     regime), at most `budget_pages` pages per step, one page per
///     BufferPool::Get so a demand read coalesces with the in-flight
///     prefetch instead of duplicating it; loads use prefetch admission
///     (no LRU perturbation on hits, eviction spares pinned frames) and
///     the prefetch-flagged archive loader (simulated latency and
///     bandwidth slots apply, but demand readers take slot priority);
///   - parks the first background I/O error on the job; Collect surfaces
///     it to the consuming iteration as the same Status the synchronous
///     batched pass would have returned — never lost, never fatal on a
///     worker thread. Cancel (the step was replayed from the skip or memo
///     path, so the synchronous path would not have read these pages)
///     discards the parked error with the job.
///
/// Cancellation and shutdown ordering: Schedule never blocks; Cancel and
/// Collect set the job's cancel token, drop it from the queue if it never
/// started, and wait for the worker to finish the at-most-one in-flight
/// page (bounded by a single archive read). Shutdown cancels everything,
/// joins the workers, then deregisters the consumption tracker — after it
/// returns no thread of this scheduler can touch the store, so the engine
/// tears the scheduler down before the run returns and there is no
/// Env/file use-after-free window. A TruncateHistory epoch bump observed
/// mid-job abandons the remaining plan (offsets from the old epoch are
/// meaningless in the compacted log).
///
/// Consumption accounting: offsets the pipeline loaded are remembered
/// until a demand read consumes them (SnapshotStore::PrefetchTracker →
/// TakeHits) or the run ends (TakeWasted), giving the engine the
/// issued / hits / wasted / cancelled split it reports per iteration.
class PrefetchScheduler : public PrefetchTracker {
 public:
  struct Options {
    /// Worker threads. Two lets the next job start planning while the
    /// previous one drains its final in-flight page under Collect.
    int workers = 2;
    /// Max pages fetched ahead per scheduled step; 0 = unbounded. Bounds
    /// both the background read amplification and how much of the pool
    /// a prefetch sweep can claim.
    int budget_pages = 64;
    /// Optional probe: true when this page version's decoded form is
    /// already resident in a store-scoped scan cache, so fetching its raw
    /// bytes would be wasted bandwidth. Must be thread-safe (wired to
    /// SharedScanCache::Contains; run-private ScanCaches are
    /// single-threaded and deliberately not probed).
    std::function<bool(uint64_t)> is_decoded;
  };

  /// What one scheduled step did, returned by Collect/Cancel.
  struct JobReport {
    bool scheduled = false;  // a job for this snapshot existed
    int64_t issued = 0;      // pages this job loaded into the cache
    int64_t cancelled = 0;   // planned pages dropped before issue
    int64_t overlap_us = 0;  // wall time the job spent planning + fetching
    Status error;            // first parked background I/O error
  };

  /// The store must outlive the scheduler. Workers start immediately.
  PrefetchScheduler(SnapshotStore* store, Options options);
  ~PrefetchScheduler() override;

  PrefetchScheduler(const PrefetchScheduler&) = delete;
  PrefetchScheduler& operator=(const PrefetchScheduler&) = delete;

  /// Enqueues a prefetch job for `snap`. Non-blocking; duplicate
  /// schedules of a pending snapshot are no-ops.
  void Schedule(SnapshotId snap);

  /// Cancels `snap`'s job: stops further issue, waits out the at-most-one
  /// in-flight page, and returns the job's counts with the parked error
  /// discarded (the consuming iteration replayed, so the synchronous path
  /// would not have issued these reads either).
  JobReport Cancel(SnapshotId snap);

  /// Consumes `snap`'s job at the head of its iteration: cancels the
  /// un-issued remainder (the iteration's own demand reads take over,
  /// with priority), waits out the in-flight page, and returns the
  /// counts plus any parked error for the caller to surface.
  JobReport Collect(SnapshotId snap);

  /// Prefetched pages consumed by demand reads since the last call.
  int64_t TakeHits();

  /// Pages loaded ahead but never consumed. Meaningful at run end, after
  /// Shutdown; resets the tally.
  int64_t TakeWasted();

  /// Blocks until `snap`'s job (if any) has run to completion, leaving it
  /// collectable. The engine's pipeline never waits on a background job —
  /// Collect at iteration head is demand priority — but a deterministic
  /// observer (tests, diagnostics) needs a finished job to look at.
  void Drain(SnapshotId snap);

  /// Cancels all jobs and joins the workers; idempotent. After return the
  /// scheduler issues no further store access.
  void Shutdown();

  // PrefetchTracker: a demand read was served a resident archive page.
  void OnArchivedPageServed(uint64_t pagelog_offset) override;

 private:
  struct Job {
    SnapshotId snap = kNoSnapshot;
    std::atomic<bool> cancel{false};
    // Remaining fields are written by the owning worker and published to
    // Cancel/Collect by the done flip under mu_.
    bool done = false;
    int64_t issued = 0;
    int64_t cancelled = 0;
    int64_t overlap_us = 0;
    Status error;
  };

  void WorkerLoop();
  void RunJob(Job* job);
  /// Fills `plan` with the offset-ordered, budget-clipped fetch list for
  /// `job` and stamps the job's truncate epoch. Runs under the store's
  /// reader lock.
  Status Plan(const Job* job, uint64_t* epoch, std::vector<uint64_t>* plan);
  /// Common tail of Cancel/Collect: detach the job, cancel it, wait for
  /// the worker, report.
  JobReport Finish(SnapshotId snap, bool keep_error);

  SnapshotStore* store_;
  Options options_;

  std::mutex mu_;  // queue_, jobs_, shutdown_, Job::done
  std::condition_variable work_cv_;  // workers: queue_ or shutdown_
  std::condition_variable done_cv_;  // Cancel/Collect: Job::done
  std::deque<std::shared_ptr<Job>> queue_;
  std::unordered_map<SnapshotId, std::shared_ptr<Job>> jobs_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;

  std::mutex plan_mu_;  // serializes workers on the private cursor
  SptCursor cursor_;

  std::mutex track_mu_;  // loaded_, hits_
  std::unordered_set<uint64_t> loaded_;
  int64_t hits_ = 0;
};

}  // namespace rql::retro

#endif  // RQL_RETRO_PREFETCH_SCHEDULER_H_

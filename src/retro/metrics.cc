#include "retro/metrics.h"

namespace rql::retro {

void MetricsRegistry::Histogram::ObserveUs(int64_t us) {
  int bucket = 0;
  if (us > 0) {
    uint64_t v = static_cast<uint64_t>(us);
    while (v > 0) {
      ++bucket;
      v >>= 1;
    }
    if (bucket > kBuckets - 1) bucket = kBuckets - 1;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

int64_t MetricsRegistry::Histogram::count() const {
  int64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

int64_t MetricsRegistry::Histogram::sum_us() const {
  return sum_us_.load(std::memory_order_relaxed);
}

int64_t MetricsRegistry::Histogram::BucketLowerBoundUs(int bucket) {
  if (bucket <= 0) return 0;
  return int64_t{1} << (bucket - 1);
}

void MetricsRegistry::Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_us_.store(0, std::memory_order_relaxed);
}

MetricsRegistry* MetricsRegistry::Default() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return instance;
}

MetricsRegistry::Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

MetricsRegistry::Histogram* MetricsRegistry::GetHistogram(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::SetGauge(const std::string& name, GaugeFn fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = std::move(fn);
}

void MetricsRegistry::RemoveGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.erase(name);
}

void MetricsRegistry::RemoveGaugesWithPrefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.lower_bound(prefix);
  while (it != gauges_.end() && it->first.compare(0, prefix.size(), prefix) == 0) {
    it = gauges_.erase(it);
  }
}

MetricsRegistry::Snapshot MetricsRegistry::TakeSnapshot() const {
  Snapshot snap;
  // Copy the gauge callbacks out so user callbacks run outside mu_ (a
  // gauge reading a component that itself touches this registry must not
  // deadlock).
  std::vector<std::pair<std::string, GaugeFn>> gauges;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, c] : counters_) {
      snap.counters[name] = c->value();
    }
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot hs;
      hs.buckets.reserve(Histogram::kBuckets);
      for (const auto& b : h->buckets_) {
        hs.buckets.push_back(b.load(std::memory_order_relaxed));
      }
      hs.count = h->count();
      hs.sum_us = h->sum_us();
      snap.histograms[name] = std::move(hs);
    }
    gauges.reserve(gauges_.size());
    for (const auto& [name, fn] : gauges_) gauges.emplace_back(name, fn);
  }
  for (const auto& [name, fn] : gauges) snap.gauges[name] = fn();
  return snap;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

MetricsRegistry::Snapshot MetricsRegistry::Snapshot::DeltaFrom(
    const Snapshot& before) const {
  Snapshot delta = *this;
  for (auto& [name, v] : delta.counters) {
    auto it = before.counters.find(name);
    if (it != before.counters.end()) v -= it->second;
  }
  for (auto& [name, h] : delta.histograms) {
    auto it = before.histograms.find(name);
    if (it == before.histograms.end()) continue;
    h.count -= it->second.count;
    h.sum_us -= it->second.sum_us;
    for (size_t i = 0;
         i < h.buckets.size() && i < it->second.buckets.size(); ++i) {
      h.buckets[i] -= it->second.buckets[i];
    }
  }
  return delta;
}

int64_t MetricsRegistry::Snapshot::counter(const std::string& name) const {
  auto it = counters.find(name);
  return it == counters.end() ? 0 : it->second;
}

}  // namespace rql::retro

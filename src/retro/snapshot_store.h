#ifndef RQL_RETRO_SNAPSHOT_STORE_H_
#define RQL_RETRO_SNAPSHOT_STORE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "retro/maplog.h"
#include "retro/pagelog.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/page_store.h"

namespace rql::retro {

/// Simulated device costs used to convert page-fetch counts into time.
/// The paper's testbed keeps the current database memory-resident and the
/// Pagelog on SSD; we model that with a per-page charge for Pagelog and
/// Maplog reads and a zero charge for current-state reads. Benchmarks
/// report both the page counts and the derived times.
struct CostModel {
  int64_t pagelog_read_us = 100;     // one 4K random read from the archive
  int64_t maplog_page_read_us = 100; // one log page during an SPT scan
  int64_t db_read_us = 0;            // current state is memory-resident
  /// One archive page fetched by a batched, offset-ordered pass
  /// (set_batch_archive_reads): sequential SSD reads are ~5x cheaper than
  /// the random reads the demand path issues.
  int64_t pagelog_seq_read_us = 20;
};

/// Per-iteration cost counters. The RQL runner resets this before invoking
/// Qq on a snapshot and snapshots it afterwards, yielding the per-iteration
/// breakdown (I/O, SPT build) of Figures 8-13.
struct IterationStats {
  int64_t pagelog_page_reads = 0;  // snapshot-cache misses -> archive I/O
  int64_t snapshot_cache_hits = 0;
  int64_t db_page_reads = 0;       // snapshot pages shared with current db
  /// Archive pages fetched by the batched, offset-ordered prefetch pass
  /// (charged at CostModel::pagelog_seq_read_us, not pagelog_read_us).
  int64_t batched_pagelog_reads = 0;
  /// Maplog entries covered by incremental SPT advances inside a snapshot
  /// set (subset of spt.entries_scanned).
  int64_t spt_delta_entries = 0;
  /// Transient Pagelog read failures absorbed by the bounded-retry policy
  /// (set_archive_read_retries).
  int64_t archive_read_retries = 0;
  SptBuildStats spt;

  void Reset() { *this = IterationStats{}; }

  void Add(const IterationStats& o) {
    pagelog_page_reads += o.pagelog_page_reads;
    snapshot_cache_hits += o.snapshot_cache_hits;
    db_page_reads += o.db_page_reads;
    batched_pagelog_reads += o.batched_pagelog_reads;
    spt_delta_entries += o.spt_delta_entries;
    archive_read_retries += o.archive_read_retries;
    spt.entries_scanned += o.spt.entries_scanned;
    spt.maplog_pages_read += o.spt.maplog_pages_read;
    spt.cpu_us += o.spt.cpu_us;
  }

  /// Simulated Pagelog I/O time.
  int64_t IoUs(const CostModel& cm) const {
    return pagelog_page_reads * cm.pagelog_read_us +
           batched_pagelog_reads * cm.pagelog_seq_read_us +
           db_page_reads * cm.db_read_us;
  }

  /// SPT construction time: measured CPU plus simulated Maplog I/O.
  int64_t SptUs(const CostModel& cm) const {
    return spt.cpu_us + spt.maplog_pages_read * cm.maplog_page_read_us;
  }
};

class SnapshotStore;

/// A read-only, transactionally consistent view of the database as of a
/// declared snapshot. Page reads resolve through the snapshot page table:
/// captured pages come from the Pagelog (through the snapshot page cache);
/// pages never modified since the declaration are shared with, and read
/// from, the current database.
///
/// The view stays consistent across updates that commit while it is open:
/// when a read misses the SPT but the page has since been modified, the
/// view refreshes its table from the Maplog suffix appended after the view
/// was built (standing in for the MVCC guarantee BDB gives Retro).
class SnapshotView : public storage::PageReader {
 public:
  Status ReadPage(storage::PageId id, storage::Page* page) override;

  SnapshotId id() const { return snap_; }

  /// Number of pages this snapshot does not share with the current state.
  uint64_t spt_size() const { return spt_.size(); }

 private:
  friend class SnapshotStore;
  SnapshotView(SnapshotStore* store, SnapshotId snap)
      : store_(store), snap_(snap) {}

  SnapshotStore* store_;
  SnapshotId snap_;
  SnapshotPageTable spt_;
  uint64_t resume_index_ = 0;
};

/// The Retro snapshot system: a transactional page store extended with
/// snapshot declaration at commit and page-level copy-on-write pre-state
/// capture (Shaull, Shrira, Liskov, USENIX ATC'14).
///
/// All mutations of the underlying database must go through this class so
/// the first modification of a page after a snapshot declaration copies the
/// page's pre-state into the Pagelog and records the mapping in the Maplog.
///
/// Thread model: page-level operations (including snapshot-view reads) are
/// internally serialized by a store mutex, so snapshot queries may run on
/// other threads concurrently with updates and stay transactionally
/// consistent — the correctness half of the paper's MVCC non-interference
/// property (BDB additionally avoids the serialization itself). Higher
/// layers (sql::Database) are single-threaded per connection.
struct SnapshotStoreOptions {
  /// Snapshot page cache capacity in pages; 0 = unbounded. The paper
  /// assumes the cache holds one RQL query's working set.
  uint64_t snapshot_cache_pages = 0;
  CostModel cost_model;
  /// Archive representation: full pages (Retro baseline) or Thresher-style
  /// adaptive page diffs (smaller archive, costlier reconstruction).
  PagelogMode pagelog_mode = PagelogMode::kFull;
};

class SnapshotStore : public storage::PageWriter {
 public:
  using Options = SnapshotStoreOptions;

  /// Opens the database `name` (files <name>.db, <name>.pagelog,
  /// <name>.maplog inside `env`), recovering snapshot state if present.
  static Result<std::unique_ptr<SnapshotStore>> Open(
      storage::Env* env, const std::string& name,
      Options options = Options());

  // --- storage::PageWriter (current state) ------------------------------
  Result<storage::PageId> AllocatePage() override;
  Status FreePage(storage::PageId id) override;
  Status ReadPage(storage::PageId id, storage::Page* page) override;
  Status WritePage(storage::PageId id, const storage::Page& page) override;

  // --- transactions ------------------------------------------------------
  /// Begins an explicit transaction. Writes outside a transaction behave
  /// as single-statement transactions.
  Status Begin();

  /// Commits; with `declare_snapshot` implements COMMIT WITH SNAPSHOT: the
  /// new snapshot reflects this transaction and everything before it.
  /// The new id is returned through `declared` when non-null.
  Status Commit(bool declare_snapshot = false, SnapshotId* declared = nullptr);

  /// Rolls back page contents and allocations made by the transaction.
  Status Rollback();

  bool in_transaction() const { return in_txn_; }

  /// Declares a snapshot outside an explicit transaction (an empty
  /// BEGIN; COMMIT WITH SNAPSHOT; pair).
  Result<SnapshotId> DeclareSnapshot();

  SnapshotId latest_snapshot() const { return latest_snap_; }

  /// Oldest snapshot still reconstructable (1 unless truncated).
  SnapshotId earliest_snapshot() const { return maplog_->earliest(); }

  /// Retention: permanently drops snapshots with id < `keep_from` and
  /// compacts the Pagelog/Maplog, reclaiming the space their exclusive
  /// pre-states occupied. Snapshot ids are preserved; opening a dropped
  /// snapshot fails with NotFound. Must not run inside a transaction, and
  /// invalidates any open SnapshotView. Crash-safe: the swap completes or
  /// rolls back on the next Open.
  Status TruncateHistory(SnapshotId keep_from);

  // --- snapshot reads -----------------------------------------------------
  /// Builds SPT(snap) and returns a consistent as-of view.
  Result<std::unique_ptr<SnapshotView>> OpenSnapshot(SnapshotId snap);

  // --- snapshot-set sessions ----------------------------------------------
  /// Begins an RQL snapshot-set session (iteration-setup amortization):
  /// until EndSnapshotSet, OpenSnapshot calls with ascending ids derive
  /// each SPT incrementally from the previous one via Maplog::SptCursor,
  /// scanning only the inter-mark log delta instead of the whole suffix.
  /// A non-ascending id falls back to one cold build and re-anchors the
  /// cursor, so any visit order stays correct. Nested Begin calls are
  /// no-ops; TruncateHistory resets the cursor.
  void BeginSnapshotSet();
  void EndSnapshotSet();
  bool snapshot_set_active() const { return snapshot_set_active_; }

  /// When enabled, OpenSnapshot prefetches the view's SPT-resident pages
  /// that miss the snapshot cache in one Pagelog-offset-ordered pass,
  /// charged at CostModel::pagelog_seq_read_us per fetched page
  /// (IterationStats::batched_pagelog_reads). Query-time reads then hit
  /// the cache; results are unchanged.
  void set_batch_archive_reads(bool on) { batch_archive_reads_ = on; }
  bool batch_archive_reads() const { return batch_archive_reads_; }

  /// Bounded retry budget for transient Pagelog read failures (flaky
  /// media): a failed archive read is re-issued up to `n` times before the
  /// error propagates. Each retry is counted in
  /// IterationStats::archive_read_retries. Default 0: fail fast.
  void set_archive_read_retries(int n) { archive_read_retries_ = n; }
  int archive_read_retries() const { return archive_read_retries_; }

  // --- instrumentation ----------------------------------------------------
  IterationStats* stats() { return &stats_; }
  void ResetStats() { stats_.Reset(); }
  const CostModel& cost_model() const { return options_.cost_model; }

  /// Drops all cached snapshot pages (cold-cache experiment setup).
  void ClearSnapshotCache() {
    std::lock_guard<std::mutex> lock(mu_);
    snapshot_cache_.Clear();
  }
  storage::BufferPool* snapshot_cache() { return &snapshot_cache_; }

  storage::PageStore* page_store() { return store_.get(); }
  Pagelog* pagelog() { return pagelog_.get(); }
  Maplog* maplog() { return maplog_.get(); }

  /// Root-slot passthroughs (catalog roots live in the page-store header).
  Result<storage::PageId> GetRoot(uint32_t slot) const {
    return store_->GetRoot(slot);
  }
  Status SetRoot(uint32_t slot, storage::PageId id) {
    return store_->SetRoot(slot, id);
  }

 private:
  friend class SnapshotView;

  SnapshotStore(Options options) : options_(options), snapshot_cache_(0) {}

  /// Completes (or discards) an interrupted TruncateHistory swap.
  static Status RecoverTruncation(storage::Env* env, const std::string& name);

  /// Copies the pre-state of `id` into the Pagelog if this is the first
  /// modification since the latest snapshot declaration. `current` may
  /// pass the already-read page content to avoid a second read.
  Status CaptureIfNeeded(storage::PageId id, const storage::Page* current);

  /// Reads a pre-state page through the snapshot cache, updating stats.
  /// Requires mu_.
  Status ReadArchived(uint64_t pagelog_offset, storage::Page* page);

  /// Fetches `view`'s SPT entries missing from the snapshot cache in one
  /// offset-ordered pass (set_batch_archive_reads). Requires mu_.
  Status PrefetchArchivedLocked(const SnapshotView& view);

  /// Requires mu_.
  Result<SnapshotId> DeclareSnapshotLocked();

  SnapshotId ModEpoch(storage::PageId id) const {
    auto it = mod_epoch_.find(id);
    return it == mod_epoch_.end() ? kNoSnapshot : it->second;
  }

  /// Serializes page-level operations; see the thread model above.
  mutable std::mutex mu_;

  Options options_;
  storage::Env* env_ = nullptr;
  std::string name_;
  std::unique_ptr<storage::PageStore> store_;
  std::unique_ptr<Pagelog> pagelog_;
  std::unique_ptr<Maplog> maplog_;
  storage::BufferPool snapshot_cache_;

  SnapshotId latest_snap_ = kNoSnapshot;
  // Latest snapshot declared before each page's last modification. Pages
  // absent were last modified before snapshot 1 (or never).
  std::unordered_map<storage::PageId, SnapshotId> mod_epoch_;
  // Most recent archive record per page; the diff base in kDiff mode.
  std::unordered_map<storage::PageId, uint64_t> last_capture_offset_;

  // Transaction state: mutations buffer in the page store's WAL batch, so
  // commit is atomic and rollback simply drops the batch.
  bool in_txn_ = false;

  // Snapshot-set session state (BeginSnapshotSet/EndSnapshotSet).
  bool snapshot_set_active_ = false;
  std::unique_ptr<SptCursor> set_cursor_;
  bool batch_archive_reads_ = false;
  int archive_read_retries_ = 0;

  IterationStats stats_;
};

}  // namespace rql::retro

#endif  // RQL_RETRO_SNAPSHOT_STORE_H_

#ifndef RQL_RETRO_SNAPSHOT_STORE_H_
#define RQL_RETRO_SNAPSHOT_STORE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/cleanup.h"
#include "common/status.h"
#include "retro/maplog.h"
#include "retro/metrics.h"
#include "retro/pagelog.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/page_store.h"

namespace rql::retro {

/// Consumer-side callback of a background prefetcher: the store invokes it
/// whenever a demand read was served an archived page without running its
/// own load (a snapshot-cache hit, or a wait coalesced onto an in-flight
/// load). The prefetcher matches the offset against what it fetched ahead
/// to attribute prefetch hits. Implementations must be thread-safe; the
/// callback runs on reader threads with no store lock held.
class PrefetchTracker {
 public:
  virtual ~PrefetchTracker() = default;
  virtual void OnArchivedPageServed(uint64_t pagelog_offset) = 0;
};

/// Simulated device costs used to convert page-fetch counts into time.
/// The paper's testbed keeps the current database memory-resident and the
/// Pagelog on SSD; we model that with a per-page charge for Pagelog and
/// Maplog reads and a zero charge for current-state reads. Benchmarks
/// report both the page counts and the derived times.
struct CostModel {
  int64_t pagelog_read_us = 100;     // one 4K random read from the archive
  int64_t maplog_page_read_us = 100; // one log page during an SPT scan
  int64_t db_read_us = 0;            // current state is memory-resident
  /// One archive page fetched by a batched, offset-ordered pass
  /// (set_batch_archive_reads): sequential SSD reads are ~5x cheaper than
  /// the random reads the demand path issues.
  int64_t pagelog_seq_read_us = 20;
};

/// Per-iteration cost counters. The RQL runner resets this before invoking
/// Qq on a snapshot and snapshots it afterwards, yielding the per-iteration
/// breakdown (I/O, SPT build) of Figures 8-13.
struct IterationStats {
  int64_t pagelog_page_reads = 0;  // snapshot-cache misses -> archive I/O
  int64_t snapshot_cache_hits = 0;
  int64_t db_page_reads = 0;       // snapshot pages shared with current db
  /// Archive pages fetched by the batched, offset-ordered prefetch pass
  /// (charged at CostModel::pagelog_seq_read_us, not pagelog_read_us).
  int64_t batched_pagelog_reads = 0;
  /// Maplog entries covered by incremental SPT advances inside a snapshot
  /// set (subset of spt.entries_scanned).
  int64_t spt_delta_entries = 0;
  /// Transient Pagelog read failures absorbed by the bounded-retry policy
  /// (set_archive_read_retries).
  int64_t archive_read_retries = 0;
  /// Snapshot-cache misses that found another reader already fetching the
  /// same archive page and waited for that load instead of issuing a
  /// duplicate one. Always 0 in sequential runs; in parallel runs a
  /// nonzero count proves the paper's page-sharing effect (Section 5.1)
  /// survives concurrency: a shared pre-state page is read once, not once
  /// per racing worker.
  int64_t coalesced_loads = 0;
  /// Wall time snapshot readers spent blocked: acquiring the store's
  /// reader lock (writers hold it exclusively) plus waiting on coalesced
  /// archive loads. Always ~0 in sequential runs.
  int64_t lock_wait_us = 0;
  /// OpenSnapshot calls that served their SPT from (or coalesced into)
  /// another run's build of the same snapshot (set_share_spt_builds).
  /// Always 0 unless concurrent runs overlap on a snapshot.
  int64_t shared_spt_builds = 0;
  SptBuildStats spt;

  void Reset() { *this = IterationStats{}; }

  void Add(const IterationStats& o) {
    pagelog_page_reads += o.pagelog_page_reads;
    snapshot_cache_hits += o.snapshot_cache_hits;
    db_page_reads += o.db_page_reads;
    batched_pagelog_reads += o.batched_pagelog_reads;
    spt_delta_entries += o.spt_delta_entries;
    archive_read_retries += o.archive_read_retries;
    coalesced_loads += o.coalesced_loads;
    lock_wait_us += o.lock_wait_us;
    shared_spt_builds += o.shared_spt_builds;
    spt.entries_scanned += o.spt.entries_scanned;
    spt.maplog_pages_read += o.spt.maplog_pages_read;
    spt.cpu_us += o.spt.cpu_us;
  }

  /// Simulated Pagelog I/O time.
  int64_t IoUs(const CostModel& cm) const {
    return pagelog_page_reads * cm.pagelog_read_us +
           batched_pagelog_reads * cm.pagelog_seq_read_us +
           db_page_reads * cm.db_read_us;
  }

  /// SPT construction time: measured CPU plus simulated Maplog I/O.
  int64_t SptUs(const CostModel& cm) const {
    return spt.cpu_us + spt.maplog_pages_read * cm.maplog_page_read_us;
  }
};

class SnapshotStore;

/// Version token fed to version recorders for a page with no stable
/// archived identity — one the snapshot shares with the current database.
/// The first modification after the snapshot's declaration captures the
/// pre-state and gives the page an SPT mapping (a real Pagelog offset), so
/// observing this token again on a later probe proves the page unchanged.
/// retro::MemoTable (memo_table.h) aliases it as kMemoDbSharedVersion.
constexpr uint64_t kUnversionedPageToken = ~0ull;

/// A read-only, transactionally consistent view of the database as of a
/// declared snapshot. Page reads resolve through the snapshot page table:
/// captured pages come from the Pagelog (through the snapshot page cache);
/// pages never modified since the declaration are shared with, and read
/// from, the current database.
///
/// The view stays consistent across updates that commit while it is open:
/// when a read misses the SPT but the page has since been modified, the
/// view refreshes its table from the Maplog suffix appended after the view
/// was built (standing in for the MVCC guarantee BDB gives Retro).
///
/// A view is owned by a single reader thread (each parallel RQL worker
/// opens its own); different views on the same store may read concurrently
/// with each other and with update transactions. Reads whose page is
/// already mapped by the view's SPT take no store lock at all — archive
/// records are immutable and the snapshot page cache synchronizes
/// internally — while SPT misses take the store's reader lock to consult
/// mutable metadata.
class SnapshotView : public storage::PageReader {
 public:
  Status ReadPage(storage::PageId id, storage::Page* page) override;

  /// Pagelog offset of `id`'s archived version, for SPT-mapped pages. Two
  /// snapshots mapping a page to the same offset share one immutable
  /// archive record, so the offset is a stable cross-snapshot identity for
  /// the page's content (the scan-reuse key). Pages shared with the
  /// current database have no stable version and return false.
  bool PageVersion(storage::PageId id, uint64_t* version) override;

  /// Pins `id`'s archived version straight from the snapshot cache
  /// (SPT-mapped pages only; empty pin otherwise). Stats accounting is
  /// identical to ReadPage.
  Result<storage::PinnedPage> ReadPagePinned(storage::PageId id) override;

  SnapshotId id() const { return snap_; }

  /// Number of pages this snapshot does not share with the current state.
  uint64_t spt_size() const { return spt_.size(); }

  /// Arms (or with nullptr disarms) a view-local (page -> version token)
  /// recorder: every read through this view records the Pagelog offset it
  /// resolved to, or kUnversionedPageToken for pages shared with the
  /// current database. Parallel RQL workers own their views, so each arms
  /// its own map here; the sequential loop uses the store-level
  /// SnapshotStore::set_version_recorder instead. The caller owns the map
  /// and must keep it alive while armed.
  void set_version_recorder(
      std::unordered_map<storage::PageId, uint64_t>* recorder) {
    version_recorder_ = recorder;
  }

 private:
  friend class SnapshotStore;
  SnapshotView(SnapshotStore* store, SnapshotId snap)
      : store_(store), snap_(snap) {}

  /// Feeds (id, token) to the view-local recorder if armed, else to the
  /// store-level one. Last write wins: a page first seen as db-shared and
  /// then refreshed to an archived mapping keeps the final (stable) token.
  void RecordVersion(storage::PageId id, uint64_t token);

  SnapshotStore* store_;
  SnapshotId snap_;
  SnapshotPageTable spt_;
  uint64_t resume_index_ = 0;
  std::unordered_map<storage::PageId, uint64_t>* version_recorder_ = nullptr;
};

/// The Retro snapshot system: a transactional page store extended with
/// snapshot declaration at commit and page-level copy-on-write pre-state
/// capture (Shaull, Shrira, Liskov, USENIX ATC'14).
///
/// All mutations of the underlying database must go through this class so
/// the first modification of a page after a snapshot declaration copies the
/// page's pre-state into the Pagelog and records the mapping in the Maplog.
///
/// Thread model: mutations (update transactions, snapshot declaration,
/// history truncation) serialize on the exclusive half of a store-wide
/// reader/writer lock; snapshot-view reads take at most the shared half,
/// so any number of snapshot queries proceed concurrently with each other
/// and stay transactionally consistent against interleaved updates — the
/// paper's MVCC non-interference property, with reader-side scalability
/// instead of BDB's version store. Reads of SPT-mapped archive pages take
/// no store lock at all, and concurrent misses on the same archive page
/// coalesce into a single Pagelog read (IterationStats::coalesced_loads).
/// Higher layers (sql::Database) remain single-threaded per connection.
struct SnapshotStoreOptions {
  /// Snapshot page cache capacity in pages; 0 = unbounded. The paper
  /// assumes the cache holds one RQL query's working set.
  uint64_t snapshot_cache_pages = 0;
  CostModel cost_model;
  /// Archive representation: full pages (Retro baseline) or Thresher-style
  /// adaptive page diffs (smaller archive, costlier reconstruction).
  PagelogMode pagelog_mode = PagelogMode::kFull;
};

class SnapshotStore : public storage::PageWriter {
 public:
  using Options = SnapshotStoreOptions;

  /// Opens the database `name` (files <name>.db, <name>.pagelog,
  /// <name>.maplog inside `env`), recovering snapshot state if present.
  static Result<std::unique_ptr<SnapshotStore>> Open(
      storage::Env* env, const std::string& name,
      Options options = Options());

  // --- storage::PageWriter (current state) ------------------------------
  Result<storage::PageId> AllocatePage() override;
  Status FreePage(storage::PageId id) override;
  Status ReadPage(storage::PageId id, storage::Page* page) override;
  Status WritePage(storage::PageId id, const storage::Page& page) override;

  // --- transactions ------------------------------------------------------
  /// Begins an explicit transaction. Writes outside a transaction behave
  /// as single-statement transactions.
  Status Begin();

  /// Commits; with `declare_snapshot` implements COMMIT WITH SNAPSHOT: the
  /// new snapshot reflects this transaction and everything before it.
  /// The new id is returned through `declared` when non-null.
  Status Commit(bool declare_snapshot = false, SnapshotId* declared = nullptr);

  /// Rolls back page contents and allocations made by the transaction.
  Status Rollback();

  bool in_transaction() const { return in_txn_; }

  /// Declares a snapshot outside an explicit transaction (an empty
  /// BEGIN; COMMIT WITH SNAPSHOT; pair).
  Result<SnapshotId> DeclareSnapshot();

  SnapshotId latest_snapshot() const { return latest_snap_; }

  /// Oldest snapshot still reconstructable (1 unless truncated).
  SnapshotId earliest_snapshot() const { return maplog_->earliest(); }

  /// Retention: permanently drops snapshots with id < `keep_from` and
  /// compacts the Pagelog/Maplog, reclaiming the space their exclusive
  /// pre-states occupied. Snapshot ids are preserved; opening a dropped
  /// snapshot fails with NotFound. Must not run inside a transaction, and
  /// invalidates any open SnapshotView. Crash-safe: the swap completes or
  /// rolls back on the next Open.
  Status TruncateHistory(SnapshotId keep_from);

  // --- snapshot reads -----------------------------------------------------
  /// Builds SPT(snap) and returns a consistent as-of view.
  Result<std::unique_ptr<SnapshotView>> OpenSnapshot(SnapshotId snap);

  // --- snapshot-set sessions ----------------------------------------------
  /// Begins an RQL snapshot-set session (iteration-setup amortization):
  /// until EndSnapshotSet, OpenSnapshot calls with ascending ids derive
  /// each SPT incrementally from the previous one via Maplog::SptCursor,
  /// scanning only the inter-mark log delta instead of the whole suffix.
  /// A non-ascending id falls back to one cold build and re-anchors the
  /// cursor, so any visit order stays correct. Nested Begin calls are
  /// no-ops; TruncateHistory resets the cursor.
  void BeginSnapshotSet();
  void EndSnapshotSet();
  bool snapshot_set_active() const { return snapshot_set_active_; }

  /// Moves the active snapshot-set cursor to `snap` ahead of the query
  /// that will open it (the skip-decision probe). Returns true and fills
  /// `delta` with the pages whose mapping may differ from the cursor's
  /// previous position (a conservative superset — see
  /// SptCursor::last_delta) when the move was an incremental advance;
  /// returns false after a cold rebase (first snapshot of the set, a
  /// backward seek), when no predecessor exists to diff against. The
  /// later OpenSnapshot for the same id re-seeks at zero incremental
  /// cost. Requires an active session.
  Result<bool> AdvanceSnapshotSet(SnapshotId snap,
                                  std::vector<storage::PageId>* delta);

  /// Arms (or with nullptr disarms) a recorder that collects the PageId of
  /// every page read through any SnapshotView — the read-set the iteration
  /// skipper intersects with Maplog deltas. The caller owns the set and
  /// must keep it alive while armed; recording is only meaningful for
  /// single-threaded runs (the sequential RQL loop).
  void set_read_recorder(std::unordered_set<storage::PageId>* recorder) {
    read_recorder_.store(recorder, std::memory_order_relaxed);
  }

  /// Arms (or with nullptr disarms) a recorder mapping every page read
  /// through any SnapshotView to the version token it resolved to (the
  /// Pagelog offset, or kUnversionedPageToken for db-shared pages) — the
  /// versioned read-set the cross-run memo validates entries against. Like
  /// set_read_recorder, only meaningful for single-threaded runs; parallel
  /// workers arm SnapshotView::set_version_recorder on their own views.
  void set_version_recorder(
      std::unordered_map<storage::PageId, uint64_t>* recorder) {
    version_recorder_.store(recorder, std::memory_order_relaxed);
  }

  /// When enabled, OpenSnapshot prefetches the view's SPT-resident pages
  /// that miss the snapshot cache in one Pagelog-offset-ordered pass,
  /// charged at CostModel::pagelog_seq_read_us per fetched page
  /// (IterationStats::batched_pagelog_reads). Query-time reads then hit
  /// the cache; results are unchanged.
  void set_batch_archive_reads(bool on) { batch_archive_reads_ = on; }
  bool batch_archive_reads() const { return batch_archive_reads_; }

  /// Bounded retry budget for transient Pagelog read failures (flaky
  /// media): a failed archive read is re-issued up to `n` times before the
  /// error propagates. Each retry is counted in
  /// IterationStats::archive_read_retries. Default 0: fail fast.
  void set_archive_read_retries(int n) { archive_read_retries_ = n; }
  int archive_read_retries() const { return archive_read_retries_; }

  /// When enabled, concurrent OpenSnapshot calls (outside snapshot-set
  /// sessions) on the same snapshot id share one SPT build: the first
  /// caller scans the Maplog, the others block on that build and copy its
  /// result (IterationStats::shared_spt_builds), and later opens of the
  /// same id reuse the cached table. A cached table built earlier is
  /// sound because its recorded resume index makes the view catch up from
  /// the Maplog suffix on demand, exactly as a freshly built SPT does.
  /// The engine enables this when runs attach a store-scoped
  /// SharedScanCache; TruncateHistory drops every cached table.
  void set_share_spt_builds(bool on) {
    share_spt_builds_.store(on, std::memory_order_relaxed);
  }
  bool share_spt_builds() const {
    return share_spt_builds_.load(std::memory_order_relaxed);
  }
  /// Monotonic count of SPT builds served from another open's build
  /// (cached table or in-flight wait). Unlike the IterationStats counter
  /// this survives ResetStats, so concurrent runs — each of which resets
  /// the shared iteration stats — can still observe aggregate sharing.
  int64_t shared_spt_builds_total() const {
    return shared_spt_builds_total_.load(std::memory_order_relaxed);
  }

  /// Real (slept) per-load archive latency, in addition to the CostModel's
  /// simulated charges. Parallel-scaling benchmarks use it to make the
  /// I/O-bound speedup measurable in wall time regardless of core count:
  /// the sleep happens inside the snapshot-cache loader, so coalesced
  /// readers of a shared page share one sleep, exactly as they would share
  /// one device read. Default 0: off.
  void set_simulated_archive_latency_us(int64_t us) {
    simulated_archive_latency_us_.store(us, std::memory_order_relaxed);
  }
  int64_t simulated_archive_latency_us() const {
    return simulated_archive_latency_us_.load(std::memory_order_relaxed);
  }

  /// Arms (or with nullptr disarms) a prefetch-consumption tracker: every
  /// demand archive read served without a fresh load (cache hit or
  /// coalesced wait) reports its Pagelog offset, letting a background
  /// prefetcher count which of its fetches were consumed. The tracker must
  /// outlive its registration; retro::PrefetchScheduler deregisters itself
  /// (compare-and-swap, so overlapping schedulers never clear each other's
  /// registration) on shutdown.
  void set_prefetch_tracker(PrefetchTracker* tracker) {
    prefetch_tracker_.store(tracker, std::memory_order_release);
  }
  /// Atomically replaces `expected` with nullptr; used by a tracker
  /// deregistering itself without clobbering a newer registration.
  void clear_prefetch_tracker(PrefetchTracker* expected) {
    prefetch_tracker_.compare_exchange_strong(expected, nullptr,
                                              std::memory_order_acq_rel);
  }

  /// Arms (or with nullptr disarms) a histogram observing, per successful
  /// archive read, the diff-chain depth the read walked (records touched
  /// minus one — identical to Pagelog::DepthAt for the read's offset, but
  /// measured for free from the fetch counter; always 0 in kFull mode).
  /// The histogram is internally synchronized and must outlive its
  /// registration (registry histograms live as long as the registry).
  /// Engines sharing a store share the slot: last writer wins, which is
  /// acceptable for a pure observability feed.
  void set_diff_depth_histogram(MetricsRegistry::Histogram* hist) {
    diff_depth_hist_.store(hist, std::memory_order_release);
  }

  /// Monotonic count of completed TruncateHistory compactions. Pagelog
  /// offsets are only comparable within one epoch: compaction rewrites the
  /// log and recycles offsets, so a background prefetcher snapshots the
  /// epoch when it plans and abandons the plan if the epoch moved.
  uint64_t truncate_epoch() const {
    return truncate_epoch_.load(std::memory_order_acquire);
  }

  /// Bounds how many simulated archive fetches may sleep concurrently,
  /// modeling an archive with finite bandwidth: a cold store serves only
  /// so many reads at once, so concurrent fetches beyond the bound queue
  /// behind the in-flight ones. Duplicated fetches of the same bytes then
  /// cost aggregate wall time, not just aggregate sleep — the regime
  /// where cross-run sharing pays. 0 (default) = unbounded sleeps.
  /// Only meaningful together with a nonzero simulated latency.
  void set_simulated_archive_fetch_slots(int n) {
    simulated_archive_fetch_slots_.store(n, std::memory_order_relaxed);
  }
  int simulated_archive_fetch_slots() const {
    return simulated_archive_fetch_slots_.load(std::memory_order_relaxed);
  }

  // --- instrumentation ----------------------------------------------------
  /// Counters are internally synchronized, but reading them mid-run yields
  /// a torn snapshot; read after workers join (as the RQL runner does).
  IterationStats* stats() { return &stats_; }
  void ResetStats() { stats_.Reset(); }
  const CostModel& cost_model() const { return options_.cost_model; }

  /// Drops all cached snapshot pages (cold-cache experiment setup). The
  /// cache synchronizes internally; call before readers start if an
  /// all-cold measurement is intended.
  void ClearSnapshotCache() { snapshot_cache_.Clear(); }
  storage::BufferPool* snapshot_cache() { return &snapshot_cache_; }

  /// Registers observability gauges for the store and its components on
  /// `registry` (any type with `SetGauge(name, fn)`, i.e.
  /// retro::MetricsRegistry): `<prefix>.latest_snapshot`,
  /// `<prefix>.earliest_snapshot`, plus the snapshot cache's pool gauges
  /// under `<prefix>.cache.*` and the archive's under
  /// `<prefix>.pagelog.*`. Gauges read live component state — they cannot
  /// drift from the structs they mirror — but they capture `this`: the
  /// returned handle removes every gauge (the store's own and its
  /// components') on destruction and MUST NOT outlive the store or the
  /// registry.
  template <typename Registry>
  [[nodiscard]] ScopedCleanup RegisterMetrics(
      Registry* registry, const std::string& prefix = "snapshot_store") const {
    const SnapshotStore* store = this;
    registry->SetGauge(prefix + ".latest_snapshot", [store] {
      return static_cast<int64_t>(store->latest_snapshot());
    });
    registry->SetGauge(prefix + ".earliest_snapshot", [store] {
      return static_cast<int64_t>(store->earliest_snapshot());
    });
    ScopedCleanup cleanup(
        [registry, prefix] { registry->RemoveGaugesWithPrefix(prefix + "."); });
    // Fold the components' handles in so one handle scopes everything the
    // store registered (dropping a child's return here would deregister
    // its gauges immediately).
    cleanup.Merge(snapshot_cache_.RegisterMetrics(registry, prefix + ".cache"));
    cleanup.Merge(pagelog_->RegisterMetrics(registry, prefix + ".pagelog"));
    return cleanup;
  }

  storage::PageStore* page_store() { return store_.get(); }
  Pagelog* pagelog() { return pagelog_.get(); }
  Maplog* maplog() { return maplog_.get(); }

  /// Root-slot passthroughs (catalog roots live in the page-store header).
  Result<storage::PageId> GetRoot(uint32_t slot) const {
    return store_->GetRoot(slot);
  }
  Status SetRoot(uint32_t slot, storage::PageId id) {
    return store_->SetRoot(slot, id);
  }

 private:
  friend class SnapshotView;
  // The background prefetch pipeline plans against the Maplog under the
  // shared half of mu_ and issues loads through the snapshot cache with
  // the prefetch-flagged loader; it lives in this layer, so narrow access
  // beats widening the public surface.
  friend class PrefetchScheduler;

  SnapshotStore(Options options) : options_(options), snapshot_cache_(0) {}

  /// Completes (or discards) an interrupted TruncateHistory swap.
  static Status RecoverTruncation(storage::Env* env, const std::string& name);

  /// Copies the pre-state of `id` into the Pagelog if this is the first
  /// modification since the latest snapshot declaration. `current` may
  /// pass the already-read page content to avoid a second read.
  Status CaptureIfNeeded(storage::PageId id, const storage::Page* current);

  /// Reads a pre-state page through the snapshot cache, updating stats.
  /// Takes no store lock: archive records are immutable, file reads are
  /// thread-safe, and the cache single-flights concurrent misses.
  Status ReadArchived(uint64_t pagelog_offset, storage::Page* page);

  /// Pin-returning form of ReadArchived (same retry policy and stats);
  /// ReadArchived is this plus a copy-out.
  Result<storage::PinnedPage> ReadArchivedPinned(uint64_t pagelog_offset);

  /// Feeds `id` to the armed read recorder, if any (see
  /// set_read_recorder). Relaxed: the recorder is only armed in
  /// single-threaded runs.
  void RecordPageRead(storage::PageId id) {
    auto* recorder = read_recorder_.load(std::memory_order_relaxed);
    if (recorder != nullptr) recorder->insert(id);
  }

  /// Feeds (id, token) to the armed store-level version recorder, if any
  /// (see set_version_recorder). Relaxed: armed only in single-threaded
  /// runs.
  void RecordPageVersion(storage::PageId id, uint64_t token) {
    auto* recorder = version_recorder_.load(std::memory_order_relaxed);
    if (recorder != nullptr) (*recorder)[id] = token;
  }

  /// The snapshot-cache loader for archive offset keys: a Pagelog read
  /// (counting records into `*fetches`) plus the optional simulated
  /// latency sleep. With `prefetch` the simulated-bandwidth slot wait
  /// yields to any waiting demand reader (background fetches get the
  /// archive's leftover bandwidth, never priority over the foreground).
  storage::BufferPool::Loader MakeArchiveLoader(int64_t* fetches,
                                                bool prefetch = false);

  /// Fetches `view`'s SPT entries missing from the snapshot cache in one
  /// offset-ordered pass (set_batch_archive_reads). Requires at least a
  /// shared hold on mu_ (the view's SPT must be stable).
  Status PrefetchArchived(const SnapshotView& view);

  /// Requires mu_ held exclusively.
  Result<SnapshotId> DeclareSnapshotLocked();

  /// OpenSnapshot's exclusive path: snapshot-set sessions advance a shared
  /// cursor, so they cannot run under the reader lock. Requires mu_ held
  /// exclusively; re-checks snapshot_set_active_ and falls back to a cold
  /// build if the session ended while the lock was upgraded.
  Result<std::unique_ptr<SnapshotView>> OpenSnapshotExclusive(
      SnapshotId snap);

  /// OpenSnapshot's shared-build path (set_share_spt_builds): single-
  /// flights BuildSpt per snapshot id across concurrent callers and
  /// caches the result. Requires mu_ held shared (BuildSpt only reads the
  /// Maplog, which is stable under the reader lock).
  Status FillSptShared(SnapshotId snap, SnapshotView* view);

  /// Fold per-call counters into stats_ under stats_mu_.
  void AddSptBuildStats(const SptBuildStats& s);
  void AddLockWaitUs(int64_t us);

  SnapshotId ModEpoch(storage::PageId id) const {
    auto it = mod_epoch_.find(id);
    return it == mod_epoch_.end() ? kNoSnapshot : it->second;
  }

  /// Writers (mutations) take this exclusively; snapshot readers take the
  /// shared half only when they must consult mutable store metadata. See
  /// the thread model above.
  mutable std::shared_mutex mu_;
  /// Guards stats_ for readers running under the shared half of mu_ (or no
  /// lock at all). Leaf lock: never acquire anything while holding it.
  mutable std::mutex stats_mu_;

  Options options_;
  storage::Env* env_ = nullptr;
  std::string name_;
  std::unique_ptr<storage::PageStore> store_;
  std::unique_ptr<Pagelog> pagelog_;
  std::unique_ptr<Maplog> maplog_;
  storage::BufferPool snapshot_cache_;

  SnapshotId latest_snap_ = kNoSnapshot;
  // Latest snapshot declared before each page's last modification. Pages
  // absent were last modified before snapshot 1 (or never).
  std::unordered_map<storage::PageId, SnapshotId> mod_epoch_;
  // Most recent archive record per page; the diff base in kDiff mode.
  std::unordered_map<storage::PageId, uint64_t> last_capture_offset_;

  // Transaction state: mutations buffer in the page store's WAL batch, so
  // commit is atomic and rollback simply drops the batch.
  bool in_txn_ = false;

  // Snapshot-set session state (BeginSnapshotSet/EndSnapshotSet).
  bool snapshot_set_active_ = false;
  std::unique_ptr<SptCursor> set_cursor_;
  bool batch_archive_reads_ = false;
  int archive_read_retries_ = 0;
  // Cross-run SPT sharing (set_share_spt_builds). An entry is created by
  // the first opener of a snapshot and completed under its own mutex;
  // `spt_share_mu_` only guards the map. Builds run under the shared half
  // of mu_, so TruncateHistory (exclusive) never races one and can just
  // drop the map.
  struct SharedSpt {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    SnapshotPageTable table;
    uint64_t resume_index = 0;
  };
  std::atomic<bool> share_spt_builds_{false};
  std::atomic<int64_t> shared_spt_builds_total_{0};
  mutable std::mutex spt_share_mu_;
  std::unordered_map<SnapshotId, std::shared_ptr<SharedSpt>> spt_shared_;
  std::atomic<int64_t> simulated_archive_latency_us_{0};
  std::atomic<int> simulated_archive_fetch_slots_{0};
  std::mutex archive_fetch_mu_;  // guards the two slot-wait counters below
  std::condition_variable archive_fetch_cv_;
  int archive_fetches_inflight_ = 0;
  // Demand readers currently waiting for (or about to claim) a fetch
  // slot; prefetch loaders stay parked while this is nonzero.
  int demand_slot_waiters_ = 0;
  std::atomic<uint64_t> truncate_epoch_{0};
  std::atomic<PrefetchTracker*> prefetch_tracker_{nullptr};
  std::atomic<MetricsRegistry::Histogram*> diff_depth_hist_{nullptr};
  std::atomic<std::unordered_set<storage::PageId>*> read_recorder_{nullptr};
  std::atomic<std::unordered_map<storage::PageId, uint64_t>*>
      version_recorder_{nullptr};

  IterationStats stats_;
};

}  // namespace rql::retro

#endif  // RQL_RETRO_SNAPSHOT_STORE_H_

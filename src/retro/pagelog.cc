#include "retro/pagelog.h"

#include <cstring>
#include <vector>

namespace rql::retro {

namespace {

using storage::kPageSize;
using storage::Page;

constexpr uint8_t kTypeFull = 1;
constexpr uint8_t kTypeDiff = 2;

struct RecordHeader {
  uint8_t type = 0;
  uint8_t depth = 0;
  uint16_t range_count = 0;
  uint32_t payload_len = 0;
  uint64_t base_offset = 0;
};
static_assert(sizeof(RecordHeader) == 16);

struct DiffRange {
  uint16_t offset;
  uint16_t len;
};

/// Byte ranges where `page` differs from `base`, merging gaps smaller than
/// 8 bytes so range bookkeeping does not outweigh the savings.
std::vector<DiffRange> ComputeDiff(const Page& page, const Page& base) {
  std::vector<DiffRange> ranges;
  constexpr uint32_t kMergeGap = 8;
  uint32_t i = 0;
  while (i < kPageSize) {
    if (page.data[i] == base.data[i]) {
      ++i;
      continue;
    }
    uint32_t start = i;
    uint32_t last_diff = i;
    while (i < kPageSize) {
      if (page.data[i] != base.data[i]) {
        last_diff = i;
        ++i;
      } else if (i - last_diff < kMergeGap) {
        ++i;
      } else {
        break;
      }
    }
    ranges.push_back({static_cast<uint16_t>(start),
                      static_cast<uint16_t>(last_diff - start + 1)});
  }
  return ranges;
}

}  // namespace

Result<std::unique_ptr<Pagelog>> Pagelog::Open(storage::Env* env,
                                               const std::string& name) {
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> file,
                       env->OpenFile(name));
  auto log = std::unique_ptr<Pagelog>(new Pagelog(std::move(file)));
  RQL_RETURN_IF_ERROR(log->ScanExisting());
  return log;
}

Status Pagelog::ScanExisting() {
  uint64_t offset = 0;
  uint64_t size = file_->Size();
  RecordHeader header;
  while (offset < size) {
    // A partial trailing record is an interrupted append: nothing can
    // reference it (appends are synced before any dependent commit), so
    // recovery truncates it. Mid-log damage still reports Corruption.
    if (offset + sizeof(header) > size) {
      RQL_RETURN_IF_ERROR(file_->Truncate(offset));
      break;
    }
    RQL_RETURN_IF_ERROR(file_->Read(offset, sizeof(header),
                                    reinterpret_cast<char*>(&header)));
    if (header.type != kTypeFull && header.type != kTypeDiff) {
      return Status::Corruption("bad pagelog record type");
    }
    if (offset + sizeof(header) + header.payload_len > size) {
      RQL_RETURN_IF_ERROR(file_->Truncate(offset));
      break;
    }
    if (header.type == kTypeFull) {
      ++full_records_;
    } else {
      ++diff_records_;
    }
    ++record_count_;
    offset += sizeof(header) + header.payload_len;
  }
  return Status::OK();
}

Result<uint64_t> Pagelog::AppendFull(const Page& page) {
  RecordHeader header;
  header.type = kTypeFull;
  header.payload_len = kPageSize;
  std::string record(reinterpret_cast<const char*>(&header), sizeof(header));
  record.append(page.data, kPageSize);
  RQL_ASSIGN_OR_RETURN(uint64_t offset, AppendRecord(record));
  ++record_count_;
  ++full_records_;
  return offset;
}

Result<uint64_t> Pagelog::AppendRecord(const std::string& record) {
  uint64_t pre_size = file_->Size();
  uint64_t offset = 0;
  Status s = file_->Append(record.size(), record.data(), &offset);
  if (!s.ok()) {
    // A torn append may have left a partial record; drop it (best effort)
    // so later appends land on a clean tail.
    (void)file_->Truncate(pre_size);
    return s;
  }
  return offset;
}

Result<uint64_t> Pagelog::AppendDiff(const Page& page, uint64_t base_offset,
                                     const Page& base) {
  RQL_ASSIGN_OR_RETURN(int base_depth, DepthAt(base_offset));
  if (base_depth + 1 > max_diff_chain_) return AppendFull(page);

  std::vector<DiffRange> ranges = ComputeDiff(page, base);
  uint32_t data_bytes = 0;
  for (const DiffRange& r : ranges) data_bytes += r.len;
  uint32_t payload = static_cast<uint32_t>(ranges.size()) * 4 + data_bytes;
  if (ranges.empty() || payload > kDiffPayloadLimit ||
      ranges.size() > UINT16_MAX) {
    return AppendFull(page);
  }

  RecordHeader header;
  header.type = kTypeDiff;
  header.depth = static_cast<uint8_t>(base_depth + 1);
  header.range_count = static_cast<uint16_t>(ranges.size());
  header.payload_len = payload;
  header.base_offset = base_offset;
  std::string record(reinterpret_cast<const char*>(&header), sizeof(header));
  for (const DiffRange& r : ranges) {
    record.append(reinterpret_cast<const char*>(&r.offset), 2);
    record.append(reinterpret_cast<const char*>(&r.len), 2);
  }
  for (const DiffRange& r : ranges) {
    record.append(page.data + r.offset, r.len);
  }
  RQL_ASSIGN_OR_RETURN(uint64_t offset, AppendRecord(record));
  ++record_count_;
  ++diff_records_;
  return offset;
}

Status Pagelog::Read(uint64_t offset, Page* page,
                     int64_t* records_fetched) const {
  RecordHeader header;
  if (offset + sizeof(header) > file_->Size()) {
    return Status::InvalidArgument("pagelog read at bad offset");
  }
  RQL_RETURN_IF_ERROR(file_->Read(offset, sizeof(header),
                                  reinterpret_cast<char*>(&header)));
  if (records_fetched != nullptr) ++*records_fetched;
  if (header.type == kTypeFull) {
    if (header.payload_len != kPageSize) {
      return Status::Corruption("bad full-page record length");
    }
    return file_->Read(offset + sizeof(header), kPageSize, page->data);
  }
  if (header.type != kTypeDiff) {
    return Status::Corruption("bad pagelog record type");
  }
  // Reconstruct the base first (recursively), then patch.
  RQL_RETURN_IF_ERROR(Read(header.base_offset, page, records_fetched));
  std::string payload(header.payload_len, '\0');
  RQL_RETURN_IF_ERROR(
      file_->Read(offset + sizeof(header), header.payload_len,
                  payload.data()));
  const char* range_ptr = payload.data();
  const char* data_ptr = payload.data() + header.range_count * 4;
  for (uint16_t i = 0; i < header.range_count; ++i) {
    uint16_t range_offset, range_len;
    std::memcpy(&range_offset, range_ptr, 2);
    std::memcpy(&range_len, range_ptr + 2, 2);
    range_ptr += 4;
    if (static_cast<uint32_t>(range_offset) + range_len > kPageSize) {
      return Status::Corruption("diff range out of bounds");
    }
    std::memcpy(page->data + range_offset, data_ptr, range_len);
    data_ptr += range_len;
  }
  return Status::OK();
}

Result<int> Pagelog::DepthAt(uint64_t offset) const {
  RecordHeader header;
  if (offset + sizeof(header) > file_->Size()) {
    return Status::InvalidArgument("pagelog DepthAt at bad offset");
  }
  RQL_RETURN_IF_ERROR(file_->Read(offset, sizeof(header),
                                  reinterpret_cast<char*>(&header)));
  return static_cast<int>(header.depth);
}

}  // namespace rql::retro

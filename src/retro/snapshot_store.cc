#include "retro/snapshot_store.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/clock.h"

namespace rql::retro {

namespace {
std::string TruncateMarkerName(const std::string& name) {
  return name + ".compact.commit";
}
}  // namespace

Status SnapshotStore::RecoverTruncation(storage::Env* env,
                                        const std::string& name) {
  const std::string pagelog = name + ".pagelog";
  const std::string maplog = name + ".maplog";
  if (env->FileExists(TruncateMarkerName(name))) {
    // The compacted logs were complete when the marker was written:
    // (re)finish the swap.
    for (const std::string& file : {pagelog, maplog}) {
      if (env->FileExists(file + ".compact")) {
        if (env->FileExists(file)) {
          RQL_RETURN_IF_ERROR(env->DeleteFile(file));
        }
        RQL_RETURN_IF_ERROR(env->RenameFile(file + ".compact", file));
      }
    }
    return env->DeleteFile(TruncateMarkerName(name));
  }
  // No marker: any leftover .compact files belong to an interrupted
  // compaction that never committed; discard them.
  for (const std::string& file : {pagelog, maplog}) {
    if (env->FileExists(file + ".compact")) {
      RQL_RETURN_IF_ERROR(env->DeleteFile(file + ".compact"));
    }
  }
  return Status::OK();
}

Result<std::unique_ptr<SnapshotStore>> SnapshotStore::Open(
    storage::Env* env, const std::string& name, Options options) {
  RQL_RETURN_IF_ERROR(RecoverTruncation(env, name));
  auto store = std::unique_ptr<SnapshotStore>(new SnapshotStore(options));
  store->env_ = env;
  store->name_ = name;
  RQL_ASSIGN_OR_RETURN(store->store_,
                       storage::PageStore::Open(env, name + ".db"));
  RQL_ASSIGN_OR_RETURN(store->pagelog_,
                       Pagelog::Open(env, name + ".pagelog"));
  RQL_ASSIGN_OR_RETURN(store->maplog_, Maplog::Open(env, name + ".maplog"));
  RQL_RETURN_IF_ERROR(store->maplog_->RecoverModEpochs(
      &store->mod_epoch_, &store->latest_snap_,
      &store->last_capture_offset_));
  store->snapshot_cache_.set_capacity(options.snapshot_cache_pages);
  // Archive-ahead ordering: before any page-store commit becomes durable,
  // flush the pre-states it is about to overwrite and their Maplog
  // mappings. Without this, a crash could persist post-states whose
  // archived pre-states were still buffered — silently breaking every
  // snapshot declared before the commit.
  SnapshotStore* raw = store.get();
  store->store_->set_pre_commit_hook([raw]() -> Status {
    if (raw->pagelog_ != nullptr) RQL_RETURN_IF_ERROR(raw->pagelog_->Sync());
    if (raw->maplog_ != nullptr) RQL_RETURN_IF_ERROR(raw->maplog_->Sync());
    return Status::OK();
  });
  return store;
}

Status SnapshotStore::CaptureIfNeeded(storage::PageId id,
                                      const storage::Page* current) {
  if (latest_snap_ == kNoSnapshot) return Status::OK();
  SnapshotId epoch = ModEpoch(id);
  if (epoch >= latest_snap_) return Status::OK();  // already captured/fresh
  storage::Page pre_state;
  if (current == nullptr) {
    RQL_RETURN_IF_ERROR(store_->ReadPage(id, &pre_state));
    current = &pre_state;
  }
  uint64_t offset = 0;
  auto base_it = last_capture_offset_.find(id);
  if (options_.pagelog_mode == PagelogMode::kDiff &&
      base_it != last_capture_offset_.end()) {
    storage::Page base;
    RQL_RETURN_IF_ERROR(pagelog_->Read(base_it->second, &base));
    RQL_ASSIGN_OR_RETURN(offset,
                         pagelog_->AppendDiff(*current, base_it->second,
                                              base));
  } else {
    RQL_ASSIGN_OR_RETURN(offset, pagelog_->AppendFull(*current));
  }
  last_capture_offset_[id] = offset;
  RQL_RETURN_IF_ERROR(
      maplog_->AppendCapture(id, epoch + 1, latest_snap_, offset));
  mod_epoch_[id] = latest_snap_;
  return Status::OK();
}

Result<storage::PageId> SnapshotStore::AllocatePage() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  RQL_ASSIGN_OR_RETURN(storage::PageId id, store_->AllocatePage());
  if (latest_snap_ != kNoSnapshot && ModEpoch(id) != latest_snap_) {
    mod_epoch_[id] = latest_snap_;
    RQL_RETURN_IF_ERROR(maplog_->AppendAlloc(id, latest_snap_));
  }
  return id;
}

Status SnapshotStore::FreePage(storage::PageId id) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  // Freeing rewrites the page (free-list link), so the pre-state must be
  // archived like any other modification.
  storage::Page current;
  RQL_RETURN_IF_ERROR(store_->ReadPage(id, &current));
  RQL_RETURN_IF_ERROR(CaptureIfNeeded(id, &current));
  return store_->FreePage(id);
}

Status SnapshotStore::ReadPage(storage::PageId id, storage::Page* page) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  return store_->ReadPage(id, page);
}

Status SnapshotStore::WritePage(storage::PageId id,
                                const storage::Page& page) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (latest_snap_ != kNoSnapshot && ModEpoch(id) < latest_snap_) {
    storage::Page current;
    RQL_RETURN_IF_ERROR(store_->ReadPage(id, &current));
    RQL_RETURN_IF_ERROR(CaptureIfNeeded(id, &current));
  }
  return store_->WritePage(id, page);
}

Status SnapshotStore::Begin() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (in_txn_) return Status::InvalidArgument("transaction already active");
  RQL_RETURN_IF_ERROR(store_->BeginBatch());
  in_txn_ = true;
  return Status::OK();
}

Status SnapshotStore::Commit(bool declare_snapshot, SnapshotId* declared) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (!in_txn_) return Status::InvalidArgument("no active transaction");
  // The batch is consumed either way (CommitBatch drops it on failure), so
  // the transaction ends even when the commit does not stick.
  in_txn_ = false;
  RQL_RETURN_IF_ERROR(store_->CommitBatch());
  if (declare_snapshot) {
    RQL_ASSIGN_OR_RETURN(SnapshotId snap, DeclareSnapshotLocked());
    if (declared != nullptr) *declared = snap;
  }
  return Status::OK();
}

Status SnapshotStore::Rollback() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (!in_txn_) return Status::InvalidArgument("no active transaction");
  // The WAL batch never reached the file; dropping it undoes everything.
  // Captures made during the transaction stay in the archive, and remain
  // correct: they recorded exactly the content the rollback restores.
  in_txn_ = false;
  return store_->RollbackBatch();
}

Result<SnapshotId> SnapshotStore::DeclareSnapshot() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  return DeclareSnapshotLocked();
}

Result<SnapshotId> SnapshotStore::DeclareSnapshotLocked() {
  if (in_txn_) {
    return Status::InvalidArgument(
        "DeclareSnapshot inside a transaction; use Commit(declare_snapshot)");
  }
  SnapshotId snap = latest_snap_ + 1;
  RQL_RETURN_IF_ERROR(maplog_->AppendSnapshotMark(snap));
  // A snapshot counts as declared only once its mark is durable — the
  // caller's COMMIT WITH SNAPSHOT must not ack a declaration a crash
  // could lose.
  RQL_RETURN_IF_ERROR(maplog_->Sync());
  latest_snap_ = snap;
  return snap;
}

Status SnapshotStore::TruncateHistory(SnapshotId keep_from) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (in_txn_) {
    return Status::InvalidArgument(
        "TruncateHistory inside a transaction is not allowed");
  }
  if (keep_from <= maplog_->earliest()) return Status::OK();
  if (keep_from > latest_snap_ + 1) {
    return Status::InvalidArgument("cannot truncate beyond the history");
  }

  const std::string pagelog_name = name_ + ".pagelog";
  const std::string maplog_name = name_ + ".maplog";
  // Start from a clean slate in case an earlier attempt was interrupted
  // before committing.
  RQL_RETURN_IF_ERROR(RecoverTruncation(env_, name_));

  // 1. Stream-rewrite both logs, dropping captures that cover only
  //    truncated snapshots and re-basing kept pre-states.
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<Pagelog> new_pagelog,
                       Pagelog::Open(env_, pagelog_name + ".compact"));
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<Maplog> new_maplog,
                       Maplog::Open(env_, maplog_name + ".compact"));
  RQL_RETURN_IF_ERROR(new_maplog->AppendTruncate(keep_from));

  // Per page: the offset of its last rewritten record (the diff base).
  std::unordered_map<storage::PageId, uint64_t> rebase;
  for (const MaplogEntry& entry : maplog_->entries()) {
    switch (entry.type) {
      case MaplogEntry::kSnapshotMark:
        RQL_RETURN_IF_ERROR(new_maplog->AppendSnapshotMark(entry.end_snap));
        break;
      case MaplogEntry::kAlloc:
        RQL_RETURN_IF_ERROR(
            new_maplog->AppendAlloc(entry.page, entry.end_snap));
        break;
      case MaplogEntry::kTruncate:
        break;  // superseded by the new truncate record
      case MaplogEntry::kCapture: {
        if (entry.end_snap < keep_from) break;  // covers dropped snaps only
        storage::Page content;
        RQL_RETURN_IF_ERROR(pagelog_->Read(entry.pagelog_offset, &content));
        uint64_t new_offset = 0;
        auto base = rebase.find(entry.page);
        if (options_.pagelog_mode == PagelogMode::kDiff &&
            base != rebase.end()) {
          storage::Page base_content;
          RQL_RETURN_IF_ERROR(
              new_pagelog->Read(base->second, &base_content));
          RQL_ASSIGN_OR_RETURN(
              new_offset,
              new_pagelog->AppendDiff(content, base->second, base_content));
        } else {
          RQL_ASSIGN_OR_RETURN(new_offset, new_pagelog->AppendFull(content));
        }
        rebase[entry.page] = new_offset;
        RQL_RETURN_IF_ERROR(new_maplog->AppendCapture(
            entry.page, entry.start_snap, entry.end_snap, new_offset));
        break;
      }
      default:
        return Status::Corruption("bad maplog entry during truncation");
    }
  }
  new_pagelog.reset();
  new_maplog.reset();

  // 2. Commit point: once the marker exists, recovery completes the swap.
  {
    RQL_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> marker,
                         env_->OpenFile(TruncateMarkerName(name_)));
    uint64_t offset = 0;
    RQL_RETURN_IF_ERROR(marker->Append(2, "ok", &offset));
    RQL_RETURN_IF_ERROR(marker->Sync());
  }
  pagelog_.reset();
  maplog_.reset();
  RQL_RETURN_IF_ERROR(RecoverTruncation(env_, name_));

  // 3. Reopen on the compacted logs and rebuild in-memory state.
  RQL_ASSIGN_OR_RETURN(pagelog_, Pagelog::Open(env_, pagelog_name));
  RQL_ASSIGN_OR_RETURN(maplog_, Maplog::Open(env_, maplog_name));
  RQL_RETURN_IF_ERROR(maplog_->RecoverModEpochs(&mod_epoch_, &latest_snap_,
                                                &last_capture_offset_));
  // Published before the cache clear: a background prefetcher that
  // re-checks the epoch after this store observes the bump no later than
  // it could observe recycled offsets, and abandons its stale plan.
  truncate_epoch_.fetch_add(1, std::memory_order_acq_rel);
  snapshot_cache_.Clear();
  // Compaction rewrote the log; any open snapshot-set cursor holds stale
  // chain state and must re-anchor on its next seek, and cached shared
  // SPTs hold pre-compaction Pagelog offsets (recycled keys) and must go.
  // No build is in flight here: builds run under the shared half of mu_,
  // which we hold exclusively.
  set_cursor_.reset();
  {
    std::lock_guard<std::mutex> share_lock(spt_share_mu_);
    spt_shared_.clear();
  }
  return Status::OK();
}

void SnapshotStore::BeginSnapshotSet() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  if (snapshot_set_active_) return;
  snapshot_set_active_ = true;
  set_cursor_.reset();
}

void SnapshotStore::EndSnapshotSet() {
  std::lock_guard<std::shared_mutex> lock(mu_);
  snapshot_set_active_ = false;
  set_cursor_.reset();
}

Result<bool> SnapshotStore::AdvanceSnapshotSet(
    SnapshotId snap, std::vector<storage::PageId>* delta) {
  std::lock_guard<std::shared_mutex> lock(mu_);
  delta->clear();
  if (!snapshot_set_active_) {
    return Status::InvalidArgument(
        "AdvanceSnapshotSet requires an active snapshot-set session");
  }
  if (set_cursor_ == nullptr) set_cursor_ = std::make_unique<SptCursor>();
  SptBuildStats build;
  int64_t delta_entries = 0;
  RQL_RETURN_IF_ERROR(
      set_cursor_->Seek(*maplog_, snap, &build, &delta_entries));
  AddSptBuildStats(build);
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.spt_delta_entries += delta_entries;
  }
  if (!set_cursor_->last_delta_valid()) return false;
  *delta = set_cursor_->last_delta();
  return true;
}

Result<std::unique_ptr<SnapshotView>> SnapshotStore::OpenSnapshot(
    SnapshotId snap) {
  int64_t lock_start_us = NowMicros();
  std::shared_lock<std::shared_mutex> lock(mu_);
  int64_t waited_us = NowMicros() - lock_start_us;
  if (snapshot_set_active_) {
    // Snapshot-set sessions advance a shared cursor, which the reader lock
    // cannot protect; upgrade to the writer half. Sequential RQL runs are
    // the only users of snapshot sets, so this costs parallelism nothing.
    lock.unlock();
    std::lock_guard<std::shared_mutex> exclusive(mu_);
    return OpenSnapshotExclusive(snap);
  }
  if (snap == kNoSnapshot || snap > latest_snap_) {
    return Status::NotFound("unknown snapshot id " + std::to_string(snap));
  }
  auto view = std::unique_ptr<SnapshotView>(new SnapshotView(this, snap));
  AddLockWaitUs(waited_us);
  if (share_spt_builds_.load(std::memory_order_relaxed)) {
    RQL_RETURN_IF_ERROR(FillSptShared(snap, view.get()));
  } else {
    SptBuildStats build;
    Status s =
        maplog_->BuildSpt(snap, &view->spt_, &view->resume_index_, &build);
    AddSptBuildStats(build);
    RQL_RETURN_IF_ERROR(s);
  }
  if (batch_archive_reads_) {
    RQL_RETURN_IF_ERROR(PrefetchArchived(*view));
  }
  return view;
}

Status SnapshotStore::FillSptShared(SnapshotId snap, SnapshotView* view) {
  constexpr size_t kMaxSharedSpts = 64;
  std::shared_ptr<SharedSpt> entry;
  bool builder = false;
  {
    std::lock_guard<std::mutex> share_lock(spt_share_mu_);
    auto it = spt_shared_.find(snap);
    if (it == spt_shared_.end()) {
      // Crude bound: tables can be large, and runs sweep snapshots in
      // order, so wholesale reset beats tracking recency. In-flight
      // waiters keep their entry alive through their own shared_ptr.
      if (spt_shared_.size() >= kMaxSharedSpts) spt_shared_.clear();
      entry = std::make_shared<SharedSpt>();
      spt_shared_.emplace(snap, entry);
      builder = true;
    } else {
      entry = it->second;
    }
  }
  if (builder) {
    SptBuildStats build;
    entry->status =
        maplog_->BuildSpt(snap, &entry->table, &entry->resume_index, &build);
    AddSptBuildStats(build);
    {
      std::lock_guard<std::mutex> entry_lock(entry->mu);
      entry->done = true;
    }
    entry->cv.notify_all();
    if (!entry->status.ok()) {
      // Do not cache failures; let the next caller retry the build.
      std::lock_guard<std::mutex> share_lock(spt_share_mu_);
      auto it = spt_shared_.find(snap);
      if (it != spt_shared_.end() && it->second == entry) {
        spt_shared_.erase(it);
      }
      return entry->status;
    }
  } else {
    {
      std::unique_lock<std::mutex> entry_lock(entry->mu);
      entry->cv.wait(entry_lock, [&] { return entry->done; });
    }
    if (!entry->status.ok()) return entry->status;
    shared_spt_builds_total_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    ++stats_.shared_spt_builds;
  }
  // Copy out (views mutate their table during Maplog catch-up). A table
  // built earlier than `now` is sound: resume_index records where its
  // build stopped, and the view's refresh path replays the suffix.
  int64_t copy_start_us = NowMicros();
  view->spt_ = entry->table;
  view->resume_index_ = entry->resume_index;
  SptBuildStats copy;
  copy.cpu_us = NowMicros() - copy_start_us;
  AddSptBuildStats(copy);
  return Status::OK();
}

Result<std::unique_ptr<SnapshotView>> SnapshotStore::OpenSnapshotExclusive(
    SnapshotId snap) {
  if (snap == kNoSnapshot || snap > latest_snap_) {
    return Status::NotFound("unknown snapshot id " + std::to_string(snap));
  }
  auto view = std::unique_ptr<SnapshotView>(new SnapshotView(this, snap));
  SptBuildStats build;
  if (snapshot_set_active_) {
    if (set_cursor_ == nullptr) set_cursor_ = std::make_unique<SptCursor>();
    int64_t delta_entries = 0;
    RQL_RETURN_IF_ERROR(
        set_cursor_->Seek(*maplog_, snap, &build, &delta_entries));
    int64_t copy_start_us = NowMicros();
    view->spt_ = set_cursor_->table();
    build.cpu_us += NowMicros() - copy_start_us;
    view->resume_index_ = maplog_->entry_count();
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.spt_delta_entries += delta_entries;
    }
  } else {
    RQL_RETURN_IF_ERROR(
        maplog_->BuildSpt(snap, &view->spt_, &view->resume_index_, &build));
  }
  AddSptBuildStats(build);
  if (batch_archive_reads_) {
    RQL_RETURN_IF_ERROR(PrefetchArchived(*view));
  }
  return view;
}

storage::BufferPool::Loader SnapshotStore::MakeArchiveLoader(
    int64_t* fetches, bool prefetch) {
  return [this, fetches, prefetch](uint64_t off, storage::Page* p) {
    // Diff-chain reconstruction may touch several records; each counts as
    // an archive fetch (the Thresher trade-off).
    const int64_t fetches_before = *fetches;
    Status s = pagelog_->Read(off, p, fetches);
    if (s.ok()) {
      auto* hist = diff_depth_hist_.load(std::memory_order_acquire);
      if (hist != nullptr && *fetches > fetches_before) {
        // Records touched minus one == the chain depth DepthAt(off) would
        // report, without a second log walk.
        hist->ObserveUs(*fetches - fetches_before - 1);
      }
    }
    int64_t latency_us =
        simulated_archive_latency_us_.load(std::memory_order_relaxed);
    if (s.ok() && latency_us > 0) {
      // With bounded fetch slots the sleep itself queues, so concurrent
      // fetches beyond the archive's bandwidth serialize (the slot limit
      // is re-read inside the wait: shrinking it mid-run is safe, callers
      // waiting under an older, larger bound wake as slots free up).
      // Prefetch loads additionally yield to demand: a background fetch
      // stays parked while any foreground reader wants a slot, so warming
      // ahead spends only the bandwidth the query leaves idle.
      const int slots =
          simulated_archive_fetch_slots_.load(std::memory_order_relaxed);
      if (slots > 0) {
        std::unique_lock<std::mutex> slot_lock(archive_fetch_mu_);
        if (!prefetch) ++demand_slot_waiters_;
        archive_fetch_cv_.wait(slot_lock, [this, slots, prefetch] {
          if (archive_fetches_inflight_ >= slots) return false;
          return !(prefetch && demand_slot_waiters_ > 0);
        });
        if (!prefetch) --demand_slot_waiters_;
        ++archive_fetches_inflight_;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(latency_us));
      if (slots > 0) {
        {
          std::lock_guard<std::mutex> slot_lock(archive_fetch_mu_);
          --archive_fetches_inflight_;
        }
        // All, not one: demand and prefetch waiters have different wake
        // predicates, and a single notify could land on a prefetch that
        // immediately re-parks behind a waiting demand reader.
        archive_fetch_cv_.notify_all();
      }
    }
    return s;
  };
}

Status SnapshotStore::PrefetchArchived(const SnapshotView& view) {
  std::vector<uint64_t> missing;
  missing.reserve(view.spt_.size());
  // The batched sweep is the demand front-end for every page the
  // iteration maps, so it must credit the background prefetcher the same
  // way ReadArchivedPinned does: a page served without a fresh load —
  // already resident or coalesced onto an in-flight fetch — is a demand
  // read a prefetched page saved.
  auto* tracker = prefetch_tracker_.load(std::memory_order_acquire);
  for (const auto& [page, offset] : view.spt_) {
    if (!snapshot_cache_.Lookup(offset)) {
      missing.push_back(offset);
    } else if (tracker != nullptr) {
      tracker->OnArchivedPageServed(offset);
    }
  }
  std::sort(missing.begin(), missing.end());
  int64_t batched = 0;
  int64_t retries = 0;
  Status s = Status::OK();
  for (uint64_t offset : missing) {
    int64_t fetches = 0;
    storage::BufferPool::GetOutcome outcome;
    auto fetch = [&]() {
      fetches = 0;
      outcome = {};
      return snapshot_cache_.Get(offset, MakeArchiveLoader(&fetches),
                                 &outcome);
    };
    Result<storage::PinnedPage> page = fetch();
    for (int r = 0; !page.ok() && r < archive_read_retries_; ++r) {
      ++retries;
      page = fetch();
    }
    if (!page.ok()) {
      s = page.status();
      break;
    }
    if (outcome.loaded) {
      batched += fetches;
    } else if (tracker != nullptr) {
      tracker->OnArchivedPageServed(offset);
    }
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.batched_pagelog_reads += batched;
    stats_.archive_read_retries += retries;
  }
  return s;
}

Status SnapshotStore::ReadArchived(uint64_t pagelog_offset,
                                   storage::Page* page) {
  RQL_ASSIGN_OR_RETURN(storage::PinnedPage pin,
                       ReadArchivedPinned(pagelog_offset));
  *page = *pin;
  return Status::OK();
}

Result<storage::PinnedPage> SnapshotStore::ReadArchivedPinned(
    uint64_t pagelog_offset) {
  int64_t fetches = 0;
  storage::BufferPool::GetOutcome outcome;
  auto fetch = [&]() {
    fetches = 0;
    outcome = {};
    return snapshot_cache_.Get(pagelog_offset, MakeArchiveLoader(&fetches),
                               &outcome);
  };
  // Transient media errors are retried within the configured budget; a
  // persistent failure still propagates to the iteration. Coalesced
  // waiters receive the owner's error and retry with their own fresh load.
  Result<storage::PinnedPage> result = fetch();
  int64_t retries = 0;
  for (int r = 0; !result.ok() && r < archive_read_retries_; ++r) {
    ++retries;
    result = fetch();
  }
  {
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.archive_read_retries += retries;
    if (result.ok()) {
      if (outcome.loaded) {
        stats_.pagelog_page_reads += fetches;
      } else if (outcome.coalesced) {
        ++stats_.coalesced_loads;
        stats_.lock_wait_us += outcome.wait_us;
      } else {
        ++stats_.snapshot_cache_hits;
      }
    }
  }
  if (result.ok() && !outcome.loaded) {
    // Served without loading (hit or coalesced): tell the prefetcher, so
    // it can attribute the save to a page it fetched ahead. Outside
    // stats_mu_ — the tracker synchronizes internally.
    auto* tracker = prefetch_tracker_.load(std::memory_order_acquire);
    if (tracker != nullptr) tracker->OnArchivedPageServed(pagelog_offset);
  }
  return result;
}

void SnapshotStore::AddSptBuildStats(const SptBuildStats& s) {
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.spt.entries_scanned += s.entries_scanned;
  stats_.spt.maplog_pages_read += s.maplog_pages_read;
  stats_.spt.cpu_us += s.cpu_us;
}

void SnapshotStore::AddLockWaitUs(int64_t us) {
  if (us <= 0) return;
  std::lock_guard<std::mutex> stats_lock(stats_mu_);
  stats_.lock_wait_us += us;
}

void SnapshotView::RecordVersion(storage::PageId id, uint64_t token) {
  if (version_recorder_ != nullptr) {
    (*version_recorder_)[id] = token;
    return;
  }
  store_->RecordPageVersion(id, token);
}

bool SnapshotView::PageVersion(storage::PageId id, uint64_t* version) {
  // A scan-cache hit answers the read from this version lookup alone,
  // never reaching ReadPage/ReadPagePinned — so the read must be recorded
  // here for the iteration-skip read set to stay a superset of the pages
  // the query depends on.
  store_->RecordPageRead(id);
  // Only SPT-mapped pages have a stable identity: their content lives in
  // an immutable archive record at a fixed offset. A page shared with the
  // current database may change under a concurrently committing update, so
  // it is deliberately unversioned (and thus uncacheable across reads).
  auto it = spt_.find(id);
  if (it == spt_.end()) {
    RecordVersion(id, kUnversionedPageToken);
    return false;
  }
  RecordVersion(id, it->second);
  *version = it->second;
  return true;
}

Result<storage::PinnedPage> SnapshotView::ReadPagePinned(
    storage::PageId id) {
  store_->RecordPageRead(id);
  auto it = spt_.find(id);
  if (it == spt_.end()) {
    RecordVersion(id, kUnversionedPageToken);
    return storage::PinnedPage();
  }
  RecordVersion(id, it->second);
  return store_->ReadArchivedPinned(it->second);
}

Status SnapshotView::ReadPage(storage::PageId id, storage::Page* page) {
  store_->RecordPageRead(id);
  // Fast path: the page is archived and already mapped by this view's SPT.
  // The SPT is view-local, archive records are immutable and the snapshot
  // cache synchronizes internally, so no store lock is needed; concurrent
  // workers only meet inside the cache, where racing misses on a shared
  // pre-state page coalesce into one archive read.
  auto it = spt_.find(id);
  if (it != spt_.end()) {
    RecordVersion(id, it->second);
    return store_->ReadArchived(it->second, page);
  }

  // SPT miss: the page is either shared with the current state or was
  // captured after this view was built. Both checks consult metadata that
  // update transactions mutate, so they hold the reader half of the store
  // lock (excluding writers, not other snapshot readers).
  int64_t lock_start_us = NowMicros();
  std::shared_lock<std::shared_mutex> lock(store_->mu_);
  store_->AddLockWaitUs(NowMicros() - lock_start_us);
  if (store_->ModEpoch(id) >= snap_) {
    // The page was modified after this view was built; its pre-state is in
    // a Maplog suffix we have not scanned yet.
    SptBuildStats refresh;
    Status s = store_->maplog_->RefreshSpt(snap_, &spt_, &resume_index_,
                                           &refresh);
    store_->AddSptBuildStats(refresh);
    RQL_RETURN_IF_ERROR(s);
    it = spt_.find(id);
    if (it == spt_.end()) {
      return Status::Corruption("page " + std::to_string(id) +
                                " does not exist in snapshot " +
                                std::to_string(snap_));
    }
    lock.unlock();
    RecordVersion(id, it->second);
    return store_->ReadArchived(it->second, page);
  }
  // Shared with the current database state.
  {
    std::lock_guard<std::mutex> stats_lock(store_->stats_mu_);
    ++store_->stats_.db_page_reads;
  }
  RecordVersion(id, kUnversionedPageToken);
  return store_->store_->ReadPage(id, page);
}

}  // namespace rql::retro

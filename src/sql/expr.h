#ifndef RQL_SQL_EXPR_H_
#define RQL_SQL_EXPR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/functions.h"
#include "sql/schema.h"

namespace rql::sql {

/// Name-resolution scope: the tables visible to an expression, in FROM
/// order. Column references resolve to offsets into the concatenation of
/// the tables' rows.
struct BindScope {
  struct Entry {
    std::string alias;           // lower-cased
    const TableSchema* schema;
    int offset;                  // first column's index in the joined row
  };
  std::vector<Entry> entries;
  int total_columns = 0;

  void Add(std::string_view alias, const TableSchema* schema);
};

/// Resolves every column reference in `expr` against `scope`, setting
/// Expr::column_index. Fails on unknown or ambiguous names.
Status BindExpr(Expr* expr, const BindScope& scope);

/// True if the (sub)tree contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

/// Collects pointers to the aggregate call nodes in evaluation order.
void CollectAggregates(Expr* expr, std::vector<Expr*>* out);

/// Executes uncorrelated subquery expressions for the evaluator. The
/// SELECT executor implements this with per-statement result caching (an
/// uncorrelated subquery's result is row-independent).
class SubqueryRunner {
 public:
  virtual ~SubqueryRunner() = default;
  /// Materialized rows of `expr` (kind == kSubquery). The pointer stays
  /// valid for the lifetime of the enclosing statement execution.
  virtual Result<const std::vector<Row>*> RunSubquery(const Expr& expr) = 0;
};

/// Evaluation context: the current joined input row plus, during the
/// output phase of an aggregation, the computed value of each aggregate
/// node.
struct EvalContext {
  const Row* row = nullptr;
  const FunctionRegistry* functions = nullptr;
  /// Parallel arrays: aggregate node -> its value for the current group.
  const std::vector<const Expr*>* agg_nodes = nullptr;
  const std::vector<Value>* agg_values = nullptr;
  /// Present only where subqueries are supported (SELECT execution).
  SubqueryRunner* subqueries = nullptr;
};

/// Evaluates a bound expression with SQL three-valued logic (comparisons
/// with NULL yield NULL, AND/OR follow Kleene logic).
Result<Value> EvalExpr(const Expr& expr, const EvalContext& ctx);

/// True if `expr` is in the subset the vectorized evaluator handles:
/// literals, bound parameters, column references, unary operators,
/// comparisons (including LIKE) and arithmetic, and AND/OR over those.
/// Function calls, IN, CASE and subqueries are not vectorized; callers
/// route such expressions through scalar EvalExpr row by row (the
/// "scalar fallback"). The answer is row-independent, so callers check
/// once per scan, not per batch.
bool EvalBatchSupported(const Expr& expr);

/// Vectorized expression evaluation: computes `expr` for each row index
/// in sel[0..count) of `rows`, writing one value per selected row into
/// `out` (resized to count). Requires EvalBatchSupported(expr).
///
/// Semantics match scalar EvalExpr exactly, including error behavior:
/// AND/OR evaluate their right operand only for the rows the left
/// operand does not already decide (Kleene short-circuit), so a row the
/// scalar path would never evaluate the right operand for cannot raise
/// a right-operand error here either. Any error aborts the whole batch.
Status EvalBatch(const Expr& expr, const Row* rows, const uint32_t* sel,
                 size_t count, std::vector<Value>* out);

/// SQL truthiness of a value: NULL and zero are false.
bool ValueIsTrue(const Value& v);

/// SQL LIKE with % and _ wildcards (case-sensitive).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace rql::sql

#endif  // RQL_SQL_EXPR_H_

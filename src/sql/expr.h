#ifndef RQL_SQL_EXPR_H_
#define RQL_SQL_EXPR_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/functions.h"
#include "sql/schema.h"

namespace rql::sql {

/// Name-resolution scope: the tables visible to an expression, in FROM
/// order. Column references resolve to offsets into the concatenation of
/// the tables' rows.
struct BindScope {
  struct Entry {
    std::string alias;           // lower-cased
    const TableSchema* schema;
    int offset;                  // first column's index in the joined row
  };
  std::vector<Entry> entries;
  int total_columns = 0;

  void Add(std::string_view alias, const TableSchema* schema);
};

/// Resolves every column reference in `expr` against `scope`, setting
/// Expr::column_index. Fails on unknown or ambiguous names.
Status BindExpr(Expr* expr, const BindScope& scope);

/// True if the (sub)tree contains an aggregate function call.
bool ContainsAggregate(const Expr& expr);

/// Collects pointers to the aggregate call nodes in evaluation order.
void CollectAggregates(Expr* expr, std::vector<Expr*>* out);

/// Executes uncorrelated subquery expressions for the evaluator. The
/// SELECT executor implements this with per-statement result caching (an
/// uncorrelated subquery's result is row-independent).
class SubqueryRunner {
 public:
  virtual ~SubqueryRunner() = default;
  /// Materialized rows of `expr` (kind == kSubquery). The pointer stays
  /// valid for the lifetime of the enclosing statement execution.
  virtual Result<const std::vector<Row>*> RunSubquery(const Expr& expr) = 0;
};

/// Evaluation context: the current joined input row plus, during the
/// output phase of an aggregation, the computed value of each aggregate
/// node.
struct EvalContext {
  const Row* row = nullptr;
  const FunctionRegistry* functions = nullptr;
  /// Parallel arrays: aggregate node -> its value for the current group.
  const std::vector<const Expr*>* agg_nodes = nullptr;
  const std::vector<Value>* agg_values = nullptr;
  /// Present only where subqueries are supported (SELECT execution).
  SubqueryRunner* subqueries = nullptr;
};

/// Evaluates a bound expression with SQL three-valued logic (comparisons
/// with NULL yield NULL, AND/OR follow Kleene logic).
Result<Value> EvalExpr(const Expr& expr, const EvalContext& ctx);

/// SQL truthiness of a value: NULL and zero are false.
bool ValueIsTrue(const Value& v);

/// SQL LIKE with % and _ wildcards (case-sensitive).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace rql::sql

#endif  // RQL_SQL_EXPR_H_

#include "sql/executor.h"

#include <algorithm>
#include <cstring>
#include <unordered_map>

#include "common/clock.h"
#include "rql/aggregates.h"
#include "sql/btree.h"
#include "sql/heap_table.h"

namespace rql::sql {

namespace {

// Splits a bound expression into AND-conjuncts (ownership transferred).
void SplitConjuncts(ExprPtr expr, std::vector<ExprPtr>* out) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kBinary && expr->bin_op == BinOp::kAnd) {
    SplitConjuncts(std::move(expr->args[0]), out);
    SplitConjuncts(std::move(expr->args[1]), out);
    return;
  }
  out->push_back(std::move(expr));
}

ExprPtr CombineConjuncts(std::vector<ExprPtr> conjuncts) {
  ExprPtr result;
  for (ExprPtr& c : conjuncts) {
    if (c == nullptr) continue;
    result = result ? MakeBinary(BinOp::kAnd, std::move(result), std::move(c))
                    : std::move(c);
  }
  return result;
}

// Highest column index referenced, or -1.
int MaxColumnIndex(const Expr& expr) {
  int max = expr.kind == ExprKind::kColumnRef ? expr.column_index : -1;
  for (const ExprPtr& arg : expr.args) {
    max = std::max(max, MaxColumnIndex(*arg));
  }
  return max;
}

std::string ExprToName(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kColumnRef:
      return expr.name;
    case ExprKind::kLiteral:
      return expr.literal.ToString();
    case ExprKind::kStar:
      return "*";
    case ExprKind::kFunctionCall: {
      std::string out = expr.name + "(";
      for (size_t i = 0; i < expr.args.size(); ++i) {
        if (i > 0) out += ",";
        out += ExprToName(*expr.args[i]);
      }
      return out + ")";
    }
    default:
      return "expr";
  }
}

// Names of tables an unbound expression references, resolved against the
// candidate sources by qualifier or unique column name. Used for the join
// reorder heuristic before binding.
void CollectReferencedSources(const Expr& expr,
                              const std::vector<const TableInfo*>& tables,
                              const std::vector<std::string>& aliases,
                              std::vector<bool>* referenced) {
  if (expr.kind == ExprKind::kColumnRef) {
    for (size_t i = 0; i < tables.size(); ++i) {
      if (!expr.table.empty()) {
        if (IdentEquals(expr.table, aliases[i])) (*referenced)[i] = true;
      } else if (tables[i]->schema.FindColumn(expr.name) >= 0) {
        (*referenced)[i] = true;
      }
    }
  }
  for (const ExprPtr& arg : expr.args) {
    CollectReferencedSources(*arg, tables, aliases, referenced);
  }
}

// Aggregate accumulator for one aggregate node within one group.
struct AggAccum {
  int64_t count = 0;
  bool has_value = false;
  Value extreme;                       // MIN/MAX running value
  long double real_sum = 0;
  int64_t int_sum = 0;
  bool int_only = true;
  std::unordered_set<std::string> distinct;
};

enum class AggKind { kCount, kSum, kMin, kMax, kAvg, kTotal };

Result<AggKind> AggKindOf(const std::string& name) {
  std::string lower = IdentLower(name);
  if (lower == "count") return AggKind::kCount;
  if (lower == "sum") return AggKind::kSum;
  if (lower == "min") return AggKind::kMin;
  if (lower == "max") return AggKind::kMax;
  if (lower == "avg") return AggKind::kAvg;
  if (lower == "total") return AggKind::kTotal;
  return Status::InvalidArgument("unknown aggregate: " + name);
}

// The per-value accumulator transition, shared by the row path (after it
// evaluates the argument) and the batch path (over pre-evaluated argument
// vectors). The batch fold kernels in rql/aggregates.h replicate the
// non-distinct arm of this transition field for field; changes here must
// be mirrored there to keep row and batch results byte-identical.
Status UpdateAccumValue(AggKind kind, bool distinct, const Value& arg,
                        AggAccum* accum) {
  if (arg.is_null()) return Status::OK();  // NULLs are ignored
  if (distinct) {
    std::string key = EncodeRow({arg});
    if (!accum->distinct.insert(std::move(key)).second) return Status::OK();
  }
  ++accum->count;
  switch (kind) {
    case AggKind::kCount:
      break;
    case AggKind::kSum:
    case AggKind::kAvg:
    case AggKind::kTotal:
      if (!arg.is_numeric()) {
        return Status::InvalidArgument("SUM/AVG of non-numeric value");
      }
      if (arg.type() == ValueType::kInteger) {
        accum->int_sum += arg.integer();
      } else {
        accum->int_only = false;
      }
      accum->real_sum += arg.AsDouble();
      accum->has_value = true;
      break;
    case AggKind::kMin:
      if (!accum->has_value || CompareValues(arg, accum->extreme) < 0) {
        accum->extreme = arg;
      }
      accum->has_value = true;
      break;
    case AggKind::kMax:
      if (!accum->has_value || CompareValues(arg, accum->extreme) > 0) {
        accum->extreme = arg;
      }
      accum->has_value = true;
      break;
  }
  return Status::OK();
}

Status UpdateAccum(AggKind kind, const Expr& node, const EvalContext& ectx,
                   AggAccum* accum) {
  bool is_star = !node.args.empty() && node.args[0]->kind == ExprKind::kStar;
  if (kind == AggKind::kCount && (node.args.empty() || is_star)) {
    ++accum->count;
    return Status::OK();
  }
  if (node.args.empty()) {
    return Status::InvalidArgument("aggregate requires an argument");
  }
  RQL_ASSIGN_OR_RETURN(Value arg, EvalExpr(*node.args[0], ectx));
  return UpdateAccumValue(kind, node.distinct_arg, arg, accum);
}

Value FinalizeAccum(AggKind kind, const AggAccum& accum) {
  switch (kind) {
    case AggKind::kCount:
      return Value::Integer(accum.count);
    case AggKind::kSum:
      if (!accum.has_value) return Value::Null();
      return accum.int_only ? Value::Integer(accum.int_sum)
                            : Value::Real(static_cast<double>(accum.real_sum));
    case AggKind::kTotal:
      return Value::Real(static_cast<double>(accum.real_sum));
    case AggKind::kAvg:
      if (!accum.has_value) return Value::Null();
      return Value::Real(static_cast<double>(accum.real_sum) /
                         static_cast<double>(accum.count));
    case AggKind::kMin:
    case AggKind::kMax:
      return accum.has_value ? accum.extreme : Value::Null();
  }
  return Value::Null();
}

}  // namespace

Result<std::unique_ptr<SelectExecutor>> SelectExecutor::Prepare(
    const SelectStmt* stmt, const ExecContext& ctx) {
  if (ctx.reader == nullptr || ctx.catalog == nullptr ||
      ctx.functions == nullptr) {
    return Status::Internal("incomplete execution context");
  }
  auto exec = std::unique_ptr<SelectExecutor>(new SelectExecutor(stmt, ctx));
  RQL_RETURN_IF_ERROR(exec->BindAll());
  return exec;
}

Status SelectExecutor::BindAll() {
  // Resolve FROM tables.
  std::vector<const TableInfo*> tables;
  std::vector<std::string> aliases;
  for (const TableRef& ref : stmt_->from) {
    const TableInfo* info = ctx_.catalog->FindTable(ref.name);
    if (info == nullptr) {
      return Status::NotFound("no such table: " + ref.name);
    }
    tables.push_back(info);
    aliases.push_back(ref.alias);
  }

  bool has_star = false;
  for (const SelectItem& item : stmt_->items) {
    if (item.expr->kind == ExprKind::kStar) has_star = true;
  }

  // Claim the shared plan cache for this statement only: subqueries run
  // with the same context but a different statement and must not reuse
  // another statement's decisions.
  if (ctx_.plan_cache != nullptr) {
    if (ctx_.plan_cache->owner == nullptr) ctx_.plan_cache->owner = stmt_;
    if (ctx_.plan_cache->owner == stmt_) plan_cache_ = ctx_.plan_cache;
  }

  // Join-order heuristic mirroring SQLite: for a two-table join, make the
  // table with a single-table restriction the outer one, so the other side
  // is probed (and may need an automatic index) — the paper's Fig. 9 setup.
  std::vector<size_t> order(tables.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  if (plan_cache_ != nullptr && plan_cache_->has_join_order &&
      plan_cache_->join_order.size() == order.size()) {
    order = plan_cache_->join_order;
    ++plan_cache_->hits;
  } else if (tables.size() == 2 && !has_star && stmt_->where != nullptr) {
    std::vector<ExprPtr> raw;
    ExprPtr where_copy = CloneExpr(*stmt_->where);
    SplitConjuncts(std::move(where_copy), &raw);
    auto restricted = [&](size_t t) {
      for (const ExprPtr& c : raw) {
        std::vector<bool> refs(tables.size(), false);
        CollectReferencedSources(*c, tables, aliases, &refs);
        size_t count = 0;
        for (bool b : refs) count += b ? 1 : 0;
        if (count == 1 && refs[t] && c->kind == ExprKind::kBinary &&
            c->bin_op != BinOp::kAnd && c->bin_op != BinOp::kOr) {
          return true;
        }
      }
      return false;
    };
    if (!restricted(0) && restricted(1)) std::swap(order[0], order[1]);
  }
  if (plan_cache_ != nullptr && !plan_cache_->has_join_order) {
    plan_cache_->join_order = order;
    plan_cache_->has_join_order = true;
  }

  for (size_t i : order) {
    TableSource source;
    source.table = tables[i];
    source.alias = aliases[i];
    scope_.Add(aliases[i], &tables[i]->schema);
    sources_.push_back(std::move(source));
  }

  // Expand '*' and clone + bind the select list.
  for (const SelectItem& item : stmt_->items) {
    if (item.expr->kind == ExprKind::kStar) {
      for (const TableSource& source : sources_) {
        for (const ColumnDef& col : source.table->schema.columns) {
          SelectItem expanded;
          expanded.expr = MakeColumnRef(source.alias, col.name);
          expanded.alias = col.name;
          items_.push_back(std::move(expanded));
        }
      }
      continue;
    }
    SelectItem cloned;
    cloned.expr = CloneExpr(*item.expr);
    cloned.alias = item.alias;
    items_.push_back(std::move(cloned));
  }
  if (items_.empty()) {
    return Status::InvalidArgument("empty select list");
  }
  for (SelectItem& item : items_) {
    RQL_RETURN_IF_ERROR(BindExpr(item.expr.get(), scope_));
    columns_.push_back(item.alias.empty() ? ExprToName(*item.expr)
                                          : item.alias);
  }

  if (stmt_->where != nullptr) {
    where_ = CloneExpr(*stmt_->where);
    RQL_RETURN_IF_ERROR(BindExpr(where_.get(), scope_));
  }
  for (const ExprPtr& g : stmt_->group_by) {
    ExprPtr bound = CloneExpr(*g);
    RQL_RETURN_IF_ERROR(BindExpr(bound.get(), scope_));
    group_by_.push_back(std::move(bound));
  }
  if (stmt_->having != nullptr) {
    having_ = CloneExpr(*stmt_->having);
    RQL_RETURN_IF_ERROR(BindExpr(having_.get(), scope_));
  }
  for (const OrderItem& o : stmt_->order_by) {
    OrderItem bound;
    bound.desc = o.desc;
    bound.expr = CloneExpr(*o.expr);
    // Integer literals and item aliases are resolved at sort-key build
    // time; only genuine expressions need binding.
    if (bound.expr->kind != ExprKind::kLiteral) {
      bool is_alias = false;
      if (bound.expr->kind == ExprKind::kColumnRef &&
          bound.expr->table.empty()) {
        for (const SelectItem& item : items_) {
          std::string name =
              item.alias.empty() ? ExprToName(*item.expr) : item.alias;
          if (IdentEquals(name, bound.expr->name)) {
            is_alias = true;
            break;
          }
        }
      }
      if (!is_alias) {
        RQL_RETURN_IF_ERROR(BindExpr(bound.expr.get(), scope_));
      }
    }
    order_by_.push_back(std::move(bound));
  }
  need_sort_ = !order_by_.empty();

  // Aggregation?
  aggregated_ = !group_by_.empty();
  for (const SelectItem& item : items_) {
    if (ContainsAggregate(*item.expr)) aggregated_ = true;
  }
  if (having_ != nullptr && ContainsAggregate(*having_)) aggregated_ = true;
  if (aggregated_) {
    for (SelectItem& item : items_) {
      CollectAggregates(item.expr.get(), &agg_nodes_);
    }
    if (having_ != nullptr) CollectAggregates(having_.get(), &agg_nodes_);
    for (OrderItem& o : order_by_) {
      CollectAggregates(o.expr.get(), &agg_nodes_);
    }
  }

  // Plan join access paths, consuming equality conjuncts from WHERE.
  std::vector<ExprPtr> conjuncts;
  SplitConjuncts(std::move(where_), &conjuncts);
  RQL_RETURN_IF_ERROR(PlanJoins(&conjuncts));

  // Predicate pushdown: attach each residual conjunct to the outermost
  // join level whose prefix of tables binds all of its columns, so rows
  // are filtered before deeper levels probe their tables.
  if (!sources_.empty()) {
    for (ExprPtr& conjunct : conjuncts) {
      if (conjunct == nullptr) continue;
      int max_col = MaxColumnIndex(*conjunct);
      size_t level = 0;
      for (size_t i = 0; i < sources_.size(); ++i) {
        const BindScope::Entry& entry = scope_.entries[i];
        if (max_col < entry.offset + static_cast<int>(entry.schema->size())) {
          level = i;
          break;
        }
        level = i;
      }
      TableSource& target = sources_[level];
      target.filter = target.filter
                          ? MakeBinary(BinOp::kAnd, std::move(target.filter),
                                       std::move(conjunct))
                          : std::move(conjunct);
    }
    conjuncts.clear();
  }
  where_ = CombineConjuncts(std::move(conjuncts));
  PlanIndexOnlyAccess();
  // A cached plan already knows which join levels need a transient index;
  // build them up front instead of re-discovering the need at first probe.
  if (plan_cache_ != nullptr) {
    for (const PlanCache::TransientSpec& spec :
         plan_cache_->transient_specs) {
      if (spec.level >= sources_.size()) continue;
      TableSource& src = sources_[spec.level];
      if (src.transient_store != nullptr || src.native_index != nullptr ||
          src.key_expr == nullptr ||
          src.inner_key_column != spec.inner_key_column ||
          src.table->name != spec.table) {
        continue;
      }
      RQL_RETURN_IF_ERROR(BuildTransientIndex(&src));
    }
  }
  return Status::OK();
}

Status SelectExecutor::PlanJoins(std::vector<ExprPtr>* conjuncts) {
  // Level 0: constant bounds on an indexed column turn the driving scan
  // into an index (range) scan. The conjuncts stay in the filter, so the
  // bounds only have to narrow the scan, never decide membership.
  if (!sources_.empty()) {
    TableSource& driver = sources_[0];
    const BindScope::Entry& entry = scope_.entries[0];
    for (const ExprPtr& conjunct : *conjuncts) {
      if (conjunct == nullptr || conjunct->kind != ExprKind::kBinary) {
        continue;
      }
      BinOp op = conjunct->bin_op;
      if (op != BinOp::kEq && op != BinOp::kLt && op != BinOp::kLe &&
          op != BinOp::kGt && op != BinOp::kGe) {
        continue;
      }
      // Normalize to (col OP constant).
      const Expr* col = conjunct->args[0].get();
      const Expr* bound = conjunct->args[1].get();
      bool flipped = false;
      if (col->kind != ExprKind::kColumnRef) {
        std::swap(col, bound);
        flipped = true;
      }
      if (col->kind != ExprKind::kColumnRef ||
          col->column_index < entry.offset ||
          col->column_index >= entry.offset +
                                   static_cast<int>(entry.schema->size()) ||
          MaxColumnIndex(*bound) >= 0) {
        continue;
      }
      const IndexInfo* index = ctx_.catalog->IndexOnColumn(
          driver.table->name,
          entry.schema
              ->columns[static_cast<size_t>(col->column_index -
                                            entry.offset)]
              .name);
      if (index == nullptr) continue;
      if (driver.native_index != nullptr && driver.native_index != index) {
        continue;  // keep the first usable index
      }
      driver.native_index = index;
      BinOp effective = op;
      if (flipped) {  // constant OP col  ->  col OP' constant
        switch (op) {
          case BinOp::kLt: effective = BinOp::kGt; break;
          case BinOp::kLe: effective = BinOp::kGe; break;
          case BinOp::kGt: effective = BinOp::kLt; break;
          case BinOp::kGe: effective = BinOp::kLe; break;
          default: break;
        }
      }
      switch (effective) {
        case BinOp::kEq:
          driver.range_lower = bound;
          driver.range_upper = bound;
          break;
        case BinOp::kGt:
        case BinOp::kGe:
          if (driver.range_lower == nullptr) driver.range_lower = bound;
          break;
        case BinOp::kLt:
        case BinOp::kLe:
          if (driver.range_upper == nullptr) driver.range_upper = bound;
          break;
        default:
          break;
      }
    }
    if (driver.range_lower == nullptr && driver.range_upper == nullptr) {
      driver.native_index = nullptr;  // unbounded index scan: prefer heap
    }
  }

  for (size_t level = 1; level < sources_.size(); ++level) {
    TableSource& source = sources_[level];
    const BindScope::Entry& entry = scope_.entries[level];
    int lo = entry.offset;
    int hi = entry.offset + static_cast<int>(entry.schema->size());
    for (ExprPtr& conjunct : *conjuncts) {
      if (conjunct == nullptr) continue;
      if (conjunct->kind != ExprKind::kBinary ||
          conjunct->bin_op != BinOp::kEq) {
        continue;
      }
      Expr* lhs = conjunct->args[0].get();
      Expr* rhs = conjunct->args[1].get();
      auto try_pair = [&](Expr* inner, Expr* outer) {
        if (inner->kind != ExprKind::kColumnRef) return false;
        if (inner->column_index < lo || inner->column_index >= hi) {
          return false;
        }
        if (MaxColumnIndex(*outer) >= lo) return false;  // not outer-only
        source.key_expr = outer;
        source.inner_key_column = inner->column_index - lo;
        return true;
      };
      if (try_pair(lhs, rhs) || try_pair(rhs, lhs)) {
        // The probe enforces equality; keep ownership of the outer expr by
        // keeping the conjunct alive in the source.
        source.native_index = ctx_.catalog->IndexOnColumn(
            source.table->name,
            entry.schema->columns[source.inner_key_column].name);
        // Move the conjunct into the source so key_expr stays valid.
        consumed_conjuncts_.push_back(std::move(conjunct));
        break;
      }
    }
  }
  return Status::OK();
}

void SelectExecutor::PlanIndexOnlyAccess() {
  // Mark join sources whose native index contains every referenced column
  // of the table: those are served index-only (covering), with rows
  // synthesized from index keys and no heap fetches.
  std::vector<bool> used(static_cast<size_t>(scope_.total_columns), false);
  std::function<void(const Expr&)> collect = [&](const Expr& e) {
    if (e.kind == ExprKind::kColumnRef && e.column_index >= 0) {
      used[static_cast<size_t>(e.column_index)] = true;
    }
    for (const ExprPtr& arg : e.args) collect(*arg);
  };
  for (const SelectItem& item : items_) collect(*item.expr);
  if (where_ != nullptr) collect(*where_);
  for (const ExprPtr& g : group_by_) collect(*g);
  if (having_ != nullptr) collect(*having_);
  for (const OrderItem& o : order_by_) collect(*o.expr);
  for (const ExprPtr& c : consumed_conjuncts_) {
    if (c != nullptr) collect(*c);
  }
  for (const TableSource& s : sources_) {
    if (s.filter != nullptr) collect(*s.filter);
  }

  for (size_t level = 0; level < sources_.size(); ++level) {
    TableSource& source = sources_[level];
    if (source.native_index == nullptr) continue;
    const BindScope::Entry& entry = scope_.entries[level];
    bool covered = true;
    for (size_t local = 0; local < entry.schema->size() && covered;
         ++local) {
      if (!used[static_cast<size_t>(entry.offset) + local]) continue;
      bool in_index = false;
      for (int idx : source.native_index->column_idx) {
        if (idx == static_cast<int>(local)) {
          in_index = true;
          break;
        }
      }
      covered = in_index;
    }
    source.index_only = covered;
  }
}

Status SelectExecutor::BuildTransientIndex(TableSource* source) {
  // SQLite's "automatic covering index": materialize the inner table into
  // a private B+-tree keyed by the join column. Built with real index
  // machinery so its cost scales like the paper's index-creation bar.
  int64_t start = NowMicros();
  source->transient_env = std::make_unique<storage::InMemoryEnv>();
  RQL_ASSIGN_OR_RETURN(
      source->transient_store,
      storage::PageStore::Open(source->transient_env.get(), "transient"));
  storage::PageStore* store = source->transient_store.get();
  // One WAL batch for the whole build: the store is private and
  // throwaway, so per-write commits would only burn time.
  RQL_RETURN_IF_ERROR(store->BeginBatch());
  Status build_status = [&]() -> Status {
    RQL_ASSIGN_OR_RETURN(source->transient_heap_root,
                         HeapTable::Create(store));
    RQL_ASSIGN_OR_RETURN(source->transient_index_root,
                         BTree::Create(store));
    HeapTable heap(store, source->transient_heap_root);
    BTree tree(store, source->transient_index_root);
    int64_t seq = 0;
    for (auto it = HeapTable::Scan(
             ctx_.reader, source->table->root, ctx_.scan_cache,
             ctx_.stats != nullptr ? &ctx_.stats->scan_cache : nullptr);
         it.Valid(); it.Next()) {
      const Row* cached = it.cached_row();
      Row row;
      if (cached == nullptr) {
        RQL_ASSIGN_OR_RETURN(row, DecodeRow(it.record()));
      }
      const Value& key =
          (cached != nullptr ? *cached : row)[source->inner_key_column];
      if (key.is_null()) continue;  // NULL never matches equality
      RQL_ASSIGN_OR_RETURN(Rid rid, heap.Insert(it.record()));
      RQL_RETURN_IF_ERROR(tree.Insert({key, Value::Integer(seq++)}, rid));
    }
    return Status::OK();
  }();
  if (!build_status.ok()) {
    (void)store->RollbackBatch();
    return build_status;
  }
  RQL_RETURN_IF_ERROR(store->CommitBatch());
  if (ctx_.stats != nullptr) {
    ctx_.stats->index_build_us += NowMicros() - start;
    ctx_.stats->used_transient_index = true;
  }
  if (plan_cache_ != nullptr) {
    size_t level = static_cast<size_t>(source - sources_.data());
    bool known = false;
    for (const PlanCache::TransientSpec& spec :
         plan_cache_->transient_specs) {
      if (spec.level == level) known = true;
    }
    if (!known) {
      plan_cache_->transient_specs.push_back(
          {level, source->table->name, source->inner_key_column});
    }
  }
  return Status::OK();
}

Status SelectExecutor::ScanSource(const RowSink& sink) {
  if (sources_.empty()) {
    Row empty;
    if (where_ != nullptr) {
      EvalContext ectx{&empty, ctx_.functions, nullptr, nullptr, this};
      RQL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*where_, ectx));
      if (!ValueIsTrue(cond)) return Status::OK();
    }
    return sink(empty);
  }
  Row current(static_cast<size_t>(scope_.total_columns));
  return JoinLevel(0, &current, sink);
}

Status SelectExecutor::JoinLevel(size_t level, Row* current,
                                 const RowSink& sink) {
  TableSource& source = sources_[level];
  const BindScope::Entry& entry = scope_.entries[level];
  size_t offset = static_cast<size_t>(entry.offset);
  size_t width = entry.schema->size();
  bool last = level + 1 == sources_.size();

  auto emit_candidate = [&](Row&& table_row) -> Status {
    if (table_row.size() != width) {
      return Status::Corruption("row arity mismatch in table " +
                                source.table->name);
    }
    for (size_t i = 0; i < width; ++i) {
      (*current)[offset + i] = std::move(table_row[i]);
    }
    if (ctx_.stats != nullptr) ++ctx_.stats->rows_scanned;
    if (source.filter != nullptr) {
      EvalContext ectx{current, ctx_.functions, nullptr, nullptr, this};
      RQL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*source.filter, ectx));
      if (!ValueIsTrue(cond)) return Status::OK();
    }
    if (last) {
      if (where_ != nullptr) {
        EvalContext ectx{current, ctx_.functions, nullptr, nullptr, this};
        RQL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*where_, ectx));
        if (!ValueIsTrue(cond)) return Status::OK();
      }
      return sink(*current);
    }
    return JoinLevel(level + 1, current, sink);
  };

  if (level > 0 && source.key_expr != nullptr) {
    EvalContext ectx{current, ctx_.functions, nullptr, nullptr, this};
    RQL_ASSIGN_OR_RETURN(Value key, EvalExpr(*source.key_expr, ectx));
    if (key.is_null()) return Status::OK();

    if (source.native_index != nullptr) {
      if (ctx_.stats != nullptr) ctx_.stats->used_native_index = true;
      Row probe = {key};
      RQL_ASSIGN_OR_RETURN(
          BTree::Iterator it,
          BTree::Seek(ctx_.reader, source.native_index->root, probe));
      for (; it.Valid(); it.Next()) {
        if (it.key().empty() || CompareValues(it.key()[0], key) != 0) break;
        Row row;
        if (source.index_only) {
          // Covering access: synthesize the row from the index key.
          row.assign(width, Value());
          const Row& index_key = it.key();
          const std::vector<int>& cols = source.native_index->column_idx;
          for (size_t p = 0; p < cols.size() && p < index_key.size(); ++p) {
            row[static_cast<size_t>(cols[p])] = index_key[p];
          }
        } else {
          RQL_ASSIGN_OR_RETURN(std::string record,
                               HeapTable::Get(ctx_.reader, it.value()));
          RQL_ASSIGN_OR_RETURN(row, DecodeRow(record));
        }
        RQL_RETURN_IF_ERROR(emit_candidate(std::move(row)));
        if (done_) return Status::OK();
      }
      return it.status();
    }

    // Automatic transient index (SQLite's covering-index behaviour).
    if (source.transient_store == nullptr) {
      RQL_RETURN_IF_ERROR(BuildTransientIndex(&source));
    }
    storage::PageStore* store = source.transient_store.get();
    Row probe = {key};
    RQL_ASSIGN_OR_RETURN(
        BTree::Iterator it,
        BTree::Seek(store, source.transient_index_root, probe));
    for (; it.Valid(); it.Next()) {
      if (it.key().empty() || CompareValues(it.key()[0], key) != 0) break;
      RQL_ASSIGN_OR_RETURN(std::string record,
                           HeapTable::Get(store, it.value()));
      RQL_ASSIGN_OR_RETURN(Row row, DecodeRow(record));
      RQL_RETURN_IF_ERROR(emit_candidate(std::move(row)));
      if (done_) return Status::OK();
    }
    return it.status();
  }

  if (level == 0 && source.native_index != nullptr &&
      (source.range_lower != nullptr || source.range_upper != nullptr)) {
    // Index (range) scan driving the query.
    if (ctx_.stats != nullptr) ctx_.stats->used_native_index = true;
    EvalContext ectx{current, ctx_.functions, nullptr, nullptr, this};
    Value lower, upper;
    bool has_lower = source.range_lower != nullptr;
    bool has_upper = source.range_upper != nullptr;
    if (has_lower) {
      RQL_ASSIGN_OR_RETURN(lower, EvalExpr(*source.range_lower, ectx));
      if (lower.is_null()) return Status::OK();  // NULL bound matches nothing
    }
    if (has_upper) {
      RQL_ASSIGN_OR_RETURN(upper, EvalExpr(*source.range_upper, ectx));
      if (upper.is_null()) return Status::OK();
    }
    Result<BTree::Iterator> it =
        has_lower
            ? BTree::Seek(ctx_.reader, source.native_index->root, {lower})
            : BTree::SeekFirst(ctx_.reader, source.native_index->root);
    RQL_RETURN_IF_ERROR(it.status());
    for (; it->Valid(); it->Next()) {
      if (has_upper && !it->key().empty() &&
          CompareValues(it->key()[0], upper) > 0) {
        break;
      }
      Row row;
      if (source.index_only) {
        row.assign(width, Value());
        const Row& index_key = it->key();
        const std::vector<int>& cols = source.native_index->column_idx;
        for (size_t p = 0; p < cols.size() && p < index_key.size(); ++p) {
          row[static_cast<size_t>(cols[p])] = index_key[p];
        }
      } else {
        RQL_ASSIGN_OR_RETURN(std::string record,
                             HeapTable::Get(ctx_.reader, it->value()));
        RQL_ASSIGN_OR_RETURN(row, DecodeRow(record));
      }
      RQL_RETURN_IF_ERROR(emit_candidate(std::move(row)));
      if (done_) return Status::OK();
    }
    return it->status();
  }

  // Sequential scan. Pages the reader versions (archived snapshot pages)
  // come pre-decoded from the scan cache; copying the cached row replaces
  // the per-row DecodeRow parse.
  auto it = HeapTable::Scan(
      ctx_.reader, source.table->root, ctx_.scan_cache,
      ctx_.stats != nullptr ? &ctx_.stats->scan_cache : nullptr);
  for (; it.Valid(); it.Next()) {
    Row row;
    if (const Row* cached = it.cached_row()) {
      row = *cached;
    } else {
      RQL_ASSIGN_OR_RETURN(row, DecodeRow(it.record()));
    }
    RQL_RETURN_IF_ERROR(emit_candidate(std::move(row)));
    if (done_) return Status::OK();
  }
  return it.status();
}

bool SelectExecutor::CanUseBatchScan() const {
  if (!ctx_.batch_execution) return false;
  if (sources_.size() != 1) return false;
  const TableSource& source = sources_[0];
  // Only the plain sequential scan batches; index range scans and join
  // probes keep the row path (their per-row heap fetches dominate, and
  // order/short-circuit semantics stay trivially identical).
  if (source.key_expr != nullptr) return false;
  if (source.native_index != nullptr) return false;
  return true;
}

Status SelectExecutor::ApplyBatchFilter(const Expr* pred, bool vectorized,
                                        RowBatch* batch,
                                        std::vector<Value>* scratch) {
  if (pred == nullptr || batch->selection.empty()) return Status::OK();
  size_t keep = 0;
  if (vectorized) {
    RQL_RETURN_IF_ERROR(EvalBatch(*pred, batch->rows,
                                  batch->selection.data(),
                                  batch->selection.size(), scratch));
    for (size_t i = 0; i < batch->selection.size(); ++i) {
      if (ValueIsTrue((*scratch)[i])) {
        batch->selection[keep++] = batch->selection[i];
      }
    }
  } else {
    if (ctx_.stats != nullptr) {
      ctx_.stats->batch_fallback_rows +=
          static_cast<int64_t>(batch->selection.size());
    }
    for (uint32_t idx : batch->selection) {
      const Row& row = batch->rows[idx];
      EvalContext ectx{&row, ctx_.functions, nullptr, nullptr, this};
      RQL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*pred, ectx));
      if (ValueIsTrue(cond)) batch->selection[keep++] = idx;
    }
  }
  batch->selection.resize(keep);
  return Status::OK();
}

Status SelectExecutor::ScanBatched(
    const std::function<Status(RowBatch&)>& consume) {
  TableSource& source = sources_[0];
  size_t width = scope_.entries[0].schema->size();
  bool filter_vec =
      source.filter != nullptr && EvalBatchSupported(*source.filter);
  // With one source, predicate pushdown leaves WHERE empty; handled
  // anyway so the batch path never silently drops a residual predicate.
  bool where_vec = where_ != nullptr && EvalBatchSupported(*where_);
  std::vector<Value> scratch;
  auto it = HeapTable::ScanBatches(
      ctx_.reader, source.table->root, ctx_.scan_cache,
      ctx_.stats != nullptr ? &ctx_.stats->scan_cache : nullptr);
  for (; it.Valid(); it.Next()) {
    RowBatch& batch = it.batch();
    for (uint32_t i = 0; i < batch.size; ++i) {
      if (batch.rows[i].size() != width) {
        return Status::Corruption("row arity mismatch in table " +
                                  source.table->name);
      }
    }
    batch.selection.resize(batch.size);
    for (uint32_t i = 0; i < batch.size; ++i) batch.selection[i] = i;
    if (ctx_.stats != nullptr) {
      ++ctx_.stats->batches_scanned;
      ctx_.stats->batch_rows += batch.size;
      // The row path counts scanned rows one emit_candidate at a time;
      // page granularity only diverges when LIMIT stops a scan mid-page.
      ctx_.stats->rows_scanned += batch.size;
    }
    if (ctx_.batch_size_hist != nullptr) {
      ctx_.batch_size_hist->ObserveUs(batch.size);
    }
    RQL_RETURN_IF_ERROR(
        ApplyBatchFilter(source.filter.get(), filter_vec, &batch, &scratch));
    RQL_RETURN_IF_ERROR(
        ApplyBatchFilter(where_.get(), where_vec, &batch, &scratch));
    if (batch.selection.empty()) continue;
    RQL_RETURN_IF_ERROR(consume(batch));
    if (done_) return Status::OK();
  }
  return it.status();
}

Result<Row> SelectExecutor::ProjectRow(const EvalContext& ectx,
                                       Row* sort_key) {
  Row out;
  out.reserve(items_.size());
  for (const SelectItem& item : items_) {
    RQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.expr, ectx));
    out.push_back(std::move(v));
  }
  if (need_sort_) {
    sort_key->clear();
    for (const OrderItem& o : order_by_) {
      if (o.expr->kind == ExprKind::kLiteral &&
          o.expr->literal.type() == ValueType::kInteger) {
        int64_t pos = o.expr->literal.integer();
        if (pos < 1 || pos > static_cast<int64_t>(out.size())) {
          return Status::InvalidArgument("ORDER BY position out of range");
        }
        sort_key->push_back(out[pos - 1]);
        continue;
      }
      if (o.expr->kind == ExprKind::kColumnRef && o.expr->table.empty() &&
          o.expr->column_index < 0) {
        // Alias reference.
        bool matched = false;
        for (size_t i = 0; i < items_.size(); ++i) {
          if (IdentEquals(columns_[i], o.expr->name)) {
            sort_key->push_back(out[i]);
            matched = true;
            break;
          }
        }
        if (matched) continue;
        return Status::InvalidArgument("unknown ORDER BY column: " +
                                       o.expr->name);
      }
      RQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*o.expr, ectx));
      sort_key->push_back(std::move(v));
    }
  }
  return out;
}

Status SelectExecutor::Emit(Row row, Row sort_key, const RowSink& sink) {
  if (stmt_->distinct) {
    std::string key = EncodeRow(row);
    if (!distinct_seen_.insert(std::move(key)).second) return Status::OK();
  }
  if (need_sort_) {
    staged_.emplace_back(std::move(sort_key), std::move(row));
    return Status::OK();
  }
  if (stmt_->limit >= 0 && emitted_ >= stmt_->limit) {
    done_ = true;
    return Status::OK();
  }
  ++emitted_;
  if (ctx_.stats != nullptr) ++ctx_.stats->rows_output;
  Status s = sink(row);
  if (s.ok() && stmt_->limit >= 0 && emitted_ >= stmt_->limit) done_ = true;
  return s;
}

Status SelectExecutor::Finish(const RowSink& sink) {
  if (!need_sort_) return Status::OK();
  std::stable_sort(staged_.begin(), staged_.end(),
                   [this](const auto& a, const auto& b) {
                     for (size_t i = 0; i < order_by_.size(); ++i) {
                       int c = CompareValues(a.first[i], b.first[i]);
                       if (c != 0) return order_by_[i].desc ? c > 0 : c < 0;
                     }
                     return false;
                   });
  int64_t limit = stmt_->limit >= 0 ? stmt_->limit
                                    : static_cast<int64_t>(staged_.size());
  for (const auto& [key, row] : staged_) {
    if (limit-- <= 0) break;
    if (ctx_.stats != nullptr) ++ctx_.stats->rows_output;
    RQL_RETURN_IF_ERROR(sink(row));
  }
  return Status::OK();
}

Status SelectExecutor::RunPlain(const RowSink& sink) {
  if (batch_scan_) {
    RQL_RETURN_IF_ERROR(ScanBatched([&](RowBatch& batch) -> Status {
      for (uint32_t idx : batch.selection) {
        const Row& input = batch.rows[idx];
        EvalContext ectx{&input, ctx_.functions, nullptr, nullptr, this};
        Row sort_key;
        RQL_ASSIGN_OR_RETURN(Row out, ProjectRow(ectx, &sort_key));
        RQL_RETURN_IF_ERROR(Emit(std::move(out), std::move(sort_key), sink));
        if (done_) return Status::OK();
      }
      return Status::OK();
    }));
    return Finish(sink);
  }
  RQL_RETURN_IF_ERROR(ScanSource([&](const Row& input) -> Status {
    EvalContext ectx{&input, ctx_.functions, nullptr, nullptr, this};
    Row sort_key;
    RQL_ASSIGN_OR_RETURN(Row out, ProjectRow(ectx, &sort_key));
    return Emit(std::move(out), std::move(sort_key), sink);
  }));
  return Finish(sink);
}

Status SelectExecutor::RunAggregation(const RowSink& sink) {
  struct Group {
    Row repr;
    std::vector<AggAccum> accums;
  };
  // Groups are keyed by the evaluated key row itself, hashed directly —
  // the same identity the former EncodeRow string keys had (type tag plus
  // exact bit content, so 1 and 1.0 group apart and doubles compare
  // bitwise) without building a key string per input row.
  struct GroupKeyHash {
    size_t operator()(const Row& row) const {
      uint64_t h = 0xcbf29ce484222325ull;
      auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 0x100000001b3ull;
      };
      for (const Value& v : row) {
        mix(static_cast<uint64_t>(v.type()));
        switch (v.type()) {
          case ValueType::kNull:
            break;
          case ValueType::kInteger:
            mix(static_cast<uint64_t>(v.integer()));
            break;
          case ValueType::kReal: {
            uint64_t bits;
            double d = v.real();
            std::memcpy(&bits, &d, sizeof(bits));
            mix(bits);
            break;
          }
          case ValueType::kText:
            mix(std::hash<std::string>{}(v.text()));
            break;
        }
      }
      return static_cast<size_t>(h);
    }
  };
  struct GroupKeyEq {
    bool operator()(const Row& a, const Row& b) const {
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i].type() != b[i].type()) return false;
        switch (a[i].type()) {
          case ValueType::kNull:
            break;
          case ValueType::kInteger:
            if (a[i].integer() != b[i].integer()) return false;
            break;
          case ValueType::kReal: {
            uint64_t abits, bbits;
            double ad = a[i].real(), bd = b[i].real();
            std::memcpy(&abits, &ad, sizeof(abits));
            std::memcpy(&bbits, &bd, sizeof(bbits));
            if (abits != bbits) return false;
            break;
          }
          case ValueType::kText:
            if (a[i].text() != b[i].text()) return false;
            break;
        }
      }
      return true;
    }
  };
  std::unordered_map<Row, Group, GroupKeyHash, GroupKeyEq> groups;
  // Nodes are stable in an unordered_map, so first-appearance order is kept
  // as pointers into the map.
  std::vector<Group*> group_order;

  std::vector<AggKind> kinds;
  kinds.reserve(agg_nodes_.size());
  for (Expr* node : agg_nodes_) {
    RQL_ASSIGN_OR_RETURN(AggKind kind, AggKindOf(node->name));
    kinds.push_back(kind);
  }

  if (batch_scan_) {
    // Per-node batch plan, decided once per statement: COUNT(*) folds
    // straight off the selection size; vectorizable arguments are
    // batch-evaluated and then folded (single group, non-distinct) or fed
    // value by value into the shared accumulator transition; everything
    // else runs the scalar fallback.
    struct NodePlan {
      bool count_star = false;
      bool vec_arg = false;
    };
    std::vector<NodePlan> plans(agg_nodes_.size());
    for (size_t i = 0; i < agg_nodes_.size(); ++i) {
      const Expr& node = *agg_nodes_[i];
      bool is_star =
          !node.args.empty() && node.args[0]->kind == ExprKind::kStar;
      plans[i].count_star =
          kinds[i] == AggKind::kCount && (node.args.empty() || is_star);
      plans[i].vec_arg = !plans[i].count_star && !node.args.empty() &&
                         EvalBatchSupported(*node.args[0]);
    }
    std::vector<bool> key_vec(group_by_.size());
    for (size_t k = 0; k < group_by_.size(); ++k) {
      key_vec[k] = EvalBatchSupported(*group_by_[k]);
    }
    std::vector<Value> scratch;
    std::vector<std::vector<Value>> key_cols(group_by_.size());
    std::vector<Group*> row_groups;
    RQL_RETURN_IF_ERROR(ScanBatched([&](RowBatch& batch) -> Status {
      const uint32_t* sel = batch.selection.data();
      size_t n = batch.selection.size();
      // Resolve every selected row's group first (one shared group
      // without GROUP BY), creating groups in first-appearance order —
      // the same order the row path produces.
      row_groups.assign(n, nullptr);
      if (group_by_.empty()) {
        auto [it, inserted] = groups.try_emplace(Row());
        if (inserted) {
          it->second.repr = batch.rows[sel[0]];
          it->second.accums.resize(agg_nodes_.size());
          group_order.push_back(&it->second);
        }
        for (size_t j = 0; j < n; ++j) row_groups[j] = &it->second;
      } else {
        for (size_t k = 0; k < group_by_.size(); ++k) {
          if (key_vec[k]) {
            RQL_RETURN_IF_ERROR(EvalBatch(*group_by_[k], batch.rows, sel, n,
                                          &key_cols[k]));
          } else {
            if (ctx_.stats != nullptr) {
              ctx_.stats->batch_fallback_rows += static_cast<int64_t>(n);
            }
            key_cols[k].resize(n);
            for (size_t j = 0; j < n; ++j) {
              const Row& row = batch.rows[sel[j]];
              EvalContext ectx{&row, ctx_.functions, nullptr, nullptr,
                               this};
              RQL_ASSIGN_OR_RETURN(key_cols[k][j],
                                   EvalExpr(*group_by_[k], ectx));
            }
          }
        }
        for (size_t j = 0; j < n; ++j) {
          Row key;
          key.reserve(group_by_.size());
          for (size_t k = 0; k < group_by_.size(); ++k) {
            key.push_back(key_cols[k][j]);
          }
          auto [it, inserted] = groups.try_emplace(std::move(key));
          if (inserted) {
            it->second.repr = batch.rows[sel[j]];
            it->second.accums.resize(agg_nodes_.size());
            group_order.push_back(&it->second);
          }
          row_groups[j] = &it->second;
        }
      }
      // Aggregate transitions, one node at a time across the batch.
      for (size_t i = 0; i < agg_nodes_.size(); ++i) {
        const Expr& node = *agg_nodes_[i];
        if (plans[i].count_star) {
          for (size_t j = 0; j < n; ++j) ++row_groups[j]->accums[i].count;
          continue;
        }
        if (node.args.empty()) {
          return Status::InvalidArgument("aggregate requires an argument");
        }
        if (!plans[i].vec_arg) {
          if (ctx_.stats != nullptr) {
            ctx_.stats->batch_fallback_rows += static_cast<int64_t>(n);
          }
          for (size_t j = 0; j < n; ++j) {
            const Row& row = batch.rows[sel[j]];
            EvalContext ectx{&row, ctx_.functions, nullptr, nullptr, this};
            RQL_RETURN_IF_ERROR(UpdateAccum(kinds[i], node, ectx,
                                            &row_groups[j]->accums[i]));
          }
          continue;
        }
        bool column_arg = node.args[0]->kind == ExprKind::kColumnRef;
        if (!column_arg) {
          RQL_RETURN_IF_ERROR(
              EvalBatch(*node.args[0], batch.rows, sel, n, &scratch));
        }
        if (node.distinct_arg || !group_by_.empty()) {
          // Scattered groups or distinct tracking: per-value transition
          // over the evaluated argument.
          for (size_t j = 0; j < n; ++j) {
            const Value& arg = column_arg
                                   ? batch.rows[sel[j]][static_cast<size_t>(
                                         node.args[0]->column_index)]
                                   : scratch[j];
            RQL_RETURN_IF_ERROR(UpdateAccumValue(kinds[i],
                                                 node.distinct_arg, arg,
                                                 &row_groups[j]->accums[i]));
          }
          continue;
        }
        // Single group, non-distinct: fold the whole selection in one
        // kernel call — straight off the page for column arguments.
        AggAccum* accum = &row_groups[0]->accums[i];
        rql::batch::FoldInput in =
            column_arg ? rql::batch::FoldInput::Column(
                             batch.rows, sel, n, node.args[0]->column_index)
                       : rql::batch::FoldInput::Dense(scratch.data(), n);
        switch (kinds[i]) {
          case AggKind::kCount:
            rql::batch::FoldCount(in, &accum->count);
            break;
          case AggKind::kSum:
          case AggKind::kAvg:
          case AggKind::kTotal:
            RQL_RETURN_IF_ERROR(rql::batch::FoldSum(
                in, &accum->count, &accum->has_value, &accum->real_sum,
                &accum->int_sum, &accum->int_only));
            break;
          case AggKind::kMin:
          case AggKind::kMax:
            rql::batch::FoldExtreme(kinds[i] == AggKind::kMin, in,
                                    &accum->count, &accum->has_value,
                                    &accum->extreme);
            break;
        }
      }
      return Status::OK();
    }));
  } else {
    RQL_RETURN_IF_ERROR(ScanSource([&](const Row& input) -> Status {
      EvalContext ectx{&input, ctx_.functions, nullptr, nullptr, this};
      Row key;
      if (!group_by_.empty()) {
        key.reserve(group_by_.size());
        for (const ExprPtr& g : group_by_) {
          RQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*g, ectx));
          key.push_back(std::move(v));
        }
      }
      auto [it, inserted] = groups.try_emplace(std::move(key));
      if (inserted) {
        it->second.repr = input;
        it->second.accums.resize(agg_nodes_.size());
        group_order.push_back(&it->second);
      }
      for (size_t i = 0; i < agg_nodes_.size(); ++i) {
        RQL_RETURN_IF_ERROR(UpdateAccum(kinds[i], *agg_nodes_[i], ectx,
                                        &it->second.accums[i]));
      }
      return Status::OK();
    }));
  }

  // SQL semantics: an aggregate query with no GROUP BY yields exactly one
  // row even over empty input.
  if (group_by_.empty() && groups.empty()) {
    Group& g = groups[Row()];
    g.repr = Row(static_cast<size_t>(scope_.total_columns));
    g.accums.resize(agg_nodes_.size());
    group_order.push_back(&g);
  }

  std::vector<const Expr*> agg_nodes_const(agg_nodes_.begin(),
                                           agg_nodes_.end());
  for (Group* group_entry : group_order) {
    Group& group = *group_entry;
    std::vector<Value> agg_values;
    agg_values.reserve(agg_nodes_.size());
    for (size_t i = 0; i < agg_nodes_.size(); ++i) {
      agg_values.push_back(FinalizeAccum(kinds[i], group.accums[i]));
    }
    EvalContext ectx{&group.repr, ctx_.functions, &agg_nodes_const,
                     &agg_values, this};
    if (having_ != nullptr) {
      RQL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*having_, ectx));
      if (!ValueIsTrue(cond)) continue;
    }
    Row sort_key;
    RQL_ASSIGN_OR_RETURN(Row out, ProjectRow(ectx, &sort_key));
    RQL_RETURN_IF_ERROR(Emit(std::move(out), std::move(sort_key), sink));
    if (done_) break;
  }
  return Finish(sink);
}

Status SelectExecutor::Run(const RowSink& sink) {
  batch_scan_ = CanUseBatchScan();
  return aggregated_ ? RunAggregation(sink) : RunPlain(sink);
}

std::vector<std::string> SelectExecutor::DescribePlan() const {
  std::vector<std::string> lines;
  if (sources_.empty()) {
    lines.push_back("CONSTANT ROW");
  }
  for (size_t level = 0; level < sources_.size(); ++level) {
    const TableSource& source = sources_[level];
    std::string line;
    if (level > 0 && source.key_expr != nullptr) {
      if (source.native_index != nullptr) {
        line = "SEARCH " + source.table->name + " USING " +
               (source.index_only ? "COVERING INDEX " : "INDEX ") +
               source.native_index->name + " (" +
               source.native_index->columns[0] + "=?)";
      } else {
        line = "SEARCH " + source.table->name +
               " USING AUTOMATIC TRANSIENT INDEX (" +
               source.table->schema
                   .columns[static_cast<size_t>(source.inner_key_column)]
                   .name +
               "=?)";
      }
    } else if (level > 0) {
      line = "SCAN " + source.table->name + " (nested loop)";
    } else if (source.native_index != nullptr &&
               (source.range_lower != nullptr ||
                source.range_upper != nullptr)) {
      line = "SEARCH " + source.table->name + " USING " +
             (source.index_only ? "COVERING INDEX " : "INDEX ") +
             source.native_index->name + " (" +
             source.native_index->columns[0] +
             (source.range_lower == source.range_upper ? "=?" : " range)");
      if (source.range_lower == source.range_upper) line += ")";
    } else {
      line = "SCAN " + source.table->name;
    }
    if (!IdentEquals(source.alias, source.table->name)) {
      line += " AS " + source.alias;
    }
    if (source.filter != nullptr) line += " [filter]";
    lines.push_back(std::move(line));
  }
  if (where_ != nullptr) lines.push_back("FILTER (residual)");
  if (aggregated_) {
    lines.push_back(group_by_.empty()
                        ? "AGGREGATE"
                        : "GROUP BY (" + std::to_string(group_by_.size()) +
                              " keys, " + std::to_string(agg_nodes_.size()) +
                              " aggregates)");
  }
  if (having_ != nullptr) lines.push_back("HAVING");
  if (stmt_->distinct) lines.push_back("DISTINCT");
  if (!order_by_.empty()) {
    lines.push_back("SORT (" + std::to_string(order_by_.size()) + " keys)");
  }
  if (stmt_->limit >= 0) {
    lines.push_back("LIMIT " + std::to_string(stmt_->limit));
  }
  return lines;
}

Result<const std::vector<Row>*> SelectExecutor::RunSubquery(
    const Expr& expr) {
  if (expr.kind != ExprKind::kSubquery || expr.subquery == nullptr) {
    return Status::Internal("RunSubquery on a non-subquery expression");
  }
  auto it = subquery_cache_.find(&expr);
  if (it != subquery_cache_.end()) {
    return static_cast<const std::vector<Row>*>(&it->second);
  }
  if (subquery_depth_ >= 8) {
    return Status::InvalidArgument("subqueries nested too deeply");
  }
  if (expr.subquery->as_of != 0 || expr.subquery->as_of_param != nullptr) {
    return Status::NotSupported(
        "AS OF inside a subquery is not supported; apply it to the outer "
        "statement");
  }
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<SelectExecutor> exec,
                       SelectExecutor::Prepare(expr.subquery.get(), ctx_));
  exec->subquery_depth_ = subquery_depth_ + 1;
  std::vector<Row> rows;
  RQL_RETURN_IF_ERROR(exec->Run([&rows](const Row& row) {
    rows.push_back(row);
    return Status::OK();
  }));
  auto [pos, inserted] = subquery_cache_.emplace(&expr, std::move(rows));
  return static_cast<const std::vector<Row>*>(&pos->second);
}

}  // namespace rql::sql

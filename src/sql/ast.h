#ifndef RQL_SQL_AST_H_
#define RQL_SQL_AST_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "sql/schema.h"
#include "sql/value.h"

namespace rql::sql {

struct Expr;
struct SelectStmt;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kBinary,
  kUnary,
  kFunctionCall,  // scalar UDFs and aggregate functions
  kStar,          // '*' in select lists and COUNT(*)
  kIn,            // args = {lhs, candidate...}; `negated` for NOT IN
  kCase,          // args = [base?] + (when, then)... + [else?]
  kSubquery,      // uncorrelated (SELECT ...): scalar or IN source
  kParameter,     // '?' placeholder; bound by a PreparedStatement
};

enum class BinOp {
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAdd, kSub, kMul, kDiv, kMod,
  kAnd, kOr,
  kLike,
};

enum class UnOp { kNot, kNeg, kIsNull, kIsNotNull };

/// A SQL expression tree node. Column references are resolved (to an index
/// into the executor's combined input row) by the binder before execution.
struct Expr {
  ExprKind kind = ExprKind::kLiteral;

  Value literal;             // kLiteral
  std::string table;         // kColumnRef: optional qualifier
  std::string name;          // kColumnRef: column; kFunctionCall: function
  BinOp bin_op = BinOp::kEq; // kBinary; args = {lhs, rhs}
  UnOp un_op = UnOp::kNot;   // kUnary; args = {operand}
  std::vector<ExprPtr> args;
  // kSubquery: the nested statement. Shared so expression clones are
  // cheap; the statement itself is immutable after parsing.
  std::shared_ptr<SelectStmt> subquery;
  bool distinct_arg = false; // COUNT(DISTINCT x)
  bool negated = false;      // kIn: NOT IN
  int param_index = 0;       // kParameter: 1-based ordinal
  bool param_bound = false;  // kParameter: `literal` holds the bound value
  bool case_has_base = false;  // kCase: CASE <base> WHEN ... form
  bool case_has_else = false;  // kCase: trailing ELSE branch

  int column_index = -1;     // set by the binder for kColumnRef
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string table, std::string name);
ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnOp op, ExprPtr operand);
ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args);
ExprPtr MakeStar();

/// Structural deep copy.
ExprPtr CloneExpr(const Expr& e);

struct SelectItem {
  ExprPtr expr;
  std::string alias;  // empty = derived from the expression
};

struct TableRef {
  std::string name;
  std::string alias;  // empty = name
};

struct OrderItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt {
  /// Snapshot id for "SELECT AS OF <sid> ...", 0 = current state.
  uint32_t as_of = 0;
  /// Bindable form: "SELECT AS OF ? ..." — a kParameter expression whose
  /// bound integer value supplies the snapshot id at execution time
  /// (PreparedStatement::BindAsOf / BindInt). Null when AS OF is absent or
  /// literal. Takes precedence over `as_of` when set.
  ExprPtr as_of_param;
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;  // joins are left-deep in FROM order
  ExprPtr where;               // includes JOIN ... ON conjuncts
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  int64_t limit = -1;  // -1 = no limit
};

struct CreateTableStmt {
  std::string name;
  bool if_not_exists = false;
  TableSchema schema;                     // empty when as_select is set
  std::unique_ptr<SelectStmt> as_select;  // CREATE TABLE ... AS SELECT
};

struct CreateIndexStmt {
  std::string name;
  std::string table;
  std::vector<std::string> columns;
};

struct DropStmt {
  bool is_index = false;
  std::string name;
  bool if_exists = false;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;        // empty = positional
  std::vector<std::vector<ExprPtr>> rows;  // VALUES lists
  std::unique_ptr<SelectStmt> select;      // INSERT INTO t SELECT ...
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct BeginStmt {};
struct CommitStmt {
  bool with_snapshot = false;
};
struct RollbackStmt {};

/// EXPLAIN SELECT ...: emits one plan-description row per operator.
struct ExplainStmt {
  std::unique_ptr<SelectStmt> select;
};

using Statement =
    std::variant<SelectStmt, CreateTableStmt, CreateIndexStmt, DropStmt,
                 InsertStmt, UpdateStmt, DeleteStmt, BeginStmt, CommitStmt,
                 RollbackStmt, ExplainStmt>;

/// Invokes `fn` on every expression node of `stmt`, including nodes inside
/// subqueries. Used to collect '?' parameters.
void VisitStatementExprs(Statement* stmt,
                         const std::function<void(Expr*)>& fn);

}  // namespace rql::sql

#endif  // RQL_SQL_AST_H_

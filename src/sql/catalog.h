#ifndef RQL_SQL_CATALOG_H_
#define RQL_SQL_CATALOG_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/heap_table.h"
#include "sql/schema.h"
#include "storage/page_store.h"

namespace rql::sql {

struct TableInfo {
  std::string name;
  storage::PageId root = storage::kInvalidPageId;
  TableSchema schema;
  Rid catalog_rid = 0;
};

struct IndexInfo {
  std::string name;
  std::string table;               // owning table name
  std::vector<std::string> columns;
  std::vector<int> column_idx;     // resolved against the table schema
  storage::PageId root = storage::kInvalidPageId;
  Rid catalog_rid = 0;
};

/// The system catalog as a point-in-time value. Loadable from the current
/// state or from a snapshot view — the catalog lives in ordinary pages, so
/// a Retro snapshot captures the schema as of the declaration, exactly as
/// the paper specifies ("the entire state of the database ... system
/// catalogs").
struct CatalogData {
  // Keyed by lower-cased name.
  std::unordered_map<std::string, TableInfo> tables;
  std::unordered_map<std::string, IndexInfo> indexes;

  static Result<CatalogData> Load(storage::PageReader* reader,
                                  storage::PageId catalog_root);

  const TableInfo* FindTable(std::string_view name) const;
  const IndexInfo* FindIndex(std::string_view name) const;

  /// All indexes declared on `table`.
  std::vector<const IndexInfo*> TableIndexes(std::string_view table) const;

  /// The index whose first key column is `table.column`, if any (used for
  /// index-scan planning).
  const IndexInfo* IndexOnColumn(std::string_view table,
                                 std::string_view column) const;
};

/// Mutable catalog bound to the current database state. DDL operations
/// update both the persistent catalog table and the in-memory CatalogData.
class Catalog {
 public:
  /// Creates the catalog heap table if the store has none, and loads it.
  static Result<std::unique_ptr<Catalog>> Open(storage::PageWriter* writer,
                                               storage::PageId* catalog_root);

  Catalog(storage::PageWriter* writer, storage::PageId root)
      : writer_(writer), root_(root) {}

  Status Reload();

  const CatalogData& data() const { return data_; }
  storage::PageId root() const { return root_; }

  /// Creates an empty table. Fails with AlreadyExists.
  Status CreateTable(const std::string& name, const TableSchema& schema);

  /// Drops the table, its pages, and all of its indexes.
  Status DropTable(const std::string& name);

  /// Creates an empty index; the caller populates it.
  Result<const IndexInfo*> CreateIndex(const std::string& name,
                                       const std::string& table,
                                       const std::vector<std::string>& columns);

  Status DropIndex(const std::string& name);

 private:
  Status AppendEntry(const Row& row, Rid* rid);

  storage::PageWriter* writer_;
  storage::PageId root_;
  CatalogData data_;
};

}  // namespace rql::sql

#endif  // RQL_SQL_CATALOG_H_

#ifndef RQL_SQL_BTREE_H_
#define RQL_SQL_BTREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/value.h"
#include "storage/page_store.h"

namespace rql::sql {

/// A B+-tree mapping composite-value keys to 64-bit payloads (rids).
///
/// Keys are rows (EncodeRow form); comparisons decode and use CompareRows,
/// so mixed-type keys order correctly (NULL < numeric < text). Secondary
/// indexes append the rid as a trailing key column to keep keys unique;
/// prefix seeks then implement equality probes on the indexed columns.
///
/// The root page id is stable for the lifetime of the tree (root splits
/// push the old root's contents down), so the catalog never needs
/// rewriting when the tree grows. Deletes are lazy: no rebalancing, pages
/// are reclaimed only by Drop().
class BTree {
 public:
  /// Allocates an empty tree; returns its root page id.
  static Result<storage::PageId> Create(storage::PageWriter* writer);

  BTree(storage::PageWriter* writer, storage::PageId root)
      : writer_(writer), root_(root) {}

  /// Inserts a unique key. Fails with AlreadyExists on duplicates.
  Status Insert(const Row& key, uint64_t value);

  /// Removes an exact key. Fails with NotFound if absent.
  Status Delete(const Row& key);

  /// Exact-key lookup.
  Result<uint64_t> Lookup(const Row& key) const;

  /// Frees all pages including the root.
  Status Drop();

  storage::PageId root() const { return root_; }

  /// In-order iterator, usable over the current state or a snapshot view.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    Status status() const { return status_; }
    const Row& key() const { return key_; }
    uint64_t value() const { return value_; }
    void Next();

   private:
    friend class BTree;
    Iterator(storage::PageReader* reader) : reader_(reader) {}
    void LoadCurrent();

    storage::PageReader* reader_;
    storage::Page page_;
    storage::PageId page_id_ = storage::kInvalidPageId;
    int slot_ = 0;
    bool valid_ = false;
    Status status_;
    Row key_;
    uint64_t value_ = 0;
  };

  /// Iterator positioned at the smallest key.
  static Result<Iterator> SeekFirst(storage::PageReader* reader,
                                    storage::PageId root);

  /// Iterator positioned at the first key >= `lower` (prefix comparisons:
  /// a shorter `lower` row matches any extension).
  static Result<Iterator> Seek(storage::PageReader* reader,
                               storage::PageId root, const Row& lower);

  /// Number of pages in the tree (for memory-footprint reporting).
  static Result<uint64_t> CountPages(storage::PageReader* reader,
                                     storage::PageId root);

 private:
  struct SplitResult {
    bool split = false;
    std::string separator;       // encoded key
    storage::PageId new_node = storage::kInvalidPageId;
  };

  Status InsertRec(storage::PageId node_id, const std::string& key,
                   uint64_t value, SplitResult* split);

  storage::PageWriter* writer_;
  storage::PageId root_;
};

}  // namespace rql::sql

#endif  // RQL_SQL_BTREE_H_

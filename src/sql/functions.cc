#include "sql/functions.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cmath>

#include "sql/schema.h"

namespace rql::sql {

void FunctionRegistry::Register(const std::string& name, int min_args,
                                int max_args, ScalarFn fn) {
  functions_[IdentLower(name)] = FunctionDef{min_args, max_args,
                                             std::move(fn)};
}

const FunctionDef* FunctionRegistry::Find(const std::string& name) const {
  auto it = functions_.find(IdentLower(name));
  return it == functions_.end() ? nullptr : &it->second;
}

bool IsAggregateFunction(const std::string& name) {
  static constexpr std::string_view kAggregates[] = {"count", "sum", "min",
                                                     "max", "avg", "total"};
  std::string lower = IdentLower(name);
  for (std::string_view agg : kAggregates) {
    if (lower == agg) return true;
  }
  return false;
}

FunctionRegistry FunctionRegistry::WithBuiltins() {
  FunctionRegistry reg;
  reg.Register("abs", 1, 1, [](const std::vector<Value>& args) -> Result<Value> {
    const Value& v = args[0];
    if (v.is_null()) return Value::Null();
    if (v.type() == ValueType::kInteger) {
      return Value::Integer(std::abs(v.integer()));
    }
    if (v.type() == ValueType::kReal) return Value::Real(std::fabs(v.real()));
    return Status::InvalidArgument("abs: non-numeric argument");
  });
  reg.Register("length", 1, 1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 const Value& v = args[0];
                 if (v.is_null()) return Value::Null();
                 if (v.type() == ValueType::kText) {
                   return Value::Integer(
                       static_cast<int64_t>(v.text().size()));
                 }
                 return Value::Integer(
                     static_cast<int64_t>(v.ToString().size()));
               });
  reg.Register("substr", 2, 3,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (args[0].is_null()) return Value::Null();
                 std::string s = args[0].type() == ValueType::kText
                                     ? args[0].text()
                                     : args[0].ToString();
                 // SQLite semantics: 1-based start.
                 int64_t start = args[1].AsInt();
                 int64_t len = args.size() > 2
                                   ? args[2].AsInt()
                                   : static_cast<int64_t>(s.size());
                 if (start < 1) start = 1;
                 if (start > static_cast<int64_t>(s.size())) {
                   return Value::Text("");
                 }
                 if (len < 0) len = 0;
                 return Value::Text(s.substr(static_cast<size_t>(start - 1),
                                             static_cast<size_t>(len)));
               });
  reg.Register("upper", 1, 1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (args[0].is_null()) return Value::Null();
                 std::string s = args[0].ToString();
                 for (char& c : s) {
                   c = static_cast<char>(
                       std::toupper(static_cast<unsigned char>(c)));
                 }
                 return Value::Text(std::move(s));
               });
  reg.Register("lower", 1, 1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (args[0].is_null()) return Value::Null();
                 std::string s = args[0].ToString();
                 for (char& c : s) {
                   c = static_cast<char>(
                       std::tolower(static_cast<unsigned char>(c)));
                 }
                 return Value::Text(std::move(s));
               });
  reg.Register("coalesce", 1, -1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 for (const Value& v : args) {
                   if (!v.is_null()) return v;
                 }
                 return Value::Null();
               });
  reg.Register("ifnull", 2, 2,
               [](const std::vector<Value>& args) -> Result<Value> {
                 return args[0].is_null() ? args[1] : args[0];
               });
  reg.Register("typeof", 1, 1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 return Value::Text(
                     std::string(ValueTypeName(args[0].type())));
               });
  reg.Register("round", 1, 2,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (args[0].is_null()) return Value::Null();
                 if (!args[0].is_numeric()) {
                   return Status::InvalidArgument("round: non-numeric");
                 }
                 int64_t digits = args.size() > 1 ? args[1].AsInt() : 0;
                 double scale = std::pow(10.0, static_cast<double>(digits));
                 return Value::Real(std::round(args[0].AsDouble() * scale) /
                                    scale);
               });
  reg.Register("nullif", 2, 2,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (!args[0].is_null() && !args[1].is_null() &&
                     CompareValues(args[0], args[1]) == 0) {
                   return Value::Null();
                 }
                 return args[0];
               });
  reg.Register("trim", 1, 1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (args[0].is_null()) return Value::Null();
                 std::string s = args[0].ToString();
                 size_t b = s.find_first_not_of(" \t\r\n");
                 size_t e = s.find_last_not_of(" \t\r\n");
                 if (b == std::string::npos) return Value::Text("");
                 return Value::Text(s.substr(b, e - b + 1));
               });
  reg.Register("replace", 3, 3,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (args[0].is_null()) return Value::Null();
                 std::string s = args[0].ToString();
                 std::string from = args[1].ToString();
                 std::string to = args[2].ToString();
                 if (from.empty()) return Value::Text(std::move(s));
                 std::string out;
                 size_t pos = 0;
                 for (;;) {
                   size_t hit = s.find(from, pos);
                   if (hit == std::string::npos) break;
                   out.append(s, pos, hit - pos);
                   out.append(to);
                   pos = hit + from.size();
                 }
                 out.append(s, pos, std::string::npos);
                 return Value::Text(std::move(out));
               });
  reg.Register("instr", 2, 2,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (args[0].is_null() || args[1].is_null()) {
                   return Value::Null();
                 }
                 std::string hay = args[0].ToString();
                 size_t pos = hay.find(args[1].ToString());
                 return Value::Integer(
                     pos == std::string::npos
                         ? 0
                         : static_cast<int64_t>(pos) + 1);
               });
  // CAST(x AS type) compiles to these. Overflow semantics (matching the
  // parser's for numeric literals): a value that does not fit the target
  // type is an error status, never a silent saturation to an arbitrary
  // value. Text with no leading number still casts to 0/0.0
  // (SQLite-compatible); float-text underflow rounds to zero.
  reg.Register("cast_integer", 1, 1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 const Value& v = args[0];
                 if (v.is_null()) return Value::Null();
                 if (v.type() == ValueType::kText) {
                   errno = 0;
                   char* end = nullptr;
                   long long parsed = std::strtoll(v.text().c_str(), &end,
                                                   10);
                   if (end == v.text().c_str()) return Value::Integer(0);
                   if (errno == ERANGE) {
                     return Status::InvalidArgument(
                         "integer out of range in CAST: " + v.text());
                   }
                   return Value::Integer(static_cast<int64_t>(parsed));
                 }
                 if (v.type() == ValueType::kReal) {
                   double d = v.real();
                   // Bounds compared in double space: [−2^63, 2^63) are the
                   // doubles whose truncation is a representable int64; the
                   // cast itself would be undefined outside (and for NaN).
                   if (!(d >= -9223372036854775808.0 &&
                         d < 9223372036854775808.0)) {
                     return Status::InvalidArgument(
                         "value out of range in CAST to INTEGER");
                   }
                   return Value::Integer(static_cast<int64_t>(d));
                 }
                 return Value::Integer(v.AsInt());
               });
  reg.Register("cast_real", 1, 1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 const Value& v = args[0];
                 if (v.is_null()) return Value::Null();
                 if (v.type() == ValueType::kText) {
                   errno = 0;
                   char* end = nullptr;
                   double parsed = std::strtod(v.text().c_str(), &end);
                   if (end == v.text().c_str()) return Value::Real(0.0);
                   if (errno == ERANGE && !std::isfinite(parsed)) {
                     return Status::InvalidArgument(
                         "value out of range in CAST to REAL: " + v.text());
                   }
                   return Value::Real(parsed);
                 }
                 return Value::Real(v.AsDouble());
               });
  reg.Register("cast_text", 1, 1,
               [](const std::vector<Value>& args) -> Result<Value> {
                 if (args[0].is_null()) return Value::Null();
                 return Value::Text(args[0].ToString());
               });
  return reg;
}

}  // namespace rql::sql

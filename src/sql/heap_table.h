#ifndef RQL_SQL_HEAP_TABLE_H_
#define RQL_SQL_HEAP_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "sql/row_batch.h"
#include "sql/scan_cache.h"
#include "storage/page_store.h"

namespace rql::sql {

/// Record identifier: page id in the high 32 bits (16 would do, but 32
/// keeps it simple), slot number in the low bits.
using Rid = uint64_t;

inline Rid MakeRid(storage::PageId page, uint16_t slot) {
  return (static_cast<uint64_t>(page) << 16) | slot;
}
inline storage::PageId RidPage(Rid rid) {
  return static_cast<storage::PageId>(rid >> 16);
}
inline uint16_t RidSlot(Rid rid) { return static_cast<uint16_t>(rid & 0xFFFF); }

/// A heap file of variable-length records in slotted pages.
///
/// Pages form a doubly-linked chain starting at the root. Inserts fill the
/// tail page (tracked in the root header); deletes mark slots dead, and a
/// page whose records are all dead is unlinked and returned to the store's
/// free list. Under a rotating update workload (TPC-H refresh) the table
/// therefore stays at roughly constant size while every page is eventually
/// rewritten — the "overwrite cycle" behaviour the paper's Section 4
/// analyses.
class HeapTable {
 public:
  /// Allocates an empty table; returns its root page id.
  static Result<storage::PageId> Create(storage::PageWriter* writer);

  /// Opens an existing table for mutation.
  HeapTable(storage::PageWriter* writer, storage::PageId root)
      : writer_(writer), root_(root) {}

  /// Inserts a record; returns its rid. Records must fit in one page
  /// (roughly kPageSize - 32 bytes).
  Result<Rid> Insert(std::string_view record);

  /// Marks the record dead; frees the page when it empties.
  Status Delete(Rid rid);

  /// Replaces the record, possibly moving it; returns the (new) rid.
  Result<Rid> Update(Rid rid, std::string_view record);

  /// Frees every page of the table, including the root.
  Status Drop();

  storage::PageId root() const { return root_; }

  /// Forward scan over any reader (the current state or a snapshot view).
  ///
  /// With a ScanCache attached, pages the reader can assign a stable
  /// version to (archived snapshot pages, keyed by Pagelog offset) are
  /// decoded once per cache lifetime: the scan serves records — and
  /// pre-decoded rows, see cached_row() — from the cached entry, and the
  /// chain follows the entry's recorded successor without re-reading the
  /// page. Unversioned pages (current-state, or shared-with-current) fall
  /// back to the plain read-and-walk path, so a scan may mix both modes.
  class Iterator {
   public:
    /// True while positioned on a record. False at end or after error;
    /// check status() to distinguish.
    bool Valid() const { return valid_; }
    Status status() const { return status_; }

    Rid rid() const {
      return MakeRid(page_id_, cached_ ? cached_->slots[slot_]
                                       : static_cast<uint16_t>(slot_));
    }
    std::string_view record() const { return record_; }

    /// The current record's pre-decoded row, when it was served from the
    /// scan cache; nullptr otherwise (caller decodes record() itself).
    const Row* cached_row() const {
      return cached_ ? &cached_->rows[slot_] : nullptr;
    }

    void Next();

   private:
    friend class HeapTable;
    Iterator(storage::PageReader* reader, storage::PageId root,
             ScanCache* cache, ScanCacheCounters* counters);

    void LoadPage(storage::PageId id);
    void AdvanceToLiveSlot();

    storage::PageReader* reader_;
    ScanCache* cache_ = nullptr;
    ScanCacheCounters* counters_ = nullptr;  // per-execution attribution
    // Cached mode: the current page's decoded entry; slot_ indexes its
    // records. Plain mode (cached_ == nullptr): page_ holds the page and
    // slot_ is the physical slot number.
    std::shared_ptr<const ScanCache::DecodedPage> cached_;
    storage::Page page_;
    storage::PageId page_id_ = storage::kInvalidPageId;
    int slot_ = -1;  // current slot, advanced by AdvanceToLiveSlot
    uint16_t slot_count_ = 0;
    std::string_view record_;
    bool valid_ = false;
    Status status_;
  };

  /// Opens a scan of the table rooted at `root` through `reader`,
  /// optionally reusing decoded page versions from `cache`. `counters`,
  /// when given, receives this scan's hit/miss/coalesced counts — the
  /// race-free per-execution attribution (the cache's own counters are
  /// global across every run sharing it).
  static Iterator Scan(storage::PageReader* reader, storage::PageId root,
                       ScanCache* cache = nullptr,
                       ScanCacheCounters* counters = nullptr);

  /// Page-at-a-time scan: each position is a RowBatch holding every live
  /// record of one heap page, fully decoded. Pages the reader can version
  /// go through the same ScanCache protocol as Iterator (lookup / decode
  /// once / publish), so hit accounting and read-set recording are
  /// identical to the row scan; unversioned pages are decoded into a
  /// batch-private buffer the RowBatch keeps alive. Pages with no live
  /// records are skipped, so a valid batch is never empty. Unlike the
  /// row scan, an undecodable record fails the whole scan (status()).
  class BatchIterator {
   public:
    bool Valid() const { return valid_; }
    Status status() const { return status_; }

    /// The current page's rows. Only `selection` may be mutated; the
    /// batch stays usable after Next() (it owns its lifetime anchor),
    /// which is what lets consumers hold borrowed values across pages.
    RowBatch& batch() { return batch_; }

    void Next();

   private:
    friend class HeapTable;
    BatchIterator(storage::PageReader* reader, storage::PageId root,
                  ScanCache* cache, ScanCacheCounters* counters);

    void LoadBatch(storage::PageId id);

    storage::PageReader* reader_;
    ScanCache* cache_ = nullptr;
    ScanCacheCounters* counters_ = nullptr;  // per-execution attribution
    RowBatch batch_;
    storage::PageId next_ = storage::kInvalidPageId;
    bool valid_ = false;
    Status status_;
  };

  /// Opens a batch scan of the table rooted at `root` through `reader`,
  /// optionally reusing decoded page versions from `cache` (with
  /// per-execution attribution into `counters`, as in Scan).
  static BatchIterator ScanBatches(storage::PageReader* reader,
                                   storage::PageId root,
                                   ScanCache* cache = nullptr,
                                   ScanCacheCounters* counters = nullptr);

  /// Reads one record by rid through `reader`.
  static Result<std::string> Get(storage::PageReader* reader, Rid rid);

  /// Number of chained pages (for memory-footprint reporting).
  static Result<uint64_t> CountPages(storage::PageReader* reader,
                                     storage::PageId root);

 private:
  Status InsertIntoPage(storage::PageId id, storage::Page* page,
                        std::string_view record, uint16_t* slot);

  storage::PageWriter* writer_;
  storage::PageId root_;
};

}  // namespace rql::sql

#endif  // RQL_SQL_HEAP_TABLE_H_

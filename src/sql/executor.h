#ifndef RQL_SQL_EXECUTOR_H_
#define RQL_SQL_EXECUTOR_H_

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "retro/maplog.h"
#include "retro/metrics.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/expr.h"
#include "sql/functions.h"
#include "sql/row_batch.h"
#include "sql/scan_cache.h"

namespace rql::sql {

/// Per-statement execution counters. `index_build_us` isolates the cost of
/// transient join indexes (SQLite's "automatic covering index"), which the
/// paper's Figure 9 reports as a separate bar.
struct ExecStats {
  int64_t rows_scanned = 0;
  int64_t rows_output = 0;
  int64_t index_build_us = 0;
  bool used_transient_index = false;
  bool used_native_index = false;
  // Batch-execution counters (zero when the row path ran). A fallback row
  // is one (row, expression) evaluation the batch path had to route
  // through scalar EvalExpr because the expression is not vectorizable.
  int64_t batches_scanned = 0;
  int64_t batch_rows = 0;
  int64_t batch_fallback_rows = 0;
  // Scan-cache traffic attributed to THIS execution. Exact even when the
  // cache is shared across runs or parallel workers (the cache's own
  // counters are global), so the engine credits hits to the iteration
  // that performed them.
  ScanCacheCounters scan_cache;

  void Reset() { *this = ExecStats{}; }
};

/// Planning decisions carried across executions of the same prepared
/// statement (the RQL iteration-setup amortization path): the join order
/// chosen by the reorder heuristic and the transient covering-index specs
/// discovered during execution. Re-running the statement then skips the
/// re-derivation; only the per-execution index *build* repeats, since the
/// data under an AS OF binding changes every iteration.
struct PlanCache {
  /// The statement the cached decisions belong to; claimed on first use so
  /// subqueries (different statement, same context) never reuse them.
  const void* owner = nullptr;
  bool has_join_order = false;
  std::vector<size_t> join_order;  // FROM positions in execution order
  /// Join levels known to need a transient index (table name + join column
  /// recorded for sanity), so later executions build it up front instead of
  /// re-discovering the need at first probe.
  struct TransientSpec {
    size_t level = 0;
    std::string table;
    int inner_key_column = -1;
  };
  std::vector<TransientSpec> transient_specs;
  int64_t hits = 0;  // executions that reused a cached decision
};

/// Everything a SELECT needs to run: a page reader (current state or a
/// snapshot view), the catalog as of the same state, functions, stats.
struct ExecContext {
  storage::PageReader* reader = nullptr;
  const CatalogData* catalog = nullptr;
  const FunctionRegistry* functions = nullptr;
  ExecStats* stats = nullptr;  // optional
  /// Snapshot the reader exposes (kNoSnapshot = current state); purely
  /// informational for operators that care which AS OF binding is active.
  retro::SnapshotId as_of = retro::kNoSnapshot;
  PlanCache* plan_cache = nullptr;  // optional
  /// Optional run-scoped decoded-page cache. Sequential scans and
  /// transient-index builds consult it for pages the reader versions
  /// (archived snapshot pages); readers without stable page versions —
  /// the current state — leave it untouched.
  ScanCache* scan_cache = nullptr;
  /// Batch-at-a-time execution (RqlOptions::batch_execution): eligible
  /// sequential scans run page-sized RowBatches through vectorized
  /// filters and aggregate folds instead of the row-at-a-time spine.
  /// Plans the batch path cannot serve (joins, index scans) silently use
  /// the row path; results are byte-identical either way.
  bool batch_execution = false;
  /// Optional histogram observing the row count of every batch scanned.
  retro::MetricsRegistry::Histogram* batch_size_hist = nullptr;
};

using RowSink = std::function<Status(const Row&)>;

/// Executes SELECT statements: binds names, plans access paths (seq scan,
/// native-index lookup, transient hash index for joins), then streams
/// result rows. Instantiate per statement via Prepare.
class SelectExecutor : public SubqueryRunner {
 public:
  static Result<std::unique_ptr<SelectExecutor>> Prepare(
      const SelectStmt* stmt, const ExecContext& ctx);

  /// Output column names, available after Prepare.
  const std::vector<std::string>& columns() const { return columns_; }

  /// Streams result rows into `sink`. Single-shot.
  Status Run(const RowSink& sink);

  /// One human-readable line per plan step (EXPLAIN output), in execution
  /// order: access paths first, then aggregation/output operators.
  std::vector<std::string> DescribePlan() const;

  /// SubqueryRunner: executes (and caches) an uncorrelated subquery.
  Result<const std::vector<Row>*> RunSubquery(const Expr& expr) override;

 private:
  SelectExecutor(const SelectStmt* stmt, const ExecContext& ctx)
      : stmt_(stmt), ctx_(ctx) {}

  struct TableSource {
    const TableInfo* table = nullptr;
    std::string alias;
    // Join access path (levels > 0).
    const Expr* key_expr = nullptr;      // outer-side expression
    int inner_key_column = -1;           // column within this table's row
    const IndexInfo* native_index = nullptr;
    // Level-0 index range scan: constant bounds on native_index's first
    // column, harvested from WHERE comparisons (which stay in the filter,
    // so the bounds only narrow the scan — they never decide membership).
    const Expr* range_lower = nullptr;   // first key >= eval(range_lower)
    const Expr* range_upper = nullptr;   // stop once key > eval(range_upper)
    // Conjuncts evaluable once this level's columns are bound (predicate
    // pushdown); rows failing the filter never reach deeper join levels.
    ExprPtr filter;
    // Index-only ("covering") access: every referenced column of this
    // table is present in native_index, so rows are synthesized from index
    // keys without heap fetches — SQLite's covering-index behaviour.
    bool index_only = false;
    // Transient index built on demand for an unindexed join column: a real
    // B+-tree (plus row heap) in a private in-memory page store, modelling
    // SQLite's "automatic covering index" and its construction cost.
    std::unique_ptr<storage::InMemoryEnv> transient_env;
    std::unique_ptr<storage::PageStore> transient_store;
    storage::PageId transient_index_root = storage::kInvalidPageId;
    storage::PageId transient_heap_root = storage::kInvalidPageId;
  };

  Status BindAll();
  Status PlanJoins(std::vector<ExprPtr>* conjuncts);
  void PlanIndexOnlyAccess();
  Status ScanSource(const RowSink& sink);
  Status JoinLevel(size_t level, Row* current, const RowSink& sink);
  /// True when this plan is a single-table plain sequential scan the
  /// batch path can serve (no join, no index access path).
  bool CanUseBatchScan() const;
  /// Narrows `batch->selection` to the rows where `pred` is true, via
  /// EvalBatch when `vectorized`, else scalar EvalExpr per row (counted
  /// as batch_fallback_rows).
  Status ApplyBatchFilter(const Expr* pred, bool vectorized, RowBatch* batch,
                          std::vector<Value>* scratch);
  /// Batched sequential scan of the single source: decodes pages into
  /// RowBatches, applies the pushed-down filter (and any residual WHERE)
  /// to each selection vector, and hands every batch with surviving rows
  /// to `consume`. Stops early once done_ is set.
  Status ScanBatched(const std::function<Status(RowBatch&)>& consume);
  Status BuildTransientIndex(TableSource* source);
  Status RunAggregation(const RowSink& sink);
  Status RunPlain(const RowSink& sink);
  Result<Row> ProjectRow(const EvalContext& ectx, Row* sort_key);
  Status Emit(Row row, Row sort_key, const RowSink& sink);
  Status Finish(const RowSink& sink);

  const SelectStmt* stmt_;
  ExecContext ctx_;
  PlanCache* plan_cache_ = nullptr;  // ctx_.plan_cache once claimed for stmt_
  BindScope scope_;
  std::vector<TableSource> sources_;
  std::vector<SelectItem> items_;          // star-expanded, bound
  std::vector<std::string> columns_;
  ExprPtr where_;                          // bound copy
  std::vector<ExprPtr> consumed_conjuncts_;  // keeps join key exprs alive
  std::vector<ExprPtr> group_by_;          // bound copies
  ExprPtr having_;
  std::vector<OrderItem> order_by_;        // bound copies
  bool aggregated_ = false;
  std::vector<Expr*> agg_nodes_;
  bool batch_scan_ = false;  // decided once per Run from CanUseBatchScan

  // Output staging (DISTINCT / ORDER BY / LIMIT).
  bool need_sort_ = false;
  bool done_ = false;  // LIMIT satisfied; scans stop early
  std::vector<std::pair<Row, Row>> staged_;  // (sort_key, row)
  std::unordered_set<std::string> distinct_seen_;
  int64_t emitted_ = 0;
  // Uncorrelated subqueries: materialized once per statement.
  std::unordered_map<const Expr*, std::vector<Row>> subquery_cache_;
  int subquery_depth_ = 0;
};

}  // namespace rql::sql

#endif  // RQL_SQL_EXECUTOR_H_

#ifndef RQL_SQL_LEXER_H_
#define RQL_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace rql::sql {

enum class TokenType {
  kEof,
  kIdentifier,   // possibly a keyword; the parser matches case-insensitively
  kInteger,
  kFloat,
  kString,       // contents with quotes removed, '' unescaped
  kOperator,     // one of = == != <> < <= > >= + - * / % ( ) , ; .
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;   // identifier/operator spelling or literal contents
  size_t offset = 0;  // byte offset in the input, for error messages

  bool IsKeyword(std::string_view kw) const;
  bool IsOp(std::string_view op) const {
    return type == TokenType::kOperator && text == op;
  }
};

/// Tokenizes `sql`. The final token is always kEof.
Result<std::vector<Token>> Tokenize(std::string_view sql);

}  // namespace rql::sql

#endif  // RQL_SQL_LEXER_H_

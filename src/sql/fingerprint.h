#ifndef RQL_SQL_FINGERPRINT_H_
#define RQL_SQL_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "sql/ast.h"

namespace rql::sql {

/// Renders `stmt` in a canonical textual form: keywords uppercase,
/// identifiers lowercase, single spacing, every expression fully
/// parenthesized, literals printed with an explicit type tag (so the
/// integer 1 and the text '1' can never collide). Two query texts that
/// parse to the same tree — differing only in whitespace, letter case or
/// comments — canonicalize identically; any semantic difference (another
/// predicate, another literal value, another column order) does not.
///
/// AS OF handling: a literal "AS OF <n>" keeps its value (it pins the
/// statement to one snapshot), while the bindable "AS OF ?" form prints as
/// the shape marker "AS OF ?" — the memo key must distinguish the *shape*
/// (absent / literal / bound), not the per-iteration binding, which the
/// engine supplies per snapshot.
std::string CanonicalizeStatement(const Statement& stmt);

/// Parses `sql` (one or more ';'-separated statements) and joins the
/// canonical forms with "; ". Fails when the text does not parse —
/// callers fingerprinting an already-validated Qq never see the error.
Result<std::string> CanonicalizeSql(std::string_view sql);

/// 64-bit FNV-1a over the canonical form of `sql`, mixed with `salt`
/// (the RQL engine passes the mechanism name: the same Qq driven by two
/// different mechanisms must produce two different memo keys).
Result<uint64_t> QueryFingerprint(std::string_view sql,
                                  std::string_view salt = {});

/// The raw FNV-1a step, exposed for composing digests over other byte
/// strings (the memo table's read-set digest uses it).
uint64_t Fnv1a64(std::string_view data,
                 uint64_t seed = 0xCBF29CE484222325ull);

}  // namespace rql::sql

#endif  // RQL_SQL_FINGERPRINT_H_

#ifndef RQL_SQL_PARSER_H_
#define RQL_SQL_PARSER_H_

#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace rql::sql {

/// Parses a script of one or more ';'-separated statements.
Result<std::vector<Statement>> ParseSql(std::string_view sql);

/// Parses exactly one statement.
Result<Statement> ParseSingle(std::string_view sql);

}  // namespace rql::sql

#endif  // RQL_SQL_PARSER_H_

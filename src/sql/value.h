#ifndef RQL_SQL_VALUE_H_
#define RQL_SQL_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace rql::sql {

/// Column/value types. Mirrors the SQLite storage classes the paper's
/// queries rely on (INTEGER, REAL, TEXT plus NULL).
enum class ValueType : uint8_t {
  kNull = 0,
  kInteger = 1,
  kReal = 2,
  kText = 3,
};

std::string_view ValueTypeName(ValueType type);

/// A dynamically typed SQL value with SQLite-style coercion rules.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}

  static Value Null() { return Value(); }
  static Value Integer(int64_t v) { return Value(v); }
  static Value Real(double v) { return Value(v); }
  static Value Text(std::string v) { return Value(std::move(v)); }

  ValueType type() const {
    switch (data_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInteger;
      case 2: return ValueType::kReal;
      default: return ValueType::kText;
    }
  }

  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInteger || type() == ValueType::kReal;
  }

  /// Accessors require the matching type.
  int64_t integer() const { return std::get<int64_t>(data_); }
  double real() const { return std::get<double>(data_); }
  const std::string& text() const { return std::get<std::string>(data_); }

  /// Numeric value as double (integer or real). 0.0 for other types.
  double AsDouble() const {
    if (type() == ValueType::kInteger) return static_cast<double>(integer());
    if (type() == ValueType::kReal) return real();
    return 0.0;
  }

  /// Numeric value as int64 (truncating reals). 0 for other types.
  int64_t AsInt() const {
    if (type() == ValueType::kInteger) return integer();
    if (type() == ValueType::kReal) return static_cast<int64_t>(real());
    return 0;
  }

  /// Rendering for result printing and debugging (NULL -> "NULL",
  /// text unquoted).
  std::string ToString() const;

  bool operator==(const Value& other) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

/// A record: one value per column.
using Row = std::vector<Value>;

/// Total order used by indexes, ORDER BY, DISTINCT and GROUP BY:
/// NULL < numeric (ints and reals compared numerically) < text.
/// Returns <0, 0, >0.
int CompareValues(const Value& a, const Value& b);

/// Lexicographic row comparison with CompareValues semantics; a shorter row
/// that is a prefix of a longer one compares less.
int CompareRows(const Row& a, const Row& b);

/// Serializes a row to a compact byte string and back. The encoding is not
/// order-preserving; ordered structures decode before comparing.
void EncodeRow(const Row& row, std::string* out);
std::string EncodeRow(const Row& row);
Result<Row> DecodeRow(std::string_view data);

}  // namespace rql::sql

#endif  // RQL_SQL_VALUE_H_

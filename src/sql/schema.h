#ifndef RQL_SQL_SCHEMA_H_
#define RQL_SQL_SCHEMA_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace rql::sql {

struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;  // declared affinity; values may vary
};

/// The schema of a table: an ordered list of named, typed columns.
struct TableSchema {
  std::vector<ColumnDef> columns;

  /// Index of `name` (case-insensitive), or -1.
  int FindColumn(std::string_view name) const;

  size_t size() const { return columns.size(); }

  /// Text form stored in the catalog, e.g. "a INTEGER,b TEXT".
  std::string Serialize() const;
  static Result<TableSchema> Deserialize(std::string_view text);
};

/// Case-insensitive ASCII identifier comparison (SQL identifiers).
bool IdentEquals(std::string_view a, std::string_view b);

/// Lower-cases an identifier for use as a lookup key.
std::string IdentLower(std::string_view s);

}  // namespace rql::sql

#endif  // RQL_SQL_SCHEMA_H_

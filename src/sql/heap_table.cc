#include "sql/heap_table.h"

#include <cstring>
#include <vector>

namespace rql::sql {

namespace {

using storage::kInvalidPageId;
using storage::kPageSize;
using storage::Page;
using storage::PageId;

// Page header layout.
constexpr uint32_t kNextOff = 0;
constexpr uint32_t kPrevOff = 4;
constexpr uint32_t kSlotCountOff = 8;
constexpr uint32_t kDataEndOff = 10;
constexpr uint32_t kLastPageOff = 12;  // root page only
constexpr uint32_t kDataStart = 16;

// Slot directory grows from the page end; 4 bytes per slot.
constexpr uint32_t kSlotBytes = 4;
constexpr uint16_t kDeadLen = 0xFFFF;

uint32_t SlotPos(int slot) {
  return kPageSize - (static_cast<uint32_t>(slot) + 1) * kSlotBytes;
}

void ReadSlot(const Page& page, int slot, uint16_t* offset, uint16_t* len) {
  *offset = page.ReadU16(SlotPos(slot));
  *len = page.ReadU16(SlotPos(slot) + 2);
}

void WriteSlot(Page* page, int slot, uint16_t offset, uint16_t len) {
  page->WriteU16(SlotPos(slot), offset);
  page->WriteU16(SlotPos(slot) + 2, len);
}

void InitPage(Page* page) {
  page->Zero();
  page->WriteU16(kDataEndOff, kDataStart);
}

// Rewrites the record area dropping dead bytes; slot numbers (and thus
// rids) are preserved.
void CompactPage(Page* page) {
  uint16_t slot_count = page->ReadU16(kSlotCountOff);
  struct Live {
    int slot;
    std::string data;
  };
  std::vector<Live> live;
  for (int s = 0; s < slot_count; ++s) {
    uint16_t off, len;
    ReadSlot(*page, s, &off, &len);
    if (len == kDeadLen) continue;
    live.push_back({s, std::string(page->data + off, len)});
  }
  uint16_t pos = kDataStart;
  for (const Live& l : live) {
    std::memcpy(page->data + pos, l.data.data(), l.data.size());
    WriteSlot(page, l.slot, pos, static_cast<uint16_t>(l.data.size()));
    pos = static_cast<uint16_t>(pos + l.data.size());
  }
  page->WriteU16(kDataEndOff, pos);
}

// Decodes every live record of `page` into `out` (slots, raw bytes,
// decoded rows; string_views point into the buffer backing `page`).
// Does not touch out->pin; the caller anchors the buffer's lifetime.
Status DecodePageRecords(const Page& page, ScanCache::DecodedPage* out) {
  out->next = page.ReadU32(kNextOff);
  uint16_t slot_count = page.ReadU16(kSlotCountOff);
  for (int s = 0; s < slot_count; ++s) {
    uint16_t off, len;
    ReadSlot(page, s, &off, &len);
    if (len == kDeadLen) continue;
    std::string_view record(page.data + off, len);
    RQL_ASSIGN_OR_RETURN(Row row, DecodeRow(record));
    out->slots.push_back(static_cast<uint16_t>(s));
    out->records.push_back(record);
    out->rows.push_back(std::move(row));
  }
  return Status::OK();
}

// An unversioned page decoded for a batch scan: the frame must live as
// long as the DecodedPage views into it, so both share one allocation
// and batches hold the entry through an aliasing shared_ptr.
struct OwnedDecodedPage {
  Page frame;
  ScanCache::DecodedPage decoded;
};

int LiveCount(const Page& page) {
  uint16_t slot_count = page.ReadU16(kSlotCountOff);
  int live = 0;
  for (int s = 0; s < slot_count; ++s) {
    uint16_t off, len;
    ReadSlot(page, s, &off, &len);
    if (len != kDeadLen) ++live;
  }
  return live;
}

}  // namespace

Result<PageId> HeapTable::Create(storage::PageWriter* writer) {
  RQL_ASSIGN_OR_RETURN(PageId root, writer->AllocatePage());
  Page page;
  InitPage(&page);
  page.WriteU32(kLastPageOff, root);
  RQL_RETURN_IF_ERROR(writer->WritePage(root, page));
  return root;
}

Status HeapTable::InsertIntoPage(PageId id, Page* page,
                                 std::string_view record, uint16_t* slot) {
  uint16_t slot_count = page->ReadU16(kSlotCountOff);
  uint16_t data_end = page->ReadU16(kDataEndOff);

  // Prefer reusing a dead slot so the directory does not grow.
  int target = -1;
  for (int s = 0; s < slot_count; ++s) {
    uint16_t off, len;
    ReadSlot(*page, s, &off, &len);
    if (len == kDeadLen) {
      target = s;
      break;
    }
  }
  bool new_slot = target < 0;
  uint32_t dir_bytes =
      (static_cast<uint32_t>(slot_count) + (new_slot ? 1 : 0)) * kSlotBytes;
  if (kDataStart + dir_bytes > kPageSize) {
    return Status::OutOfRange("page slot directory full");
  }
  uint32_t capacity = kPageSize - dir_bytes;

  if (data_end + record.size() > capacity) {
    // Try reclaiming dead record bytes.
    CompactPage(page);
    data_end = page->ReadU16(kDataEndOff);
    if (data_end + record.size() > capacity) {
      return Status::OutOfRange("page full");
    }
  }

  std::memcpy(page->data + data_end, record.data(), record.size());
  if (new_slot) {
    target = slot_count;
    page->WriteU16(kSlotCountOff, static_cast<uint16_t>(slot_count + 1));
  }
  WriteSlot(page, target, data_end, static_cast<uint16_t>(record.size()));
  page->WriteU16(kDataEndOff,
                 static_cast<uint16_t>(data_end + record.size()));
  (void)id;
  *slot = static_cast<uint16_t>(target);
  return Status::OK();
}

Result<Rid> HeapTable::Insert(std::string_view record) {
  if (record.size() > kPageSize - kDataStart - 2 * kSlotBytes) {
    return Status::InvalidArgument("record too large for one page");
  }
  Page root_page;
  RQL_RETURN_IF_ERROR(writer_->ReadPage(root_, &root_page));
  PageId tail = root_page.ReadU32(kLastPageOff);
  if (tail == kInvalidPageId) tail = root_;

  Page tail_page;
  if (tail == root_) {
    tail_page = root_page;
  } else {
    RQL_RETURN_IF_ERROR(writer_->ReadPage(tail, &tail_page));
  }

  uint16_t slot = 0;
  Status s = InsertIntoPage(tail, &tail_page, record, &slot);
  if (s.ok()) {
    RQL_RETURN_IF_ERROR(writer_->WritePage(tail, tail_page));
    return MakeRid(tail, slot);
  }
  if (s.code() != StatusCode::kOutOfRange) return s;

  // Tail is full: chain a fresh page.
  RQL_ASSIGN_OR_RETURN(PageId fresh, writer_->AllocatePage());
  Page fresh_page;
  InitPage(&fresh_page);
  fresh_page.WriteU32(kPrevOff, tail);
  RQL_RETURN_IF_ERROR(InsertIntoPage(fresh, &fresh_page, record, &slot));
  RQL_RETURN_IF_ERROR(writer_->WritePage(fresh, fresh_page));

  tail_page.WriteU32(kNextOff, fresh);
  RQL_RETURN_IF_ERROR(writer_->WritePage(tail, tail_page));
  if (tail == root_) root_page = tail_page;  // keep root buffer current

  root_page.WriteU32(kLastPageOff, fresh);
  RQL_RETURN_IF_ERROR(writer_->WritePage(root_, root_page));
  return MakeRid(fresh, slot);
}

Status HeapTable::Delete(Rid rid) {
  PageId id = RidPage(rid);
  uint16_t slot = RidSlot(rid);
  Page page;
  RQL_RETURN_IF_ERROR(writer_->ReadPage(id, &page));
  uint16_t slot_count = page.ReadU16(kSlotCountOff);
  if (slot >= slot_count) return Status::NotFound("no such slot");
  uint16_t off, len;
  ReadSlot(page, slot, &off, &len);
  if (len == kDeadLen) return Status::NotFound("record already deleted");
  WriteSlot(&page, slot, 0, kDeadLen);

  if (LiveCount(page) > 0 || id == root_) {
    if (id == root_ && LiveCount(page) == 0 &&
        page.ReadU32(kNextOff) == kInvalidPageId) {
      // Empty single-page table: reset the root so slot numbers restart.
      PageId last = page.ReadU32(kLastPageOff);
      InitPage(&page);
      page.WriteU32(kLastPageOff, last);
    }
    return writer_->WritePage(id, page);
  }

  // The page emptied: unlink it from the chain and recycle it.
  PageId next = page.ReadU32(kNextOff);
  PageId prev = page.ReadU32(kPrevOff);
  {
    Page prev_page;
    RQL_RETURN_IF_ERROR(writer_->ReadPage(prev, &prev_page));
    prev_page.WriteU32(kNextOff, next);
    RQL_RETURN_IF_ERROR(writer_->WritePage(prev, prev_page));
  }
  if (next != kInvalidPageId) {
    Page next_page;
    RQL_RETURN_IF_ERROR(writer_->ReadPage(next, &next_page));
    next_page.WriteU32(kPrevOff, prev);
    RQL_RETURN_IF_ERROR(writer_->WritePage(next, next_page));
  } else {
    Page root_page;
    RQL_RETURN_IF_ERROR(writer_->ReadPage(root_, &root_page));
    root_page.WriteU32(kLastPageOff, prev);
    RQL_RETURN_IF_ERROR(writer_->WritePage(root_, root_page));
  }
  return writer_->FreePage(id);
}

Result<Rid> HeapTable::Update(Rid rid, std::string_view record) {
  // Try replacing in place when the new record is no larger.
  PageId id = RidPage(rid);
  uint16_t slot = RidSlot(rid);
  Page page;
  RQL_RETURN_IF_ERROR(writer_->ReadPage(id, &page));
  uint16_t slot_count = page.ReadU16(kSlotCountOff);
  if (slot >= slot_count) return Status::NotFound("no such slot");
  uint16_t off, len;
  ReadSlot(page, slot, &off, &len);
  if (len == kDeadLen) return Status::NotFound("record deleted");
  if (record.size() <= len) {
    std::memcpy(page.data + off, record.data(), record.size());
    WriteSlot(&page, slot, off, static_cast<uint16_t>(record.size()));
    RQL_RETURN_IF_ERROR(writer_->WritePage(id, page));
    return rid;
  }
  RQL_RETURN_IF_ERROR(Delete(rid));
  return Insert(record);
}

Status HeapTable::Drop() {
  PageId id = root_;
  // Read the chain first, then free: FreePage overwrites the next pointer.
  std::vector<PageId> pages;
  Page page;
  while (id != kInvalidPageId) {
    pages.push_back(id);
    RQL_RETURN_IF_ERROR(writer_->ReadPage(id, &page));
    id = page.ReadU32(kNextOff);
  }
  for (PageId p : pages) {
    RQL_RETURN_IF_ERROR(writer_->FreePage(p));
  }
  return Status::OK();
}

HeapTable::Iterator::Iterator(storage::PageReader* reader, PageId root,
                              ScanCache* cache, ScanCacheCounters* counters)
    : reader_(reader), cache_(cache), counters_(counters) {
  LoadPage(root);
  if (status_.ok()) AdvanceToLiveSlot();
}

namespace {

// Decodes the pinned page version into a cache entry; nullptr when any
// record fails to decode (the row scan's plain path surfaces the error).
std::shared_ptr<const ScanCache::DecodedPage> DecodePinnedPage(
    const Page& page, storage::PinnedPage pin) {
  auto decoded = std::make_shared<ScanCache::DecodedPage>();
  if (!DecodePageRecords(page, decoded.get()).ok()) return nullptr;
  decoded->pin = std::move(pin);
  return decoded;
}

}  // namespace

void HeapTable::Iterator::LoadPage(PageId id) {
  page_id_ = id;
  slot_ = -1;
  cached_.reset();
  if (id == kInvalidPageId) {
    valid_ = false;
    slot_count_ = 0;
    return;
  }
  uint64_t version = 0;
  if (cache_ != nullptr && reader_->PageVersion(id, &version)) {
    ScanCache::AcquireResult acq = cache_->Acquire(version);
    if (acq.page != nullptr) {
      cached_ = std::move(acq.page);
      cache_->AddHit();
      if (counters_ != nullptr) {
        ++counters_->hits;
        if (acq.coalesced) ++counters_->coalesced;
      }
      return;
    }
    cache_->AddMiss();
    if (counters_ != nullptr) ++counters_->misses;
    if (acq.claimed) {
      // This caller owns the decode: every exit below must either publish
      // (Insert) or release the claim (AbandonDecode) so single-flight
      // waiters never hang on an abandoned version.
      Result<storage::PinnedPage> pinned = reader_->ReadPagePinned(id);
      if (!pinned.ok()) {
        cache_->AbandonDecode(version);
        status_ = pinned.status();
        valid_ = false;
        return;
      }
      if (*pinned) {
        const Page& frame = **pinned;  // outlives the move: the entry pins it
        auto decoded = DecodePinnedPage(frame, std::move(*pinned));
        if (decoded != nullptr) {
          cached_ = cache_->Insert(version, std::move(decoded));
          return;
        }
      }
      cache_->AbandonDecode(version);
    }
    // No claim (a waited-on decode was abandoned), no pin, or undecodable
    // records: fall through to the plain path, which reports decode errors
    // through the caller's own DecodeRow.
  }
  status_ = reader_->ReadPage(id, &page_);
  if (!status_.ok()) {
    valid_ = false;
    return;
  }
  slot_count_ = page_.ReadU16(kSlotCountOff);
}

void HeapTable::Iterator::AdvanceToLiveSlot() {
  while (page_id_ != kInvalidPageId) {
    if (cached_ != nullptr) {
      if (++slot_ < static_cast<int>(cached_->records.size())) {
        record_ = cached_->records[slot_];
        valid_ = true;
        return;
      }
      LoadPage(cached_->next);
    } else {
      while (++slot_ < slot_count_) {
        uint16_t off, len;
        ReadSlot(page_, slot_, &off, &len);
        if (len != kDeadLen) {
          record_ = std::string_view(page_.data + off, len);
          valid_ = true;
          return;
        }
      }
      LoadPage(page_.ReadU32(kNextOff));
    }
    if (!status_.ok()) return;
  }
  valid_ = false;
}

void HeapTable::Iterator::Next() {
  if (!valid_) return;
  valid_ = false;
  AdvanceToLiveSlot();
}

HeapTable::Iterator HeapTable::Scan(storage::PageReader* reader, PageId root,
                                    ScanCache* cache,
                                    ScanCacheCounters* counters) {
  return Iterator(reader, root, cache, counters);
}

HeapTable::BatchIterator::BatchIterator(storage::PageReader* reader,
                                        PageId root, ScanCache* cache,
                                        ScanCacheCounters* counters)
    : reader_(reader), cache_(cache), counters_(counters) {
  LoadBatch(root);
}

void HeapTable::BatchIterator::LoadBatch(PageId id) {
  while (id != kInvalidPageId) {
    std::shared_ptr<const ScanCache::DecodedPage> entry;
    uint64_t version = 0;
    if (cache_ != nullptr && reader_->PageVersion(id, &version)) {
      ScanCache::AcquireResult acq = cache_->Acquire(version);
      if (acq.page != nullptr) {
        entry = std::move(acq.page);
        cache_->AddHit();
        if (counters_ != nullptr) {
          ++counters_->hits;
          if (acq.coalesced) ++counters_->coalesced;
        }
      } else {
        cache_->AddMiss();
        if (counters_ != nullptr) ++counters_->misses;
        if (acq.claimed) {
          // Claim held: publish or abandon on every exit (see LoadPage).
          Result<storage::PinnedPage> pinned = reader_->ReadPagePinned(id);
          if (!pinned.ok()) {
            cache_->AbandonDecode(version);
            status_ = pinned.status();
            valid_ = false;
            return;
          }
          if (*pinned) {
            const Page& frame = **pinned;
            auto decoded = std::make_shared<ScanCache::DecodedPage>();
            status_ = DecodePageRecords(frame, decoded.get());
            if (!status_.ok()) {
              cache_->AbandonDecode(version);
              valid_ = false;
              return;
            }
            decoded->pin = std::move(*pinned);
            entry = cache_->Insert(version, std::move(decoded));
          } else {
            // No pin: decode from a plain read below, like the row scan.
            cache_->AbandonDecode(version);
          }
        }
      }
    }
    if (entry == nullptr) {
      auto owned = std::make_shared<OwnedDecodedPage>();
      status_ = reader_->ReadPage(id, &owned->frame);
      if (!status_.ok()) {
        valid_ = false;
        return;
      }
      status_ = DecodePageRecords(owned->frame, &owned->decoded);
      if (!status_.ok()) {
        valid_ = false;
        return;
      }
      entry = std::shared_ptr<const ScanCache::DecodedPage>(
          owned, &owned->decoded);
    }
    PageId next = entry->next;
    if (!entry->rows.empty()) {
      batch_.page = std::move(entry);
      batch_.rows = batch_.page->rows.data();
      batch_.size = static_cast<uint32_t>(batch_.page->rows.size());
      batch_.selection.clear();
      next_ = next;
      valid_ = true;
      return;
    }
    id = next;  // all-dead page: skip it
  }
  valid_ = false;
}

void HeapTable::BatchIterator::Next() {
  if (!valid_) return;
  valid_ = false;
  LoadBatch(next_);
}

HeapTable::BatchIterator HeapTable::ScanBatches(storage::PageReader* reader,
                                                PageId root, ScanCache* cache,
                                                ScanCacheCounters* counters) {
  return BatchIterator(reader, root, cache, counters);
}

Result<std::string> HeapTable::Get(storage::PageReader* reader, Rid rid) {
  Page page;
  RQL_RETURN_IF_ERROR(reader->ReadPage(RidPage(rid), &page));
  uint16_t slot_count = page.ReadU16(kSlotCountOff);
  uint16_t slot = RidSlot(rid);
  if (slot >= slot_count) return Status::NotFound("no such slot");
  uint16_t off, len;
  ReadSlot(page, slot, &off, &len);
  if (len == kDeadLen) return Status::NotFound("record deleted");
  return std::string(page.data + off, len);
}

Result<uint64_t> HeapTable::CountPages(storage::PageReader* reader,
                                       PageId root) {
  uint64_t count = 0;
  Page page;
  PageId id = root;
  while (id != kInvalidPageId) {
    RQL_RETURN_IF_ERROR(reader->ReadPage(id, &page));
    ++count;
    id = page.ReadU32(kNextOff);
  }
  return count;
}

}  // namespace rql::sql

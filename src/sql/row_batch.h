#ifndef RQL_SQL_ROW_BATCH_H_
#define RQL_SQL_ROW_BATCH_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "sql/scan_cache.h"
#include "sql/value.h"

namespace rql::sql {

/// One heap page's worth of decoded rows, handed to the executor as a
/// unit. The batch does not own the row storage: `rows` points into a
/// ScanCache::DecodedPage and `page` keeps that entry (and, through its
/// PinnedPage, the raw record bytes any text values were decoded from)
/// alive for as long as the batch is held. Batches built from shared
/// cache entries therefore borrow the decoded values zero-copy — the
/// per-row Row materialization the scalar scan pays on every snapshot
/// is skipped entirely.
///
/// `selection` is the executor-side filter state: the indices into
/// `rows[0..size)` that survive predicate evaluation, in ascending row
/// order. A freshly produced batch has an empty selection; consumers
/// initialize it to the identity and narrow it with each predicate.
struct RowBatch {
  /// Lifetime anchor for `rows`. Either a ScanCache entry (shared,
  /// version-keyed) or a batch-private decoded page for unversioned
  /// pages; the executor never needs to distinguish the two.
  std::shared_ptr<const ScanCache::DecodedPage> page;
  const Row* rows = nullptr;
  uint32_t size = 0;
  std::vector<uint32_t> selection;

  const Value& at(uint32_t row, size_t col) const { return rows[row][col]; }
};

}  // namespace rql::sql

#endif  // RQL_SQL_ROW_BATCH_H_

#include "sql/database.h"

#include "common/clock.h"
#include "sql/btree.h"
#include "sql/parser.h"

namespace rql::sql {

namespace {

constexpr uint32_t kCatalogRootSlot = 0;

/// Builds the index key for `row` at `rid`: the indexed columns plus the
/// rid as a uniquifying suffix.
Row IndexKey(const IndexInfo& index, const Row& row, Rid rid) {
  Row key;
  key.reserve(index.column_idx.size() + 1);
  for (int idx : index.column_idx) {
    key.push_back(row[static_cast<size_t>(idx)]);
  }
  key.push_back(Value::Integer(static_cast<int64_t>(rid)));
  return key;
}

/// Resolves a SELECT's AS OF clause: a bound "AS OF ?" parameter takes
/// precedence over the literal form. kNoSnapshot = current state.
Result<retro::SnapshotId> ResolveAsOf(const SelectStmt& stmt) {
  if (stmt.as_of_param == nullptr) return stmt.as_of;
  if (!stmt.as_of_param->param_bound) {
    return Status::InvalidArgument("AS OF parameter is unbound");
  }
  const Value& v = stmt.as_of_param->literal;
  if (v.type() != ValueType::kInteger || v.integer() < 0) {
    return Status::InvalidArgument(
        "AS OF parameter must be bound to a snapshot id");
  }
  return static_cast<retro::SnapshotId>(v.integer());
}

}  // namespace

Result<std::unique_ptr<Database>> Database::Open(storage::Env* env,
                                                 const std::string& name,
                                                 DatabaseOptions options) {
  auto db = std::unique_ptr<Database>(new Database());
  RQL_ASSIGN_OR_RETURN(db->owned_store_,
                       retro::SnapshotStore::Open(env, name, options.store));
  db->store_ = db->owned_store_.get();
  RQL_RETURN_IF_ERROR(db->Init());
  return db;
}

Result<std::unique_ptr<Database>> Database::Attach(
    retro::SnapshotStore* store) {
  auto db = std::unique_ptr<Database>(new Database());
  db->store_ = store;
  RQL_RETURN_IF_ERROR(db->Init());
  return db;
}

Status Database::Init() {
  RQL_ASSIGN_OR_RETURN(storage::PageId catalog_root,
                       store_->GetRoot(kCatalogRootSlot));
  storage::PageId original_root = catalog_root;
  RQL_ASSIGN_OR_RETURN(catalog_, Catalog::Open(store_, &catalog_root));
  if (catalog_root != original_root) {
    RQL_RETURN_IF_ERROR(store_->SetRoot(kCatalogRootSlot, catalog_root));
  }
  functions_ = FunctionRegistry::WithBuiltins();
  // The paper's current_snapshot() construct: yields the snapshot id of the
  // RQL iteration in progress.
  Database* raw = this;
  functions_.Register(
      "current_snapshot", 0, 0,
      [raw](const std::vector<Value>&) -> Result<Value> {
        if (raw->current_snapshot_ == retro::kNoSnapshot) {
          return Status::InvalidArgument(
              "current_snapshot() used outside an RQL iteration");
        }
        return Value::Integer(raw->current_snapshot_);
      });
  return Status::OK();
}

Status Database::Exec(std::string_view sql, const QueryCallback& cb) {
  last_stats_ = DbExecStats{};
  int64_t start = NowMicros();
  RQL_ASSIGN_OR_RETURN(std::vector<Statement> statements, ParseSql(sql));
  last_stats_.parse_us = NowMicros() - start;
  start = NowMicros();
  for (Statement& stmt : statements) {
    RQL_RETURN_IF_ERROR(ExecStatement(&stmt, cb));
  }
  last_stats_.exec_us = NowMicros() - start;
  return Status::OK();
}

Result<QueryResult> Database::Query(std::string_view sql) {
  QueryResult result;
  RQL_RETURN_IF_ERROR(Exec(
      sql, [&result](const std::vector<std::string>& columns,
                     const Row& row) {
        if (result.columns.empty()) result.columns = columns;
        result.rows.push_back(row);
        return Status::OK();
      }));
  return result;
}

Result<Value> Database::QueryScalar(std::string_view sql) {
  RQL_ASSIGN_OR_RETURN(QueryResult result, Query(sql));
  if (result.rows.empty() || result.rows[0].empty()) {
    return Status::NotFound("query returned no rows");
  }
  return result.rows[0][0];
}

void Database::RegisterFunction(const std::string& name, int min_args,
                                int max_args, ScalarFn fn) {
  functions_.Register(name, min_args, max_args, std::move(fn));
}

PreparedStatement::PreparedStatement(Database* db, Statement stmt)
    : db_(db), stmt_(std::make_unique<Statement>(std::move(stmt))) {
  VisitStatementExprs(stmt_.get(), [this](Expr* expr) {
    if (expr->kind == ExprKind::kParameter) {
      if (static_cast<size_t>(expr->param_index) > parameters_.size()) {
        parameters_.resize(static_cast<size_t>(expr->param_index), nullptr);
      }
      parameters_[static_cast<size_t>(expr->param_index) - 1] = expr;
    }
  });
}

Status PreparedStatement::BindValue(int index, Value value) {
  if (index < 1 || static_cast<size_t>(index) > parameters_.size() ||
      parameters_[static_cast<size_t>(index) - 1] == nullptr) {
    return Status::InvalidArgument("no such parameter: ?" +
                                   std::to_string(index));
  }
  Expr* param = parameters_[static_cast<size_t>(index) - 1];
  param->literal = std::move(value);
  param->param_bound = true;
  return Status::OK();
}

Status PreparedStatement::Execute(const QueryCallback& cb) {
  for (size_t i = 0; i < parameters_.size(); ++i) {
    if (parameters_[i] != nullptr && !parameters_[i]->param_bound) {
      return Status::InvalidArgument("unbound parameter: ?" +
                                     std::to_string(i + 1));
    }
  }
  db_->last_stats_ = DbExecStats{};
  int64_t start = NowMicros();
  db_->active_plan_cache_ = &plan_cache_;
  Status s = db_->ExecStatement(stmt_.get(), cb);
  db_->active_plan_cache_ = nullptr;
  db_->last_stats_.exec_us = NowMicros() - start;
  return s;
}

Status PreparedStatement::BindAsOf(retro::SnapshotId snap) {
  auto* select = std::get_if<SelectStmt>(stmt_.get());
  if (select == nullptr) {
    return Status::InvalidArgument("BindAsOf requires a SELECT statement");
  }
  if (select->as_of_param != nullptr) {
    select->as_of_param->literal = Value::Integer(snap);
    select->as_of_param->param_bound = true;
  } else {
    select->as_of = snap;
  }
  return Status::OK();
}

Result<std::unique_ptr<PreparedStatement>> Database::Prepare(
    std::string_view sql) {
  RQL_ASSIGN_OR_RETURN(Statement stmt, ParseSingle(sql));
  return std::unique_ptr<PreparedStatement>(
      new PreparedStatement(this, std::move(stmt)));
}

Status Database::WithImplicitTxn(const std::function<Status()>& body) {
  if (store_->in_transaction()) return body();
  RQL_RETURN_IF_ERROR(store_->Begin());
  Status s = body();
  if (s.ok()) s = store_->Commit();
  if (s.ok()) return s;
  // Roll back (a failed Commit has already dropped its batch) and restore
  // the in-memory catalog to the on-disk state.
  Status rb =
      store_->in_transaction() ? store_->Rollback() : Status::OK();
  if (rb.ok()) rb = catalog_->Reload();
  return s;  // the original failure wins
}

Status Database::ExecStatement(Statement* stmt, const QueryCallback& cb) {
  if (auto* s = std::get_if<SelectStmt>(stmt)) return ExecSelect(*s, cb);
  if (auto* s = std::get_if<CreateTableStmt>(stmt)) {
    return WithImplicitTxn([&] { return ExecCreateTable(s); });
  }
  if (auto* s = std::get_if<CreateIndexStmt>(stmt)) {
    return WithImplicitTxn([&] { return ExecCreateIndex(*s); });
  }
  if (auto* s = std::get_if<DropStmt>(stmt)) {
    return WithImplicitTxn([&] { return ExecDrop(*s); });
  }
  if (auto* s = std::get_if<InsertStmt>(stmt)) {
    return WithImplicitTxn([&] { return ExecInsert(s); });
  }
  if (auto* s = std::get_if<UpdateStmt>(stmt)) {
    return WithImplicitTxn([&] { return ExecUpdate(s); });
  }
  if (auto* s = std::get_if<DeleteStmt>(stmt)) {
    return WithImplicitTxn([&] { return ExecDelete(s); });
  }
  if (std::get_if<BeginStmt>(stmt)) return store_->Begin();
  if (auto* s = std::get_if<CommitStmt>(stmt)) {
    retro::SnapshotId declared = retro::kNoSnapshot;
    Status c = store_->Commit(s->with_snapshot, &declared);
    if (!c.ok()) {
      // The batch is gone; drop in-memory catalog state it may have built.
      (void)catalog_->Reload();
      return c;
    }
    if (s->with_snapshot) last_declared_ = declared;
    return Status::OK();
  }
  if (std::get_if<RollbackStmt>(stmt)) {
    RQL_RETURN_IF_ERROR(store_->Rollback());
    return catalog_->Reload();
  }
  if (auto* s = std::get_if<ExplainStmt>(stmt)) {
    ExecContext ctx;
    ctx.functions = &functions_;
    ctx.stats = &last_stats_.exec;
    std::unique_ptr<retro::SnapshotView> view;
    CatalogData as_of_catalog;
    RQL_ASSIGN_OR_RETURN(ctx.as_of, ResolveAsOf(*s->select));
    if (ctx.as_of == retro::kNoSnapshot) {
      ctx.reader = store_;
      ctx.catalog = &catalog_->data();
    } else {
      RQL_ASSIGN_OR_RETURN(view, store_->OpenSnapshot(ctx.as_of));
      ctx.reader = view.get();
      RQL_ASSIGN_OR_RETURN(as_of_catalog,
                           CatalogData::Load(view.get(), catalog_->root()));
      ctx.catalog = &as_of_catalog;
    }
    RQL_ASSIGN_OR_RETURN(std::unique_ptr<SelectExecutor> exec,
                         SelectExecutor::Prepare(s->select.get(), ctx));
    if (cb == nullptr) return Status::OK();
    static const std::vector<std::string> kColumns = {"plan"};
    for (const std::string& line : exec->DescribePlan()) {
      RQL_RETURN_IF_ERROR(cb(kColumns, {Value::Text(line)}));
    }
    return Status::OK();
  }
  return Status::Internal("unhandled statement kind");
}

Status Database::ExecSelect(const SelectStmt& stmt, const QueryCallback& cb) {
  ExecContext ctx;
  ctx.functions = &functions_;
  ctx.stats = &last_stats_.exec;
  ctx.plan_cache = active_plan_cache_;
  // Harmless for current-state reads: only versioned (archived snapshot)
  // pages are ever looked up in or added to the cache.
  ctx.scan_cache = scan_cache_;
  ctx.batch_execution = batch_execution_;
  ctx.batch_size_hist = batch_size_hist_;

  std::unique_ptr<retro::SnapshotView> view;
  CatalogData as_of_catalog;
  RQL_ASSIGN_OR_RETURN(ctx.as_of, ResolveAsOf(stmt));
  if (ctx.as_of == retro::kNoSnapshot) {
    ctx.reader = store_;
    ctx.catalog = &catalog_->data();
  } else {
    RQL_ASSIGN_OR_RETURN(view, store_->OpenSnapshot(ctx.as_of));
    ctx.reader = view.get();
    RQL_ASSIGN_OR_RETURN(as_of_catalog,
                         CatalogData::Load(view.get(), catalog_->root()));
    ctx.catalog = &as_of_catalog;
  }

  RQL_ASSIGN_OR_RETURN(std::unique_ptr<SelectExecutor> exec,
                       SelectExecutor::Prepare(&stmt, ctx));
  const std::vector<std::string>& columns = exec->columns();
  return exec->Run([&](const Row& row) -> Status {
    if (cb == nullptr) return Status::OK();
    return cb(columns, row);
  });
}

Status Database::ExecCreateTable(CreateTableStmt* stmt) {
  if (catalog_->data().FindTable(stmt->name) != nullptr) {
    if (stmt->if_not_exists) return Status::OK();
    return Status::AlreadyExists("table already exists: " + stmt->name);
  }
  if (stmt->as_select == nullptr) {
    return catalog_->CreateTable(stmt->name, stmt->schema);
  }

  // CREATE TABLE ... AS SELECT: materialize, infer the schema, load.
  std::vector<std::string> columns;
  std::vector<Row> rows;
  ExecContext ctx;
  ctx.functions = &functions_;
  ctx.stats = &last_stats_.exec;
  std::unique_ptr<retro::SnapshotView> view;
  CatalogData as_of_catalog;
  RQL_ASSIGN_OR_RETURN(ctx.as_of, ResolveAsOf(*stmt->as_select));
  if (ctx.as_of == retro::kNoSnapshot) {
    ctx.reader = store_;
    ctx.catalog = &catalog_->data();
  } else {
    RQL_ASSIGN_OR_RETURN(view, store_->OpenSnapshot(ctx.as_of));
    ctx.reader = view.get();
    RQL_ASSIGN_OR_RETURN(as_of_catalog,
                         CatalogData::Load(view.get(), catalog_->root()));
    ctx.catalog = &as_of_catalog;
  }
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<SelectExecutor> exec,
                       SelectExecutor::Prepare(stmt->as_select.get(), ctx));
  columns = exec->columns();
  RQL_RETURN_IF_ERROR(exec->Run([&rows](const Row& row) {
    rows.push_back(row);
    return Status::OK();
  }));

  TableSchema schema;
  for (size_t c = 0; c < columns.size(); ++c) {
    ColumnDef col;
    col.name = columns[c];
    col.type = ValueType::kText;
    for (const Row& row : rows) {
      if (!row[c].is_null()) {
        col.type = row[c].type();
        break;
      }
    }
    schema.columns.push_back(std::move(col));
  }
  RQL_RETURN_IF_ERROR(catalog_->CreateTable(stmt->name, schema));
  const TableInfo* info = catalog_->data().FindTable(stmt->name);
  for (const Row& row : rows) {
    RQL_RETURN_IF_ERROR(InsertRow(*info, row));
  }
  return Status::OK();
}

Status Database::ExecCreateIndex(const CreateIndexStmt& stmt) {
  RQL_ASSIGN_OR_RETURN(const IndexInfo* index,
                       catalog_->CreateIndex(stmt.name, stmt.table,
                                             stmt.columns));
  const TableInfo* table = catalog_->data().FindTable(stmt.table);
  BTree tree(store_, index->root);
  for (auto it = HeapTable::Scan(store_, table->root); it.Valid();
       it.Next()) {
    RQL_ASSIGN_OR_RETURN(Row row, DecodeRow(it.record()));
    RQL_RETURN_IF_ERROR(tree.Insert(IndexKey(*index, row, it.rid()),
                                    it.rid()));
  }
  return Status::OK();
}

Status Database::ExecDrop(const DropStmt& stmt) {
  if (stmt.is_index) {
    Status s = catalog_->DropIndex(stmt.name);
    if (s.IsNotFound() && stmt.if_exists) return Status::OK();
    return s;
  }
  Status s = catalog_->DropTable(stmt.name);
  if (s.IsNotFound() && stmt.if_exists) return Status::OK();
  return s;
}

Status Database::InsertRow(const TableInfo& table, const Row& row) {
  if (row.size() != table.schema.size()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   table.name);
  }
  HeapTable heap(store_, table.root);
  RQL_ASSIGN_OR_RETURN(Rid rid, heap.Insert(EncodeRow(row)));
  for (const IndexInfo* index : catalog_->data().TableIndexes(table.name)) {
    BTree tree(store_, index->root);
    RQL_RETURN_IF_ERROR(tree.Insert(IndexKey(*index, row, rid), rid));
  }
  return Status::OK();
}

Status Database::DeleteRow(const TableInfo& table, Rid rid, const Row& row) {
  HeapTable heap(store_, table.root);
  RQL_RETURN_IF_ERROR(heap.Delete(rid));
  for (const IndexInfo* index : catalog_->data().TableIndexes(table.name)) {
    BTree tree(store_, index->root);
    RQL_RETURN_IF_ERROR(tree.Delete(IndexKey(*index, row, rid)));
  }
  return Status::OK();
}

Status Database::ExecInsert(InsertStmt* stmt) {
  const TableInfo* table = catalog_->data().FindTable(stmt->table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + stmt->table);
  }
  // Map the statement's column list (possibly empty = positional).
  std::vector<int> positions;
  if (stmt->columns.empty()) {
    for (size_t i = 0; i < table->schema.size(); ++i) {
      positions.push_back(static_cast<int>(i));
    }
  } else {
    for (const std::string& name : stmt->columns) {
      int idx = table->schema.FindColumn(name);
      if (idx < 0) {
        return Status::NotFound("no such column: " + name);
      }
      positions.push_back(idx);
    }
  }

  auto insert_positional = [&](const Row& values) -> Status {
    if (values.size() != positions.size()) {
      return Status::InvalidArgument("INSERT value count mismatch");
    }
    Row row(table->schema.size(), Value::Null());
    for (size_t i = 0; i < positions.size(); ++i) {
      row[static_cast<size_t>(positions[i])] = values[i];
    }
    return InsertRow(*table, row);
  };

  if (stmt->select != nullptr) {
    ExecContext ctx;
    ctx.reader = store_;
    ctx.catalog = &catalog_->data();
    ctx.functions = &functions_;
    ctx.stats = &last_stats_.exec;
    std::unique_ptr<retro::SnapshotView> view;
    CatalogData as_of_catalog;
    RQL_ASSIGN_OR_RETURN(ctx.as_of, ResolveAsOf(*stmt->select));
    if (ctx.as_of != retro::kNoSnapshot) {
      RQL_ASSIGN_OR_RETURN(view, store_->OpenSnapshot(ctx.as_of));
      ctx.reader = view.get();
      RQL_ASSIGN_OR_RETURN(as_of_catalog,
                           CatalogData::Load(view.get(), catalog_->root()));
      ctx.catalog = &as_of_catalog;
    }
    RQL_ASSIGN_OR_RETURN(std::unique_ptr<SelectExecutor> exec,
                         SelectExecutor::Prepare(stmt->select.get(), ctx));
    return exec->Run(insert_positional);
  }

  for (const std::vector<ExprPtr>& value_exprs : stmt->rows) {
    Row values;
    values.reserve(value_exprs.size());
    EvalContext ectx{nullptr, &functions_, nullptr, nullptr};
    for (const ExprPtr& e : value_exprs) {
      RQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, ectx));
      values.push_back(std::move(v));
    }
    RQL_RETURN_IF_ERROR(insert_positional(values));
  }
  return Status::OK();
}

namespace {

/// Minimal subquery runner for DML WHERE clauses: executes each
/// uncorrelated subquery once against the current state and caches it.
class DmlSubqueryRunner : public SubqueryRunner {
 public:
  explicit DmlSubqueryRunner(const ExecContext& ctx) : ctx_(ctx) {}

  Result<const std::vector<Row>*> RunSubquery(const Expr& expr) override {
    auto it = cache_.find(&expr);
    if (it != cache_.end()) {
      return static_cast<const std::vector<Row>*>(&it->second);
    }
    if (expr.subquery == nullptr) {
      return Status::Internal("missing subquery statement");
    }
    if (expr.subquery->as_of != retro::kNoSnapshot ||
        expr.subquery->as_of_param != nullptr) {
      return Status::NotSupported(
          "AS OF subqueries are not supported in DML WHERE clauses");
    }
    RQL_ASSIGN_OR_RETURN(std::unique_ptr<SelectExecutor> exec,
                         SelectExecutor::Prepare(expr.subquery.get(), ctx_));
    std::vector<Row> rows;
    RQL_RETURN_IF_ERROR(exec->Run([&rows](const Row& row) {
      rows.push_back(row);
      return Status::OK();
    }));
    auto [pos, inserted] = cache_.emplace(&expr, std::move(rows));
    return static_cast<const std::vector<Row>*>(&pos->second);
  }

 private:
  ExecContext ctx_;
  std::unordered_map<const Expr*, std::vector<Row>> cache_;
};

/// Matches a WHERE of the form `col = literal` (either side) against an
/// index whose first column is `col`; used to avoid full scans in
/// DELETE/UPDATE, which the TPC-H refresh workload issues in bulk.
const Expr* EqualityLiteral(const Expr* where, int* column_index) {
  if (where == nullptr || where->kind != ExprKind::kBinary ||
      where->bin_op != BinOp::kEq) {
    return nullptr;
  }
  const Expr* lhs = where->args[0].get();
  const Expr* rhs = where->args[1].get();
  if (lhs->kind == ExprKind::kColumnRef && rhs->kind == ExprKind::kLiteral) {
    *column_index = lhs->column_index;
    return rhs;
  }
  if (rhs->kind == ExprKind::kColumnRef && lhs->kind == ExprKind::kLiteral) {
    *column_index = rhs->column_index;
    return lhs;
  }
  return nullptr;
}

}  // namespace

Status Database::ExecDelete(DeleteStmt* stmt) {
  const TableInfo* table = catalog_->data().FindTable(stmt->table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + stmt->table);
  }
  BindScope scope;
  scope.Add(stmt->table, &table->schema);
  if (stmt->where != nullptr) {
    RQL_RETURN_IF_ERROR(BindExpr(stmt->where.get(), scope));
  }

  // Collect matches first (scan or index probe), then mutate.
  ExecContext sub_ctx;
  sub_ctx.reader = store_;
  sub_ctx.catalog = &catalog_->data();
  sub_ctx.functions = &functions_;
  DmlSubqueryRunner subqueries(sub_ctx);
  std::vector<std::pair<Rid, Row>> victims;
  int eq_column = -1;
  const Expr* literal = EqualityLiteral(stmt->where.get(), &eq_column);
  const IndexInfo* index =
      literal != nullptr && eq_column >= 0
          ? catalog_->data().IndexOnColumn(
                table->name, table->schema.columns[eq_column].name)
          : nullptr;
  if (index != nullptr) {
    Row probe = {literal->literal};
    RQL_ASSIGN_OR_RETURN(BTree::Iterator it,
                         BTree::Seek(store_, index->root, probe));
    for (; it.Valid(); it.Next()) {
      if (it.key().empty() ||
          CompareValues(it.key()[0], literal->literal) != 0) {
        break;
      }
      RQL_ASSIGN_OR_RETURN(std::string record,
                           HeapTable::Get(store_, it.value()));
      RQL_ASSIGN_OR_RETURN(Row row, DecodeRow(record));
      victims.emplace_back(it.value(), std::move(row));
    }
    RQL_RETURN_IF_ERROR(it.status());
  } else {
    for (auto it = HeapTable::Scan(store_, table->root); it.Valid();
         it.Next()) {
      RQL_ASSIGN_OR_RETURN(Row row, DecodeRow(it.record()));
      if (stmt->where != nullptr) {
        EvalContext ectx{&row, &functions_, nullptr, nullptr, &subqueries};
        RQL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*stmt->where, ectx));
        if (!ValueIsTrue(cond)) continue;
      }
      victims.emplace_back(it.rid(), std::move(row));
    }
  }
  for (const auto& [rid, row] : victims) {
    RQL_RETURN_IF_ERROR(DeleteRow(*table, rid, row));
  }
  return Status::OK();
}

Status Database::ExecUpdate(UpdateStmt* stmt) {
  const TableInfo* table = catalog_->data().FindTable(stmt->table);
  if (table == nullptr) {
    return Status::NotFound("no such table: " + stmt->table);
  }
  BindScope scope;
  scope.Add(stmt->table, &table->schema);
  if (stmt->where != nullptr) {
    RQL_RETURN_IF_ERROR(BindExpr(stmt->where.get(), scope));
  }
  std::vector<std::pair<int, Expr*>> assignments;
  for (auto& [name, expr] : stmt->assignments) {
    int idx = table->schema.FindColumn(name);
    if (idx < 0) return Status::NotFound("no such column: " + name);
    RQL_RETURN_IF_ERROR(BindExpr(expr.get(), scope));
    assignments.emplace_back(idx, expr.get());
  }

  ExecContext sub_ctx;
  sub_ctx.reader = store_;
  sub_ctx.catalog = &catalog_->data();
  sub_ctx.functions = &functions_;
  DmlSubqueryRunner subqueries(sub_ctx);
  std::vector<std::pair<Rid, Row>> matches;
  for (auto it = HeapTable::Scan(store_, table->root); it.Valid();
       it.Next()) {
    RQL_ASSIGN_OR_RETURN(Row row, DecodeRow(it.record()));
    if (stmt->where != nullptr) {
      EvalContext ectx{&row, &functions_, nullptr, nullptr, &subqueries};
      RQL_ASSIGN_OR_RETURN(Value cond, EvalExpr(*stmt->where, ectx));
      if (!ValueIsTrue(cond)) continue;
    }
    matches.emplace_back(it.rid(), std::move(row));
  }

  HeapTable heap(store_, table->root);
  auto indexes = catalog_->data().TableIndexes(table->name);
  for (auto& [rid, row] : matches) {
    Row updated = row;
    EvalContext ectx{&row, &functions_, nullptr, nullptr, &subqueries};
    for (const auto& [idx, expr] : assignments) {
      RQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr, ectx));
      updated[static_cast<size_t>(idx)] = std::move(v);
    }
    RQL_ASSIGN_OR_RETURN(Rid new_rid, heap.Update(rid, EncodeRow(updated)));
    for (const IndexInfo* index : indexes) {
      BTree tree(store_, index->root);
      RQL_RETURN_IF_ERROR(tree.Delete(IndexKey(*index, row, rid)));
      RQL_RETURN_IF_ERROR(tree.Insert(IndexKey(*index, updated, new_rid),
                                      new_rid));
    }
  }
  return Status::OK();
}

Result<Rid> Database::AppendRow(std::string_view table, const Row& row) {
  const TableInfo* info = catalog_->data().FindTable(table);
  if (info == nullptr) {
    return Status::NotFound("no such table: " + std::string(table));
  }
  Rid rid = 0;
  RQL_RETURN_IF_ERROR(WithImplicitTxn([&]() -> Status {
    if (row.size() != info->schema.size()) {
      return Status::InvalidArgument("row arity mismatch for table " +
                                     info->name);
    }
    HeapTable heap(store_, info->root);
    RQL_ASSIGN_OR_RETURN(rid, heap.Insert(EncodeRow(row)));
    for (const IndexInfo* index : catalog_->data().TableIndexes(info->name)) {
      BTree tree(store_, index->root);
      RQL_RETURN_IF_ERROR(tree.Insert(IndexKey(*index, row, rid), rid));
    }
    return Status::OK();
  }));
  return rid;
}

Result<Rid> Database::UpdateRowAt(std::string_view table, Rid rid,
                                  const Row& old_row, const Row& new_row) {
  const TableInfo* info = catalog_->data().FindTable(table);
  if (info == nullptr) {
    return Status::NotFound("no such table: " + std::string(table));
  }
  Rid new_rid = rid;
  RQL_RETURN_IF_ERROR(WithImplicitTxn([&]() -> Status {
    HeapTable heap(store_, info->root);
    RQL_ASSIGN_OR_RETURN(new_rid, heap.Update(rid, EncodeRow(new_row)));
    for (const IndexInfo* index : catalog_->data().TableIndexes(info->name)) {
      BTree tree(store_, index->root);
      RQL_RETURN_IF_ERROR(tree.Delete(IndexKey(*index, old_row, rid)));
      RQL_RETURN_IF_ERROR(
          tree.Insert(IndexKey(*index, new_row, new_rid), new_rid));
    }
    return Status::OK();
  }));
  return new_rid;
}

Result<Database::TableStats> Database::GetTableStats(std::string_view table) {
  const TableInfo* info = catalog_->data().FindTable(table);
  if (info == nullptr) {
    return Status::NotFound("no such table: " + std::string(table));
  }
  TableStats stats;
  RQL_ASSIGN_OR_RETURN(stats.pages,
                       HeapTable::CountPages(store_, info->root));
  stats.bytes = stats.pages * storage::kPageSize;
  for (auto it = HeapTable::Scan(store_, info->root); it.Valid();
       it.Next()) {
    ++stats.rows;
    stats.payload_bytes += it.record().size();
  }
  return stats;
}

Result<Database::TableStats> Database::GetIndexStats(std::string_view index) {
  const IndexInfo* info = catalog_->data().FindIndex(index);
  if (info == nullptr) {
    return Status::NotFound("no such index: " + std::string(index));
  }
  TableStats stats;
  RQL_ASSIGN_OR_RETURN(stats.pages,
                       BTree::CountPages(store_, info->root));
  stats.bytes = stats.pages * storage::kPageSize;
  return stats;
}

}  // namespace rql::sql

#ifndef RQL_SQL_SHARED_SCAN_CACHE_H_
#define RQL_SQL_SHARED_SCAN_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/cleanup.h"
#include "sql/scan_cache.h"

namespace rql::sql {

/// A store-scoped decoded-page cache shared by concurrent RQL runs.
///
/// The key is the page *version*: the Pagelog offset the snapshot page
/// table resolves a (page, snapshot) pair to. Within one Pagelog
/// generation an offset names immutable archived bytes, globally unique
/// across every snapshot and every run over the store — which is what
/// makes cross-run sharing sound: two runs that resolve the same version
/// are by construction reading the same page pre-state, so one fetch +
/// slot-walk + tuple-decode serves both. (`TruncateHistory` rewrites the
/// Pagelog and rebases offsets, starting a new generation; see
/// OnTruncateHistory below.)
///
/// Store scope needs three things run scope never did:
///
///  * A byte budget with segmented-LRU eviction. New entries land in a
///    probationary segment and are promoted to a protected segment on
///    re-hit, so a single cold sweep over a long history (all
///    first-touch entries) can only thrash probation and cannot evict
///    other runs' re-used working sets. Eviction drops the cache's own
///    reference; runs still holding the shared_ptr keep the entry (and
///    its pin) alive until their batches finish.
///  * Per-version single-flight decoding. N runs racing on a cold
///    version claim it once: the first caller decodes, the rest block on
///    the in-flight entry and are served the published result, mirroring
///    storage::BufferPool's coalesced loads one layer up.
///  * Conservative invalidation from TruncateHistory, the same contract
///    as retro::MemoTable::InvalidateBelow: truncation rebases Pagelog
///    offsets, so every cached version key is suspect and the cache is
///    cleared outright. Stale hits are impossible afterwards; the cost
///    is re-decoding on the next run.
///
/// Sharded like BufferPool so concurrent runs on different versions do
/// not contend; LRU order is approximate across the cache, exact within
/// a shard.
class SharedScanCache : public ScanCache {
 public:
  struct Options {
    /// Budget across all shards; 0 = unbounded (never evicts).
    uint64_t max_bytes = 256ull << 20;
    int shards = 16;
    /// Share of each shard's budget the protected segment may occupy
    /// before its tail is demoted back to probation.
    double protected_fraction = 0.8;
  };

  struct Stats {
    int64_t shared_hits = 0;        // Acquire/Lookup served from the table
    int64_t misses = 0;             // Acquire that claimed a decode
    int64_t coalesced_decodes = 0;  // hits served by waiting on a decode
    int64_t inserts = 0;            // entries published (== decodes done)
    int64_t abandoned_decodes = 0;  // claims released without publishing
    int64_t evictions = 0;
    int64_t truncate_invalidations = 0;
    uint64_t bytes = 0;
    uint64_t entries = 0;
  };

  SharedScanCache() : SharedScanCache(Options()) {}
  explicit SharedScanCache(Options options);
  ~SharedScanCache() override;

  std::shared_ptr<const DecodedPage> Lookup(uint64_t version) override;

  /// True when `version` is resident right now. A pure probe — no stats,
  /// no LRU touch, no waiting on in-flight decodes — for a background
  /// prefetch planner deciding whether fetching the raw page would be
  /// wasted work. Thread-safe like every other entry point.
  bool Contains(uint64_t version) const;

  /// Single-flight acquire: a table hit returns the entry; a cold version
  /// claims the decode for this caller; a version another thread is
  /// already decoding blocks until that decode publishes (coalesced hit)
  /// or abandons (fall through to an uncached read).
  AcquireResult Acquire(uint64_t version) override;

  /// Publishes and releases the claim on `version`, waking every waiter
  /// with the entry. Evicts least-recently-used probationary entries if
  /// the shard runs over budget.
  std::shared_ptr<const DecodedPage> Insert(
      uint64_t version, std::shared_ptr<const DecodedPage> page) override;

  /// Releases the claim on `version` without publishing (the fetch or
  /// decode failed); waiters are woken empty-handed and fall back to
  /// plain uncached reads.
  void AbandonDecode(uint64_t version) override;

  void Clear() override;
  uint64_t size() const override;

  /// TruncateHistory invalidation hook (conservative, like
  /// MemoTable::InvalidateBelow): offsets at or above the rewrite are
  /// rebased and freed ranges may be recycled, so every version key is
  /// suspect — drop everything. `keep_from` is accepted for contract
  /// symmetry; no finer-grained retention is attempted. In-flight decodes
  /// complete for their waiters but are not published.
  void OnTruncateHistory(uint64_t keep_from);

  Stats GetStats() const;
  uint64_t bytes() const { return bytes_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Registers point-in-time gauges `<prefix>.bytes`, `.entries`,
  /// `.evictions`, `.shared_hits`, `.misses`, `.coalesced_decodes`,
  /// `.capacity_bytes`. The returned handle deregisters them; it must not
  /// outlive this cache (`Registry` is templated so the gauge set stays
  /// usable with any registry exposing SetGauge/RemoveGaugesWithPrefix).
  template <typename Registry>
  [[nodiscard]] ScopedCleanup RegisterMetrics(Registry* registry,
                                              const std::string& prefix) {
    const SharedScanCache* cache = this;
    registry->SetGauge(prefix + ".bytes", [cache] {
      return static_cast<int64_t>(cache->bytes());
    });
    registry->SetGauge(prefix + ".entries", [cache] {
      return static_cast<int64_t>(cache->size());
    });
    registry->SetGauge(prefix + ".evictions",
                       [cache] { return cache->evictions(); });
    registry->SetGauge(prefix + ".shared_hits", [cache] {
      return cache->shared_hits_.load(std::memory_order_relaxed);
    });
    registry->SetGauge(prefix + ".misses", [cache] {
      return cache->misses_.load(std::memory_order_relaxed);
    });
    registry->SetGauge(prefix + ".coalesced_decodes", [cache] {
      return cache->coalesced_.load(std::memory_order_relaxed);
    });
    registry->SetGauge(prefix + ".capacity_bytes", [cache] {
      return static_cast<int64_t>(cache->options_.max_bytes);
    });
    return ScopedCleanup(
        [registry, prefix] { registry->RemoveGaugesWithPrefix(prefix + "."); });
  }

  /// Approximate resident size of one decoded page: the pinned frame plus
  /// the decoded slots/records/rows. The budget accounting charge.
  static uint64_t EstimateBytes(const DecodedPage& page);

 private:
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    /// Set by Clear/OnTruncateHistory while the decode is in flight: the
    /// result may be keyed by a rebased offset, so it must not be
    /// published. Late arrivals skip stale claims entirely.
    bool stale = false;
    std::shared_ptr<const DecodedPage> page;  // null when abandoned
  };

  struct Entry {
    std::shared_ptr<const DecodedPage> page;
    uint64_t bytes = 0;
    bool protected_seg = false;
    std::list<uint64_t>::iterator lru_it;
  };

  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<uint64_t, Entry> entries;
    /// Both lists are MRU-at-front; Entry::lru_it points into the list
    /// named by Entry::protected_seg.
    std::list<uint64_t> probation;
    std::list<uint64_t> protected_lru;
    uint64_t bytes = 0;
    uint64_t protected_bytes = 0;
    uint64_t quota = 0;            // 0 = unbounded
    uint64_t protected_quota = 0;
    std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight;
  };

  Shard* ShardFor(uint64_t version);
  /// Moves a hit entry to the MRU end of the protected segment (promoting
  /// probationary entries) and rebalances the segments. Caller holds
  /// shard->mu.
  void Touch(Shard* shard, Entry* entry, uint64_t version);
  /// Evicts from probation tail first, then protected, until the shard is
  /// within quota. Caller holds shard->mu.
  void EvictIfNeeded(Shard* shard);
  void RemoveEntry(Shard* shard, uint64_t version, Entry* entry);

  Options options_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<uint64_t> bytes_{0};
  std::atomic<int64_t> shared_hits_{0};
  std::atomic<int64_t> misses_{0};  // shadows (private) base counter
  std::atomic<int64_t> coalesced_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> abandons_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> truncate_invalidations_{0};
};

}  // namespace rql::sql

#endif  // RQL_SQL_SHARED_SCAN_CACHE_H_

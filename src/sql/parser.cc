#include "sql/parser.h"

#include <cerrno>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "sql/lexer.h"

namespace rql::sql {

namespace {

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::vector<Statement>> ParseScript() {
    std::vector<Statement> statements;
    while (!AtEof()) {
      if (ConsumeOp(";")) continue;  // empty statement
      RQL_ASSIGN_OR_RETURN(Statement stmt, ParseStatement());
      statements.push_back(std::move(stmt));
      if (!AtEof() && !ConsumeOp(";")) {
        return Error("expected ';' between statements");
      }
    }
    return statements;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool AtEof() const { return Peek().type == TokenType::kEof; }

  bool ConsumeKeyword(std::string_view kw) {
    if (Peek().IsKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool ConsumeOp(std::string_view op) {
    if (Peek().IsOp(op)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument("parse error at offset " +
                                   std::to_string(Peek().offset) + ": " +
                                   message + " (near '" + Peek().text + "')");
  }

  // Exception-free numeric token conversions. The lexer guarantees the
  // token is digit-shaped but not that it fits: an out-of-range literal
  // (LIMIT 99999999999999999999, 1e999) must surface as a parse-error
  // Status, never as a thrown std::out_of_range escaping the parser.
  // Called with the numeric token still current (Peek), so Error() points
  // at it; consumes the token on success.

  Result<int64_t> ParseIntegerToken() {
    const std::string& text = Peek().text;
    int64_t v = 0;
    auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), v);
    if (ec != std::errc() || ptr != text.data() + text.size()) {
      return Error("integer literal out of range");
    }
    Advance();
    return v;
  }

  Result<double> ParseFloatToken() {
    const std::string& text = Peek().text;
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) {
      return Error("malformed numeric literal");
    }
    // Overflow (1e999) is an error; underflow (1e-999) rounds to zero,
    // the closest representable value.
    if (errno == ERANGE && !std::isfinite(v)) {
      return Error("numeric literal out of range");
    }
    Advance();
    return v;
  }

  Status ExpectKeyword(std::string_view kw) {
    if (!ConsumeKeyword(kw)) {
      return Error("expected " + std::string(kw));
    }
    return Status::OK();
  }
  Status ExpectOp(std::string_view op) {
    if (!ConsumeOp(op)) {
      return Error("expected '" + std::string(op) + "'");
    }
    return Status::OK();
  }

  Result<std::string> ExpectIdentifier(const std::string& what) {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected " + what);
    }
    return Advance().text;
  }

  // ---- statements --------------------------------------------------------

  Result<Statement> ParseStatement() {
    if (Peek().IsKeyword("SELECT")) {
      RQL_ASSIGN_OR_RETURN(SelectStmt stmt, ParseSelect());
      return Statement(std::move(stmt));
    }
    if (ConsumeKeyword("EXPLAIN")) {
      if (!Peek().IsKeyword("SELECT")) {
        return Error("EXPLAIN supports only SELECT statements");
      }
      RQL_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
      ExplainStmt stmt;
      stmt.select = std::make_unique<SelectStmt>(std::move(select));
      return Statement(std::move(stmt));
    }
    if (ConsumeKeyword("CREATE")) return ParseCreate();
    if (ConsumeKeyword("DROP")) return ParseDrop();
    if (ConsumeKeyword("INSERT")) return ParseInsert();
    if (ConsumeKeyword("UPDATE")) return ParseUpdate();
    if (ConsumeKeyword("DELETE")) return ParseDelete();
    if (ConsumeKeyword("BEGIN")) return Statement(BeginStmt{});
    if (ConsumeKeyword("COMMIT")) {
      CommitStmt stmt;
      if (ConsumeKeyword("WITH")) {
        RQL_RETURN_IF_ERROR(ExpectKeyword("SNAPSHOT"));
        stmt.with_snapshot = true;
      }
      return Statement(std::move(stmt));
    }
    if (ConsumeKeyword("ROLLBACK")) return Statement(RollbackStmt{});
    return Error("expected a statement");
  }

  Result<SelectStmt> ParseSelect() {
    RQL_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStmt stmt;
    // Retro extension: SELECT AS OF <sid> ... — or AS OF ? for a snapshot
    // id bound at execution time (PreparedStatement::BindAsOf).
    if (Peek().IsKeyword("AS") && Peek(1).IsKeyword("OF")) {
      pos_ += 2;
      if (ConsumeOp("?")) {
        auto param = std::make_unique<Expr>();
        param->kind = ExprKind::kParameter;
        param->param_index = ++parameter_count_;
        stmt.as_of_param = std::move(param);
      } else if (Peek().type == TokenType::kInteger) {
        const std::string& text = Peek().text;
        uint64_t sid = 0;
        auto [ptr, ec] =
            std::from_chars(text.data(), text.data() + text.size(), sid);
        if (ec != std::errc() || ptr != text.data() + text.size() ||
            sid > std::numeric_limits<uint32_t>::max()) {
          return Error("snapshot id out of range");
        }
        Advance();
        stmt.as_of = static_cast<uint32_t>(sid);
      } else {
        return Error("expected snapshot id or ? after AS OF");
      }
    }
    if (ConsumeKeyword("DISTINCT")) stmt.distinct = true;
    else ConsumeKeyword("ALL");

    // Select list.
    do {
      SelectItem item;
      RQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (ConsumeKeyword("AS")) {
        RQL_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier("alias"));
      } else if (Peek().type == TokenType::kIdentifier &&
                 !IsClauseKeyword(Peek())) {
        item.alias = Advance().text;
      }
      stmt.items.push_back(std::move(item));
    } while (ConsumeOp(","));

    if (ConsumeKeyword("FROM")) {
      RQL_RETURN_IF_ERROR(ParseFromClause(&stmt));
    }
    if (ConsumeKeyword("WHERE")) {
      RQL_ASSIGN_OR_RETURN(ExprPtr where, ParseExpr());
      stmt.where = stmt.where
                       ? MakeBinary(BinOp::kAnd, std::move(stmt.where),
                                    std::move(where))
                       : std::move(where);
    }
    if (ConsumeKeyword("GROUP")) {
      RQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        RQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        stmt.group_by.push_back(std::move(e));
      } while (ConsumeOp(","));
    }
    if (ConsumeKeyword("HAVING")) {
      RQL_ASSIGN_OR_RETURN(stmt.having, ParseExpr());
    }
    if (ConsumeKeyword("ORDER")) {
      RQL_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderItem item;
        RQL_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (ConsumeKeyword("DESC")) item.desc = true;
        else ConsumeKeyword("ASC");
        stmt.order_by.push_back(std::move(item));
      } while (ConsumeOp(","));
    }
    if (ConsumeKeyword("LIMIT")) {
      if (Peek().type != TokenType::kInteger) {
        return Error("expected integer after LIMIT");
      }
      RQL_ASSIGN_OR_RETURN(stmt.limit, ParseIntegerToken());
    }
    return stmt;
  }

  static bool IsClauseKeyword(const Token& t) {
    static constexpr std::string_view kClauses[] = {
        "FROM",  "WHERE", "GROUP",   "HAVING", "ORDER", "LIMIT", "AS",
        "ASC",   "DESC",  "VALUES",  "ON",     "JOIN",  "INNER", "SET",
        "WHEN",  "THEN",  "ELSE",    "END",    "IN",    "BETWEEN", "NOT",
        "AND",   "OR",    "IS",      "LIKE"};
    for (std::string_view kw : kClauses) {
      if (t.IsKeyword(kw)) return true;
    }
    return false;
  }

  Status ParseFromClause(SelectStmt* stmt) {
    RQL_RETURN_IF_ERROR(ParseTableRef(stmt));
    for (;;) {
      if (ConsumeOp(",")) {
        RQL_RETURN_IF_ERROR(ParseTableRef(stmt));
        continue;
      }
      if (Peek().IsKeyword("JOIN") ||
          (Peek().IsKeyword("INNER") && Peek(1).IsKeyword("JOIN"))) {
        ConsumeKeyword("INNER");
        ConsumeKeyword("JOIN");
        RQL_RETURN_IF_ERROR(ParseTableRef(stmt));
        if (ConsumeKeyword("ON")) {
          RQL_ASSIGN_OR_RETURN(ExprPtr on, ParseExpr());
          stmt->where = stmt->where
                            ? MakeBinary(BinOp::kAnd, std::move(stmt->where),
                                         std::move(on))
                            : std::move(on);
        }
        continue;
      }
      break;
    }
    return Status::OK();
  }

  Status ParseTableRef(SelectStmt* stmt) {
    TableRef ref;
    RQL_ASSIGN_OR_RETURN(ref.name, ExpectIdentifier("table name"));
    if (ConsumeKeyword("AS")) {
      RQL_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
    } else if (Peek().type == TokenType::kIdentifier &&
               !IsClauseKeyword(Peek())) {
      ref.alias = Advance().text;
    }
    if (ref.alias.empty()) ref.alias = ref.name;
    stmt->from.push_back(std::move(ref));
    return Status::OK();
  }

  Result<Statement> ParseCreate() {
    if (ConsumeKeyword("TABLE")) {
      CreateTableStmt stmt;
      if (ConsumeKeyword("IF")) {
        RQL_RETURN_IF_ERROR(ExpectKeyword("NOT"));
        RQL_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
        stmt.if_not_exists = true;
      }
      RQL_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("table name"));
      if (ConsumeKeyword("AS")) {
        RQL_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
        stmt.as_select = std::make_unique<SelectStmt>(std::move(select));
        return Statement(std::move(stmt));
      }
      RQL_RETURN_IF_ERROR(ExpectOp("("));
      do {
        ColumnDef col;
        RQL_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
        RQL_ASSIGN_OR_RETURN(col.type, ParseColumnType());
        // Constraints are accepted and ignored (no enforcement).
        while (ConsumeKeyword("PRIMARY")) {
          RQL_RETURN_IF_ERROR(ExpectKeyword("KEY"));
        }
        while (ConsumeKeyword("NOT")) {
          RQL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        }
        stmt.schema.columns.push_back(std::move(col));
      } while (ConsumeOp(","));
      RQL_RETURN_IF_ERROR(ExpectOp(")"));
      return Statement(std::move(stmt));
    }
    if (ConsumeKeyword("INDEX")) {
      CreateIndexStmt stmt;
      RQL_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("index name"));
      RQL_RETURN_IF_ERROR(ExpectKeyword("ON"));
      RQL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
      RQL_RETURN_IF_ERROR(ExpectOp("("));
      do {
        RQL_ASSIGN_OR_RETURN(std::string col,
                             ExpectIdentifier("column name"));
        stmt.columns.push_back(std::move(col));
      } while (ConsumeOp(","));
      RQL_RETURN_IF_ERROR(ExpectOp(")"));
      return Statement(std::move(stmt));
    }
    return Error("expected TABLE or INDEX after CREATE");
  }

  Result<ValueType> ParseColumnType() {
    RQL_ASSIGN_OR_RETURN(std::string name, ExpectIdentifier("column type"));
    if (IdentEquals(name, "INTEGER") || IdentEquals(name, "INT") ||
        IdentEquals(name, "BIGINT")) {
      return ValueType::kInteger;
    }
    if (IdentEquals(name, "REAL") || IdentEquals(name, "DOUBLE") ||
        IdentEquals(name, "FLOAT") || IdentEquals(name, "DECIMAL") ||
        IdentEquals(name, "NUMERIC")) {
      // Optional (p, s) suffix.
      if (ConsumeOp("(")) {
        while (!ConsumeOp(")")) {
          if (AtEof()) return Error("unterminated type suffix");
          Advance();
        }
      }
      return ValueType::kReal;
    }
    if (IdentEquals(name, "TEXT") || IdentEquals(name, "VARCHAR") ||
        IdentEquals(name, "CHAR") || IdentEquals(name, "DATE") ||
        IdentEquals(name, "STRING")) {
      if (ConsumeOp("(")) {
        while (!ConsumeOp(")")) {
          if (AtEof()) return Error("unterminated type suffix");
          Advance();
        }
      }
      return ValueType::kText;
    }
    return Error("unknown column type " + name);
  }

  Result<Statement> ParseDrop() {
    DropStmt stmt;
    if (ConsumeKeyword("TABLE")) {
      stmt.is_index = false;
    } else if (ConsumeKeyword("INDEX")) {
      stmt.is_index = true;
    } else {
      return Error("expected TABLE or INDEX after DROP");
    }
    if (ConsumeKeyword("IF")) {
      RQL_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      stmt.if_exists = true;
    }
    RQL_ASSIGN_OR_RETURN(stmt.name, ExpectIdentifier("name"));
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseInsert() {
    RQL_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStmt stmt;
    RQL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (ConsumeOp("(")) {
      do {
        RQL_ASSIGN_OR_RETURN(std::string col,
                             ExpectIdentifier("column name"));
        stmt.columns.push_back(std::move(col));
      } while (ConsumeOp(","));
      RQL_RETURN_IF_ERROR(ExpectOp(")"));
    }
    if (ConsumeKeyword("VALUES")) {
      do {
        RQL_RETURN_IF_ERROR(ExpectOp("("));
        std::vector<ExprPtr> row;
        do {
          RQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
        } while (ConsumeOp(","));
        RQL_RETURN_IF_ERROR(ExpectOp(")"));
        stmt.rows.push_back(std::move(row));
      } while (ConsumeOp(","));
      return Statement(std::move(stmt));
    }
    if (Peek().IsKeyword("SELECT")) {
      RQL_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
      stmt.select = std::make_unique<SelectStmt>(std::move(select));
      return Statement(std::move(stmt));
    }
    return Error("expected VALUES or SELECT after INSERT INTO");
  }

  Result<Statement> ParseUpdate() {
    UpdateStmt stmt;
    RQL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    RQL_RETURN_IF_ERROR(ExpectKeyword("SET"));
    do {
      RQL_ASSIGN_OR_RETURN(std::string col, ExpectIdentifier("column name"));
      RQL_RETURN_IF_ERROR(ExpectOp("="));
      RQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt.assignments.emplace_back(std::move(col), std::move(e));
    } while (ConsumeOp(","));
    if (ConsumeKeyword("WHERE")) {
      RQL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  Result<Statement> ParseDelete() {
    RQL_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    DeleteStmt stmt;
    RQL_ASSIGN_OR_RETURN(stmt.table, ExpectIdentifier("table name"));
    if (ConsumeKeyword("WHERE")) {
      RQL_ASSIGN_OR_RETURN(stmt.where, ParseExpr());
    }
    return Statement(std::move(stmt));
  }

  // ---- expressions (precedence climbing) ---------------------------------

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  // CASE [base] WHEN w THEN t ... [ELSE e] END
  Result<ExprPtr> ParseCase() {
    auto expr = std::make_unique<Expr>();
    expr->kind = ExprKind::kCase;
    if (!Peek().IsKeyword("WHEN")) {
      RQL_ASSIGN_OR_RETURN(ExprPtr base, ParseExpr());
      expr->args.push_back(std::move(base));
      expr->case_has_base = true;
    }
    if (!Peek().IsKeyword("WHEN")) {
      return Error("expected WHEN in CASE expression");
    }
    while (ConsumeKeyword("WHEN")) {
      RQL_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
      RQL_RETURN_IF_ERROR(ExpectKeyword("THEN"));
      RQL_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
      expr->args.push_back(std::move(when));
      expr->args.push_back(std::move(then));
    }
    if (ConsumeKeyword("ELSE")) {
      RQL_ASSIGN_OR_RETURN(ExprPtr otherwise, ParseExpr());
      expr->args.push_back(std::move(otherwise));
      expr->case_has_else = true;
    }
    RQL_RETURN_IF_ERROR(ExpectKeyword("END"));
    return expr;
  }

  Result<ExprPtr> ParseOr() {
    RQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (ConsumeKeyword("OR")) {
      RQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    RQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (ConsumeKeyword("AND")) {
      RQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (ConsumeKeyword("NOT")) {
      RQL_ASSIGN_OR_RETURN(ExprPtr e, ParseNot());
      return MakeUnary(UnOp::kNot, std::move(e));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    RQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    for (;;) {
      // [NOT] IN (...) and [NOT] BETWEEN lo AND hi.
      bool negated = false;
      size_t saved = pos_;
      if (ConsumeKeyword("NOT")) {
        if (Peek().IsKeyword("IN") || Peek().IsKeyword("BETWEEN")) {
          negated = true;
        } else {
          pos_ = saved;  // NOT belongs to a different production
        }
      }
      if (ConsumeKeyword("IN")) {
        RQL_RETURN_IF_ERROR(ExpectOp("("));
        auto in = std::make_unique<Expr>();
        in->kind = ExprKind::kIn;
        in->negated = negated;
        in->args.push_back(std::move(lhs));
        if (Peek().IsKeyword("SELECT")) {
          RQL_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
          auto sub = std::make_unique<Expr>();
          sub->kind = ExprKind::kSubquery;
          sub->subquery = std::make_shared<SelectStmt>(std::move(select));
          in->args.push_back(std::move(sub));
        } else {
          do {
            RQL_ASSIGN_OR_RETURN(ExprPtr candidate, ParseExpr());
            in->args.push_back(std::move(candidate));
          } while (ConsumeOp(","));
        }
        RQL_RETURN_IF_ERROR(ExpectOp(")"));
        lhs = std::move(in);
        continue;
      }
      if (ConsumeKeyword("BETWEEN")) {
        RQL_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
        RQL_RETURN_IF_ERROR(ExpectKeyword("AND"));
        RQL_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
        ExprPtr lower = MakeBinary(BinOp::kGe, CloneExpr(*lhs), std::move(lo));
        ExprPtr upper = MakeBinary(BinOp::kLe, std::move(lhs), std::move(hi));
        lhs = MakeBinary(BinOp::kAnd, std::move(lower), std::move(upper));
        if (negated) lhs = MakeUnary(UnOp::kNot, std::move(lhs));
        continue;
      }
      BinOp op;
      if (ConsumeOp("=") || ConsumeOp("==")) {
        op = BinOp::kEq;
      } else if (ConsumeOp("!=") || ConsumeOp("<>")) {
        op = BinOp::kNe;
      } else if (ConsumeOp("<=")) {
        op = BinOp::kLe;
      } else if (ConsumeOp(">=")) {
        op = BinOp::kGe;
      } else if (ConsumeOp("<")) {
        op = BinOp::kLt;
      } else if (ConsumeOp(">")) {
        op = BinOp::kGt;
      } else if (Peek().IsKeyword("LIKE")) {
        ++pos_;
        op = BinOp::kLike;
      } else if (Peek().IsKeyword("IS")) {
        ++pos_;
        bool negated = ConsumeKeyword("NOT");
        RQL_RETURN_IF_ERROR(ExpectKeyword("NULL"));
        lhs = MakeUnary(negated ? UnOp::kIsNotNull : UnOp::kIsNull,
                        std::move(lhs));
        continue;
      } else {
        break;
      }
      RQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    RQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      BinOp op;
      if (ConsumeOp("+")) {
        op = BinOp::kAdd;
      } else if (ConsumeOp("-")) {
        op = BinOp::kSub;
      } else {
        break;
      }
      RQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    RQL_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      BinOp op;
      if (ConsumeOp("*")) {
        op = BinOp::kMul;
      } else if (ConsumeOp("/")) {
        op = BinOp::kDiv;
      } else if (ConsumeOp("%")) {
        op = BinOp::kMod;
      } else {
        break;
      }
      RQL_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (ConsumeOp("-")) {
      RQL_ASSIGN_OR_RETURN(ExprPtr e, ParseUnary());
      return MakeUnary(UnOp::kNeg, std::move(e));
    }
    if (ConsumeOp("+")) return ParseUnary();
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& token = Peek();
    switch (token.type) {
      case TokenType::kInteger: {
        RQL_ASSIGN_OR_RETURN(int64_t v, ParseIntegerToken());
        return MakeLiteral(Value::Integer(v));
      }
      case TokenType::kFloat: {
        RQL_ASSIGN_OR_RETURN(double v, ParseFloatToken());
        return MakeLiteral(Value::Real(v));
      }
      case TokenType::kString:
        return MakeLiteral(Value::Text(Advance().text));
      case TokenType::kOperator:
        if (ConsumeOp("(")) {
          if (Peek().IsKeyword("SELECT")) {
            // Uncorrelated scalar subquery.
            RQL_ASSIGN_OR_RETURN(SelectStmt select, ParseSelect());
            RQL_RETURN_IF_ERROR(ExpectOp(")"));
            auto sub = std::make_unique<Expr>();
            sub->kind = ExprKind::kSubquery;
            sub->subquery = std::make_shared<SelectStmt>(std::move(select));
            return sub;
          }
          RQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          RQL_RETURN_IF_ERROR(ExpectOp(")"));
          return e;
        }
        if (ConsumeOp("*")) return MakeStar();
        if (ConsumeOp("?")) {
          auto param = std::make_unique<Expr>();
          param->kind = ExprKind::kParameter;
          param->param_index = ++parameter_count_;
          return param;
        }
        return Error("expected an expression");
      case TokenType::kIdentifier: {
        if (token.IsKeyword("NULL")) {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (token.IsKeyword("CASE")) {
          Advance();
          return ParseCase();
        }
        if (token.IsKeyword("CAST")) {
          Advance();
          RQL_RETURN_IF_ERROR(ExpectOp("("));
          RQL_ASSIGN_OR_RETURN(ExprPtr operand, ParseExpr());
          RQL_RETURN_IF_ERROR(ExpectKeyword("AS"));
          RQL_ASSIGN_OR_RETURN(ValueType type, ParseColumnType());
          RQL_RETURN_IF_ERROR(ExpectOp(")"));
          const char* fn = type == ValueType::kInteger ? "cast_integer"
                           : type == ValueType::kReal  ? "cast_real"
                                                       : "cast_text";
          std::vector<ExprPtr> args;
          args.push_back(std::move(operand));
          return MakeCall(fn, std::move(args));
        }
        // Reserved words cannot start an expression; catching them here
        // turns "SELECT FROM t" into a parse error instead of a bogus
        // column reference.
        static constexpr std::string_view kReserved[] = {
            "FROM",  "WHERE", "GROUP", "HAVING", "ORDER",    "LIMIT",
            "SELECT", "JOIN", "ON",    "SET",    "VALUES",   "AND",
            "OR",     "INTO", "CREATE", "DROP",  "INSERT",   "UPDATE",
            "DELETE", "BY"};
        for (std::string_view kw : kReserved) {
          if (token.IsKeyword(kw)) {
            return Error("unexpected keyword " + token.text);
          }
        }
        std::string name = Advance().text;
        if (ConsumeOp("(")) {  // function call
          std::vector<ExprPtr> args;
          bool distinct = false;
          if (!Peek().IsOp(")")) {
            if (ConsumeKeyword("DISTINCT")) distinct = true;
            do {
              if (Peek().IsOp("*")) {
                Advance();
                args.push_back(MakeStar());
              } else {
                RQL_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
                args.push_back(std::move(e));
              }
            } while (ConsumeOp(","));
          }
          RQL_RETURN_IF_ERROR(ExpectOp(")"));
          ExprPtr call = MakeCall(std::move(name), std::move(args));
          call->distinct_arg = distinct;
          return call;
        }
        if (ConsumeOp(".")) {  // qualified column
          RQL_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("column name"));
          return MakeColumnRef(std::move(name), std::move(col));
        }
        return MakeColumnRef("", std::move(name));
      }
      default:
        return Error("expected an expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int parameter_count_ = 0;  // '?' ordinals, 1-based across the script
};

}  // namespace

Result<std::vector<Statement>> ParseSql(std::string_view sql) {
  RQL_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseScript();
}

Result<Statement> ParseSingle(std::string_view sql) {
  RQL_ASSIGN_OR_RETURN(std::vector<Statement> statements, ParseSql(sql));
  if (statements.size() != 1) {
    return Status::InvalidArgument("expected exactly one statement");
  }
  return std::move(statements[0]);
}

}  // namespace rql::sql

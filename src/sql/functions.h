#ifndef RQL_SQL_FUNCTIONS_H_
#define RQL_SQL_FUNCTIONS_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sql/value.h"

namespace rql::sql {

/// A scalar SQL function (built-in or user-defined). RQL's mechanisms are
/// registered through this hook, mirroring the paper's use of the SQLite
/// UDF framework.
using ScalarFn = std::function<Result<Value>(const std::vector<Value>& args)>;

struct FunctionDef {
  int min_args = 0;
  int max_args = 0;  // -1 = variadic
  ScalarFn fn;
};

/// Name -> function registry with SQLite-style case-insensitive lookup.
class FunctionRegistry {
 public:
  /// Creates a registry pre-populated with built-ins (ABS, LENGTH, SUBSTR,
  /// UPPER, LOWER, COALESCE, IFNULL, TYPEOF).
  static FunctionRegistry WithBuiltins();

  /// Registers or replaces `name`.
  void Register(const std::string& name, int min_args, int max_args,
                ScalarFn fn);

  /// nullptr when unknown.
  const FunctionDef* Find(const std::string& name) const;

 private:
  std::unordered_map<std::string, FunctionDef> functions_;
};

/// True for the aggregate function names handled by the executor's
/// aggregation pipeline (COUNT, SUM, MIN, MAX, AVG, TOTAL).
bool IsAggregateFunction(const std::string& name);

}  // namespace rql::sql

#endif  // RQL_SQL_FUNCTIONS_H_

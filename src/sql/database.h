#ifndef RQL_SQL_DATABASE_H_
#define RQL_SQL_DATABASE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "retro/snapshot_store.h"
#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/executor.h"
#include "sql/functions.h"

namespace rql::sql {

/// A fully materialized query result.
struct QueryResult {
  std::vector<std::string> columns;
  std::vector<Row> rows;
};

/// Row callback in the style of sqlite3_exec: invoked once per result row
/// with the column names. Returning a non-OK status aborts the query.
using QueryCallback =
    std::function<Status(const std::vector<std::string>& columns,
                         const Row& row)>;

struct DatabaseOptions {
  retro::SnapshotStoreOptions store;
};

/// Timing and counters for the last Exec/Query call.
struct DbExecStats {
  int64_t parse_us = 0;
  int64_t exec_us = 0;  // everything after parsing, incl. index builds
  ExecStats exec;
};

class Database;

/// A parsed statement with '?' placeholders, bindable and executable many
/// times (the sqlite3_prepare/bind/step idiom). Parameters are 1-based.
/// Not thread-safe; tied to the Database that prepared it.
class PreparedStatement {
 public:
  /// Binds parameter `index` (1-based) to `value`.
  Status BindValue(int index, Value value);

  /// Convenience binders.
  Status BindInt(int index, int64_t v) { return BindValue(index, Value(v)); }
  Status BindReal(int index, double v) { return BindValue(index, Value(v)); }
  Status BindText(int index, std::string v) {
    return BindValue(index, Value(std::move(v)));
  }

  /// Binds the snapshot the statement reads as of (the RQL Qq plan-reuse
  /// path): rebinds an "AS OF ?" placeholder when the statement has one,
  /// otherwise sets the SELECT's AS OF clause directly, so a plain Qq can
  /// be prepared once and pointed at each snapshot in turn. Fails unless
  /// the statement is a single SELECT.
  Status BindAsOf(retro::SnapshotId snap);

  /// Executes with the current bindings; rows go to `cb` for SELECTs.
  /// All parameters must be bound. May be executed repeatedly; bindings
  /// persist across executions until rebound. Planning decisions (join
  /// order, transient covering-index specs) carry across executions via a
  /// per-statement PlanCache; only per-execution work repeats.
  Status Execute(const QueryCallback& cb = nullptr);

  /// Number of '?' placeholders in the statement.
  int parameter_count() const {
    return static_cast<int>(parameters_.size());
  }

  /// Executions that reused a cached planning decision (diagnostics).
  int64_t plan_cache_hits() const { return plan_cache_.hits; }

 private:
  friend class Database;
  PreparedStatement(Database* db, Statement stmt);

  Database* db_;
  std::unique_ptr<Statement> stmt_;   // stable address for parameter nodes
  std::vector<Expr*> parameters_;     // position i-1 holds placeholder ?i
  PlanCache plan_cache_;              // survives across Execute calls
};

/// A SQL database over the Retro snapshot store: the reproduction of the
/// paper's "BDB SQLite with Retro" substrate.
///
/// Supported SQL: CREATE TABLE [AS SELECT] / CREATE INDEX / DROP,
/// INSERT (VALUES and SELECT), UPDATE, DELETE, SELECT with joins,
/// GROUP BY / HAVING, DISTINCT, ORDER BY, LIMIT, scalar UDFs, and the
/// Retro extensions: BEGIN; COMMIT WITH SNAPSHOT; and SELECT AS OF <sid>.
class Database {
 public:
  static Result<std::unique_ptr<Database>> Open(
      storage::Env* env, const std::string& name,
      DatabaseOptions options = DatabaseOptions());

  /// Opens a second Database handle over an existing store (which the
  /// caller keeps ownership of, and which must outlive the returned
  /// handle). This is how concurrent RQL clients share one SnapshotStore —
  /// and with it the snapshot page cache and a store-scoped
  /// SharedScanCache — while keeping per-client state (current_snapshot,
  /// attached caches, statement stats) independent. Attached handles are
  /// intended for snapshot (AS OF) reads; writes are the owning handle's
  /// business: the attached catalog is loaded once and not refreshed on
  /// concurrent DDL.
  static Result<std::unique_ptr<Database>> Attach(retro::SnapshotStore* store);

  /// Executes a ';'-separated script. Result rows of SELECTs go to `cb`
  /// (or are discarded when null).
  Status Exec(std::string_view sql, const QueryCallback& cb = nullptr);

  /// Executes a single SELECT (or script whose last statement is a SELECT)
  /// and materializes the result.
  Result<QueryResult> Query(std::string_view sql);

  /// First column of the first row of `sql`; NotFound if no rows.
  Result<Value> QueryScalar(std::string_view sql);

  /// Parses one statement (which may contain '?' placeholders) for
  /// repeated execution.
  Result<std::unique_ptr<PreparedStatement>> Prepare(std::string_view sql);

  /// Registers a scalar UDF (the hook RQL mechanisms use).
  void RegisterFunction(const std::string& name, int min_args, int max_args,
                        ScalarFn fn);

  /// Sets the value returned by current_snapshot(); 0 clears it. The RQL
  /// runner sets this for the duration of each Qq iteration.
  void set_current_snapshot(retro::SnapshotId snap) {
    current_snapshot_ = snap;
  }
  retro::SnapshotId current_snapshot() const { return current_snapshot_; }

  /// The snapshot declared by the most recent COMMIT WITH SNAPSHOT.
  retro::SnapshotId last_declared_snapshot() const { return last_declared_; }

  /// Attaches (or with nullptr detaches) a run-scoped decoded-page cache:
  /// AS OF SELECTs pass it to the executor, which reuses decoded page
  /// versions across the snapshots of an RQL run. Current-state queries
  /// are unaffected (their pages carry no stable version). The caller owns
  /// the cache and its lifetime.
  void set_scan_cache(ScanCache* cache) { scan_cache_ = cache; }
  ScanCache* scan_cache() const { return scan_cache_; }

  /// Run-scoped batch-execution toggle (RqlOptions::batch_execution):
  /// SELECT execution serves eligible sequential scans page-at-a-time
  /// through RowBatches instead of row by row. Results are byte-identical
  /// to the row path; only ExecStats batch counters and timings change.
  /// The optional histogram observes the row count of every batch.
  void set_batch_execution(bool on,
                           retro::MetricsRegistry::Histogram* hist =
                               nullptr) {
    batch_execution_ = on;
    batch_size_hist_ = on ? hist : nullptr;
  }
  bool batch_execution() const { return batch_execution_; }

  retro::SnapshotStore* store() { return store_; }
  Catalog* catalog() { return catalog_.get(); }
  FunctionRegistry* functions() { return &functions_; }
  const DbExecStats& last_stats() const { return last_stats_; }

  /// Size of a table (for the paper's memory-footprint experiments).
  struct TableStats {
    uint64_t pages = 0;
    uint64_t bytes = 0;  // pages * page size
    uint64_t rows = 0;
    uint64_t payload_bytes = 0;  // sum of record sizes
  };
  Result<TableStats> GetTableStats(std::string_view table);

  /// Size of an index in pages/bytes.
  Result<TableStats> GetIndexStats(std::string_view index);

  /// Appends one row to `table`, maintaining its indexes. Returns the rid.
  /// This is the fast path the RQL mechanisms use for result tables,
  /// standing in for SQLite prepared INSERT statements.
  Result<Rid> AppendRow(std::string_view table, const Row& row);

  /// Replaces the row at `rid` (all columns), maintaining indexes; the row
  /// may move. Returns the new rid.
  Result<Rid> UpdateRowAt(std::string_view table, Rid rid, const Row& old_row,
                          const Row& new_row);

 private:
  friend class PreparedStatement;
  Database() = default;

  /// Shared tail of Open/Attach: loads the catalog and registers builtins
  /// once `store_` points at the (owned or borrowed) store.
  Status Init();

  Status ExecStatement(Statement* stmt, const QueryCallback& cb);
  Status ExecSelect(const SelectStmt& stmt, const QueryCallback& cb);
  Status ExecCreateTable(CreateTableStmt* stmt);
  Status ExecCreateIndex(const CreateIndexStmt& stmt);
  Status ExecDrop(const DropStmt& stmt);
  Status ExecInsert(InsertStmt* stmt);
  Status ExecUpdate(UpdateStmt* stmt);
  Status ExecDelete(DeleteStmt* stmt);

  /// Inserts `row` and maintains all indexes of `table`.
  Status InsertRow(const TableInfo& table, const Row& row);
  Status DeleteRow(const TableInfo& table, Rid rid, const Row& row);

  /// Runs `body` inside the current transaction, or inside an implicit
  /// single-statement transaction with rollback on failure.
  Status WithImplicitTxn(const std::function<Status()>& body);

  // `store_` is the working pointer; `owned_store_` holds ownership for
  // Open-created databases and stays null for Attach-created handles.
  std::unique_ptr<retro::SnapshotStore> owned_store_;
  retro::SnapshotStore* store_ = nullptr;
  std::unique_ptr<Catalog> catalog_;
  FunctionRegistry functions_;
  retro::SnapshotId current_snapshot_ = retro::kNoSnapshot;
  retro::SnapshotId last_declared_ = retro::kNoSnapshot;
  // Plan cache of the PreparedStatement currently executing (if any);
  // consumed by ExecSelect for the top-level statement.
  PlanCache* active_plan_cache_ = nullptr;
  ScanCache* scan_cache_ = nullptr;
  bool batch_execution_ = false;
  retro::MetricsRegistry::Histogram* batch_size_hist_ = nullptr;
  DbExecStats last_stats_;
};

}  // namespace rql::sql

#endif  // RQL_SQL_DATABASE_H_

#include "sql/ast.h"

namespace rql::sql {

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string table, std::string name) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->name = std::move(name);
  return e;
}

ExprPtr MakeBinary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->bin_op = op;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(UnOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->un_op = op;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr MakeCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->name = std::move(name);
  e->args = std::move(args);
  return e;
}

ExprPtr MakeStar() {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStar;
  return e;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->table = e.table;
  out->name = e.name;
  out->bin_op = e.bin_op;
  out->un_op = e.un_op;
  out->subquery = e.subquery;
  out->distinct_arg = e.distinct_arg;
  out->negated = e.negated;
  out->param_index = e.param_index;
  out->param_bound = e.param_bound;
  out->case_has_base = e.case_has_base;
  out->case_has_else = e.case_has_else;
  out->column_index = e.column_index;
  for (const ExprPtr& arg : e.args) {
    out->args.push_back(CloneExpr(*arg));
  }
  return out;
}

namespace {

void VisitExprTree(Expr* expr, const std::function<void(Expr*)>& fn);

void VisitSelect(SelectStmt* select, const std::function<void(Expr*)>& fn) {
  if (select->as_of_param != nullptr) {
    VisitExprTree(select->as_of_param.get(), fn);
  }
  for (SelectItem& item : select->items) VisitExprTree(item.expr.get(), fn);
  if (select->where != nullptr) VisitExprTree(select->where.get(), fn);
  for (ExprPtr& g : select->group_by) VisitExprTree(g.get(), fn);
  if (select->having != nullptr) VisitExprTree(select->having.get(), fn);
  for (OrderItem& o : select->order_by) VisitExprTree(o.expr.get(), fn);
}

void VisitExprTree(Expr* expr, const std::function<void(Expr*)>& fn) {
  if (expr == nullptr) return;
  fn(expr);
  for (ExprPtr& arg : expr->args) VisitExprTree(arg.get(), fn);
  if (expr->kind == ExprKind::kSubquery && expr->subquery != nullptr) {
    VisitSelect(expr->subquery.get(), fn);
  }
}

}  // namespace

void VisitStatementExprs(Statement* stmt,
                         const std::function<void(Expr*)>& fn) {
  if (auto* s = std::get_if<SelectStmt>(stmt)) {
    VisitSelect(s, fn);
  } else if (auto* s = std::get_if<CreateTableStmt>(stmt)) {
    if (s->as_select != nullptr) VisitSelect(s->as_select.get(), fn);
  } else if (auto* s = std::get_if<InsertStmt>(stmt)) {
    for (auto& row : s->rows) {
      for (ExprPtr& e : row) VisitExprTree(e.get(), fn);
    }
    if (s->select != nullptr) VisitSelect(s->select.get(), fn);
  } else if (auto* s = std::get_if<UpdateStmt>(stmt)) {
    for (auto& [name, e] : s->assignments) VisitExprTree(e.get(), fn);
    if (s->where != nullptr) VisitExprTree(s->where.get(), fn);
  } else if (auto* s = std::get_if<DeleteStmt>(stmt)) {
    if (s->where != nullptr) VisitExprTree(s->where.get(), fn);
  } else if (auto* s = std::get_if<ExplainStmt>(stmt)) {
    if (s->select != nullptr) VisitSelect(s->select.get(), fn);
  }
}

}  // namespace rql::sql

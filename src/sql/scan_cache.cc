#include "sql/scan_cache.h"

namespace rql::sql {

std::shared_ptr<const ScanCache::DecodedPage> ScanCache::Lookup(
    uint64_t version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = pages_.find(version);
  return it == pages_.end() ? nullptr : it->second;
}

ScanCache::AcquireResult ScanCache::Acquire(uint64_t version) {
  AcquireResult r;
  r.page = Lookup(version);
  r.claimed = r.page == nullptr;
  return r;
}

std::shared_ptr<const ScanCache::DecodedPage> ScanCache::Insert(
    uint64_t version, std::shared_ptr<const DecodedPage> page) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = pages_.emplace(version, std::move(page));
  return it->second;
}

void ScanCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  pages_.clear();
}

uint64_t ScanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pages_.size();
}

}  // namespace rql::sql

#include "sql/shared_scan_cache.h"

#include <algorithm>

#include "storage/page.h"

namespace rql::sql {

namespace {

/// splitmix64: decorrelates Pagelog offsets (which are dense and
/// low-entropy in their low bits) across shards.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

SharedScanCache::SharedScanCache(Options options) : options_(options) {
  if (options_.shards < 1) options_.shards = 1;
  if (options_.protected_fraction < 0) options_.protected_fraction = 0;
  if (options_.protected_fraction > 1) options_.protected_fraction = 1;
  uint64_t quota =
      options_.max_bytes == 0
          ? 0
          : (options_.max_bytes + static_cast<uint64_t>(options_.shards) - 1) /
                static_cast<uint64_t>(options_.shards);
  shards_.reserve(static_cast<size_t>(options_.shards));
  for (int i = 0; i < options_.shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->quota = quota;
    shard->protected_quota = static_cast<uint64_t>(
        static_cast<double>(quota) * options_.protected_fraction);
    shards_.push_back(std::move(shard));
  }
}

SharedScanCache::~SharedScanCache() = default;

SharedScanCache::Shard* SharedScanCache::ShardFor(uint64_t version) {
  return shards_[Mix(version) % shards_.size()].get();
}

uint64_t SharedScanCache::EstimateBytes(const DecodedPage& page) {
  uint64_t b = sizeof(DecodedPage) + storage::kPageSize;
  b += page.slots.capacity() * sizeof(uint16_t);
  b += page.records.capacity() * sizeof(std::string_view);
  b += page.rows.capacity() * sizeof(Row);
  for (const Row& row : page.rows) {
    b += row.capacity() * sizeof(Value);
    for (const Value& v : row) {
      if (v.type() == ValueType::kText) b += v.text().size();
    }
  }
  return b;
}

void SharedScanCache::Touch(Shard* shard, Entry* entry, uint64_t version) {
  if (entry->protected_seg) {
    shard->protected_lru.splice(shard->protected_lru.begin(),
                                shard->protected_lru, entry->lru_it);
    return;
  }
  // Probation re-hit: this version is part of somebody's working set.
  shard->probation.erase(entry->lru_it);
  shard->protected_lru.push_front(version);
  entry->lru_it = shard->protected_lru.begin();
  entry->protected_seg = true;
  shard->protected_bytes += entry->bytes;
  // Demote the protected tail rather than letting the protected segment
  // starve probation (and with it every newly admitted entry).
  while (shard->quota != 0 && shard->protected_bytes > shard->protected_quota &&
         shard->protected_lru.size() > 1) {
    uint64_t victim = shard->protected_lru.back();
    auto it = shard->entries.find(victim);
    shard->protected_lru.pop_back();
    shard->probation.push_front(victim);
    it->second.lru_it = shard->probation.begin();
    it->second.protected_seg = false;
    shard->protected_bytes -= it->second.bytes;
  }
}

void SharedScanCache::RemoveEntry(Shard* shard, uint64_t version,
                                  Entry* entry) {
  if (entry->protected_seg) {
    shard->protected_bytes -= entry->bytes;
    shard->protected_lru.erase(entry->lru_it);
  } else {
    shard->probation.erase(entry->lru_it);
  }
  shard->bytes -= entry->bytes;
  bytes_.fetch_sub(entry->bytes, std::memory_order_relaxed);
  shard->entries.erase(version);
}

void SharedScanCache::EvictIfNeeded(Shard* shard) {
  while (shard->quota != 0 && shard->bytes > shard->quota &&
         !shard->entries.empty()) {
    uint64_t victim;
    if (!shard->probation.empty()) {
      victim = shard->probation.back();
    } else {
      victim = shard->protected_lru.back();
    }
    auto it = shard->entries.find(victim);
    RemoveEntry(shard, victim, &it->second);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

std::shared_ptr<const ScanCache::DecodedPage> SharedScanCache::Lookup(
    uint64_t version) {
  Shard* shard = ShardFor(version);
  std::lock_guard<std::mutex> lock(shard->mu);
  auto it = shard->entries.find(version);
  if (it == shard->entries.end()) return nullptr;
  Touch(shard, &it->second, version);
  shared_hits_.fetch_add(1, std::memory_order_relaxed);
  return it->second.page;
}

bool SharedScanCache::Contains(uint64_t version) const {
  const Shard& shard = *shards_[Mix(version) % shards_.size()];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.find(version) != shard.entries.end();
}

ScanCache::AcquireResult SharedScanCache::Acquire(uint64_t version) {
  Shard* shard = ShardFor(version);
  std::shared_ptr<InFlight> fl;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto it = shard->entries.find(version);
    if (it != shard->entries.end()) {
      Touch(shard, &it->second, version);
      shared_hits_.fetch_add(1, std::memory_order_relaxed);
      return {it->second.page, false, false};
    }
    auto in = shard->inflight.find(version);
    if (in == shard->inflight.end()) {
      // Cold: this caller owns the decode.
      auto claim = std::make_shared<InFlight>();
      shard->inflight.emplace(version, std::move(claim));
      misses_.fetch_add(1, std::memory_order_relaxed);
      return {nullptr, true, false};
    }
    fl = in->second;
  }
  {
    std::unique_lock<std::mutex> lock(fl->mu);
    if (fl->stale && !fl->done) {
      // The claim predates a truncation clear; its result will not be
      // published. Do not wait on it and do not re-claim the (suspect)
      // version: read uncached.
      misses_.fetch_add(1, std::memory_order_relaxed);
      return {nullptr, false, false};
    }
    fl->cv.wait(lock, [&] { return fl->done; });
    if (fl->page != nullptr) {
      shared_hits_.fetch_add(1, std::memory_order_relaxed);
      coalesced_.fetch_add(1, std::memory_order_relaxed);
      return {fl->page, false, true};
    }
  }
  // The decode was abandoned (or invalidated): uncached fallback.
  misses_.fetch_add(1, std::memory_order_relaxed);
  return {nullptr, false, false};
}

std::shared_ptr<const ScanCache::DecodedPage> SharedScanCache::Insert(
    uint64_t version, std::shared_ptr<const DecodedPage> page) {
  Shard* shard = ShardFor(version);
  std::shared_ptr<InFlight> fl;
  bool publish = true;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto in = shard->inflight.find(version);
    if (in != shard->inflight.end()) {
      // Only the claimant completes an in-flight entry, so this is ours.
      fl = in->second;
      shard->inflight.erase(in);
    }
    if (fl != nullptr) {
      std::lock_guard<std::mutex> fl_lock(fl->mu);
      publish = !fl->stale;
    }
    auto it = shard->entries.find(version);
    if (it != shard->entries.end()) {
      // Already published (an unclaimed racing insert, e.g. through the
      // base-protocol path): first publish wins.
      Touch(shard, &it->second, version);
      page = it->second.page;
      publish = false;
    } else if (publish) {
      Entry entry;
      entry.page = page;
      entry.bytes = EstimateBytes(*page);
      shard->probation.push_front(version);
      entry.lru_it = shard->probation.begin();
      shard->bytes += entry.bytes;
      bytes_.fetch_add(entry.bytes, std::memory_order_relaxed);
      shard->entries.emplace(version, std::move(entry));
      inserts_.fetch_add(1, std::memory_order_relaxed);
      EvictIfNeeded(shard);
    }
  }
  if (fl != nullptr) {
    std::lock_guard<std::mutex> fl_lock(fl->mu);
    fl->done = true;
    fl->page = page;
    fl->cv.notify_all();
  }
  return page;
}

void SharedScanCache::AbandonDecode(uint64_t version) {
  Shard* shard = ShardFor(version);
  std::shared_ptr<InFlight> fl;
  {
    std::lock_guard<std::mutex> lock(shard->mu);
    auto in = shard->inflight.find(version);
    if (in == shard->inflight.end()) return;
    fl = in->second;
    shard->inflight.erase(in);
  }
  abandons_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> fl_lock(fl->mu);
  fl->done = true;
  fl->page = nullptr;
  fl->cv.notify_all();
}

void SharedScanCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    bytes_.fetch_sub(shard->bytes, std::memory_order_relaxed);
    shard->entries.clear();
    shard->probation.clear();
    shard->protected_lru.clear();
    shard->bytes = 0;
    shard->protected_bytes = 0;
    // In-flight decodes may be keyed by offsets that are about to be
    // recycled: mark them stale so the claimant serves its waiters but
    // publishes nothing, and late arrivals read uncached.
    for (auto& [version, fl] : shard->inflight) {
      std::lock_guard<std::mutex> fl_lock(fl->mu);
      fl->stale = true;
    }
  }
}

void SharedScanCache::OnTruncateHistory(uint64_t keep_from) {
  (void)keep_from;  // conservative: every version key is suspect
  Clear();
  truncate_invalidations_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t SharedScanCache::size() const {
  uint64_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->entries.size();
  }
  return n;
}

SharedScanCache::Stats SharedScanCache::GetStats() const {
  Stats s;
  s.shared_hits = shared_hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.coalesced_decodes = coalesced_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.abandoned_decodes = abandons_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.truncate_invalidations =
      truncate_invalidations_.load(std::memory_order_relaxed);
  s.bytes = bytes_.load(std::memory_order_relaxed);
  s.entries = size();
  return s;
}

}  // namespace rql::sql

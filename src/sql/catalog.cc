#include "sql/catalog.h"

#include "sql/btree.h"

namespace rql::sql {

namespace {

// Catalog record layout (a plain row in the catalog heap table):
//   [0] kind TEXT: "table" | "index"
//   [1] name TEXT
//   [2] root INTEGER
//   [3] schema TEXT           (tables) | "" (indexes)
//   [4] on_table TEXT         (indexes) | ""
//   [5] columns TEXT, comma-separated (indexes) | ""
constexpr int kKindCol = 0;
constexpr int kNameCol = 1;
constexpr int kRootCol = 2;
constexpr int kSchemaCol = 3;
constexpr int kOnTableCol = 4;
constexpr int kColumnsCol = 5;

std::vector<std::string> SplitCommas(const std::string& s) {
  std::vector<std::string> out;
  size_t pos = 0;
  while (pos <= s.size() && !s.empty()) {
    size_t comma = s.find(',', pos);
    if (comma == std::string::npos) {
      out.push_back(s.substr(pos));
      break;
    }
    out.push_back(s.substr(pos, comma - pos));
    pos = comma + 1;
  }
  return out;
}

std::string JoinCommas(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ',';
    out += p;
  }
  return out;
}

}  // namespace

Result<CatalogData> CatalogData::Load(storage::PageReader* reader,
                                      storage::PageId catalog_root) {
  CatalogData data;
  for (auto it = HeapTable::Scan(reader, catalog_root); it.Valid();
       it.Next()) {
    RQL_ASSIGN_OR_RETURN(Row row, DecodeRow(it.record()));
    if (row.size() != 6) return Status::Corruption("bad catalog record");
    const std::string& kind = row[kKindCol].text();
    if (kind == "table") {
      TableInfo info;
      info.name = row[kNameCol].text();
      info.root = static_cast<storage::PageId>(row[kRootCol].integer());
      RQL_ASSIGN_OR_RETURN(info.schema,
                           TableSchema::Deserialize(row[kSchemaCol].text()));
      info.catalog_rid = it.rid();
      data.tables.emplace(IdentLower(info.name), std::move(info));
    } else if (kind == "index") {
      IndexInfo info;
      info.name = row[kNameCol].text();
      info.root = static_cast<storage::PageId>(row[kRootCol].integer());
      info.table = row[kOnTableCol].text();
      info.columns = SplitCommas(row[kColumnsCol].text());
      info.catalog_rid = it.rid();
      data.indexes.emplace(IdentLower(info.name), std::move(info));
    } else {
      return Status::Corruption("bad catalog record kind: " + kind);
    }
  }
  // Resolve index column positions.
  for (auto& [name, index] : data.indexes) {
    const TableInfo* table = data.FindTable(index.table);
    if (table == nullptr) {
      return Status::Corruption("index " + index.name +
                                " references missing table " + index.table);
    }
    for (const std::string& col : index.columns) {
      int idx = table->schema.FindColumn(col);
      if (idx < 0) {
        return Status::Corruption("index " + index.name +
                                  " references missing column " + col);
      }
      index.column_idx.push_back(idx);
    }
  }
  return data;
}

const TableInfo* CatalogData::FindTable(std::string_view name) const {
  auto it = tables.find(IdentLower(name));
  return it == tables.end() ? nullptr : &it->second;
}

const IndexInfo* CatalogData::FindIndex(std::string_view name) const {
  auto it = indexes.find(IdentLower(name));
  return it == indexes.end() ? nullptr : &it->second;
}

std::vector<const IndexInfo*> CatalogData::TableIndexes(
    std::string_view table) const {
  std::vector<const IndexInfo*> out;
  for (const auto& [name, index] : indexes) {
    if (IdentEquals(index.table, table)) out.push_back(&index);
  }
  return out;
}

const IndexInfo* CatalogData::IndexOnColumn(std::string_view table,
                                            std::string_view column) const {
  for (const auto& [name, index] : indexes) {
    if (IdentEquals(index.table, table) && !index.columns.empty() &&
        IdentEquals(index.columns[0], column)) {
      return &index;
    }
  }
  return nullptr;
}

Result<std::unique_ptr<Catalog>> Catalog::Open(
    storage::PageWriter* writer, storage::PageId* catalog_root) {
  if (*catalog_root == storage::kInvalidPageId) {
    RQL_ASSIGN_OR_RETURN(*catalog_root, HeapTable::Create(writer));
  }
  auto catalog = std::make_unique<Catalog>(writer, *catalog_root);
  RQL_RETURN_IF_ERROR(catalog->Reload());
  return catalog;
}

Status Catalog::Reload() {
  RQL_ASSIGN_OR_RETURN(data_, CatalogData::Load(writer_, root_));
  return Status::OK();
}

Status Catalog::AppendEntry(const Row& row, Rid* rid) {
  HeapTable table(writer_, root_);
  RQL_ASSIGN_OR_RETURN(*rid, table.Insert(EncodeRow(row)));
  return Status::OK();
}

Status Catalog::CreateTable(const std::string& name,
                            const TableSchema& schema) {
  if (data_.FindTable(name) != nullptr) {
    return Status::AlreadyExists("table already exists: " + name);
  }
  if (schema.columns.empty()) {
    return Status::InvalidArgument("table must have at least one column");
  }
  RQL_ASSIGN_OR_RETURN(storage::PageId root, HeapTable::Create(writer_));
  Row row = {Value::Text("table"),   Value::Text(name),
             Value::Integer(root),   Value::Text(schema.Serialize()),
             Value::Text(""),        Value::Text("")};
  TableInfo info;
  info.name = name;
  info.root = root;
  info.schema = schema;
  RQL_RETURN_IF_ERROR(AppendEntry(row, &info.catalog_rid));
  data_.tables.emplace(IdentLower(name), std::move(info));
  return Status::OK();
}

Status Catalog::DropTable(const std::string& name) {
  const TableInfo* info = data_.FindTable(name);
  if (info == nullptr) return Status::NotFound("no such table: " + name);
  // Drop dependent indexes first.
  std::vector<std::string> index_names;
  for (const IndexInfo* index : data_.TableIndexes(name)) {
    index_names.push_back(index->name);
  }
  for (const std::string& index_name : index_names) {
    RQL_RETURN_IF_ERROR(DropIndex(index_name));
  }
  info = data_.FindTable(name);  // map may have rehashed
  HeapTable heap(writer_, info->root);
  RQL_RETURN_IF_ERROR(heap.Drop());
  HeapTable catalog(writer_, root_);
  RQL_RETURN_IF_ERROR(catalog.Delete(info->catalog_rid));
  data_.tables.erase(IdentLower(name));
  return Status::OK();
}

Result<const IndexInfo*> Catalog::CreateIndex(
    const std::string& name, const std::string& table,
    const std::vector<std::string>& columns) {
  if (data_.FindIndex(name) != nullptr) {
    return Status::AlreadyExists("index already exists: " + name);
  }
  const TableInfo* table_info = data_.FindTable(table);
  if (table_info == nullptr) {
    return Status::NotFound("no such table: " + table);
  }
  IndexInfo info;
  info.name = name;
  info.table = table_info->name;
  info.columns = columns;
  for (const std::string& col : columns) {
    int idx = table_info->schema.FindColumn(col);
    if (idx < 0) {
      return Status::NotFound("no such column: " + table + "." + col);
    }
    info.column_idx.push_back(idx);
  }
  RQL_ASSIGN_OR_RETURN(info.root, BTree::Create(writer_));
  Row row = {Value::Text("index"),      Value::Text(name),
             Value::Integer(info.root), Value::Text(""),
             Value::Text(info.table),   Value::Text(JoinCommas(columns))};
  RQL_RETURN_IF_ERROR(AppendEntry(row, &info.catalog_rid));
  auto [it, inserted] = data_.indexes.emplace(IdentLower(name),
                                              std::move(info));
  return static_cast<const IndexInfo*>(&it->second);
}

Status Catalog::DropIndex(const std::string& name) {
  const IndexInfo* info = data_.FindIndex(name);
  if (info == nullptr) return Status::NotFound("no such index: " + name);
  BTree tree(writer_, info->root);
  RQL_RETURN_IF_ERROR(tree.Drop());
  HeapTable catalog(writer_, root_);
  RQL_RETURN_IF_ERROR(catalog.Delete(info->catalog_rid));
  data_.indexes.erase(IdentLower(name));
  return Status::OK();
}

}  // namespace rql::sql

#include "sql/schema.h"

#include <cctype>

namespace rql::sql {

bool IdentEquals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string IdentLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return out;
}

int TableSchema::FindColumn(std::string_view name) const {
  for (size_t i = 0; i < columns.size(); ++i) {
    if (IdentEquals(columns[i].name, name)) return static_cast<int>(i);
  }
  return -1;
}

std::string TableSchema::Serialize() const {
  std::string out;
  for (const ColumnDef& col : columns) {
    if (!out.empty()) out += ',';
    out += col.name;
    out += ' ';
    out += ValueTypeName(col.type);
  }
  return out;
}

Result<TableSchema> TableSchema::Deserialize(std::string_view text) {
  TableSchema schema;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t comma = text.find(',', pos);
    std::string_view part = text.substr(
        pos, comma == std::string_view::npos ? text.size() - pos
                                             : comma - pos);
    size_t space = part.find(' ');
    if (space == std::string_view::npos) {
      return Status::Corruption("bad schema text: " + std::string(text));
    }
    ColumnDef col;
    col.name = std::string(part.substr(0, space));
    std::string_view type_name = part.substr(space + 1);
    if (type_name == "INTEGER") {
      col.type = ValueType::kInteger;
    } else if (type_name == "REAL") {
      col.type = ValueType::kReal;
    } else if (type_name == "TEXT") {
      col.type = ValueType::kText;
    } else if (type_name == "NULL") {
      col.type = ValueType::kNull;
    } else {
      return Status::Corruption("bad column type: " + std::string(type_name));
    }
    schema.columns.push_back(std::move(col));
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  return schema;
}

}  // namespace rql::sql

#ifndef RQL_SQL_SCAN_CACHE_H_
#define RQL_SQL_SCAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sql/value.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace rql::sql {

/// A run-scoped cache of decoded heap-table pages, keyed by page
/// *version* — the Pagelog offset the snapshot page table resolves a
/// (page, snapshot) pair to. Consecutive snapshots share most page
/// versions under page-level COW, so a version decoded for one snapshot
/// serves every other snapshot that maps the same offset: the page is
/// fetched, slot-walked and tuple-decoded once per RQL run instead of
/// once per snapshot.
///
/// Entries hold a PinnedPage, so the raw record bytes (string_views into
/// the pinned frame) stay valid even if the underlying BufferPool frame
/// is evicted; the pool merely drops its own reference. The cache is
/// thread-safe (parallel RQL workers share one instance): lookups and
/// publishes take a single mutex, decoding happens outside it, and a
/// racing double-decode resolves to first-publish-wins. It holds pins
/// for the duration of a run, so it must be cleared when the run ends
/// (or per iteration under cold-cache experiments).
class ScanCache {
 public:
  /// One decoded page version. Immutable once published.
  struct DecodedPage {
    storage::PinnedPage pin;  // keeps `records` bytes alive
    storage::PageId next = storage::kInvalidPageId;  // chain successor
    std::vector<uint16_t> slots;            // slot number per live record
    std::vector<std::string_view> records;  // raw bytes, into the pin
    std::vector<Row> rows;                  // decoded form of `records`
  };

  /// The cached entry for `version`, or nullptr.
  std::shared_ptr<const DecodedPage> Lookup(uint64_t version);

  /// Publishes `page` under `version`; returns the entry that ends up
  /// cached (the already-present one if another thread published first).
  std::shared_ptr<const DecodedPage> Insert(
      uint64_t version, std::shared_ptr<const DecodedPage> page);

  /// Drops every entry (and the pins they hold).
  void Clear();

  void AddHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Returns the hit count accumulated since the last take and zeroes it
  /// (per-iteration attribution in the sequential RQL loop).
  int64_t TakeHits() { return hits_.exchange(0, std::memory_order_relaxed); }

  /// A versioned page lookup that found no entry (the page is then fetched
  /// and decoded, and usually published). Observability only: misses do
  /// not feed any legacy RqlIterationStats counter.
  void AddMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t TakeMisses() {
    return misses_.exchange(0, std::memory_order_relaxed);
  }

  uint64_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const DecodedPage>> pages_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace rql::sql

#endif  // RQL_SQL_SCAN_CACHE_H_

#ifndef RQL_SQL_SCAN_CACHE_H_
#define RQL_SQL_SCAN_CACHE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "sql/value.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace rql::sql {

/// Per-execution scan-cache counters, accumulated by HeapTable iterators
/// into the executor's ExecStats. Unlike the cache-global atomics below,
/// these are exact per execution even when several runs or parallel
/// workers share one cache instance, so the RQL engine attributes hits
/// and misses to the iteration that actually performed them.
struct ScanCacheCounters {
  int64_t hits = 0;
  int64_t misses = 0;
  /// Hits served by blocking on another thread's in-flight decode of the
  /// same version (single-flight coalescing; SharedScanCache only).
  int64_t coalesced = 0;

  void Reset() { *this = ScanCacheCounters{}; }
  void Add(const ScanCacheCounters& o) {
    hits += o.hits;
    misses += o.misses;
    coalesced += o.coalesced;
  }
};

/// A run-scoped cache of decoded heap-table pages, keyed by page
/// *version* — the Pagelog offset the snapshot page table resolves a
/// (page, snapshot) pair to. Consecutive snapshots share most page
/// versions under page-level COW, so a version decoded for one snapshot
/// serves every other snapshot that maps the same offset: the page is
/// fetched, slot-walked and tuple-decoded once per RQL run instead of
/// once per snapshot.
///
/// Entries hold a PinnedPage, so the raw record bytes (string_views into
/// the pinned frame) stay valid even if the underlying BufferPool frame
/// is evicted; the pool merely drops its own reference. The cache is
/// thread-safe (parallel RQL workers share one instance): lookups and
/// publishes take a single mutex, decoding happens outside it, and a
/// racing double-decode resolves to first-publish-wins. It holds pins
/// for the duration of a run, so it must be cleared when the run ends
/// (or per iteration under cold-cache experiments).
///
/// The class is polymorphic: SharedScanCache (shared_scan_cache.h)
/// promotes the same interface to store scope, adding a byte budget,
/// segmented-LRU eviction and per-version single-flight decoding.
/// Readers speak the Acquire/Insert/AbandonDecode protocol below; for
/// this run-scoped base the protocol degenerates to the historical
/// lookup-then-publish behavior (never blocks, double decodes allowed,
/// first publish wins), keeping flag-off runs byte-identical.
class ScanCache {
 public:
  /// One decoded page version. Immutable once published.
  struct DecodedPage {
    storage::PinnedPage pin;  // keeps `records` bytes alive
    storage::PageId next = storage::kInvalidPageId;  // chain successor
    std::vector<uint16_t> slots;            // slot number per live record
    std::vector<std::string_view> records;  // raw bytes, into the pin
    std::vector<Row> rows;                  // decoded form of `records`
  };

  /// Result of Acquire(): either a published entry (`page` non-null), a
  /// decode claim (`claimed` — the caller MUST follow up with Insert or
  /// AbandonDecode for the same version), or neither (an in-flight decode
  /// the caller waited on was abandoned; fall through to a plain,
  /// uncached read).
  struct AcquireResult {
    std::shared_ptr<const DecodedPage> page;
    bool claimed = false;
    bool coalesced = false;  // hit was served by waiting on a decode
  };

  ScanCache() = default;
  virtual ~ScanCache() = default;
  ScanCache(const ScanCache&) = delete;
  ScanCache& operator=(const ScanCache&) = delete;

  /// The cached entry for `version`, or nullptr.
  virtual std::shared_ptr<const DecodedPage> Lookup(uint64_t version);

  /// Looks up `version`, claiming the decode on a miss. The base
  /// implementation never blocks and always claims on a miss (racing
  /// claimants both decode; Insert resolves first-publish-wins).
  virtual AcquireResult Acquire(uint64_t version);

  /// Publishes `page` under `version`; returns the entry that ends up
  /// cached (the already-present one if another thread published first).
  /// Releases the caller's decode claim, if any.
  virtual std::shared_ptr<const DecodedPage> Insert(
      uint64_t version, std::shared_ptr<const DecodedPage> page);

  /// Releases a decode claim without publishing (fetch or decode failed;
  /// the caller falls back to an uncached read). No-op in the base class.
  virtual void AbandonDecode(uint64_t version) { (void)version; }

  /// Drops every entry (and the pins they hold).
  virtual void Clear();

  virtual uint64_t size() const;

  void AddHit() { hits_.fetch_add(1, std::memory_order_relaxed); }
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  /// Returns the hit count accumulated since the last take and zeroes it.
  /// Cache-global, so only meaningful when a single run owns the cache;
  /// per-iteration attribution uses ScanCacheCounters instead.
  int64_t TakeHits() { return hits_.exchange(0, std::memory_order_relaxed); }

  /// A versioned page lookup that found no entry (the page is then fetched
  /// and decoded, and usually published). Observability only: misses do
  /// not feed any legacy RqlIterationStats counter.
  void AddMiss() { misses_.fetch_add(1, std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t TakeMisses() {
    return misses_.exchange(0, std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const DecodedPage>> pages_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
};

}  // namespace rql::sql

#endif  // RQL_SQL_SCAN_CACHE_H_

#include "sql/lexer.h"

#include <cctype>

#include "sql/schema.h"

namespace rql::sql {

bool Token::IsKeyword(std::string_view kw) const {
  return type == TokenType::kIdentifier && IdentEquals(text, kw);
}

Result<std::vector<Token>> Tokenize(std::string_view sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  auto is_ident_start = [](char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
  };
  auto is_ident = [](char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
  };

  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // -- line comments
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    // /* block comments */ (no nesting, as in standard SQL)
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t start = i;
      i += 2;
      while (i + 1 < n && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
      if (i + 1 >= n) {
        return Status::InvalidArgument("unterminated block comment at offset " +
                                       std::to_string(start));
      }
      i += 2;
      continue;
    }
    Token token;
    token.offset = i;
    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident(sql[i])) ++i;
      token.type = TokenType::kIdentifier;
      token.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.') {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        is_float = true;
        ++i;
        if (i < n && (sql[i] == '+' || sql[i] == '-')) ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      token.type = is_float ? TokenType::kFloat : TokenType::kInteger;
      token.text = std::string(sql.substr(start, i - start));
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string contents;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // '' escape
            contents.push_back('\'');
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        contents.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal at offset " +
                                       std::to_string(token.offset));
      }
      token.type = TokenType::kString;
      token.text = std::move(contents);
      tokens.push_back(std::move(token));
      continue;
    }
    if (c == '"') {  // quoted identifier
      ++i;
      std::string contents;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '"') {
          closed = true;
          ++i;
          break;
        }
        contents.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated quoted identifier");
      }
      token.type = TokenType::kIdentifier;
      token.text = std::move(contents);
      tokens.push_back(std::move(token));
      continue;
    }
    // Operators, longest match first.
    static constexpr std::string_view kTwoChar[] = {"==", "!=", "<>", "<=",
                                                    ">="};
    bool matched = false;
    if (i + 1 < n) {
      std::string_view two = sql.substr(i, 2);
      for (std::string_view op : kTwoChar) {
        if (two == op) {
          token.type = TokenType::kOperator;
          token.text = std::string(op);
          tokens.push_back(std::move(token));
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (matched) continue;
    static constexpr std::string_view kOneChar = "=<>+-*/%(),;.?";
    if (kOneChar.find(c) != std::string_view::npos) {
      token.type = TokenType::kOperator;
      token.text = std::string(1, c);
      tokens.push_back(std::move(token));
      ++i;
      continue;
    }
    return Status::InvalidArgument("unexpected character '" +
                                   std::string(1, c) + "' at offset " +
                                   std::to_string(i));
  }
  Token eof;
  eof.type = TokenType::kEof;
  eof.offset = n;
  tokens.push_back(std::move(eof));
  return tokens;
}

}  // namespace rql::sql

#include "sql/value.h"

#include <cstring>

namespace rql::sql {

std::string_view ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInteger: return "INTEGER";
    case ValueType::kReal: return "REAL";
    case ValueType::kText: return "TEXT";
  }
  return "?";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInteger:
      return std::to_string(integer());
    case ValueType::kReal: {
      std::string s = std::to_string(real());
      return s;
    }
    case ValueType::kText:
      return text();
  }
  return "?";
}

bool Value::operator==(const Value& other) const {
  return CompareValues(*this, other) == 0;
}

namespace {
// Ordering rank of a type class: NULL < numeric < text.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull: return 0;
    case ValueType::kInteger:
    case ValueType::kReal: return 1;
    case ValueType::kText: return 2;
  }
  return 3;
}
}  // namespace

int CompareValues(const Value& a, const Value& b) {
  int ra = TypeRank(a.type());
  int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:  // both NULL
      return 0;
    case 1: {  // numeric
      if (a.type() == ValueType::kInteger && b.type() == ValueType::kInteger) {
        int64_t x = a.integer(), y = b.integer();
        return x < y ? -1 : (x > y ? 1 : 0);
      }
      double x = a.AsDouble(), y = b.AsDouble();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    default: {  // text
      int c = a.text().compare(b.text());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
}

int CompareRows(const Row& a, const Row& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int c = CompareValues(a[i], b[i]);
    if (c != 0) return c;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}
void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

bool GetU32(std::string_view* in, uint32_t* v) {
  if (in->size() < sizeof(*v)) return false;
  std::memcpy(v, in->data(), sizeof(*v));
  in->remove_prefix(sizeof(*v));
  return true;
}
bool GetU64(std::string_view* in, uint64_t* v) {
  if (in->size() < sizeof(*v)) return false;
  std::memcpy(v, in->data(), sizeof(*v));
  in->remove_prefix(sizeof(*v));
  return true;
}

}  // namespace

void EncodeRow(const Row& row, std::string* out) {
  PutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) {
    out->push_back(static_cast<char>(v.type()));
    switch (v.type()) {
      case ValueType::kNull:
        break;
      case ValueType::kInteger:
        PutU64(out, static_cast<uint64_t>(v.integer()));
        break;
      case ValueType::kReal: {
        uint64_t bits;
        double d = v.real();
        std::memcpy(&bits, &d, sizeof(bits));
        PutU64(out, bits);
        break;
      }
      case ValueType::kText:
        PutU32(out, static_cast<uint32_t>(v.text().size()));
        out->append(v.text());
        break;
    }
  }
}

std::string EncodeRow(const Row& row) {
  std::string out;
  EncodeRow(row, &out);
  return out;
}

Result<Row> DecodeRow(std::string_view data) {
  uint32_t count = 0;
  if (!GetU32(&data, &count)) {
    return Status::Corruption("row decode: truncated header");
  }
  Row row;
  row.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (data.empty()) return Status::Corruption("row decode: truncated tag");
    auto type = static_cast<ValueType>(data.front());
    data.remove_prefix(1);
    switch (type) {
      case ValueType::kNull:
        row.push_back(Value::Null());
        break;
      case ValueType::kInteger: {
        uint64_t v;
        if (!GetU64(&data, &v)) {
          return Status::Corruption("row decode: truncated int");
        }
        row.push_back(Value::Integer(static_cast<int64_t>(v)));
        break;
      }
      case ValueType::kReal: {
        uint64_t bits;
        if (!GetU64(&data, &bits)) {
          return Status::Corruption("row decode: truncated real");
        }
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        row.push_back(Value::Real(d));
        break;
      }
      case ValueType::kText: {
        uint32_t len;
        if (!GetU32(&data, &len) || data.size() < len) {
          return Status::Corruption("row decode: truncated text");
        }
        row.push_back(Value::Text(std::string(data.substr(0, len))));
        data.remove_prefix(len);
        break;
      }
      default:
        return Status::Corruption("row decode: bad type tag");
    }
  }
  if (!data.empty()) return Status::Corruption("row decode: trailing bytes");
  return row;
}

}  // namespace rql::sql

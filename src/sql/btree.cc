#include "sql/btree.h"

#include <cstring>

namespace rql::sql {

namespace {

using storage::kInvalidPageId;
using storage::kPageSize;
using storage::Page;
using storage::PageId;

// Node page layout.
constexpr uint32_t kFlagsOff = 0;     // u8: 1 = leaf
constexpr uint32_t kNKeysOff = 2;     // u16
constexpr uint32_t kLinkOff = 4;      // u32: right sibling / leftmost child
constexpr uint32_t kPrevOff = 8;      // u32: left sibling (leaves only)
constexpr uint32_t kDataEndOff = 12;  // u16: end of cell data
constexpr uint32_t kDataStart = 16;
constexpr uint32_t kSlotBytes = 4;    // u16 offset, u16 len per cell

bool IsLeaf(const Page& page) { return page.data[kFlagsOff] == 1; }
uint16_t NKeys(const Page& page) { return page.ReadU16(kNKeysOff); }

uint32_t SlotPos(int slot) {
  return kPageSize - (static_cast<uint32_t>(slot) + 1) * kSlotBytes;
}

std::string_view Cell(const Page& page, int slot) {
  uint16_t off = page.ReadU16(SlotPos(slot));
  uint16_t len = page.ReadU16(SlotPos(slot) + 2);
  return std::string_view(page.data + off, len);
}

// Leaf cell: encoded key + u64 value. Internal cell: encoded key + u32
// child. The payload size is fixed per node kind, so the key length is
// implicit.
std::string_view CellKey(const Page& page, int slot) {
  std::string_view cell = Cell(page, slot);
  size_t payload = IsLeaf(page) ? 8 : 4;
  return cell.substr(0, cell.size() - payload);
}

uint64_t LeafCellValue(const Page& page, int slot) {
  std::string_view cell = Cell(page, slot);
  uint64_t v;
  std::memcpy(&v, cell.data() + cell.size() - 8, 8);
  return v;
}

PageId InternalCellChild(const Page& page, int slot) {
  std::string_view cell = Cell(page, slot);
  uint32_t v;
  std::memcpy(&v, cell.data() + cell.size() - 4, 4);
  return v;
}

void InitNode(Page* page, bool leaf) {
  page->Zero();
  page->data[kFlagsOff] = leaf ? 1 : 0;
  page->WriteU16(kDataEndOff, kDataStart);
}

// Decoded-key comparison of an encoded cell key against a decoded row.
// Prefix semantics: if `probe` has fewer columns, only those compare.
Result<int> CompareCellKey(std::string_view cell_key, const Row& probe,
                           bool prefix_only) {
  RQL_ASSIGN_OR_RETURN(Row key, DecodeRow(cell_key));
  if (prefix_only && key.size() > probe.size()) {
    key.resize(probe.size());
  }
  return CompareRows(key, probe);
}

// First slot whose key >= probe (lower bound).
Result<int> LowerBound(const Page& page, const Row& probe, bool prefix_only) {
  int lo = 0, hi = NKeys(page);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    RQL_ASSIGN_OR_RETURN(int c,
                         CompareCellKey(CellKey(page, mid), probe,
                                        prefix_only));
    if (c < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

uint32_t DirBytes(const Page& page, int extra_cells) {
  return (static_cast<uint32_t>(NKeys(page)) + extra_cells) * kSlotBytes;
}

// Physically rewrites the node dropping dead cell bytes.
void CompactNode(Page* page) {
  uint16_t n = NKeys(*page);
  std::vector<std::string> cells;
  cells.reserve(n);
  for (int i = 0; i < n; ++i) cells.emplace_back(Cell(*page, i));
  uint16_t pos = kDataStart;
  for (int i = 0; i < n; ++i) {
    std::memcpy(page->data + pos, cells[i].data(), cells[i].size());
    page->WriteU16(SlotPos(i), pos);
    page->WriteU16(SlotPos(i) + 2, static_cast<uint16_t>(cells[i].size()));
    pos = static_cast<uint16_t>(pos + cells[i].size());
  }
  page->WriteU16(kDataEndOff, pos);
}

bool HasRoom(const Page& page, size_t cell_len) {
  uint32_t dir = DirBytes(page, 1);
  uint32_t data_end = page.ReadU16(kDataEndOff);
  return data_end + cell_len + dir <= kPageSize;
}

// Inserts a cell at `slot`, shifting the directory. Caller guarantees room
// (after compaction if needed).
void InsertCellAt(Page* page, int slot, std::string_view cell) {
  uint16_t n = NKeys(*page);
  uint16_t data_end = page->ReadU16(kDataEndOff);
  std::memcpy(page->data + data_end, cell.data(), cell.size());
  // Shift slots [slot, n) down one position (toward lower addresses).
  for (int i = n; i > slot; --i) {
    page->WriteU32(SlotPos(i), page->ReadU32(SlotPos(i - 1)));
  }
  page->WriteU16(SlotPos(slot), data_end);
  page->WriteU16(SlotPos(slot) + 2, static_cast<uint16_t>(cell.size()));
  page->WriteU16(kNKeysOff, static_cast<uint16_t>(n + 1));
  page->WriteU16(kDataEndOff, static_cast<uint16_t>(data_end + cell.size()));
}

void RemoveCellAt(Page* page, int slot) {
  uint16_t n = NKeys(*page);
  for (int i = slot; i + 1 < n; ++i) {
    page->WriteU32(SlotPos(i), page->ReadU32(SlotPos(i + 1)));
  }
  page->WriteU16(kNKeysOff, static_cast<uint16_t>(n - 1));
  // Dead cell bytes are reclaimed by the next compaction.
}

std::string MakeLeafCell(std::string_view key, uint64_t value) {
  std::string cell(key);
  cell.append(reinterpret_cast<const char*>(&value), 8);
  return cell;
}

std::string MakeInternalCell(std::string_view key, PageId child) {
  std::string cell(key);
  cell.append(reinterpret_cast<const char*>(&child), 4);
  return cell;
}

// Moves the upper half of `page`'s cells into `right` (freshly
// initialized with the same leaf flag). For internal nodes the first moved
// cell's key becomes the promoted separator and its child becomes
// `right`'s leftmost child. Returns the separator (encoded key).
std::string SplitNode(Page* page, Page* right) {
  uint16_t n = NKeys(*page);
  int mid = n / 2;
  bool leaf = IsLeaf(*page);
  std::vector<std::string> upper;
  for (int i = mid; i < n; ++i) upper.emplace_back(Cell(*page, i));

  // Truncate the left node and reclaim its space.
  page->WriteU16(kNKeysOff, static_cast<uint16_t>(mid));
  CompactNode(page);

  std::string separator;
  size_t payload = leaf ? 8 : 4;
  size_t start = 0;
  if (leaf) {
    separator = upper[0].substr(0, upper[0].size() - payload);
  } else {
    separator = upper[0].substr(0, upper[0].size() - payload);
    uint32_t child;
    std::memcpy(&child, upper[0].data() + upper[0].size() - 4, 4);
    right->WriteU32(kLinkOff, child);
    start = 1;  // the separator cell is promoted, not copied
  }
  for (size_t i = start; i < upper.size(); ++i) {
    InsertCellAt(right, static_cast<int>(i - start), upper[i]);
  }
  return separator;
}

}  // namespace

Result<PageId> BTree::Create(storage::PageWriter* writer) {
  RQL_ASSIGN_OR_RETURN(PageId root, writer->AllocatePage());
  Page page;
  InitNode(&page, /*leaf=*/true);
  RQL_RETURN_IF_ERROR(writer->WritePage(root, page));
  return root;
}

Status BTree::InsertRec(PageId node_id, const std::string& key,
                        uint64_t value, SplitResult* split) {
  split->split = false;
  Page page;
  RQL_RETURN_IF_ERROR(writer_->ReadPage(node_id, &page));
  RQL_ASSIGN_OR_RETURN(Row probe, DecodeRow(key));

  if (IsLeaf(page)) {
    RQL_ASSIGN_OR_RETURN(int pos, LowerBound(page, probe, false));
    if (pos < NKeys(page)) {
      RQL_ASSIGN_OR_RETURN(int c, CompareCellKey(CellKey(page, pos), probe,
                                                 false));
      if (c == 0) return Status::AlreadyExists("duplicate index key");
    }
    std::string cell = MakeLeafCell(key, value);
    if (cell.size() + kDataStart + 2 * kSlotBytes > kPageSize) {
      return Status::InvalidArgument("index key too large");
    }
    if (!HasRoom(page, cell.size())) {
      CompactNode(&page);
    }
    if (HasRoom(page, cell.size())) {
      InsertCellAt(&page, pos, cell);
      return writer_->WritePage(node_id, page);
    }
    // Split the leaf, keeping the doubly-linked leaf chain intact.
    RQL_ASSIGN_OR_RETURN(PageId right_id, writer_->AllocatePage());
    PageId old_right = page.ReadU32(kLinkOff);
    Page right;
    InitNode(&right, /*leaf=*/true);
    right.WriteU32(kLinkOff, old_right);
    right.WriteU32(kPrevOff, node_id);
    std::string separator = SplitNode(&page, &right);
    page.WriteU32(kLinkOff, right_id);
    if (old_right != kInvalidPageId) {
      Page old_right_page;
      RQL_RETURN_IF_ERROR(writer_->ReadPage(old_right, &old_right_page));
      old_right_page.WriteU32(kPrevOff, right_id);
      RQL_RETURN_IF_ERROR(writer_->WritePage(old_right, old_right_page));
    }
    // Insert into the proper half.
    RQL_ASSIGN_OR_RETURN(Row sep_row, DecodeRow(separator));
    Page* target = CompareRows(probe, sep_row) < 0 ? &page : &right;
    RQL_ASSIGN_OR_RETURN(int tpos, LowerBound(*target, probe, false));
    InsertCellAt(target, tpos, cell);
    RQL_RETURN_IF_ERROR(writer_->WritePage(node_id, page));
    RQL_RETURN_IF_ERROR(writer_->WritePage(right_id, right));
    split->split = true;
    split->separator = std::move(separator);
    split->new_node = right_id;
    return Status::OK();
  }

  // Internal node: descend into the child covering `probe`.
  RQL_ASSIGN_OR_RETURN(int pos, LowerBound(page, probe, false));
  // Child for probe: cells hold (separator, child) with separator = min key
  // of child's subtree. Descend into the last cell with separator <= probe,
  // or the leftmost child when probe < all separators.
  int child_cell = pos - 1;
  if (pos < NKeys(page)) {
    RQL_ASSIGN_OR_RETURN(int c, CompareCellKey(CellKey(page, pos), probe,
                                               false));
    if (c == 0) child_cell = pos;
  }
  PageId child = child_cell < 0 ? page.ReadU32(kLinkOff)
                                : InternalCellChild(page, child_cell);

  SplitResult child_split;
  RQL_RETURN_IF_ERROR(InsertRec(child, key, value, &child_split));
  if (!child_split.split) return Status::OK();

  // Re-read: the recursive call may have rewritten pages, and our buffer
  // of this node is still valid (only descendants changed), but re-read
  // for clarity and safety.
  RQL_RETURN_IF_ERROR(writer_->ReadPage(node_id, &page));
  RQL_ASSIGN_OR_RETURN(Row sep_row, DecodeRow(child_split.separator));
  RQL_ASSIGN_OR_RETURN(int ipos, LowerBound(page, sep_row, false));
  std::string cell = MakeInternalCell(child_split.separator,
                                      child_split.new_node);
  if (!HasRoom(page, cell.size())) {
    CompactNode(&page);
  }
  if (HasRoom(page, cell.size())) {
    InsertCellAt(&page, ipos, cell);
    return writer_->WritePage(node_id, page);
  }
  // Split this internal node, then place the pending cell.
  RQL_ASSIGN_OR_RETURN(PageId right_id, writer_->AllocatePage());
  Page right;
  InitNode(&right, /*leaf=*/false);
  std::string separator = SplitNode(&page, &right);
  RQL_ASSIGN_OR_RETURN(Row up_row, DecodeRow(separator));
  Page* target = CompareRows(sep_row, up_row) < 0 ? &page : &right;
  RQL_ASSIGN_OR_RETURN(int tpos, LowerBound(*target, sep_row, false));
  InsertCellAt(target, tpos, cell);
  RQL_RETURN_IF_ERROR(writer_->WritePage(node_id, page));
  RQL_RETURN_IF_ERROR(writer_->WritePage(right_id, right));
  split->split = true;
  split->separator = std::move(separator);
  split->new_node = right_id;
  return Status::OK();
}

Status BTree::Insert(const Row& key, uint64_t value) {
  std::string encoded = EncodeRow(key);
  SplitResult split;
  RQL_RETURN_IF_ERROR(InsertRec(root_, encoded, value, &split));
  if (!split.split) return Status::OK();

  // Root split with a stable root id: move the (left-half) root contents
  // into a fresh page and turn the root into an internal node over the two
  // halves.
  Page old_root;
  RQL_RETURN_IF_ERROR(writer_->ReadPage(root_, &old_root));
  RQL_ASSIGN_OR_RETURN(PageId left_id, writer_->AllocatePage());
  RQL_RETURN_IF_ERROR(writer_->WritePage(left_id, old_root));

  Page new_root;
  InitNode(&new_root, /*leaf=*/false);
  new_root.WriteU32(kLinkOff, left_id);
  InsertCellAt(&new_root, 0, MakeInternalCell(split.separator,
                                              split.new_node));
  return writer_->WritePage(root_, new_root);
}

Status BTree::Delete(const Row& key) {
  // Remember the descent path so emptied pages can be removed from their
  // parents; without reclamation a rotating workload (delete low keys,
  // insert high keys) would leak one empty leaf per key range forever.
  struct PathEntry {
    PageId node;
    int child_cell;  // -1 = reached via the leftmost-child pointer
  };
  std::vector<PathEntry> path;
  PageId node_id = root_;
  Page page;
  for (;;) {
    RQL_RETURN_IF_ERROR(writer_->ReadPage(node_id, &page));
    if (IsLeaf(page)) break;
    RQL_ASSIGN_OR_RETURN(int pos, LowerBound(page, key, false));
    int child_cell = pos - 1;
    if (pos < NKeys(page)) {
      RQL_ASSIGN_OR_RETURN(int c, CompareCellKey(CellKey(page, pos), key,
                                                 false));
      if (c == 0) child_cell = pos;
    }
    path.push_back({node_id, child_cell});
    node_id = child_cell < 0 ? page.ReadU32(kLinkOff)
                             : InternalCellChild(page, child_cell);
  }
  RQL_ASSIGN_OR_RETURN(int pos, LowerBound(page, key, false));
  if (pos >= NKeys(page)) return Status::NotFound("index key not found");
  RQL_ASSIGN_OR_RETURN(int c, CompareCellKey(CellKey(page, pos), key, false));
  if (c != 0) return Status::NotFound("index key not found");
  RemoveCellAt(&page, pos);
  if (NKeys(page) > 0 || node_id == root_) {
    return writer_->WritePage(node_id, page);
  }

  // The leaf emptied: unlink it from the leaf chain and free it.
  PageId next = page.ReadU32(kLinkOff);
  PageId prev = page.ReadU32(kPrevOff);
  if (prev != kInvalidPageId) {
    Page prev_page;
    RQL_RETURN_IF_ERROR(writer_->ReadPage(prev, &prev_page));
    prev_page.WriteU32(kLinkOff, next);
    RQL_RETURN_IF_ERROR(writer_->WritePage(prev, prev_page));
  }
  if (next != kInvalidPageId) {
    Page next_page;
    RQL_RETURN_IF_ERROR(writer_->ReadPage(next, &next_page));
    next_page.WriteU32(kPrevOff, prev);
    RQL_RETURN_IF_ERROR(writer_->WritePage(next, next_page));
  }
  RQL_RETURN_IF_ERROR(writer_->FreePage(node_id));

  // Remove the dangling child reference, cascading through ancestors that
  // empty out in turn.
  for (size_t level = path.size(); level-- > 0;) {
    Page parent;
    RQL_RETURN_IF_ERROR(writer_->ReadPage(path[level].node, &parent));
    int cc = path[level].child_cell;
    if (cc >= 0) {
      RemoveCellAt(&parent, cc);
      return writer_->WritePage(path[level].node, parent);
    }
    // The removed child was the leftmost: promote cell 0's child.
    if (NKeys(parent) > 0) {
      parent.WriteU32(kLinkOff, InternalCellChild(parent, 0));
      RemoveCellAt(&parent, 0);
      return writer_->WritePage(path[level].node, parent);
    }
    // The internal node lost its only child.
    if (path[level].node == root_) {
      InitNode(&parent, /*leaf=*/true);
      return writer_->WritePage(root_, parent);
    }
    RQL_RETURN_IF_ERROR(writer_->FreePage(path[level].node));
  }
  return Status::OK();
}

Result<uint64_t> BTree::Lookup(const Row& key) const {
  RQL_ASSIGN_OR_RETURN(Iterator it, Seek(writer_, root_, key));
  if (!it.Valid()) return Status::NotFound("index key not found");
  if (CompareRows(it.key(), key) != 0) {
    return Status::NotFound("index key not found");
  }
  return it.value();
}

Status BTree::Drop() {
  // Collect all pages by walking the tree, then free them.
  std::vector<PageId> stack = {root_};
  std::vector<PageId> all;
  Page page;
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    all.push_back(id);
    RQL_RETURN_IF_ERROR(writer_->ReadPage(id, &page));
    if (!IsLeaf(page)) {
      stack.push_back(page.ReadU32(kLinkOff));
      for (int i = 0; i < NKeys(page); ++i) {
        stack.push_back(InternalCellChild(page, i));
      }
    }
  }
  for (PageId id : all) {
    RQL_RETURN_IF_ERROR(writer_->FreePage(id));
  }
  return Status::OK();
}

void BTree::Iterator::LoadCurrent() {
  for (;;) {
    if (page_id_ == kInvalidPageId) {
      valid_ = false;
      return;
    }
    if (slot_ < NKeys(page_)) break;
    // Advance to the right sibling.
    page_id_ = page_.ReadU32(kLinkOff);
    slot_ = 0;
    if (page_id_ == kInvalidPageId) {
      valid_ = false;
      return;
    }
    status_ = reader_->ReadPage(page_id_, &page_);
    if (!status_.ok()) {
      valid_ = false;
      return;
    }
  }
  auto key = DecodeRow(CellKey(page_, slot_));
  if (!key.ok()) {
    status_ = key.status();
    valid_ = false;
    return;
  }
  key_ = std::move(*key);
  value_ = LeafCellValue(page_, slot_);
  valid_ = true;
}

void BTree::Iterator::Next() {
  if (!valid_) return;
  ++slot_;
  LoadCurrent();
}

Result<BTree::Iterator> BTree::SeekFirst(storage::PageReader* reader,
                                         PageId root) {
  Iterator it(reader);
  PageId id = root;
  for (;;) {
    RQL_RETURN_IF_ERROR(reader->ReadPage(id, &it.page_));
    if (IsLeaf(it.page_)) break;
    id = it.page_.ReadU32(kLinkOff);
  }
  it.page_id_ = id;
  it.slot_ = 0;
  it.LoadCurrent();
  return it;
}

Result<BTree::Iterator> BTree::Seek(storage::PageReader* reader, PageId root,
                                    const Row& lower) {
  Iterator it(reader);
  PageId id = root;
  for (;;) {
    RQL_RETURN_IF_ERROR(reader->ReadPage(id, &it.page_));
    if (IsLeaf(it.page_)) break;
    // Internal: descend into the last child whose separator <= lower.
    // Separators are full keys; compare against the (possibly shorter)
    // probe with full-row semantics so prefix probes descend to the
    // leftmost candidate.
    int lo = 0, hi = NKeys(it.page_);
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      RQL_ASSIGN_OR_RETURN(
          int c, CompareCellKey(CellKey(it.page_, mid), lower, false));
      if (c < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    // lo = first separator >= lower; child is lo-1 (or leftmost).
    id = lo == 0 ? it.page_.ReadU32(kLinkOff)
                 : InternalCellChild(it.page_, lo - 1);
  }
  it.page_id_ = id;
  RQL_ASSIGN_OR_RETURN(it.slot_, LowerBound(it.page_, lower, false));
  it.LoadCurrent();
  return it;
}

Result<uint64_t> BTree::CountPages(storage::PageReader* reader, PageId root) {
  std::vector<PageId> stack = {root};
  uint64_t count = 0;
  Page page;
  while (!stack.empty()) {
    PageId id = stack.back();
    stack.pop_back();
    ++count;
    RQL_RETURN_IF_ERROR(reader->ReadPage(id, &page));
    if (!IsLeaf(page)) {
      stack.push_back(page.ReadU32(kLinkOff));
      for (int i = 0; i < NKeys(page); ++i) {
        stack.push_back(InternalCellChild(page, i));
      }
    }
  }
  return count;
}

}  // namespace rql::sql

#include "sql/fingerprint.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>

#include "sql/parser.h"

namespace rql::sql {

namespace {

std::string Lower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    out += static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

/// Type-tagged literal rendering: int:1 / real:1.5 / txt:'a' / null. The
/// tag keeps values of different types from ever canonicalizing to the
/// same token, and text is quote-escaped so 'a,b' cannot collide with the
/// two-element list 'a', 'b'.
std::string CanonLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInteger: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "int:%" PRId64, v.integer());
      return buf;
    }
    case ValueType::kReal: {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "real:%.17g", v.real());
      return buf;
    }
    case ValueType::kText: {
      std::string out = "txt:'";
      for (char c : v.text()) {
        if (c == '\'') out += "''";
        out += c;
      }
      out += '\'';
      return out;
    }
  }
  return "null";
}

const char* BinOpName(BinOp op) {
  switch (op) {
    case BinOp::kEq: return "=";
    case BinOp::kNe: return "<>";
    case BinOp::kLt: return "<";
    case BinOp::kLe: return "<=";
    case BinOp::kGt: return ">";
    case BinOp::kGe: return ">=";
    case BinOp::kAdd: return "+";
    case BinOp::kSub: return "-";
    case BinOp::kMul: return "*";
    case BinOp::kDiv: return "/";
    case BinOp::kMod: return "%";
    case BinOp::kAnd: return "AND";
    case BinOp::kOr: return "OR";
    case BinOp::kLike: return "LIKE";
  }
  return "?op?";
}

std::string CanonSelect(const SelectStmt& stmt);

std::string CanonExpr(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return CanonLiteral(e.literal);
    case ExprKind::kColumnRef:
      return e.table.empty() ? Lower(e.name)
                             : Lower(e.table) + "." + Lower(e.name);
    case ExprKind::kBinary:
      return "(" + CanonExpr(*e.args[0]) + " " + BinOpName(e.bin_op) + " " +
             CanonExpr(*e.args[1]) + ")";
    case ExprKind::kUnary:
      switch (e.un_op) {
        case UnOp::kNot: return "(NOT " + CanonExpr(*e.args[0]) + ")";
        case UnOp::kNeg: return "(- " + CanonExpr(*e.args[0]) + ")";
        case UnOp::kIsNull:
          return "(" + CanonExpr(*e.args[0]) + " IS NULL)";
        case UnOp::kIsNotNull:
          return "(" + CanonExpr(*e.args[0]) + " IS NOT NULL)";
      }
      return "?un?";
    case ExprKind::kFunctionCall: {
      std::string out = Lower(e.name) + "(";
      if (e.distinct_arg) out += "DISTINCT ";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += CanonExpr(*e.args[i]);
      }
      return out + ")";
    }
    case ExprKind::kStar:
      return "*";
    case ExprKind::kIn: {
      std::string out = "(" + CanonExpr(*e.args[0]);
      out += e.negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < e.args.size(); ++i) {
        if (i > 1) out += ", ";
        out += CanonExpr(*e.args[i]);
      }
      return out + "))";
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      size_t i = 0;
      if (e.case_has_base) out += " " + CanonExpr(*e.args[i++]);
      size_t end = e.args.size() - (e.case_has_else ? 1 : 0);
      for (; i + 1 <= end; i += 2) {
        out += " WHEN " + CanonExpr(*e.args[i]) + " THEN " +
               CanonExpr(*e.args[i + 1]);
      }
      if (e.case_has_else) out += " ELSE " + CanonExpr(*e.args.back());
      return out + " END";
    }
    case ExprKind::kSubquery:
      return "(" + CanonSelect(*e.subquery) + ")";
    case ExprKind::kParameter:
      // Shape only: a bound parameter's value is an execution-time input,
      // not part of the statement's identity.
      return "?";
  }
  return "?expr?";
}

std::string CanonSelect(const SelectStmt& stmt) {
  std::string out = "SELECT";
  if (stmt.as_of_param != nullptr) {
    out += " AS OF ?";
  } else if (stmt.as_of != 0) {
    out += " AS OF " + std::to_string(stmt.as_of);
  }
  if (stmt.distinct) out += " DISTINCT";
  for (size_t i = 0; i < stmt.items.size(); ++i) {
    out += i == 0 ? " " : ", ";
    out += CanonExpr(*stmt.items[i].expr);
    if (!stmt.items[i].alias.empty()) {
      out += " AS " + Lower(stmt.items[i].alias);
    }
  }
  if (!stmt.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < stmt.from.size(); ++i) {
      if (i > 0) out += ", ";
      out += Lower(stmt.from[i].name);
      if (!stmt.from[i].alias.empty() &&
          !IdentEquals(stmt.from[i].alias, stmt.from[i].name)) {
        out += " " + Lower(stmt.from[i].alias);
      }
    }
  }
  if (stmt.where != nullptr) out += " WHERE " + CanonExpr(*stmt.where);
  if (!stmt.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < stmt.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += CanonExpr(*stmt.group_by[i]);
    }
  }
  if (stmt.having != nullptr) out += " HAVING " + CanonExpr(*stmt.having);
  if (!stmt.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < stmt.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += CanonExpr(*stmt.order_by[i].expr);
      if (stmt.order_by[i].desc) out += " DESC";
    }
  }
  if (stmt.limit >= 0) out += " LIMIT " + std::to_string(stmt.limit);
  return out;
}

std::string CanonSchema(const TableSchema& schema) {
  std::string out = "(";
  for (size_t i = 0; i < schema.columns.size(); ++i) {
    if (i > 0) out += ", ";
    out += Lower(schema.columns[i].name);
    out += " ";
    out += ValueTypeName(schema.columns[i].type);
  }
  return out + ")";
}

struct StatementPrinter {
  std::string operator()(const SelectStmt& s) const { return CanonSelect(s); }
  std::string operator()(const CreateTableStmt& s) const {
    std::string out = "CREATE TABLE ";
    if (s.if_not_exists) out += "IF NOT EXISTS ";
    out += Lower(s.name);
    if (s.as_select != nullptr) {
      out += " AS " + CanonSelect(*s.as_select);
    } else {
      out += " " + CanonSchema(s.schema);
    }
    return out;
  }
  std::string operator()(const CreateIndexStmt& s) const {
    std::string out =
        "CREATE INDEX " + Lower(s.name) + " ON " + Lower(s.table) + " (";
    for (size_t i = 0; i < s.columns.size(); ++i) {
      if (i > 0) out += ", ";
      out += Lower(s.columns[i]);
    }
    return out + ")";
  }
  std::string operator()(const DropStmt& s) const {
    std::string out = s.is_index ? "DROP INDEX " : "DROP TABLE ";
    if (s.if_exists) out += "IF EXISTS ";
    return out + Lower(s.name);
  }
  std::string operator()(const InsertStmt& s) const {
    std::string out = "INSERT INTO " + Lower(s.table);
    if (!s.columns.empty()) {
      out += " (";
      for (size_t i = 0; i < s.columns.size(); ++i) {
        if (i > 0) out += ", ";
        out += Lower(s.columns[i]);
      }
      out += ")";
    }
    if (s.select != nullptr) return out + " " + CanonSelect(*s.select);
    out += " VALUES ";
    for (size_t r = 0; r < s.rows.size(); ++r) {
      if (r > 0) out += ", ";
      out += "(";
      for (size_t i = 0; i < s.rows[r].size(); ++i) {
        if (i > 0) out += ", ";
        out += CanonExpr(*s.rows[r][i]);
      }
      out += ")";
    }
    return out;
  }
  std::string operator()(const UpdateStmt& s) const {
    std::string out = "UPDATE " + Lower(s.table) + " SET ";
    for (size_t i = 0; i < s.assignments.size(); ++i) {
      if (i > 0) out += ", ";
      out += Lower(s.assignments[i].first) + " = " +
             CanonExpr(*s.assignments[i].second);
    }
    if (s.where != nullptr) out += " WHERE " + CanonExpr(*s.where);
    return out;
  }
  std::string operator()(const DeleteStmt& s) const {
    std::string out = "DELETE FROM " + Lower(s.table);
    if (s.where != nullptr) out += " WHERE " + CanonExpr(*s.where);
    return out;
  }
  std::string operator()(const BeginStmt&) const { return "BEGIN"; }
  std::string operator()(const CommitStmt& s) const {
    return s.with_snapshot ? "COMMIT WITH SNAPSHOT" : "COMMIT";
  }
  std::string operator()(const RollbackStmt&) const { return "ROLLBACK"; }
  std::string operator()(const ExplainStmt& s) const {
    return "EXPLAIN " + CanonSelect(*s.select);
  }
};

}  // namespace

std::string CanonicalizeStatement(const Statement& stmt) {
  return std::visit(StatementPrinter{}, stmt);
}

Result<std::string> CanonicalizeSql(std::string_view sql) {
  RQL_ASSIGN_OR_RETURN(std::vector<Statement> stmts, ParseSql(sql));
  std::string out;
  for (size_t i = 0; i < stmts.size(); ++i) {
    if (i > 0) out += "; ";
    out += CanonicalizeStatement(stmts[i]);
  }
  return out;
}

uint64_t Fnv1a64(std::string_view data, uint64_t seed) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

Result<uint64_t> QueryFingerprint(std::string_view sql,
                                  std::string_view salt) {
  RQL_ASSIGN_OR_RETURN(std::string canon, CanonicalizeSql(sql));
  uint64_t h = Fnv1a64(canon);
  h = Fnv1a64("|", h);
  return Fnv1a64(salt, h);
}

}  // namespace rql::sql

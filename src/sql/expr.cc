#include "sql/expr.h"

#include <cmath>

namespace rql::sql {

void BindScope::Add(std::string_view alias, const TableSchema* schema) {
  entries.push_back(Entry{IdentLower(alias), schema, total_columns});
  total_columns += static_cast<int>(schema->size());
}

Status BindExpr(Expr* expr, const BindScope& scope) {
  if (expr->kind == ExprKind::kColumnRef) {
    int found = -1;
    for (const BindScope::Entry& entry : scope.entries) {
      if (!expr->table.empty() &&
          !IdentEquals(expr->table, entry.alias)) {
        continue;
      }
      int idx = entry.schema->FindColumn(expr->name);
      if (idx >= 0) {
        if (found >= 0) {
          return Status::InvalidArgument("ambiguous column: " + expr->name);
        }
        found = entry.offset + idx;
      }
    }
    if (found < 0) {
      return Status::InvalidArgument("no such column: " +
                                     (expr->table.empty()
                                          ? expr->name
                                          : expr->table + "." + expr->name));
    }
    expr->column_index = found;
    return Status::OK();
  }
  for (ExprPtr& arg : expr->args) {
    RQL_RETURN_IF_ERROR(BindExpr(arg.get(), scope));
  }
  return Status::OK();
}

bool ContainsAggregate(const Expr& expr) {
  if (expr.kind == ExprKind::kFunctionCall && IsAggregateFunction(expr.name)) {
    return true;
  }
  for (const ExprPtr& arg : expr.args) {
    if (ContainsAggregate(*arg)) return true;
  }
  return false;
}

void CollectAggregates(Expr* expr, std::vector<Expr*>* out) {
  if (expr->kind == ExprKind::kFunctionCall &&
      IsAggregateFunction(expr->name)) {
    out->push_back(expr);
    return;  // aggregates do not nest
  }
  for (ExprPtr& arg : expr->args) {
    CollectAggregates(arg.get(), out);
  }
}

bool ValueIsTrue(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull: return false;
    case ValueType::kInteger: return v.integer() != 0;
    case ValueType::kReal: return v.real() != 0.0;
    case ValueType::kText: return false;  // SQLite: non-numeric text is 0
  }
  return false;
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative glob with backtracking on '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Result<Value> EvalComparison(BinOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (op == BinOp::kLike) {
    return Value::Integer(LikeMatch(lhs.ToString(), rhs.ToString()) ? 1 : 0);
  }
  int c = CompareValues(lhs, rhs);
  bool result = false;
  switch (op) {
    case BinOp::kEq: result = c == 0; break;
    case BinOp::kNe: result = c != 0; break;
    case BinOp::kLt: result = c < 0; break;
    case BinOp::kLe: result = c <= 0; break;
    case BinOp::kGt: result = c > 0; break;
    case BinOp::kGe: result = c >= 0; break;
    default: return Status::Internal("not a comparison");
  }
  return Value::Integer(result ? 1 : 0);
}

Result<Value> EvalArithmetic(BinOp op, const Value& lhs, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  if (!lhs.is_numeric() || !rhs.is_numeric()) {
    return Status::InvalidArgument("arithmetic on non-numeric values");
  }
  bool both_int = lhs.type() == ValueType::kInteger &&
                  rhs.type() == ValueType::kInteger;
  if (both_int && op != BinOp::kDiv) {
    int64_t a = lhs.integer(), b = rhs.integer();
    switch (op) {
      case BinOp::kAdd: return Value::Integer(a + b);
      case BinOp::kSub: return Value::Integer(a - b);
      case BinOp::kMul: return Value::Integer(a * b);
      case BinOp::kMod:
        if (b == 0) return Value::Null();
        return Value::Integer(a % b);
      default: break;
    }
  }
  double a = lhs.AsDouble(), b = rhs.AsDouble();
  switch (op) {
    case BinOp::kAdd: return Value::Real(a + b);
    case BinOp::kSub: return Value::Real(a - b);
    case BinOp::kMul: return Value::Real(a * b);
    case BinOp::kDiv:
      if (b == 0.0) return Value::Null();
      if (both_int && lhs.integer() % rhs.integer() == 0) {
        return Value::Integer(lhs.integer() / rhs.integer());
      }
      return Value::Real(a / b);
    case BinOp::kMod:
      if (b == 0.0) return Value::Null();
      return Value::Real(std::fmod(a, b));
    default:
      return Status::Internal("not arithmetic");
  }
}

}  // namespace

bool EvalBatchSupported(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
    case ExprKind::kParameter:
    case ExprKind::kColumnRef:
      return true;
    case ExprKind::kUnary:
      return EvalBatchSupported(*expr.args[0]);
    case ExprKind::kBinary:
      return EvalBatchSupported(*expr.args[0]) &&
             EvalBatchSupported(*expr.args[1]);
    default:
      return false;
  }
}

Status EvalBatch(const Expr& expr, const Row* rows, const uint32_t* sel,
                 size_t count, std::vector<Value>* out) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      out->assign(count, expr.literal);
      return Status::OK();

    case ExprKind::kParameter:
      if (!expr.param_bound) {
        return Status::InvalidArgument(
            "unbound parameter ?" + std::to_string(expr.param_index));
      }
      out->assign(count, expr.literal);
      return Status::OK();

    case ExprKind::kColumnRef: {
      out->resize(count);
      int idx = expr.column_index;
      for (size_t i = 0; i < count; ++i) {
        const Row& row = rows[sel[i]];
        if (idx < 0 || idx >= static_cast<int>(row.size())) {
          return Status::Internal("unbound column reference: " + expr.name);
        }
        (*out)[i] = row[idx];
      }
      return Status::OK();
    }

    case ExprKind::kUnary: {
      std::vector<Value> in;
      RQL_RETURN_IF_ERROR(EvalBatch(*expr.args[0], rows, sel, count, &in));
      out->resize(count);
      for (size_t i = 0; i < count; ++i) {
        const Value& v = in[i];
        if (expr.un_op == UnOp::kIsNull || expr.un_op == UnOp::kIsNotNull) {
          bool is_null = v.is_null();
          (*out)[i] = Value::Integer(
              (expr.un_op == UnOp::kIsNull ? is_null : !is_null) ? 1 : 0);
        } else if (expr.un_op == UnOp::kNot) {
          (*out)[i] = v.is_null() ? Value::Null()
                                  : Value::Integer(ValueIsTrue(v) ? 0 : 1);
        } else {  // kNeg
          if (v.is_null()) {
            (*out)[i] = Value::Null();
          } else if (v.type() == ValueType::kInteger) {
            (*out)[i] = Value::Integer(-v.integer());
          } else if (v.type() == ValueType::kReal) {
            (*out)[i] = Value::Real(-v.real());
          } else {
            return Status::InvalidArgument("cannot negate a text value");
          }
        }
      }
      return Status::OK();
    }

    case ExprKind::kBinary: {
      if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
        bool is_and = expr.bin_op == BinOp::kAnd;
        std::vector<Value> lhs;
        RQL_RETURN_IF_ERROR(
            EvalBatch(*expr.args[0], rows, sel, count, &lhs));
        // The right operand runs only over the rows the left side does
        // not decide — the batch form of the scalar short-circuit.
        std::vector<uint32_t> sub;
        std::vector<uint32_t> sub_pos;
        for (size_t i = 0; i < count; ++i) {
          const Value& l = lhs[i];
          if (!l.is_null() && ValueIsTrue(l) != is_and) continue;
          sub.push_back(sel[i]);
          sub_pos.push_back(static_cast<uint32_t>(i));
        }
        std::vector<Value> rhs;
        RQL_RETURN_IF_ERROR(
            EvalBatch(*expr.args[1], rows, sub.data(), sub.size(), &rhs));
        out->assign(count, Value::Integer(is_and ? 0 : 1));
        for (size_t j = 0; j < sub.size(); ++j) {
          const Value& l = lhs[sub_pos[j]];
          const Value& r = rhs[j];
          Value* slot = &(*out)[sub_pos[j]];
          if (!r.is_null() && ValueIsTrue(r) != is_and) {
            *slot = Value::Integer(is_and ? 0 : 1);
          } else if (l.is_null() || r.is_null()) {
            *slot = Value::Null();
          } else {
            *slot = Value::Integer(is_and ? 1 : 0);
          }
        }
        return Status::OK();
      }
      std::vector<Value> lhs, rhs;
      RQL_RETURN_IF_ERROR(EvalBatch(*expr.args[0], rows, sel, count, &lhs));
      RQL_RETURN_IF_ERROR(EvalBatch(*expr.args[1], rows, sel, count, &rhs));
      bool comparison = false;
      switch (expr.bin_op) {
        case BinOp::kEq: case BinOp::kNe: case BinOp::kLt: case BinOp::kLe:
        case BinOp::kGt: case BinOp::kGe: case BinOp::kLike:
          comparison = true;
          break;
        default:
          break;
      }
      out->resize(count);
      for (size_t i = 0; i < count; ++i) {
        Result<Value> v =
            comparison ? EvalComparison(expr.bin_op, lhs[i], rhs[i])
                       : EvalArithmetic(expr.bin_op, lhs[i], rhs[i]);
        if (!v.ok()) return v.status();
        (*out)[i] = std::move(*v);
      }
      return Status::OK();
    }

    default:
      return Status::Internal("expression not supported by EvalBatch");
  }
}

Result<Value> EvalExpr(const Expr& expr, const EvalContext& ctx) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;

    case ExprKind::kParameter:
      if (!expr.param_bound) {
        return Status::InvalidArgument(
            "unbound parameter ?" + std::to_string(expr.param_index));
      }
      return expr.literal;

    case ExprKind::kColumnRef: {
      if (ctx.row == nullptr || expr.column_index < 0 ||
          expr.column_index >= static_cast<int>(ctx.row->size())) {
        return Status::Internal("unbound column reference: " + expr.name);
      }
      return (*ctx.row)[expr.column_index];
    }

    case ExprKind::kStar:
      return Status::InvalidArgument("'*' is not valid here");

    case ExprKind::kUnary: {
      if (expr.un_op == UnOp::kIsNull || expr.un_op == UnOp::kIsNotNull) {
        RQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], ctx));
        bool is_null = v.is_null();
        return Value::Integer(
            (expr.un_op == UnOp::kIsNull ? is_null : !is_null) ? 1 : 0);
      }
      RQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.args[0], ctx));
      if (expr.un_op == UnOp::kNot) {
        if (v.is_null()) return Value::Null();
        return Value::Integer(ValueIsTrue(v) ? 0 : 1);
      }
      // kNeg
      if (v.is_null()) return Value::Null();
      if (v.type() == ValueType::kInteger) return Value::Integer(-v.integer());
      if (v.type() == ValueType::kReal) return Value::Real(-v.real());
      return Status::InvalidArgument("cannot negate a text value");
    }

    case ExprKind::kBinary: {
      // Kleene three-valued AND/OR with short-circuiting.
      if (expr.bin_op == BinOp::kAnd || expr.bin_op == BinOp::kOr) {
        RQL_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.args[0], ctx));
        bool is_and = expr.bin_op == BinOp::kAnd;
        if (!lhs.is_null()) {
          bool lt = ValueIsTrue(lhs);
          if (is_and && !lt) return Value::Integer(0);
          if (!is_and && lt) return Value::Integer(1);
        }
        RQL_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.args[1], ctx));
        if (!rhs.is_null()) {
          bool rt = ValueIsTrue(rhs);
          if (is_and && !rt) return Value::Integer(0);
          if (!is_and && rt) return Value::Integer(1);
        }
        if (lhs.is_null() || rhs.is_null()) return Value::Null();
        return Value::Integer(is_and ? 1 : 0);
      }
      RQL_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.args[0], ctx));
      RQL_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.args[1], ctx));
      switch (expr.bin_op) {
        case BinOp::kEq: case BinOp::kNe: case BinOp::kLt: case BinOp::kLe:
        case BinOp::kGt: case BinOp::kGe: case BinOp::kLike:
          return EvalComparison(expr.bin_op, lhs, rhs);
        default:
          return EvalArithmetic(expr.bin_op, lhs, rhs);
      }
    }

    case ExprKind::kIn: {
      // SQL semantics: TRUE on a match; otherwise NULL if the operand or
      // any candidate is NULL, else FALSE. NOT IN negates with 3VL.
      RQL_ASSIGN_OR_RETURN(Value needle, EvalExpr(*expr.args[0], ctx));
      bool saw_null = needle.is_null();
      bool matched = false;
      auto consider = [&](const Value& candidate) {
        if (candidate.is_null()) {
          saw_null = true;
        } else if (!matched && !needle.is_null() &&
                   CompareValues(needle, candidate) == 0) {
          matched = true;
        }
      };
      if (expr.args.size() == 2 &&
          expr.args[1]->kind == ExprKind::kSubquery) {
        if (ctx.subqueries == nullptr) {
          return Status::NotSupported("subquery not supported here");
        }
        RQL_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                             ctx.subqueries->RunSubquery(*expr.args[1]));
        for (const Row& row : *rows) {
          if (row.size() != 1) {
            return Status::InvalidArgument(
                "IN subquery must return a single column");
          }
          if (matched) break;
          consider(row[0]);
        }
      } else if (!needle.is_null()) {
        for (size_t i = 1; i < expr.args.size(); ++i) {
          RQL_ASSIGN_OR_RETURN(Value candidate,
                               EvalExpr(*expr.args[i], ctx));
          consider(candidate);
          if (matched) break;
        }
      }
      if (matched) return Value::Integer(expr.negated ? 0 : 1);
      if (saw_null) return Value::Null();
      return Value::Integer(expr.negated ? 1 : 0);
    }

    case ExprKind::kSubquery: {
      // Scalar position: first column of the single result row.
      if (ctx.subqueries == nullptr) {
        return Status::NotSupported("subquery not supported here");
      }
      RQL_ASSIGN_OR_RETURN(const std::vector<Row>* rows,
                           ctx.subqueries->RunSubquery(expr));
      if (rows->empty()) return Value::Null();
      if (rows->size() > 1) {
        return Status::InvalidArgument(
            "scalar subquery returned more than one row");
      }
      if ((*rows)[0].size() != 1) {
        return Status::InvalidArgument(
            "scalar subquery must return a single column");
      }
      return (*rows)[0][0];
    }

    case ExprKind::kCase: {
      size_t i = 0;
      Value base;
      if (expr.case_has_base) {
        RQL_ASSIGN_OR_RETURN(base, EvalExpr(*expr.args[0], ctx));
        i = 1;
      }
      size_t end = expr.args.size() - (expr.case_has_else ? 1 : 0);
      for (; i + 1 < end + 1 && i + 1 < expr.args.size(); i += 2) {
        RQL_ASSIGN_OR_RETURN(Value when, EvalExpr(*expr.args[i], ctx));
        bool hit = expr.case_has_base
                       ? (!when.is_null() && !base.is_null() &&
                          CompareValues(base, when) == 0)
                       : ValueIsTrue(when);
        if (hit) return EvalExpr(*expr.args[i + 1], ctx);
      }
      if (expr.case_has_else) {
        return EvalExpr(*expr.args.back(), ctx);
      }
      return Value::Null();
    }

    case ExprKind::kFunctionCall: {
      if (IsAggregateFunction(expr.name)) {
        // During group output the aggregation pipeline supplies values.
        if (ctx.agg_nodes != nullptr) {
          for (size_t i = 0; i < ctx.agg_nodes->size(); ++i) {
            if ((*ctx.agg_nodes)[i] == &expr) return (*ctx.agg_values)[i];
          }
        }
        return Status::InvalidArgument("aggregate " + expr.name +
                                       " used outside an aggregation");
      }
      if (ctx.functions == nullptr) {
        return Status::Internal("no function registry in scope");
      }
      const FunctionDef* def = ctx.functions->Find(expr.name);
      if (def == nullptr) {
        return Status::InvalidArgument("no such function: " + expr.name);
      }
      int argc = static_cast<int>(expr.args.size());
      if (argc < def->min_args ||
          (def->max_args >= 0 && argc > def->max_args)) {
        return Status::InvalidArgument("wrong argument count for " +
                                       expr.name);
      }
      std::vector<Value> args;
      args.reserve(expr.args.size());
      for (const ExprPtr& arg : expr.args) {
        RQL_ASSIGN_OR_RETURN(Value v, EvalExpr(*arg, ctx));
        args.push_back(std::move(v));
      }
      return def->fn(args);
    }
  }
  return Status::Internal("bad expression kind");
}

}  // namespace rql::sql

#ifndef RQL_COMMON_STATUS_H_
#define RQL_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace rql {

/// Error categories used across the library. Modeled on the Status idiom
/// used by LevelDB/RocksDB/Arrow: library code never throws; every fallible
/// operation returns a Status (or a Result<T>, see below).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kIoError,
  kCorruption,
  kNotSupported,
  kAborted,
  kOutOfRange,
  kInternal,
};

/// Returns a short human-readable name for `code`, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }

  /// Formats as "Code: message" ("OK" when ok()).
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// A Status or a value of type T. `value()` must only be accessed when
/// `ok()`; this is checked in debug builds.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or an error Status keeps call sites
  /// terse (`return 42;` / `return Status::NotFound(...)`).
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    // An OK status without a value would make value() unusable.
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace rql

/// Propagates a non-OK Status to the caller.
#define RQL_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::rql::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                   \
  } while (false)

#define RQL_CONCAT_IMPL(x, y) x##y
#define RQL_CONCAT(x, y) RQL_CONCAT_IMPL(x, y)

/// Evaluates `rexpr` (a Result<T>), propagating the error Status on failure,
/// otherwise assigning the value to `lhs`. `lhs` may include a declaration:
///   RQL_ASSIGN_OR_RETURN(auto file, env->NewFile("x"));
#define RQL_ASSIGN_OR_RETURN(lhs, rexpr)                           \
  auto RQL_CONCAT(_result_, __LINE__) = (rexpr);                   \
  if (!RQL_CONCAT(_result_, __LINE__).ok())                        \
    return RQL_CONCAT(_result_, __LINE__).status();                \
  lhs = std::move(RQL_CONCAT(_result_, __LINE__)).value()

#endif  // RQL_COMMON_STATUS_H_

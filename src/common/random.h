#ifndef RQL_COMMON_RANDOM_H_
#define RQL_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace rql {

/// Deterministic xorshift128+ pseudo-random generator. All data generation
/// (TPC-H tables, refresh streams, test inputs) goes through this class so
/// that runs are reproducible from a seed.
class Random {
 public:
  explicit Random(uint64_t seed = 42) {
    s0_ = seed ? seed : 0x9E3779B97F4A7C15ull;
    s1_ = s0_ ^ 0xBF58476D1CE4E5B9ull;
    // Warm up: the first few outputs of xorshift are correlated with the
    // seed bits.
    for (int i = 0; i < 8; ++i) Next();
  }

  uint64_t Next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi] inclusive.
  int64_t UniformRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  double NextDouble() {
    return static_cast<double>(Next() >> 11) / static_cast<double>(1ull << 53);
  }

  /// Returns true with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Random lowercase ASCII string of the given length.
  std::string NextString(size_t len) {
    std::string s(len, 'a');
    for (size_t i = 0; i < len; ++i) {
      s[i] = static_cast<char>('a' + Uniform(26));
    }
    return s;
  }

 private:
  uint64_t s0_;
  uint64_t s1_;
};

}  // namespace rql

#endif  // RQL_COMMON_RANDOM_H_

#ifndef RQL_COMMON_CLEANUP_H_
#define RQL_COMMON_CLEANUP_H_

#include <functional>
#include <utility>
#include <vector>

namespace rql {

/// A move-only bundle of deferred actions, run in reverse order on
/// destruction. Components return one from registration-style calls
/// (e.g. `RegisterMetrics`) so the deregistration is scoped to the
/// handle instead of relying on the caller to remember a manual
/// teardown — the classic dangling-gauge footgun where a callback
/// captured `this` outlives the object it reads.
///
/// Handles compose: `Merge` folds a child handle into a parent so one
/// object can own the lifetime of everything it registered, including
/// registrations made by its sub-components.
class ScopedCleanup {
 public:
  ScopedCleanup() = default;
  explicit ScopedCleanup(std::function<void()> fn) { Add(std::move(fn)); }

  ScopedCleanup(ScopedCleanup&& other) noexcept
      : actions_(std::move(other.actions_)) {
    other.actions_.clear();
  }
  ScopedCleanup& operator=(ScopedCleanup&& other) noexcept {
    if (this != &other) {
      RunAll();
      actions_ = std::move(other.actions_);
      other.actions_.clear();
    }
    return *this;
  }

  ScopedCleanup(const ScopedCleanup&) = delete;
  ScopedCleanup& operator=(const ScopedCleanup&) = delete;

  ~ScopedCleanup() { RunAll(); }

  /// Defers `fn` to run when this handle is destroyed (or reassigned).
  void Add(std::function<void()> fn) {
    if (fn) actions_.push_back(std::move(fn));
  }

  /// Takes over `child`'s deferred actions; `child` becomes empty.
  void Merge(ScopedCleanup child) {
    for (auto& fn : child.actions_) actions_.push_back(std::move(fn));
    child.actions_.clear();
  }

  /// Runs the deferred actions now (reverse order) and empties the handle.
  void Reset() { RunAll(); }

  /// Drops the deferred actions without running them.
  void Release() { actions_.clear(); }

  bool empty() const { return actions_.empty(); }

 private:
  void RunAll() {
    for (auto it = actions_.rbegin(); it != actions_.rend(); ++it) (*it)();
    actions_.clear();
  }

  std::vector<std::function<void()>> actions_;
};

}  // namespace rql

#endif  // RQL_COMMON_CLEANUP_H_

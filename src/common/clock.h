#ifndef RQL_COMMON_CLOCK_H_
#define RQL_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace rql {

/// Returns the current monotonic time in microseconds. Used for all cost
/// breakdown instrumentation so that measurements are comparable.
inline int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Accumulates elapsed wall-clock time into a counter on destruction.
/// Usage:
///   { ScopedTimer t(&stats.query_eval_us); ... work ... }
class ScopedTimer {
 public:
  explicit ScopedTimer(int64_t* sink) : sink_(sink), start_(NowMicros()) {}
  ~ScopedTimer() { *sink_ += NowMicros() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  int64_t* sink_;
  int64_t start_;
};

/// Simple stopwatch for ad-hoc measurements in benchmarks and examples.
class Stopwatch {
 public:
  Stopwatch() : start_(NowMicros()) {}
  void Reset() { start_ = NowMicros(); }
  int64_t ElapsedMicros() const { return NowMicros() - start_; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedMicros()) / 1e6;
  }

 private:
  int64_t start_;
};

}  // namespace rql

#endif  // RQL_COMMON_CLOCK_H_

#include "storage/page_store.h"

#include <cstring>
#include <string>

namespace rql::storage {

namespace {

constexpr uint32_t kMagic = 0x52514C31;      // "RQL1"
constexpr uint32_t kWalMagic = 0x57414C31;   // "WAL1"
constexpr uint32_t kWalCommit = 0x434D5431;  // "CMT1"

// Header page layout (page 0).
constexpr uint32_t kMagicOffset = 0;
constexpr uint32_t kPageCountOffset = 4;
constexpr uint32_t kFreeHeadOffset = 8;
constexpr uint32_t kFreeCountOffset = 12;
constexpr uint32_t kRootsOffset = 16;

uint64_t Fnv1a(const char* data, size_t n, uint64_t seed = 0xCBF29CE484222325ull) {
  uint64_t hash = seed;
  for (size_t i = 0; i < n; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

Result<std::unique_ptr<PageStore>> PageStore::Open(Env* env,
                                                   const std::string& name) {
  auto store = std::unique_ptr<PageStore>(new PageStore());
  RQL_ASSIGN_OR_RETURN(store->file_, env->OpenFile(name));
  RQL_ASSIGN_OR_RETURN(store->wal_, env->OpenFile(name + ".wal"));
  RQL_RETURN_IF_ERROR(store->RecoverWal());
  if (store->file_->Size() == 0) {
    // Fresh file: commit an empty header.
    store->page_count_ = 1;
    store->free_head_ = kInvalidPageId;
    store->free_count_ = 0;
    store->StageHeader();
    RQL_RETURN_IF_ERROR(store->CommitDirty());
  } else {
    RQL_RETURN_IF_ERROR(store->LoadHeader());
    store->committed_page_count_ = store->page_count_;
  }
  return store;
}

Status PageStore::RecoverWal() {
  uint64_t size = wal_->Size();
  if (size == 0) return Status::OK();
  // Header: magic, count, crc.
  struct WalHeader {
    uint32_t magic;
    uint32_t count;
    uint64_t crc;
  } header;
  auto discard = [this]() { return wal_->Truncate(0); };
  if (size < sizeof(header)) return discard();
  RQL_RETURN_IF_ERROR(wal_->Read(0, sizeof(header),
                                 reinterpret_cast<char*>(&header)));
  if (header.magic != kWalMagic) return discard();
  uint64_t payload_bytes =
      static_cast<uint64_t>(header.count) * (4 + kPageSize);
  uint64_t expected = sizeof(header) + payload_bytes + 4;
  if (size < expected) return discard();  // torn batch: never committed
  std::string payload(payload_bytes, '\0');
  RQL_RETURN_IF_ERROR(wal_->Read(sizeof(header), payload_bytes,
                                 payload.data()));
  uint32_t commit = 0;
  RQL_RETURN_IF_ERROR(wal_->Read(sizeof(header) + payload_bytes, 4,
                                 reinterpret_cast<char*>(&commit)));
  if (commit != kWalCommit ||
      Fnv1a(payload.data(), payload.size()) != header.crc) {
    return discard();
  }
  // A fully committed batch: (re)apply it.
  const char* ptr = payload.data();
  for (uint32_t i = 0; i < header.count; ++i) {
    uint32_t id;
    std::memcpy(&id, ptr, 4);
    RQL_RETURN_IF_ERROR(file_->Write(static_cast<uint64_t>(id) * kPageSize,
                                     kPageSize, ptr + 4));
    ptr += 4 + kPageSize;
  }
  RQL_RETURN_IF_ERROR(file_->Sync());
  return wal_->Truncate(0);
}

Status PageStore::LoadHeader() {
  Page header;
  RQL_RETURN_IF_ERROR(file_->Read(0, kPageSize, header.data));
  if (header.ReadU32(kMagicOffset) != kMagic) {
    return Status::Corruption("bad page store magic");
  }
  page_count_ = header.ReadU32(kPageCountOffset);
  free_head_ = header.ReadU32(kFreeHeadOffset);
  free_count_ = header.ReadU32(kFreeCountOffset);
  for (uint32_t i = 0; i < kNumRoots; ++i) {
    roots_[i] = header.ReadU32(kRootsOffset + i * 4);
  }
  return Status::OK();
}

void PageStore::StageHeader() {
  Page header;
  header.Zero();
  header.WriteU32(kMagicOffset, kMagic);
  header.WriteU32(kPageCountOffset, page_count_);
  header.WriteU32(kFreeHeadOffset, free_head_);
  header.WriteU32(kFreeCountOffset, free_count_);
  for (uint32_t i = 0; i < kNumRoots; ++i) {
    header.WriteU32(kRootsOffset + i * 4, roots_[i]);
  }
  dirty_[0] = header;
}

Status PageStore::ReadThrough(PageId id, Page* page) const {
  auto it = dirty_.find(id);
  if (it != dirty_.end()) {
    *page = it->second;
    return Status::OK();
  }
  return file_->Read(static_cast<uint64_t>(id) * kPageSize, kPageSize,
                     page->data);
}

Status PageStore::MaybeAutoCommit() {
  if (in_batch_) return Status::OK();
  return CommitDirty();
}

Status PageStore::CommitDirty() {
  if (dirty_.empty()) return Status::OK();
  if (pre_commit_hook_) RQL_RETURN_IF_ERROR(pre_commit_hook_());
  // 1. Serialize the batch.
  struct WalHeader {
    uint32_t magic;
    uint32_t count;
    uint64_t crc;
  } header;
  std::string payload;
  payload.reserve(dirty_.size() * (4 + kPageSize));
  for (const auto& [id, page] : dirty_) {
    payload.append(reinterpret_cast<const char*>(&id), 4);
    payload.append(page.data, kPageSize);
  }
  header.magic = kWalMagic;
  header.count = static_cast<uint32_t>(dirty_.size());
  header.crc = Fnv1a(payload.data(), payload.size());
  std::string record(reinterpret_cast<const char*>(&header), sizeof(header));
  record += payload;
  record.append(reinterpret_cast<const char*>(&kWalCommit), 4);

  // 2. WAL write + sync: the batch becomes durable and atomic here. On
  // failure the batch never became durable; drop any partial WAL record
  // (best effort — the WAL is empty between commits) so a later commit or
  // reopen cannot trip over a torn batch, and keep the dirty set so the
  // caller can rollback or retry.
  uint64_t wal_offset = 0;
  Status wal_status = wal_->Append(record.size(), record.data(), &wal_offset);
  if (wal_status.ok()) wal_status = wal_->Sync();
  if (!wal_status.ok()) {
    (void)wal_->Truncate(0);
    return wal_status;
  }

  // 3. Apply to the page file, then retire the WAL.
  for (const auto& [id, page] : dirty_) {
    RQL_RETURN_IF_ERROR(file_->Write(static_cast<uint64_t>(id) * kPageSize,
                                     kPageSize, page.data));
  }
  RQL_RETURN_IF_ERROR(file_->Sync());
  RQL_RETURN_IF_ERROR(wal_->Truncate(0));
  dirty_.clear();
  committed_page_count_ = page_count_;
  return Status::OK();
}

Status PageStore::BeginBatch() {
  if (in_batch_) return Status::InvalidArgument("batch already active");
  if (!dirty_.empty()) {
    return Status::Internal("dirty pages outside a batch");
  }
  in_batch_ = true;
  return Status::OK();
}

Status PageStore::CommitBatch() {
  if (!in_batch_) return Status::InvalidArgument("no active batch");
  in_batch_ = false;
  Status s = CommitDirty();
  if (!s.ok()) {
    // The store must stay usable after a failed commit: drop the batch and
    // restore the in-memory header from the file (best effort). If the
    // failure hit after the WAL became durable (during apply), reopening
    // replays the WAL, so the batch is not lost — merely not visible to
    // this process.
    dirty_.clear();
    (void)LoadHeader();
  }
  return s;
}

Status PageStore::RollbackBatch() {
  if (!in_batch_) return Status::InvalidArgument("no active batch");
  in_batch_ = false;
  dirty_.clear();
  // Restore the in-memory header state from the committed file image.
  return LoadHeader();
}

Result<PageId> PageStore::AllocatePage() {
  PageId id;
  if (free_head_ != kInvalidPageId) {
    id = free_head_;
    Page page;
    RQL_RETURN_IF_ERROR(ReadThrough(id, &page));
    free_head_ = page.ReadU32(0);
    --free_count_;
  } else {
    id = page_count_;
    ++page_count_;
  }
  Page zero;
  zero.Zero();
  dirty_[id] = zero;
  StageHeader();
  RQL_RETURN_IF_ERROR(MaybeAutoCommit());
  return id;
}

Status PageStore::FreePage(PageId id) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("FreePage: bad page id");
  }
  Page page;
  page.Zero();
  page.WriteU32(0, free_head_);
  dirty_[id] = page;
  free_head_ = id;
  ++free_count_;
  StageHeader();
  return MaybeAutoCommit();
}

Status PageStore::ReadPage(PageId id, Page* page) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("ReadPage: bad page id " +
                                   std::to_string(id));
  }
  return ReadThrough(id, page);
}

Status PageStore::WritePage(PageId id, const Page& page) {
  if (id == kInvalidPageId || id >= page_count_) {
    return Status::InvalidArgument("WritePage: bad page id " +
                                   std::to_string(id));
  }
  dirty_[id] = page;
  return MaybeAutoCommit();
}

Result<PageId> PageStore::GetRoot(uint32_t slot) const {
  if (slot >= kNumRoots) {
    return Status::InvalidArgument("GetRoot: bad slot");
  }
  return roots_[slot];
}

Status PageStore::SetRoot(uint32_t slot, PageId id) {
  if (slot >= kNumRoots) {
    return Status::InvalidArgument("SetRoot: bad slot");
  }
  roots_[slot] = id;
  StageHeader();
  return MaybeAutoCommit();
}

}  // namespace rql::storage

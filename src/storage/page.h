#ifndef RQL_STORAGE_PAGE_H_
#define RQL_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>

namespace rql::storage {

/// Fixed database page size. All state — heap tables, B+-tree index nodes,
/// the catalog, the free list — lives in pages of this size, and Retro
/// snapshots are captured at this granularity.
inline constexpr uint32_t kPageSize = 4096;

/// Logical page number within a database file. Page 0 is the file header.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = 0;

/// A page-sized buffer with helpers for fixed-width little-endian fields.
/// Deliberately a passive byte container: layout invariants belong to the
/// structures stored in pages (heap page, B+-tree node, header).
struct Page {
  char data[kPageSize];

  void Zero() { std::memset(data, 0, kPageSize); }

  uint32_t ReadU32(uint32_t offset) const {
    uint32_t v;
    std::memcpy(&v, data + offset, sizeof(v));
    return v;
  }
  void WriteU32(uint32_t offset, uint32_t v) {
    std::memcpy(data + offset, &v, sizeof(v));
  }
  uint64_t ReadU64(uint32_t offset) const {
    uint64_t v;
    std::memcpy(&v, data + offset, sizeof(v));
    return v;
  }
  void WriteU64(uint32_t offset, uint64_t v) {
    std::memcpy(data + offset, &v, sizeof(v));
  }
  uint16_t ReadU16(uint32_t offset) const {
    uint16_t v;
    std::memcpy(&v, data + offset, sizeof(v));
    return v;
  }
  void WriteU16(uint32_t offset, uint16_t v) {
    std::memcpy(data + offset, &v, sizeof(v));
  }
};

static_assert(sizeof(Page) == kPageSize);

}  // namespace rql::storage

#endif  // RQL_STORAGE_PAGE_H_

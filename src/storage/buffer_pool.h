#ifndef RQL_STORAGE_BUFFER_POOL_H_
#define RQL_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/cleanup.h"
#include "common/status.h"
#include "storage/page.h"

namespace rql::storage {

/// Counters exposed by the buffer pool. The Retro layer uses these to
/// attribute snapshot-query cost: a miss on a Pagelog-backed key corresponds
/// to one page fetched from the snapshot archive (Section 4 of the paper).
struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;
  /// Get calls that neither hit nor loaded: another thread was already
  /// loading the same key, so this call waited for that load instead of
  /// issuing a duplicate one (single-flight coalescing).
  int64_t coalesced_loads = 0;

  void Reset() { *this = BufferPoolStats{}; }

  void Add(const BufferPoolStats& o) {
    hits += o.hits;
    misses += o.misses;
    evictions += o.evictions;
    coalesced_loads += o.coalesced_loads;
  }
};

/// A ref-counted pin on a cached page. The page stays readable for the
/// lifetime of the pin even if the frame is evicted, overwritten or the
/// pool is cleared — eviction merely drops the pool's own reference.
/// Copyable and movable; an empty pin converts to false.
class PinnedPage {
 public:
  PinnedPage() = default;

  const Page* get() const { return page_.get(); }
  const Page& operator*() const { return *page_; }
  const Page* operator->() const { return page_.get(); }
  explicit operator bool() const { return page_ != nullptr; }

 private:
  friend class BufferPool;
  explicit PinnedPage(std::shared_ptr<const Page> page)
      : page_(std::move(page)) {}

  std::shared_ptr<const Page> page_;
};

/// A fixed-capacity, thread-safe LRU cache of pages keyed by an opaque
/// 64-bit key.
///
/// Keys are assigned by the caller; the Retro snapshot cache keys pages by
/// their Pagelog offset, so a pre-state page shared by several snapshots
/// occupies a single frame and later snapshots hit in cache — the page
/// sharing effect the paper's Section 5.1 measures.
///
/// The pool is sharded: each shard owns its own mutex, LRU list and share
/// of the capacity, so concurrent readers on different keys do not contend.
/// LRU order is therefore approximate across the whole pool but exact
/// within a shard (pass `shards = 1` for exact global LRU). Loads are
/// single-flight: when several threads miss on the same key at once, one
/// runs the loader (outside any shard lock) and the rest wait for its
/// result, so a page shared by many concurrent snapshot readers is still
/// fetched from the archive exactly once.
class BufferPool {
 public:
  using Loader = std::function<Status(uint64_t key, Page* page)>;

  /// Per-call outcome of Get, for callers that attribute cost.
  struct GetOutcome {
    bool loaded = false;     // this call ran the loader (a true miss)
    bool coalesced = false;  // waited on another thread's in-flight load
    int64_t wait_us = 0;     // wall time blocked on the coalesced load
  };

  /// Who is asking for the page. Demand reads are the foreground query
  /// path; prefetch reads come from a background pipeline warming the
  /// cache ahead of the next iteration. Both ride the same single-flight
  /// (a demand read coalesces with an in-flight prefetch of the same key
  /// instead of duplicating the load), but prefetch admission is
  /// deliberately second-class: a prefetch hit does not promote the entry
  /// in LRU order, and a prefetch insert never evicts a page some caller
  /// still pins — the background sweep cannot recycle frames the current
  /// iteration is actively reading.
  enum class Admission { kDemand, kPrefetch };

  /// Enough shards that 8 concurrent workers rarely collide on a shard
  /// mutex, while keeping per-shard LRU lists long enough to stay useful.
  static constexpr int kDefaultShards = 16;

  /// `capacity_pages` of zero means unbounded (cache never evicts). Each
  /// shard gets a quota of ceil(capacity / shards), so the pool-wide bound
  /// is approximate: exact when the shard count divides the capacity (or
  /// with one shard), otherwise exceedable by up to shards - 1 pages.
  explicit BufferPool(uint64_t capacity_pages, int shards = kDefaultShards);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns a pin on the page for `key`, loading it with `loader` on a
  /// miss. The loader runs outside any pool lock; concurrent callers
  /// missing on the same key coalesce onto one load. A failed load leaves
  /// no cache entry and propagates its status to every coalesced waiter.
  Result<PinnedPage> Get(uint64_t key, const Loader& loader,
                         GetOutcome* outcome = nullptr,
                         Admission admission = Admission::kDemand);

  /// Returns a pin on the cached page, or an empty pin, without invoking
  /// any loader (and without waiting on in-flight loads).
  PinnedPage Lookup(uint64_t key);

  /// True when `key` is resident right now. A pure probe: no stats, no
  /// LRU promotion, no waiting on in-flight loads — safe for a background
  /// planner to call without perturbing what it is measuring.
  bool Contains(uint64_t key) const;

  /// Inserts (or overwrites) `page` under `key`. Pins handed out for a
  /// previous value keep reading that value.
  void Put(uint64_t key, const Page& page);

  /// Drops `key` if cached.
  void Erase(uint64_t key);

  /// Drops everything. Used by benchmarks to start an RQL query with a cold
  /// snapshot cache, matching the paper's setup. Outstanding pins survive;
  /// loads in flight will still publish their entry when they complete.
  void Clear();

  uint64_t size() const;
  uint64_t capacity() const {
    return capacity_.load(std::memory_order_relaxed);
  }
  /// Re-divides the new capacity across shards; a shrink takes effect as
  /// shards admit their next page.
  void set_capacity(uint64_t capacity_pages);

  int shard_count() const { return static_cast<int>(shards_.size()); }

  /// Registers observability gauges reading this pool's live counters on
  /// `registry` under `prefix`: `<prefix>.hits`, `.misses`, `.evictions`,
  /// `.coalesced_loads`, `.size_pages`, `.capacity_pages`. `Registry` is
  /// any type with `SetGauge(name, fn)` and `RemoveGaugesWithPrefix(p)`
  /// (retro::MetricsRegistry; templated so the storage layer stays
  /// independent of it). The gauges read the pool directly and cannot
  /// drift from stats(), but they capture `this`: the returned handle
  /// removes them on destruction and MUST NOT outlive the pool or the
  /// registry.
  template <typename Registry>
  [[nodiscard]] ScopedCleanup RegisterMetrics(Registry* registry,
                                              const std::string& prefix) const {
    const BufferPool* pool = this;
    registry->SetGauge(prefix + ".hits",
                       [pool] { return pool->stats().hits; });
    registry->SetGauge(prefix + ".misses",
                       [pool] { return pool->stats().misses; });
    registry->SetGauge(prefix + ".evictions",
                       [pool] { return pool->stats().evictions; });
    registry->SetGauge(prefix + ".coalesced_loads",
                       [pool] { return pool->stats().coalesced_loads; });
    registry->SetGauge(prefix + ".size_pages", [pool] {
      return static_cast<int64_t>(pool->size());
    });
    registry->SetGauge(prefix + ".capacity_pages", [pool] {
      return static_cast<int64_t>(pool->capacity());
    });
    return ScopedCleanup(
        [registry, prefix] { registry->RemoveGaugesWithPrefix(prefix + "."); });
  }

  /// Aggregated over all shards; a snapshot, not a live reference.
  BufferPoolStats stats() const;
  void ResetStats();

 private:
  struct Entry {
    uint64_t key;
    std::shared_ptr<const Page> page;
  };
  using LruList = std::list<Entry>;

  /// One load in progress; waiters block on `cv` until `done`.
  struct InFlight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status = Status::OK();
    std::shared_ptr<const Page> page;
  };

  struct Shard {
    mutable std::mutex mu;
    uint64_t quota = 0;     // this shard's slice of the pool capacity
    bool bounded = false;   // false while pool capacity is 0 (unbounded)
    LruList lru;            // front = most recently used
    std::unordered_map<uint64_t, LruList::iterator> entries;
    std::unordered_map<uint64_t, std::shared_ptr<InFlight>> inflight;
    BufferPoolStats stats;
  };

  Shard& ShardFor(uint64_t key);
  const Shard& ShardFor(uint64_t key) const;
  /// Requires `shard.mu`.
  void InsertLocked(Shard& shard, uint64_t key,
                    std::shared_ptr<const Page> page,
                    Admission admission = Admission::kDemand);
  /// Requires `shard.mu`. `spare_pinned` (prefetch admission) skips
  /// entries with outstanding pins when choosing eviction victims.
  void EvictIfNeededLocked(Shard& shard, bool spare_pinned);

  std::atomic<uint64_t> capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace rql::storage

#endif  // RQL_STORAGE_BUFFER_POOL_H_

#ifndef RQL_STORAGE_BUFFER_POOL_H_
#define RQL_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/status.h"
#include "storage/page.h"

namespace rql::storage {

/// Counters exposed by the buffer pool. The Retro layer uses these to
/// attribute snapshot-query cost: a miss on a Pagelog-backed key corresponds
/// to one page fetched from the snapshot archive (Section 4 of the paper).
struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;

  void Reset() { *this = BufferPoolStats{}; }
};

/// A fixed-capacity LRU cache of pages keyed by an opaque 64-bit key.
///
/// Keys are assigned by the caller; the Retro snapshot cache keys pages by
/// their Pagelog offset, so a pre-state page shared by several snapshots
/// occupies a single frame and later snapshots hit in cache — the page
/// sharing effect the paper's Section 5.1 measures.
///
/// Not thread-safe; the engine serializes access per database.
class BufferPool {
 public:
  using Loader = std::function<Status(uint64_t key, Page* page)>;

  /// `capacity_pages` of zero means unbounded (cache never evicts).
  explicit BufferPool(uint64_t capacity_pages)
      : capacity_(capacity_pages) {}

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Returns the page for `key`, loading it with `loader` on a miss. The
  /// returned pointer is valid until the next Get/Erase/Clear call.
  Result<const Page*> Get(uint64_t key, const Loader& loader);

  /// Returns the cached page or nullptr without invoking any loader.
  const Page* Lookup(uint64_t key);

  /// Inserts (or overwrites) `page` under `key`.
  void Put(uint64_t key, const Page& page);

  /// Drops `key` if cached.
  void Erase(uint64_t key);

  /// Drops everything. Used by benchmarks to start an RQL query with a cold
  /// snapshot cache, matching the paper's setup.
  void Clear();

  uint64_t size() const { return entries_.size(); }
  uint64_t capacity() const { return capacity_; }
  void set_capacity(uint64_t capacity_pages) { capacity_ = capacity_pages; }

  const BufferPoolStats& stats() const { return stats_; }
  BufferPoolStats* mutable_stats() { return &stats_; }

 private:
  struct Entry {
    uint64_t key;
    std::unique_ptr<Page> page;
  };
  using LruList = std::list<Entry>;

  void TouchFront(LruList::iterator it) {
    lru_.splice(lru_.begin(), lru_, it);
  }
  void EvictIfNeeded();

  uint64_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<uint64_t, LruList::iterator> entries_;
  BufferPoolStats stats_;
};

}  // namespace rql::storage

#endif  // RQL_STORAGE_BUFFER_POOL_H_

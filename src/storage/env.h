#ifndef RQL_STORAGE_ENV_H_
#define RQL_STORAGE_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace rql::storage {

/// A file supporting positional reads/writes and appends. This single
/// abstraction backs the database file (random read/write), the Pagelog
/// (append + random read) and the Maplog (append + sequential read).
class File {
 public:
  virtual ~File() = default;

  /// Reads exactly `n` bytes at `offset` into `buf`. Fails with IoError on
  /// short reads.
  virtual Status Read(uint64_t offset, uint64_t n, char* buf) const = 0;

  /// Writes `n` bytes at `offset`, extending the file if needed.
  virtual Status Write(uint64_t offset, uint64_t n, const char* buf) = 0;

  /// Appends `n` bytes at the end; returns the offset the data landed at.
  virtual Status Append(uint64_t n, const char* buf, uint64_t* offset) = 0;

  virtual uint64_t Size() const = 0;

  /// Truncates the file to `size` bytes.
  virtual Status Truncate(uint64_t size) = 0;

  /// Flushes buffered data to stable storage (fsync). Default: no-op.
  virtual Status Sync() { return Status::OK(); }
};

/// Factory for files, so the whole engine can run against in-memory state
/// (tests, benchmarks) or the local filesystem (examples, persistence).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `name`, creating it if missing.
  virtual Result<std::unique_ptr<File>> OpenFile(const std::string& name) = 0;

  virtual Status DeleteFile(const std::string& name) = 0;

  /// Renames `from` to `to`, replacing `to` if it exists. Open File
  /// handles keep addressing the content they were opened on.
  virtual Status RenameFile(const std::string& from,
                            const std::string& to) = 0;

  virtual bool FileExists(const std::string& name) const = 0;
};

/// Backing store of one in-memory file, shared by every open handle on the
/// same name. The lock makes reads safe against a concurrent append's
/// buffer reallocation — POSIX pread/pwrite give PosixFile the same
/// property for free — so snapshot readers can fetch immutable archive
/// records without holding any engine-level lock.
struct InMemoryFileData;

/// Env keeping all files in process memory. Files persist for the lifetime
/// of the Env, so closing and reopening a database against the same
/// InMemoryEnv behaves like a filesystem.
class InMemoryEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& name) override;
  Status DeleteFile(const std::string& name) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& name) const override;

  /// Total bytes held across all files; used by memory-footprint benches.
  uint64_t TotalBytes() const;

  /// Deep-copies every file into a fresh Env — the on-disk state an
  /// instantaneous crash would leave behind. Crash-recovery tests reopen
  /// databases from such clones.
  std::unique_ptr<InMemoryEnv> CloneState() const;

 private:
  friend class InMemoryFile;
  // Shared so open File handles survive DeleteFile of the name.
  std::vector<std::pair<std::string, std::shared_ptr<InMemoryFileData>>>
      files_;
};

/// Env backed by the local filesystem via POSIX pread/pwrite.
class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<File>> OpenFile(const std::string& name) override;
  Status DeleteFile(const std::string& name) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& name) const override;
};

/// PosixEnv rooted at a directory: every name resolves inside `root`,
/// which is created (one level) if missing. Tests use it to sandbox
/// on-disk database files under a tmpdir.
class FileEnv : public Env {
 public:
  explicit FileEnv(std::string root);

  Result<std::unique_ptr<File>> OpenFile(const std::string& name) override;
  Status DeleteFile(const std::string& name) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& name) const override;

  const std::string& root() const { return root_; }

 private:
  std::string Path(const std::string& name) const {
    return root_ + "/" + name;
  }

  PosixEnv posix_;
  std::string root_;
};

/// Returns a process-wide default Env (in-memory).
Env* DefaultEnv();

}  // namespace rql::storage

#endif  // RQL_STORAGE_ENV_H_

#include "storage/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <shared_mutex>

namespace rql::storage {

struct InMemoryFileData {
  mutable std::shared_mutex mu;
  std::vector<char> bytes;
};

namespace {

class InMemoryFile : public File {
 public:
  explicit InMemoryFile(std::shared_ptr<InMemoryFileData> data)
      : data_(std::move(data)) {}

  Status Read(uint64_t offset, uint64_t n, char* buf) const override {
    std::shared_lock<std::shared_mutex> lock(data_->mu);
    if (offset + n > data_->bytes.size()) {
      return Status::IoError("read past end of in-memory file");
    }
    std::memcpy(buf, data_->bytes.data() + offset, n);
    return Status::OK();
  }

  Status Write(uint64_t offset, uint64_t n, const char* buf) override {
    std::lock_guard<std::shared_mutex> lock(data_->mu);
    if (offset + n > data_->bytes.size()) data_->bytes.resize(offset + n);
    std::memcpy(data_->bytes.data() + offset, buf, n);
    return Status::OK();
  }

  Status Append(uint64_t n, const char* buf, uint64_t* offset) override {
    std::lock_guard<std::shared_mutex> lock(data_->mu);
    *offset = data_->bytes.size();
    data_->bytes.insert(data_->bytes.end(), buf, buf + n);
    return Status::OK();
  }

  uint64_t Size() const override {
    std::shared_lock<std::shared_mutex> lock(data_->mu);
    return data_->bytes.size();
  }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::shared_mutex> lock(data_->mu);
    data_->bytes.resize(size);
    return Status::OK();
  }

 private:
  std::shared_ptr<InMemoryFileData> data_;
};

class PosixFile : public File {
 public:
  explicit PosixFile(int fd) : fd_(fd) {}
  ~PosixFile() override { ::close(fd_); }

  Status Read(uint64_t offset, uint64_t n, char* buf) const override {
    uint64_t done = 0;
    while (done < n) {
      ssize_t r = ::pread(fd_, buf + done, n - done,
                          static_cast<off_t>(offset + done));
      if (r < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("pread: ") + std::strerror(errno));
      }
      if (r == 0) return Status::IoError("pread: short read");
      done += static_cast<uint64_t>(r);
    }
    return Status::OK();
  }

  Status Write(uint64_t offset, uint64_t n, const char* buf) override {
    uint64_t done = 0;
    while (done < n) {
      ssize_t w = ::pwrite(fd_, buf + done, n - done,
                           static_cast<off_t>(offset + done));
      if (w < 0) {
        if (errno == EINTR) continue;
        return Status::IoError(std::string("pwrite: ") + std::strerror(errno));
      }
      done += static_cast<uint64_t>(w);
    }
    return Status::OK();
  }

  Status Append(uint64_t n, const char* buf, uint64_t* offset) override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) {
      return Status::IoError(std::string("fstat: ") + std::strerror(errno));
    }
    *offset = static_cast<uint64_t>(st.st_size);
    return Write(*offset, n, buf);
  }

  uint64_t Size() const override {
    struct stat st;
    if (::fstat(fd_, &st) != 0) return 0;
    return static_cast<uint64_t>(st.st_size);
  }

  Status Truncate(uint64_t size) override {
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Status::IoError(std::string("ftruncate: ") +
                             std::strerror(errno));
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) {
      return Status::IoError(std::string("fsync: ") + std::strerror(errno));
    }
    return Status::OK();
  }

 private:
  int fd_;
};

}  // namespace

Result<std::unique_ptr<File>> InMemoryEnv::OpenFile(const std::string& name) {
  for (auto& [n, data] : files_) {
    if (n == name) return std::unique_ptr<File>(new InMemoryFile(data));
  }
  auto data = std::make_shared<InMemoryFileData>();
  files_.emplace_back(name, data);
  return std::unique_ptr<File>(new InMemoryFile(std::move(data)));
}

Status InMemoryEnv::DeleteFile(const std::string& name) {
  for (auto it = files_.begin(); it != files_.end(); ++it) {
    if (it->first == name) {
      files_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no such in-memory file: " + name);
}

Status InMemoryEnv::RenameFile(const std::string& from,
                               const std::string& to) {
  std::shared_ptr<InMemoryFileData> data;
  for (auto it = files_.begin(); it != files_.end(); ++it) {
    if (it->first == from) {
      data = it->second;
      files_.erase(it);
      break;
    }
  }
  if (data == nullptr) {
    return Status::NotFound("no such in-memory file: " + from);
  }
  for (auto it = files_.begin(); it != files_.end(); ++it) {
    if (it->first == to) {
      files_.erase(it);
      break;
    }
  }
  files_.emplace_back(to, std::move(data));
  return Status::OK();
}

bool InMemoryEnv::FileExists(const std::string& name) const {
  for (const auto& [n, data] : files_) {
    if (n == name) return true;
  }
  return false;
}

uint64_t InMemoryEnv::TotalBytes() const {
  uint64_t total = 0;
  for (const auto& [n, data] : files_) {
    std::shared_lock<std::shared_mutex> lock(data->mu);
    total += data->bytes.size();
  }
  return total;
}

std::unique_ptr<InMemoryEnv> InMemoryEnv::CloneState() const {
  auto clone = std::make_unique<InMemoryEnv>();
  for (const auto& [name, data] : files_) {
    auto copy = std::make_shared<InMemoryFileData>();
    std::shared_lock<std::shared_mutex> lock(data->mu);
    copy->bytes = data->bytes;
    clone->files_.emplace_back(name, std::move(copy));
  }
  return clone;
}

Result<std::unique_ptr<File>> PosixEnv::OpenFile(const std::string& name) {
  int fd = ::open(name.c_str(), O_RDWR | O_CREAT, 0644);
  if (fd < 0) {
    return Status::IoError("open " + name + ": " + std::strerror(errno));
  }
  return std::unique_ptr<File>(new PosixFile(fd));
}

Status PosixEnv::DeleteFile(const std::string& name) {
  if (::unlink(name.c_str()) != 0) {
    return Status::IoError("unlink " + name + ": " + std::strerror(errno));
  }
  return Status::OK();
}

Status PosixEnv::RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::IoError("rename " + from + " -> " + to + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

bool PosixEnv::FileExists(const std::string& name) const {
  return ::access(name.c_str(), F_OK) == 0;
}

FileEnv::FileEnv(std::string root) : root_(std::move(root)) {
  ::mkdir(root_.c_str(), 0755);  // EEXIST is fine; OpenFile surfaces errors
}

Result<std::unique_ptr<File>> FileEnv::OpenFile(const std::string& name) {
  return posix_.OpenFile(Path(name));
}

Status FileEnv::DeleteFile(const std::string& name) {
  return posix_.DeleteFile(Path(name));
}

Status FileEnv::RenameFile(const std::string& from, const std::string& to) {
  return posix_.RenameFile(Path(from), Path(to));
}

bool FileEnv::FileExists(const std::string& name) const {
  return posix_.FileExists(Path(name));
}

Env* DefaultEnv() {
  static InMemoryEnv* env = new InMemoryEnv();
  return env;
}

}  // namespace rql::storage

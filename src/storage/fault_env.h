#ifndef RQL_STORAGE_FAULT_ENV_H_
#define RQL_STORAGE_FAULT_ENV_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "storage/env.h"

namespace rql::storage {

/// The file operation a failpoint intercepts.
enum class FaultOp {
  kRead,
  kWrite,
  kAppend,
  kSync,
  kTruncate,
};

const char* FaultOpName(FaultOp op);

/// What happens when a failpoint fires.
enum class FaultKind {
  /// The operation fails with IoError; nothing reaches the base file.
  kIoError,
  /// Write/Append only: a seeded prefix of the payload reaches the base
  /// file, then the operation fails — the partial image a power cut
  /// mid-write leaves behind.
  kTornWrite,
  /// Read only: a seeded prefix of the buffer is filled, then the
  /// operation fails (our File::Read contract forbids short success).
  kShortRead,
  /// The env "dies": this operation fails and every subsequent operation
  /// on every file fails until RecoverToSyncedState() simulates the
  /// reboot. Arm on kSync to model kill-at-a-sync-point.
  kCrash,
};

/// One armed failpoint. The spec fires on the (after+1)-th operation of
/// `op` whose file name matches `glob` ('*' and '?' wildcards); non-sticky
/// specs disarm after firing, sticky specs keep failing every match.
struct FaultSpec {
  FaultOp op = FaultOp::kWrite;
  FaultKind kind = FaultKind::kIoError;
  std::string glob = "*";
  uint64_t after = 0;
  bool sticky = false;
};

/// Operation and fault counters, shared by the registry and the env.
struct FaultStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t appends = 0;
  uint64_t syncs = 0;
  uint64_t truncates = 0;
  uint64_t faults_fired = 0;
};

/// Seeded, deterministic failpoint set. Thread-safe via the owning
/// FaultInjectionEnv's mutex; standalone use is single-threaded.
class FailpointRegistry {
 public:
  explicit FailpointRegistry(uint64_t seed = 42) : rng_(seed) {}

  void Arm(const FaultSpec& spec);
  void DisarmAll();

  /// Records one operation on `file` and returns the fault to apply
  /// (kIoError/kTornWrite/kShortRead/kCrash) or no value for a clean pass.
  /// At most one failpoint fires per operation (first armed match wins).
  struct Decision {
    bool fire = false;
    FaultKind kind = FaultKind::kIoError;
  };
  Decision Observe(FaultOp op, const std::string& file);

  /// Deterministic partial length in [0, n) for torn writes / short reads.
  uint64_t PartialLength(uint64_t n);

  const FaultStats& stats() const { return stats_; }
  void ResetStats() { stats_ = FaultStats{}; }

  /// Shell-style matcher supporting '*' and '?'.
  static bool GlobMatch(const std::string& pattern, const std::string& name);

 private:
  struct Armed {
    FaultSpec spec;
    uint64_t seen = 0;
    bool fired = false;
  };

  std::vector<Armed> armed_;
  FaultStats stats_;
  Random rng_;
};

/// Env wrapper that forwards to a base Env while consulting a
/// FailpointRegistry on every file operation, and that tracks each file's
/// last-synced content so a crash can be simulated as "all un-synced data
/// is lost".
///
/// Crash model: content present when a file is first opened through this
/// env counts as synced; each successful Sync() re-captures the file's
/// base image. A kCrash failpoint marks the env dead — every subsequent
/// operation fails — until RecoverToSyncedState() rolls every tracked
/// file back to its synced image and revives the env, which is the disk
/// state a process kill at the crash point would leave for the reopening
/// process. DeleteFile/RenameFile are treated as immediately durable (a
/// deliberate simplification; the engine syncs through File handles only).
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* base, uint64_t seed = 42)
      : base_(base), registry_(seed) {}

  Result<std::unique_ptr<File>> OpenFile(const std::string& name) override;
  Status DeleteFile(const std::string& name) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  bool FileExists(const std::string& name) const override;

  /// Arms/inspects failpoints. Counters in stats() cover every operation
  /// issued through this env since construction (or ResetStats).
  void Arm(const FaultSpec& spec);
  void DisarmAll();
  const FaultStats& stats() const { return registry_.stats(); }
  void ResetStats() { registry_.ResetStats(); }

  /// True once a kCrash failpoint fired; every operation fails until
  /// RecoverToSyncedState().
  bool crashed() const;

  /// Rolls every tracked file in the base env back to its last-synced
  /// content, clears the crashed flag and disarms all failpoints. Safe to
  /// call without a prior crash (then it just drops un-synced data).
  Status RecoverToSyncedState();

  Env* base() { return base_; }

 private:
  friend class FaultFile;

  Status CaptureSyncedImageLocked(const std::string& name);

  mutable std::mutex mu_;
  Env* base_;
  FailpointRegistry registry_;
  bool crashed_ = false;
  // name -> content at last successful Sync (or at first open).
  std::map<std::string, std::string> synced_;
};

}  // namespace rql::storage

#endif  // RQL_STORAGE_FAULT_ENV_H_

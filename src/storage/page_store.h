#ifndef RQL_STORAGE_PAGE_STORE_H_
#define RQL_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/buffer_pool.h"
#include "storage/env.h"
#include "storage/page.h"

namespace rql::storage {

/// The interface through which the SQL engine reads pages. Implemented by
/// PageStore (current state) and by the Retro snapshot view (as-of state).
class PageReader {
 public:
  virtual ~PageReader() = default;
  virtual Status ReadPage(PageId id, Page* page) = 0;

  /// Physical identity of the page version this reader resolves `id` to,
  /// when one exists that is stable across readers. The Retro snapshot
  /// view returns the page's Pagelog offset for SPT-mapped (archived)
  /// pages: two snapshots resolving a page to the same offset see
  /// byte-identical content, which is what makes cross-snapshot decoded-
  /// page reuse sound. Readers of mutable state (the default) have no
  /// stable version key and return false.
  virtual bool PageVersion(PageId id, uint64_t* version) {
    (void)id;
    (void)version;
    return false;
  }

  /// Reads `id` as a ref-counted pin on an immutable cached page, when the
  /// reader can serve one (the Retro view pins archived pages straight
  /// from the snapshot cache, skipping the copy-out ReadPage does). An
  /// empty pin means "unsupported here" — callers fall back to ReadPage.
  virtual Result<PinnedPage> ReadPagePinned(PageId id) {
    (void)id;
    return PinnedPage();
  }
};

/// The interface through which the SQL engine mutates pages. The Retro
/// layer wraps a PageStore behind this interface to interpose copy-on-write
/// pre-state capture on writes, mirroring how Retro interposes on the
/// Berkeley DB storage manager.
class PageWriter : public PageReader {
 public:
  virtual Result<PageId> AllocatePage() = 0;
  virtual Status FreePage(PageId id) = 0;
  virtual Status WritePage(PageId id, const Page& page) = 0;
};

/// A file of pages with a free list, a handful of named root-page slots
/// (the catalog root lives in slot 0), and write-ahead-logged atomic
/// batches. Page 0 is the header and is never handed out.
///
/// Mutations accumulate in an in-memory dirty set and reach the file only
/// through a WAL commit: the batch is appended to <name>.wal with a
/// checksum and commit sentinel, synced, applied to the page file, and
/// the WAL truncated. A crash anywhere in that protocol leaves either the
/// whole batch or none of it — recovery on Open replays a complete WAL
/// and discards an incomplete one. Mutations outside an explicit batch
/// commit individually.
class PageStore : public PageWriter {
 public:
  /// Number of root-page slots in the header available to higher layers.
  static constexpr uint32_t kNumRoots = 8;

  /// Opens (creating if necessary) the page file `name` (WAL: <name>.wal)
  /// inside `env`, running crash recovery if a committed WAL is present.
  static Result<std::unique_ptr<PageStore>> Open(Env* env,
                                                 const std::string& name);

  Result<PageId> AllocatePage() override;
  Status FreePage(PageId id) override;
  Status ReadPage(PageId id, Page* page) override;
  Status WritePage(PageId id, const Page& page) override;

  /// Starts an explicit atomic batch; mutations buffer until CommitBatch.
  Status BeginBatch();
  /// Atomically persists the batch through the WAL.
  Status CommitBatch();
  /// Drops every buffered mutation (free: nothing reached the file).
  Status RollbackBatch();
  bool in_batch() const { return in_batch_; }

  /// Root slots persist across Open calls; used for catalog roots.
  Result<PageId> GetRoot(uint32_t slot) const;
  Status SetRoot(uint32_t slot, PageId id);

  /// Total pages in the file image, including the header and free pages.
  uint32_t page_count() const { return page_count_; }

  /// Pages currently allocated (excludes header and free-list pages).
  uint32_t allocated_pages() const { return page_count_ - 1 - free_count_; }

  /// Hook invoked before each non-empty commit becomes durable (before
  /// the WAL append). The Retro layer uses it to sync the Pagelog and
  /// Maplog first, so no committed post-state can outlive its archived
  /// pre-state. A failing hook aborts the commit.
  using PreCommitHook = std::function<Status()>;
  void set_pre_commit_hook(PreCommitHook hook) {
    pre_commit_hook_ = std::move(hook);
  }

 private:
  PageStore() = default;

  Status LoadHeader();
  void StageHeader();
  Status RecoverWal();
  Status CommitDirty();
  /// Reads a page preferring the dirty set over the file.
  Status ReadThrough(PageId id, Page* page) const;
  /// Auto-commits when not inside an explicit batch.
  Status MaybeAutoCommit();

  std::unique_ptr<File> file_;
  std::unique_ptr<File> wal_;
  uint32_t page_count_ = 0;      // includes header page
  PageId free_head_ = kInvalidPageId;
  uint32_t free_count_ = 0;
  PageId roots_[kNumRoots] = {};
  // Pages staged by the current batch (or single mutation), including the
  // header page 0.
  std::map<PageId, Page> dirty_;
  // page_count_ as of the last commit: the file's real page extent.
  uint32_t committed_page_count_ = 0;
  bool in_batch_ = false;
  PreCommitHook pre_commit_hook_;
};

}  // namespace rql::storage

#endif  // RQL_STORAGE_PAGE_STORE_H_

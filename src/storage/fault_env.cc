#include "storage/fault_env.h"

#include <utility>

namespace rql::storage {

const char* FaultOpName(FaultOp op) {
  switch (op) {
    case FaultOp::kRead:
      return "read";
    case FaultOp::kWrite:
      return "write";
    case FaultOp::kAppend:
      return "append";
    case FaultOp::kSync:
      return "sync";
    case FaultOp::kTruncate:
      return "truncate";
  }
  return "unknown";
}

void FailpointRegistry::Arm(const FaultSpec& spec) {
  armed_.push_back(Armed{spec, 0, false});
}

void FailpointRegistry::DisarmAll() { armed_.clear(); }

bool FailpointRegistry::GlobMatch(const std::string& pattern,
                                  const std::string& name) {
  // Iterative '*'/'?' matcher with single-star backtracking.
  size_t p = 0, n = 0;
  size_t star = std::string::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p;
      ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

FailpointRegistry::Decision FailpointRegistry::Observe(
    FaultOp op, const std::string& file) {
  switch (op) {
    case FaultOp::kRead:
      ++stats_.reads;
      break;
    case FaultOp::kWrite:
      ++stats_.writes;
      break;
    case FaultOp::kAppend:
      ++stats_.appends;
      break;
    case FaultOp::kSync:
      ++stats_.syncs;
      break;
    case FaultOp::kTruncate:
      ++stats_.truncates;
      break;
  }
  Decision decision;
  for (Armed& armed : armed_) {
    if (armed.spec.op != op) continue;
    if (!GlobMatch(armed.spec.glob, file)) continue;
    ++armed.seen;
    bool fire_now = armed.fired ? armed.spec.sticky
                                : armed.seen > armed.spec.after;
    if (fire_now && !decision.fire) {
      armed.fired = true;
      decision.fire = true;
      decision.kind = armed.spec.kind;
      ++stats_.faults_fired;
    }
  }
  return decision;
}

uint64_t FailpointRegistry::PartialLength(uint64_t n) {
  if (n == 0) return 0;
  return rng_.Uniform(n);
}

namespace {

std::string InjectedError(FaultOp op, const std::string& name) {
  return std::string("injected ") + FaultOpName(op) + " fault on " + name;
}

}  // namespace

/// File wrapper routing every operation through the env's registry.
class FaultFile : public File {
 public:
  FaultFile(FaultInjectionEnv* env, std::string name,
            std::unique_ptr<File> base)
      : env_(env), name_(std::move(name)), base_(std::move(base)) {}

  Status Read(uint64_t offset, uint64_t n, char* buf) const override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RQL_RETURN_IF_ERROR(CheckAlive());
    auto d = env_->registry_.Observe(FaultOp::kRead, name_);
    if (d.fire) {
      if (d.kind == FaultKind::kCrash) env_->crashed_ = true;
      if (d.kind == FaultKind::kShortRead) {
        uint64_t partial = env_->registry_.PartialLength(n);
        if (offset + partial <= base_->Size() && partial > 0) {
          (void)base_->Read(offset, partial, buf);
        }
        return Status::IoError("injected short read on " + name_);
      }
      return Status::IoError(InjectedError(FaultOp::kRead, name_));
    }
    return base_->Read(offset, n, buf);
  }

  Status Write(uint64_t offset, uint64_t n, const char* buf) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RQL_RETURN_IF_ERROR(CheckAlive());
    auto d = env_->registry_.Observe(FaultOp::kWrite, name_);
    if (d.fire) return ApplyWriteFault(d.kind, FaultOp::kWrite, offset, n, buf);
    return base_->Write(offset, n, buf);
  }

  Status Append(uint64_t n, const char* buf, uint64_t* offset) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RQL_RETURN_IF_ERROR(CheckAlive());
    auto d = env_->registry_.Observe(FaultOp::kAppend, name_);
    if (d.fire) {
      *offset = base_->Size();
      return ApplyWriteFault(d.kind, FaultOp::kAppend, *offset, n, buf);
    }
    return base_->Append(n, buf, offset);
  }

  uint64_t Size() const override { return base_->Size(); }

  Status Truncate(uint64_t size) override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RQL_RETURN_IF_ERROR(CheckAlive());
    auto d = env_->registry_.Observe(FaultOp::kTruncate, name_);
    if (d.fire) {
      if (d.kind == FaultKind::kCrash) env_->crashed_ = true;
      return Status::IoError(InjectedError(FaultOp::kTruncate, name_));
    }
    return base_->Truncate(size);
  }

  Status Sync() override {
    std::lock_guard<std::mutex> lock(env_->mu_);
    RQL_RETURN_IF_ERROR(CheckAlive());
    auto d = env_->registry_.Observe(FaultOp::kSync, name_);
    if (d.fire) {
      if (d.kind == FaultKind::kCrash) env_->crashed_ = true;
      return Status::IoError(InjectedError(FaultOp::kSync, name_));
    }
    RQL_RETURN_IF_ERROR(base_->Sync());
    return env_->CaptureSyncedImageLocked(name_);
  }

 private:
  Status CheckAlive() const {
    if (env_->crashed_) {
      return Status::IoError("env crashed; recover before using " + name_);
    }
    return Status::OK();
  }

  Status ApplyWriteFault(FaultKind kind, FaultOp op, uint64_t offset,
                         uint64_t n, const char* buf) {
    if (kind == FaultKind::kCrash) env_->crashed_ = true;
    if (kind == FaultKind::kTornWrite) {
      uint64_t partial = env_->registry_.PartialLength(n);
      if (partial > 0) (void)base_->Write(offset, partial, buf);
      return Status::IoError("injected torn " + std::string(FaultOpName(op)) +
                             " on " + name_);
    }
    return Status::IoError(InjectedError(op, name_));
  }

  FaultInjectionEnv* env_;
  std::string name_;
  std::unique_ptr<File> base_;
};

Status FaultInjectionEnv::CaptureSyncedImageLocked(const std::string& name) {
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<File> file, base_->OpenFile(name));
  uint64_t size = file->Size();
  std::string image(size, '\0');
  if (size > 0) RQL_RETURN_IF_ERROR(file->Read(0, size, image.data()));
  synced_[name] = std::move(image);
  return Status::OK();
}

Result<std::unique_ptr<File>> FaultInjectionEnv::OpenFile(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) {
    return Status::IoError("env crashed; recover before opening " + name);
  }
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<File> base_file,
                       base_->OpenFile(name));
  // Content present before this env first saw the file counts as synced.
  if (synced_.find(name) == synced_.end()) {
    RQL_RETURN_IF_ERROR(CaptureSyncedImageLocked(name));
  }
  return std::unique_ptr<File>(
      new FaultFile(this, name, std::move(base_file)));
}

Status FaultInjectionEnv::DeleteFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError("env crashed");
  synced_.erase(name);  // deletion is treated as immediately durable
  return base_->DeleteFile(name);
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  if (crashed_) return Status::IoError("env crashed");
  RQL_RETURN_IF_ERROR(base_->RenameFile(from, to));
  // Rename is treated as durable (the engine's swap protocols sync a
  // marker first), so the renamed content becomes `to`'s synced image.
  synced_.erase(from);
  return CaptureSyncedImageLocked(to);
}

bool FaultInjectionEnv::FileExists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return base_->FileExists(name);
}

void FaultInjectionEnv::Arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.Arm(spec);
}

void FaultInjectionEnv::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  registry_.DisarmAll();
}

bool FaultInjectionEnv::crashed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return crashed_;
}

Status FaultInjectionEnv::RecoverToSyncedState() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, image] : synced_) {
    RQL_ASSIGN_OR_RETURN(std::unique_ptr<File> file, base_->OpenFile(name));
    RQL_RETURN_IF_ERROR(file->Truncate(0));
    if (!image.empty()) {
      RQL_RETURN_IF_ERROR(file->Write(0, image.size(), image.data()));
    }
  }
  crashed_ = false;
  registry_.DisarmAll();
  return Status::OK();
}

}  // namespace rql::storage

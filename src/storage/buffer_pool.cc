#include "storage/buffer_pool.h"

namespace rql::storage {

Result<const Page*> BufferPool::Get(uint64_t key, const Loader& loader) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    TouchFront(it->second);
    return static_cast<const Page*>(it->second->page.get());
  }
  ++stats_.misses;
  auto page = std::make_unique<Page>();
  RQL_RETURN_IF_ERROR(loader(key, page.get()));
  lru_.push_front(Entry{key, std::move(page)});
  entries_[key] = lru_.begin();
  EvictIfNeeded();
  return static_cast<const Page*>(lru_.front().page.get());
}

const Page* BufferPool::Lookup(uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  ++stats_.hits;
  TouchFront(it->second);
  return it->second->page.get();
}

void BufferPool::Put(uint64_t key, const Page& page) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    *it->second->page = page;
    TouchFront(it->second);
    return;
  }
  lru_.push_front(Entry{key, std::make_unique<Page>(page)});
  entries_[key] = lru_.begin();
  EvictIfNeeded();
}

void BufferPool::Erase(uint64_t key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  lru_.erase(it->second);
  entries_.erase(it);
}

void BufferPool::Clear() {
  lru_.clear();
  entries_.clear();
}

void BufferPool::EvictIfNeeded() {
  if (capacity_ == 0) return;
  while (entries_.size() > capacity_) {
    const Entry& victim = lru_.back();
    entries_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

}  // namespace rql::storage

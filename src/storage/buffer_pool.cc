#include "storage/buffer_pool.h"

#include <algorithm>

#include "common/clock.h"

namespace rql::storage {

namespace {

/// splitmix64 finalizer: snapshot-cache keys are Pagelog byte offsets, so
/// low bits cluster on record-size multiples; mixing spreads them across
/// shards.
uint64_t MixKey(uint64_t key) {
  key += 0x9e3779b97f4a7c15ull;
  key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
  key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
  return key ^ (key >> 31);
}

}  // namespace

BufferPool::BufferPool(uint64_t capacity_pages, int shards)
    : capacity_(capacity_pages) {
  shards_.reserve(static_cast<size_t>(std::max(1, shards)));
  for (int i = 0; i < std::max(1, shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  set_capacity(capacity_pages);
}

BufferPool::Shard& BufferPool::ShardFor(uint64_t key) {
  return *shards_[MixKey(key) % shards_.size()];
}

const BufferPool::Shard& BufferPool::ShardFor(uint64_t key) const {
  return *shards_[MixKey(key) % shards_.size()];
}

void BufferPool::set_capacity(uint64_t capacity_pages) {
  capacity_.store(capacity_pages, std::memory_order_relaxed);
  const uint64_t n = shards_.size();
  // Round the per-shard quota up (LevelDB's sharded-cache convention): a
  // round-down would give most shards a quota of zero whenever the
  // capacity is below the shard count, evicting every page at admission.
  // The cost is that the bound is approximate — the pool can hold up to
  // n * ceil(cap / n) pages; it is exact when n divides cap (or n == 1).
  const uint64_t quota = (capacity_pages + n - 1) / n;
  for (uint64_t i = 0; i < n; ++i) {
    Shard& shard = *shards_[i];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.bounded = capacity_pages != 0;
    shard.quota = quota;
  }
}

Result<PinnedPage> BufferPool::Get(uint64_t key, const Loader& loader,
                                   GetOutcome* outcome,
                                   Admission admission) {
  Shard& shard = ShardFor(key);
  std::shared_ptr<InFlight> fl;
  bool owner = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.entries.find(key);
    if (it != shard.entries.end()) {
      ++shard.stats.hits;
      // A background prefetch racing a resident page must not distort the
      // recency order demand readers established; only demand promotes.
      if (admission == Admission::kDemand) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      }
      return PinnedPage(it->second->page);
    }
    auto in = shard.inflight.find(key);
    if (in != shard.inflight.end()) {
      fl = in->second;
      ++shard.stats.coalesced_loads;
    } else {
      fl = std::make_shared<InFlight>();
      shard.inflight.emplace(key, fl);
      ++shard.stats.misses;
      owner = true;
    }
  }

  if (!owner) {
    if (outcome != nullptr) outcome->coalesced = true;
    int64_t wait_start = NowMicros();
    std::unique_lock<std::mutex> wait_lock(fl->mu);
    fl->cv.wait(wait_lock, [&] { return fl->done; });
    if (outcome != nullptr) outcome->wait_us = NowMicros() - wait_start;
    if (!fl->status.ok()) return fl->status;
    return PinnedPage(fl->page);
  }

  // Owner of the in-flight load: run the loader outside any lock so other
  // shards (and other keys on this shard) stay serviceable meanwhile.
  auto page = std::make_shared<Page>();
  Status s = loader(key, page.get());
  std::shared_ptr<const Page> loaded =
      s.ok() ? std::shared_ptr<const Page>(std::move(page)) : nullptr;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.inflight.erase(key);
    // A failed load leaves no entry; waiters receive the error and the
    // caller's retry policy decides whether to re-issue the read.
    if (s.ok()) InsertLocked(shard, key, loaded, admission);
  }
  {
    std::lock_guard<std::mutex> publish(fl->mu);
    fl->status = s;
    fl->page = loaded;
    fl->done = true;
  }
  fl->cv.notify_all();
  RQL_RETURN_IF_ERROR(s);
  if (outcome != nullptr) outcome->loaded = true;
  return PinnedPage(std::move(loaded));
}

PinnedPage BufferPool::Lookup(uint64_t key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return PinnedPage();
  ++shard.stats.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return PinnedPage(it->second->page);
}

bool BufferPool::Contains(uint64_t key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.find(key) != shard.entries.end();
}

void BufferPool::Put(uint64_t key, const Page& page) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  InsertLocked(shard, key, std::make_shared<const Page>(page));
}

void BufferPool::InsertLocked(Shard& shard, uint64_t key,
                              std::shared_ptr<const Page> page,
                              Admission admission) {
  auto it = shard.entries.find(key);
  if (it != shard.entries.end()) {
    // Overwrite by replacing the reference: pins on the old page keep it.
    it->second->page = std::move(page);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  // Prefetched pages enter at the front like demand loads — they are the
  // next iteration's imminent working set — but their eviction pass spares
  // pinned frames, so warming ahead never recycles what is being read now.
  shard.lru.push_front(Entry{key, std::move(page)});
  shard.entries[key] = shard.lru.begin();
  EvictIfNeededLocked(shard, /*spare_pinned=*/admission == Admission::kPrefetch);
}

void BufferPool::EvictIfNeededLocked(Shard& shard, bool spare_pinned) {
  if (!shard.bounded) return;
  if (!spare_pinned) {
    while (shard.entries.size() > shard.quota) {
      const Entry& victim = shard.lru.back();
      shard.entries.erase(victim.key);
      shard.lru.pop_back();
      ++shard.stats.evictions;
    }
    return;
  }
  // Prefetch admission: walk from the LRU tail skipping entries some
  // caller still pins (use_count > 1 = the pool's reference plus at least
  // one PinnedPage; pins are only created under this shard's mutex, so a
  // stale count can only over-estimate, which errs toward keeping). If
  // every entry is pinned the shard runs over quota until pins drain —
  // the next demand insert evicts unconditionally and restores the bound.
  auto it = shard.lru.end();
  size_t scanned = 0;
  const size_t limit = shard.lru.size();
  while (shard.entries.size() > shard.quota && scanned < limit &&
         it != shard.lru.begin()) {
    auto victim = std::prev(it);
    ++scanned;
    if (victim->page.use_count() > 1) {
      it = victim;  // pinned: step over it, keep scanning toward the front
      continue;
    }
    shard.entries.erase(victim->key);
    shard.lru.erase(victim);  // `it` stays valid: it was next(victim)
    ++shard.stats.evictions;
  }
}

void BufferPool::Erase(uint64_t key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.entries.find(key);
  if (it == shard.entries.end()) return;
  shard.lru.erase(it->second);
  shard.entries.erase(it);
}

void BufferPool::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->entries.clear();
  }
}

uint64_t BufferPool::size() const {
  uint64_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

BufferPoolStats BufferPool::stats() const {
  BufferPoolStats total;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.Add(shard->stats);
  }
  return total;
}

void BufferPool::ResetStats() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->stats.Reset();
  }
}

}  // namespace rql::storage

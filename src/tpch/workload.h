#ifndef RQL_TPCH_WORKLOAD_H_
#define RQL_TPCH_WORKLOAD_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "rql/rql.h"
#include "sql/database.h"
#include "tpch/tpch.h"

namespace rql::tpch {

/// A TPC-H database plus a history of snapshots produced by an update
/// workload — the substrate every experiment in the paper's Section 5
/// runs against.
struct HistoryConfig {
  TpchConfig tpch;
  WorkloadSpec workload = WorkloadSpec::UW30();
  /// Total snapshots to declare.
  int snapshots = 160;
};

class History {
 public:
  sql::Database* data() { return data_.get(); }
  sql::Database* meta() { return meta_.get(); }
  RqlEngine* engine() { return engine_.get(); }
  TpchGenerator* generator() { return generator_.get(); }
  const HistoryConfig& config() const { return config_; }

  /// The most recent declared snapshot id (Slast in the paper's notation).
  retro::SnapshotId last_snapshot() const {
    return data_->store()->latest_snapshot();
  }

  /// Qs for the interval [first, first + count*step) with the given step,
  /// e.g. "SELECT snap_id FROM SnapIds WHERE ...".
  std::string QsInterval(retro::SnapshotId first, int count,
                         int step = 1) const;

 private:
  friend Result<std::unique_ptr<History>> BuildHistory(
      storage::Env* env, const std::string& name, const HistoryConfig&);

  HistoryConfig config_;
  std::unique_ptr<sql::Database> data_;
  std::unique_ptr<sql::Database> meta_;
  std::unique_ptr<RqlEngine> engine_;
  std::unique_ptr<TpchGenerator> generator_;
};

/// Builds (or reopens, when the files already hold the requested history —
/// the expensive part of every benchmark) a TPC-H snapshot history named
/// `name` inside `env`. The data database lives in <name>_data.*, the
/// metadata (SnapIds) database in <name>_meta.*.
Result<std::unique_ptr<History>> BuildHistory(storage::Env* env,
                                              const std::string& name,
                                              const HistoryConfig& config);

}  // namespace rql::tpch

#endif  // RQL_TPCH_WORKLOAD_H_

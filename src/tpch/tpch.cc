#include "tpch/tpch.h"

#include <array>

namespace rql::tpch {

using sql::Row;
using sql::Value;

namespace {

constexpr std::array<const char*, 6> kTypeSyllable1 = {
    "STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"};
constexpr std::array<const char*, 5> kTypeSyllable2 = {
    "ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"};
constexpr std::array<const char*, 5> kTypeSyllable3 = {
    "TIN", "NICKEL", "BRASS", "STEEL", "COPPER"};

constexpr std::array<const char*, 5> kPartNames = {
    "almond", "antique", "aquamarine", "azure", "beige"};

// Days per month, non-leap (TPC-H dates avoid Feb 29 subtleties at our
// fidelity level).
constexpr int kDaysInMonth[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30,
                                31};

std::string FormatDate(int year, int month, int day) {
  char buf[11];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, day);
  return std::string(buf);
}

}  // namespace

std::string TpchGenerator::PartType(Random* rng) {
  std::string type = kTypeSyllable1[rng->Uniform(kTypeSyllable1.size())];
  type += ' ';
  type += kTypeSyllable2[rng->Uniform(kTypeSyllable2.size())];
  type += ' ';
  type += kTypeSyllable3[rng->Uniform(kTypeSyllable3.size())];
  return type;
}

std::string TpchGenerator::OrderDate(Random* rng) {
  int year = static_cast<int>(1992 + rng->Uniform(7));
  int month = static_cast<int>(rng->Uniform(12));
  int day = static_cast<int>(1 + rng->Uniform(
      static_cast<uint64_t>(kDaysInMonth[month])));
  return FormatDate(year, month + 1, day);
}

TpchGenerator::TpchGenerator(sql::Database* db, TpchConfig config)
    : db_(db), config_(config), rng_(config.seed) {
  customer_count_ = static_cast<int64_t>(150000 * config_.scale_factor);
  part_count_ = static_cast<int64_t>(200000 * config_.scale_factor);
  initial_order_count_ = static_cast<int64_t>(1500000 * config_.scale_factor);
  if (customer_count_ < 1) customer_count_ = 1;
  if (part_count_ < 1) part_count_ = 1;
  if (initial_order_count_ < 1) initial_order_count_ = 1;
}

Status TpchGenerator::CreateSchema() {
  RQL_RETURN_IF_ERROR(db_->Exec(
      "CREATE TABLE part (p_partkey INTEGER, p_name TEXT, p_type TEXT, "
      "p_retailprice REAL)"));
  RQL_RETURN_IF_ERROR(db_->Exec(
      "CREATE TABLE customer (c_custkey INTEGER, c_name TEXT, "
      "c_nationkey INTEGER, c_acctbal REAL)"));
  RQL_RETURN_IF_ERROR(db_->Exec(
      "CREATE TABLE orders (o_orderkey INTEGER, o_custkey INTEGER, "
      "o_orderstatus TEXT, o_totalprice REAL, o_orderdate TEXT)"));
  RQL_RETURN_IF_ERROR(db_->Exec(
      "CREATE TABLE lineitem (l_orderkey INTEGER, l_partkey INTEGER, "
      "l_linenumber INTEGER, l_quantity REAL, l_extendedprice REAL, "
      "l_shipdate TEXT)"));
  if (config_.create_indexes) {
    RQL_RETURN_IF_ERROR(
        db_->Exec("CREATE INDEX pk_part ON part (p_partkey)"));
    RQL_RETURN_IF_ERROR(
        db_->Exec("CREATE INDEX pk_customer ON customer (c_custkey)"));
    RQL_RETURN_IF_ERROR(
        db_->Exec("CREATE INDEX pk_orders ON orders (o_orderkey)"));
    RQL_RETURN_IF_ERROR(
        db_->Exec("CREATE INDEX pk_lineitem ON lineitem (l_orderkey)"));
  }
  if (config_.index_lineitem_partkey) {
    // Covering index for the paper's Qq_cpu join: includes the aggregated
    // column so probes are index-only.
    RQL_RETURN_IF_ERROR(db_->Exec(
        "CREATE INDEX lineitem_partkey ON lineitem "
        "(l_partkey, l_extendedprice)"));
  }
  return Status::OK();
}

Status TpchGenerator::InsertOrderWithLineitems(int64_t orderkey) {
  int64_t custkey = 1 + static_cast<int64_t>(rng_.Uniform(
      static_cast<uint64_t>(customer_count_)));
  // TPC-H: roughly half the orders are still open ('O'), the rest
  // finished ('F') or in progress ('P').
  const char* status = rng_.Bernoulli(0.5) ? "O"
                       : rng_.Bernoulli(0.9) ? "F" : "P";
  int lineitems = 1 + static_cast<int>(rng_.Uniform(
      static_cast<uint64_t>(2 * config_.avg_lineitems_per_order - 1)));
  double total = 0;
  std::string date = OrderDate(&rng_);
  for (int line = 1; line <= lineitems; ++line) {
    int64_t partkey = 1 + static_cast<int64_t>(rng_.Uniform(
        static_cast<uint64_t>(part_count_)));
    double quantity = 1 + static_cast<double>(rng_.Uniform(50));
    double price = quantity * (900 + static_cast<double>(rng_.Uniform(
        100000)) / 100.0);
    total += price;
    RQL_RETURN_IF_ERROR(
        db_->AppendRow("lineitem",
                       {Value::Integer(orderkey), Value::Integer(partkey),
                        Value::Integer(line), Value::Real(quantity),
                        Value::Real(price), Value::Text(date)})
            .status());
  }
  return db_
      ->AppendRow("orders",
                  {Value::Integer(orderkey), Value::Integer(custkey),
                   Value::Text(status), Value::Real(total),
                   Value::Text(date)})
      .status();
}

Status TpchGenerator::Populate() {
  // Bulk load inside explicit transactions: one WAL commit per batch
  // instead of one per row.
  int64_t batched = 0;
  bool owns_txn = !db_->store()->in_transaction();
  auto batch_tick = [&]() -> Status {
    if (!owns_txn) return Status::OK();
    if (batched == 0) RQL_RETURN_IF_ERROR(db_->Exec("BEGIN"));
    if (++batched >= 2000) {
      RQL_RETURN_IF_ERROR(db_->Exec("COMMIT"));
      batched = 0;
    }
    return Status::OK();
  };
  auto batch_end = [&]() -> Status {
    if (owns_txn && batched > 0) return db_->Exec("COMMIT");
    return Status::OK();
  };
  for (int64_t p = 1; p <= part_count_; ++p) {
    RQL_RETURN_IF_ERROR(batch_tick());
    std::string name = std::string(kPartNames[rng_.Uniform(
        kPartNames.size())]) + " " + rng_.NextString(8);
    RQL_RETURN_IF_ERROR(
        db_->AppendRow("part",
                       {Value::Integer(p), Value::Text(name),
                        Value::Text(PartType(&rng_)),
                        Value::Real(900 + static_cast<double>(p % 200))})
            .status());
  }
  for (int64_t c = 1; c <= customer_count_; ++c) {
    RQL_RETURN_IF_ERROR(batch_tick());
    RQL_RETURN_IF_ERROR(
        db_->AppendRow("customer",
                       {Value::Integer(c),
                        Value::Text("Customer#" + std::to_string(c)),
                        Value::Integer(static_cast<int64_t>(rng_.Uniform(25))),
                        Value::Real(static_cast<double>(rng_.Uniform(
                            1000000)) / 100.0)})
            .status());
  }
  for (int64_t o = 0; o < initial_order_count_; ++o) {
    RQL_RETURN_IF_ERROR(batch_tick());
    RQL_RETURN_IF_ERROR(InsertOrderWithLineitems(next_orderkey_));
    ++next_orderkey_;
  }
  return batch_end();
}

Status TpchGenerator::RefreshInsert(int order_count) {
  for (int i = 0; i < order_count; ++i) {
    RQL_RETURN_IF_ERROR(InsertOrderWithLineitems(next_orderkey_));
    ++next_orderkey_;
  }
  return Status::OK();
}

Status TpchGenerator::AttachExisting() {
  RQL_ASSIGN_OR_RETURN(Value customers,
                       db_->QueryScalar("SELECT COUNT(*) FROM customer"));
  RQL_ASSIGN_OR_RETURN(Value parts,
                       db_->QueryScalar("SELECT COUNT(*) FROM part"));
  RQL_ASSIGN_OR_RETURN(
      Value lo, db_->QueryScalar("SELECT MIN(o_orderkey) FROM orders"));
  RQL_ASSIGN_OR_RETURN(
      Value hi, db_->QueryScalar("SELECT MAX(o_orderkey) FROM orders"));
  if (lo.is_null() || hi.is_null()) {
    return Status::InvalidArgument("cannot attach: orders table is empty");
  }
  customer_count_ = customers.AsInt();
  part_count_ = parts.AsInt();
  oldest_orderkey_ = lo.AsInt();
  next_orderkey_ = hi.AsInt() + 1;
  return Status::OK();
}

Status TpchGenerator::RefreshDelete(int order_count) {
  for (int i = 0; i < order_count && oldest_orderkey_ < next_orderkey_; ++i) {
    std::string key = std::to_string(oldest_orderkey_);
    RQL_RETURN_IF_ERROR(
        db_->Exec("DELETE FROM lineitem WHERE l_orderkey = " + key));
    RQL_RETURN_IF_ERROR(
        db_->Exec("DELETE FROM orders WHERE o_orderkey = " + key));
    ++oldest_orderkey_;
  }
  return Status::OK();
}

}  // namespace rql::tpch

#include "tpch/crash_torture.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "rql/rql.h"
#include "sql/database.h"
#include "storage/env.h"
#include "storage/fault_env.h"
#include "tpch/tpch.h"

namespace rql::tpch {
namespace {

std::string Serialize(const sql::QueryResult& r) {
  std::string out;
  for (const sql::Row& row : r.rows) {
    for (const sql::Value& v : row) {
      out += v.ToString();
      out += '|';
    }
    out += '\n';
  }
  return out;
}

constexpr char kOrdersSigSql[] =
    "o_orderkey, o_custkey, o_orderstatus, o_totalprice, o_orderdate "
    "FROM orders ORDER BY o_orderkey";
constexpr char kLineitemSigSql[] =
    "l_orderkey, l_linenumber, l_partkey, l_quantity, l_extendedprice "
    "FROM lineitem ORDER BY l_orderkey, l_linenumber";

/// Byte signature of the database state: every orders and lineitem row in
/// key order. `snap` = kNoSnapshot reads the current state, otherwise the
/// query runs AS OF that snapshot.
Result<std::string> StateSignature(sql::Database* db, retro::SnapshotId snap) {
  std::string as_of = snap == retro::kNoSnapshot
                          ? std::string()
                          : "AS OF " + std::to_string(snap) + " ";
  RQL_ASSIGN_OR_RETURN(sql::QueryResult orders,
                       db->Query("SELECT " + as_of + kOrdersSigSql));
  RQL_ASSIGN_OR_RETURN(sql::QueryResult items,
                       db->Query("SELECT " + as_of + kLineitemSigSql));
  return Serialize(orders) + "--\n" + Serialize(items);
}

/// One simulated process lifetime: data + metadata databases and the RQL
/// engine over them, all on the same Env.
struct Harness {
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;

  static Result<Harness> Open(storage::Env* env) {
    Harness h;
    RQL_ASSIGN_OR_RETURN(h.data, sql::Database::Open(env, "tort"));
    RQL_ASSIGN_OR_RETURN(h.meta, sql::Database::Open(env, "tortmeta"));
    h.engine = std::make_unique<RqlEngine>(h.data.get(), h.meta.get());
    return h;
  }
};

Status RunRqlChecks(Harness* h, int j, std::string* collate,
                    std::string* aggmax);

void ApplyEngineConfig(Harness* h, const TortureConfig& cfg) {
  if (cfg.async_prefetch) {
    h->engine->mutable_options()->async_prefetch = true;
  }
}

std::string Timestamp(int round) {
  std::string day = std::to_string(round);
  if (day.size() < 2) day = "0" + day;
  return "1992-01-" + day + " 00:00:00";
}

/// Schema + bulk load + update rounds; round r ends in COMMIT WITH
/// SNAPSHOT (declaring snapshot r) followed by the SnapIds insert. `acked`
/// counts rounds whose CommitWithSnapshot fully returned OK. When `sigs`
/// is non-null (fault-free runs) the current-state signature is captured
/// after schema creation and after each round; signature reads issue no
/// syncs, so capturing them does not shift kill-point numbering.
Status RunWorkload(storage::Env* env, const TortureConfig& cfg, int* acked,
                   std::vector<std::string>* sigs) {
  *acked = 0;
  RQL_ASSIGN_OR_RETURN(Harness h, Harness::Open(env));
  ApplyEngineConfig(&h, cfg);
  RQL_RETURN_IF_ERROR(h.engine->EnsureSnapIds());
  TpchConfig tc;
  tc.scale_factor = cfg.scale_factor;
  tc.seed = cfg.seed;
  TpchGenerator gen(h.data.get(), tc);
  RQL_RETURN_IF_ERROR(gen.CreateSchema());
  if (sigs != nullptr) {
    RQL_ASSIGN_OR_RETURN(std::string sig,
                         StateSignature(h.data.get(), retro::kNoSnapshot));
    sigs->push_back(std::move(sig));  // state 0: empty schema
  }
  for (int r = 1; r <= cfg.snapshots; ++r) {
    RQL_RETURN_IF_ERROR(h.data->Exec("BEGIN"));
    if (r == 1) {
      // The bulk load joins the declaring transaction so the whole round
      // is one commit (Populate defers to an enclosing transaction).
      RQL_RETURN_IF_ERROR(gen.Populate());
    } else {
      RQL_RETURN_IF_ERROR(gen.RefreshDelete(cfg.orders_per_snapshot));
      RQL_RETURN_IF_ERROR(gen.RefreshInsert(cfg.orders_per_snapshot));
    }
    RQL_ASSIGN_OR_RETURN(retro::SnapshotId snap,
                         h.engine->CommitWithSnapshot(Timestamp(r)));
    if (snap != static_cast<retro::SnapshotId>(r)) {
      return Status::Internal("expected snapshot " + std::to_string(r) +
                              ", declared " + std::to_string(snap));
    }
    *acked = r;
    if (sigs != nullptr) {
      RQL_ASSIGN_OR_RETURN(std::string sig,
                           StateSignature(h.data.get(), retro::kNoSnapshot));
      sigs->push_back(std::move(sig));
    }
  }
  if (cfg.memoize) {
    // Memoized pass: every executed iteration publishes (and syncs) a memo
    // record, adding one kill point per iteration to the schedule.
    RQL_ASSIGN_OR_RETURN(std::unique_ptr<retro::MemoTable> memo,
                         retro::MemoTable::Open(env, "tortmemo"));
    h.engine->mutable_options()->memoize_iterations = true;
    h.engine->mutable_options()->memo = memo.get();
    std::string collate, aggmax;
    RQL_RETURN_IF_ERROR(
        RunRqlChecks(&h, cfg.snapshots, &collate, &aggmax));
  }
  return Status::OK();
}

/// Runs both verification mechanisms over snapshots 1..j and serializes
/// their result tables. The engine runs with whatever options are
/// installed, so the same checks serve the memo-less oracle and the
/// memoized recovery passes.
Status RunRqlChecks(Harness* h, int j, std::string* collate,
                    std::string* aggmax) {
  std::string qs = "SELECT snap_id FROM SnapIds WHERE snap_id <= " +
                   std::to_string(j) + " ORDER BY snap_id";
  RQL_RETURN_IF_ERROR(h->engine->CollateData(
      qs,
      "SELECT o_orderkey, o_totalprice, current_snapshot() AS sid "
      "FROM orders",
      "TortCollate"));
  RQL_ASSIGN_OR_RETURN(
      sql::QueryResult c,
      h->meta->Query("SELECT sid, o_orderkey, o_totalprice FROM TortCollate "
                     "ORDER BY sid, o_orderkey"));
  *collate = Serialize(c);
  // The Qq must yield unique group keys per iteration: the aggregation
  // mechanism updates only the first index match for a duplicated key, so
  // duplicates would make the result depend on physical row order.
  RQL_RETURN_IF_ERROR(h->engine->AggregateDataInTable(
      qs,
      "SELECT o_custkey, MAX(o_totalprice) AS mx FROM orders "
      "GROUP BY o_custkey",
      "TortAgg", std::string("(mx,max)")));
  RQL_ASSIGN_OR_RETURN(sql::QueryResult a,
                       h->meta->Query("SELECT o_custkey, mx FROM TortAgg "
                                      "ORDER BY o_custkey"));
  *aggmax = Serialize(a);
  return Status::OK();
}

/// Everything the kill runs are compared against, computed fault-free.
struct Oracle {
  std::vector<std::string> state_sig;  // [r], r = 0..snapshots
  std::vector<std::string> collate_sig;  // [j-1], j = 1..snapshots
  std::vector<std::string> aggmax_sig;
  uint64_t sync_points = 0;
};

Status VerifyRecovered(storage::Env* env, const TortureConfig& cfg,
                       const Oracle& oracle, int acked, int k) {
  auto fail = [k](const std::string& what) {
    return Status::Internal("kill point " + std::to_string(k) + ": " + what);
  };
  auto opened = Harness::Open(env);
  if (!opened.ok()) {
    return fail("reopen after recovery failed: " +
                opened.status().ToString());
  }
  Harness h = std::move(*opened);
  ApplyEngineConfig(&h, cfg);

  // Recovery invariant 1: the mark of snapshot s is synced only after s's
  // declaring commit is WAL-durable and after CommitWithSnapshot acked
  // s - 1 at the latest, so acked <= latest <= acked + 1.
  int latest = static_cast<int>(h.data->store()->latest_snapshot());
  if (latest < acked || latest > acked + 1 || latest > cfg.snapshots) {
    return fail("latest_snapshot " + std::to_string(latest) +
                " outside [acked=" + std::to_string(acked) + ", acked+1]");
  }

  // Recovery invariant 2 (committed prefix): the current state is the
  // fault-free state after round `latest`, or after round `latest + 1`
  // when the declaring commit became durable but its snapshot mark was
  // lost with the crash.
  Result<std::string> cur = StateSignature(h.data.get(), retro::kNoSnapshot);
  if (!cur.ok()) {
    // The crash hit schema creation; no round can have committed.
    if (latest != 0 || acked != 0) {
      return fail("state unreadable after recovery: " +
                  cur.status().ToString());
    }
  } else {
    bool matches_latest = *cur == oracle.state_sig[latest];
    bool matches_next = latest + 1 <= cfg.snapshots &&
                        *cur == oracle.state_sig[latest + 1];
    if (!matches_latest && !matches_next) {
      return fail("recovered current state matches neither round " +
                  std::to_string(latest) + " nor round " +
                  std::to_string(latest + 1));
    }
  }

  // Recovery invariant 3: every surviving snapshot answers byte-identically
  // to the fault-free run (the archive-ahead ordering guarantees its
  // pre-states and mappings were durable before its mark).
  for (int s = 1; s <= latest; ++s) {
    RQL_ASSIGN_OR_RETURN(
        std::string sig,
        StateSignature(h.data.get(), static_cast<retro::SnapshotId>(s)));
    if (sig != oracle.state_sig[s]) {
      return fail("AS OF " + std::to_string(s) +
                  " differs from the fault-free state");
    }
  }

  // Recovery invariant 4: SnapIds holds exactly a prefix 1..m of the
  // surviving snapshots, with every acked declaration present.
  int m = 0;
  auto rows = h.meta->Query("SELECT snap_id FROM SnapIds ORDER BY snap_id");
  if (!rows.ok()) {
    if (acked != 0) {
      return fail("SnapIds unreadable with acked=" + std::to_string(acked) +
                  ": " + rows.status().ToString());
    }
  } else {
    for (const sql::Row& row : rows->rows) {
      if (row[0].AsInt() != m + 1) {
        return fail("SnapIds is not a dense prefix at row " +
                    std::to_string(m));
      }
      ++m;
    }
    if (m < acked || m > latest) {
      return fail("SnapIds rows " + std::to_string(m) + " outside [acked=" +
                  std::to_string(acked) +
                  ", latest=" + std::to_string(latest) + "]");
    }
  }

  // Recovery invariant 5: RQL over the surviving snapshot set matches the
  // fault-free oracle byte-for-byte.
  if (m >= 1) {
    std::string collate, aggmax;
    Status s = RunRqlChecks(&h, m, &collate, &aggmax);
    if (!s.ok()) return fail("RQL over recovered state: " + s.ToString());
    if (collate != oracle.collate_sig[static_cast<size_t>(m) - 1]) {
      return fail("CollateData over snapshots 1.." + std::to_string(m) +
                  " differs from the fault-free oracle");
    }
    if (aggmax != oracle.aggmax_sig[static_cast<size_t>(m) - 1]) {
      return fail("AggregateDataInTable over snapshots 1.." +
                  std::to_string(m) + " differs from the fault-free oracle");
    }
  }

  // Recovery invariant 6 (memoize only): the recovered memo log — however
  // much of it survived the crash, including a torn publish record — never
  // changes RQL answers. The first memoized pass replays whatever entries
  // recovered and recomputes the rest; a second pass runs fully warm. Both
  // must match the memo-less oracle byte-for-byte.
  if (cfg.memoize && m >= 1) {
    auto memo = retro::MemoTable::Open(env, "tortmemo");
    if (!memo.ok()) {
      return fail("memo reopen after recovery failed: " +
                  memo.status().ToString());
    }
    h.engine->mutable_options()->memoize_iterations = true;
    h.engine->mutable_options()->memo = memo->get();
    for (int pass = 1; pass <= 2; ++pass) {
      std::string collate, aggmax;
      Status s = RunRqlChecks(&h, m, &collate, &aggmax);
      if (!s.ok()) {
        return fail("memoized RQL pass " + std::to_string(pass) +
                    " over recovered state: " + s.ToString());
      }
      if (collate != oracle.collate_sig[static_cast<size_t>(m) - 1] ||
          aggmax != oracle.aggmax_sig[static_cast<size_t>(m) - 1]) {
        return fail("memoized RQL pass " + std::to_string(pass) +
                    " served rows differing from the memo-less oracle");
      }
    }
    // The second pass ran against a memo the first pass fully refreshed:
    // every iteration of its last mechanism must have replayed.
    int64_t hits = 0;
    for (const RqlIterationStats& it :
         h.engine->last_run_stats().iterations) {
      hits += it.memo_hits;
    }
    if (hits != m) {
      return fail("warm memoized pass replayed " + std::to_string(hits) +
                  " of " + std::to_string(m) + " iterations");
    }
  }
  return Status::OK();
}

}  // namespace

Status RunCrashTorture(const TortureConfig& cfg, TortureReport* report) {
  *report = TortureReport{};

  // Transparency reference: the workload on the raw in-memory env.
  std::vector<std::string> plain_sigs;
  int plain_acked = 0;
  {
    storage::InMemoryEnv plain;
    RQL_RETURN_IF_ERROR(RunWorkload(&plain, cfg, &plain_acked, &plain_sigs));
  }

  // Fault-free oracle through a FaultInjectionEnv with nothing armed; its
  // sync counter enumerates the kill-point space.
  Oracle oracle;
  storage::InMemoryEnv oracle_base;
  storage::FaultInjectionEnv oracle_env(&oracle_base, cfg.seed);
  int oracle_acked = 0;
  RQL_RETURN_IF_ERROR(
      RunWorkload(&oracle_env, cfg, &oracle_acked, &oracle.state_sig));
  if (oracle.state_sig != plain_sigs) {
    return Status::Internal(
        "FaultInjectionEnv with no faults armed changed observable "
        "behaviour");
  }
  oracle.sync_points = oracle_env.stats().syncs;

  // Per-prefix RQL expectations, computed on the oracle database. The
  // reopen also exercises clean-shutdown recovery.
  {
    RQL_ASSIGN_OR_RETURN(Harness oh, Harness::Open(&oracle_env));
    ApplyEngineConfig(&oh, cfg);
    for (int j = 1; j <= cfg.snapshots; ++j) {
      std::string collate, aggmax;
      RQL_RETURN_IF_ERROR(RunRqlChecks(&oh, j, &collate, &aggmax));
      oracle.collate_sig.push_back(std::move(collate));
      oracle.aggmax_sig.push_back(std::move(aggmax));
    }
  }

  report->sync_points = static_cast<int>(oracle.sync_points);
  int limit = report->sync_points;
  if (cfg.max_kill_points > 0 && cfg.max_kill_points < limit) {
    limit = cfg.max_kill_points;
  }

  for (int k = 1; k <= limit; ++k) {
    storage::InMemoryEnv base;
    storage::FaultInjectionEnv env(&base, cfg.seed);
    storage::FaultSpec spec;
    spec.op = storage::FaultOp::kSync;
    spec.kind = storage::FaultKind::kCrash;
    spec.after = static_cast<uint64_t>(k) - 1;
    env.Arm(spec);
    int acked = 0;
    Status ws = RunWorkload(&env, cfg, &acked, nullptr);
    if (ws.ok()) {
      return Status::Internal("kill point " + std::to_string(k) +
                              " was never reached (workload completed)");
    }
    if (!env.crashed()) {
      return Status::Internal("kill point " + std::to_string(k) +
                              ": workload failed before the crash fired: " +
                              ws.ToString());
    }
    RQL_RETURN_IF_ERROR(env.RecoverToSyncedState());
    RQL_RETURN_IF_ERROR(VerifyRecovered(&env, cfg, oracle, acked, k));
    ++report->completed_runs;
    if (cfg.verbose) {
      report->log.push_back("kill point " + std::to_string(k) + "/" +
                            std::to_string(limit) + ": acked " +
                            std::to_string(acked) + " round(s), recovered "
                            "and verified");
    }
  }
  report->kill_points = limit;
  return Status::OK();
}

}  // namespace rql::tpch

#ifndef RQL_TPCH_TPCH_H_
#define RQL_TPCH_TPCH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sql/database.h"

namespace rql::tpch {

/// Configuration of the TPC-H style data generator (a reimplementation of
/// the dbgen subset the paper's evaluation uses: part, customer, orders,
/// lineitem, plus the RF1/RF2 refresh functions).
struct TpchConfig {
  /// SF 1 corresponds to 150K customers / 1.5M orders / 200K parts as in
  /// the TPC-H specification. The paper uses SF 1 (1.4 GB); benchmarks
  /// here default to a laptop-scale fraction with identical structure.
  double scale_factor = 0.01;
  uint64_t seed = 42;
  /// Create the native primary-key indexes (orders.o_orderkey,
  /// lineitem.l_orderkey, part.p_partkey, customer.c_custkey). The paper's
  /// base database is loaded "without additional indices"; these key
  /// indexes are what the refresh functions need to run at all.
  bool create_indexes = true;
  /// Lineitems per order are uniform in [1, 2*avg-1]; TPC-H averages 4.
  int avg_lineitems_per_order = 4;
  /// Additionally build the "native index" on lineitem(l_partkey) used by
  /// the paper's Figure 9 join experiment. It must exist from the start so
  /// snapshots capture it.
  bool index_lineitem_partkey = false;
};

/// Deterministic TPC-H subset generator and refresh-function driver.
class TpchGenerator {
 public:
  TpchGenerator(sql::Database* db, TpchConfig config);

  /// CREATE TABLEs (and PK indexes when configured).
  Status CreateSchema();

  /// Bulk-loads the initial database state.
  Status Populate();

  /// TPC-H RF1: inserts `order_count` new orders (with lineitems) at the
  /// top of the key space.
  Status RefreshInsert(int order_count);

  /// TPC-H RF2: deletes the `order_count` oldest live orders and their
  /// lineitems (by key, through the native indexes).
  Status RefreshDelete(int order_count);

  /// Recovers the refresh key range and table counts from an existing
  /// database (reopened benchmark histories).
  Status AttachExisting();

  int64_t customer_count() const { return customer_count_; }
  int64_t order_count() const { return next_orderkey_ - oldest_orderkey_; }
  int64_t part_count() const { return part_count_; }
  int64_t initial_order_count() const { return initial_order_count_; }

  /// A part type string drawn from the TPC-H grammar, e.g.
  /// "STANDARD POLISHED TIN" (always a generated type).
  static std::string PartType(Random* rng);

  /// An ISO order date in [1992-01-01, 1998-08-02], uniform by day.
  static std::string OrderDate(Random* rng);

 private:
  Status InsertOrderWithLineitems(int64_t orderkey);

  sql::Database* db_;
  TpchConfig config_;
  Random rng_;
  int64_t customer_count_ = 0;
  int64_t part_count_ = 0;
  int64_t initial_order_count_ = 0;
  int64_t next_orderkey_ = 1;    // next key RF1 will use
  int64_t oldest_orderkey_ = 1;  // next key RF2 will delete
};

/// An update workload in the style of the paper's Table 1: between two
/// consecutive snapshot declarations a constant number of orders (and
/// their lineitems) is deleted and inserted. The per-snapshot count is
/// expressed via the overwrite-cycle length so that scaled-down databases
/// keep the paper's diff(S1,S2)/database ratio:
///   UW30 overwrites the database every 50 snapshots,
///   UW15 every 100, UW7.5 every 200, UW60 every 25.
struct WorkloadSpec {
  std::string name;
  int overwrite_cycle_snapshots;

  static WorkloadSpec UW7_5() { return {"UW7.5", 200}; }
  static WorkloadSpec UW15() { return {"UW15", 100}; }
  static WorkloadSpec UW30() { return {"UW30", 50}; }
  static WorkloadSpec UW60() { return {"UW60", 25}; }

  /// Orders deleted+inserted per snapshot for a given base order count.
  int OrdersPerSnapshot(int64_t initial_orders) const {
    return static_cast<int>(initial_orders / overwrite_cycle_snapshots);
  }
};

}  // namespace rql::tpch

#endif  // RQL_TPCH_TPCH_H_

#ifndef RQL_TPCH_CRASH_TORTURE_H_
#define RQL_TPCH_CRASH_TORTURE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rql::tpch {

/// Configuration of the crash-recovery torture harness.
///
/// The harness runs a TPC-H update workload that declares snapshots
/// (one explicit transaction of RF2+RF1 refreshes per snapshot), first
/// fault-free to enumerate every durability sync point and record oracle
/// answers, then once per sync point with a simulated crash (all un-synced
/// data lost) at exactly that point. After each crash it reopens the
/// database from the surviving bytes and asserts:
///   (a) WAL recovery restores exactly a committed-prefix state;
///   (b) every surviving snapshot answers AS OF queries byte-identically
///       to the fault-free run;
///   (c) the RQL mechanisms (CollateData, AggregateDataInTable) over the
///       surviving snapshot set match the fault-free oracle byte-for-byte.
struct TortureConfig {
  /// TPC-H scale factor of the base database (0.0002 -> 30 customers,
  /// 300 orders: small enough to re-run the workload once per sync point).
  double scale_factor = 0.0002;
  /// Snapshots declared: round 1 is the bulk load, rounds 2..snapshots
  /// each delete and insert `orders_per_snapshot` orders.
  int snapshots = 5;
  int orders_per_snapshot = 2;
  uint64_t seed = 42;
  /// Cap on the number of kill points exercised (0 = all of them).
  int max_kill_points = 0;
  /// Emit one report log line per kill point instead of only failures.
  bool verbose = false;
  /// When set, the workload ends with a memoized RQL pass over all
  /// declared snapshots (publishing into a persistent retro::MemoTable on
  /// the same Env), so the memo log's publish syncs join the kill-point
  /// space. Verification then reruns the memoized mechanisms from the
  /// recovered memo and asserts byte-identity against the memo-less
  /// oracle: a crash anywhere — including mid-publish — may lose memo
  /// entries but never serve stale rows.
  bool memoize = false;
  /// When set, every RQL pass — workload, oracle, and the per-kill-point
  /// recovery checks — runs with the background prefetch pipeline on. Its
  /// archive reads issue no syncs, so the kill-point schedule is unchanged;
  /// what it exercises is a crash landing while background fetches are in
  /// flight (the parked error must surface, never wedge a worker) and
  /// byte-identity of every recovered answer with the prefetch-less oracle.
  bool async_prefetch = false;
};

struct TortureReport {
  /// Durability sync points in the fault-free run (the kill-point space).
  int sync_points = 0;
  /// Kill points actually exercised (== sync_points unless capped).
  int kill_points = 0;
  /// Kill runs that crashed, recovered and passed all checks.
  int completed_runs = 0;
  std::vector<std::string> log;
};

/// Runs the full torture schedule. Any recovery-invariant violation is
/// returned as a non-OK status naming the kill point and the failed check.
Status RunCrashTorture(const TortureConfig& config, TortureReport* report);

}  // namespace rql::tpch

#endif  // RQL_TPCH_CRASH_TORTURE_H_

#include "tpch/workload.h"

namespace rql::tpch {

std::string History::QsInterval(retro::SnapshotId first, int count,
                                int step) const {
  // Snapshot ids are dense (1..Slast), so an interval with a step is a
  // simple predicate over SnapIds — Qs is ordinary SQL, as in the paper.
  retro::SnapshotId last_exclusive =
      first + static_cast<retro::SnapshotId>(count * step);
  std::string qs = "SELECT snap_id FROM SnapIds WHERE snap_id >= " +
                   std::to_string(first) + " AND snap_id < " +
                   std::to_string(last_exclusive);
  if (step > 1) {
    qs += " AND (snap_id - " + std::to_string(first) + ") % " +
          std::to_string(step) + " = 0";
  }
  qs += " ORDER BY snap_id";
  return qs;
}

Result<std::unique_ptr<History>> BuildHistory(storage::Env* env,
                                              const std::string& name,
                                              const HistoryConfig& config) {
  auto history = std::make_unique<History>();
  history->config_ = config;
  RQL_ASSIGN_OR_RETURN(history->data_,
                       sql::Database::Open(env, name + "_data"));
  RQL_ASSIGN_OR_RETURN(history->meta_,
                       sql::Database::Open(env, name + "_meta"));
  history->engine_ = std::make_unique<RqlEngine>(history->data_.get(),
                                                 history->meta_.get());
  RQL_RETURN_IF_ERROR(history->engine_->EnsureSnapIds());
  history->generator_ = std::make_unique<TpchGenerator>(history->data_.get(),
                                                        config.tpch);
  TpchGenerator* gen = history->generator_.get();
  sql::Database* data = history->data_.get();

  retro::SnapshotId existing = data->store()->latest_snapshot();
  if (existing == static_cast<retro::SnapshotId>(config.snapshots)) {
    // Reopened a previously built history: recover the refresh key range.
    RQL_RETURN_IF_ERROR(gen->AttachExisting());
    return history;
  }
  if (existing != retro::kNoSnapshot) {
    return Status::InvalidArgument(
        "history '" + name + "' exists with " + std::to_string(existing) +
        " snapshots, expected " + std::to_string(config.snapshots) +
        "; delete the files or use a different name");
  }

  RQL_RETURN_IF_ERROR(gen->CreateSchema());
  RQL_RETURN_IF_ERROR(gen->Populate());
  int per_snapshot =
      config.workload.OrdersPerSnapshot(gen->initial_order_count());
  if (per_snapshot < 1) per_snapshot = 1;
  for (int s = 1; s <= config.snapshots; ++s) {
    RQL_RETURN_IF_ERROR(data->Exec("BEGIN"));
    Status st = gen->RefreshDelete(per_snapshot);
    if (st.ok()) st = gen->RefreshInsert(per_snapshot);
    if (!st.ok()) {
      (void)data->Exec("ROLLBACK");
      return st;
    }
    RQL_RETURN_IF_ERROR(history->engine_
                            ->CommitWithSnapshot("snap-" + std::to_string(s),
                                                 config.workload.name)
                            .status());
  }
  return history;
}

}  // namespace rql::tpch

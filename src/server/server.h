#ifndef RQL_SERVER_SERVER_H_
#define RQL_SERVER_SERVER_H_

// The RQL server: a Unix-domain-socket daemon front end over one
// SnapshotStore. Each connection is a Session (attached handle + private
// metadata database + engine, see session.h); RQL mechanism runs go
// through the RunScheduler (admission control, per-session fairness,
// worker budgets, cooperative cancel, see scheduler.h); frames are the
// wire.h protocol.
//
// Concurrency model:
//   * AS OF SELECT scripts run concurrently, each on its session's
//     attached handle — the store's reader locks, snapshot page cache,
//     SharedScanCache and coalesced SPT builds do the sharing, exactly as
//     bench_concurrent_runs exercises in-process.
//   * Everything that writes — non-AS-OF SQL, snapshot declaration,
//     truncation — executes on the owning handle under one server-wide
//     write mutex, and the canonical SnapIds table lives in the owner's
//     metadata database. Sessions mirror it into their private metadata
//     database before each run or .meta statement.
//   * Attached catalogs are loaded at session creation and not refreshed
//     on concurrent DDL (the Database::Attach contract); schema listings
//     therefore always read the owner catalog.
//
// Shutdown and disconnect are cancellation-safe: the session's queued and
// running runs are cancelled and drained (scheduler slots and worker
// budget released, partial result tables dropped by the engine's failed-
// run path, store pins released by the attached handle's destructor)
// before the session is destroyed, so the store stays fully usable by the
// remaining sessions.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "retro/metrics.h"
#include "rql/rql.h"
#include "server/scheduler.h"
#include "server/session.h"
#include "server/wire.h"
#include "sql/database.h"
#include "sql/shared_scan_cache.h"
#include "storage/env.h"

namespace rql::server {

struct ServerOptions {
  /// Filesystem path of the Unix-domain listening socket (unlinked and
  /// rebound on Start).
  std::string socket_path;
  /// Concurrent sessions; kHello beyond it is rejected with kError.
  int max_sessions = 32;
  RunScheduler::Options scheduler;
  /// Sessions idle longer than this are disconnected by the reaper
  /// (their socket is shut down; teardown then runs the normal
  /// disconnect path). 0 disables the timeout.
  int64_t idle_timeout_us = 0;
  /// Base RqlOptions for session engines. The server injects
  /// shared_scan_cache, metrics, session_id and the per-run cancel/run_id
  /// wiring itself; everything else (reuse_decoded_pages,
  /// batch_execution, incremental_spt, ...) is taken as configured here.
  RqlOptions engine;
  /// Receives the server gauges (server.active_sessions,
  /// server.queued_runs, server.active_runs, server.admission_rejects,
  /// server.sessions_opened, server.runs_completed). Defaults to
  /// MetricsRegistry::Default().
  retro::MetricsRegistry* metrics = nullptr;
};

class Server {
 public:
  /// Serves databases owned by the caller (tests and benches over an
  /// existing tpch::History). `data`/`meta` must outlive the server.
  static Result<std::unique_ptr<Server>> Create(sql::Database* data,
                                                sql::Database* meta,
                                                ServerOptions options);

  /// Opens (or creates) `<prefix>_data` / `<prefix>_meta` in `env` and
  /// serves them — the rql_serverd entry point. `env` must outlive the
  /// server.
  static Result<std::unique_ptr<Server>> Open(storage::Env* env,
                                              const std::string& prefix,
                                              ServerOptions options);

  ~Server();

  /// Binds the socket and starts the accept, dispatcher and reaper
  /// threads.
  Status Start();

  /// Stops accepting, disconnects every session (cancelling its runs) and
  /// joins all threads. Idempotent; the destructor calls it.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }

  /// The kStats document (also returned over the wire): server, scheduler,
  /// shared scan cache and store sections.
  std::string StatsJson();

  RunScheduler* scheduler() { return scheduler_.get(); }
  sql::SharedScanCache* scan_cache() { return &scan_cache_; }
  sql::Database* data() { return data_; }
  sql::Database* meta() { return meta_; }
  int64_t sessions_opened() const { return sessions_opened_.load(); }
  int64_t active_sessions() const { return active_sessions_.load(); }

 private:
  struct Conn {
    int fd = -1;
    std::thread thread;
    /// Serializes frame writes: request replies from the connection
    /// thread interleave with out-of-band kRunDone frames pushed by
    /// scheduler dispatch threads.
    std::mutex write_mu;
    std::unique_ptr<Session> session;
    std::atomic<int64_t> last_active_us{0};
    std::atomic<bool> done{false};
  };

  Server() = default;
  static Result<std::unique_ptr<Server>> Finish(ServerOptions options,
                                                std::unique_ptr<Server> s);

  void AcceptLoop();
  void ReaperLoop();
  void HandleConn(Conn* conn);
  /// One request frame; returns false when the connection should close.
  bool HandleFrame(Conn* conn, const Frame& frame);
  Status SendReply(Conn* conn, MsgType type, const std::string& payload);
  Status SendError(Conn* conn, const Status& error);
  Status SendResult(Conn* conn, const sql::QueryResult& result);
  /// Canonical SnapIds from the owner metadata database (write lock).
  Result<sql::QueryResult> CanonicalSnapIds();
  /// True when every statement of `sql` is a SELECT with an AS OF clause —
  /// the read-only shape that may run on the session's attached handle
  /// without the write lock.
  static bool IsSnapshotReadScript(const std::string& sql);

  Status HandleRqlRun(Conn* conn, const Frame& frame);

  ServerOptions options_;
  retro::MetricsRegistry* metrics_ = nullptr;

  // Set by Open (owning) — Create leaves them empty and borrows.
  std::unique_ptr<sql::Database> owned_data_;
  std::unique_ptr<sql::Database> owned_meta_;
  sql::Database* data_ = nullptr;
  sql::Database* meta_ = nullptr;
  std::unique_ptr<RqlEngine> owner_engine_;
  /// Serializes every use of the owner handles (writes, schema listings,
  /// canonical SnapIds reads, snapshot declaration, truncation).
  std::mutex write_mu_;

  sql::SharedScanCache scan_cache_;
  std::unique_ptr<RunScheduler> scheduler_;

  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;
  std::thread reaper_thread_;

  std::mutex conns_mu_;
  std::map<uint64_t, std::unique_ptr<Conn>> conns_;
  uint64_t next_conn_id_ = 1;
  std::atomic<uint64_t> next_session_id_{1};
  std::atomic<int64_t> active_sessions_{0};
  std::atomic<int64_t> sessions_opened_{0};
  std::atomic<int64_t> runs_completed_{0};
};

}  // namespace rql::server

#endif  // RQL_SERVER_SERVER_H_

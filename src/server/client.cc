#include "server/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "sql/value.h"

namespace rql::server {

Result<std::unique_ptr<Client>> Client::Connect(
    const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " + socket_path);
  }
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Status::IoError("connect " + socket_path + ": " +
                                std::strerror(errno));
    ::close(fd);
    return st;
  }
  std::unique_ptr<Client> client(new Client());
  client->fd_ = fd;
  std::string hello;
  PutU32(&hello, kWireVersion);
  RQL_ASSIGN_OR_RETURN(
      Frame reply,
      client->Roundtrip(MsgType::kHello, hello, MsgType::kHelloOk));
  WireReader reader(reply.payload);
  uint32_t version = 0;
  if (!reader.GetU64(&client->session_id_) || !reader.GetU32(&version)) {
    return reader.status();
  }
  return client;
}

Client::~Client() {
  if (fd_ >= 0) {
    (void)WriteFrame(fd_, MsgType::kGoodbye, "");
    ::close(fd_);
  }
}

Result<Frame> Client::ReadReply() {
  while (true) {
    RQL_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
    if (frame.type == MsgType::kRunDone) {
      RQL_ASSIGN_OR_RETURN(RunResult done, DecodeRunDone(frame));
      done_runs_[done.run_id] = std::move(done);
      continue;
    }
    return frame;
  }
}

Result<Frame> Client::Roundtrip(MsgType type, const std::string& payload,
                                MsgType want) {
  RQL_RETURN_IF_ERROR(WriteFrame(fd_, type, payload));
  RQL_ASSIGN_OR_RETURN(Frame reply, ReadReply());
  if (reply.type == MsgType::kError) {
    WireReader reader(reply.payload);
    uint8_t code = 0;
    std::string message;
    if (!reader.GetU8(&code) || !reader.GetString(&message)) {
      return reader.status();
    }
    return Status(static_cast<StatusCode>(code), std::move(message));
  }
  if (reply.type != want) {
    return Status::Corruption("unexpected reply frame type " +
                              std::to_string(static_cast<int>(reply.type)));
  }
  return reply;
}

Result<sql::QueryResult> Client::DecodeResult(const Frame& frame) {
  WireReader reader(frame.payload);
  uint32_t ncols = 0;
  sql::QueryResult result;
  if (!reader.GetU32(&ncols)) return reader.status();
  result.columns.resize(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    if (!reader.GetString(&result.columns[i])) return reader.status();
  }
  uint32_t nrows = 0;
  if (!reader.GetU32(&nrows)) return reader.status();
  result.rows.reserve(nrows);
  for (uint32_t i = 0; i < nrows; ++i) {
    std::string encoded;
    if (!reader.GetString(&encoded)) return reader.status();
    RQL_ASSIGN_OR_RETURN(sql::Row row, sql::DecodeRow(encoded));
    result.rows.push_back(std::move(row));
  }
  return result;
}

Result<Client::RunResult> Client::DecodeRunDone(const Frame& frame) {
  WireReader reader(frame.payload);
  RunResult done;
  uint8_t code = 0;
  std::string message;
  if (!reader.GetU64(&done.run_id) || !reader.GetU8(&code) ||
      !reader.GetString(&message) || !reader.GetU32(&done.iterations) ||
      !reader.GetI64(&done.total_us) ||
      !reader.GetI64(&done.shared_page_hits) ||
      !reader.GetI64(&done.coalesced_decodes) ||
      !reader.GetI64(&done.iterations_skipped)) {
    return reader.status();
  }
  done.status = code == 0 ? Status::OK()
                          : Status(static_cast<StatusCode>(code),
                                   std::move(message));
  return done;
}

Result<sql::QueryResult> Client::Sql(const std::string& sql) {
  std::string payload;
  PutString(&payload, sql);
  RQL_ASSIGN_OR_RETURN(
      Frame reply, Roundtrip(MsgType::kSql, payload, MsgType::kResult));
  return DecodeResult(reply);
}

Result<sql::QueryResult> Client::MetaSql(const std::string& sql) {
  std::string payload;
  PutString(&payload, sql);
  RQL_ASSIGN_OR_RETURN(
      Frame reply, Roundtrip(MsgType::kMetaSql, payload, MsgType::kResult));
  return DecodeResult(reply);
}

Result<retro::SnapshotId> Client::DeclareSnapshot(const std::string& label) {
  std::string payload;
  PutString(&payload, label);
  RQL_ASSIGN_OR_RETURN(
      Frame reply,
      Roundtrip(MsgType::kSnapshot, payload, MsgType::kSnapshotDone));
  WireReader reader(reply.payload);
  uint32_t snap = 0;
  if (!reader.GetU32(&snap)) return reader.status();
  return static_cast<retro::SnapshotId>(snap);
}

Result<sql::QueryResult> Client::ListSnapshots() {
  RQL_ASSIGN_OR_RETURN(
      Frame reply, Roundtrip(MsgType::kListSnapshots, "", MsgType::kResult));
  return DecodeResult(reply);
}

Result<sql::QueryResult> Client::ListSchema(bool indexes) {
  std::string payload;
  PutU8(&payload, indexes ? 1 : 0);
  RQL_ASSIGN_OR_RETURN(
      Frame reply, Roundtrip(MsgType::kListSchema, payload, MsgType::kResult));
  return DecodeResult(reply);
}

Result<std::string> Client::RunStatsText() {
  RQL_ASSIGN_OR_RETURN(
      Frame reply, Roundtrip(MsgType::kRunStats, "", MsgType::kStatsJson));
  WireReader reader(reply.payload);
  std::string text;
  if (!reader.GetString(&text)) return reader.status();
  return text;
}

Result<std::string> Client::StatsJson() {
  RQL_ASSIGN_OR_RETURN(Frame reply,
                       Roundtrip(MsgType::kStats, "", MsgType::kStatsJson));
  WireReader reader(reply.payload);
  std::string json;
  if (!reader.GetString(&json)) return reader.status();
  return json;
}

Result<retro::SnapshotId> Client::Truncate(retro::SnapshotId keep_from) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(keep_from));
  RQL_ASSIGN_OR_RETURN(Frame reply,
                       Roundtrip(MsgType::kTruncate, payload, MsgType::kOk));
  WireReader reader(reply.payload);
  uint32_t earliest = 0;
  if (!reader.GetU32(&earliest)) return reader.status();
  return static_cast<retro::SnapshotId>(earliest);
}

Result<uint64_t> Client::StartRun(Mechanism mechanism, const std::string& qs,
                                  const std::string& qq,
                                  const std::string& table,
                                  const std::string& extra, int workers) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(mechanism));
  PutU32(&payload, static_cast<uint32_t>(workers < 1 ? 1 : workers));
  PutString(&payload, qs);
  PutString(&payload, qq);
  PutString(&payload, table);
  PutString(&payload, extra);
  RQL_ASSIGN_OR_RETURN(
      Frame reply, Roundtrip(MsgType::kRqlRun, payload, MsgType::kRunQueued));
  WireReader reader(reply.payload);
  uint64_t run_id = 0;
  if (!reader.GetU64(&run_id)) return reader.status();
  return run_id;
}

Result<Client::RunResult> Client::WaitRun(uint64_t run_id) {
  while (true) {
    auto it = done_runs_.find(run_id);
    if (it != done_runs_.end()) {
      RunResult done = std::move(it->second);
      done_runs_.erase(it);
      return done;
    }
    RQL_ASSIGN_OR_RETURN(Frame frame, ReadFrame(fd_));
    if (frame.type != MsgType::kRunDone) {
      // The client is synchronous: with no request outstanding, nothing
      // but a run completion may arrive here.
      return Status::Corruption("unexpected frame while waiting for run");
    }
    RQL_ASSIGN_OR_RETURN(RunResult done, DecodeRunDone(frame));
    done_runs_[done.run_id] = std::move(done);
  }
}

Status Client::CancelRun(uint64_t run_id) {
  std::string payload;
  PutU64(&payload, run_id);
  return Roundtrip(MsgType::kCancelRun, payload, MsgType::kOk).status();
}

Result<uint32_t> Client::Prepare(const std::string& sql) {
  std::string payload;
  PutString(&payload, sql);
  RQL_ASSIGN_OR_RETURN(
      Frame reply, Roundtrip(MsgType::kPrepare, payload, MsgType::kPrepared));
  WireReader reader(reply.payload);
  uint32_t stmt_id = 0;
  if (!reader.GetU32(&stmt_id)) return reader.status();
  return stmt_id;
}

Status Client::BindAsOf(uint32_t stmt_id, retro::SnapshotId snap) {
  std::string payload;
  PutU32(&payload, stmt_id);
  PutU32(&payload, static_cast<uint32_t>(snap));
  return Roundtrip(MsgType::kBindAsOf, payload, MsgType::kOk).status();
}

Status Client::BindValue(uint32_t stmt_id, int index,
                         const sql::Value& value) {
  std::string payload;
  PutU32(&payload, stmt_id);
  PutU32(&payload, static_cast<uint32_t>(index));
  PutString(&payload, sql::EncodeRow({value}));
  return Roundtrip(MsgType::kBindValue, payload, MsgType::kOk).status();
}

Result<sql::QueryResult> Client::ExecPrepared(uint32_t stmt_id) {
  std::string payload;
  PutU32(&payload, stmt_id);
  RQL_ASSIGN_OR_RETURN(
      Frame reply,
      Roundtrip(MsgType::kExecPrepared, payload, MsgType::kResult));
  return DecodeResult(reply);
}

Status Client::ClosePrepared(uint32_t stmt_id) {
  std::string payload;
  PutU32(&payload, stmt_id);
  return Roundtrip(MsgType::kClosePrepared, payload, MsgType::kOk).status();
}

}  // namespace rql::server

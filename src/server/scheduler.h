#ifndef RQL_SERVER_SCHEDULER_H_
#define RQL_SERVER_SCHEDULER_H_

// The daemon's run scheduler: admission control over a bounded queue,
// fair FIFO-per-session dispatch, per-run worker budgets carved from one
// shared pool, and cooperative cancellation.
//
// Fairness: each session owns a FIFO of its pending runs; ready sessions
// rotate round-robin, so one chatty session cannot starve the others —
// it gets one dispatched run per rotation like everyone else. At most
// one run per session executes at a time (runs of a session share its
// engine and attached database handle, which are single-run by
// contract); dispatch slots freed by a session's completion go to the
// next ready session, not back to it.
//
// Admission: Submit rejects once `queue_limit` runs are pending across
// all sessions (the running ones do not count). Rejections are cheap and
// immediate — the overload signal a front end wants to surface to
// clients instead of queueing unboundedly.
//
// Worker budgets: a run asking for N parallel Qq workers is granted
// min(N, available) from a shared pool of `worker_budget` at dispatch
// time, never less than 1 (a sequential run borrows no budget). The
// grant is released when the run finishes, so concurrent runs divide the
// machine instead of oversubscribing it.
//
// Cancellation: every run carries an atomic flag the engine polls at
// iteration boundaries (RqlOptions::cancel). Cancelling a queued run
// completes it immediately with Status::Aborted without dispatching.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace rql::server {

class RunScheduler {
 public:
  struct Options {
    /// Concurrent runs (dispatcher threads).
    int dispatch_threads = 2;
    /// Pending (queued, not yet dispatched) runs across all sessions
    /// before Submit rejects.
    int queue_limit = 16;
    /// Total parallel-Qq workers shared by concurrently executing runs.
    int worker_budget = 4;
  };

  /// Shared state of one scheduled run. The scheduler owns completion;
  /// the submitter holds the shared_ptr to Wait on and Cancel through.
  struct Ticket {
    uint64_t run_id = 0;
    uint64_t session_id = 0;
    /// Polled by the engine at iteration boundaries (RqlOptions::cancel).
    std::atomic<bool> cancel{false};
    /// Workers granted from the shared pool (set at dispatch, before the
    /// body runs; 1 for runs that found the pool empty).
    int granted_workers = 1;

    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    Status status;
    /// Lock-free mirror of `done` for cheap pruning of finished-run
    /// registries (Session::TrackRun).
    std::atomic<bool> finished{false};
    /// Invoked exactly once when the run completes — whether the body
    /// executed, the run was reaped while queued (cancel), or it was
    /// drained at shutdown. Runs after `status`/`done` are set and
    /// before CancelSession can observe the run as gone, so a callback
    /// that notifies the submitting connection never outlives it. Called
    /// with no scheduler lock held.
    std::function<void(const Ticket&)> on_complete;
  };

  /// The run body, executed on a dispatcher thread. Reads
  /// `ticket->granted_workers` and must hand `&ticket->cancel` to the
  /// engine so cancellation can interrupt it.
  using RunFn = std::function<Status(Ticket* ticket)>;

  explicit RunScheduler(Options options);
  ~RunScheduler();

  /// Queues a run for `session_id`. Fails with Aborted("admission
  /// control: ...") when the queue is full and after Shutdown (the
  /// completion callback is NOT invoked for rejected submissions).
  Result<std::shared_ptr<Ticket>> Submit(
      uint64_t session_id, int workers_requested, RunFn fn,
      std::function<void(const Ticket&)> on_complete = nullptr);

  /// Raises the cancel flag. A still-queued run completes with Aborted at
  /// its dispatch turn; a running one aborts at its next iteration
  /// boundary. Never blocks.
  void Cancel(const std::shared_ptr<Ticket>& ticket);

  /// Blocks until the run completes; returns its final status.
  Status Wait(Ticket* ticket);

  /// Cancels every queued and running run of `session_id` and blocks
  /// until all of them have completed — the disconnect path: after this
  /// returns, nothing in the scheduler references the session.
  void CancelSession(uint64_t session_id);

  /// Cancels everything and joins the dispatcher threads.
  void Shutdown();

  int64_t queued() const;
  int64_t active() const;
  int64_t admission_rejects() const;
  int64_t completed() const;
  int64_t cancelled() const;
  int worker_budget() const { return options_.worker_budget; }
  int queue_limit() const { return options_.queue_limit; }

 private:
  struct Pending {
    std::shared_ptr<Ticket> ticket;
    RunFn fn;
    int workers_requested = 1;
  };
  struct SessionQueue {
    std::deque<Pending> q;
    /// True while a run of this session executes; the session is not in
    /// `rr_` meanwhile, enforcing one-run-per-session.
    bool busy = false;
  };

  void DispatchLoop();
  /// Completes a ticket and updates per-session inflight accounting.
  /// Call without `mu_` held (takes the ticket lock).
  void Complete(const std::shared_ptr<Ticket>& ticket, Status status);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  /// Signalled whenever a run completes (CancelSession waits on it).
  std::condition_variable done_cv_;
  std::map<uint64_t, SessionQueue> sessions_;
  /// Ready sessions (non-empty queue, not busy), round-robin order; each
  /// ready session appears exactly once.
  std::deque<uint64_t> rr_;
  /// Ticket of the run currently executing per session, for
  /// CancelSession to reach in-flight runs.
  std::map<uint64_t, std::shared_ptr<Ticket>> running_;
  /// Queued + running runs per session; entries removed at zero.
  std::map<uint64_t, int> inflight_;
  int queued_count_ = 0;
  int active_count_ = 0;
  int workers_avail_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
  std::atomic<int64_t> admission_rejects_{0};
  std::atomic<int64_t> completed_{0};
  std::atomic<int64_t> cancelled_{0};
};

}  // namespace rql::server

#endif  // RQL_SERVER_SCHEDULER_H_

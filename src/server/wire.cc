#include "server/wire.h"

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace rql::server {

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

bool WireReader::Take(size_t n, const char** p) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *p = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::GetU8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool WireReader::GetU32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::GetU64(uint64_t* v) {
  const char* p = nullptr;
  if (!Take(8, &p)) return false;
  uint64_t out = 0;
  for (int i = 0; i < 8; ++i) {
    out |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool WireReader::GetI64(int64_t* v) {
  uint64_t u = 0;
  if (!GetU64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::GetString(std::string* s) {
  uint32_t len = 0;
  if (!GetU32(&len)) return false;
  const char* p = nullptr;
  if (!Take(len, &p)) return false;
  s->assign(p, len);
  return true;
}

namespace {

/// Sends the whole buffer, retrying on EINTR and partial writes.
/// MSG_NOSIGNAL turns a peer hangup into EPIPE instead of a fatal
/// SIGPIPE, so server and tests need no global signal handler.
Status SendAll(int fd, const char* data, size_t len) {
  while (len > 0) {
    ssize_t n = send(fd, data, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("send: ") + std::strerror(errno));
    }
    data += n;
    len -= static_cast<size_t>(n);
  }
  return Status::OK();
}

/// Reads exactly `len` bytes. `*eof` is set (and OK returned) only when
/// the connection closes cleanly before the first byte.
Status RecvAll(int fd, char* data, size_t len, bool* eof) {
  *eof = false;
  size_t got = 0;
  while (got < len) {
    ssize_t n = recv(fd, data + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(std::string("recv: ") + std::strerror(errno));
    }
    if (n == 0) {
      if (got == 0) {
        *eof = true;
        return Status::OK();
      }
      return Status::IoError("connection closed mid-frame");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFrame(int fd, MsgType type, std::string_view payload) {
  if (payload.size() > kMaxFramePayload) {
    return Status::InvalidArgument("frame payload exceeds kMaxFramePayload");
  }
  std::string header;
  header.reserve(5);
  PutU32(&header, static_cast<uint32_t>(payload.size()));
  PutU8(&header, static_cast<uint8_t>(type));
  RQL_RETURN_IF_ERROR(SendAll(fd, header.data(), header.size()));
  return SendAll(fd, payload.data(), payload.size());
}

Result<Frame> ReadFrame(int fd) {
  char header[5];
  bool eof = false;
  RQL_RETURN_IF_ERROR(RecvAll(fd, header, sizeof(header), &eof));
  if (eof) return Status::IoError("connection closed");
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) {
    len |= static_cast<uint32_t>(static_cast<uint8_t>(header[i])) << (8 * i);
  }
  if (len > kMaxFramePayload) {
    return Status::Corruption("frame payload length " + std::to_string(len) +
                              " exceeds protocol maximum");
  }
  Frame frame;
  frame.type = static_cast<MsgType>(static_cast<uint8_t>(header[4]));
  frame.payload.resize(len);
  if (len > 0) {
    RQL_RETURN_IF_ERROR(RecvAll(fd, frame.payload.data(), len, &eof));
    if (eof) return Status::IoError("connection closed mid-frame");
  }
  return frame;
}

}  // namespace rql::server

#include "server/server.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <sstream>
#include <utility>
#include <variant>

#include "common/clock.h"
#include "server/repl.h"
#include "sql/parser.h"
#include "sql/value.h"

namespace rql::server {

namespace {

constexpr int kPollIntervalMs = 100;

/// Closes `fd` ignoring EINTR quirks; -1 tolerated.
void CloseFd(int fd) {
  if (fd >= 0) ::close(fd);
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Create(sql::Database* data,
                                               sql::Database* meta,
                                               ServerOptions options) {
  std::unique_ptr<Server> s(new Server());
  s->data_ = data;
  s->meta_ = meta;
  return Finish(std::move(options), std::move(s));
}

Result<std::unique_ptr<Server>> Server::Open(storage::Env* env,
                                             const std::string& prefix,
                                             ServerOptions options) {
  std::unique_ptr<Server> s(new Server());
  RQL_ASSIGN_OR_RETURN(s->owned_data_,
                       sql::Database::Open(env, prefix + "_data"));
  RQL_ASSIGN_OR_RETURN(s->owned_meta_,
                       sql::Database::Open(env, prefix + "_meta"));
  s->data_ = s->owned_data_.get();
  s->meta_ = s->owned_meta_.get();
  return Finish(std::move(options), std::move(s));
}

Result<std::unique_ptr<Server>> Server::Finish(ServerOptions options,
                                               std::unique_ptr<Server> s) {
  if (options.socket_path.empty()) {
    return Status::InvalidArgument("ServerOptions::socket_path is required");
  }
  sockaddr_un addr{};
  if (options.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: " +
                                   options.socket_path);
  }
  s->options_ = std::move(options);
  s->metrics_ = s->options_.metrics != nullptr
                    ? s->options_.metrics
                    : retro::MetricsRegistry::Default();
  // Wire every session's engine into the store-scoped sharing machinery:
  // one SharedScanCache for all sessions, coalesced SPT builds in the
  // store — the bench_concurrent_runs "shared" configuration, always on
  // for the daemon.
  s->options_.engine.shared_scan_cache = &s->scan_cache_;
  s->options_.engine.metrics = s->metrics_;
  s->data_->store()->set_share_spt_builds(true);
  // The owner engine handles snapshot declaration and truncation; giving
  // it the shared cache keeps TruncateHistory's invalidation contract.
  RqlOptions owner_options = s->options_.engine;
  owner_options.session_id = 0;
  s->owner_engine_ =
      std::make_unique<RqlEngine>(s->data_, s->meta_, owner_options);
  RQL_RETURN_IF_ERROR(s->owner_engine_->EnsureSnapIds());
  s->scheduler_ = std::make_unique<RunScheduler>(s->options_.scheduler);
  return s;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  ::unlink(options_.socket_path.c_str());
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, options_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status st =
        Status::IoError("bind " + options_.socket_path + ": " +
                        std::strerror(errno));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  if (::listen(listen_fd_, 64) < 0) {
    Status st = Status::IoError(std::string("listen: ") +
                                std::strerror(errno));
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  metrics_->SetGauge("server.active_sessions",
                     [this] { return active_sessions_.load(); });
  metrics_->SetGauge("server.sessions_opened",
                     [this] { return sessions_opened_.load(); });
  metrics_->SetGauge("server.queued_runs",
                     [this] { return scheduler_->queued(); });
  metrics_->SetGauge("server.active_runs",
                     [this] { return scheduler_->active(); });
  metrics_->SetGauge("server.admission_rejects",
                     [this] { return scheduler_->admission_rejects(); });
  metrics_->SetGauge("server.runs_completed",
                     [this] { return runs_completed_.load(); });

  stop_.store(false);
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  reaper_thread_ = std::thread([this] { ReaperLoop(); });
  return Status::OK();
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;
  stop_.store(true);
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (reaper_thread_.joinable()) reaper_thread_.join();
  CloseFd(listen_fd_);
  listen_fd_ = -1;

  // Wake every connection thread; each runs its own teardown (cancelling
  // the session's runs through the scheduler) before exiting.
  std::map<uint64_t, std::unique_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& [id, conn] : conns) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
  }
  for (auto& [id, conn] : conns) {
    if (conn->thread.joinable()) conn->thread.join();
    CloseFd(conn->fd);
  }
  scheduler_->Shutdown();
  metrics_->RemoveGaugesWithPrefix("server.");
  ::unlink(options_.socket_path.c_str());
}

void Server::AcceptLoop() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int n = ::poll(&pfd, 1, kPollIntervalMs);
    if (n <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (stop_.load()) {
      CloseFd(fd);
      return;
    }
    std::lock_guard<std::mutex> lock(conns_mu_);
    uint64_t id = next_conn_id_++;
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->last_active_us.store(NowMicros());
    Conn* raw = conn.get();
    conns_[id] = std::move(conn);
    raw->thread = std::thread([this, raw] { HandleConn(raw); });
  }
}

void Server::ReaperLoop() {
  while (!stop_.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kPollIntervalMs));
    std::lock_guard<std::mutex> lock(conns_mu_);
    int64_t now = NowMicros();
    for (auto it = conns_.begin(); it != conns_.end();) {
      Conn* conn = it->second.get();
      if (conn->done.load()) {
        // The connection thread has fully torn down; reclaim it.
        if (conn->thread.joinable()) conn->thread.join();
        CloseFd(conn->fd);
        conn->fd = -1;
        it = conns_.erase(it);
        continue;
      }
      if (options_.idle_timeout_us > 0 &&
          now - conn->last_active_us.load() > options_.idle_timeout_us) {
        // Wake the blocked ReadFrame; the connection thread then runs the
        // normal disconnect teardown (cancel runs, release the session).
        ::shutdown(conn->fd, SHUT_RDWR);
      }
      ++it;
    }
  }
}

Status Server::SendReply(Conn* conn, MsgType type,
                         const std::string& payload) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  return WriteFrame(conn->fd, type, payload);
}

Status Server::SendError(Conn* conn, const Status& error) {
  std::string payload;
  PutU8(&payload, static_cast<uint8_t>(error.code()));
  PutString(&payload, error.message());
  return SendReply(conn, MsgType::kError, payload);
}

Status Server::SendResult(Conn* conn, const sql::QueryResult& result) {
  std::string payload;
  PutU32(&payload, static_cast<uint32_t>(result.columns.size()));
  for (const std::string& c : result.columns) PutString(&payload, c);
  PutU32(&payload, static_cast<uint32_t>(result.rows.size()));
  for (const sql::Row& row : result.rows) {
    PutString(&payload, sql::EncodeRow(row));
  }
  return SendReply(conn, MsgType::kResult, payload);
}

Result<sql::QueryResult> Server::CanonicalSnapIds() {
  std::lock_guard<std::mutex> lock(write_mu_);
  return meta_->Query("SELECT * FROM SnapIds");
}

bool Server::IsSnapshotReadScript(const std::string& sql) {
  auto statements = sql::ParseSql(sql);
  if (!statements.ok() || statements->empty()) return false;
  for (const sql::Statement& stmt : *statements) {
    const auto* select = std::get_if<sql::SelectStmt>(&stmt);
    if (select == nullptr) return false;
    if (select->as_of == 0 && select->as_of_param == nullptr) return false;
  }
  return true;
}

void Server::HandleConn(Conn* conn) {
  uint64_t session_id = 0;
  // --- handshake ------------------------------------------------------------
  {
    auto frame = ReadFrame(conn->fd);
    if (!frame.ok() || frame->type != MsgType::kHello) {
      conn->done.store(true);
      return;
    }
    WireReader reader(frame->payload);
    uint32_t version = 0;
    if (!reader.GetU32(&version) || version != kWireVersion) {
      (void)SendError(conn, Status::InvalidArgument(
                                "wire version mismatch: server speaks " +
                                std::to_string(kWireVersion)));
      conn->done.store(true);
      return;
    }
    if (active_sessions_.load() >= options_.max_sessions) {
      (void)SendError(conn, Status::Aborted(
                                "admission control: server at session "
                                "capacity"));
      conn->done.store(true);
      return;
    }
    session_id = next_session_id_.fetch_add(1);
    auto session =
        Session::Create(session_id, data_->store(), options_.engine);
    if (!session.ok()) {
      (void)SendError(conn, session.status());
      conn->done.store(true);
      return;
    }
    conn->session = std::move(*session);
    active_sessions_.fetch_add(1);
    sessions_opened_.fetch_add(1);
    std::string payload;
    PutU64(&payload, session_id);
    PutU32(&payload, kWireVersion);
    if (!SendReply(conn, MsgType::kHelloOk, payload).ok()) {
      conn->session.reset();
      active_sessions_.fetch_sub(1);
      conn->done.store(true);
      return;
    }
  }

  // --- request loop ---------------------------------------------------------
  while (!stop_.load()) {
    auto frame = ReadFrame(conn->fd);
    if (!frame.ok()) break;
    conn->last_active_us.store(NowMicros());
    conn->session->Touch();
    if (!HandleFrame(conn, *frame)) break;
  }

  // --- teardown -------------------------------------------------------------
  // Order matters: drain this session's runs out of the scheduler first
  // (queued ones complete Aborted, the running one aborts at its next
  // iteration boundary), THEN destroy the session — releasing prepared
  // statements, the engine and the attached handle — so no run body can
  // touch freed session state and the store is left fully reusable.
  scheduler_->CancelSession(session_id);
  conn->session.reset();
  active_sessions_.fetch_sub(1);
  conn->done.store(true);
}

Status Server::HandleRqlRun(Conn* conn, const Frame& frame) {
  WireReader reader(frame.payload);
  uint8_t mechanism = 0;
  uint32_t requested_workers = 0;
  std::string qs, qq, table, extra;
  reader.GetU8(&mechanism);
  reader.GetU32(&requested_workers);
  reader.GetString(&qs);
  reader.GetString(&qq);
  reader.GetString(&table);
  reader.GetString(&extra);
  RQL_RETURN_IF_ERROR(reader.status());
  if (mechanism > static_cast<uint8_t>(Mechanism::kCollateDataIntoIntervals)) {
    return Status::InvalidArgument("unknown RQL mechanism " +
                                   std::to_string(mechanism));
  }
  Mechanism mech = static_cast<Mechanism>(mechanism);
  // Snapshot the canonical SnapIds now (owner lock) and ship the copy
  // into the run body, which must not take the server write lock.
  RQL_ASSIGN_OR_RETURN(sql::QueryResult canonical, CanonicalSnapIds());
  Session* session = conn->session.get();

  // The body fills this; the completion callback reads it. No lock needed:
  // the scheduler sequences the body strictly before the callback, and for
  // runs reaped without dispatching (cancelled while queued, shutdown) the
  // zeroed defaults are exactly what kRunDone should carry.
  struct RunDoneStats {
    uint32_t iterations = 0;
    int64_t total_us = 0, shared_hits = 0, coalesced = 0, skipped = 0;
  };
  auto harvest = std::make_shared<RunDoneStats>();

  auto body = [session, harvest, mech, requested_workers,
               canonical = std::move(canonical), qs = std::move(qs),
               qq = std::move(qq), table = std::move(table),
               extra = std::move(extra)](RunScheduler::Ticket* t) -> Status {
    Status st;
    {
      std::lock_guard<std::mutex> lock(session->mu);
      st = session->ReplaceSnapIds(canonical);
      if (st.ok()) {
        RqlEngine* engine = session->engine();
        RqlOptions* opts = engine->mutable_options();
        opts->cancel = &t->cancel;
        opts->run_id = t->run_id;
        opts->parallel_workers =
            requested_workers > 1 ? t->granted_workers : 1;
        switch (mech) {
          case Mechanism::kCollateData:
            st = engine->CollateData(qs, qq, table);
            break;
          case Mechanism::kAggregateDataInVariable:
            st = engine->AggregateDataInVariable(qs, qq, table, extra);
            break;
          case Mechanism::kAggregateDataInTable:
            st = engine->AggregateDataInTable(qs, qq, table, extra);
            break;
          case Mechanism::kCollateDataIntoIntervals:
            st = engine->CollateDataIntoIntervals(qs, qq, table);
            break;
        }
        opts->cancel = nullptr;
        opts->run_id = 0;
        const RqlRunStats& stats = engine->last_run_stats();
        harvest->iterations = static_cast<uint32_t>(stats.iterations.size());
        harvest->total_us = stats.TotalUs();
        harvest->shared_hits = stats.shared_page_hits;
        harvest->coalesced = stats.coalesced_decodes;
        harvest->skipped = stats.iterations_skipped;
      }
    }
    return st;
  };

  // Pushed by the scheduler on every completion — including runs it reaps
  // without ever dispatching (cancelled while queued, shutdown drain),
  // which would otherwise leave the client's WaitRun blocked forever.
  auto push_done = [this, conn, harvest](const RunScheduler::Ticket& t) {
    runs_completed_.fetch_add(1);
    std::string done;
    PutU64(&done, t.run_id);
    PutU8(&done, static_cast<uint8_t>(t.status.code()));
    PutString(&done, t.status.message());
    PutU32(&done, harvest->iterations);
    PutI64(&done, harvest->total_us);
    PutI64(&done, harvest->shared_hits);
    PutI64(&done, harvest->coalesced);
    PutI64(&done, harvest->skipped);
    // The peer may already be gone (disconnect races run completion);
    // a failed push is fine, teardown drains the run either way.
    (void)SendReply(conn, MsgType::kRunDone, done);
  };

  RQL_ASSIGN_OR_RETURN(
      auto ticket,
      scheduler_->Submit(session->id(), static_cast<int>(requested_workers),
                         std::move(body), std::move(push_done)));
  session->TrackRun(ticket->run_id, ticket);
  std::string payload;
  PutU64(&payload, ticket->run_id);
  return SendReply(conn, MsgType::kRunQueued, payload);
}

bool Server::HandleFrame(Conn* conn, const Frame& frame) {
  Session* session = conn->session.get();
  switch (frame.type) {
    case MsgType::kSql: {
      WireReader reader(frame.payload);
      std::string sql;
      if (!reader.GetString(&sql)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      Result<sql::QueryResult> result = Status::OK();
      if (IsSnapshotReadScript(sql)) {
        // Pure snapshot reads: concurrent, on the session's attached
        // handle, sharing the store caches with every other session.
        std::lock_guard<std::mutex> lock(session->mu);
        result = session->data()->Query(sql);
      } else {
        // Anything that may write (or reads current state) serializes on
        // the owning handle, whose catalog is always fresh.
        std::lock_guard<std::mutex> lock(write_mu_);
        result = data_->Query(sql);
      }
      if (result.ok()) {
        (void)SendResult(conn, *result);
      } else {
        (void)SendError(conn, result.status());
      }
      return true;
    }
    case MsgType::kMetaSql: {
      WireReader reader(frame.payload);
      std::string sql;
      if (!reader.GetString(&sql)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      auto canonical = CanonicalSnapIds();
      if (!canonical.ok()) {
        (void)SendError(conn, canonical.status());
        return true;
      }
      std::lock_guard<std::mutex> lock(session->mu);
      Status refresh = session->ReplaceSnapIds(*canonical);
      if (!refresh.ok()) {
        (void)SendError(conn, refresh);
        return true;
      }
      auto result = session->meta()->Query(sql);
      Status finish = session->engine()->FinishUdfRuns();
      if (!result.ok()) {
        (void)SendError(conn, result.status());
      } else if (!finish.ok()) {
        (void)SendError(conn, finish);
      } else {
        (void)SendResult(conn, *result);
      }
      return true;
    }
    case MsgType::kSnapshot: {
      WireReader reader(frame.payload);
      std::string label;
      if (!reader.GetString(&label)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      std::lock_guard<std::mutex> lock(write_mu_);
      auto snap = owner_engine_->CommitWithSnapshot("", label);
      if (!snap.ok()) {
        (void)SendError(conn, snap.status());
        return true;
      }
      std::string payload;
      PutU32(&payload, static_cast<uint32_t>(*snap));
      (void)SendReply(conn, MsgType::kSnapshotDone, payload);
      return true;
    }
    case MsgType::kRqlRun: {
      Status st = HandleRqlRun(conn, frame);
      if (!st.ok()) (void)SendError(conn, st);
      return true;
    }
    case MsgType::kCancelRun: {
      // No session lock: this must reach a run that is holding it.
      WireReader reader(frame.payload);
      uint64_t run_id = 0;
      if (!reader.GetU64(&run_id)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      auto ticket = session->FindRun(run_id);
      if (ticket == nullptr) {
        (void)SendError(conn, Status::NotFound("unknown run " +
                                               std::to_string(run_id)));
        return true;
      }
      scheduler_->Cancel(ticket);
      (void)SendReply(conn, MsgType::kOk, "");
      return true;
    }
    case MsgType::kStats: {
      // No session lock either: stats must be pullable during a run.
      std::string payload;
      PutString(&payload, StatsJson());
      (void)SendReply(conn, MsgType::kStatsJson, payload);
      return true;
    }
    case MsgType::kListSchema: {
      WireReader reader(frame.payload);
      uint8_t kind = 0;
      if (!reader.GetU8(&kind)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      sql::QueryResult out;
      std::lock_guard<std::mutex> lock(write_mu_);
      if (kind == 1) {
        out.columns = {"index", "table"};
        for (const auto& [key, index] : data_->catalog()->data().indexes) {
          out.rows.push_back({sql::Value::Text(index.name),
                              sql::Value::Text(index.table)});
        }
      } else {
        out.columns = {"table", "schema"};
        for (const auto& [key, table] : data_->catalog()->data().tables) {
          out.rows.push_back({sql::Value::Text(table.name),
                              sql::Value::Text(table.schema.Serialize())});
        }
      }
      (void)SendResult(conn, out);
      return true;
    }
    case MsgType::kTruncate: {
      WireReader reader(frame.payload);
      uint32_t keep_from = 0;
      if (!reader.GetU32(&keep_from)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      std::lock_guard<std::mutex> lock(write_mu_);
      Status st = owner_engine_->TruncateHistory(
          static_cast<retro::SnapshotId>(keep_from));
      if (st.ok()) {
        std::string payload;
        PutU32(&payload,
               static_cast<uint32_t>(data_->store()->earliest_snapshot()));
        (void)SendReply(conn, MsgType::kOk, payload);
      } else {
        (void)SendError(conn, st);
      }
      return true;
    }
    case MsgType::kListSnapshots: {
      auto canonical = CanonicalSnapIds();
      if (canonical.ok()) {
        (void)SendResult(conn, *canonical);
      } else {
        (void)SendError(conn, canonical.status());
      }
      return true;
    }
    case MsgType::kRunStats: {
      std::string text;
      {
        std::lock_guard<std::mutex> lock(session->mu);
        text = FormatRunStats(session->engine()->last_run_stats());
      }
      std::string payload;
      PutString(&payload, text);
      (void)SendReply(conn, MsgType::kStatsJson, payload);
      return true;
    }
    case MsgType::kPrepare: {
      WireReader reader(frame.payload);
      std::string sql;
      if (!reader.GetString(&sql)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      std::lock_guard<std::mutex> lock(session->mu);
      auto stmt_id = session->Prepare(sql);
      if (!stmt_id.ok()) {
        (void)SendError(conn, stmt_id.status());
        return true;
      }
      std::string payload;
      PutU32(&payload, *stmt_id);
      (void)SendReply(conn, MsgType::kPrepared, payload);
      return true;
    }
    case MsgType::kBindAsOf: {
      WireReader reader(frame.payload);
      uint32_t stmt_id = 0, snap = 0;
      if (!reader.GetU32(&stmt_id) || !reader.GetU32(&snap)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      std::lock_guard<std::mutex> lock(session->mu);
      Status st =
          session->BindAsOf(stmt_id, static_cast<retro::SnapshotId>(snap));
      if (st.ok()) {
        (void)SendReply(conn, MsgType::kOk, "");
      } else {
        (void)SendError(conn, st);
      }
      return true;
    }
    case MsgType::kBindValue: {
      WireReader reader(frame.payload);
      uint32_t stmt_id = 0, index = 0;
      std::string encoded;
      if (!reader.GetU32(&stmt_id) || !reader.GetU32(&index) ||
          !reader.GetString(&encoded)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      auto row = sql::DecodeRow(encoded);
      if (!row.ok() || row->size() != 1) {
        (void)SendError(conn, Status::InvalidArgument(
                                  "kBindValue wants a one-value row"));
        return true;
      }
      std::lock_guard<std::mutex> lock(session->mu);
      Status st = session->BindValue(stmt_id, static_cast<int>(index),
                                     (*row)[0]);
      if (st.ok()) {
        (void)SendReply(conn, MsgType::kOk, "");
      } else {
        (void)SendError(conn, st);
      }
      return true;
    }
    case MsgType::kExecPrepared: {
      WireReader reader(frame.payload);
      uint32_t stmt_id = 0;
      if (!reader.GetU32(&stmt_id)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      std::lock_guard<std::mutex> lock(session->mu);
      auto result = session->ExecutePrepared(stmt_id);
      if (result.ok()) {
        (void)SendResult(conn, *result);
      } else {
        (void)SendError(conn, result.status());
      }
      return true;
    }
    case MsgType::kClosePrepared: {
      WireReader reader(frame.payload);
      uint32_t stmt_id = 0;
      if (!reader.GetU32(&stmt_id)) {
        (void)SendError(conn, reader.status());
        return true;
      }
      std::lock_guard<std::mutex> lock(session->mu);
      Status st = session->ClosePrepared(stmt_id);
      if (st.ok()) {
        (void)SendReply(conn, MsgType::kOk, "");
      } else {
        (void)SendError(conn, st);
      }
      return true;
    }
    case MsgType::kGoodbye: {
      (void)SendReply(conn, MsgType::kOk, "");
      return false;
    }
    default:
      (void)SendError(conn, Status::InvalidArgument(
                                "unexpected frame type " +
                                std::to_string(static_cast<int>(frame.type))));
      return true;
  }
}

std::string Server::StatsJson() {
  sql::SharedScanCache::Stats cache = scan_cache_.GetStats();
  std::ostringstream out;
  out << "{\n";
  out << "  \"server\": {"
      << "\"active_sessions\": " << active_sessions_.load()
      << ", \"sessions_opened\": " << sessions_opened_.load()
      << ", \"max_sessions\": " << options_.max_sessions
      << ", \"runs_completed\": " << runs_completed_.load() << "},\n";
  out << "  \"scheduler\": {"
      << "\"queued\": " << scheduler_->queued()
      << ", \"active\": " << scheduler_->active()
      << ", \"queue_limit\": " << scheduler_->queue_limit()
      << ", \"worker_budget\": " << scheduler_->worker_budget()
      << ", \"admission_rejects\": " << scheduler_->admission_rejects()
      << ", \"completed\": " << scheduler_->completed()
      << ", \"cancelled\": " << scheduler_->cancelled() << "},\n";
  out << "  \"scan_cache\": {"
      << "\"shared_hits\": " << cache.shared_hits
      << ", \"misses\": " << cache.misses
      << ", \"coalesced_decodes\": " << cache.coalesced_decodes
      << ", \"inserts\": " << cache.inserts
      << ", \"entries\": " << cache.entries
      << ", \"bytes\": " << cache.bytes << "},\n";
  out << "  \"store\": {"
      << "\"earliest_snapshot\": "
      << static_cast<int64_t>(data_->store()->earliest_snapshot())
      << ", \"latest_snapshot\": "
      << static_cast<int64_t>(data_->store()->latest_snapshot()) << "}\n";
  out << "}\n";
  return out.str();
}

}  // namespace rql::server

#ifndef RQL_SERVER_CLIENT_H_
#define RQL_SERVER_CLIENT_H_

// Synchronous client for rql_serverd's wire protocol, plus the
// ShellBackend adapter that lets the shared REPL core (server/repl.h)
// drive a remote server exactly like an embedded engine.
//
// The client is single-threaded by design: one request in flight at a
// time, strictly ordered replies — with the one protocol exception of
// kRunDone frames, which the server pushes when a scheduled run
// completes and which may interleave ahead of a reply. ReadReply treats
// them as out-of-band: they are parsed and stashed, and WaitRun consumes
// the stash before blocking on the socket.

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "retro/snapshot_store.h"
#include "server/repl.h"
#include "server/wire.h"
#include "sql/database.h"

namespace rql::server {

class Client {
 public:
  /// Connects, handshakes (kHello/kHelloOk) and returns a ready client.
  static Result<std::unique_ptr<Client>> Connect(
      const std::string& socket_path);
  ~Client();  // best-effort kGoodbye, then close

  uint64_t session_id() const { return session_id_; }

  // --- SQL ------------------------------------------------------------------
  Result<sql::QueryResult> Sql(const std::string& sql);
  Result<sql::QueryResult> MetaSql(const std::string& sql);
  Result<retro::SnapshotId> DeclareSnapshot(const std::string& label);
  Result<sql::QueryResult> ListSnapshots();
  Result<sql::QueryResult> ListSchema(bool indexes);
  Result<std::string> RunStatsText();
  Result<std::string> StatsJson();
  /// Returns the new earliest snapshot id.
  Result<retro::SnapshotId> Truncate(retro::SnapshotId keep_from);

  // --- scheduled RQL runs ---------------------------------------------------
  struct RunResult {
    uint64_t run_id = 0;
    Status status;
    uint32_t iterations = 0;
    int64_t total_us = 0;
    int64_t shared_page_hits = 0;
    int64_t coalesced_decodes = 0;
    int64_t iterations_skipped = 0;
  };

  /// Submits a run; returns its run_id once the scheduler admits it
  /// (kRunQueued). Admission rejection surfaces as the server's Aborted.
  Result<uint64_t> StartRun(Mechanism mechanism, const std::string& qs,
                            const std::string& qq, const std::string& table,
                            const std::string& extra = "", int workers = 1);
  /// Blocks until `run_id`'s kRunDone arrives (or was already stashed).
  Result<RunResult> WaitRun(uint64_t run_id);
  /// Raises the run's cancel flag server-side; the run still completes
  /// with its own kRunDone (Aborted if the cancel won).
  Status CancelRun(uint64_t run_id);

  // --- prepared statements --------------------------------------------------
  Result<uint32_t> Prepare(const std::string& sql);
  Status BindAsOf(uint32_t stmt_id, retro::SnapshotId snap);
  Status BindValue(uint32_t stmt_id, int index, const sql::Value& value);
  Result<sql::QueryResult> ExecPrepared(uint32_t stmt_id);
  Status ClosePrepared(uint32_t stmt_id);

 private:
  Client() = default;

  /// Writes one request and returns the reply of type `want`. A kError
  /// reply decodes into its Status; kRunDone frames read along the way
  /// are stashed, not returned.
  Result<Frame> Roundtrip(MsgType type, const std::string& payload,
                          MsgType want);
  Result<Frame> ReadReply();
  static Result<sql::QueryResult> DecodeResult(const Frame& frame);
  static Result<RunResult> DecodeRunDone(const Frame& frame);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  std::map<uint64_t, RunResult> done_runs_;  // out-of-band kRunDone stash
};

/// ShellBackend over a Client: the socket mode of rql_shell.
class RemoteBackend : public ShellBackend {
 public:
  explicit RemoteBackend(Client* client, std::string banner)
      : client_(client), banner_(std::move(banner)) {}

  Result<sql::QueryResult> DataSql(const std::string& sql) override {
    return client_->Sql(sql);
  }
  Result<sql::QueryResult> MetaSql(const std::string& sql) override {
    return client_->MetaSql(sql);
  }
  Result<retro::SnapshotId> DeclareSnapshot(
      const std::string& label) override {
    return client_->DeclareSnapshot(label);
  }
  Result<sql::QueryResult> Snapshots() override {
    return client_->ListSnapshots();
  }
  Result<sql::QueryResult> ListSchema(bool indexes) override {
    return client_->ListSchema(indexes);
  }
  Result<std::string> RunStatsText() override {
    return client_->RunStatsText();
  }
  Result<retro::SnapshotId> Truncate(retro::SnapshotId keep_from) override {
    return client_->Truncate(keep_from);
  }
  std::string Banner() const override { return banner_; }

 private:
  Client* client_;
  std::string banner_;
};

}  // namespace rql::server

#endif  // RQL_SERVER_CLIENT_H_

#ifndef RQL_SERVER_WIRE_H_
#define RQL_SERVER_WIRE_H_

// The RQL server wire protocol: length-prefixed frames over a stream
// socket.
//
//   frame := u32 payload_length (little-endian) | u8 type | payload
//
// Payloads are flat sequences of fixed-width little-endian integers and
// u32-length-prefixed byte strings, written with the Put* helpers and
// read back with WireReader. Result rows travel as sql::EncodeRow byte
// strings, so a row decoded on the client is byte-identical to the row
// the server materialized — the property the concurrent-client
// integration tests assert against an in-process oracle.
//
// Request/response pairing is strictly in order per connection, with one
// exception: kRunDone frames are pushed asynchronously when a scheduled
// RQL run completes, and may interleave ahead of the reply to a request
// sent while the run was executing. Clients therefore treat kRunDone as
// out-of-band (see Client::ReadReply).

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rql::server {

/// Protocol revision; bumped on any incompatible frame change. Exchanged
/// in kHello/kHelloOk, and mismatches are rejected at handshake.
constexpr uint32_t kWireVersion = 1;

/// Upper bound on a frame payload; anything larger is treated as a
/// corrupt stream rather than an allocation request.
constexpr uint32_t kMaxFramePayload = 64u << 20;

enum class MsgType : uint8_t {
  // --- client -> server ----------------------------------------------------
  /// u32 wire_version. Reply: kHelloOk or kError (version mismatch, server
  /// at session capacity).
  kHello = 1,
  /// str sql — a ';'-separated script for the data database. Scripts whose
  /// statements are all `SELECT AS OF` run concurrently on the session's
  /// attached handle; anything else serializes on the server write lock
  /// and executes on the owning handle. Reply: kResult or kError.
  kSql = 2,
  /// str sql — SQL on the session's private metadata database (SnapIds
  /// mirror, RQL result tables; the RQL UDFs are registered, so the
  /// paper's `SELECT CollateData(...) FROM SnapIds` form works over the
  /// wire). Reply: kResult or kError.
  kMetaSql = 3,
  /// str label. Declares a snapshot through the owning engine (COMMIT WITH
  /// SNAPSHOT + canonical SnapIds row). Reply: kSnapshotDone or kError.
  kSnapshot = 4,
  /// u8 mechanism (Mechanism enum), u32 requested_workers, str qs, str qq,
  /// str table, str extra (aggregate function for
  /// AggregateDataInVariable, the "(col,func):..." pair list for
  /// AggregateDataInTable, else empty). Submits a run to the scheduler.
  /// Reply: kRunQueued (admission granted) or kError (queue full, bad
  /// mechanism); a kRunDone frame follows when the run finishes.
  kRqlRun = 5,
  /// u64 run_id. Cooperative cancel; handled without the session lock so
  /// it reaches a running or queued run immediately. Reply: kOk (flag
  /// raised) or kError (unknown run). The run still completes with its
  /// own kRunDone (status Aborted when the cancel won the race).
  kCancelRun = 6,
  /// empty. Reply: kStatsJson with the server-level stats document
  /// (sessions, scheduler, shared cache, store) — the schema
  /// tools/check_server_json.py validates.
  kStats = 7,
  /// u8 kind (0 = tables, 1 = indexes) from the owner catalog (always
  /// fresh, unlike the session's attach-time copy). Reply: kResult.
  kListSchema = 8,
  /// u32 keep_from. Retention through the owning engine
  /// (RqlEngine::TruncateHistory). Reply: kOk or kError.
  kTruncate = 9,
  /// empty. Canonical SnapIds table. Reply: kResult.
  kListSnapshots = 10,
  /// empty. The session engine's last-run cost breakdown, rendered
  /// server-side (repl FormatRunStats). Reply: kStatsJson (text payload).
  kRunStats = 11,
  /// str sql. Prepares a statement on the session's attached data handle;
  /// per-session plan state (PlanCache, AS OF binding) lives with it until
  /// kClosePrepared or session teardown. Reply: kPrepared or kError.
  kPrepare = 12,
  /// u32 stmt_id, u32 snapshot. PreparedStatement::BindAsOf. Reply: kOk.
  kBindAsOf = 13,
  /// u32 stmt_id, u32 index, str value (a one-value sql::EncodeRow).
  /// Reply: kOk.
  kBindValue = 14,
  /// u32 stmt_id. Executes with current bindings. Reply: kResult.
  kExecPrepared = 15,
  /// u32 stmt_id. Reply: kOk.
  kClosePrepared = 16,
  /// empty. Clean goodbye; server replies kOk and closes.
  kGoodbye = 17,

  // --- server -> client ----------------------------------------------------
  kOk = 64,
  /// u8 status_code (rql::StatusCode), str message.
  kError = 65,
  /// u64 session_id, u32 wire_version.
  kHelloOk = 66,
  /// u32 ncols, ncols x str column, u32 nrows, nrows x str EncodeRow(row).
  kResult = 67,
  /// u32 snapshot_id.
  kSnapshotDone = 68,
  /// u64 run_id. Workers are granted at dispatch (scheduler budget), not
  /// at admission, so the grant is reported by the trailing kRunDone's
  /// stats pull, not here.
  kRunQueued = 69,
  /// u64 run_id, u8 status_code, str message, u32 iterations,
  /// i64 total_us, i64 shared_page_hits, i64 coalesced_decodes,
  /// i64 iterations_skipped. Pushed out of band at run completion.
  kRunDone = 70,
  /// str payload (JSON for kStats, rendered text for kRunStats).
  kStatsJson = 71,
  /// u32 stmt_id.
  kPrepared = 72,
};

/// RQL mechanism selector carried by kRqlRun.
enum class Mechanism : uint8_t {
  kCollateData = 0,
  kAggregateDataInVariable = 1,
  kAggregateDataInTable = 2,
  kCollateDataIntoIntervals = 3,
};

struct Frame {
  MsgType type = MsgType::kOk;
  std::string payload;
};

// --- payload building -------------------------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutString(std::string* out, std::string_view s);

/// Sequential payload decoder. Get* return false (and latch an error) on
/// underflow; check `status()` once after the last field. A trailing
/// unread remainder is tolerated (forward compatibility).
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  bool GetU8(uint8_t* v);
  bool GetU32(uint32_t* v);
  bool GetU64(uint64_t* v);
  bool GetI64(int64_t* v);
  bool GetString(std::string* s);

  bool ok() const { return ok_; }
  Status status() const {
    return ok_ ? Status::OK() : Status::Corruption("truncated wire payload");
  }

 private:
  bool Take(size_t n, const char** p);
  std::string_view data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- frame I/O --------------------------------------------------------------

/// Writes one frame, looping over partial sends; EPIPE/ECONNRESET surface
/// as IoError (SIGPIPE is suppressed per-send, not process-wide).
Status WriteFrame(int fd, MsgType type, std::string_view payload);

/// Reads one frame. A clean EOF on the frame boundary returns
/// IoError("connection closed"); a payload above kMaxFramePayload returns
/// Corruption.
Result<Frame> ReadFrame(int fd);

}  // namespace rql::server

#endif  // RQL_SERVER_WIRE_H_

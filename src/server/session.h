#ifndef RQL_SERVER_SESSION_H_
#define RQL_SERVER_SESSION_H_

// One connected client of rql_serverd: an attached sql::Database handle
// over the server's SnapshotStore, a private in-memory metadata database
// (SnapIds mirror, RQL result tables), an RqlEngine wired to the server's
// SharedScanCache, and the session's prepared-statement table with its
// per-statement plan state (PlanCache, AS OF binding).
//
// This is exactly the bench_concurrent_runs client shape, held
// server-side: concurrent sessions share the store — snapshot page cache,
// SharedScanCache single-flight decodes, coalesced SPT builds — while
// everything per-client (current_snapshot, run stats, result tables,
// prepared plans) stays isolated. Destroying the session releases it all:
// prepared statements drop their plan caches, the engine drops run state,
// and the attached handle detaches from the store.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "common/clock.h"
#include "common/status.h"
#include "rql/rql.h"
#include "server/scheduler.h"
#include "sql/database.h"
#include "storage/env.h"

namespace rql::server {

class Session {
 public:
  /// Attaches to `store` and builds the private metadata database. `base`
  /// carries the server's engine wiring (shared_scan_cache, metrics,
  /// batch_execution); the session id is stamped into it for tracing.
  static Result<std::unique_ptr<Session>> Create(uint64_t id,
                                                 retro::SnapshotStore* store,
                                                 const RqlOptions& base);
  ~Session();

  uint64_t id() const { return id_; }
  sql::Database* data() { return data_.get(); }
  sql::Database* meta() { return meta_.get(); }
  RqlEngine* engine() { return engine_.get(); }

  /// Serializes everything touching the session's engine/handles: the
  /// connection thread's request handling and the scheduler's run bodies.
  /// kCancelRun and kStats deliberately do not take it, so they work while
  /// a run holds it.
  std::mutex mu;

  /// Replaces the private SnapIds mirror with `rows` (the canonical table
  /// read from the owner's metadata database), so Qs sees every snapshot
  /// declared by any client up to this request.
  Status ReplaceSnapIds(const sql::QueryResult& canonical);

  // --- prepared statements (wire kPrepare..kClosePrepared) ----------------
  Result<uint32_t> Prepare(const std::string& sql);
  Status BindAsOf(uint32_t stmt_id, retro::SnapshotId snap);
  Status BindValue(uint32_t stmt_id, int index, sql::Value value);
  Result<sql::QueryResult> ExecutePrepared(uint32_t stmt_id);
  Status ClosePrepared(uint32_t stmt_id);

  // --- in-flight runs (for kCancelRun and disconnect) ---------------------
  void TrackRun(uint64_t run_id, std::shared_ptr<RunScheduler::Ticket> t);
  std::shared_ptr<RunScheduler::Ticket> FindRun(uint64_t run_id);
  void ForgetRun(uint64_t run_id);

  // --- idle accounting (read by the server's reaper thread) ---------------
  void Touch() { last_active_us_.store(NowMicros()); }
  int64_t last_active_us() const { return last_active_us_.load(); }

 private:
  Session(uint64_t id) : id_(id) { Touch(); }

  Result<sql::PreparedStatement*> FindStmt(uint32_t stmt_id);

  const uint64_t id_;
  std::unique_ptr<storage::InMemoryEnv> meta_env_;
  std::unique_ptr<sql::Database> meta_;
  std::unique_ptr<sql::Database> data_;  // attached; store outlives us
  std::unique_ptr<RqlEngine> engine_;

  std::map<uint32_t, std::unique_ptr<sql::PreparedStatement>> stmts_;
  uint32_t next_stmt_id_ = 1;

  std::mutex runs_mu_;
  std::map<uint64_t, std::shared_ptr<RunScheduler::Ticket>> runs_;

  std::atomic<int64_t> last_active_us_{0};
};

}  // namespace rql::server

#endif  // RQL_SERVER_SESSION_H_

#include "server/scheduler.h"

#include <algorithm>

namespace rql::server {

RunScheduler::RunScheduler(Options options)
    : options_(options), workers_avail_(options.worker_budget) {
  if (options_.dispatch_threads < 1) {
    const_cast<Options&>(options_).dispatch_threads = 1;
  }
  threads_.reserve(options_.dispatch_threads);
  for (int i = 0; i < options_.dispatch_threads; ++i) {
    threads_.emplace_back([this] { DispatchLoop(); });
  }
}

RunScheduler::~RunScheduler() { Shutdown(); }

Result<std::shared_ptr<RunScheduler::Ticket>> RunScheduler::Submit(
    uint64_t session_id, int workers_requested, RunFn fn,
    std::function<void(const Ticket&)> on_complete) {
  static std::atomic<uint64_t> next_run_id{1};
  auto ticket = std::make_shared<Ticket>();
  ticket->session_id = session_id;
  ticket->run_id = next_run_id.fetch_add(1, std::memory_order_relaxed);
  ticket->on_complete = std::move(on_complete);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      return Status::Aborted("admission control: scheduler shut down");
    }
    if (queued_count_ >= options_.queue_limit) {
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      return Status::Aborted("admission control: run queue full");
    }
    SessionQueue& sq = sessions_[session_id];
    bool was_ready = !sq.q.empty() && !sq.busy;
    sq.q.push_back(Pending{ticket, std::move(fn),
                           std::max(1, workers_requested)});
    ++queued_count_;
    ++inflight_[session_id];
    if (!was_ready && !sq.busy) rr_.push_back(session_id);
  }
  work_cv_.notify_one();
  return ticket;
}

void RunScheduler::Cancel(const std::shared_ptr<Ticket>& ticket) {
  if (ticket) ticket->cancel.store(true, std::memory_order_relaxed);
  // A queued run is reaped at its dispatch turn; wake a dispatcher so the
  // Aborted completion is prompt even on an otherwise idle scheduler.
  work_cv_.notify_all();
}

Status RunScheduler::Wait(Ticket* ticket) {
  std::unique_lock<std::mutex> lock(ticket->mu);
  ticket->cv.wait(lock, [ticket] { return ticket->done; });
  return ticket->status;
}

void RunScheduler::Complete(const std::shared_ptr<Ticket>& ticket,
                            Status status) {
  {
    std::lock_guard<std::mutex> lock(ticket->mu);
    ticket->done = true;
    ticket->status = std::move(status);
  }
  ticket->finished.store(true, std::memory_order_release);
  ticket->cv.notify_all();
  // Before the inflight decrement: CancelSession must not return while a
  // completion callback still references the submitter's connection.
  if (ticket->on_complete) ticket->on_complete(*ticket);
  completed_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = inflight_.find(ticket->session_id);
    if (it != inflight_.end() && --it->second == 0) inflight_.erase(it);
  }
  done_cv_.notify_all();
}

void RunScheduler::DispatchLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    work_cv_.wait(lock, [this] { return stop_ || !rr_.empty(); });
    if (stop_ && rr_.empty()) return;
    if (rr_.empty()) continue;

    uint64_t sid = rr_.front();
    rr_.pop_front();
    SessionQueue& sq = sessions_[sid];
    Pending pending = std::move(sq.q.front());
    sq.q.pop_front();
    --queued_count_;

    if (pending.ticket->cancel.load(std::memory_order_relaxed) || stop_) {
      // Reap without dispatching; the session stays ready for the next
      // queued run (if any).
      if (!sq.q.empty()) rr_.push_back(sid);
      else sessions_.erase(sid);
      cancelled_.fetch_add(1, std::memory_order_relaxed);
      lock.unlock();
      Complete(pending.ticket, Status::Aborted("run cancelled"));
      lock.lock();
      continue;
    }

    // Grant workers: min(requested, available), floor 1. A grant of 1
    // against an empty pool reserves nothing (sequential execution is
    // always admissible), so concurrent sequential runs never deadlock.
    int grant = 1;
    int reserved = 0;
    if (workers_avail_ >= 1) {
      grant = std::min(pending.workers_requested, workers_avail_);
      workers_avail_ -= grant;
      reserved = grant;
    }
    pending.ticket->granted_workers = grant;
    sq.busy = true;
    ++active_count_;
    std::shared_ptr<Ticket> ticket = pending.ticket;
    running_[sid] = ticket;

    lock.unlock();
    Status status = pending.fn(ticket.get());
    Complete(ticket, std::move(status));
    lock.lock();

    workers_avail_ += reserved;
    --active_count_;
    running_.erase(sid);
    auto it = sessions_.find(sid);
    if (it != sessions_.end()) {
      it->second.busy = false;
      if (!it->second.q.empty()) {
        rr_.push_back(sid);
        work_cv_.notify_one();
      } else {
        sessions_.erase(it);
      }
    }
  }
}

void RunScheduler::CancelSession(uint64_t session_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sessions_.find(session_id);
    if (it != sessions_.end()) {
      for (Pending& p : it->second.q) {
        p.ticket->cancel.store(true, std::memory_order_relaxed);
      }
    }
    auto run = running_.find(session_id);
    if (run != running_.end()) {
      run->second->cancel.store(true, std::memory_order_relaxed);
    }
  }
  work_cv_.notify_all();
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this, session_id] {
    return inflight_.find(session_id) == inflight_.end();
  });
}

void RunScheduler::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      // Already shut down (Shutdown then destructor is the common pair).
      return;
    }
    stop_ = true;
    for (auto& [sid, sq] : sessions_) {
      for (Pending& p : sq.q) {
        p.ticket->cancel.store(true, std::memory_order_relaxed);
      }
    }
    for (auto& [sid, ticket] : running_) {
      ticket->cancel.store(true, std::memory_order_relaxed);
    }
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  // Dispatchers are gone; reap anything still queued so waiters unblock.
  std::vector<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [sid, sq] : sessions_) {
      for (Pending& p : sq.q) leftovers.push_back(std::move(p));
      sq.q.clear();
    }
    sessions_.clear();
    rr_.clear();
    queued_count_ = 0;
  }
  for (Pending& p : leftovers) {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    Complete(p.ticket, Status::Aborted("run cancelled"));
  }
}

int64_t RunScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_count_;
}

int64_t RunScheduler::active() const {
  std::lock_guard<std::mutex> lock(mu_);
  return active_count_;
}

int64_t RunScheduler::admission_rejects() const {
  return admission_rejects_.load(std::memory_order_relaxed);
}

int64_t RunScheduler::completed() const {
  return completed_.load(std::memory_order_relaxed);
}

int64_t RunScheduler::cancelled() const {
  return cancelled_.load(std::memory_order_relaxed);
}

}  // namespace rql::server

#include "server/session.h"

#include <utility>

namespace rql::server {

Result<std::unique_ptr<Session>> Session::Create(
    uint64_t id, retro::SnapshotStore* store, const RqlOptions& base) {
  std::unique_ptr<Session> session(new Session(id));
  session->meta_env_ = std::make_unique<storage::InMemoryEnv>();
  RQL_ASSIGN_OR_RETURN(session->meta_,
                       sql::Database::Open(session->meta_env_.get(), "meta"));
  RQL_ASSIGN_OR_RETURN(session->data_, sql::Database::Attach(store));
  RqlOptions options = base;
  options.session_id = id;
  session->engine_ = std::make_unique<RqlEngine>(
      session->data_.get(), session->meta_.get(), options);
  RQL_RETURN_IF_ERROR(session->engine_->EnsureSnapIds());
  RQL_RETURN_IF_ERROR(session->engine_->RegisterUdfs());
  return session;
}

Session::~Session() = default;

Status Session::ReplaceSnapIds(const sql::QueryResult& canonical) {
  RQL_RETURN_IF_ERROR(meta_->Exec("DELETE FROM SnapIds"));
  for (const sql::Row& row : canonical.rows) {
    RQL_RETURN_IF_ERROR(meta_->AppendRow("SnapIds", row).status());
  }
  return Status::OK();
}

Result<sql::PreparedStatement*> Session::FindStmt(uint32_t stmt_id) {
  auto it = stmts_.find(stmt_id);
  if (it == stmts_.end()) {
    return Status::InvalidArgument("unknown prepared statement " +
                                   std::to_string(stmt_id));
  }
  return it->second.get();
}

Result<uint32_t> Session::Prepare(const std::string& sql) {
  RQL_ASSIGN_OR_RETURN(auto stmt, data_->Prepare(sql));
  uint32_t stmt_id = next_stmt_id_++;
  stmts_[stmt_id] = std::move(stmt);
  return stmt_id;
}

Status Session::BindAsOf(uint32_t stmt_id, retro::SnapshotId snap) {
  RQL_ASSIGN_OR_RETURN(sql::PreparedStatement * stmt, FindStmt(stmt_id));
  return stmt->BindAsOf(snap);
}

Status Session::BindValue(uint32_t stmt_id, int index, sql::Value value) {
  RQL_ASSIGN_OR_RETURN(sql::PreparedStatement * stmt, FindStmt(stmt_id));
  return stmt->BindValue(index, std::move(value));
}

Result<sql::QueryResult> Session::ExecutePrepared(uint32_t stmt_id) {
  RQL_ASSIGN_OR_RETURN(sql::PreparedStatement * stmt, FindStmt(stmt_id));
  sql::QueryResult result;
  RQL_RETURN_IF_ERROR(stmt->Execute(
      [&result](const std::vector<std::string>& columns,
                const sql::Row& row) {
        if (result.columns.empty()) result.columns = columns;
        result.rows.push_back(row);
        return Status::OK();
      }));
  return result;
}

Status Session::ClosePrepared(uint32_t stmt_id) {
  if (stmts_.erase(stmt_id) == 0) {
    return Status::InvalidArgument("unknown prepared statement " +
                                   std::to_string(stmt_id));
  }
  return Status::OK();
}

void Session::TrackRun(uint64_t run_id,
                       std::shared_ptr<RunScheduler::Ticket> t) {
  std::lock_guard<std::mutex> lock(runs_mu_);
  // Keep the registry bounded: finished runs no longer need a cancel
  // handle (cancelling a completed ticket is a no-op anyway).
  for (auto it = runs_.begin(); it != runs_.end();) {
    if (it->second->finished.load(std::memory_order_acquire)) {
      it = runs_.erase(it);
    } else {
      ++it;
    }
  }
  runs_[run_id] = std::move(t);
}

std::shared_ptr<RunScheduler::Ticket> Session::FindRun(uint64_t run_id) {
  std::lock_guard<std::mutex> lock(runs_mu_);
  auto it = runs_.find(run_id);
  return it == runs_.end() ? nullptr : it->second;
}

void Session::ForgetRun(uint64_t run_id) {
  std::lock_guard<std::mutex> lock(runs_mu_);
  runs_.erase(run_id);
}

}  // namespace rql::server

#include "server/repl.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <sstream>

#include "sql/lexer.h"

namespace rql::server {

namespace {

std::string Pad(const std::string& s, size_t width) {
  std::string out = s;
  if (out.size() < width) out.append(width - out.size(), ' ');
  return out;
}

std::string Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

}  // namespace

std::string FormatTable(const std::vector<std::string>& columns,
                        const std::vector<sql::Row>& rows) {
  // Widths are sized to the widest arity seen across header AND rows: a
  // row with more cells than the header (UDF results, ragged scripts)
  // must not index past the widths vector.
  size_t arity = columns.size();
  for (const sql::Row& row : rows) arity = std::max(arity, row.size());
  std::vector<size_t> widths(arity, 0);
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  std::vector<std::vector<std::string>> cells;
  cells.reserve(rows.size());
  for (const sql::Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      line.push_back(row[c].ToString());
      widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  std::ostringstream out;
  for (size_t c = 0; c < columns.size(); ++c) {
    out << Pad(columns[c], widths[c]) << "  ";
  }
  out << "\n";
  for (size_t c = 0; c < columns.size(); ++c) {
    out << std::string(widths[c], '-') << "  ";
  }
  out << "\n";
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      out << Pad(line[c], widths[c]) << "  ";
    }
    out << "\n";
  }
  out << "(" << cells.size() << (cells.size() == 1 ? " row)" : " rows)")
      << "\n";
  return out.str();
}

std::string FormatRunStats(const RqlRunStats& stats) {
  if (stats.iterations.empty()) return "no RQL run recorded yet\n";
  std::ostringstream out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-10s %10s %10s %10s %10s %8s %8s\n",
                "snapshot", "io_us", "spt_us", "query_us", "udf_us",
                "plog_pg", "rows");
  out << line;
  for (const RqlIterationStats& it : stats.iterations) {
    std::snprintf(line, sizeof(line),
                  "%-10u %10lld %10lld %10lld %10lld %8lld %8lld\n",
                  it.snapshot, static_cast<long long>(it.io_us),
                  static_cast<long long>(it.spt_build_us),
                  static_cast<long long>(it.query_eval_us),
                  static_cast<long long>(it.udf_us),
                  static_cast<long long>(it.pagelog_pages),
                  static_cast<long long>(it.qq_rows));
    out << line;
  }
  std::snprintf(line, sizeof(line), "total: %.2f ms over %zu iterations\n",
                stats.TotalUs() / 1000.0, stats.iterations.size());
  out << line;
  return out.str();
}

DotCommand ParseDotCommand(const std::string& line) {
  DotCommand cmd;
  size_t i = 0;
  while (i < line.size() &&
         !std::isspace(static_cast<unsigned char>(line[i]))) {
    ++i;
  }
  cmd.name = line.substr(0, i);
  // std::getline after `iss >> cmd` used to keep the separating space, so
  // ".snapshot mylabel" stored the label " mylabel"; trim both ends.
  cmd.arg = Trim(std::string_view(line).substr(i));
  return cmd;
}

bool StatementComplete(const std::string& buffer) {
  auto tokens = sql::Tokenize(buffer);
  if (!tokens.ok()) {
    // An open string literal, quoted identifier or block comment swallows
    // any ';' inside it: the statement is still being typed. Every other
    // lexical error is final — report complete so execution surfaces it.
    return tokens.status().message().find("unterminated") ==
           std::string::npos;
  }
  if (tokens->size() < 2) return false;  // blank or comment-only buffer
  return (*tokens)[tokens->size() - 2].IsOp(";");
}

// --- EmbeddedBackend --------------------------------------------------------

Result<sql::QueryResult> EmbeddedBackend::DataSql(const std::string& sql) {
  return data_->Query(sql);
}

Result<sql::QueryResult> EmbeddedBackend::MetaSql(const std::string& sql) {
  auto result = meta_->Query(sql);
  // The RQL UDFs may have been driven by this statement; finalize any
  // in-progress UDF-form runs exactly as the pre-extraction shell did.
  Status finish = engine_->FinishUdfRuns();
  if (result.ok() && !finish.ok()) return finish;
  return result;
}

Result<retro::SnapshotId> EmbeddedBackend::DeclareSnapshot(
    const std::string& label) {
  return engine_->CommitWithSnapshot("", label);
}

Result<sql::QueryResult> EmbeddedBackend::Snapshots() {
  return meta_->Query("SELECT * FROM SnapIds");
}

Result<sql::QueryResult> EmbeddedBackend::ListSchema(bool indexes) {
  sql::QueryResult out;
  if (indexes) {
    out.columns = {"index", "table"};
    for (const auto& [key, index] : data_->catalog()->data().indexes) {
      out.rows.push_back({sql::Value::Text(index.name),
                          sql::Value::Text(index.table)});
    }
  } else {
    out.columns = {"table", "schema"};
    for (const auto& [key, table] : data_->catalog()->data().tables) {
      out.rows.push_back({sql::Value::Text(table.name),
                          sql::Value::Text(table.schema.Serialize())});
    }
  }
  return out;
}

Result<std::string> EmbeddedBackend::RunStatsText() {
  return FormatRunStats(engine_->last_run_stats());
}

Result<retro::SnapshotId> EmbeddedBackend::Truncate(
    retro::SnapshotId keep_from) {
  RQL_RETURN_IF_ERROR(data_->store()->TruncateHistory(keep_from));
  return data_->store()->earliest_snapshot();
}

// --- the REPL loop ----------------------------------------------------------

namespace {

constexpr char kHelp[] = R"(commands:
  .help                 this text
  .tables / .indexes    list schema objects in the data database
  .snapshot [label]     declare a snapshot (COMMIT WITH SNAPSHOT)
  .snapshots            show SnapIds
  .meta <sql>           SQL on the metadata database (RQL UDFs live here,
                        e.g. SELECT CollateData(snap_id, 'SELECT ...', 'T')
                        FROM SnapIds;)
  .stats                cost breakdown of the last RQL run
  .truncate <keep>      drop snapshots with id < keep; compact the archive
  .quit                 exit
anything else: SQL on the data database (AS OF, COMMIT WITH SNAPSHOT, ...)
)";

void PrintResult(std::ostream& out, const Result<sql::QueryResult>& result) {
  if (!result.ok()) {
    out << "error: " << result.status().ToString() << "\n";
    return;
  }
  if (!result->columns.empty() || !result->rows.empty()) {
    out << FormatTable(result->columns, result->rows);
  } else {
    out << "ok\n";
  }
}

}  // namespace

int RunRepl(std::istream& in, std::ostream& out, ShellBackend* backend,
            bool interactive) {
  out << backend->Banner() << "; .help for commands\n";
  std::string buffer;
  std::string line;
  while (true) {
    if (interactive) {
      out << (buffer.empty() ? "rql> " : "...> ");
      out.flush();
    }
    if (!std::getline(in, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '.') {
      DotCommand cmd = ParseDotCommand(line);
      if (cmd.name == ".quit" || cmd.name == ".exit") break;
      if (cmd.name == ".help") {
        out << kHelp;
      } else if (cmd.name == ".tables" || cmd.name == ".indexes") {
        PrintResult(out, backend->ListSchema(cmd.name == ".indexes"));
      } else if (cmd.name == ".snapshot") {
        auto snap = backend->DeclareSnapshot(cmd.arg);
        if (snap.ok()) {
          out << "declared snapshot " << *snap << "\n";
        } else {
          out << "error: " << snap.status().ToString() << "\n";
        }
      } else if (cmd.name == ".snapshots") {
        PrintResult(out, backend->Snapshots());
      } else if (cmd.name == ".meta") {
        if (cmd.arg.empty()) {
          // Executing the empty string used to reach the parser (and its
          // error) — print usage instead.
          out << "usage: .meta <sql>\n";
        } else {
          PrintResult(out, backend->MetaSql(cmd.arg));
        }
      } else if (cmd.name == ".stats") {
        auto text = backend->RunStatsText();
        if (text.ok()) {
          out << *text;
        } else {
          out << "error: " << text.status().ToString() << "\n";
        }
      } else if (cmd.name == ".truncate") {
        char* end = nullptr;
        unsigned long keep =
            cmd.arg.empty() ? 0 : std::strtoul(cmd.arg.c_str(), &end, 10);
        if (keep == 0 || end == nullptr || *end != '\0') {
          out << "usage: .truncate <keep_from_snapshot_id>\n";
        } else {
          auto earliest =
              backend->Truncate(static_cast<retro::SnapshotId>(keep));
          if (earliest.ok()) {
            out << "history truncated; earliest snapshot is now "
                << *earliest << "\n";
          } else {
            out << "error: " << earliest.status().ToString() << "\n";
          }
        }
      } else {
        out << "unknown command " << cmd.name << " (.help)\n";
      }
      continue;
    }

    buffer += line;
    buffer += '\n';
    if (Trim(buffer).empty()) {
      buffer.clear();
      continue;
    }
    // Execute once the statement list is lexically terminated: a ';'
    // inside a string literal or comment keeps buffering.
    if (!StatementComplete(buffer)) continue;
    PrintResult(out, backend->DataSql(buffer));
    buffer.clear();
  }
  if (interactive) out << "\nbye\n";
  return 0;
}

}  // namespace rql::server

#ifndef RQL_SERVER_REPL_H_
#define RQL_SERVER_REPL_H_

// The shell's REPL core, extracted from tools/rql_shell so the same
// statement buffering, dot-command parsing and table rendering drive both
// the embedded shell (a Database + RqlEngine in process) and the socket
// client against rql_serverd. The pieces are exposed individually because
// they carry regression-tested fixes:
//
//   * FormatTable sizes column widths to the widest row arity, so a row
//     with more cells than the header no longer reads widths[] out of
//     bounds;
//   * ParseDotCommand trims the std::getline remainder, so ".snapshot x"
//     stores the label "x", not " x", and an empty ".meta" is detectable;
//   * StatementComplete reuses the SQL lexer, so a ';' inside an
//     unterminated string literal or a comment no longer fires the
//     multi-line terminator and executes a half-typed statement.

#include <iosfwd>
#include <string>
#include <vector>

#include "common/status.h"
#include "retro/snapshot_store.h"
#include "rql/rql.h"
#include "sql/database.h"

namespace rql::server {

/// Renders a result table in the shell's aligned-columns format,
/// including the trailing "(N rows)" line. Rows may be ragged and may be
/// wider than the header; every cell is padded to its column's width.
std::string FormatTable(const std::vector<std::string>& columns,
                        const std::vector<sql::Row>& rows);

/// The per-iteration cost breakdown of the last RQL run (the shell's
/// ".stats" view), rendered server- or client-side from RqlRunStats.
std::string FormatRunStats(const RqlRunStats& stats);

struct DotCommand {
  std::string name;  // including the leading '.', e.g. ".snapshot"
  std::string arg;   // remainder with surrounding whitespace trimmed
};

/// Splits a ".command arg..." line; `arg` is everything after the command
/// word with leading/trailing whitespace removed (empty when absent).
DotCommand ParseDotCommand(const std::string& line);

/// True when `buffer` is a complete statement list ready to execute: it
/// lexes without leaving a string literal or comment open, and its last
/// token is ';'. An unterminated literal/comment keeps buffering even if
/// the raw text ends in ';'; a buffer whose only content is comments
/// stays incomplete until a real ';' token arrives. Lexical errors other
/// than "unterminated ..." report complete, so execution surfaces the
/// error to the user instead of buffering forever.
bool StatementComplete(const std::string& buffer);

/// What the REPL runs against: either the in-process engine or a socket
/// connection to rql_serverd. All calls are synchronous.
class ShellBackend {
 public:
  virtual ~ShellBackend() = default;

  /// SQL on the (snapshotable) data database.
  virtual Result<sql::QueryResult> DataSql(const std::string& sql) = 0;
  /// SQL on the metadata database (SnapIds, result tables, RQL UDFs).
  virtual Result<sql::QueryResult> MetaSql(const std::string& sql) = 0;
  /// COMMIT WITH SNAPSHOT + SnapIds row; returns the new snapshot id.
  virtual Result<retro::SnapshotId> DeclareSnapshot(
      const std::string& label) = 0;
  /// The canonical SnapIds table.
  virtual Result<sql::QueryResult> Snapshots() = 0;
  /// Catalog listing: tables (name, schema) or indexes (name, table).
  virtual Result<sql::QueryResult> ListSchema(bool indexes) = 0;
  /// Rendered ".stats" text for the last RQL run.
  virtual Result<std::string> RunStatsText() = 0;
  /// Retention; returns the new earliest snapshot id.
  virtual Result<retro::SnapshotId> Truncate(retro::SnapshotId keep_from) = 0;
  /// One-line description printed at REPL start.
  virtual std::string Banner() const = 0;
};

/// The embedded mode: today's shell, a data/meta Database pair and an
/// RqlEngine owned by the caller.
class EmbeddedBackend : public ShellBackend {
 public:
  EmbeddedBackend(sql::Database* data, sql::Database* meta,
                  RqlEngine* engine, std::string banner)
      : data_(data), meta_(meta), engine_(engine),
        banner_(std::move(banner)) {}

  Result<sql::QueryResult> DataSql(const std::string& sql) override;
  Result<sql::QueryResult> MetaSql(const std::string& sql) override;
  Result<retro::SnapshotId> DeclareSnapshot(const std::string& label) override;
  Result<sql::QueryResult> Snapshots() override;
  Result<sql::QueryResult> ListSchema(bool indexes) override;
  Result<std::string> RunStatsText() override;
  Result<retro::SnapshotId> Truncate(retro::SnapshotId keep_from) override;
  std::string Banner() const override { return banner_; }

 private:
  sql::Database* data_;
  sql::Database* meta_;
  RqlEngine* engine_;
  std::string banner_;
};

/// Runs the REPL over `backend` until EOF or ".quit". `interactive`
/// controls prompts ("rql> " / "...> "). Returns a process exit code.
int RunRepl(std::istream& in, std::ostream& out, ShellBackend* backend,
            bool interactive);

}  // namespace rql::server

#endif  // RQL_SERVER_REPL_H_

#include "rql/memo_table.h"

#include <algorithm>
#include <utility>

#include "sql/fingerprint.h"  // sql::Fnv1a64

namespace rql::retro {

namespace {

// Log record layout: [magic u32][type u32][payload_len u64][crc u64]
// [payload]. The crc is FNV-1a over the payload; a mismatch (or a short
// header/payload at the tail) marks the end of the intact prefix.
constexpr uint32_t kMemoMagic = 0x4D454D52;  // "RMEM"
constexpr uint32_t kEntryRecord = 1;
constexpr uint32_t kAliasRecord = 2;
constexpr uint32_t kInvalidateRecord = 3;
constexpr uint64_t kHeaderBytes = 24;
// Defense against a corrupt length field pointing past any plausible
// record: no single memo entry approaches this.
constexpr uint64_t kMaxPayloadBytes = 1ull << 31;

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool GetU32(std::string_view data, size_t* pos, uint32_t* v) {
  if (*pos + 4 > data.size()) return false;
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(
              static_cast<unsigned char>(data[*pos + static_cast<size_t>(i)]))
          << (8 * i);
  }
  *pos += 4;
  return true;
}

bool GetU64(std::string_view data, size_t* pos, uint64_t* v) {
  if (*pos + 8 > data.size()) return false;
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(
              static_cast<unsigned char>(data[*pos + static_cast<size_t>(i)]))
          << (8 * i);
  }
  *pos += 8;
  return true;
}

bool GetString(std::string_view data, size_t* pos, std::string* s) {
  uint32_t len = 0;
  if (!GetU32(data, pos, &len)) return false;
  if (*pos + len > data.size()) return false;
  s->assign(data.substr(*pos, len));
  *pos += len;
  return true;
}

std::string EncodeEntryPayload(const MemoEntry& entry) {
  std::string out;
  PutU64(&out, entry.fingerprint);
  PutU32(&out, entry.snapshot);
  PutU32(&out, static_cast<uint32_t>(entry.read_set.size()));
  for (const MemoPageVersion& pv : entry.read_set) {
    PutU32(&out, pv.page);
    PutU64(&out, pv.version);
  }
  PutU32(&out, static_cast<uint32_t>(entry.columns.size()));
  for (const std::string& col : entry.columns) PutString(&out, col);
  PutU64(&out, static_cast<uint64_t>(entry.rows.size()));
  for (const std::string& row : entry.rows) PutString(&out, row);
  return out;
}

bool DecodeEntryPayload(std::string_view payload, MemoEntry* entry) {
  size_t pos = 0;
  uint32_t snapshot = 0, n_pages = 0, n_cols = 0;
  uint64_t n_rows = 0;
  if (!GetU64(payload, &pos, &entry->fingerprint)) return false;
  if (!GetU32(payload, &pos, &snapshot)) return false;
  entry->snapshot = snapshot;
  if (!GetU32(payload, &pos, &n_pages)) return false;
  entry->read_set.resize(n_pages);
  for (uint32_t i = 0; i < n_pages; ++i) {
    if (!GetU32(payload, &pos, &entry->read_set[i].page)) return false;
    if (!GetU64(payload, &pos, &entry->read_set[i].version)) return false;
  }
  if (!GetU32(payload, &pos, &n_cols)) return false;
  entry->columns.resize(n_cols);
  for (uint32_t i = 0; i < n_cols; ++i) {
    if (!GetString(payload, &pos, &entry->columns[i])) return false;
  }
  if (!GetU64(payload, &pos, &n_rows)) return false;
  entry->rows.resize(n_rows);
  for (uint64_t i = 0; i < n_rows; ++i) {
    if (!GetString(payload, &pos, &entry->rows[i])) return false;
  }
  return pos == payload.size();
}

std::string EncodeAliasPayload(uint64_t fingerprint, uint64_t digest,
                               SnapshotId snapshot) {
  std::string out;
  PutU64(&out, fingerprint);
  PutU64(&out, digest);
  PutU32(&out, snapshot);
  return out;
}

}  // namespace

uint64_t MemoTable::ReadSetDigest(std::vector<MemoPageVersion> read_set) {
  std::sort(read_set.begin(), read_set.end(),
            [](const MemoPageVersion& a, const MemoPageVersion& b) {
              return a.page != b.page ? a.page < b.page
                                      : a.version < b.version;
            });
  std::string bytes;
  bytes.reserve(read_set.size() * 12);
  for (const MemoPageVersion& pv : read_set) {
    PutU32(&bytes, pv.page);
    PutU64(&bytes, pv.version);
  }
  return sql::Fnv1a64(bytes);
}

uint64_t MemoTable::EntryBytes(const MemoEntry& entry) {
  uint64_t bytes = 8 + 4 + 4 + 12ull * entry.read_set.size() + 4 + 8;
  for (const std::string& col : entry.columns) bytes += 4 + col.size();
  for (const std::string& row : entry.rows) bytes += 4 + row.size();
  return bytes;
}

Result<std::unique_ptr<MemoTable>> MemoTable::Open(storage::Env* env,
                                                   const std::string& name,
                                                   MemoTableOptions options) {
  std::unique_ptr<MemoTable> table(new MemoTable(env, name, options));
  RQL_ASSIGN_OR_RETURN(table->file_, env->OpenFile(name + ".memo"));
  RQL_RETURN_IF_ERROR(table->Recover());
  return table;
}

Status MemoTable::Recover() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t size = file_->Size();
  uint64_t offset = 0;
  std::string header(kHeaderBytes, '\0');
  std::string payload;
  while (offset + kHeaderBytes <= size) {
    RQL_RETURN_IF_ERROR(file_->Read(offset, kHeaderBytes, header.data()));
    size_t pos = 0;
    uint32_t magic = 0, type = 0;
    uint64_t payload_len = 0, crc = 0;
    GetU32(header, &pos, &magic);
    GetU32(header, &pos, &type);
    GetU64(header, &pos, &payload_len);
    GetU64(header, &pos, &crc);
    if (magic != kMemoMagic || payload_len > kMaxPayloadBytes ||
        offset + kHeaderBytes + payload_len > size) {
      break;  // torn or corrupt: the intact prefix ends here
    }
    payload.resize(payload_len);
    RQL_RETURN_IF_ERROR(
        file_->Read(offset + kHeaderBytes, payload_len, payload.data()));
    if (sql::Fnv1a64(payload) != crc) break;
    ApplyRecord(type, payload);
    offset += kHeaderBytes + payload_len;
  }
  if (offset < size) {
    // Tail-truncate the torn/corrupt suffix so the next append starts a
    // clean record boundary.
    truncated_tail_bytes_ = size - offset;
    RQL_RETURN_IF_ERROR(file_->Truncate(offset));
  }
  log_bytes_ = offset;
  if (log_bytes_ > 2 * bytes_ + options_.compact_slack_bytes) {
    // The log has accumulated records for evicted/invalidated/duplicated
    // entries well past the live set; rewrite it. Best-effort: a failed
    // compaction keeps the (valid) old log.
    Status s = CompactLocked();
    if (!s.ok()) {
      auto reopened = env_->OpenFile(name_ + ".memo");
      RQL_RETURN_IF_ERROR(reopened.status());
      file_ = std::move(reopened).value();
      log_bytes_ = file_->Size();
    }
  }
  return Status::OK();
}

Status MemoTable::CompactLocked() {
  const std::string tmp_name = name_ + ".memo.tmp";
  RQL_ASSIGN_OR_RETURN(std::unique_ptr<storage::File> tmp,
                       env_->OpenFile(tmp_name));
  RQL_RETURN_IF_ERROR(tmp->Truncate(0));
  uint64_t total = 0;
  auto append = [&](uint32_t type, const std::string& payload) -> Status {
    std::string rec;
    rec.reserve(kHeaderBytes + payload.size());
    PutU32(&rec, kMemoMagic);
    PutU32(&rec, type);
    PutU64(&rec, payload.size());
    PutU64(&rec, sql::Fnv1a64(payload));
    rec += payload;
    uint64_t at = 0;
    RQL_RETURN_IF_ERROR(tmp->Append(rec.size(), rec.data(), &at));
    total += rec.size();
    return Status::OK();
  };
  // Entries oldest-first so the newest record wins any probe-index overlap
  // on the next Open, mirroring the append order that produced this state.
  for (auto it = lru_.rbegin(); it != lru_.rend(); ++it) {
    const Stored& stored = entries_.at(*it);
    RQL_RETURN_IF_ERROR(append(kEntryRecord,
                               EncodeEntryPayload(*stored.entry)));
  }
  // Probe-index rows the entry records alone do not reproduce (snapshots
  // aliased to an entry recorded at a different snapshot).
  for (const auto& [fp_snap, key] : probe_) {
    const Stored& stored = entries_.at(key);
    if (stored.entry->snapshot == fp_snap.second) continue;
    RQL_RETURN_IF_ERROR(append(
        kAliasRecord,
        EncodeAliasPayload(fp_snap.first, key.digest, fp_snap.second)));
  }
  RQL_RETURN_IF_ERROR(tmp->Sync());
  RQL_RETURN_IF_ERROR(env_->RenameFile(tmp_name, name_ + ".memo"));
  // Open handles keep addressing the pre-rename content; reopen.
  RQL_ASSIGN_OR_RETURN(file_, env_->OpenFile(name_ + ".memo"));
  log_bytes_ = total;
  return Status::OK();
}

void MemoTable::ApplyRecord(uint32_t type, const std::string& payload) {
  if (type == kEntryRecord) {
    auto entry = std::make_shared<MemoEntry>();
    if (!DecodeEntryPayload(payload, entry.get())) return;
    int64_t evicted = 0;
    if (InsertLocked(std::move(entry), &evicted)) ++recovered_entries_;
    evictions_ += evicted;
    return;
  }
  if (type == kAliasRecord) {
    size_t pos = 0;
    uint64_t fingerprint = 0, digest = 0;
    uint32_t snapshot = 0;
    if (!GetU64(payload, &pos, &fingerprint)) return;
    if (!GetU64(payload, &pos, &digest)) return;
    if (!GetU32(payload, &pos, &snapshot)) return;
    Key key{fingerprint, digest};
    auto it = entries_.find(key);
    if (it == entries_.end()) return;  // entry evicted earlier in the log
    RegisterSnapshotLocked(key, snapshot);
    TouchLocked(&it->second);
    return;
  }
  if (type == kInvalidateRecord) {
    size_t pos = 0;
    uint32_t keep_from = 0;
    if (!GetU32(payload, &pos, &keep_from)) return;
    std::vector<Key> dead;
    for (auto it = probe_.begin(); it != probe_.end();) {
      if (it->first.second < keep_from) {
        auto stored = entries_.find(it->second);
        if (stored != entries_.end()) {
          auto& snaps = stored->second.snapshots;
          snaps.erase(std::remove(snaps.begin(), snaps.end(),
                                  it->first.second),
                      snaps.end());
          if (snaps.empty()) dead.push_back(it->second);
        }
        it = probe_.erase(it);
      } else {
        ++it;
      }
    }
    for (const Key& key : dead) EraseLocked(key);
  }
}

bool MemoTable::InsertLocked(std::shared_ptr<const MemoEntry> entry,
                             int64_t* evicted) {
  *evicted = 0;
  Key key{entry->fingerprint, ReadSetDigest(entry->read_set)};
  SnapshotId snapshot = entry->snapshot;
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // First publish wins: the stored entry (same key = same fingerprint
    // and same read-set versions, hence same replay) stays; only the
    // probe index learns the new snapshot.
    RegisterSnapshotLocked(key, snapshot);
    TouchLocked(&it->second);
    return false;
  }
  Stored stored;
  stored.bytes = EntryBytes(*entry);
  stored.entry = std::move(entry);
  lru_.push_front(key);
  stored.lru_it = lru_.begin();
  bytes_ += stored.bytes;
  entries_.emplace(key, std::move(stored));
  RegisterSnapshotLocked(key, snapshot);
  *evicted = EnforceBoundLocked(&key);
  return true;
}

void MemoTable::TouchLocked(Stored* stored) {
  lru_.splice(lru_.begin(), lru_, stored->lru_it);
}

void MemoTable::RegisterSnapshotLocked(const Key& key, SnapshotId snapshot) {
  auto probe_key = std::make_pair(key.fingerprint, snapshot);
  auto it = probe_.find(probe_key);
  if (it != probe_.end()) {
    if (it->second == key) return;
    // The snapshot re-published under a different read-set digest (data
    // changed): drop the old registration.
    auto old_it = entries_.find(it->second);
    if (old_it != entries_.end()) {
      auto& snaps = old_it->second.snapshots;
      snaps.erase(std::remove(snaps.begin(), snaps.end(), snapshot),
                  snaps.end());
    }
    it->second = key;
  } else {
    probe_.emplace(probe_key, key);
  }
  auto& snaps = entries_.at(key).snapshots;
  if (std::find(snaps.begin(), snaps.end(), snapshot) == snaps.end()) {
    snaps.push_back(snapshot);
  }
}

int64_t MemoTable::EnforceBoundLocked(const Key* keep) {
  int64_t evicted = 0;
  while (bytes_ > options_.max_bytes && !lru_.empty()) {
    Key victim = lru_.back();
    if (keep != nullptr && victim == *keep) break;  // never the newest
    EraseLocked(victim);
    ++evicted;
  }
  evictions_ += evicted;
  return evicted;
}

void MemoTable::EraseLocked(const Key& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return;
  for (SnapshotId snap : it->second.snapshots) {
    auto probe_it = probe_.find(std::make_pair(key.fingerprint, snap));
    if (probe_it != probe_.end() && probe_it->second == key) {
      probe_.erase(probe_it);
    }
  }
  bytes_ -= it->second.bytes;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

std::shared_ptr<const MemoEntry> MemoTable::Probe(uint64_t fingerprint,
                                                  SnapshotId snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = probe_.find(std::make_pair(fingerprint, snapshot));
  if (it == probe_.end()) return nullptr;
  auto stored = entries_.find(it->second);
  if (stored == entries_.end()) return nullptr;
  TouchLocked(&stored->second);
  return stored->second.entry;
}

Status MemoTable::AppendRecordLocked(uint32_t type,
                                     const std::string& payload,
                                     uint64_t* appended) {
  std::string rec;
  rec.reserve(kHeaderBytes + payload.size());
  PutU32(&rec, kMemoMagic);
  PutU32(&rec, type);
  PutU64(&rec, payload.size());
  PutU64(&rec, sql::Fnv1a64(payload));
  rec += payload;
  uint64_t at = 0;
  RQL_RETURN_IF_ERROR(file_->Append(rec.size(), rec.data(), &at));
  RQL_RETURN_IF_ERROR(file_->Sync());
  log_bytes_ = at + rec.size();
  if (appended != nullptr) *appended = rec.size();
  return Status::OK();
}

Result<MemoPublishResult> MemoTable::Publish(
    std::shared_ptr<const MemoEntry> entry) {
  std::lock_guard<std::mutex> lock(mu_);
  MemoPublishResult result;
  uint64_t fingerprint = entry->fingerprint;
  SnapshotId snapshot = entry->snapshot;
  uint64_t digest = ReadSetDigest(entry->read_set);
  std::string payload = entries_.count(Key{fingerprint, digest}) == 0
                            ? EncodeEntryPayload(*entry)
                            : EncodeAliasPayload(fingerprint, digest,
                                                 snapshot);
  bool is_entry = entries_.count(Key{fingerprint, digest}) == 0;
  result.inserted = InsertLocked(std::move(entry), &result.evictions);
  RQL_RETURN_IF_ERROR(AppendRecordLocked(
      is_entry ? kEntryRecord : kAliasRecord, payload,
      &result.bytes_appended));
  return result;
}

Status MemoTable::InvalidateBelow(SnapshotId keep_from) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string payload;
  PutU32(&payload, keep_from);
  ApplyRecord(kInvalidateRecord, payload);
  return AppendRecordLocked(kInvalidateRecord, payload, nullptr);
}

uint64_t MemoTable::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

size_t MemoTable::entry_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

int64_t MemoTable::evictions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return evictions_;
}

int64_t MemoTable::recovered_entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return recovered_entries_;
}

uint64_t MemoTable::truncated_tail_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return truncated_tail_bytes_;
}

uint64_t MemoTable::log_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return log_bytes_;
}

}  // namespace rql::retro

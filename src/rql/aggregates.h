#ifndef RQL_RQL_AGGREGATES_H_
#define RQL_RQL_AGGREGATES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "sql/value.h"

namespace rql {

/// Aggregate functions usable in RQL's Aggregate Data In Variable /
/// Aggregate Data In Table mechanisms.
///
/// Section 2.3 of the paper: the function must be definable by an abelian
/// monoid (X, op, e) — op associative and commutative with identity e — so
/// that folding values across snapshots in iteration order is well
/// defined. MIN, MAX, SUM and COUNT qualify; AVG does not, but is widely
/// used, so the mechanisms implement it as a special case by carrying a
/// (sum, count) pair. COUNT DISTINCT and friends are rejected — the paper
/// directs those to Collate Data plus a final SQL query.
enum class RqlAggFunc {
  kMin,
  kMax,
  kSum,
  kCount,
  kAvg,  // special case: not a monoid, handled via (sum, count) state
};

/// Parses "min"/"max"/"sum"/"count"/"avg" (case-insensitive).
Result<RqlAggFunc> RqlAggFuncFromName(std::string_view name);

std::string_view RqlAggFuncName(RqlAggFunc func);

/// True for the functions that satisfy the monoid requirement directly.
bool IsMonoid(RqlAggFunc func);

/// The monoid combine: op(acc, next). NULLs act as the identity (they are
/// absorbed), matching SQL aggregate NULL handling. Not valid for kAvg.
Result<sql::Value> RqlCombine(RqlAggFunc func, const sql::Value& acc,
                              const sql::Value& next);

/// Running state for AVG's special-case implementation.
struct AvgState {
  long double sum = 0;
  int64_t count = 0;

  void Add(const sql::Value& v) {
    if (v.is_null()) return;
    sum += v.AsDouble();
    ++count;
  }
  sql::Value Final() const {
    if (count == 0) return sql::Value::Null();
    return sql::Value::Real(static_cast<double>(sum) /
                            static_cast<double>(count));
  }
};

}  // namespace rql

#endif  // RQL_RQL_AGGREGATES_H_

#ifndef RQL_RQL_AGGREGATES_H_
#define RQL_RQL_AGGREGATES_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "sql/value.h"

namespace rql {

/// Aggregate functions usable in RQL's Aggregate Data In Variable /
/// Aggregate Data In Table mechanisms.
///
/// Section 2.3 of the paper: the function must be definable by an abelian
/// monoid (X, op, e) — op associative and commutative with identity e — so
/// that folding values across snapshots in iteration order is well
/// defined. MIN, MAX, SUM and COUNT qualify; AVG does not, but is widely
/// used, so the mechanisms implement it as a special case by carrying a
/// (sum, count) pair. COUNT DISTINCT and friends are rejected — the paper
/// directs those to Collate Data plus a final SQL query.
enum class RqlAggFunc {
  kMin,
  kMax,
  kSum,
  kCount,
  kAvg,  // special case: not a monoid, handled via (sum, count) state
};

/// Parses "min"/"max"/"sum"/"count"/"avg" (case-insensitive).
Result<RqlAggFunc> RqlAggFuncFromName(std::string_view name);

std::string_view RqlAggFuncName(RqlAggFunc func);

/// True for the functions that satisfy the monoid requirement directly.
bool IsMonoid(RqlAggFunc func);

/// The monoid combine: op(acc, next). NULLs act as the identity (they are
/// absorbed), matching SQL aggregate NULL handling. Not valid for kAvg.
Result<sql::Value> RqlCombine(RqlAggFunc func, const sql::Value& acc,
                              const sql::Value& next);

/// Folds vals[0..n) into `acc` left to right with RqlCombine semantics in
/// one call — exactly equivalent to n sequential RqlCombine applications
/// (same tie-breaking, same int/real promotion point, same errors), just
/// without a Result round-trip per element. Not valid for kAvg.
Result<sql::Value> RqlCombineBatch(RqlAggFunc func, sql::Value acc,
                                   const sql::Value* vals, size_t n);

/// --- Vectorized fold kernels -------------------------------------------
///
/// The per-value transition of each SQL aggregate, applied over a whole
/// selection vector in one call. These are the batch-execution
/// counterparts of the executor's row-at-a-time accumulator update: they
/// mutate the same accumulator fields with the same per-element operation
/// order (NULL skip, count bump, int/real split, long-double running
/// sum), so a batch fold is bit-identical to the equivalent sequence of
/// scalar updates — including float rounding, which is what keeps
/// batch_execution results byte-identical to the row path. AVG and TOTAL
/// share FoldSum: both carry the (real_sum, count) pair and diverge only
/// at finalization. Header-inline so the sql executor can fold without a
/// link-time dependency on the rql core library.
namespace batch {

/// Input span for a fold: either rows selected out of a batch, read in
/// place (dense == nullptr; value i is rows[sel[i]][col], zero-copy), or
/// a pre-evaluated dense value vector (expression arguments; value i is
/// dense[i]).
struct FoldInput {
  const sql::Row* rows = nullptr;
  const uint32_t* sel = nullptr;
  int col = 0;
  const sql::Value* dense = nullptr;
  size_t n = 0;

  static FoldInput Column(const sql::Row* rows, const uint32_t* sel,
                          size_t n, int col) {
    FoldInput in;
    in.rows = rows;
    in.sel = sel;
    in.n = n;
    in.col = col;
    return in;
  }
  static FoldInput Dense(const sql::Value* vals, size_t n) {
    FoldInput in;
    in.dense = vals;
    in.n = n;
    return in;
  }
  const sql::Value& at(size_t i) const {
    return dense != nullptr ? dense[i]
                            : rows[sel[i]][static_cast<size_t>(col)];
  }
};

/// SUM / AVG / TOTAL transition: per non-null value, bump the count, add
/// into the integer sum while all inputs are integers, and always into
/// the long-double running sum the real result is taken from.
inline Status FoldSum(const FoldInput& in, int64_t* count, bool* has_value,
                      long double* real_sum, int64_t* int_sum,
                      bool* int_only) {
  for (size_t i = 0; i < in.n; ++i) {
    const sql::Value& v = in.at(i);
    if (v.is_null()) continue;
    if (!v.is_numeric()) {
      return Status::InvalidArgument("SUM/AVG of non-numeric value");
    }
    ++*count;
    if (v.type() == sql::ValueType::kInteger) {
      *int_sum += v.integer();
    } else {
      *int_only = false;
    }
    *real_sum += v.AsDouble();
    *has_value = true;
  }
  return Status::OK();
}

/// COUNT(expr) transition: count the non-null values.
inline void FoldCount(const FoldInput& in, int64_t* count) {
  for (size_t i = 0; i < in.n; ++i) {
    if (!in.at(i).is_null()) ++*count;
  }
}

/// MIN/MAX transition: first non-null value seeds the extreme; later
/// values replace it only on strict improvement (first-wins on ties,
/// like the scalar update).
inline void FoldExtreme(bool is_min, const FoldInput& in, int64_t* count,
                        bool* has_value, sql::Value* extreme) {
  for (size_t i = 0; i < in.n; ++i) {
    const sql::Value& v = in.at(i);
    if (v.is_null()) continue;
    ++*count;
    if (!*has_value) {
      *extreme = v;
    } else {
      int c = sql::CompareValues(v, *extreme);
      if (is_min ? c < 0 : c > 0) *extreme = v;
    }
    *has_value = true;
  }
}

}  // namespace batch

/// Running state for AVG's special-case implementation.
struct AvgState {
  long double sum = 0;
  int64_t count = 0;

  void Add(const sql::Value& v) {
    if (v.is_null()) return;
    sum += v.AsDouble();
    ++count;
  }
  sql::Value Final() const {
    if (count == 0) return sql::Value::Null();
    return sql::Value::Real(static_cast<double>(sum) /
                            static_cast<double>(count));
  }
};

}  // namespace rql

#endif  // RQL_RQL_AGGREGATES_H_

#include "rql/trace.h"

namespace rql {

RqlTrace::RqlTrace(const RqlTrace& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  ring_ = other.ring_;
  capacity_ = other.capacity_;
  emitted_ = other.emitted_;
  t0_us_ = other.t0_us_;
  session_id_ = other.session_id_;
  run_id_ = other.run_id_;
}

RqlTrace& RqlTrace::operator=(const RqlTrace& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  ring_ = other.ring_;
  capacity_ = other.capacity_;
  emitted_ = other.emitted_;
  t0_us_ = other.t0_us_;
  session_id_ = other.session_id_;
  run_id_ = other.run_id_;
  return *this;
}

void RqlTrace::Restart(size_t capacity, int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
  ring_.clear();
  ring_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  emitted_ = 0;
  t0_us_ = now_us;
  session_id_ = 0;
  run_id_ = 0;
}

void RqlTrace::SetContext(uint64_t session_id, uint64_t run_id) {
  std::lock_guard<std::mutex> lock(mu_);
  session_id_ = session_id;
  run_id_ = run_id;
}

uint64_t RqlTrace::session_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return session_id_;
}

uint64_t RqlTrace::run_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return run_id_;
}

void RqlTrace::Emit(RqlTraceEventType type, retro::SnapshotId snapshot,
                    int64_t now_us, std::initializer_list<int64_t> args,
                    uint16_t worker) {
  std::lock_guard<std::mutex> lock(mu_);
  if (capacity_ == 0) return;
  RqlTraceEvent ev;
  ev.t_us = now_us - t0_us_;
  ev.snapshot = snapshot;
  ev.type = type;
  ev.worker = worker;
  size_t i = 0;
  for (int64_t a : args) {
    if (i >= 6) break;
    ev.args[i++] = a;
  }
  if (ring_.size() < capacity_) {
    ring_.push_back(ev);
  } else {
    ring_[emitted_ % capacity_] = ev;
  }
  ++emitted_;
}

std::vector<RqlTraceEvent> RqlTrace::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (emitted_ <= ring_.size()) return ring_;
  // Ring wrapped: oldest retained event sits at the write head.
  std::vector<RqlTraceEvent> out;
  out.reserve(ring_.size());
  size_t head = emitted_ % capacity_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head + i) % capacity_]);
  }
  return out;
}

int64_t RqlTrace::emitted() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(emitted_);
}

int64_t RqlTrace::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return emitted_ <= ring_.size()
             ? 0
             : static_cast<int64_t>(emitted_ - ring_.size());
}

size_t RqlTrace::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

const char* RqlTrace::TypeName(RqlTraceEventType type) {
  switch (type) {
    case RqlTraceEventType::kRunBegin:
      return "run_begin";
    case RqlTraceEventType::kRunEnd:
      return "run_end";
    case RqlTraceEventType::kIterationBegin:
      return "iteration_begin";
    case RqlTraceEventType::kIterationEnd:
      return "iteration_end";
    case RqlTraceEventType::kSptBuild:
      return "spt_build";
    case RqlTraceEventType::kArchiveFetch:
      return "archive_fetch";
    case RqlTraceEventType::kScanCache:
      return "scan_cache";
    case RqlTraceEventType::kIterationSkip:
      return "iteration_skip";
    case RqlTraceEventType::kWorkerStall:
      return "worker_stall";
    case RqlTraceEventType::kMemoHit:
      return "memo_hit";
    case RqlTraceEventType::kPrefetch:
      return "prefetch";
  }
  return "unknown";
}

}  // namespace rql

#ifndef RQL_RQL_RQL_H_
#define RQL_RQL_RQL_H_

#include <atomic>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "retro/metrics.h"
#include "retro/snapshot_store.h"
#include "rql/aggregates.h"
#include "rql/memo_table.h"
#include "rql/trace.h"
#include "sql/database.h"
#include "sql/scan_cache.h"

namespace rql {

namespace sql {
class SharedScanCache;  // sql/shared_scan_cache.h
}
namespace retro {
class PrefetchScheduler;  // retro/prefetch_scheduler.h
}

/// Cost breakdown of one RQL iteration (one Qq execution on one snapshot).
/// These are the bars of the paper's Figures 8-13: Pagelog I/O, SPT build,
/// query evaluation, transient index creation, and the mechanism-specific
/// "RQL UDF" work on the result table.
struct RqlIterationStats {
  retro::SnapshotId snapshot = retro::kNoSnapshot;
  int64_t io_us = 0;          // simulated Pagelog reads
  int64_t spt_build_us = 0;   // Maplog scan (CPU + simulated log I/O)
  int64_t query_eval_us = 0;  // Qq execution proper
  int64_t index_create_us = 0;  // transient covering index (Fig. 9)
  int64_t udf_us = 0;         // result collation / aggregation work
  int64_t pagelog_pages = 0;
  int64_t db_pages = 0;       // pages shared with the current state
  int64_t cache_hits = 0;
  int64_t qq_rows = 0;
  // Result-table operation counts (Fig. 12/13: probes vs. inserts/updates).
  int64_t result_probes = 0;
  int64_t result_inserts = 0;
  int64_t result_updates = 0;
  // Iteration-setup amortization counters (all zero at paper-faithful
  // defaults; see the matching RqlOptions flags).
  int64_t maplog_pages = 0;        // Maplog pages scanned for the SPT build
  int64_t spt_delta_entries = 0;   // log entries covered by an SPT advance
  int64_t plan_cache_hits = 0;     // 1 when Qq ran from the cached plan
  int64_t batched_pagelog_reads = 0;  // archive pages fetched by prefetch
  /// Archive reads this iteration coalesced onto another worker's
  /// in-flight fetch of the same page (always 0 in sequential runs).
  int64_t coalesced_loads = 0;
  // COW page-sharing exploitation counters (zero at paper-faithful
  // defaults; see RqlOptions::reuse_decoded_pages /
  /// skip_unchanged_iterations).
  /// Scan-path pages served from the run's decoded-page cache: the page
  /// version (Pagelog offset) was already fetched and tuple-decoded for an
  /// earlier snapshot of this run — or, with a store-scoped
  /// SharedScanCache attached, for any run sharing the store.
  int64_t shared_page_hits = 0;
  /// Scan-path pages the cache could not serve (versioned pages that had
  /// to be fetched and decoded). hits / (hits + misses) is the decode
  /// reuse ratio of the iteration.
  int64_t scan_cache_misses = 0;
  /// Subset of shared_page_hits served by blocking on another run's
  /// in-flight decode of the same page version (SharedScanCache
  /// single-flight). Always 0 with the run-private cache.
  int64_t coalesced_decodes = 0;
  /// Size of the Maplog delta (pages whose mapping may differ from the
  /// previous snapshot in the set) examined by the skip decision.
  int64_t delta_pages_scanned = 0;
  /// True when Qq was not executed: the delta missed the previous
  /// iteration's read set, so its result was replayed instead.
  bool skipped = false;
  // Batch-execution counters (RqlOptions::batch_execution; zero at
  // paper-faithful defaults, zero for skipped/replayed iterations, and
  // zero when Qq's plan fell back to the row path entirely).
  /// Page-sized RowBatches the vectorized scan served to Qq.
  int64_t batches_scanned = 0;
  /// Rows those batches carried (pre-filter).
  int64_t batch_rows = 0;
  /// (row, expression) evaluations routed through scalar fallback because
  /// the expression is not vectorizable.
  int64_t batch_fallback_rows = 0;
  // Cross-run memoization counters (RqlOptions::memoize_iterations; all
  // zero at paper-faithful defaults).
  /// 1 when this iteration was answered by replaying a persistent memo
  /// entry whose page-version read set validated against the snapshot.
  int64_t memo_hits = 0;
  /// 1 when the memo was consulted and could not serve the iteration (no
  /// entry for the key, or a recorded page version no longer matched).
  int64_t memo_misses = 0;
  /// Memo-log bytes appended by this iteration's publish (0 on hits and
  /// on skip-replayed iterations, which publish nothing).
  int64_t memo_bytes = 0;
  /// Entries the publish evicted to keep the memo under its byte bound.
  int64_t memo_evictions = 0;
  // Background prefetch counters (RqlOptions::async_prefetch; all zero at
  // paper-faithful defaults).
  /// Archive pages the background pipeline loaded ahead for this
  /// iteration (attributed to the iteration that consumed or cancelled
  /// the prefetch job).
  int64_t prefetch_issued = 0;
  /// Prefetched pages a demand read of this iteration was served without
  /// a fresh archive load (cache hit or coalesced onto the in-flight
  /// prefetch).
  int64_t prefetch_hits = 0;
  /// Pages loaded ahead but never consumed by any demand read. Counted at
  /// run end against the final iteration (waste is only known once no
  /// further iteration can consume the page).
  int64_t prefetch_wasted = 0;
  /// Planned pages dropped before issue: the job was cancelled (its
  /// iteration replayed from the skip or memo path, or the run ended) or
  /// abandoned after a background I/O error or history truncation.
  int64_t prefetch_cancelled = 0;

  int64_t TotalUs() const {
    return io_us + spt_build_us + query_eval_us + index_create_us + udf_us;
  }
};

/// Aggregate statistics for one RQL query run.
struct RqlRunStats {
  std::vector<RqlIterationStats> iterations;
  /// Set by benchmarks for the Collate Data + final SQL pattern (Fig. 11).
  int64_t extra_agg_us = 0;
  /// Times the engine lexed/parsed/planned Qq during the run: one per
  /// iteration normally, one per run under RqlOptions::reuse_qq_plan.
  int64_t qq_parse_count = 0;
  /// Parallel runs: concurrent Qq evaluation makes per-iteration I/O and
  /// SPT attribution meaningless, so they are reported as run totals here
  /// (per-iteration entries then carry wall time, UDF time and row
  /// counts). `parallel_wall_us` is the elapsed time of the concurrent
  /// phase.
  bool parallel = false;
  int64_t parallel_io_us = 0;
  int64_t parallel_spt_us = 0;
  int64_t parallel_wall_us = 0;
  /// Wall time workers spent blocked inside the snapshot store during the
  /// concurrent phase: reader-lock acquisition plus waiting on coalesced
  /// archive loads. Summed across workers, so it can exceed
  /// parallel_wall_us; a value approaching workers x parallel_wall_us
  /// means the run serialized on the store. 0 in sequential runs.
  int64_t parallel_lock_wait_us = 0;
  /// Archive reads that coalesced onto a concurrent worker's in-flight
  /// fetch of the same shared pre-state page (single-flight). Nonzero
  /// values prove the paper's page-sharing effect (Section 5.1) survives
  /// parallel evaluation: each shared page is fetched once per run, not
  /// once per racing worker.
  int64_t coalesced_loads = 0;
  /// Transient Pagelog read failures absorbed by the bounded-retry policy
  /// (RqlOptions::archive_read_retries) during this run.
  int64_t archive_read_retries = 0;
  /// Iterations answered by replaying the previous result instead of
  /// executing Qq (RqlOptions::skip_unchanged_iterations).
  int64_t iterations_skipped = 0;
  /// Run total of decoded-page cache hits
  /// (RqlOptions::reuse_decoded_pages or shared_scan_cache). Hits are
  /// attributed from per-execution counters (ExecStats::scan_cache), so
  /// the total is exact for this run even when the cache is shared by
  /// concurrent runs or parallel workers.
  int64_t shared_page_hits = 0;
  /// Run total of scan-cache misses (versioned pages decoded).
  int64_t scan_cache_misses = 0;
  /// Run total of hits served by waiting on another run's in-flight
  /// decode (SharedScanCache single-flight; 0 with the private cache).
  int64_t coalesced_decodes = 0;

  int64_t TotalUs() const {
    if (parallel) {
      // Per-iteration query_eval_us is worker wall time and already
      // includes the I/O and SPT stalls reported in parallel_io_us /
      // parallel_spt_us, so summing them too would double count. The
      // honest total is wall-derived: the concurrent phase plus the
      // sequential result replay (per-iteration UDF work).
      int64_t total = extra_agg_us + parallel_wall_us;
      for (const RqlIterationStats& it : iterations) total += it.udf_us;
      return total;
    }
    int64_t total = extra_agg_us;
    for (const RqlIterationStats& it : iterations) total += it.TotalUs();
    return total;
  }
  int64_t IoUs() const {
    int64_t total = 0;
    for (const RqlIterationStats& it : iterations) total += it.io_us;
    return total;
  }
  int64_t PagelogPages() const {
    int64_t total = 0;
    for (const RqlIterationStats& it : iterations) total += it.pagelog_pages;
    return total;
  }
};

/// A (column, aggregate-function) pair for Aggregate Data In Table.
struct ColFuncPair {
  std::string column;
  RqlAggFunc func = RqlAggFunc::kMax;
};

/// How AggregateDataInTable combines records with the existing result
/// table. The paper's implementation probes an index on the grouping
/// columns per record; it reports having "also experimented with [a]
/// sort-merge based algorithm that turned out to be costlier" — both are
/// provided so the claim is reproducible (bench_ablation_aggtable).
enum class AggTableStrategy {
  /// Per-record index probe + insert/update (the paper's choice).
  kIndexProbe,
  /// Per-iteration: sort the Qq batch by grouping columns and merge it
  /// with the (sorted) result table, rewriting the table.
  kSortMerge,
};

struct RqlOptions {
  /// Name of the snapshot table in the metadata database.
  std::string snapids_table = "SnapIds";
  /// Start every RQL query with an empty snapshot page cache, matching the
  /// paper's experimental assumption (Section 5).
  bool cold_cache_per_run = true;
  /// Clear the snapshot cache before every iteration: the paper's
  /// "all-cold" baseline run, denominator of the ratio C (Section 5.1).
  /// Incompatible with parallel_workers > 1: concurrent iterations share
  /// the cache, so per-iteration clearing cannot produce the all-cold
  /// baseline — mechanisms return InvalidArgument when the combination
  /// would actually take the parallel path.
  bool cold_cache_per_iteration = false;
  /// Drop a pre-existing result table T before a mechanism recreates it.
  bool replace_result_table = true;
  /// Workers for parallel Qq evaluation (the paper's Section 7 future
  /// work). With N > 1, CollateData and AggregateDataInVariable evaluate
  /// Qq on N snapshots concurrently (each worker on its own snapshot view;
  /// views read the store under at most a shared lock, and concurrent
  /// misses on a shared archive page coalesce into one fetch) and process
  /// results sequentially in Qs order, so semantics are unchanged.
  /// Mechanisms whose result processing is order-dependent
  /// (AggregateDataInTable, CollateDataIntoIntervals) always run
  /// sequentially. In parallel runs current_snapshot() is substituted
  /// textually, exactly as the paper's Section 3 rewrite describes. Worker
  /// stall time and coalesced fetches are reported in
  /// RqlRunStats::parallel_lock_wait_us / coalesced_loads.
  int parallel_workers = 1;
  AggTableStrategy agg_table_strategy = AggTableStrategy::kIndexProbe;

  // --- iteration-setup amortization (all default off: the paper-faithful
  // --- baseline pays each iteration's setup from scratch) -----------------
  /// Derive SPT(s_{i+1}) from SPT(s_i) when sequential runs visit
  /// snapshots in ascending id order (SnapshotStore snapshot-set
  /// sessions), scanning only the Maplog delta between the declaration
  /// marks. Counted in RqlIterationStats::spt_delta_entries. Ignored by
  /// parallel runs (workers open snapshots out of order).
  bool incremental_spt = false;
  /// Lex/parse/plan Qq once per run and re-point the prepared plan at each
  /// snapshot via the bindable AS OF parameter, instead of the per-
  /// iteration InjectAsOf textual rewrite (which remains the documented
  /// paper behaviour and the fallback for multi-statement Qq). Counted in
  /// RqlRunStats::qq_parse_count / RqlIterationStats::plan_cache_hits.
  bool reuse_qq_plan = false;
  /// Prefetch each iteration's SPT-resident pages that miss the snapshot
  /// cache in one Pagelog-offset-ordered pass, charged at the sequential
  /// rate (CostModel::pagelog_seq_read_us). Counted in
  /// RqlIterationStats::batched_pagelog_reads.
  bool batch_pagelog_reads = false;

  // --- COW page-sharing exploitation (default off: the paper-faithful
  // --- baseline re-fetches and re-decodes every snapshot from scratch) ----
  /// Key table pages by their physical version (the Pagelog offset the SPT
  /// resolves them to) and serve scans from a run-scoped decoded-page
  /// cache: a page version shared by N snapshots of the set is fetched and
  /// tuple-decoded once per run instead of N times. Counted in
  /// RqlIterationStats::shared_page_hits. Composes with parallel runs (the
  /// cache is thread-safe and shared by the workers) and with
  /// cold_cache_per_iteration (the decoded cache is dropped each iteration
  /// along with the snapshot page cache).
  bool reuse_decoded_pages = false;
  /// Skip whole iterations whose snapshot provably reads the same data as
  /// the previous one: the Maplog delta between consecutive snapshots in
  /// the set (SptCursor::last_delta) is intersected with the page read-set
  /// of the last executed iteration, and on an empty intersection the
  /// previous Qq result is replayed through the mechanism without
  /// executing Qq. Counted in RqlIterationStats::skipped /
  /// RqlRunStats::iterations_skipped. Sequential runs only (parallel
  /// workers visit snapshots out of order and ignore the flag); requires
  /// Qq not to use current_snapshot() (detected, skip disabled); rejected
  /// with InvalidArgument in combination with cold_cache_per_iteration,
  /// whose all-cold baseline a skipped iteration would falsify.
  bool skip_unchanged_iterations = false;
  /// Execute Qq batch-at-a-time: eligible sequential scans decode each
  /// pinned page into a RowBatch once and push it through vectorized
  /// predicate evaluation and aggregate folds instead of the row-at-a-time
  /// spine (plans the batch path cannot serve — joins, index access —
  /// silently keep the row path). Results are byte-identical to the row
  /// path. Pays off most on CPU-bound scans and composes with
  /// reuse_decoded_pages, whose cached decoded pages the batches borrow
  /// zero-copy. Counted in RqlIterationStats::batches_scanned /
  /// batch_rows / batch_fallback_rows and the "rql.batch_size" histogram.
  /// Rejected with InvalidArgument in combination with
  /// cold_cache_per_iteration: that all-cold baseline measures the
  /// paper-faithful row pipeline, and a vectorized scan would silently
  /// change what the baseline times (the skip_unchanged_iterations
  /// precedent).
  bool batch_execution = false;
  /// Memoize per-iteration Qq results *across runs* (and across engines
  /// sharing one table) in the persistent retro::MemoTable pointed to by
  /// `memo`: every executed iteration publishes (canonicalized
  /// query/mechanism fingerprint, page-version read set, buffered result
  /// rows), and a later iteration over the same snapshot replays the entry
  /// through the mechanism — after validating every recorded page version
  /// against the snapshot's current resolution, so rewritten pages or a
  /// compacted archive conservatively miss — instead of executing Qq.
  /// Results are byte-identical to execution (the mechanism fold re-runs
  /// on the replayed rows, exactly like skip_unchanged_iterations).
  /// Composes with all other opt-in flags, sequential and parallel runs,
  /// and the UDF form; unlike the intra-run skipper it is sound for Qq
  /// using current_snapshot() (entries are keyed per snapshot). Counted in
  /// RqlIterationStats::memo_hits / memo_misses / memo_bytes /
  /// memo_evictions and traced as kMemoHit. Requires `memo` non-null;
  /// rejected with InvalidArgument in combination with
  /// cold_cache_per_iteration (a memo-replayed iteration reads nothing, so
  /// the all-cold baseline would not be measured — the
  /// skip_unchanged_iterations precedent).
  bool memoize_iterations = false;
  /// The memo table memoize_iterations consults and publishes into. Owned
  /// by the caller; shareable by any number of engines (publishes are
  /// first-publish-wins). Must live and die with the data database's
  /// files (see MemoTable::Open).
  retro::MemoTable* memo = nullptr;
  /// Store-scoped decoded-page cache shared by every run (and engine)
  /// attached to the same SnapshotStore: page versions are keyed by their
  /// Pagelog offset — immutable and globally unique within a store — so
  /// N overlapping runs fetch and tuple-decode each unique version once,
  /// with concurrent racers coalescing onto a single in-flight decode
  /// (single-flight, the BufferPool coalesced-load discipline one layer
  /// up). Owned by the caller; must outlive every engine using it and be
  /// used with one store only. Takes precedence over the run-private
  /// cache of reuse_decoded_pages (which it subsumes); results are
  /// byte-identical to running with no cache. Enables cross-run SPT-build
  /// sharing on the store (SnapshotStore::set_share_spt_builds). Counted
  /// in RqlIterationStats::shared_page_hits / scan_cache_misses /
  /// coalesced_decodes, surfaced as rql.scan_cache.* metrics, and traced
  /// in kScanCache events. Invalidated conservatively by
  /// TruncateHistory (entries a live run still holds stay alive through
  /// their shared_ptr). Rejected with InvalidArgument in combination with
  /// cold_cache_per_iteration: a cross-run cache would falsify the
  /// all-cold baseline (the skip_unchanged_iterations precedent).
  sql::SharedScanCache* shared_scan_cache = nullptr;
  /// Overlap each iteration's archive I/O with the previous iteration's
  /// query execution: while Qq runs on snapshot s_i, a background
  /// retro::PrefetchScheduler — driven by the snapshot-set cursor's Maplog
  /// delta and the SPT mapping for s_{i+1} — fetches the pages the next
  /// iteration will touch and that are not already resident (BufferPool
  /// probe, SharedScanCache probe; a step the skipper or memo will replay
  /// schedules nothing). Demand reads coalesce with in-flight prefetches
  /// through the BufferPool single-flight and take priority for simulated
  /// archive bandwidth; background I/O errors surface on the consuming
  /// iteration as the same Status the synchronous path would have
  /// returned. Results are byte-identical on and off. Sequential runs
  /// only (parallel workers fetch concurrently already; the UDF form has
  /// no lookahead — both ignore the flag). Counted in
  /// RqlIterationStats::prefetch_* and traced as kPrefetch. Rejected with
  /// InvalidArgument in combination with cold_cache_per_iteration: a
  /// background fetch landing after the per-iteration clear would
  /// silently warm the all-cold baseline (the skip_unchanged_iterations
  /// precedent).
  bool async_prefetch = false;
  /// Max pages the pipeline fetches ahead per iteration; 0 = unbounded.
  /// Bounds background read amplification and snapshot-cache churn.
  int prefetch_budget_pages = 64;

  /// Cooperative cancellation: when non-null, the engine polls the flag at
  /// iteration boundaries — sequential and UDF-form runs at the head of
  /// every iteration, parallel workers after claiming each snapshot — and
  /// aborts the run with Status::Aborted("run cancelled") once it is set.
  /// The abort takes the normal failed-run path (the partial result table
  /// is dropped, pins and caches are released), so the store stays fully
  /// reusable; nothing mid-page is interrupted. The flag's owner (e.g. the
  /// server's run scheduler) must keep it alive for the whole run.
  const std::atomic<bool>* cancel = nullptr;
  /// Identifiers stamped into the run's trace ring (RqlTrace::session_id /
  /// run_id) so a shared observability pipeline can attribute events to
  /// the daemon session and scheduled run that produced them. 0 = unset
  /// (embedded single-process runs).
  uint64_t session_id = 0;
  uint64_t run_id = 0;

  /// Bounded retry budget for transient Pagelog archive read failures
  /// during a run: each failed read is re-issued up to this many times
  /// before the iteration aborts. Counted in
  /// RqlRunStats::archive_read_retries. Default 0: fail fast, the
  /// paper-faithful assumption of reliable media.
  int archive_read_retries = 0;

  // --- observability (off by default: traced and untraced runs execute
  // --- the identical code path, differing only in event recording) --------
  /// Record structured per-iteration trace events (see rql/trace.h) into a
  /// bounded ring readable via RqlEngine::last_run_trace() and dumpable as
  /// JSON (tools/rql_report). Off by default; turning it on changes no
  /// behavior and no counter values.
  bool trace = false;
  /// Ring capacity in events; beyond it the oldest events are dropped
  /// (RqlTrace::dropped() counts them), so traced memory stays bounded.
  size_t trace_capacity = 4096;
  /// Registry receiving the run's counters (every legacy RqlRunStats field
  /// is published under "rql.*" when a run finishes, plus run/iteration
  /// latency histograms). nullptr uses MetricsRegistry::Default().
  retro::MetricsRegistry* metrics = nullptr;
};

/// The Retrospective Query Language engine (the paper's contribution).
///
/// RQL composes two SQL programs — Qs, selecting a set of snapshot ids from
/// the SnapIds table, and Qq, a query executed on every snapshot in that
/// set — with a combining mechanism:
///
///   * CollateData(Qs, Qq, T)                  — append every Qq result row
///     to T, tagged however Qq chooses (e.g. via current_snapshot()).
///   * AggregateDataInVariable(Qs, Qq, T, f)   — fold the single value Qq
///     yields per snapshot with the abelian-monoid aggregate f; store the
///     result in T.
///   * AggregateDataInTable(Qs, Qq, T, pairs)  — an across-time GROUP BY:
///     rows matching on the non-aggregated columns are combined with the
///     per-column aggregate functions.
///   * CollateDataIntoIntervals(Qs, Qq, T)     — compact consecutive
///     appearances of a record into [start_snapshot, end_snapshot]
///     lifetimes, the temporal-database representation.
///
/// Following the paper's architecture (Fig. 5), SnapIds and all result
/// tables live in a separate, non-snapshotable metadata database, while Qq
/// runs against the snapshotable application database.
class RqlEngine {
 public:
  /// `data_db` is the snapshotable application database; `meta_db` holds
  /// SnapIds and result tables. They must be distinct.
  RqlEngine(sql::Database* data_db, sql::Database* meta_db,
            RqlOptions options = RqlOptions());
  ~RqlEngine();  // out of line: MechanismState is an incomplete type here

  /// Creates the SnapIds table if missing.
  Status EnsureSnapIds();

  /// Declares a snapshot (committing the open transaction if any with
  /// COMMIT WITH SNAPSHOT, else an empty declaring transaction) and
  /// records it in SnapIds with `timestamp` and `label`.
  Result<retro::SnapshotId> CommitWithSnapshot(const std::string& timestamp,
                                               const std::string& label = "");

  /// Retention: drops snapshots with id < `keep_from` from the snapshot
  /// store (compacting its archive) and removes their SnapIds rows, so Qs
  /// queries can no longer select them.
  Status TruncateHistory(retro::SnapshotId keep_from);

  // --- the four mechanisms (programmatic form) ---------------------------
  Status CollateData(const std::string& qs, const std::string& qq,
                     const std::string& table);
  Status AggregateDataInVariable(const std::string& qs, const std::string& qq,
                                 const std::string& table,
                                 const std::string& agg_func);
  Status AggregateDataInTable(const std::string& qs, const std::string& qq,
                              const std::string& table,
                              const std::vector<ColFuncPair>& pairs);
  /// Overload parsing the paper's textual pair syntax, e.g.
  /// "(l_time,min)" or "(MAX,cn):(MAX,av)" (both element orders accepted).
  Status AggregateDataInTable(const std::string& qs, const std::string& qq,
                              const std::string& table,
                              const std::string& pairs);
  Status CollateDataIntoIntervals(const std::string& qs,
                                  const std::string& qq,
                                  const std::string& table);

  static Result<std::vector<ColFuncPair>> ParseColFuncPairs(
      const std::string& text);

  // --- the UDF-embedded form ----------------------------------------------
  /// Registers CollateData / AggregateDataInVariable / AggregateDataInTable
  /// / CollateDataIntoIntervals as scalar UDFs on the metadata database, so
  /// the paper's invocation style works verbatim:
  ///
  ///   SELECT CollateData(snap_id, 'SELECT ... FROM ...', 'Result')
  ///   FROM SnapIds WHERE ...;
  ///
  /// Each call runs one iteration; state is keyed by the result table name.
  /// Call FinishUdfRuns() after the driving SELECT completes.
  Status RegisterUdfs();

  /// Finalizes and clears all in-progress UDF-form runs.
  Status FinishUdfRuns();

  /// Rewrites Qq for snapshot `snap` by injecting "AS OF <snap>" after the
  /// first top-level SELECT keyword (the paper's rewrite, Section 3).
  static std::string InjectAsOf(const std::string& qq,
                                retro::SnapshotId snap);

  /// Replaces current_snapshot() calls — outside comments, '...' string
  /// literals and "..." quoted identifiers — with the literal snapshot id:
  /// the textual half of the paper's rewrite, used by parallel runs where
  /// the function-based implementation would race. Occurrences inside
  /// quotes are plain text, not calls, and pass through verbatim.
  static std::string ReplaceCurrentSnapshot(const std::string& qq,
                                            retro::SnapshotId snap);

  const RqlRunStats& last_run_stats() const { return stats_; }
  RqlRunStats* mutable_last_run_stats() { return &stats_; }

  /// Trace of the last run executed with RqlOptions::trace on (empty ring
  /// otherwise). Valid until the next traced run starts.
  const RqlTrace& last_run_trace() const { return trace_; }

  /// The registry runs publish into: options().metrics, or the process
  /// default when unset.
  retro::MetricsRegistry* metrics() const {
    return options_.metrics != nullptr ? options_.metrics
                                       : retro::MetricsRegistry::Default();
  }

  sql::Database* data_db() { return data_db_; }
  sql::Database* meta_db() { return meta_db_; }
  const RqlOptions& options() const { return options_; }
  RqlOptions* mutable_options() { return &options_; }

 private:
  class MechanismState;
  class CollateState;
  class AggVariableState;
  class AggTableState;
  class IntervalState;

  /// Runs a full mechanism: evaluates Qs on the metadata database, then
  /// iterates the state over every snapshot id.
  Status RunMechanism(const std::string& qs, MechanismState* state);

  /// Parallel variant: Qq evaluated concurrently, results replayed through
  /// the state sequentially in Qs order.
  Status RunMechanismParallel(const std::vector<retro::SnapshotId>& snaps,
                              MechanismState* state);

  /// One "loop body" invocation: rewrite Qq, run it on the snapshot, feed
  /// rows to the state, and record the iteration cost breakdown. With
  /// skip_unchanged_iterations, first probes the Maplog delta against the
  /// previous executed iteration's read set and replays instead of
  /// executing when it proves the result unchanged.
  Status RunIteration(retro::SnapshotId snap, MechanismState* state);

  /// Re-feeds the previous executed iteration's buffered Qq result rows
  /// through the state for snapshot `snap` (the skip path). `delta_pages`
  /// is the size of the Maplog delta the skip decision examined.
  Status ReplayIteration(retro::SnapshotId snap, MechanismState* state,
                         int64_t delta_pages);

  /// Memoized-iteration fast path: validates `entry`'s page-version read
  /// set against snapshot `snap`'s current resolution and, when every
  /// token matches, replays the entry's rows through the state, recording
  /// a memo_hits iteration. Returns false (and records nothing) when the
  /// entry does not validate — the caller then executes Qq normally.
  Result<bool> TryMemoReplay(retro::SnapshotId snap, MechanismState* state,
                             const std::shared_ptr<const retro::MemoEntry>& entry,
                             int64_t delta_pages);

  Status PrepareResultTable(const std::string& table);

  /// True when the caller-owned cancellation flag (RqlOptions::cancel) has
  /// been raised; polled at iteration boundaries.
  bool CancelRequested() const {
    return options_.cancel != nullptr &&
           options_.cancel->load(std::memory_order_relaxed);
  }

  /// Adds every RqlRunStats counter of `stats_` to the registry's "rql.*"
  /// counters and observes the run/iteration latency histograms — called
  /// exactly once per run (mechanism and UDF forms), so a registry delta
  /// taken around a run equals the legacy struct.
  void PublishRunMetrics();

  sql::Database* data_db_;
  sql::Database* meta_db_;
  RqlOptions options_;
  RqlRunStats stats_;
  /// Per-run structured event ring (RqlOptions::trace); `trace_on_`
  /// latches the flag for the current run so emission sites stay cheap.
  RqlTrace trace_;
  bool trace_on_ = false;
  /// Run-scoped decoded-page cache (reuse_decoded_pages); attached to the
  /// data database (and to parallel worker contexts) for the duration of a
  /// run and cleared when the run ends.
  sql::ScanCache scan_cache_;
  /// Background archive-read pipeline (async_prefetch); created at the
  /// head of a sequential run, shut down and destroyed before the run
  /// returns (workers never outlive the run's store/Env use).
  std::unique_ptr<retro::PrefetchScheduler> prefetch_;
  // UDF-form state, keyed by result table name.
  std::unordered_map<std::string, std::unique_ptr<MechanismState>>
      udf_states_;
  bool udf_run_started_ = false;
};

}  // namespace rql

#endif  // RQL_RQL_RQL_H_

#include "rql/rql.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <thread>
#include <unordered_set>

#include "common/clock.h"
#include "retro/prefetch_scheduler.h"
#include "sql/btree.h"
#include "sql/executor.h"
#include "sql/fingerprint.h"
#include "sql/heap_table.h"
#include "sql/parser.h"
#include "sql/shared_scan_cache.h"

namespace rql {

using sql::Row;
using sql::Value;

namespace {

/// Infers a result-table schema from Qq's output columns and a sample row.
sql::TableSchema SchemaFrom(const std::vector<std::string>& cols,
                            const Row& row) {
  sql::TableSchema schema;
  for (size_t i = 0; i < cols.size(); ++i) {
    sql::ColumnDef col;
    col.name = cols[i];
    col.type = (i < row.size() && !row[i].is_null()) ? row[i].type()
                                                     : sql::ValueType::kText;
    schema.columns.push_back(std::move(col));
  }
  return schema;
}

/// Creates an index and populates it from the table's current contents
/// (used after the first cold iteration fills the result table).
Status CreateAndPopulateIndex(sql::Database* db, const std::string& name,
                              const std::string& table,
                              const std::vector<std::string>& columns) {
  RQL_ASSIGN_OR_RETURN(const sql::IndexInfo* index,
                       db->catalog()->CreateIndex(name, table, columns));
  const sql::TableInfo* info = db->catalog()->data().FindTable(table);
  sql::BTree tree(db->store(), index->root);
  for (auto it = sql::HeapTable::Scan(db->store(), info->root); it.Valid();
       it.Next()) {
    RQL_ASSIGN_OR_RETURN(Row row, sql::DecodeRow(it.record()));
    Row key;
    key.reserve(index->column_idx.size() + 1);
    for (int idx : index->column_idx) {
      key.push_back(row[static_cast<size_t>(idx)]);
    }
    key.push_back(Value::Integer(static_cast<int64_t>(it.rid())));
    RQL_RETURN_IF_ERROR(tree.Insert(key, it.rid()));
  }
  return Status::OK();
}

struct ProbeMatch {
  sql::Rid rid;
  Row row;
};

/// All rows of `table` whose values on the index's columns equal `prefix`.
Result<std::vector<ProbeMatch>> ProbeByPrefix(sql::Database* db,
                                              const sql::IndexInfo* index,
                                              const Row& prefix) {
  std::vector<ProbeMatch> matches;
  RQL_ASSIGN_OR_RETURN(sql::BTree::Iterator it,
                       sql::BTree::Seek(db->store(), index->root, prefix));
  for (; it.Valid(); it.Next()) {
    const Row& key = it.key();
    if (key.size() < prefix.size()) break;
    bool equal = true;
    for (size_t i = 0; i < prefix.size(); ++i) {
      if (sql::CompareValues(key[i], prefix[i]) != 0) {
        equal = false;
        break;
      }
    }
    if (!equal) break;
    RQL_ASSIGN_OR_RETURN(std::string record,
                         sql::HeapTable::Get(db->store(), it.value()));
    RQL_ASSIGN_OR_RETURN(Row row, sql::DecodeRow(record));
    matches.push_back(ProbeMatch{it.value(), std::move(row)});
  }
  RQL_RETURN_IF_ERROR(it.status());
  return matches;
}

}  // namespace

// ---------------------------------------------------------------------------
// Mechanism states
// ---------------------------------------------------------------------------

/// Shared per-run state of one mechanism invocation; subclasses implement
/// the "loop body" result processing of Figure 5.
class RqlEngine::MechanismState {
 public:
  MechanismState(RqlEngine* engine, std::string qq, std::string table)
      : engine_(engine), qq_(std::move(qq)), table_(std::move(table)) {}
  virtual ~MechanismState() = default;

  virtual Status OnRow(retro::SnapshotId snap,
                       const std::vector<std::string>& cols,
                       const Row& row) = 0;
  virtual Status OnIterationEnd(retro::SnapshotId snap) {
    (void)snap;
    return Status::OK();
  }
  virtual Status Finish() { return Status::OK(); }

  /// Whether results may be produced by concurrent Qq evaluation and
  /// replayed in order (false for order-*processing*-dependent states
  /// that also mutate shared structures between iterations).
  virtual bool SupportsParallel() const { return false; }

  /// Best-effort cleanup after a failed run: drops the result table when
  /// this run created it. Dropping the table also drops the transient
  /// `<table>_rql_idx` covering index, so a failed mechanism leaves the
  /// metadata database as it found it.
  void DiscardOnFailure() {
    if (!table_created_) return;
    (void)meta()->Exec("DROP TABLE IF EXISTS " + table_);
    table_created_ = false;
  }

  /// Moves per-iteration result-table counters into `iter`.
  void CollectCounters(RqlIterationStats* iter) {
    iter->result_probes = probes_;
    iter->result_inserts = inserts_;
    iter->result_updates = updates_;
    probes_ = inserts_ = updates_ = 0;
  }

  const std::string& qq() const { return qq_; }
  const std::string& table() const { return table_; }

  /// Prepared-plan slot for the reuse_qq_plan path: RunIteration prepares
  /// Qq once per run and rebinds AS OF per snapshot. After a failed
  /// Prepare/BindAsOf the run permanently falls back to the paper's
  /// textual rewrite (plan_failed_).
  std::unique_ptr<sql::PreparedStatement> plan_;
  bool plan_failed_ = false;

  /// Skip context for the skip_unchanged_iterations path. `read_set_` is
  /// the set of pages the last *executed* iteration's Qq consulted (every
  /// SnapshotView read records here while the recorder is armed) and
  /// `replay_cols_`/`replay_rows_` its buffered result. An iteration whose
  /// Maplog delta misses the read set replays the buffer instead of
  /// executing Qq; chained skips keep checking consecutive deltas against
  /// the same read set (induction: the pages Qq depends on are untouched
  /// at every step, and execution is deterministic). `skip_eligible_` is
  /// false until an iteration executes successfully with the recorder
  /// armed, and is invalidated whenever the set cursor rebases (no
  /// predecessor delta).
  bool skip_eligible_ = false;
  std::unordered_set<storage::PageId> read_set_;
  std::vector<std::string> replay_cols_;
  std::vector<Row> replay_rows_;
  /// Whether Qq textually uses current_snapshot() — its result then varies
  /// per snapshot even on identical data, so skipping is never sound.
  /// Probed lazily on first skip opportunity: -1 unknown, 0 no, 1 yes.
  int qq_uses_current_snapshot_ = -1;

  /// Stable mechanism name salted into the cross-run memo fingerprint:
  /// the same Qq driven by two different mechanisms must produce two
  /// different memo keys (memo_table.h).
  virtual const char* MechanismName() const = 0;

  /// Lazily computed memo key half: FNV-1a over the canonicalized Qq,
  /// salted with MechanismName(). Computed once per state, on the
  /// original (unrewritten) Qq text, so the sequential, prepared-plan and
  /// parallel execution paths all derive the identical key.
  Result<uint64_t> MemoFingerprint() {
    if (!memo_fp_ready_) {
      RQL_ASSIGN_OR_RETURN(memo_fp_,
                           sql::QueryFingerprint(qq_, MechanismName()));
      memo_fp_ready_ = true;
    }
    return memo_fp_;
  }

 protected:
  sql::Database* meta() { return engine_->meta_db_; }

  Status EnsureTable(const std::vector<std::string>& cols, const Row& row) {
    if (table_created_) return Status::OK();
    RQL_RETURN_IF_ERROR(
        meta()->catalog()->CreateTable(table_, SchemaFrom(cols, row)));
    table_created_ = true;
    return Status::OK();
  }

  RqlEngine* engine_;
  std::string qq_;
  std::string table_;
  bool table_created_ = false;
  int64_t probes_ = 0;
  int64_t inserts_ = 0;
  int64_t updates_ = 0;
  uint64_t memo_fp_ = 0;
  bool memo_fp_ready_ = false;
};

/// Collate Data: append every Qq row to T.
class RqlEngine::CollateState : public MechanismState {
 public:
  using MechanismState::MechanismState;

  Status OnRow(retro::SnapshotId, const std::vector<std::string>& cols,
               const Row& row) override {
    RQL_RETURN_IF_ERROR(EnsureTable(cols, row));
    ++inserts_;
    return meta()->AppendRow(table_, row).status();
  }

  bool SupportsParallel() const override { return true; }

  const char* MechanismName() const override { return "CollateData"; }
};

/// Aggregate Data In Variable: fold a single value per snapshot.
class RqlEngine::AggVariableState : public MechanismState {
 public:
  AggVariableState(RqlEngine* engine, std::string qq, std::string table,
                   RqlAggFunc func)
      : MechanismState(engine, std::move(qq), std::move(table)),
        func_(func) {}

  Status OnRow(retro::SnapshotId, const std::vector<std::string>& cols,
               const Row& row) override {
    if (row.size() != 1) {
      return Status::InvalidArgument(
          "AggregateDataInVariable requires Qq to return a single column");
    }
    if (row_this_iteration_) {
      return Status::InvalidArgument(
          "AggregateDataInVariable requires Qq to return a single row");
    }
    row_this_iteration_ = true;
    if (column_name_.empty() && !cols.empty()) column_name_ = cols[0];
    if (func_ == RqlAggFunc::kAvg) {
      avg_.Add(row[0]);
      return Status::OK();
    }
    RQL_ASSIGN_OR_RETURN(acc_, RqlCombine(func_, acc_, row[0]));
    return Status::OK();
  }

  Status OnIterationEnd(retro::SnapshotId) override {
    row_this_iteration_ = false;
    return Status::OK();
  }

  Status Finish() override {
    Value final = func_ == RqlAggFunc::kAvg ? avg_.Final() : acc_;
    std::string col = column_name_.empty() ? "value" : column_name_;
    RQL_RETURN_IF_ERROR(EnsureTable({col}, {final}));
    ++inserts_;
    return meta()->AppendRow(table_, {final}).status();
  }

  /// Running value (exposed so the UDF form can return it per iteration).
  Value Current() const {
    return func_ == RqlAggFunc::kAvg ? avg_.Final() : acc_;
  }

  bool SupportsParallel() const override { return true; }

  const char* MechanismName() const override {
    return "AggregateDataInVariable";
  }

 private:
  RqlAggFunc func_;
  Value acc_;  // NULL = identity
  AvgState avg_;
  std::string column_name_;
  bool row_this_iteration_ = false;
};

/// Aggregate Data In Table: an across-time GROUP BY. Grouping columns are
/// the Qq output columns not named in the (column, func) pairs.
class RqlEngine::AggTableState : public MechanismState {
 public:
  AggTableState(RqlEngine* engine, std::string qq, std::string table,
                std::vector<ColFuncPair> pairs)
      : MechanismState(engine, std::move(qq), std::move(table)),
        pairs_(std::move(pairs)) {}

  Status OnRow(retro::SnapshotId, const std::vector<std::string>& cols,
               const Row& row) override {
    if (!layout_resolved_) {
      RQL_RETURN_IF_ERROR(ResolveLayout(cols));
      RQL_RETURN_IF_ERROR(EnsureTable(cols, row));
      strategy_ = engine_->options().agg_table_strategy;
    }
    if (strategy_ == AggTableStrategy::kSortMerge && first_done_) {
      // Sort-merge: buffer the iteration's batch; merge at iteration end.
      batch_.push_back(row);
      return Status::OK();
    }
    if (!first_done_) {
      // First (cold) iteration: plain inserts; the index (index-probe
      // strategy only) is built at the end of the iteration (Fig. 12's
      // costlier cold iteration).
      RQL_RETURN_IF_ERROR(SeedAvg(row));
      ++inserts_;
      return meta()->AppendRow(table_, row).status();
    }

    // Subsequent iterations: probe by grouping columns, then update or
    // insert — the across-snapshot aggregation step.
    Row group;
    group.reserve(group_idx_.size());
    for (size_t idx : group_idx_) group.push_back(row[idx]);
    ++probes_;
    const sql::IndexInfo* index = meta()->catalog()->data().FindIndex(
        IndexName());
    RQL_ASSIGN_OR_RETURN(std::vector<ProbeMatch> matches,
                         ProbeByPrefix(meta(), index, group));
    if (matches.empty()) {
      RQL_RETURN_IF_ERROR(SeedAvg(row));
      ++inserts_;
      return meta()->AppendRow(table_, row).status();
    }
    const ProbeMatch& match = matches.front();
    Row updated = match.row;
    bool changed = false;
    for (size_t p = 0; p < pairs_.size(); ++p) {
      size_t col = agg_idx_[p];
      if (pairs_[p].func == RqlAggFunc::kAvg) {
        AvgState& avg = avg_state_[sql::EncodeRow(group)][p];
        avg.Add(row[col]);
        Value v = avg.Final();
        if (sql::CompareValues(v, updated[col]) != 0) {
          updated[col] = std::move(v);
          changed = true;
        }
        continue;
      }
      RQL_ASSIGN_OR_RETURN(
          Value combined,
          RqlCombine(pairs_[p].func, updated[col], row[col]));
      if (sql::CompareValues(combined, updated[col]) != 0) {
        updated[col] = std::move(combined);
        changed = true;
      }
    }
    if (!changed) return Status::OK();
    ++updates_;
    return meta()
        ->UpdateRowAt(table_, match.rid, match.row, updated)
        .status();
  }

  Status OnIterationEnd(retro::SnapshotId) override {
    if (strategy_ == AggTableStrategy::kSortMerge) {
      if (!first_done_) {
        first_done_ = table_created_;
        return Status::OK();
      }
      return MergeBatch();
    }
    if (table_created_ && !first_done_) {
      RQL_RETURN_IF_ERROR(CreateAndPopulateIndex(meta(), IndexName(), table_,
                                                 group_cols_));
      first_done_ = true;
    }
    return Status::OK();
  }

  const char* MechanismName() const override {
    return "AggregateDataInTable";
  }

 protected:
  std::string IndexName() const { return table_ + "_rql_idx"; }

  Row GroupKey(const Row& row) const {
    Row key;
    key.reserve(group_idx_.size());
    for (size_t idx : group_idx_) key.push_back(row[idx]);
    return key;
  }

  /// Combines `incoming` into `target` (aggregate columns only); sets
  /// *changed when any value moved.
  Status CombineInto(const Row& incoming, Row* target, bool* changed) {
    Row group = GroupKey(incoming);
    for (size_t p = 0; p < pairs_.size(); ++p) {
      size_t col = agg_idx_[p];
      Value combined;
      if (pairs_[p].func == RqlAggFunc::kAvg) {
        AvgState& avg = avg_state_[sql::EncodeRow(group)][p];
        avg.Add(incoming[col]);
        combined = avg.Final();
      } else {
        RQL_ASSIGN_OR_RETURN(
            combined,
            RqlCombine(pairs_[p].func, (*target)[col], incoming[col]));
      }
      if (sql::CompareValues(combined, (*target)[col]) != 0) {
        (*target)[col] = std::move(combined);
        *changed = true;
      }
    }
    return Status::OK();
  }

  /// The sort-merge alternative the paper reports as costlier: sort the
  /// batch by grouping columns, merge with the (sorted) result table, and
  /// rewrite the table.
  Status MergeBatch() {
    auto key_less = [this](const Row& a, const Row& b) {
      return sql::CompareRows(GroupKey(a), GroupKey(b)) < 0;
    };
    std::stable_sort(batch_.begin(), batch_.end(), key_less);

    const sql::TableInfo* info = meta()->catalog()->data().FindTable(table_);
    if (info == nullptr) return Status::Internal("result table missing");
    std::vector<std::pair<sql::Rid, Row>> existing;
    for (auto it = sql::HeapTable::Scan(meta()->store(), info->root);
         it.Valid(); it.Next()) {
      RQL_ASSIGN_OR_RETURN(Row row, sql::DecodeRow(it.record()));
      existing.emplace_back(it.rid(), std::move(row));
    }
    std::stable_sort(existing.begin(), existing.end(),
                     [&](const auto& a, const auto& b) {
                       return key_less(a.second, b.second);
                     });

    std::vector<Row> merged;
    merged.reserve(existing.size() + batch_.size());
    size_t i = 0, j = 0;
    while (i < existing.size() || j < batch_.size()) {
      ++probes_;
      int cmp;
      if (i >= existing.size()) {
        cmp = 1;
      } else if (j >= batch_.size()) {
        cmp = -1;
      } else {
        cmp = sql::CompareRows(GroupKey(existing[i].second),
                               GroupKey(batch_[j]));
      }
      if (cmp < 0) {
        merged.push_back(std::move(existing[i].second));
        ++i;
      } else if (cmp > 0) {
        RQL_RETURN_IF_ERROR(SeedAvg(batch_[j]));
        merged.push_back(std::move(batch_[j]));
        ++inserts_;
        ++j;
      } else {
        Row target = std::move(existing[i].second);
        bool changed = false;
        RQL_RETURN_IF_ERROR(CombineInto(batch_[j], &target, &changed));
        if (changed) ++updates_;
        merged.push_back(std::move(target));
        ++i;
        ++j;
      }
    }
    batch_.clear();

    // Rewrite the result table with the merged contents.
    sql::HeapTable heap(meta()->store(), info->root);
    for (const auto& [rid, row] : existing) {
      Status s = heap.Delete(rid);
      // Rows moved into `merged` were emptied; rids are still valid.
      if (!s.ok() && !s.IsNotFound()) return s;
    }
    for (const Row& row : merged) {
      RQL_RETURN_IF_ERROR(heap.Insert(sql::EncodeRow(row)).status());
    }
    return Status::OK();
  }

  Status ResolveLayout(const std::vector<std::string>& cols) {
    for (const ColFuncPair& pair : pairs_) {
      bool found = false;
      for (size_t i = 0; i < cols.size(); ++i) {
        if (sql::IdentEquals(cols[i], pair.column)) {
          agg_idx_.push_back(i);
          found = true;
          break;
        }
      }
      if (!found) {
        return Status::InvalidArgument("aggregate column not in Qq output: " +
                                       pair.column);
      }
    }
    for (size_t i = 0; i < cols.size(); ++i) {
      if (std::find(agg_idx_.begin(), agg_idx_.end(), i) == agg_idx_.end()) {
        group_idx_.push_back(i);
        group_cols_.push_back(cols[i]);
      }
    }
    if (group_cols_.empty()) {
      return Status::InvalidArgument(
          "AggregateDataInTable requires at least one grouping column");
    }
    layout_resolved_ = true;
    return Status::OK();
  }

  Status SeedAvg(const Row& row) {
    bool any_avg = false;
    for (const ColFuncPair& pair : pairs_) {
      if (pair.func == RqlAggFunc::kAvg) any_avg = true;
    }
    if (!any_avg) return Status::OK();
    Row group;
    for (size_t idx : group_idx_) group.push_back(row[idx]);
    auto& states = avg_state_[sql::EncodeRow(group)];
    states.resize(pairs_.size());
    for (size_t p = 0; p < pairs_.size(); ++p) {
      if (pairs_[p].func == RqlAggFunc::kAvg) {
        states[p].Add(row[agg_idx_[p]]);
      }
    }
    return Status::OK();
  }

  std::vector<ColFuncPair> pairs_;
  std::vector<size_t> agg_idx_;    // positions of aggregated columns
  std::vector<size_t> group_idx_;  // positions of grouping columns
  std::vector<std::string> group_cols_;
  bool layout_resolved_ = false;
  // First (cold) iteration finished: result table populated, and — for
  // the index-probe strategy — its index built.
  bool first_done_ = false;
  AggTableStrategy strategy_ = AggTableStrategy::kIndexProbe;
  std::vector<Row> batch_;  // sort-merge: the current iteration's rows
  // AVG special case: per-group running (sum, count) per pair slot.
  std::unordered_map<std::string, std::vector<AvgState>> avg_state_;
};

/// Collate Data Into Intervals: compact consecutive appearances of a
/// record into [start_snapshot, end_snapshot] lifetimes.
class RqlEngine::IntervalState : public MechanismState {
 public:
  using MechanismState::MechanismState;

  Status OnRow(retro::SnapshotId snap, const std::vector<std::string>& cols,
               const Row& row) override {
    if (!table_created_) {
      group_width_ = row.size();
      std::vector<std::string> all_cols = cols;
      all_cols.push_back("start_snapshot");
      all_cols.push_back("end_snapshot");
      Row sample = row;
      sample.push_back(Value::Integer(snap));
      sample.push_back(Value::Integer(snap));
      RQL_RETURN_IF_ERROR(EnsureTable(all_cols, sample));
      group_cols_ = cols;
    }
    Row full = row;
    full.push_back(Value::Integer(snap));
    full.push_back(Value::Integer(snap));

    if (!index_created_) {
      ++inserts_;
      return meta()->AppendRow(table_, full).status();
    }
    ++probes_;
    const sql::IndexInfo* index =
        meta()->catalog()->data().FindIndex(IndexName());
    RQL_ASSIGN_OR_RETURN(std::vector<ProbeMatch> matches,
                         ProbeByPrefix(meta(), index, row));
    // Extend the lifetime whose end is the previous iteration's snapshot;
    // otherwise a new lifetime interval starts.
    for (const ProbeMatch& match : matches) {
      const Value& end = match.row[group_width_ + 1];
      if (end.type() == sql::ValueType::kInteger &&
          end.integer() == static_cast<int64_t>(prev_snap_)) {
        Row updated = match.row;
        updated[group_width_ + 1] = Value::Integer(snap);
        ++updates_;
        return meta()
            ->UpdateRowAt(table_, match.rid, match.row, updated)
            .status();
      }
    }
    ++inserts_;
    return meta()->AppendRow(table_, full).status();
  }

  Status OnIterationEnd(retro::SnapshotId snap) override {
    if (table_created_ && !index_created_) {
      RQL_RETURN_IF_ERROR(CreateAndPopulateIndex(meta(), IndexName(), table_,
                                                 group_cols_));
      index_created_ = true;
    }
    prev_snap_ = snap;
    return Status::OK();
  }

  const char* MechanismName() const override {
    return "CollateDataIntoIntervals";
  }

 private:
  std::string IndexName() const { return table_ + "_rql_idx"; }

  size_t group_width_ = 0;
  std::vector<std::string> group_cols_;
  bool index_created_ = false;
  retro::SnapshotId prev_snap_ = retro::kNoSnapshot;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

RqlEngine::RqlEngine(sql::Database* data_db, sql::Database* meta_db,
                     RqlOptions options)
    : data_db_(data_db), meta_db_(meta_db), options_(std::move(options)) {}

RqlEngine::~RqlEngine() = default;

Status RqlEngine::EnsureSnapIds() {
  return meta_db_->Exec("CREATE TABLE IF NOT EXISTS " +
                        options_.snapids_table +
                        " (snap_id INTEGER, snap_ts TEXT, label TEXT)");
}

Result<retro::SnapshotId> RqlEngine::CommitWithSnapshot(
    const std::string& timestamp, const std::string& label) {
  RQL_RETURN_IF_ERROR(EnsureSnapIds());
  if (data_db_->store()->in_transaction()) {
    RQL_RETURN_IF_ERROR(data_db_->Exec("COMMIT WITH SNAPSHOT"));
  } else {
    RQL_RETURN_IF_ERROR(data_db_->Exec("BEGIN; COMMIT WITH SNAPSHOT;"));
  }
  retro::SnapshotId snap = data_db_->last_declared_snapshot();
  // SnapIds updates are transactional in the metadata database.
  RQL_RETURN_IF_ERROR(
      meta_db_->AppendRow(options_.snapids_table,
                          {Value::Integer(snap), Value::Text(timestamp),
                           Value::Text(label)})
          .status());
  return snap;
}

Status RqlEngine::TruncateHistory(retro::SnapshotId keep_from) {
  RQL_RETURN_IF_ERROR(data_db_->store()->TruncateHistory(keep_from));
  // Dropped snapshots can never validate again; purge their memo
  // registrations (persistently) so the table's bytes go to live entries.
  // Survivors stay: their read-set validation already catches the Pagelog
  // offsets compaction moved (conservative miss, then republish).
  if (options_.memo != nullptr) {
    RQL_RETURN_IF_ERROR(options_.memo->InvalidateBelow(keep_from));
  }
  // Compaction rebased Pagelog offsets — the shared cache's version keys.
  // Conservative contract, like MemoTable::InvalidateBelow: drop every
  // entry (runs still holding one keep it alive via their shared_ptr);
  // survivors re-decode and republish on next access.
  if (options_.shared_scan_cache != nullptr) {
    options_.shared_scan_cache->OnTruncateHistory(keep_from);
  }
  // The snapshots are gone; drop their SnapIds rows so Qs never selects
  // them. (SnapIds lives at application level, as in the paper.)
  return meta_db_->Exec("DELETE FROM " + options_.snapids_table +
                        " WHERE snap_id < " + std::to_string(keep_from));
}

namespace {

/// If `sql[i]` starts a SQL comment ("--" to end of line, or a "/* */"
/// block), returns the index just past it; otherwise returns `i`. The
/// textual Qq rewrites use this so commented-out SELECT keywords and
/// current_snapshot() calls are never rewritten.
size_t SkipSqlComment(const std::string& sql, size_t i) {
  if (i + 1 >= sql.size()) return i;
  if (sql[i] == '-' && sql[i + 1] == '-') {
    i += 2;
    while (i < sql.size() && sql[i] != '\n') ++i;
    return i;
  }
  if (sql[i] == '/' && sql[i + 1] == '*') {
    i += 2;
    while (i + 1 < sql.size() && !(sql[i] == '*' && sql[i + 1] == '/')) ++i;
    return i + 1 < sql.size() ? i + 2 : sql.size();
  }
  return i;
}

}  // namespace

std::string RqlEngine::InjectAsOf(const std::string& qq,
                                  retro::SnapshotId snap) {
  // Find the first top-level SELECT keyword outside quotes and comments
  // and splice in the Retro extension. Quote tracking covers both '...'
  // string literals and "..." quoted identifiers (the lexer accepts
  // both); the doubled-quote escape ('' / "") closes and immediately
  // reopens a run, which the toggle handles.
  char quote = 0;
  for (size_t i = 0; i + 6 <= qq.size(); ++i) {
    char c = qq[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      continue;
    }
    size_t skipped = SkipSqlComment(qq, i);
    if (skipped != i) {
      i = skipped - 1;  // the loop's ++i lands just past the comment
      continue;
    }
    auto is_word = [](char ch) {
      return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
    };
    if ((i == 0 || !is_word(qq[i - 1])) &&
        std::toupper(static_cast<unsigned char>(qq[i])) == 'S') {
      static constexpr char kSelect[] = "SELECT";
      bool match = true;
      for (int k = 0; k < 6; ++k) {
        if (std::toupper(static_cast<unsigned char>(qq[i + k])) !=
            kSelect[k]) {
          match = false;
          break;
        }
      }
      if (match && (i + 6 == qq.size() || !is_word(qq[i + 6]))) {
        return qq.substr(0, i + 6) + " AS OF " + std::to_string(snap) +
               qq.substr(i + 6);
      }
    }
  }
  return qq;  // no SELECT found; leave unchanged (will fail to parse)
}

std::string RqlEngine::ReplaceCurrentSnapshot(const std::string& qq,
                                              retro::SnapshotId snap) {
  static constexpr char kName[] = "current_snapshot";
  constexpr size_t kNameLen = sizeof(kName) - 1;
  std::string out;
  out.reserve(qq.size());
  // Matches inside '...' string literals and "..." quoted identifiers
  // must pass through untouched: a Qq like `WHERE tag =
  // 'current_snapshot()'` is comparing against a plain string, and
  // rewriting it would corrupt the literal (and wrongly disable
  // skip_unchanged_iterations via the textual-use probe). The doubled
  // quote escape ('' / "") closes and reopens a run, which the per-
  // character toggle handles.
  char quote = 0;
  auto is_word = [](char ch) {
    return std::isalnum(static_cast<unsigned char>(ch)) || ch == '_';
  };
  for (size_t i = 0; i < qq.size();) {
    char c = qq[i];
    if (quote != 0) {
      if (c == quote) quote = 0;
      out += c;
      ++i;
      continue;
    }
    size_t skipped = SkipSqlComment(qq, i);
    if (skipped != i) {
      out.append(qq, i, skipped - i);  // comments pass through verbatim
      i = skipped;
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      out += c;
      ++i;
      continue;
    }
    auto name_matches = [&]() {
      if (i + kNameLen > qq.size()) return false;
      for (size_t n = 0; n < kNameLen; ++n) {
        if (std::tolower(static_cast<unsigned char>(qq[i + n])) !=
            kName[n]) {
          return false;
        }
      }
      return true;
    };
    if ((i == 0 || !is_word(qq[i - 1])) && name_matches()) {
      // Match optional whitespace and "()" after the name.
      size_t j = i + kNameLen;
      while (j < qq.size() &&
             std::isspace(static_cast<unsigned char>(qq[j]))) {
        ++j;
      }
      if (j < qq.size() && qq[j] == '(') {
        size_t k = j + 1;
        while (k < qq.size() &&
               std::isspace(static_cast<unsigned char>(qq[k]))) {
          ++k;
        }
        if (k < qq.size() && qq[k] == ')') {
          out += std::to_string(snap);
          i = k + 1;
          continue;
        }
      }
    }
    out += c;
    ++i;
  }
  return out;
}

Status RqlEngine::PrepareResultTable(const std::string& table) {
  if (!options_.replace_result_table) return Status::OK();
  return meta_db_->Exec("DROP TABLE IF EXISTS " + table);
}

void RqlEngine::PublishRunMetrics() {
  retro::MetricsRegistry* reg = metrics();
  auto add = [reg](const char* name, int64_t v) {
    // Always touch the counter so every rql.* name exists (at zero) in
    // snapshots even when the run never exercised it.
    reg->GetCounter(name)->Add(v);
  };
  add("rql.runs", 1);
  add("rql.parallel_runs", stats_.parallel ? 1 : 0);
  add("rql.iterations", static_cast<int64_t>(stats_.iterations.size()));
  add("rql.iterations_skipped", stats_.iterations_skipped);
  add("rql.qq_parse_count", stats_.qq_parse_count);
  add("rql.extra_agg_us", stats_.extra_agg_us);
  add("rql.parallel_io_us", stats_.parallel_io_us);
  add("rql.parallel_spt_us", stats_.parallel_spt_us);
  add("rql.parallel_wall_us", stats_.parallel_wall_us);
  add("rql.parallel_lock_wait_us", stats_.parallel_lock_wait_us);
  add("rql.coalesced_loads", stats_.coalesced_loads);
  add("rql.archive_read_retries", stats_.archive_read_retries);
  add("rql.shared_page_hits", stats_.shared_page_hits);
  // Scan-cache traffic under the rql.scan_cache.* prefix the shared
  // cache's own gauges (bytes, entries, evictions — registered by the
  // caller via SharedScanCache::RegisterMetrics) share. These counters
  // are run-attributed; the gauges are cache-lifetime totals.
  add("rql.scan_cache.shared_hits", stats_.shared_page_hits);
  add("rql.scan_cache.misses", stats_.scan_cache_misses);
  add("rql.scan_cache.coalesced_decodes", stats_.coalesced_decodes);
  add("rql.total_us", stats_.TotalUs());

  // Per-iteration sums, published from the very numbers last_run_stats()
  // reports, so a registry delta over one run equals the legacy struct
  // exactly (the equality metrics_test and the property test assert).
  int64_t io_us = 0, spt_build_us = 0, query_eval_us = 0;
  int64_t index_create_us = 0, udf_us = 0;
  int64_t pagelog_pages = 0, db_pages = 0, cache_hits = 0, qq_rows = 0;
  int64_t result_probes = 0, result_inserts = 0, result_updates = 0;
  int64_t maplog_pages = 0, spt_delta_entries = 0, plan_cache_hits = 0;
  int64_t batched_pagelog_reads = 0, delta_pages_scanned = 0;
  int64_t batches_scanned = 0, batch_rows = 0, batch_fallback_rows = 0;
  int64_t memo_hits = 0, memo_misses = 0, memo_bytes = 0;
  int64_t memo_evictions = 0;
  int64_t prefetch_issued = 0, prefetch_hits = 0, prefetch_wasted = 0;
  int64_t prefetch_cancelled = 0;
  retro::MetricsRegistry::Histogram* iter_hist =
      reg->GetHistogram("rql.iteration_us");
  for (const RqlIterationStats& it : stats_.iterations) {
    io_us += it.io_us;
    spt_build_us += it.spt_build_us;
    query_eval_us += it.query_eval_us;
    index_create_us += it.index_create_us;
    udf_us += it.udf_us;
    pagelog_pages += it.pagelog_pages;
    db_pages += it.db_pages;
    cache_hits += it.cache_hits;
    qq_rows += it.qq_rows;
    result_probes += it.result_probes;
    result_inserts += it.result_inserts;
    result_updates += it.result_updates;
    maplog_pages += it.maplog_pages;
    spt_delta_entries += it.spt_delta_entries;
    plan_cache_hits += it.plan_cache_hits;
    batched_pagelog_reads += it.batched_pagelog_reads;
    delta_pages_scanned += it.delta_pages_scanned;
    batches_scanned += it.batches_scanned;
    batch_rows += it.batch_rows;
    batch_fallback_rows += it.batch_fallback_rows;
    memo_hits += it.memo_hits;
    memo_misses += it.memo_misses;
    memo_bytes += it.memo_bytes;
    memo_evictions += it.memo_evictions;
    prefetch_issued += it.prefetch_issued;
    prefetch_hits += it.prefetch_hits;
    prefetch_wasted += it.prefetch_wasted;
    prefetch_cancelled += it.prefetch_cancelled;
    iter_hist->ObserveUs(it.TotalUs());
  }
  add("rql.io_us", io_us);
  add("rql.spt_build_us", spt_build_us);
  add("rql.query_eval_us", query_eval_us);
  add("rql.index_create_us", index_create_us);
  add("rql.udf_us", udf_us);
  add("rql.pagelog_pages", pagelog_pages);
  add("rql.db_pages", db_pages);
  add("rql.cache_hits", cache_hits);
  add("rql.qq_rows", qq_rows);
  add("rql.result_probes", result_probes);
  add("rql.result_inserts", result_inserts);
  add("rql.result_updates", result_updates);
  add("rql.maplog_pages", maplog_pages);
  add("rql.spt_delta_entries", spt_delta_entries);
  add("rql.plan_cache_hits", plan_cache_hits);
  add("rql.batched_pagelog_reads", batched_pagelog_reads);
  add("rql.delta_pages_scanned", delta_pages_scanned);
  add("rql.batches_scanned", batches_scanned);
  add("rql.batch_rows", batch_rows);
  add("rql.batch_fallback_rows", batch_fallback_rows);
  add("rql.memo_hits", memo_hits);
  add("rql.memo_misses", memo_misses);
  add("rql.memo_bytes", memo_bytes);
  add("rql.memo_evictions", memo_evictions);
  add("rql.prefetch_issued", prefetch_issued);
  add("rql.prefetch_hits", prefetch_hits);
  add("rql.prefetch_wasted", prefetch_wasted);
  add("rql.prefetch_cancelled", prefetch_cancelled);
  reg->GetHistogram("rql.run_us")->ObserveUs(stats_.TotalUs());
}

namespace {

/// Bit encoding of the opt-in flags for the kRunBegin trace event.
int64_t OptionFlagBits(const RqlOptions& o) {
  return (o.incremental_spt ? 1 : 0) | (o.reuse_qq_plan ? 2 : 0) |
         (o.batch_pagelog_reads ? 4 : 0) | (o.reuse_decoded_pages ? 8 : 0) |
         (o.skip_unchanged_iterations ? 16 : 0) |
         (o.batch_execution ? 32 : 0) | (o.memoize_iterations ? 64 : 0) |
         (o.shared_scan_cache != nullptr ? 128 : 0) |
         (o.async_prefetch ? 256 : 0);
}

}  // namespace

Status RqlEngine::RunMechanism(const std::string& qs, MechanismState* state) {
  stats_ = RqlRunStats{};
  trace_on_ = options_.trace;
  // Restarted even when tracing is off (at capacity 0, so Emit no-ops):
  // last_run_trace() then always describes the *last* run, never a stale
  // earlier one.
  trace_.Restart(trace_on_ ? options_.trace_capacity : 0, NowMicros());
  trace_.SetContext(options_.session_id, options_.run_id);
  // A run cancelled before it starts must leave the metadata database
  // untouched (no dropped result table).
  if (CancelRequested()) return Status::Aborted("run cancelled");
  // Validate Qq and Qs before touching the result table: a malformed query
  // must surface before the first iteration and leave the metadata
  // database untouched (no dropped table, no partial output).
  {
    auto parsed = sql::ParseSql(state->qq());
    if (!parsed.ok()) return parsed.status();
    if (parsed->empty()) return Status::InvalidArgument("Qq is empty");
  }
  RQL_ASSIGN_OR_RETURN(sql::QueryResult snaps, meta_db_->Query(qs));
  std::vector<retro::SnapshotId> snap_ids;
  snap_ids.reserve(snaps.rows.size());
  for (const Row& row : snaps.rows) {
    if (row.empty() || !row[0].is_numeric()) {
      return Status::InvalidArgument(
          "Qs must return a column of snapshot identifiers");
    }
    snap_ids.push_back(static_cast<retro::SnapshotId>(row[0].AsInt()));
  }
  bool parallel = options_.parallel_workers > 1 && state->SupportsParallel() &&
                  snap_ids.size() > 1;
  if (parallel && options_.cold_cache_per_iteration) {
    // Workers share the snapshot cache; a per-iteration clear would race
    // with concurrent readers and silently measure a partially warm cache.
    return Status::InvalidArgument(
        "cold_cache_per_iteration is incompatible with parallel Qq "
        "evaluation (parallel_workers > 1)");
  }
  if (options_.skip_unchanged_iterations &&
      options_.cold_cache_per_iteration) {
    // A replayed iteration performs no reads at all, so the all-cold
    // baseline the flag defines would silently not be measured.
    return Status::InvalidArgument(
        "cold_cache_per_iteration is incompatible with "
        "skip_unchanged_iterations (a skipped iteration reads nothing, so "
        "the all-cold baseline would not be measured)");
  }
  if (options_.batch_execution && options_.cold_cache_per_iteration) {
    // The all-cold baseline times the paper-faithful row pipeline; a
    // vectorized scan would silently change what it measures.
    return Status::InvalidArgument(
        "cold_cache_per_iteration is incompatible with batch_execution "
        "(the all-cold baseline measures the row-at-a-time pipeline)");
  }
  if (options_.memoize_iterations) {
    if (options_.memo == nullptr) {
      return Status::InvalidArgument(
          "memoize_iterations requires RqlOptions::memo to point at a "
          "retro::MemoTable");
    }
    if (options_.cold_cache_per_iteration) {
      // Same incompatibility as skip_unchanged_iterations: a memo-replayed
      // iteration performs no reads, so the all-cold baseline the flag
      // defines would silently not be measured.
      return Status::InvalidArgument(
          "cold_cache_per_iteration is incompatible with "
          "memoize_iterations (a memo-replayed iteration reads nothing, "
          "so the all-cold baseline would not be measured)");
    }
  }
  if (options_.shared_scan_cache != nullptr &&
      options_.cold_cache_per_iteration) {
    // Pages decoded by any run sharing the store would serve this run's
    // scans, so the all-cold baseline would silently not be measured.
    return Status::InvalidArgument(
        "cold_cache_per_iteration is incompatible with shared_scan_cache "
        "(a store-scoped cache serves pages other runs decoded, so the "
        "all-cold baseline would not be measured)");
  }
  if (options_.async_prefetch && options_.cold_cache_per_iteration) {
    // A background fetch landing after the per-iteration clear would
    // silently warm the all-cold baseline the flag defines.
    return Status::InvalidArgument(
        "cold_cache_per_iteration is incompatible with async_prefetch "
        "(a background fetch landing after the clear would warm the "
        "all-cold baseline)");
  }
  if (trace_on_) {
    trace_.Emit(RqlTraceEventType::kRunBegin, retro::kNoSnapshot, NowMicros(),
                {static_cast<int64_t>(snap_ids.size()),
                 parallel ? options_.parallel_workers : 1,
                 OptionFlagBits(options_)});
  }
  RQL_RETURN_IF_ERROR(PrepareResultTable(state->table()));
  if (options_.cold_cache_per_run) {
    // Cleared before any worker thread is spawned: thread creation gives
    // the happens-before fence that makes the cold start visible to (and
    // not raced by) the parallel phase.
    data_db_->store()->ClearSnapshotCache();
  }
  retro::SnapshotStore* store = data_db_->store();
  store->set_archive_read_retries(options_.archive_read_retries);
  // Armed for every run: in kDiff mode each archive read reports the
  // diff-chain depth it walked (always 0 in kFull mode — one bucket).
  store->set_diff_depth_histogram(
      metrics()->GetHistogram("rql.pagelog.diff_depth"));
  sql::ScanCache* run_cache = nullptr;
  if (options_.shared_scan_cache != nullptr) {
    // Store-scoped: survives the run (other runs are using it), so no
    // Clear on either side. Overlapping runs also share SPT builds.
    run_cache = options_.shared_scan_cache;
    store->set_share_spt_builds(true);
  } else if (options_.reuse_decoded_pages) {
    scan_cache_.Clear();
    scan_cache_.TakeHits();
    scan_cache_.TakeMisses();
    run_cache = &scan_cache_;
  }
  if (run_cache != nullptr) data_db_->set_scan_cache(run_cache);
  if (options_.batch_execution) {
    data_db_->set_batch_execution(
        true, metrics()->GetHistogram("rql.batch_size"));
  }
  Status s = Status::OK();
  if (parallel) {
    s = RunMechanismParallel(snap_ids, state);
  } else {
    // Iteration skipping rides the same snapshot-set session as the
    // incremental SPT: the session cursor is what surfaces the per-step
    // Maplog delta. Memoized runs join it too, so a memo probe's snapshot
    // open plus the execute-on-miss open of the same id cost one SPT
    // derivation, not two cold builds.
    bool session = options_.incremental_spt ||
                   options_.skip_unchanged_iterations ||
                   options_.memoize_iterations;
    if (session) store->BeginSnapshotSet();
    bool saved_batch = store->batch_archive_reads();
    if (options_.batch_pagelog_reads) store->set_batch_archive_reads(true);
    if (options_.async_prefetch) {
      retro::PrefetchScheduler::Options popts;
      popts.budget_pages = options_.prefetch_budget_pages;
      if (options_.shared_scan_cache != nullptr) {
        // Only the store-scoped cache is a thread-safe probe; the
        // run-private ScanCache is single-threaded by contract, so with
        // reuse_decoded_pages alone the planner simply fetches raw pages
        // the decoded cache may already cover (wasted bandwidth, never
        // wrong results).
        sql::SharedScanCache* shared = options_.shared_scan_cache;
        popts.is_decoded = [shared](uint64_t version) {
          return shared->Contains(version);
        };
      }
      prefetch_ = std::make_unique<retro::PrefetchScheduler>(store, popts);
    }
    for (size_t i = 0; i < snap_ids.size(); ++i) {
      if (prefetch_ != nullptr && i + 1 < snap_ids.size()) {
        // Look ahead while iteration i executes. A step the memo will
        // serve reads nothing, so it schedules nothing; the skip probe
        // needs the cursor position iteration i+1 itself establishes, so
        // its replay cancels the job at iteration head instead.
        bool next_memoized = false;
        if (options_.memoize_iterations) {
          Result<uint64_t> fp = state->MemoFingerprint();
          next_memoized = fp.ok() &&
                          options_.memo->Probe(*fp, snap_ids[i + 1]) != nullptr;
        }
        if (!next_memoized) prefetch_->Schedule(snap_ids[i + 1]);
      }
      s = RunIteration(snap_ids[i], state);
      if (!s.ok()) break;
    }
    if (prefetch_ != nullptr) {
      prefetch_->Shutdown();
      // Waste is only known once no further iteration can consume a
      // fetched page: charge the remainder to the final iteration.
      int64_t wasted = prefetch_->TakeWasted();
      if (wasted > 0 && !stats_.iterations.empty()) {
        stats_.iterations.back().prefetch_wasted += wasted;
      }
      prefetch_.reset();
    }
    store->set_batch_archive_reads(saved_batch);
    if (session) store->EndSnapshotSet();
  }
  store->set_archive_read_retries(0);
  store->set_diff_depth_histogram(nullptr);
  if (run_cache != nullptr) {
    data_db_->set_scan_cache(nullptr);
    // Only the run-private cache is dropped here (releasing the pinned
    // frames its entries hold); a shared cache keeps serving other runs.
    if (run_cache == &scan_cache_) scan_cache_.Clear();
  }
  if (options_.batch_execution) data_db_->set_batch_execution(false);
  if (s.ok()) s = state->Finish();
  if (trace_on_) {
    trace_.Emit(RqlTraceEventType::kRunEnd, retro::kNoSnapshot, NowMicros(),
                {static_cast<int64_t>(stats_.iterations.size()),
                 stats_.iterations_skipped, stats_.TotalUs(),
                 s.ok() ? 1 : 0});
  }
  PublishRunMetrics();
  if (!s.ok()) {
    // A failed iteration (or Finish) aborts the run with a clean error:
    // drop the partial result table and its transient index.
    state->DiscardOnFailure();
    return s;
  }
  return Status::OK();
}

namespace {

/// True when every page version the memo entry recorded equals the
/// snapshot's current resolution through `view` — the content-identity
/// test that makes replaying the entry sound. Any mismatch (a page
/// rewritten inside the read set, an archive offset moved by compaction,
/// a formerly db-shared page since captured) is a conservative miss.
bool ValidateMemoEntry(retro::SnapshotView* view,
                       const retro::MemoEntry& entry) {
  for (const retro::MemoPageVersion& pv : entry.read_set) {
    uint64_t v = 0;
    uint64_t token = view->PageVersion(pv.page, &v)
                         ? v
                         : retro::kMemoDbSharedVersion;
    if (token != pv.version) return false;
  }
  return true;
}

/// Decodes a memo entry's stored rows. A decode failure (possible only if
/// the in-memory entry was corrupted past the log checksum) is reported so
/// callers can fall back to executing Qq.
Result<std::vector<Row>> DecodeMemoRows(const retro::MemoEntry& entry) {
  std::vector<Row> rows;
  rows.reserve(entry.rows.size());
  for (const std::string& encoded : entry.rows) {
    RQL_ASSIGN_OR_RETURN(Row row, sql::DecodeRow(encoded));
    rows.push_back(std::move(row));
  }
  return rows;
}

/// Builds the publishable memo entry for one executed iteration.
std::shared_ptr<const retro::MemoEntry> MakeMemoEntry(
    uint64_t fingerprint, retro::SnapshotId snap,
    const std::unordered_map<storage::PageId, uint64_t>& versions,
    const std::vector<std::string>& columns, const std::vector<Row>& rows) {
  auto entry = std::make_shared<retro::MemoEntry>();
  entry->fingerprint = fingerprint;
  entry->snapshot = snap;
  entry->read_set.reserve(versions.size());
  for (const auto& [page, token] : versions) {
    entry->read_set.push_back(retro::MemoPageVersion{page, token});
  }
  std::sort(entry->read_set.begin(), entry->read_set.end(),
            [](const retro::MemoPageVersion& a,
               const retro::MemoPageVersion& b) { return a.page < b.page; });
  entry->columns = columns;
  entry->rows.reserve(rows.size());
  for (const Row& row : rows) entry->rows.push_back(sql::EncodeRow(row));
  return entry;
}

/// The per-snapshot output of one parallel Qq evaluation.
struct QqResult {
  Status status;
  std::vector<std::string> columns;
  std::vector<Row> rows;
  int64_t wall_us = 0;
  // Batch-execution counters of this worker's Qq (batch_execution only).
  int64_t batches_scanned = 0;
  int64_t batch_rows = 0;
  int64_t batch_fallback_rows = 0;
  // Scan-cache traffic of this worker's Qq, harvested from its private
  // ExecStats — exact per-iteration attribution even though the cache
  // (and its global counters) is shared by every worker and run.
  sql::ScanCacheCounters scan_cache;
  // Memoization outputs (memoize_iterations only): a validated hit serves
  // `rows` from the memo (`validated_pages` tokens checked); a miss
  // carries the recorded read set for the post-join publish.
  bool memo_hit = false;
  int64_t validated_pages = 0;
  std::vector<retro::MemoPageVersion> read_set;
};

}  // namespace

Status RqlEngine::RunMechanismParallel(
    const std::vector<retro::SnapshotId>& snaps, MechanismState* state) {
  stats_.parallel = true;
  retro::SnapshotStore* store = data_db_->store();
  store->ResetStats();
  const sql::FunctionRegistry* functions = data_db_->functions();
  storage::PageId catalog_root = data_db_->catalog()->root();

  // Memoization composes with parallel evaluation: workers probe the
  // (thread-safe) memo and record versions into view-local maps; publishes
  // happen in the sequential replay loop, in Qs order.
  const bool memoize = options_.memoize_iterations;
  retro::MemoTable* memo = options_.memo;
  uint64_t memo_fp = 0;
  if (memoize) {
    RQL_ASSIGN_OR_RETURN(memo_fp, state->MemoFingerprint());
  }

  // Resolved once before the threads spawn; Histogram observation itself
  // is atomic, so the workers share the instance.
  retro::MetricsRegistry::Histogram* batch_hist =
      options_.batch_execution ? metrics()->GetHistogram("rql.batch_size")
                               : nullptr;
  std::vector<QqResult> results(snaps.size());
  std::atomic<size_t> next{0};
  int workers = std::min<int>(options_.parallel_workers,
                              static_cast<int>(snaps.size()));

  auto worker_body = [&](uint16_t worker) {
    for (;;) {
      size_t i = next.fetch_add(1);
      if (i >= snaps.size()) return;
      QqResult& out = results[i];
      // Checked after claiming i: every index up to the highest claim is
      // owned by some worker, so the sequential replay below sees an
      // Aborted status (never a silent empty result) once cancellation
      // hits.
      if (CancelRequested()) {
        out.status = Status::Aborted("run cancelled");
        return;
      }
      int64_t start = NowMicros();
      if (trace_on_) {
        trace_.Emit(RqlTraceEventType::kIterationBegin, snaps[i], start,
                    {static_cast<int64_t>(i)}, worker);
      }
      out.status = [&]() -> Status {
        RQL_ASSIGN_OR_RETURN(std::unique_ptr<retro::SnapshotView> view,
                             store->OpenSnapshot(snaps[i]));
        if (memoize) {
          std::shared_ptr<const retro::MemoEntry> entry =
              memo->Probe(memo_fp, snaps[i]);
          if (entry != nullptr && ValidateMemoEntry(view.get(), *entry)) {
            auto rows = DecodeMemoRows(*entry);
            if (rows.ok()) {
              out.columns = entry->columns;
              out.rows = std::move(rows).value();
              out.memo_hit = true;
              out.validated_pages =
                  static_cast<int64_t>(entry->read_set.size());
              return Status::OK();
            }
          }
        }
        // Armed before the catalog load: schema pages the query depends on
        // belong in the recorded read set too.
        std::unordered_map<storage::PageId, uint64_t> versions;
        if (memoize) view->set_version_recorder(&versions);
        // The paper's full textual rewrite: AS OF injection plus literal
        // current_snapshot() substitution (no shared engine state).
        std::string rewritten = ReplaceCurrentSnapshot(
            InjectAsOf(state->qq(), snaps[i]), snaps[i]);
        RQL_ASSIGN_OR_RETURN(sql::Statement stmt,
                             sql::ParseSingle(rewritten));
        auto* select = std::get_if<sql::SelectStmt>(&stmt);
        if (select == nullptr) {
          return Status::InvalidArgument("Qq must be a SELECT");
        }
        RQL_ASSIGN_OR_RETURN(
            sql::CatalogData catalog,
            sql::CatalogData::Load(view.get(), catalog_root));
        sql::ExecStats exec_stats;
        sql::ExecContext ctx;
        ctx.reader = view.get();
        ctx.catalog = &catalog;
        ctx.functions = functions;
        ctx.stats = &exec_stats;
        // Workers share the run's thread-safe decoded-page cache (the
        // engine's, or the store-scoped shared cache RunMechanism
        // attached), so a page version shared across their snapshots
        // decodes once.
        ctx.scan_cache = data_db_->scan_cache();
        ctx.batch_execution = options_.batch_execution;
        ctx.batch_size_hist = batch_hist;
        RQL_ASSIGN_OR_RETURN(std::unique_ptr<sql::SelectExecutor> exec,
                             sql::SelectExecutor::Prepare(select, ctx));
        out.columns = exec->columns();
        Status run = exec->Run([&out](const Row& row) {
          out.rows.push_back(row);
          return Status::OK();
        });
        out.batches_scanned = exec_stats.batches_scanned;
        out.batch_rows = exec_stats.batch_rows;
        out.batch_fallback_rows = exec_stats.batch_fallback_rows;
        out.scan_cache = exec_stats.scan_cache;
        if (memoize) {
          view->set_version_recorder(nullptr);
          out.read_set.reserve(versions.size());
          for (const auto& [page, token] : versions) {
            out.read_set.push_back(retro::MemoPageVersion{page, token});
          }
          std::sort(out.read_set.begin(), out.read_set.end(),
                    [](const retro::MemoPageVersion& a,
                       const retro::MemoPageVersion& b) {
                      return a.page < b.page;
                    });
        }
        return run;
      }();
      int64_t end = NowMicros();
      out.wall_us = end - start;
      if (trace_on_) {
        // Parallel attribution: args[2] is the worker's Qq wall time (I/O
        // and SPT stalls fold into the run totals, not per iteration).
        trace_.Emit(RqlTraceEventType::kIterationEnd, snaps[i], end,
                    {0, 0, out.wall_us, 0, 0,
                     static_cast<int64_t>(out.rows.size())},
                    worker);
      }
    }
  };

  int64_t phase_start = NowMicros();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back(worker_body, static_cast<uint16_t>(w + 1));
  }
  for (std::thread& t : threads) t.join();
  stats_.parallel_wall_us = NowMicros() - phase_start;
  // Every worker parses and plans its textually rewritten Qq from scratch.
  stats_.qq_parse_count += static_cast<int64_t>(snaps.size());

  const retro::CostModel& cm = store->cost_model();
  stats_.parallel_io_us = store->stats()->IoUs(cm);
  stats_.parallel_spt_us = store->stats()->SptUs(cm);
  stats_.parallel_lock_wait_us = store->stats()->lock_wait_us;
  stats_.coalesced_loads = store->stats()->coalesced_loads;
  stats_.archive_read_retries += store->stats()->archive_read_retries;
  // Scan-cache attribution comes from per-worker ExecStats, never from
  // the cache's global counters: workers (and, with a shared cache,
  // concurrent runs) interleave on those, so harvesting them here would
  // credit this run with traffic it did not perform.
  for (const QqResult& r : results) {
    stats_.shared_page_hits += r.scan_cache.hits;
    stats_.scan_cache_misses += r.scan_cache.misses;
    stats_.coalesced_decodes += r.scan_cache.coalesced;
  }
  if (trace_on_) {
    int64_t now = NowMicros();
    trace_.Emit(RqlTraceEventType::kWorkerStall, retro::kNoSnapshot, now,
                {stats_.parallel_lock_wait_us, stats_.coalesced_loads,
                 workers});
    if (data_db_->scan_cache() != nullptr) {
      trace_.Emit(RqlTraceEventType::kScanCache, retro::kNoSnapshot, now,
                  {stats_.shared_page_hits, stats_.scan_cache_misses,
                   stats_.coalesced_decodes});
    }
  }

  // Sequential replay in Qs order: semantics identical to the serial run.
  for (size_t i = 0; i < snaps.size(); ++i) {
    RQL_RETURN_IF_ERROR(results[i].status);
    RqlIterationStats iter;
    iter.snapshot = snaps[i];
    iter.query_eval_us = results[i].wall_us;
    iter.qq_rows = static_cast<int64_t>(results[i].rows.size());
    iter.batches_scanned = results[i].batches_scanned;
    iter.batch_rows = results[i].batch_rows;
    iter.batch_fallback_rows = results[i].batch_fallback_rows;
    iter.shared_page_hits = results[i].scan_cache.hits;
    iter.scan_cache_misses = results[i].scan_cache.misses;
    iter.coalesced_decodes = results[i].scan_cache.coalesced;
    iter.memo_hits = results[i].memo_hit ? 1 : 0;
    iter.memo_misses = (memoize && !results[i].memo_hit) ? 1 : 0;
    int64_t udf_us = 0;
    RQL_RETURN_IF_ERROR(meta_db_->Exec("BEGIN"));
    Status s = Status::OK();
    {
      ScopedTimer timer(&udf_us);
      for (const Row& row : results[i].rows) {
        s = state->OnRow(snaps[i], results[i].columns, row);
        if (!s.ok()) break;
      }
      if (s.ok()) s = state->OnIterationEnd(snaps[i]);
    }
    if (!s.ok()) {
      (void)meta_db_->Exec("ROLLBACK");
      return s;
    }
    RQL_RETURN_IF_ERROR(meta_db_->Exec("COMMIT"));
    iter.udf_us = udf_us;
    state->CollectCounters(&iter);
    if (memoize) {
      if (results[i].memo_hit) {
        if (trace_on_) {
          trace_.Emit(RqlTraceEventType::kMemoHit, snaps[i], NowMicros(),
                      {static_cast<int64_t>(i), results[i].validated_pages,
                       iter.qq_rows, udf_us});
        }
      } else {
        std::unordered_map<storage::PageId, uint64_t> versions;
        versions.reserve(results[i].read_set.size());
        for (const retro::MemoPageVersion& pv : results[i].read_set) {
          versions.emplace(pv.page, pv.version);
        }
        RQL_ASSIGN_OR_RETURN(
            retro::MemoPublishResult pub,
            memo->Publish(MakeMemoEntry(memo_fp, snaps[i], versions,
                                        results[i].columns,
                                        results[i].rows)));
        iter.memo_bytes = static_cast<int64_t>(pub.bytes_appended);
        iter.memo_evictions = pub.evictions;
      }
    }
    stats_.iterations.push_back(iter);
  }
  return Status::OK();
}

Status RqlEngine::RunIteration(retro::SnapshotId snap,
                               MechanismState* state) {
  // Iteration boundaries are the cancellation safety points: nothing is
  // half-done here, so aborting leaves the store, caches and the (about to
  // be discarded) result table in a reusable state. Covers both the
  // sequential mechanism loop and the UDF form, whose driving SELECT calls
  // one iteration per SnapIds row.
  if (CancelRequested()) return Status::Aborted("run cancelled");
  retro::SnapshotStore* store = data_db_->store();
  if (options_.cold_cache_per_iteration) {
    // Decoded pages pin buffer frames; release them before dropping the
    // snapshot page cache so the iteration truly starts cold.
    scan_cache_.Clear();
    store->ClearSnapshotCache();
  }
  store->ResetStats();

  // Skip probe: advance the snapshot-set cursor — which also primes the
  // incremental SPT for the OpenSnapshot below; re-seeking the same
  // snapshot drains no further delta — and test the Maplog delta against
  // the last executed iteration's read set. Probe costs land after
  // ResetStats, so they are attributed to this iteration.
  const bool record = options_.skip_unchanged_iterations;
  int64_t delta_pages = 0;
  if (record) {
    std::vector<storage::PageId> delta;
    RQL_ASSIGN_OR_RETURN(bool have_delta,
                         store->AdvanceSnapshotSet(snap, &delta));
    if (!have_delta) {
      // Cursor rebased (first snapshot of the set, a backward seek, or a
      // truncated history prefix): no predecessor to skip against.
      state->skip_eligible_ = false;
    } else {
      delta_pages = static_cast<int64_t>(delta.size());
      if (state->skip_eligible_) {
        if (state->qq_uses_current_snapshot_ < 0) {
          state->qq_uses_current_snapshot_ =
              ReplaceCurrentSnapshot(state->qq(), 1) != state->qq() ? 1 : 0;
        }
        bool unchanged = state->qq_uses_current_snapshot_ == 0;
        for (size_t i = 0; unchanged && i < delta.size(); ++i) {
          unchanged = state->read_set_.count(delta[i]) == 0;
        }
        if (unchanged) {
          // A replayed step reads nothing: cancel its prefetch job (the
          // parked error, if any, dies with it — the synchronous path
          // would not have issued these reads either) and attribute what
          // the job already did to the replayed iteration.
          retro::PrefetchScheduler::JobReport rep;
          if (prefetch_ != nullptr) rep = prefetch_->Cancel(snap);
          RQL_RETURN_IF_ERROR(ReplayIteration(snap, state, delta_pages));
          if (rep.scheduled && !stats_.iterations.empty()) {
            stats_.iterations.back().prefetch_issued += rep.issued;
            stats_.iterations.back().prefetch_cancelled += rep.cancelled;
          }
          return Status::OK();
        }
      }
    }
    // This iteration executes; its read set replaces the previous one
    // only if it completes successfully.
    state->skip_eligible_ = false;
  }
  // Memo probe: a persistent entry for (fingerprint, snapshot) whose
  // page-version read set still validates replays without executing Qq.
  // Runs after the skip probe so the cheaper intra-run replay wins when
  // both would hit; a memo hit seeds the skipper's read set, so the two
  // chain across the rest of the run.
  const bool memoize = options_.memoize_iterations;
  if (memoize) {
    RQL_ASSIGN_OR_RETURN(uint64_t fp, state->MemoFingerprint());
    std::shared_ptr<const retro::MemoEntry> entry =
        options_.memo->Probe(fp, snap);
    if (entry != nullptr) {
      RQL_ASSIGN_OR_RETURN(bool served,
                           TryMemoReplay(snap, state, entry, delta_pages));
      if (served) {
        // Usually no job exists (the run loop schedules nothing for a
        // memo-probed step), but an entry published by a concurrent
        // engine after that probe leaves one to cancel here.
        if (prefetch_ != nullptr) {
          retro::PrefetchScheduler::JobReport rep = prefetch_->Cancel(snap);
          if (rep.scheduled && !stats_.iterations.empty()) {
            stats_.iterations.back().prefetch_issued += rep.issued;
            stats_.iterations.back().prefetch_cancelled += rep.cancelled;
          }
        }
        return Status::OK();
      }
    }
  }
  if (trace_on_) {
    trace_.Emit(RqlTraceEventType::kIterationBegin, snap, NowMicros(),
                {static_cast<int64_t>(stats_.iterations.size())});
  }
  RqlIterationStats iter;
  iter.snapshot = snap;
  iter.delta_pages_scanned = delta_pages;
  iter.memo_misses = memoize ? 1 : 0;
  int64_t udf_us = 0;
  int64_t qq_rows = 0;

  // Consume this iteration's prefetch job before executing: stop the
  // un-issued remainder (the iteration's own demand reads take over, with
  // slot priority) and surface any parked background I/O error exactly
  // where the synchronous batched pass would have failed.
  retro::PrefetchScheduler::JobReport prefetch_report;
  if (prefetch_ != nullptr) {
    prefetch_report = prefetch_->Collect(snap);
    RQL_RETURN_IF_ERROR(prefetch_report.error);
    iter.prefetch_issued = prefetch_report.issued;
    iter.prefetch_cancelled = prefetch_report.cancelled;
    if (prefetch_report.scheduled) {
      metrics()->GetHistogram("rql.prefetch.overlap_us")
          ->ObserveUs(prefetch_report.overlap_us);
    }
  }

  data_db_->set_current_snapshot(snap);
  RQL_RETURN_IF_ERROR(meta_db_->Exec("BEGIN"));
  // While armed, every page the snapshot view serves lands in `reads`;
  // the Qq result is buffered alongside so an unchanged successor can
  // replay it. Disarmed right after Qq finishes (no early returns in
  // between — both execution paths capture their status in `s`).
  std::unordered_set<storage::PageId> reads;
  std::vector<std::string> buf_cols;
  std::vector<Row> buf_rows;
  const bool buffer = record || memoize;
  if (record) store->set_read_recorder(&reads);
  // The version recorder captures, for every page the snapshot view
  // serves, the Pagelog offset it resolved to (or the db-shared sentinel)
  // — the memo entry's validation key.
  std::unordered_map<storage::PageId, uint64_t> versions;
  if (memoize) store->set_version_recorder(&versions);
  int64_t start = NowMicros();
  auto row_cb = [&](const std::vector<std::string>& cols,
                    const Row& row) -> Status {
    if (buffer) {
      if (buf_cols.empty()) buf_cols = cols;
      buf_rows.push_back(row);
    }
    ScopedTimer timer(&udf_us);
    ++qq_rows;
    return state->OnRow(snap, cols, row);
  };
  Status s = Status::OK();
  bool ran_prepared = false;
  if (options_.reuse_qq_plan && !state->plan_failed_) {
    bool had_plan = state->plan_ != nullptr;
    if (!had_plan) {
      ++stats_.qq_parse_count;
      auto prepared = data_db_->Prepare(state->qq());
      if (prepared.ok()) {
        state->plan_ = std::move(prepared).value();
      } else {
        // Unpreparable Qq (e.g. a multi-statement script): fall back to
        // the paper's textual rewrite for the rest of the run.
        state->plan_failed_ = true;
      }
    }
    if (state->plan_ != nullptr) {
      Status bind = state->plan_->BindAsOf(snap);
      if (bind.ok()) {
        if (had_plan) iter.plan_cache_hits = 1;
        s = state->plan_->Execute(row_cb);
        ran_prepared = true;
      } else {
        state->plan_.reset();
        state->plan_failed_ = true;
      }
    }
  }
  if (!ran_prepared) {
    // Paper-faithful path: lex/parse/plan the rewritten Qq every iteration.
    ++stats_.qq_parse_count;
    std::string rewritten = InjectAsOf(state->qq(), snap);
    s = data_db_->Exec(rewritten, row_cb);
  }
  if (record) store->set_read_recorder(nullptr);
  if (memoize) store->set_version_recorder(nullptr);
  int64_t index_create_us = data_db_->last_stats().exec.index_build_us;
  int64_t spt_cpu_us = store->stats()->spt.cpu_us;
  if (s.ok()) {
    ScopedTimer timer(&udf_us);
    s = state->OnIterationEnd(snap);
  }
  int64_t exec_total = NowMicros() - start;
  data_db_->set_current_snapshot(retro::kNoSnapshot);
  if (!s.ok()) {
    (void)meta_db_->Exec("ROLLBACK");
    return s;
  }
  RQL_RETURN_IF_ERROR(meta_db_->Exec("COMMIT"));

  const retro::CostModel& cm = store->cost_model();
  const retro::IterationStats& rs = *store->stats();
  stats_.archive_read_retries += rs.archive_read_retries;
  iter.io_us = rs.IoUs(cm);
  iter.spt_build_us = rs.SptUs(cm);
  iter.index_create_us = index_create_us;
  iter.udf_us = udf_us;
  iter.query_eval_us =
      std::max<int64_t>(0, exec_total - udf_us - index_create_us -
                               spt_cpu_us);
  iter.pagelog_pages = rs.pagelog_page_reads;
  iter.db_pages = rs.db_page_reads;
  iter.cache_hits = rs.snapshot_cache_hits;
  iter.maplog_pages = rs.spt.maplog_pages_read;
  iter.spt_delta_entries = rs.spt_delta_entries;
  iter.batched_pagelog_reads = rs.batched_pagelog_reads;
  iter.coalesced_loads = rs.coalesced_loads;
  iter.qq_rows = qq_rows;
  iter.batches_scanned = data_db_->last_stats().exec.batches_scanned;
  iter.batch_rows = data_db_->last_stats().exec.batch_rows;
  iter.batch_fallback_rows =
      data_db_->last_stats().exec.batch_fallback_rows;
  // Per-execution counters, not the cache's globals: exact for this
  // iteration even when the cache is store-scoped and other runs are
  // hitting it concurrently (all zero when no cache is attached).
  const sql::ScanCacheCounters& sc = data_db_->last_stats().exec.scan_cache;
  iter.shared_page_hits = sc.hits;
  iter.scan_cache_misses = sc.misses;
  iter.coalesced_decodes = sc.coalesced;
  stats_.shared_page_hits += iter.shared_page_hits;
  stats_.scan_cache_misses += iter.scan_cache_misses;
  stats_.coalesced_decodes += iter.coalesced_decodes;
  // Harvested after the query so every demand read of this iteration has
  // had its chance to consume a prefetched page.
  if (prefetch_ != nullptr) iter.prefetch_hits = prefetch_->TakeHits();
  if (trace_on_) {
    int64_t now = NowMicros();
    trace_.Emit(RqlTraceEventType::kSptBuild, snap, now,
                {iter.maplog_pages, iter.spt_delta_entries, spt_cpu_us,
                 options_.incremental_spt ? 1 : 0});
    trace_.Emit(RqlTraceEventType::kArchiveFetch, snap, now,
                {iter.pagelog_pages, iter.batched_pagelog_reads,
                 iter.cache_hits, iter.db_pages, rs.archive_read_retries});
    if (data_db_->scan_cache() != nullptr) {
      trace_.Emit(RqlTraceEventType::kScanCache, snap, now,
                  {iter.shared_page_hits, iter.scan_cache_misses,
                   iter.coalesced_decodes});
    }
    if (prefetch_report.scheduled) {
      trace_.Emit(RqlTraceEventType::kPrefetch, snap, now,
                  {iter.prefetch_issued, iter.prefetch_hits,
                   iter.prefetch_cancelled, prefetch_report.overlap_us});
    }
    trace_.Emit(RqlTraceEventType::kIterationEnd, snap, now,
                {iter.io_us, iter.spt_build_us, iter.query_eval_us,
                 iter.index_create_us, iter.udf_us, iter.qq_rows});
  }
  if (memoize) {
    RQL_ASSIGN_OR_RETURN(uint64_t fp, state->MemoFingerprint());
    RQL_ASSIGN_OR_RETURN(
        retro::MemoPublishResult pub,
        options_.memo->Publish(
            MakeMemoEntry(fp, snap, versions, buf_cols, buf_rows)));
    iter.memo_bytes = static_cast<int64_t>(pub.bytes_appended);
    iter.memo_evictions = pub.evictions;
  }
  if (record) {
    state->read_set_ = std::move(reads);
    state->replay_cols_ = std::move(buf_cols);
    state->replay_rows_ = std::move(buf_rows);
    state->skip_eligible_ = true;
  }
  state->CollectCounters(&iter);
  stats_.iterations.push_back(iter);
  return Status::OK();
}

Status RqlEngine::ReplayIteration(retro::SnapshotId snap,
                                  MechanismState* state,
                                  int64_t delta_pages) {
  retro::SnapshotStore* store = data_db_->store();
  RqlIterationStats iter;
  iter.snapshot = snap;
  iter.skipped = true;
  iter.delta_pages_scanned = delta_pages;
  iter.qq_rows = static_cast<int64_t>(state->replay_rows_.size());
  int64_t udf_us = 0;
  RQL_RETURN_IF_ERROR(meta_db_->Exec("BEGIN"));
  Status s = Status::OK();
  {
    ScopedTimer timer(&udf_us);
    for (const Row& row : state->replay_rows_) {
      s = state->OnRow(snap, state->replay_cols_, row);
      if (!s.ok()) break;
    }
    if (s.ok()) s = state->OnIterationEnd(snap);
  }
  if (!s.ok()) {
    (void)meta_db_->Exec("ROLLBACK");
    return s;
  }
  RQL_RETURN_IF_ERROR(meta_db_->Exec("COMMIT"));
  // The only store work this iteration did was the skip probe's Maplog
  // advance (charged after ResetStats in RunIteration).
  const retro::CostModel& cm = store->cost_model();
  const retro::IterationStats& rs = *store->stats();
  iter.io_us = rs.IoUs(cm);
  iter.spt_build_us = rs.SptUs(cm);
  iter.udf_us = udf_us;
  iter.maplog_pages = rs.spt.maplog_pages_read;
  iter.spt_delta_entries = rs.spt_delta_entries;
  state->CollectCounters(&iter);
  if (trace_on_) {
    trace_.Emit(RqlTraceEventType::kIterationSkip, snap, NowMicros(),
                {static_cast<int64_t>(stats_.iterations.size()), delta_pages,
                 iter.qq_rows, udf_us});
  }
  ++stats_.iterations_skipped;
  stats_.iterations.push_back(iter);
  return Status::OK();
}

Result<bool> RqlEngine::TryMemoReplay(
    retro::SnapshotId snap, MechanismState* state,
    const std::shared_ptr<const retro::MemoEntry>& entry,
    int64_t delta_pages) {
  retro::SnapshotStore* store = data_db_->store();
  // Validation failures are conservative misses, never errors: the
  // execute path runs next and surfaces any real problem itself.
  auto view_or = store->OpenSnapshot(snap);
  if (!view_or.ok()) return false;
  std::unique_ptr<retro::SnapshotView> view = std::move(view_or).value();
  if (!ValidateMemoEntry(view.get(), *entry)) return false;
  auto rows_or = DecodeMemoRows(*entry);
  if (!rows_or.ok()) return false;
  std::vector<Row> rows = std::move(rows_or).value();

  RqlIterationStats iter;
  iter.snapshot = snap;
  iter.memo_hits = 1;
  iter.delta_pages_scanned = delta_pages;
  iter.qq_rows = static_cast<int64_t>(rows.size());
  int64_t udf_us = 0;
  RQL_RETURN_IF_ERROR(meta_db_->Exec("BEGIN"));
  Status s = Status::OK();
  {
    // Non-idempotent folds stay correct because the mechanism re-runs
    // exactly as it would have over the live Qq cursor.
    ScopedTimer timer(&udf_us);
    for (const Row& row : rows) {
      s = state->OnRow(snap, entry->columns, row);
      if (!s.ok()) break;
    }
    if (s.ok()) s = state->OnIterationEnd(snap);
  }
  if (!s.ok()) {
    (void)meta_db_->Exec("ROLLBACK");
    return s;
  }
  RQL_RETURN_IF_ERROR(meta_db_->Exec("COMMIT"));
  // Store work this iteration: the skip probe's Maplog advance plus the
  // probe view's SPT derivation and validation lookups (all landed after
  // ResetStats in RunIteration, so they are attributed here).
  const retro::CostModel& cm = store->cost_model();
  const retro::IterationStats& rs = *store->stats();
  iter.io_us = rs.IoUs(cm);
  iter.spt_build_us = rs.SptUs(cm);
  iter.udf_us = udf_us;
  iter.maplog_pages = rs.spt.maplog_pages_read;
  iter.spt_delta_entries = rs.spt_delta_entries;
  if (options_.skip_unchanged_iterations) {
    // Seed the intra-run skipper from the memo entry: provably unchanged
    // successors replay these buffers without re-probing the memo.
    state->read_set_.clear();
    for (const retro::MemoPageVersion& pv : entry->read_set) {
      state->read_set_.insert(pv.page);
    }
    state->replay_cols_ = entry->columns;
    state->replay_rows_ = std::move(rows);
    state->skip_eligible_ = true;
  }
  state->CollectCounters(&iter);
  if (trace_on_) {
    trace_.Emit(RqlTraceEventType::kMemoHit, snap, NowMicros(),
                {static_cast<int64_t>(stats_.iterations.size()),
                 static_cast<int64_t>(entry->read_set.size()), iter.qq_rows,
                 udf_us});
  }
  stats_.iterations.push_back(iter);
  return true;
}

Status RqlEngine::CollateData(const std::string& qs, const std::string& qq,
                              const std::string& table) {
  CollateState state(this, qq, table);
  return RunMechanism(qs, &state);
}

Status RqlEngine::AggregateDataInVariable(const std::string& qs,
                                          const std::string& qq,
                                          const std::string& table,
                                          const std::string& agg_func) {
  RQL_ASSIGN_OR_RETURN(RqlAggFunc func, RqlAggFuncFromName(agg_func));
  AggVariableState state(this, qq, table, func);
  return RunMechanism(qs, &state);
}

Status RqlEngine::AggregateDataInTable(const std::string& qs,
                                       const std::string& qq,
                                       const std::string& table,
                                       const std::vector<ColFuncPair>& pairs) {
  if (pairs.empty()) {
    return Status::InvalidArgument(
        "AggregateDataInTable requires at least one (column, func) pair");
  }
  AggTableState state(this, qq, table, pairs);
  return RunMechanism(qs, &state);
}

Status RqlEngine::AggregateDataInTable(const std::string& qs,
                                       const std::string& qq,
                                       const std::string& table,
                                       const std::string& pairs) {
  RQL_ASSIGN_OR_RETURN(std::vector<ColFuncPair> parsed,
                       ParseColFuncPairs(pairs));
  return AggregateDataInTable(qs, qq, table, parsed);
}

Status RqlEngine::CollateDataIntoIntervals(const std::string& qs,
                                           const std::string& qq,
                                           const std::string& table) {
  IntervalState state(this, qq, table);
  return RunMechanism(qs, &state);
}

Result<std::vector<ColFuncPair>> RqlEngine::ParseColFuncPairs(
    const std::string& text) {
  // Accepts the paper's notations "(col,func)" and "(func,col)", with
  // multiple pairs separated by ':', e.g. "(MAX,cn):(MAX,av)".
  std::vector<ColFuncPair> pairs;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t open = text.find('(', pos);
    if (open == std::string::npos) break;
    size_t comma = text.find(',', open);
    size_t close = text.find(')', open);
    if (comma == std::string::npos || close == std::string::npos ||
        comma > close) {
      return Status::InvalidArgument("bad column/function pair syntax: " +
                                     text);
    }
    auto trim = [](std::string s) {
      size_t b = s.find_first_not_of(" \t");
      size_t e = s.find_last_not_of(" \t");
      return b == std::string::npos ? std::string()
                                    : s.substr(b, e - b + 1);
    };
    std::string first = trim(text.substr(open + 1, comma - open - 1));
    std::string second = trim(text.substr(comma + 1, close - comma - 1));
    ColFuncPair pair;
    auto func_first = RqlAggFuncFromName(first);
    auto func_second = RqlAggFuncFromName(second);
    if (func_second.ok()) {
      pair.column = first;
      pair.func = *func_second;
    } else if (func_first.ok()) {
      pair.column = second;
      pair.func = *func_first;
    } else {
      return Status::InvalidArgument(
          "no aggregate function in pair: (" + first + "," + second + ")");
    }
    pairs.push_back(std::move(pair));
    pos = close + 1;
  }
  if (pairs.empty()) {
    return Status::InvalidArgument("no column/function pairs in: " + text);
  }
  return pairs;
}

Status RqlEngine::RegisterUdfs() {
  auto begin_run = [this](const std::string& table,
                          auto make_state) -> Result<MechanismState*> {
    if (!udf_run_started_) {
      if (options_.skip_unchanged_iterations &&
          options_.cold_cache_per_iteration) {
        // Same incompatibility RunMechanism rejects: a replayed iteration
        // reads nothing, falsifying the all-cold baseline.
        return Status::InvalidArgument(
            "cold_cache_per_iteration is incompatible with "
            "skip_unchanged_iterations (a skipped iteration reads "
            "nothing, so the all-cold baseline would not be measured)");
      }
      if (options_.batch_execution && options_.cold_cache_per_iteration) {
        return Status::InvalidArgument(
            "cold_cache_per_iteration is incompatible with "
            "batch_execution (the all-cold baseline measures the "
            "row-at-a-time pipeline)");
      }
      if (options_.memoize_iterations) {
        if (options_.memo == nullptr) {
          return Status::InvalidArgument(
              "memoize_iterations requires RqlOptions::memo to point at "
              "a retro::MemoTable");
        }
        if (options_.cold_cache_per_iteration) {
          return Status::InvalidArgument(
              "cold_cache_per_iteration is incompatible with "
              "memoize_iterations (a memo-replayed iteration reads "
              "nothing, so the all-cold baseline would not be measured)");
        }
      }
      if (options_.shared_scan_cache != nullptr &&
          options_.cold_cache_per_iteration) {
        return Status::InvalidArgument(
            "cold_cache_per_iteration is incompatible with "
            "shared_scan_cache (a store-scoped cache serves pages other "
            "runs decoded, so the all-cold baseline would not be "
            "measured)");
      }
      if (options_.async_prefetch && options_.cold_cache_per_iteration) {
        return Status::InvalidArgument(
            "cold_cache_per_iteration is incompatible with "
            "async_prefetch (a background fetch landing after the clear "
            "would warm the all-cold baseline)");
      }
      stats_ = RqlRunStats{};
      trace_on_ = options_.trace;
      int64_t now = NowMicros();
      trace_.Restart(trace_on_ ? options_.trace_capacity : 0, now);
      trace_.SetContext(options_.session_id, options_.run_id);
      if (trace_on_) {
        // The snapshot count is unknown up front: the driving Qs scan
        // feeds iterations one UDF call at a time.
        trace_.Emit(RqlTraceEventType::kRunBegin, retro::kNoSnapshot, now,
                    {0, 1, OptionFlagBits(options_)});
      }
      if (options_.cold_cache_per_run) {
        data_db_->store()->ClearSnapshotCache();
      }
      // UDF-driven runs iterate sequentially inside one Qs scan, so the
      // same amortization session applies; FinishUdfRuns closes it.
      if (options_.incremental_spt || options_.skip_unchanged_iterations ||
          options_.memoize_iterations) {
        data_db_->store()->BeginSnapshotSet();
      }
      if (options_.batch_pagelog_reads) {
        data_db_->store()->set_batch_archive_reads(true);
      }
      if (options_.shared_scan_cache != nullptr) {
        data_db_->set_scan_cache(options_.shared_scan_cache);
        data_db_->store()->set_share_spt_builds(true);
      } else if (options_.reuse_decoded_pages) {
        scan_cache_.Clear();
        scan_cache_.TakeHits();
        data_db_->set_scan_cache(&scan_cache_);
      }
      if (options_.batch_execution) {
        data_db_->set_batch_execution(
            true, metrics()->GetHistogram("rql.batch_size"));
      }
      data_db_->store()->set_archive_read_retries(
          options_.archive_read_retries);
      data_db_->store()->set_diff_depth_histogram(
          metrics()->GetHistogram("rql.pagelog.diff_depth"));
      // async_prefetch is accepted but inert here: the Qs scan feeds
      // iterations one UDF call at a time, so there is no lookahead to
      // schedule against.
      udf_run_started_ = true;
    }
    auto it = udf_states_.find(table);
    if (it == udf_states_.end()) {
      RQL_RETURN_IF_ERROR(PrepareResultTable(table));
      it = udf_states_.emplace(table, make_state()).first;
    }
    return it->second.get();
  };

  auto snap_of = [](const Value& v) -> Result<retro::SnapshotId> {
    if (!v.is_numeric()) {
      return Status::InvalidArgument("snap_id argument must be an integer");
    }
    return static_cast<retro::SnapshotId>(v.AsInt());
  };

  meta_db_->RegisterFunction(
      "CollateData", 3, 3,
      [this, begin_run, snap_of](const std::vector<Value>& args)
          -> Result<Value> {
        RQL_ASSIGN_OR_RETURN(retro::SnapshotId snap, snap_of(args[0]));
        const std::string& qq = args[1].text();
        const std::string& table = args[2].text();
        RQL_ASSIGN_OR_RETURN(
            MechanismState* state,
            begin_run(table, [&] {
              return std::unique_ptr<MechanismState>(
                  new CollateState(this, qq, table));
            }));
        RQL_RETURN_IF_ERROR(RunIteration(snap, state));
        return Value::Integer(stats_.iterations.back().qq_rows);
      });

  meta_db_->RegisterFunction(
      "AggregateDataInVariable", 4, 4,
      [this, begin_run, snap_of](const std::vector<Value>& args)
          -> Result<Value> {
        RQL_ASSIGN_OR_RETURN(retro::SnapshotId snap, snap_of(args[0]));
        const std::string& qq = args[1].text();
        const std::string& table = args[2].text();
        RQL_ASSIGN_OR_RETURN(RqlAggFunc func,
                             RqlAggFuncFromName(args[3].text()));
        RQL_ASSIGN_OR_RETURN(
            MechanismState* state,
            begin_run(table, [&] {
              return std::unique_ptr<MechanismState>(
                  new AggVariableState(this, qq, table, func));
            }));
        RQL_RETURN_IF_ERROR(RunIteration(snap, state));
        return static_cast<AggVariableState*>(state)->Current();
      });

  meta_db_->RegisterFunction(
      "AggregateDataInTable", 4, 4,
      [this, begin_run, snap_of](const std::vector<Value>& args)
          -> Result<Value> {
        RQL_ASSIGN_OR_RETURN(retro::SnapshotId snap, snap_of(args[0]));
        const std::string& qq = args[1].text();
        const std::string& table = args[2].text();
        RQL_ASSIGN_OR_RETURN(std::vector<ColFuncPair> pairs,
                             ParseColFuncPairs(args[3].text()));
        RQL_ASSIGN_OR_RETURN(
            MechanismState* state,
            begin_run(table, [&] {
              return std::unique_ptr<MechanismState>(
                  new AggTableState(this, qq, table, pairs));
            }));
        RQL_RETURN_IF_ERROR(RunIteration(snap, state));
        return Value::Integer(stats_.iterations.back().qq_rows);
      });

  meta_db_->RegisterFunction(
      "CollateDataIntoIntervals", 3, 3,
      [this, begin_run, snap_of](const std::vector<Value>& args)
          -> Result<Value> {
        RQL_ASSIGN_OR_RETURN(retro::SnapshotId snap, snap_of(args[0]));
        const std::string& qq = args[1].text();
        const std::string& table = args[2].text();
        RQL_ASSIGN_OR_RETURN(
            MechanismState* state,
            begin_run(table, [&] {
              return std::unique_ptr<MechanismState>(
                  new IntervalState(this, qq, table));
            }));
        RQL_RETURN_IF_ERROR(RunIteration(snap, state));
        return Value::Integer(stats_.iterations.back().qq_rows);
      });

  return Status::OK();
}

Status RqlEngine::FinishUdfRuns() {
  if (udf_run_started_) {
    if (options_.incremental_spt || options_.skip_unchanged_iterations ||
        options_.memoize_iterations) {
      data_db_->store()->EndSnapshotSet();
    }
    data_db_->store()->set_batch_archive_reads(false);
    data_db_->store()->set_archive_read_retries(0);
    data_db_->store()->set_diff_depth_histogram(nullptr);
    if (data_db_->scan_cache() != nullptr) {
      data_db_->set_scan_cache(nullptr);
      // Run-private cache only; a shared cache keeps serving other runs.
      if (options_.shared_scan_cache == nullptr) scan_cache_.Clear();
    }
    if (options_.batch_execution) data_db_->set_batch_execution(false);
    if (trace_on_) {
      trace_.Emit(RqlTraceEventType::kRunEnd, retro::kNoSnapshot,
                  NowMicros(),
                  {static_cast<int64_t>(stats_.iterations.size()),
                   stats_.iterations_skipped, stats_.TotalUs(), 1});
    }
    PublishRunMetrics();
  }
  for (auto& [table, state] : udf_states_) {
    RQL_RETURN_IF_ERROR(state->Finish());
  }
  udf_states_.clear();
  udf_run_started_ = false;
  return Status::OK();
}

}  // namespace rql

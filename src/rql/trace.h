#ifndef RQL_RQL_TRACE_H_
#define RQL_RQL_TRACE_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "retro/maplog.h"  // retro::SnapshotId

namespace rql {

/// Event kinds recorded by RqlTrace. Per-event args[] meaning (unused
/// slots are zero):
///
///   kRunBegin        {snapshot_count, workers, flags_bits, 0, 0, 0}
///                    flags_bits: 1=incremental_spt 2=reuse_qq_plan
///                    4=batch_pagelog_reads 8=reuse_decoded_pages
///                    16=skip_unchanged_iterations 32=batch_execution
///                    64=memoize_iterations 128=shared_scan_cache
///                    256=async_prefetch
///   kRunEnd          {iterations, iterations_skipped, total_us, ok, 0, 0}
///   kIterationBegin  {index_in_run, 0, 0, 0, 0, 0}
///   kIterationEnd    {io_us, spt_build_us, query_eval_us, index_create_us,
///                     udf_us, qq_rows}  — the Fig. 8 phase attribution;
///                    the five *_us slots mirror RqlIterationStats::TotalUs.
///   kSptBuild        {maplog_pages, spt_delta_entries, spt_cpu_us,
///                     incremental, 0, 0}
///   kArchiveFetch    {pagelog_pages, batched_pagelog_reads, cache_hits,
///                     db_pages, archive_read_retries, 0}
///   kScanCache       {shared_page_hits, misses, coalesced_decodes, 0, 0, 0}
///                    — coalesced_decodes is the subset of hits served by
///                    waiting on another run's in-flight decode
///                    (shared_scan_cache single-flight; 0 otherwise)
///   kIterationSkip   {index_in_run, delta_pages_scanned, replayed_rows,
///                     udf_us, 0, 0}  — replay of a provably unchanged
///                    iteration (skip_unchanged_iterations)
///   kWorkerStall     {lock_wait_us, coalesced_loads, workers, 0, 0, 0}
///                    — emitted once per parallel run after the join
///   kMemoHit         {index_in_run, validated_pages, replayed_rows,
///                     udf_us, 0, 0}  — replay of a persistent memo entry
///                    whose page-version read set validated against the
///                    snapshot (memoize_iterations)
///   kPrefetch        {issued, hits, cancelled, overlap_us, 0, 0}
///                    — one per iteration whose background prefetch job
///                    existed (async_prefetch): pages loaded ahead, the
///                    subset demand reads consumed, planned pages dropped
///                    before issue, and the job's wall-time overlap with
///                    the previous iteration
enum class RqlTraceEventType : uint8_t {
  kRunBegin = 0,
  kRunEnd,
  kIterationBegin,
  kIterationEnd,
  kSptBuild,
  kArchiveFetch,
  kScanCache,
  kIterationSkip,
  kWorkerStall,
  kMemoHit,
  kPrefetch,
};

/// One fixed-size trace record. `t_us` is relative to the enclosing run's
/// start; `worker` is 0 for the coordinating thread and 1-based for
/// parallel workers; `snapshot` is kNoSnapshot for run-scoped events.
struct RqlTraceEvent {
  int64_t t_us = 0;
  retro::SnapshotId snapshot = retro::kNoSnapshot;
  RqlTraceEventType type = RqlTraceEventType::kRunBegin;
  uint16_t worker = 0;
  int64_t args[6] = {0, 0, 0, 0, 0, 0};
};

/// A bounded, mutex-guarded ring of RqlTraceEvents, filled by the engine
/// when `RqlOptions::trace` is on. Events are per-iteration summaries (not
/// per-page), so a traced run emits O(snapshots) events; once `capacity`
/// is reached the oldest events are dropped and `dropped()` counts them —
/// memory stays bounded no matter how long the run is. Emission is rare
/// enough (a handful per iteration) that one mutex keeps TSan-clean
/// ordering under parallel workers without measurable cost.
class RqlTrace {
 public:
  RqlTrace() = default;

  /// Copyable so callers can capture one run's trace before the next
  /// Restart clears it (rql_report keeps all four mechanism traces).
  RqlTrace(const RqlTrace& other);
  RqlTrace& operator=(const RqlTrace& other);

  /// Begins a new traced run: clears prior events, sets the capacity,
  /// re-anchors t=0 at `now_us`, and resets the session/run context to 0.
  void Restart(size_t capacity, int64_t now_us);

  /// Stamps the ring with the daemon session and scheduled-run identifiers
  /// of the run being traced (RqlOptions::session_id / run_id); 0 = an
  /// embedded run. Set by the engine right after Restart, so every ring
  /// carries the context of exactly the run it describes.
  void SetContext(uint64_t session_id, uint64_t run_id);
  uint64_t session_id() const;
  uint64_t run_id() const;

  void Emit(RqlTraceEventType type, retro::SnapshotId snapshot, int64_t now_us,
            std::initializer_list<int64_t> args, uint16_t worker = 0);

  /// Retained events, oldest first.
  std::vector<RqlTraceEvent> Events() const;
  /// Total events emitted since the last Restart (retained + dropped).
  int64_t emitted() const;
  /// Events evicted from the ring since the last Restart.
  int64_t dropped() const;
  size_t capacity() const;

  static const char* TypeName(RqlTraceEventType type);

 private:
  mutable std::mutex mu_;
  std::vector<RqlTraceEvent> ring_;
  size_t capacity_ = 0;
  uint64_t emitted_ = 0;  // ring head = emitted_ % capacity_
  int64_t t0_us_ = 0;
  uint64_t session_id_ = 0;
  uint64_t run_id_ = 0;
};

}  // namespace rql

#endif  // RQL_RQL_TRACE_H_

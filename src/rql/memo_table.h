#ifndef RQL_RQL_MEMO_TABLE_H_
#define RQL_RQL_MEMO_TABLE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "retro/snapshot_store.h"  // SnapshotId, kUnversionedPageToken
#include "storage/env.h"
#include "storage/page.h"  // storage::PageId

namespace rql::retro {

/// Version token of one page in a memoized iteration's read set: the
/// Pagelog offset the snapshot's SPT resolved the page to, or
/// kMemoDbSharedVersion for pages the snapshot shares with the current
/// database (no archive record exists; the first later modification
/// captures one, flipping the token — so strict token equality at probe
/// time is exactly the "content unchanged" test).
constexpr uint64_t kMemoDbSharedVersion = kUnversionedPageToken;

struct MemoPageVersion {
  storage::PageId page = 0;
  uint64_t version = 0;
};

/// One memoized Qq iteration: everything needed to replay the iteration
/// through a mechanism without executing Qq. Rows are stored encoded
/// (sql::EncodeRow payloads) so the table depends only on storage — and so
/// the persistent form is the in-memory form.
struct MemoEntry {
  /// Canonicalized query/mechanism fingerprint (sql::QueryFingerprint of
  /// the original Qq text salted with the mechanism name).
  uint64_t fingerprint = 0;
  /// Snapshot the entry was recorded at (the first publisher's iteration).
  SnapshotId snapshot = kNoSnapshot;
  /// Sorted by page id; the pages Qq read and the versions they resolved
  /// to. A probe replays the entry only when every recorded token equals
  /// the probing snapshot's current resolution.
  std::vector<MemoPageVersion> read_set;
  std::vector<std::string> columns;
  std::vector<std::string> rows;  // sql::EncodeRow payloads, Qq order
};

struct MemoTableOptions {
  /// In-memory LRU bound, in (approximate serialized) entry bytes.
  uint64_t max_bytes = 64ull << 20;
  /// Open-time compaction: when the log file exceeds twice the live entry
  /// bytes plus this slack, Open rewrites it with only the live records
  /// (write-to-temp + rename; the online path stays append-only).
  uint64_t compact_slack_bytes = 1ull << 20;
};

struct MemoPublishResult {
  /// Log bytes this publish appended (full record, or the small alias
  /// record when an identical entry was already present under another
  /// snapshot).
  uint64_t bytes_appended = 0;
  /// Entries the LRU byte bound evicted to make room.
  int64_t evictions = 0;
  /// False when an entry with the same (fingerprint, read-set digest) key
  /// already existed — first publish wins; the new snapshot is registered
  /// as an alias of the existing entry.
  bool inserted = false;
};

/// A persistent, bounded, version-keyed memo of per-iteration RQL Qq
/// results (the cross-run extension of the engine's intra-run skip
/// machinery). Key = (query/mechanism fingerprint, digest of the sorted
/// page-version read set); probing is by (fingerprint, snapshot id), which
/// resolves through an index to the entry last published or aliased for
/// that snapshot.
///
/// Persistence is a WAL-style append-only log through storage::Env: each
/// record is [magic, type, payload length, FNV-1a checksum, payload], and
/// Open scans the log, truncating at the first torn or corrupt record
/// (crash mid-append loses at most that record; everything before it
/// replays). Publishes sync the log, so a published entry survives any
/// later crash.
///
/// Thread-safe: one mutex serializes probes and publishes, and publishes
/// are first-publish-wins, so any number of engines (cross-client reuse)
/// may share one table.
class MemoTable {
 public:
  /// Opens (or creates) the memo log `<name>.memo` inside `env`,
  /// recovering all intact records. The memo must live and die with the
  /// database files it memoizes: entries are validated against the store's
  /// current page-version resolutions, so pairing a memo with a *different*
  /// store (rather than a later state of the same one) is undefined.
  static Result<std::unique_ptr<MemoTable>> Open(
      storage::Env* env, const std::string& name,
      MemoTableOptions options = MemoTableOptions());

  /// Entry registered for (fingerprint, snapshot), or nullptr. A returned
  /// entry is *unvalidated*: the caller must check every read-set token
  /// against the snapshot's current resolution before replaying. Touches
  /// the entry's LRU recency.
  std::shared_ptr<const MemoEntry> Probe(uint64_t fingerprint,
                                         SnapshotId snapshot);

  /// Inserts `entry` (first publish of its key wins), registers it for
  /// entry->snapshot, appends the log record and syncs. Evicts
  /// least-recently-used entries beyond MemoTableOptions::max_bytes.
  Result<MemoPublishResult> Publish(std::shared_ptr<const MemoEntry> entry);

  /// Retention hook: drops (and persistently invalidates) every snapshot
  /// registration below `keep_from`, and any entry left without a
  /// registration. Called by RqlEngine::TruncateHistory; entries for
  /// surviving snapshots stay, and their read-set validation keeps them
  /// safe even though Pagelog compaction may have moved their offsets
  /// (a moved offset mismatches and conservatively misses).
  Status InvalidateBelow(SnapshotId keep_from);

  /// Order-independent digest of a read set: the set is sorted by page id
  /// before hashing, so recording order never changes the key.
  static uint64_t ReadSetDigest(std::vector<MemoPageVersion> read_set);

  /// Approximate in-memory/logged size of one entry (its record payload).
  static uint64_t EntryBytes(const MemoEntry& entry);

  // --- instrumentation ---------------------------------------------------
  uint64_t bytes() const;        // live entry bytes (LRU-bounded)
  size_t entry_count() const;    // live entries
  int64_t evictions() const;     // lifetime LRU evictions (incl. recovery)
  int64_t recovered_entries() const;  // intact entries replayed by Open
  uint64_t truncated_tail_bytes() const;  // bytes Open cut from a torn tail
  uint64_t log_bytes() const;    // current log file size
  const MemoTableOptions& options() const { return options_; }

 private:
  struct Key {
    uint64_t fingerprint = 0;
    uint64_t digest = 0;
    bool operator==(const Key& o) const {
      return fingerprint == o.fingerprint && digest == o.digest;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // splitmix-style mix; the inputs are already 64-bit hashes.
      uint64_t x = k.fingerprint ^ (k.digest * 0x9E3779B97F4A7C15ull);
      x ^= x >> 30;
      x *= 0xBF58476D1CE4E5B9ull;
      x ^= x >> 27;
      return static_cast<size_t>(x);
    }
  };
  struct Stored {
    std::shared_ptr<const MemoEntry> entry;
    uint64_t bytes = 0;
    /// Snapshots probing to this entry (the first publisher plus aliases);
    /// eviction erases exactly these probe-index rows.
    std::vector<SnapshotId> snapshots;
    std::list<Key>::iterator lru_it;
  };

  MemoTable(storage::Env* env, std::string name, MemoTableOptions options)
      : env_(env), name_(std::move(name)), options_(options) {}

  Status Recover();
  Status CompactLocked();
  Status AppendRecordLocked(uint32_t type, const std::string& payload,
                            uint64_t* appended);
  /// Applies one recovered/compacted record to the in-memory maps (no log
  /// writes). Unknown types and dangling aliases are ignored.
  void ApplyRecord(uint32_t type, const std::string& payload);
  /// Inserts or aliases without logging; shared by Publish and recovery.
  bool InsertLocked(std::shared_ptr<const MemoEntry> entry, int64_t* evicted);
  void TouchLocked(Stored* stored);
  void RegisterSnapshotLocked(const Key& key, SnapshotId snapshot);
  int64_t EnforceBoundLocked(const Key* keep);
  void EraseLocked(const Key& key);

  storage::Env* env_;
  std::string name_;
  MemoTableOptions options_;
  std::unique_ptr<storage::File> file_;

  mutable std::mutex mu_;
  std::unordered_map<Key, Stored, KeyHash> entries_;
  std::list<Key> lru_;  // front = most recently used
  std::map<std::pair<uint64_t, SnapshotId>, Key> probe_;
  uint64_t bytes_ = 0;
  uint64_t log_bytes_ = 0;
  int64_t evictions_ = 0;
  int64_t recovered_entries_ = 0;
  uint64_t truncated_tail_bytes_ = 0;
};

}  // namespace rql::retro

#endif  // RQL_RQL_MEMO_TABLE_H_

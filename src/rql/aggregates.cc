#include "rql/aggregates.h"

#include "sql/schema.h"

namespace rql {

using sql::Value;

Result<RqlAggFunc> RqlAggFuncFromName(std::string_view name) {
  std::string lower = sql::IdentLower(name);
  if (lower == "min") return RqlAggFunc::kMin;
  if (lower == "max") return RqlAggFunc::kMax;
  if (lower == "sum") return RqlAggFunc::kSum;
  if (lower == "count") return RqlAggFunc::kCount;
  if (lower == "avg") return RqlAggFunc::kAvg;
  if (lower == "count distinct" || lower == "sum distinct" ||
      lower == "avg distinct") {
    return Status::NotSupported(
        "aggregations over distinct elements are not abelian-monoid "
        "definable; use Collate Data and aggregate the result with SQL");
  }
  return Status::InvalidArgument("unknown RQL aggregate function: " +
                                 std::string(name));
}

std::string_view RqlAggFuncName(RqlAggFunc func) {
  switch (func) {
    case RqlAggFunc::kMin: return "min";
    case RqlAggFunc::kMax: return "max";
    case RqlAggFunc::kSum: return "sum";
    case RqlAggFunc::kCount: return "count";
    case RqlAggFunc::kAvg: return "avg";
  }
  return "?";
}

bool IsMonoid(RqlAggFunc func) { return func != RqlAggFunc::kAvg; }

Result<Value> RqlCombine(RqlAggFunc func, const Value& acc,
                         const Value& next) {
  // NULL is absorbed: the identity element of every supported monoid.
  if (acc.is_null()) {
    if (func == RqlAggFunc::kCount) {
      return Value::Integer(next.is_null() ? 0 : 1);
    }
    return next;
  }
  if (next.is_null()) return acc;
  switch (func) {
    case RqlAggFunc::kMin:
      return sql::CompareValues(next, acc) < 0 ? next : acc;
    case RqlAggFunc::kMax:
      return sql::CompareValues(next, acc) > 0 ? next : acc;
    case RqlAggFunc::kSum:
      if (!acc.is_numeric() || !next.is_numeric()) {
        return Status::InvalidArgument("sum over non-numeric values");
      }
      if (acc.type() == sql::ValueType::kInteger &&
          next.type() == sql::ValueType::kInteger) {
        return Value::Integer(acc.integer() + next.integer());
      }
      return Value::Real(acc.AsDouble() + next.AsDouble());
    case RqlAggFunc::kCount:
      // acc holds the running count; each non-null next adds one.
      return Value::Integer(acc.AsInt() + 1);
    case RqlAggFunc::kAvg:
      return Status::Internal("avg must use AvgState, not RqlCombine");
  }
  return Status::Internal("bad aggregate function");
}

Result<Value> RqlCombineBatch(RqlAggFunc func, Value acc, const Value* vals,
                              size_t n) {
  switch (func) {
    case RqlAggFunc::kMin:
    case RqlAggFunc::kMax: {
      bool is_min = func == RqlAggFunc::kMin;
      for (size_t i = 0; i < n; ++i) {
        const Value& next = vals[i];
        if (next.is_null()) continue;
        if (acc.is_null()) {
          acc = next;
          continue;
        }
        int c = sql::CompareValues(next, acc);
        if (is_min ? c < 0 : c > 0) acc = next;  // first-wins on ties
      }
      return acc;
    }
    case RqlAggFunc::kSum: {
      // Mirror the sequential fold exactly: stay integer while both the
      // accumulator and the next value are integers, and switch to real
      // accumulation from the first real onward (the promotion point
      // decides rounding, so it must match RqlCombine's).
      for (size_t i = 0; i < n; ++i) {
        const Value& next = vals[i];
        if (next.is_null()) continue;
        if (acc.is_null()) {
          acc = next;
          continue;
        }
        if (!acc.is_numeric() || !next.is_numeric()) {
          return Status::InvalidArgument("sum over non-numeric values");
        }
        if (acc.type() == sql::ValueType::kInteger &&
            next.type() == sql::ValueType::kInteger) {
          acc = Value::Integer(acc.integer() + next.integer());
        } else {
          acc = Value::Real(acc.AsDouble() + next.AsDouble());
        }
      }
      return acc;
    }
    case RqlAggFunc::kCount: {
      int64_t count = acc.is_null() ? 0 : acc.AsInt();
      bool seeded = !acc.is_null();
      for (size_t i = 0; i < n; ++i) {
        if (vals[i].is_null()) continue;
        ++count;
        seeded = true;
      }
      // All-NULL input over a NULL accumulator never counts anything and
      // stays NULL-free per RqlCombine: acc NULL + next NULL -> 0.
      if (!seeded && n > 0) return Value::Integer(0);
      if (!seeded) return acc;
      return Value::Integer(count);
    }
    case RqlAggFunc::kAvg:
      return Status::Internal("avg must use AvgState, not RqlCombineBatch");
  }
  return Status::Internal("bad aggregate function");
}

}  // namespace rql

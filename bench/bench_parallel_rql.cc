// The paper's Section 7 future work, implemented and measured: parallel
// Qq evaluation across snapshots. Each worker evaluates Qq on its own
// snapshot view; result processing replays sequentially, so semantics are
// identical to the serial run (verified by tests).
//
// The workload is the CPU-heavy Qq_cpu join without a native index — each
// iteration rebuilds the automatic transient index, which is
// embarrassingly parallel across snapshots.

#include <thread>

#include "bench_common.h"

namespace rql::bench {
namespace {

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();
  RqlEngine* engine = history->engine();
  std::string qs = history->QsInterval(1, 8);

  std::printf("Parallel RQL (paper §7 future work): "
              "AggregateDataInVariable(Qs_8, Qq_cpu, AVG), UW30\n");
  std::printf("%-10s %12s %12s %10s\n", "workers", "wall_ms", "speedup",
              "result");

  double base_ms = 0;
  unsigned hw = std::thread::hardware_concurrency();
  const int worker_counts[] = {1, 2, 4, 8};
  for (int workers : worker_counts) {
    engine->mutable_options()->parallel_workers = workers;
    Stopwatch sw;
    BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqCpu, "Result",
                                                "avg"));
    double wall_ms = sw.ElapsedSeconds() * 1000.0;
    auto value = history->meta()->QueryScalar("SELECT * FROM Result");
    if (!value.ok()) Fail(value.status(), "result");
    if (workers == 1) base_ms = wall_ms;
    std::printf("%-10d %12.1f %11.2fx %10s\n", workers, wall_ms,
                base_ms / wall_ms, value->ToString().substr(0, 10).c_str());
  }
  engine->mutable_options()->parallel_workers = 1;
  std::printf("\n(hardware threads: %u)\n", hw);
  std::printf(
      "\nExpected: identical results at every worker count. On multi-core "
      "hardware\nwall time shrinks with workers for this CPU-bound Qq; on a "
      "single-core host\nthe speedup stays ~1.0x by construction.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// The paper's Section 7 future work, implemented and measured: parallel
// Qq evaluation across snapshots. Each worker evaluates Qq on its own
// snapshot view; result processing replays sequentially, so semantics are
// identical to the serial run (self-checked below against the 1-worker
// result table).
//
// The workload is the I/O-heavy Qq_io with a simulated archive latency of
// ~100us per cold Pagelog fetch, charged inside the snapshot-cache loader.
// That makes the sweep I/O-bound rather than core-bound: the speedup comes
// from overlapping archive stalls across workers (and from single-flight
// coalescing of racing fetches of shared pre-state pages), so the scaling
// curve is meaningful even on a 2-core CI runner.
//
// Machine-readable output goes to BENCH_parallel.json (CI artifact).

#include <algorithm>
#include <thread>
#include <vector>

#include "bench_common.h"

namespace rql::bench {
namespace {

constexpr int64_t kArchiveLatencyUs = 100;
constexpr int kSetSize = 16;

struct RunResult {
  double wall_ms = 0;
  int64_t coalesced_loads = 0;
  double lock_wait_ms = 0;
  std::vector<std::string> rows;  // encoded result table, sorted
};

RunResult RunWorkers(tpch::History* history, const std::string& qs,
                     int workers) {
  RqlEngine* engine = history->engine();
  engine->mutable_options()->parallel_workers = workers;
  // Counters come from the metrics registry the engine publishes into at
  // run end (delta around the run == the run's RqlRunStats).
  retro::MetricsRegistry* metrics = engine->metrics();
  retro::MetricsRegistry::Snapshot before = metrics->TakeSnapshot();
  // cold_cache_per_run (the default) clears the snapshot cache at run
  // start, so every worker count pays the same cold archive I/O.
  BENCH_CHECK(engine->CollateData(qs, kQqIo, "Par"));
  retro::MetricsRegistry::Snapshot delta =
      metrics->TakeSnapshot().DeltaFrom(before);

  RunResult r;
  r.wall_ms = delta.counter("rql.total_us") / 1000.0;
  r.coalesced_loads = delta.counter("rql.coalesced_loads");
  r.lock_wait_ms = delta.counter("rql.parallel_lock_wait_us") / 1000.0;

  auto rows = history->meta()->Query("SELECT * FROM Par");
  if (!rows.ok()) Fail(rows.status(), "dump Par");
  for (const sql::Row& row : rows->rows) {
    r.rows.push_back(sql::EncodeRow(row));
  }
  std::sort(r.rows.begin(), r.rows.end());
  return r;
}

int Run() {
  auto history_or = GetHistory("uw30_small");
  if (!history_or.ok()) Fail(history_or.status(), "uw30_small history");
  tpch::History* history = history_or->get();
  retro::SnapshotStore* store = history->data()->store();
  std::string qs = history->QsInterval(1, kSetSize);

  store->set_simulated_archive_latency_us(kArchiveLatencyUs);

  std::printf("Parallel RQL (paper §7 future work): "
              "CollateData(Qs_%d, Qq_io), UW30-small, "
              "simulated archive latency %lldus\n",
              kSetSize, static_cast<long long>(kArchiveLatencyUs));
  std::printf("%-10s %12s %10s %12s %14s\n", "workers", "wall_ms", "speedup",
              "coalesced", "lock_wait_ms");

  JsonWriter json("BENCH_parallel.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  json.Field("set_size", kSetSize);
  json.Field("archive_latency_us", kArchiveLatencyUs);
  json.Field("hardware_threads", std::thread::hardware_concurrency());
  json.BeginArray("sweep");

  bool checks_ok = true;
  RunResult base;
  double speedup_at_4 = 0;
  int64_t coalesced_at_4 = 0;
  const int worker_counts[] = {1, 2, 4, 8};
  for (size_t i = 0; i < sizeof(worker_counts) / sizeof(int); ++i) {
    int workers = worker_counts[i];
    RunResult r = RunWorkers(history, qs, workers);
    if (workers == 1) base = r;
    double speedup = base.wall_ms / r.wall_ms;
    bool rows_match = r.rows == base.rows;
    if (workers == 4) {
      speedup_at_4 = speedup;
      coalesced_at_4 = r.coalesced_loads;
    }

    std::printf("%-10d %12.1f %9.2fx %12lld %14.1f\n", workers, r.wall_ms,
                speedup, static_cast<long long>(r.coalesced_loads),
                r.lock_wait_ms);
    json.BeginObject();
    json.Field("workers", workers);
    json.Field("wall_ms", r.wall_ms);
    json.Field("speedup", speedup);
    json.Field("coalesced_loads", r.coalesced_loads);
    json.Field("lock_wait_ms", r.lock_wait_ms);
    json.Field("rows_match", rows_match);
    json.EndObject();

    // Correctness: every parallel run's result table equals sequential's.
    if (!rows_match) {
      std::printf("CHECK FAILED: %d-worker result table differs from "
                  "sequential\n", workers);
      checks_ok = false;
    }
    // Sequential runs must never coalesce (there is nothing to race with).
    if (workers == 1 && r.coalesced_loads != 0) {
      std::printf("CHECK FAILED: sequential run reported %lld coalesced "
                  "loads (want 0)\n",
                  static_cast<long long>(r.coalesced_loads));
      checks_ok = false;
    }
  }
  history->engine()->mutable_options()->parallel_workers = 1;
  store->set_simulated_archive_latency_us(0);

  // Acceptance: the I/O-bound sweep must overlap archive stalls — >= 2x at
  // 4 workers — and racing workers must share in-flight fetches of shared
  // pre-state pages at least once.
  if (speedup_at_4 < 2.0) {
    std::printf("CHECK FAILED: speedup at 4 workers %.2fx (want >= 2x)\n",
                speedup_at_4);
    checks_ok = false;
  }
  if (coalesced_at_4 <= 0) {
    std::printf("CHECK FAILED: no coalesced loads at 4 workers (want > 0)\n");
    checks_ok = false;
  }

  json.EndArray();
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf(
      "\nExpected: identical result tables at every worker count; with the "
      "simulated\narchive latency the sweep is stall-bound, so wall time "
      "shrinks with workers\neven on few cores, and racing workers coalesce "
      "fetches of pre-state pages\nshared between their snapshots "
      "(coalesced > 0 beyond 1 worker).\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Reproduces Figure 7: ratio C for intervals of recent snapshots, as a
// function of the interval's starting snapshot, for UW30 and UW15 with
// AggregateDataInVariable(Qs, Qq_io, AVG), consecutive snapshots (step 1).
//
// Expected shape (paper): for interval starts older than
// Slast - OverwriteCycle, C(x) first falls as x becomes more recent (the
// measured RQL cost falls while the all-cold cost is constant), then rises
// again as the all-cold cost itself starts falling and converges towards
// the RQL cost for the most recent intervals.
//
// Machine-readable output goes to BENCH_sharing_recent.json (CI
// artifact). Self-check: on the most recent interval of each workload the
// page-sharing flags (reuse_decoded_pages + skip_unchanged_iterations)
// must reproduce the flags-off result table byte-for-byte — the recent
// end of the history is where snapshots share pages with the current
// database, so versioned and unversioned reads mix in one run.

#include <vector>

#include "bench_common.h"

namespace rql::bench {
namespace {

// The earliest interval to include a snapshot sharing pages with the
// current database starts at Slast - OverwriteCycle - kIntervalLen.
constexpr int kIntervalLen = 20;

double MeasureC(tpch::History* history, retro::SnapshotId start) {
  RqlEngine* engine = history->engine();
  std::string qs = history->QsInterval(start, kIntervalLen, 1);

  engine->mutable_options()->cold_cache_per_iteration = false;
  // Warm up once so both measured runs see the same environment.
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double rql_ms = RunTotalMs(engine->last_run_stats());

  engine->mutable_options()->cold_cache_per_iteration = true;
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double all_cold_ms = RunTotalMs(engine->last_run_stats());
  engine->mutable_options()->cold_cache_per_iteration = false;

  return all_cold_ms > 0 ? rql_ms / all_cold_ms : 0.0;
}

std::vector<std::string> DumpTable(tpch::History* history,
                                   const char* table) {
  auto rows = history->meta()->Query(std::string("SELECT * FROM ") + table);
  if (!rows.ok()) Fail(rows.status(), "dump result table");
  std::vector<std::string> out;
  for (const sql::Row& row : rows->rows) out.push_back(sql::EncodeRow(row));
  return out;
}

bool Series(const char* name, tpch::History* history, int overwrite_cycle,
            JsonWriter* json) {
  bool ok = true;
  retro::SnapshotId slast = history->last_snapshot();
  std::printf("\n%s (overwrite cycle %d snapshots, Slast=%u):\n", name,
              overwrite_cycle, slast);
  std::printf("%-26s %10s\n", "interval start", "ratio C");
  json->BeginObject();
  json->Field("workload", name);
  json->Field("overwrite_cycle", overwrite_cycle);
  json->BeginArray("series");
  int earliest_offset = overwrite_cycle + kIntervalLen + 20;
  for (int offset = earliest_offset; offset >= kIntervalLen; offset -= 10) {
    auto start = static_cast<retro::SnapshotId>(
        static_cast<int>(slast) - offset);
    double c = MeasureC(history, start);
    std::printf("Slast-%-20d %10.3f\n", offset, c);
    json->BeginObject();
    json->Field("offset", offset);
    json->Field("c", c);
    json->EndObject();
    // Timing ratios are noisy at smoke scale; the hard check is only that
    // every measured pair of runs completed and produced a ratio.
    if (c <= 0) {
      std::printf("CHECK FAILED: non-positive ratio C at Slast-%d\n", offset);
      ok = false;
    }
  }
  json->EndArray();

  // Flag-identity on the most recent interval: snapshots here read a mix
  // of archived page versions (cacheable) and current-database pages
  // (deliberately unversioned), and TPC-H touches orders every snapshot,
  // so nothing may skip.
  RqlEngine* engine = history->engine();
  std::string qs = history->QsInterval(
      static_cast<retro::SnapshotId>(static_cast<int>(slast) - kIntervalLen),
      kIntervalLen, 1);
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Base", "avg"));
  std::vector<std::string> base = DumpTable(history, "Base");
  engine->mutable_options()->reuse_decoded_pages = true;
  engine->mutable_options()->skip_unchanged_iterations = true;
  // Counters come from the metrics registry the engine publishes into at
  // run end (delta around the run == the run's RqlRunStats).
  retro::MetricsRegistry* metrics = engine->metrics();
  retro::MetricsRegistry::Snapshot before = metrics->TakeSnapshot();
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Flagged", "avg"));
  retro::MetricsRegistry::Snapshot delta =
      metrics->TakeSnapshot().DeltaFrom(before);
  engine->mutable_options()->reuse_decoded_pages = false;
  engine->mutable_options()->skip_unchanged_iterations = false;
  const int64_t iterations_skipped = delta.counter("rql.iterations_skipped");
  const int64_t shared_page_hits = delta.counter("rql.shared_page_hits");
  bool rows_match = DumpTable(history, "Flagged") == base;
  std::printf("flags-on identity on recent interval: %s "
              "(skipped=%lld, hits=%lld)\n", rows_match ? "ok" : "DIFFERS",
              static_cast<long long>(iterations_skipped),
              static_cast<long long>(shared_page_hits));
  json->Field("flags_rows_match", rows_match);
  json->Field("flags_iterations_skipped", iterations_skipped);
  json->Field("flags_shared_page_hits", shared_page_hits);
  json->EndObject();
  if (!rows_match) {
    std::printf("CHECK FAILED: %s flags-on result table differs from "
                "flags-off\n", name);
    ok = false;
  }
  if (iterations_skipped != 0) {
    std::printf("CHECK FAILED: %s skipped %lld iterations on a history "
                "that changes orders every snapshot\n", name,
                static_cast<long long>(iterations_skipped));
    ok = false;
  }
  return ok;
}

int Run() {
  auto uw30 = GetHistory("uw30");
  auto uw15 = GetHistory("uw15");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  if (!uw15.ok()) Fail(uw15.status(), "uw15 history");

  std::printf("Figure 7: ratio C with recent snapshots "
              "(AggregateDataInVariable(Qs_%d, Qq_io, AVG))\n", kIntervalLen);
  JsonWriter json("BENCH_sharing_recent.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  json.Field("interval_len", kIntervalLen);
  json.BeginArray("workloads");
  bool checks_ok = true;
  if (!Series("UW30", uw30->get(), 50, &json)) checks_ok = false;
  if (!Series("UW15", uw15->get(), 100, &json)) checks_ok = false;
  json.EndArray();
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf(
      "\nExpected: C falls while the interval start is old (RQL cost "
      "drops,\nall-cold constant), then rises as the interval becomes "
      "recent and the\nall-cold cost converges to the RQL cost.\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

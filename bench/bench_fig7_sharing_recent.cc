// Reproduces Figure 7: ratio C for intervals of recent snapshots, as a
// function of the interval's starting snapshot, for UW30 and UW15 with
// AggregateDataInVariable(Qs, Qq_io, AVG), consecutive snapshots (step 1).
//
// Expected shape (paper): for interval starts older than
// Slast - OverwriteCycle, C(x) first falls as x becomes more recent (the
// measured RQL cost falls while the all-cold cost is constant), then rises
// again as the all-cold cost itself starts falling and converges towards
// the RQL cost for the most recent intervals.

#include "bench_common.h"

namespace rql::bench {
namespace {

// The earliest interval to include a snapshot sharing pages with the
// current database starts at Slast - OverwriteCycle - kIntervalLen.
constexpr int kIntervalLen = 20;

double MeasureC(tpch::History* history, retro::SnapshotId start) {
  RqlEngine* engine = history->engine();
  std::string qs = history->QsInterval(start, kIntervalLen, 1);

  engine->mutable_options()->cold_cache_per_iteration = false;
  // Warm up once so both measured runs see the same environment.
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double rql_ms = RunTotalMs(engine->last_run_stats());

  engine->mutable_options()->cold_cache_per_iteration = true;
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double all_cold_ms = RunTotalMs(engine->last_run_stats());
  engine->mutable_options()->cold_cache_per_iteration = false;

  return all_cold_ms > 0 ? rql_ms / all_cold_ms : 0.0;
}

void Series(const char* name, tpch::History* history, int overwrite_cycle) {
  retro::SnapshotId slast = history->last_snapshot();
  std::printf("\n%s (overwrite cycle %d snapshots, Slast=%u):\n", name,
              overwrite_cycle, slast);
  std::printf("%-26s %10s\n", "interval start", "ratio C");
  int earliest_offset = overwrite_cycle + kIntervalLen + 20;
  for (int offset = earliest_offset; offset >= kIntervalLen; offset -= 10) {
    auto start = static_cast<retro::SnapshotId>(
        static_cast<int>(slast) - offset);
    double c = MeasureC(history, start);
    std::printf("Slast-%-20d %10.3f\n", offset, c);
  }
}

int Run() {
  auto uw30 = GetHistory("uw30");
  auto uw15 = GetHistory("uw15");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  if (!uw15.ok()) Fail(uw15.status(), "uw15 history");

  std::printf("Figure 7: ratio C with recent snapshots "
              "(AggregateDataInVariable(Qs_%d, Qq_io, AVG))\n", kIntervalLen);
  Series("UW30", uw30->get(), 50);
  Series("UW15", uw15->get(), 100);
  std::printf(
      "\nExpected: C falls while the interval start is old (RQL cost "
      "drops,\nall-cold constant), then rises as the interval becomes "
      "recent and the\nall-cold cost converges to the RQL cost.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

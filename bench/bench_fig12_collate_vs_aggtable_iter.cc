// Reproduces Figure 12: single-iteration cost of CollateData(Qs_50,
// Qq_agg) vs. AggregateDataInTable(Qs_50, Qq_agg, (cn,MAX)) under UW30.
//
// Expected shape (paper): the cold iteration of Aggregate Data in Table is
// more expensive because it builds an index on its result table; its hot
// iterations are more expensive than Collate Data's because each record
// triggers an index probe (plus occasional updates) rather than a plain
// insert.

#include "bench_common.h"

namespace rql::bench {
namespace {

void PrintOps(const char* label, const Breakdown& b) {
  std::printf("    %-30s probes=%-8.0f inserts=%-8.0f updates=%-8.0f\n",
              label, b.probes, b.inserts, b.updates);
}

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();
  RqlEngine* engine = history->engine();

  std::printf("Figure 12: single-iteration cost, CollateData vs "
              "AggregateDataInTable (Qq_agg, UW30)\n");
  PrintBreakdownHeader("iteration");

  BENCH_CHECK(engine->CollateData(history->QsInterval(1, 50), kQqAgg1,
                                  "CollateResult"));
  const RqlRunStats& collate = engine->last_run_stats();
  Breakdown collate_cold = FromIteration(collate.iterations[0]);
  Breakdown collate_hot = MeanIterations(collate, 1);
  PrintBreakdownRow("CollateData cold iteration", collate_cold);
  PrintBreakdownRow("CollateData hot iteration", collate_hot);

  BENCH_CHECK(engine->AggregateDataInTable(history->QsInterval(1, 50),
                                           kQqAgg1, "AggResult", "(cn,max)"));
  const RqlRunStats& agg = engine->last_run_stats();
  Breakdown agg_cold = FromIteration(agg.iterations[0]);
  Breakdown agg_hot = MeanIterations(agg, 1);
  PrintBreakdownRow("AggregateTable cold iteration", agg_cold);
  PrintBreakdownRow("AggregateTable hot iteration", agg_hot);

  std::printf("\nResult-table operations per iteration:\n");
  PrintOps("CollateData cold", collate_cold);
  PrintOps("CollateData hot", collate_hot);
  PrintOps("AggregateTable cold", agg_cold);
  PrintOps("AggregateTable hot", agg_hot);

  std::printf(
      "\nExpected: AggregateTable cold > CollateData cold (result-table "
      "index build);\nAggregateTable hot > CollateData hot (every record "
      "probes the index, few\nresult in updates); CollateData performs one "
      "insert per record instead.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

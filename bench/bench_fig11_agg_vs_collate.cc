// Reproduces Figure 11 (plus the memory-footprint numbers quoted in the
// text of Section 5.3): producing the same per-customer aggregate over 50
// snapshots either with CollateData followed by a final SQL aggregation,
// or directly with AggregateDataInTable — for one and for two aggregate
// columns.
//
// Expected shape (paper): total execution times are close (Aggregate Data
// in Table ~6% slower), the extra aggregation adds little, but the
// Collate Data result table is an order of magnitude larger than the
// Aggregate Data in Table result.

#include "bench_common.h"

namespace rql::bench {
namespace {

struct CaseResult {
  double total_ms = 0;
  double extra_ms = 0;
  uint64_t result_bytes = 0;
  uint64_t result_rows = 0;
  uint64_t index_bytes = 0;
};

CaseResult RunCollate(tpch::History* history, bool two_aggs) {
  RqlEngine* engine = history->engine();
  BENCH_CHECK(engine->CollateData(history->QsInterval(1, 50),
                                  two_aggs ? kQqAgg : kQqAgg1,
                                  "CollateResult"));
  CaseResult out;
  out.total_ms = RunTotalMs(engine->last_run_stats());
  // The final SQL aggregation over the collated table.
  Stopwatch sw;
  std::string final_sql =
      two_aggs ? "SELECT o_custkey, MAX(cn) AS mcn, MAX(av) AS mav "
                 "FROM CollateResult GROUP BY o_custkey"
               : "SELECT o_custkey, MAX(cn) AS mcn "
                 "FROM CollateResult GROUP BY o_custkey";
  auto rows = history->meta()->Query(final_sql);
  if (!rows.ok()) Fail(rows.status(), "final aggregation");
  out.extra_ms = sw.ElapsedSeconds() * 1000.0;
  auto stats = history->meta()->GetTableStats("CollateResult");
  if (!stats.ok()) Fail(stats.status(), "collate stats");
  out.result_bytes = stats->bytes;
  out.result_rows = stats->rows;
  return out;
}

CaseResult RunAggTable(tpch::History* history, bool two_aggs) {
  RqlEngine* engine = history->engine();
  BENCH_CHECK(engine->AggregateDataInTable(
      history->QsInterval(1, 50), two_aggs ? kQqAgg : kQqAgg1, "AggResult",
      two_aggs ? "(cn,max):(av,max)" : "(cn,max)"));
  CaseResult out;
  out.total_ms = RunTotalMs(engine->last_run_stats());
  auto stats = history->meta()->GetTableStats("AggResult");
  if (!stats.ok()) Fail(stats.status(), "agg stats");
  out.result_bytes = stats->bytes;
  out.result_rows = stats->rows;
  auto index = history->meta()->GetIndexStats("AggResult_rql_idx");
  if (index.ok()) out.index_bytes = index->bytes;
  return out;
}

void Print(const char* label, const CaseResult& r) {
  std::printf("%-28s %12.1f %10.1f %12.1f %12llu %12.1f\n", label,
              r.total_ms, r.extra_ms, r.total_ms + r.extra_ms,
              static_cast<unsigned long long>(r.result_rows),
              (r.result_bytes + r.index_bytes) / 1024.0);
}

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();

  std::printf("Figure 11: CollateData+SQL vs AggregateDataInTable "
              "(Qq_agg, Qs_50, UW30)\n");
  std::printf("%-28s %12s %10s %12s %12s %12s\n", "case", "rql_ms",
              "extra_ms", "total_ms", "result_rows", "mem_kib");
  Print("CollateData 1 AggFunc", RunCollate(history, false));
  Print("AggregateDataInTable 1 Agg", RunAggTable(history, false));
  Print("CollateData 2 AggFunc", RunCollate(history, true));
  Print("AggregateDataInTable 2 Agg", RunAggTable(history, true));

  std::printf(
      "\nExpected: comparable total times (AggregateDataInTable slightly "
      "slower);\nthe second aggregation adds no significant overhead; the "
      "CollateData result\ntable is ~an order of magnitude larger and grows "
      "with the snapshot count,\nwhile the AggregateDataInTable footprint "
      "is independent of Qs.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Characterizes the update workloads of the paper's Table 1 and verifies
// the properties Section 4's analysis rests on:
//   * each workload deletes+inserts a constant number of orders per
//     snapshot, so diff(S1, S2) — the pages captured per epoch — is
//     roughly constant;
//   * UW30 overwrites the database in ~50 snapshots, UW15 in ~100 (the
//     cumulative distinct captured pages approach the database size after
//     one overwrite cycle);
//   * the database itself stays at constant size under the rotation.

#include <unordered_set>

#include "bench_common.h"

namespace rql::bench {
namespace {

void Characterize(const char* name, const char* key, int cycle) {
  auto history = GetHistory(key);
  if (!history.ok()) Fail(history.status(), key);
  tpch::History* h = history->get();
  retro::SnapshotStore* store = h->data()->store();

  uint32_t db_pages = store->page_store()->allocated_pages();
  retro::SnapshotId slast = store->latest_snapshot();

  // SPT(S) size = pages of S not shared with the current database. For an
  // old S (>= one cycle before Slast) it approaches the database size; the
  // age at which it saturates is the overwrite cycle.
  std::printf("\n%s: db pages=%u, snapshots=%u, nominal cycle=%d\n", name,
              db_pages, slast, cycle);
  std::printf("%-18s %12s %16s\n", "snapshot age", "SPT pages",
              "fraction of db");
  const int ages[] = {1, 2, 5, 10, 25, 50, 100, 200};
  double prev_fraction = -1;
  bool monotone = true;
  for (int age : ages) {
    if (age >= static_cast<int>(slast)) break;
    auto view = store->OpenSnapshot(slast - static_cast<uint32_t>(age));
    if (!view.ok()) Fail(view.status(), "OpenSnapshot");
    double fraction = static_cast<double>((*view)->spt_size()) / db_pages;
    std::printf("Slast-%-12d %12llu %15.1f%%\n", age,
                static_cast<unsigned long long>((*view)->spt_size()),
                fraction * 100);
    if (fraction + 0.01 < prev_fraction) monotone = false;  // 1% slack: page churn
    prev_fraction = fraction;
  }
  std::printf("  (monotone growth: %s; saturation ~ the overwrite cycle)\n",
              monotone ? "yes" : "NO");
}

int Run() {
  std::printf("Table 1: update workload characterization\n");
  Characterize("UW30 (30K orders/snapshot at SF 1)", "uw30", 50);
  Characterize("UW15 (15K orders/snapshot at SF 1)", "uw15", 100);
  Characterize("UW7.5", "uw7_5", 200);
  Characterize("UW60", "uw60", 25);
  std::printf(
      "\nExpected: the SPT (non-shared pages) grows with snapshot age and "
      "saturates\nnear the database size after about one overwrite cycle — "
      "~50 snapshots for\nUW30, ~100 for UW15 — confirming the diff/cycle "
      "structure the paper's\nSection 4 analysis assumes.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Daemon-mode variant of bench_concurrent_runs: the same four-client
// overlapping-interval CollateData workload, but each client is a real
// socket client of an in-process rql server — sessions, wire protocol,
// run scheduler and all — instead of four hand-built in-process engines.
//
// The server wires every session's engine to one store-scoped
// sql::SharedScanCache and enables coalesced SPT builds, so the sharing
// bench_concurrent_runs demonstrates in-process must survive the daemon
// path end to end. The store simulates a bandwidth-limited cold archive
// (per-fetch latency, one fetch slot, small page cache) so concurrent
// runs actually contend for pages.
//
// Self-checks (CI gates):
//   * every client's result table, fetched over the wire from its
//     session's metadata database, is byte-identical to a sequential
//     flag-off in-process oracle;
//   * the shared cache saw cross-session hits AND coalesced decodes > 0 —
//     concurrent daemon runs blocked on each other's in-flight decodes
//     instead of duplicating them;
//   * per-run kRunDone attribution sums to the cache's own counters;
//   * the scheduler completed exactly the submitted runs, rejected none;
//   * the wire-protocol stats document is pullable during operation and
//     carries all four sections.
//
// Results go to BENCH_server.json (CI artifact, collated by
// tools/bench_summary.py).

#include "bench_common.h"

#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "sql/shared_scan_cache.h"
#include "storage/env.h"

namespace rql::bench {
namespace {

namespace server = rql::server;

constexpr int kClients = 4;
constexpr int kSnapshotsPerClient = 40;
constexpr int kStagger = 4;
constexpr int64_t kArchiveLatencyUs = 2000;
constexpr uint64_t kSnapshotCachePages = 32;
constexpr char kResultTable[] = "ConcOut";

std::string ClientQs(tpch::History* history, int i) {
  std::string qs = history->QsInterval(1 + i * kStagger, kSnapshotsPerClient);
  // Odd clients sweep descending — independent daemon clients are not in
  // lockstep, and lockstep ascending sweeps would let the store's page
  // cache hide the duplication the shared cache removes.
  if (i % 2 == 1) qs += " DESC";
  return qs;
}

/// Sequential flag-off in-process oracle: the byte-identity reference.
std::vector<std::vector<std::string>> RunOracle(tpch::History* history) {
  std::vector<std::vector<std::string>> oracle(kClients);
  for (int i = 0; i < kClients; ++i) {
    storage::InMemoryEnv meta_env;
    auto meta = sql::Database::Open(&meta_env, "meta");
    if (!meta.ok()) Fail(meta.status(), "open oracle meta db");
    auto data = sql::Database::Attach(history->data()->store());
    if (!data.ok()) Fail(data.status(), "attach oracle data db");
    RqlEngine engine(data->get(), meta->get());
    BENCH_CHECK(engine.EnsureSnapIds());
    for (retro::SnapshotId s = 1; s <= history->last_snapshot(); ++s) {
      auto row = (*meta)->AppendRow(
          "SnapIds", {sql::Value::Integer(s), sql::Value::Text("snap"),
                      sql::Value::Text("")});
      if (!row.ok()) Fail(row.status(), "populate oracle SnapIds");
    }
    BENCH_CHECK(engine.CollateData(ClientQs(history, i), kQqIo,
                                   kResultTable));
    auto rows = (*meta)->Query(std::string("SELECT * FROM ") + kResultTable);
    if (!rows.ok()) Fail(rows.status(), "dump oracle result table");
    for (const sql::Row& row : rows->rows) {
      oracle[i].push_back(sql::EncodeRow(row));
    }
  }
  return oracle;
}

struct DaemonClient {
  std::unique_ptr<server::Client> client;
  double wall_ms = 0;
  server::Client::RunResult run;
  std::vector<std::string> rows;
};

int Run() {
  auto uw15 = GetHistory("uw15_small");
  if (!uw15.ok()) Fail(uw15.status(), "uw15_small history");
  tpch::History* history = uw15->get();
  retro::SnapshotStore* store = history->data()->store();

  std::printf("rql server daemon mode: %d socket clients, concurrent "
              "CollateData(Qq_io) over %d overlapping snapshots each, "
              "UW15\n\n",
              kClients, kSnapshotsPerClient);

  std::vector<std::vector<std::string>> oracle = RunOracle(history);

  server::ServerOptions options;
  options.socket_path =
      "/tmp/rql_bench_server_" + std::to_string(::getpid()) + ".sock";
  options.scheduler.dispatch_threads = kClients;
  options.engine.cold_cache_per_run = false;
  options.engine.batch_execution = true;
  auto srv = server::Server::Create(history->data(), history->meta(),
                                    std::move(options));
  if (!srv.ok()) Fail(srv.status(), "create server");
  BENCH_CHECK((*srv)->Start());

  store->set_simulated_archive_latency_us(kArchiveLatencyUs);
  store->set_simulated_archive_fetch_slots(1);
  store->snapshot_cache()->set_capacity(kSnapshotCachePages);
  store->ClearSnapshotCache();

  std::vector<DaemonClient> clients(kClients);
  Stopwatch total_sw;
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      DaemonClient& c = clients[i];
      auto conn = server::Client::Connect((*srv)->socket_path());
      if (!conn.ok()) Fail(conn.status(), "connect client");
      c.client = std::move(*conn);
      Stopwatch sw;
      auto run_id = c.client->StartRun(server::Mechanism::kCollateData,
                                       ClientQs(history, i), kQqIo,
                                       kResultTable);
      if (!run_id.ok()) Fail(run_id.status(), "submit run");
      auto done = c.client->WaitRun(*run_id);
      if (!done.ok()) Fail(done.status(), "wait run");
      if (!done->status.ok()) Fail(done->status, "scheduled run");
      c.wall_ms = sw.ElapsedSeconds() * 1000.0;
      c.run = *done;
      auto rows = c.client->MetaSql(std::string("SELECT * FROM ") +
                                    kResultTable);
      if (!rows.ok()) Fail(rows.status(), "dump client result table");
      for (const sql::Row& row : rows->rows) {
        c.rows.push_back(sql::EncodeRow(row));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  const double wall_ms = total_sw.ElapsedSeconds() * 1000.0;

  // Stats stay pullable over the wire while sessions are open.
  auto wire_stats = clients[0].client->StatsJson();
  if (!wire_stats.ok()) Fail(wire_stats.status(), "pull wire stats");

  store->set_simulated_archive_latency_us(0);
  store->set_simulated_archive_fetch_slots(0);
  const sql::SharedScanCache::Stats cs = (*srv)->scan_cache()->GetStats();
  server::RunScheduler* scheduler = (*srv)->scheduler();

  std::printf("%-8s %10s %10s %10s %10s %10s\n", "client", "wall_ms",
              "iters", "hits", "coalesced", "rows");
  int64_t sum_hits = 0, sum_coalesced = 0;
  for (int i = 0; i < kClients; ++i) {
    const DaemonClient& c = clients[i];
    std::printf("%-8d %10.2f %10u %10lld %10lld %10zu\n", i, c.wall_ms,
                c.run.iterations, static_cast<long long>(c.run.shared_page_hits),
                static_cast<long long>(c.run.coalesced_decodes),
                c.rows.size());
    sum_hits += c.run.shared_page_hits;
    sum_coalesced += c.run.coalesced_decodes;
  }
  std::printf("\ntotal %.2fms; cache: %llu entries, %lld shared hits, "
              "%lld coalesced; scheduler: %lld completed, %lld rejected\n",
              wall_ms, static_cast<unsigned long long>(cs.entries),
              static_cast<long long>(cs.shared_hits),
              static_cast<long long>(cs.coalesced_decodes),
              static_cast<long long>(scheduler->completed()),
              static_cast<long long>(scheduler->admission_rejects()));

  bool checks_ok = true;
  for (int i = 0; i < kClients; ++i) {
    if (clients[i].rows != oracle[i]) {
      std::printf("CHECK FAILED: daemon client %d result table differs "
                  "from the sequential in-process oracle\n", i);
      checks_ok = false;
    }
  }
  if (cs.shared_hits <= 0) {
    std::printf("CHECK FAILED: no cross-session shared-cache hits\n");
    checks_ok = false;
  }
  if (cs.coalesced_decodes <= 0) {
    std::printf("CHECK FAILED: no coalesced decodes — concurrent daemon "
                "runs never waited on each other's in-flight decode\n");
    checks_ok = false;
  }
  if (sum_hits != cs.shared_hits || sum_coalesced != cs.coalesced_decodes) {
    std::printf("CHECK FAILED: kRunDone attribution drifted from the "
                "cache's counters (runs %lld/%lld vs cache %lld/%lld)\n",
                static_cast<long long>(sum_hits),
                static_cast<long long>(sum_coalesced),
                static_cast<long long>(cs.shared_hits),
                static_cast<long long>(cs.coalesced_decodes));
    checks_ok = false;
  }
  if (scheduler->completed() != kClients ||
      scheduler->admission_rejects() != 0) {
    std::printf("CHECK FAILED: scheduler completed %lld / rejected %lld, "
                "expected %d / 0\n",
                static_cast<long long>(scheduler->completed()),
                static_cast<long long>(scheduler->admission_rejects()),
                kClients);
    checks_ok = false;
  }
  for (const char* section :
       {"\"server\"", "\"scheduler\"", "\"scan_cache\"", "\"store\""}) {
    if (wire_stats->find(section) == std::string::npos) {
      std::printf("CHECK FAILED: wire stats document missing %s section\n",
                  section);
      checks_ok = false;
    }
  }

  JsonWriter json("BENCH_server.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  json.Field("clients", kClients);
  json.Field("snapshots_per_client", kSnapshotsPerClient);
  json.Field("archive_latency_us", kArchiveLatencyUs);
  json.Field("wall_ms", wall_ms);
  json.BeginArray("clients_detail");
  for (const DaemonClient& c : clients) {
    json.BeginObject();
    json.Field("wall_ms", c.wall_ms);
    json.Field("iterations", static_cast<int64_t>(c.run.iterations));
    json.Field("shared_page_hits", c.run.shared_page_hits);
    json.Field("coalesced_decodes", c.run.coalesced_decodes);
    json.Field("result_rows", static_cast<int64_t>(c.rows.size()));
    json.EndObject();
  }
  json.EndArray();
  json.BeginObject("shared_cache");
  json.Field("entries", static_cast<int64_t>(cs.entries));
  json.Field("shared_hits", cs.shared_hits);
  json.Field("misses", cs.misses);
  json.Field("coalesced_decodes", cs.coalesced_decodes);
  json.Field("inserts", cs.inserts);
  json.Field("evictions", cs.evictions);
  json.EndObject();
  json.BeginObject("scheduler");
  json.Field("completed", scheduler->completed());
  json.Field("cancelled", scheduler->cancelled());
  json.Field("admission_rejects", scheduler->admission_rejects());
  json.EndObject();
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  for (DaemonClient& c : clients) c.client.reset();
  (*srv)->Stop();

  std::printf("\nExpected: every daemon client byte-identical to the "
              "sequential oracle, with\ncross-session shared-cache hits "
              "and coalesced decodes through the scheduler.\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

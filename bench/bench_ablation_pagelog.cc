// Ablation: full-page archive vs Thresher-style adaptive page diffs
// (Shrira & Xu, USENIX ATC'06 — cited by the paper as the space /
// reconstruction-cost trade-off for COW snapshot systems).
//
// Builds the same UW30 TPC-H history twice, once per Pagelog mode, and
// reports archive size and the cost of a cold RQL run over old snapshots.
// Expected: the diff archive is several times smaller, while cold reads
// fetch more records (diff chains), raising the I/O bar.

#include "bench_common.h"

namespace rql::bench {
namespace {

struct ModeResult {
  double pagelog_mib = 0;
  double records = 0;
  double diff_share = 0;
  double cold_io_ms = 0;
  double cold_fetches = 0;
  double run_ms = 0;
};

ModeResult RunMode(retro::PagelogMode mode, bool sparse_updates) {
  storage::InMemoryEnv env;  // private throwaway history per mode
  tpch::HistoryConfig config;
  config.tpch.scale_factor = Sf() / 2;  // half scale: two builds per run
  config.workload = tpch::WorkloadSpec::UW30();
  config.snapshots = 120;

  // BuildHistory has no options hook for the store; emulate it here.
  sql::DatabaseOptions db_options;
  db_options.store.pagelog_mode = mode;
  auto data = sql::Database::Open(&env, "h_data", db_options);
  auto meta = sql::Database::Open(&env, "h_meta");
  if (!data.ok()) Fail(data.status(), "open data");
  if (!meta.ok()) Fail(meta.status(), "open meta");
  RqlEngine engine(data->get(), meta->get());
  BENCH_CHECK(engine.EnsureSnapIds());
  tpch::TpchGenerator gen(data->get(), config.tpch);
  BENCH_CHECK(gen.CreateSchema());
  BENCH_CHECK(gen.Populate());
  int per_snapshot =
      config.workload.OrdersPerSnapshot(gen.initial_order_count());
  for (int s = 1; s <= config.snapshots; ++s) {
    BENCH_CHECK((*data)->Exec("BEGIN"));
    if (sparse_updates) {
      // A few bytes change per page: the Thresher best case.
      BENCH_CHECK((*data)->Exec(
          "UPDATE orders SET o_totalprice = o_totalprice + 1 "
          "WHERE o_orderkey % 97 = " + std::to_string(s % 97)));
    } else {
      // The paper's refresh workload: rows deleted and reinserted, so
      // pre-states change wholesale.
      BENCH_CHECK(gen.RefreshDelete(per_snapshot));
      BENCH_CHECK(gen.RefreshInsert(per_snapshot));
    }
    BENCH_CHECK(engine.CommitWithSnapshot("s" + std::to_string(s)).status());
  }
  BENCH_CHECK((*data)->store()->maplog()->PrewarmSkippy());

  retro::Pagelog* pagelog = (*data)->store()->pagelog();
  ModeResult r;
  r.pagelog_mib = pagelog->SizeBytes() / (1024.0 * 1024.0);
  r.records = static_cast<double>(pagelog->record_count());
  r.diff_share = pagelog->record_count() > 0
                     ? static_cast<double>(pagelog->diff_record_count()) /
                           static_cast<double>(pagelog->record_count())
                     : 0.0;

  // A cold RQL run over 25 old mid-history snapshots: their pre-states sit
  // behind diff chains in kDiff mode (the first captures of the history
  // are full records, so the earliest snapshots would hide the effect).
  BENCH_CHECK(engine.AggregateDataInVariable(
      "SELECT snap_id FROM SnapIds WHERE snap_id > 40 AND snap_id <= 65 "
      "ORDER BY snap_id",
      kQqIo, "Result", "avg"));
  const RqlRunStats& stats = engine.last_run_stats();
  r.cold_io_ms = stats.iterations[0].io_us / 1000.0;
  r.cold_fetches = static_cast<double>(stats.iterations[0].pagelog_pages);
  r.run_ms = RunTotalMs(stats);
  return r;
}

void PrintRow(const char* label, const ModeResult& r) {
  std::printf("%-12s %12.1f %10.0f %9.0f%% %12.2f %12.0f %10.1f\n", label,
              r.pagelog_mib, r.records, r.diff_share * 100, r.cold_io_ms,
              r.cold_fetches, r.run_ms);
}

void Section(const char* title, bool sparse) {
  std::printf("\n%s\n", title);
  std::printf("%-12s %12s %10s %10s %12s %12s %10s\n", "mode",
              "archive_MiB", "records", "diff%", "cold_io_ms",
              "cold_fetch", "run_ms");
  ModeResult full = RunMode(retro::PagelogMode::kFull, sparse);
  PrintRow("full-page", full);
  ModeResult diff = RunMode(retro::PagelogMode::kDiff, sparse);
  PrintRow("page-diff", diff);
  std::printf("archive shrink: %.1fx; cold-read amplification: %.2fx\n",
              full.pagelog_mib / std::max(0.001, diff.pagelog_mib),
              diff.cold_fetches / std::max(1.0, full.cold_fetches));
}

int Run() {
  std::printf("Ablation: Pagelog representation — full pages vs adaptive "
              "page diffs (120 snapshots)\n");
  Section("TPC-H refresh workload (rows deleted+reinserted; pages change "
          "wholesale):", /*sparse=*/false);
  Section("Sparse-update workload (a few bytes per page change per "
          "snapshot):", /*sparse=*/true);
  std::printf(
      "\nExpected: diffs shrink the archive modestly under the rewrite-"
      "heavy refresh\nworkload and dramatically under sparse updates, at "
      "the cost of extra record\nfetches during reconstruction (diff "
      "chains) — the Thresher [24] trade-off the\npaper cites.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

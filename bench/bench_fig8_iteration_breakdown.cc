// Reproduces Figure 8: single-iteration cost breakdown (I/O, SPT build,
// query evaluation, RQL UDF) for AggregateDataInVariable(Qs_50, Qq_io,
// AVG) with update workload UW30, at different points of the snapshot
// history: old snapshots, Slast-50, Slast-25, Slast, and the current
// state.
//
// Expected shape (paper): for old snapshots the cold iteration is
// dominated by Pagelog I/O and hot iterations are far cheaper; iterations
// on recent snapshots fetch most pages from the memory-resident current
// database, so both cold and hot costs fall sharply as the snapshot
// approaches Slast; the current state has no snapshot overhead at all.

#include "bench_common.h"

namespace rql::bench {
namespace {

void RunPoint(tpch::History* history, const std::string& label,
              retro::SnapshotId start, int count) {
  RqlEngine* engine = history->engine();
  BENCH_CHECK(engine->AggregateDataInVariable(
      history->QsInterval(start, count), kQqIo, "Result", "avg"));
  const RqlRunStats& stats = engine->last_run_stats();
  PrintBreakdownRow(label + " cold iteration",
                    FromIteration(stats.iterations[0]));
  PrintBreakdownRow(label + " hot iteration", MeanIterations(stats, 1));
}

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();
  retro::SnapshotId slast = history->last_snapshot();

  std::printf("Figure 8: single-iteration cost breakdown, "
              "AggregateDataInVariable(Qs_50, Qq_io, AVG), UW30\n");
  PrintBreakdownHeader("iteration");

  RunPoint(history, "old snapshot", 1, 50);
  RunPoint(history, "Slast-50", slast - 50, 25);
  RunPoint(history, "Slast-25", slast - 25, 25);

  // Slast alone: cold iteration on the newest snapshot (fully shared with
  // the current database).
  BENCH_CHECK(history->engine()->AggregateDataInVariable(
      history->QsInterval(slast, 1), kQqIo, "Result", "avg"));
  PrintBreakdownRow(
      "Slast hot iteration",
      FromIteration(history->engine()->last_run_stats().iterations[0]));

  // Current state: plain Qq, no snapshot machinery.
  {
    sql::Database* db = history->data();
    Stopwatch sw;
    BENCH_CHECK(db->Exec(kQqIo));
    Breakdown b;
    b.query_ms = sw.ElapsedSeconds() * 1000.0;
    b.total_ms = b.query_ms;
    PrintBreakdownRow("current state", b);
  }

  std::printf(
      "\nExpected: old cold >> old hot (sharing); Slast-25 cheaper than "
      "Slast-50;\nSlast and current state have (almost) no Pagelog I/O.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

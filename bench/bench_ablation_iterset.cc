// Ablation: iteration-setup amortization across a snapshot set.
//
// The paper's RQL loop pays three per-iteration setup costs that are
// invariant (or nearly so) across the snapshots of one Qs set: the SPT
// build scans the same Maplog suffix again and again, Qq is re-lexed,
// re-parsed and re-planned per snapshot, and archived pages are demand-
// fetched in random Pagelog order. This bench toggles the three
// amortizations (RqlOptions::incremental_spt / reuse_qq_plan /
// batch_pagelog_reads) independently over ordered snapshot sets of
// 10 / 50 / 100 old snapshots (CollateData, UW30) and reports, per
// config: cumulative Maplog pages scanned, cumulative simulated SPT time,
// Qq parse/plan invocations, batched archive reads, and total run time.
// Result tables are compared byte-for-byte against the baseline run.
//
// Machine-readable output goes to BENCH_iterset.json (CI artifact).

#include "bench_common.h"

#include <vector>

namespace rql::bench {
namespace {

struct Config {
  const char* name;
  bool incremental, reuse, batch;
};

constexpr Config kConfigs[] = {
    {"baseline", false, false, false},
    {"incremental_spt", true, false, false},
    {"reuse_qq_plan", false, true, false},
    {"batch_pagelog_reads", false, false, true},
    {"all_on", true, true, true},
};

struct RunResult {
  int64_t maplog_pages = 0;       // cumulative, over all iterations
  int64_t spt_delta_entries = 0;
  int64_t batched_reads = 0;
  int64_t plan_cache_hits = 0;
  int64_t qq_parses = 0;
  double spt_ms = 0;
  double io_ms = 0;
  double total_ms = 0;
  std::vector<std::string> rows;  // encoded result table, in table order
};

RunResult RunConfig(tpch::History* history, const Config& config,
                    const std::string& qs, const std::string& qq) {
  RqlEngine* engine = history->engine();
  RqlOptions* opts = engine->mutable_options();
  opts->incremental_spt = config.incremental;
  opts->reuse_qq_plan = config.reuse;
  opts->batch_pagelog_reads = config.batch;
  // Comparable Pagelog I/O across configs: every run starts cold.
  history->data()->store()->ClearSnapshotCache();

  // Counters come from the metrics registry the engine publishes into at
  // run end (delta around the run == the run's RqlRunStats).
  retro::MetricsRegistry* metrics = engine->metrics();
  retro::MetricsRegistry::Snapshot before = metrics->TakeSnapshot();
  BENCH_CHECK(engine->CollateData(qs, qq, "IterSet"));
  retro::MetricsRegistry::Snapshot delta =
      metrics->TakeSnapshot().DeltaFrom(before);

  RunResult r;
  r.qq_parses = delta.counter("rql.qq_parse_count");
  r.total_ms = delta.counter("rql.total_us") / 1000.0;
  r.maplog_pages = delta.counter("rql.maplog_pages");
  r.spt_delta_entries = delta.counter("rql.spt_delta_entries");
  r.batched_reads = delta.counter("rql.batched_pagelog_reads");
  r.plan_cache_hits = delta.counter("rql.plan_cache_hits");
  r.spt_ms = delta.counter("rql.spt_build_us") / 1000.0;
  r.io_ms = delta.counter("rql.io_us") / 1000.0;

  auto rows = history->meta()->Query("SELECT * FROM IterSet");
  if (!rows.ok()) Fail(rows.status(), "dump IterSet");
  for (const sql::Row& row : rows->rows) {
    r.rows.push_back(sql::EncodeRow(row));
  }

  opts->incremental_spt = false;
  opts->reuse_qq_plan = false;
  opts->batch_pagelog_reads = false;
  return r;
}

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();

  // Old snapshots in ascending id order: the intended Qs shape for the
  // incremental SPT path, and the one with the longest Maplog suffixes.
  const int counts[] = {10, 50, 100};
  const std::string qq = QqCollate("1993-01-01");

  std::printf("Ablation: iteration-setup amortization, "
              "CollateData(Qs_n ascending, Qq_collate), UW30\n");

  JsonWriter json("BENCH_iterset.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  json.BeginArray("sets");

  bool checks_ok = true;
  for (int count : counts) {
    std::string qs = history->QsInterval(1, count);
    std::printf("\n-- %d-snapshot set --\n", count);
    std::printf("%-22s %12s %10s %10s %10s %10s %10s %10s\n", "config",
                "maplog_pg", "spt_ms", "io_ms", "total_ms", "parses",
                "plan_hits", "batched");

    RunResult baseline;
    json.BeginObject();
    json.Field("count", count);
    json.BeginArray("configs");
    for (size_t c = 0; c < sizeof(kConfigs) / sizeof(kConfigs[0]); ++c) {
      const Config& config = kConfigs[c];
      RunResult r = RunConfig(history, config, qs, qq);
      std::printf("%-22s %12lld %10.2f %10.2f %10.2f %10lld %10lld %10lld\n",
                  config.name, static_cast<long long>(r.maplog_pages),
                  r.spt_ms, r.io_ms, r.total_ms,
                  static_cast<long long>(r.qq_parses),
                  static_cast<long long>(r.plan_cache_hits),
                  static_cast<long long>(r.batched_reads));
      json.BeginObject();
      json.Field("name", config.name);
      json.Field("maplog_pages", r.maplog_pages);
      json.Field("spt_ms", r.spt_ms);
      json.Field("io_ms", r.io_ms);
      json.Field("total_ms", r.total_ms);
      json.Field("qq_parses", r.qq_parses);
      json.Field("plan_cache_hits", r.plan_cache_hits);
      json.Field("batched_pagelog_reads", r.batched_reads);
      json.Field("spt_delta_entries", r.spt_delta_entries);
      json.EndObject();

      if (c == 0) {
        baseline = r;
        continue;
      }
      // Correctness: every optimized run is byte-identical to baseline.
      if (r.rows != baseline.rows) {
        std::printf("CHECK FAILED: %s result table differs from baseline "
                    "at %d snapshots\n", config.name, count);
        checks_ok = false;
      }
      if (config.reuse && r.qq_parses != 1) {
        std::printf("CHECK FAILED: %s parsed Qq %lld times (want 1)\n",
                    config.name, static_cast<long long>(r.qq_parses));
        checks_ok = false;
      }
      // Acceptance ratios at the largest set: >= 2x fewer Maplog pages
      // with the incremental SPT, >= 10x fewer parses with plan reuse.
      if (count == 100 && config.incremental &&
          r.maplog_pages * 2 > baseline.maplog_pages) {
        std::printf("CHECK FAILED: %s maplog pages %lld vs baseline %lld "
                    "(< 2x reduction)\n", config.name,
                    static_cast<long long>(r.maplog_pages),
                    static_cast<long long>(baseline.maplog_pages));
        checks_ok = false;
      }
      if (count == 100 && config.reuse &&
          r.qq_parses * 10 > baseline.qq_parses) {
        std::printf("CHECK FAILED: %s parses %lld vs baseline %lld "
                    "(< 10x reduction)\n", config.name,
                    static_cast<long long>(r.qq_parses),
                    static_cast<long long>(baseline.qq_parses));
        checks_ok = false;
      }
    }
    json.EndArray();
    json.EndObject();
  }
  json.EndArray();
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf("\nExpected: identical result tables in every config; at 100 "
              "snapshots the\nincremental SPT cuts cumulative Maplog pages "
              ">= 2x (one suffix scan plus\ninter-mark deltas instead of a "
              "scan per snapshot), plan reuse cuts Qq\nparse/plan "
              "invocations %dx -> 1, and batched reads shift Pagelog I/O "
              "to the\ncheaper sequential rate.\n", 100);
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

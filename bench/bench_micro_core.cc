// Google-benchmark microbenchmarks for the core data structures: row
// codec, heap table, B+-tree, buffer pool, Maplog SPT construction. These
// are the unit costs the figure-level benchmarks compose.

#include <benchmark/benchmark.h>

#include "retro/snapshot_store.h"
#include "sql/btree.h"
#include "sql/heap_table.h"
#include "sql/value.h"
#include "storage/buffer_pool.h"

namespace rql {
namespace {

using sql::Row;
using sql::Value;

Row SampleRow() {
  return {Value::Integer(123456), Value::Integer(42),
          Value::Text("STANDARD POLISHED TIN"), Value::Real(1234.56),
          Value::Text("1995-03-15")};
}

void BM_EncodeRow(benchmark::State& state) {
  Row row = SampleRow();
  std::string out;
  for (auto _ : state) {
    out.clear();
    sql::EncodeRow(row, &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_EncodeRow);

void BM_DecodeRow(benchmark::State& state) {
  std::string encoded = sql::EncodeRow(SampleRow());
  for (auto _ : state) {
    auto row = sql::DecodeRow(encoded);
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_DecodeRow);

void BM_HeapInsert(benchmark::State& state) {
  storage::InMemoryEnv env;
  auto store = retro::SnapshotStore::Open(&env, "bench");
  auto root = sql::HeapTable::Create(store->get());
  sql::HeapTable table(store->get(), *root);
  std::string record = sql::EncodeRow(SampleRow());
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Insert(record));
  }
}
BENCHMARK(BM_HeapInsert);

void BM_HeapScan(benchmark::State& state) {
  storage::InMemoryEnv env;
  auto store = retro::SnapshotStore::Open(&env, "bench");
  auto root = sql::HeapTable::Create(store->get());
  sql::HeapTable table(store->get(), *root);
  std::string record = sql::EncodeRow(SampleRow());
  for (int i = 0; i < state.range(0); ++i) {
    (void)table.Insert(record);
  }
  for (auto _ : state) {
    int64_t rows = 0;
    for (auto it = sql::HeapTable::Scan(store->get(), *root); it.Valid();
         it.Next()) {
      ++rows;
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_HeapScan)->Arg(1000)->Arg(10000);

void BM_BtreeInsert(benchmark::State& state) {
  storage::InMemoryEnv env;
  auto store = retro::SnapshotStore::Open(&env, "bench");
  auto root = sql::BTree::Create(store->get());
  sql::BTree tree(store->get(), *root);
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Insert({Value::Integer(key++)}, 1));
  }
}
BENCHMARK(BM_BtreeInsert);

void BM_BtreeLookup(benchmark::State& state) {
  storage::InMemoryEnv env;
  auto store = retro::SnapshotStore::Open(&env, "bench");
  auto root = sql::BTree::Create(store->get());
  sql::BTree tree(store->get(), *root);
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) {
    (void)tree.Insert({Value::Integer(i)}, static_cast<uint64_t>(i));
  }
  int64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.Lookup({Value::Integer(key)}));
    key = (key + 7919) % n;
  }
}
BENCHMARK(BM_BtreeLookup)->Arg(10000);

void BM_BufferPoolHit(benchmark::State& state) {
  storage::BufferPool pool(1024);
  auto loader = [](uint64_t, storage::Page* page) {
    page->Zero();
    return Status::OK();
  };
  for (uint64_t k = 0; k < 512; ++k) (void)pool.Get(k, loader);
  uint64_t key = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.Get(key, loader));
    key = (key + 13) % 512;
  }
}
BENCHMARK(BM_BufferPoolHit);

void BM_SptBuild(benchmark::State& state) {
  // A history of `snapshots` epochs, each capturing `pages_per_epoch`
  // pages; SPT construction for the oldest snapshot scans all of it.
  storage::InMemoryEnv env;
  auto log = retro::Maplog::Open(&env, "maplog");
  const int snapshots = static_cast<int>(state.range(0));
  const int pages_per_epoch = 64;
  uint64_t offset = 0;
  for (int s = 1; s <= snapshots; ++s) {
    (void)(*log)->AppendSnapshotMark(static_cast<retro::SnapshotId>(s));
    for (int p = 0; p < pages_per_epoch; ++p) {
      (void)(*log)->AppendCapture(static_cast<storage::PageId>(p),
                                  static_cast<retro::SnapshotId>(s),
                                  static_cast<retro::SnapshotId>(s),
                                  offset += storage::kPageSize);
    }
  }
  for (auto _ : state) {
    retro::SnapshotPageTable spt;
    uint64_t resume = 0;
    retro::SptBuildStats stats;
    (void)(*log)->BuildSpt(1, &spt, &resume, &stats);
    benchmark::DoNotOptimize(spt);
  }
  state.SetItemsProcessed(state.iterations() * snapshots * pages_per_epoch);
}
BENCHMARK(BM_SptBuild)->Arg(16)->Arg(128);

}  // namespace
}  // namespace rql

BENCHMARK_MAIN();

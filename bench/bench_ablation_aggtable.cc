// Reproduces the paper's in-text Section 3 claim: "We have also
// experimented with alternative Aggregate Data in Table implementation
// using a sort-merge based algorithm that turned out to be costlier."
//
// Runs the Figure 12 aggregation with both strategies and compares
// per-iteration cost. The index-probe implementation pays one index build
// in the cold iteration and per-record probes afterwards; the sort-merge
// implementation re-sorts the batch and rewrites the whole result table
// every iteration.

#include "bench_common.h"

namespace rql::bench {
namespace {

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();
  RqlEngine* engine = history->engine();
  std::string qs = history->QsInterval(1, 25);

  std::printf("Ablation: AggregateDataInTable strategy — index probe vs "
              "sort-merge (Qq_agg, UW30)\n");
  PrintBreakdownHeader("iteration");

  // Warm up both paths once (process caches, allocator) so the measured
  // runs compare like for like.
  engine->mutable_options()->agg_table_strategy =
      AggTableStrategy::kIndexProbe;
  BENCH_CHECK(engine->AggregateDataInTable(qs, kQqAgg1, "Warm", "(cn,max)"));
  engine->mutable_options()->agg_table_strategy =
      AggTableStrategy::kSortMerge;
  BENCH_CHECK(engine->AggregateDataInTable(qs, kQqAgg1, "Warm", "(cn,max)"));

  engine->mutable_options()->agg_table_strategy =
      AggTableStrategy::kIndexProbe;
  BENCH_CHECK(engine->AggregateDataInTable(qs, kQqAgg1, "ProbeResult",
                                           "(cn,max)"));
  const RqlRunStats& probe = engine->last_run_stats();
  PrintBreakdownRow("index-probe cold", FromIteration(probe.iterations[0]));
  Breakdown probe_hot = MeanIterations(probe, 1);
  PrintBreakdownRow("index-probe hot", probe_hot);
  double probe_total = RunTotalMs(probe);

  engine->mutable_options()->agg_table_strategy =
      AggTableStrategy::kSortMerge;
  BENCH_CHECK(engine->AggregateDataInTable(qs, kQqAgg1, "MergeResult",
                                           "(cn,max)"));
  const RqlRunStats& merge = engine->last_run_stats();
  engine->mutable_options()->agg_table_strategy =
      AggTableStrategy::kIndexProbe;
  PrintBreakdownRow("sort-merge cold", FromIteration(merge.iterations[0]));
  Breakdown merge_hot = MeanIterations(merge, 1);
  PrintBreakdownRow("sort-merge hot", merge_hot);
  double merge_total = RunTotalMs(merge);

  std::printf("\nresult-processing (udf) per hot iteration: probe %.2f ms "
              "vs merge %.2f ms\n(merge/probe = %.2fx)\n",
              probe_hot.udf_ms, merge_hot.udf_ms,
              merge_hot.udf_ms / std::max(0.01, probe_hot.udf_ms));
  std::printf("run totals (dominated by the identical simulated io/spt "
              "constants):\n  index-probe %.1f ms, sort-merge %.1f ms\n",
              probe_total, merge_total);
  std::printf(
      "\nExpected: identical results (tested); the strategies differ only "
      "in the\nresult-processing component, where sort-merge is costlier "
      "(it re-sorts the\nbatch and rewrites the result table every "
      "iteration) — the direction of the\npaper's finding; the margin "
      "grows with the result-table size.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

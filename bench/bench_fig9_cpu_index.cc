// Reproduces Figure 9: CPU-intensive Qq (the lineitem-part join, Qq_cpu)
// with AggregateDataInVariable(Qs_50, Qq_cpu, AVG) under UW30, with and
// without a native index on lineitem(l_partkey) — and extends it with the
// batch-execution ablation on the CPU-bound part of the figure: a
// scan-filter-aggregate over lineitem run row-at-a-time vs. vectorized
// (RqlOptions::batch_execution).
//
// Expected shape (paper): without a native index the engine builds a
// transient ("automatic covering") index on lineitem for every iteration,
// and that index creation dominates the iteration cost, dwarfing the
// cold/hot I/O difference. With a native index captured in the snapshots
// the index-creation bar disappears, while I/O and SPT-build grow a little
// because the index enlarges the database and the Pagelog.
//
// Machine-readable output goes to BENCH_cpu.json (CI artifact). The bench
// self-checks the ablation: the batch path must produce the byte-identical
// result table, must actually engage (batches_scanned > 0 with the flag
// on, 0 with it off), must keep its hands off the join plan (Qq_cpu falls
// back to the row path), and must cut Qq evaluation time of the CPU-bound
// scan-aggregate at least 1.5x.

#include "bench_common.h"

namespace rql::bench {
namespace {

void RunCase(const char* label, tpch::History* history, int count,
             JsonWriter* json) {
  RqlEngine* engine = history->engine();
  BENCH_CHECK(engine->AggregateDataInVariable(
      history->QsInterval(1, count), kQqCpu, "Result", "avg"));
  const RqlRunStats& stats = engine->last_run_stats();
  Breakdown cold = FromIteration(stats.iterations[0]);
  Breakdown hot = MeanIterations(stats, 1);
  PrintBreakdownRow(std::string(label) + " cold iteration", cold);
  PrintBreakdownRow(std::string(label) + " hot iteration", hot);
  json->BeginObject();
  json->Field("case", label);
  json->Field("cold_total_ms", cold.total_ms);
  json->Field("cold_index_ms", cold.index_ms);
  json->Field("hot_total_ms", hot.total_ms);
  json->Field("hot_index_ms", hot.index_ms);
  json->Field("hot_io_ms", hot.io_ms);
  json->Field("hot_spt_ms", hot.spt_ms);
  json->EndObject();
}

/// The CPU-bound single-table workload of the ablation: a predicate scan
/// plus aggregate folds over lineitem, the access shape the batch path
/// serves (the paper's Qq_cpu join keeps its row-at-a-time plan).
inline constexpr char kQqScanAgg[] =
    "SELECT COUNT(*) AS cnt, SUM(l_extendedprice) AS rev, "
    "MAX(l_quantity) AS mq FROM lineitem WHERE l_quantity < 25";

struct AblationResult {
  double query_ms = 0;   // sum of per-iteration Qq evaluation time
  double total_ms = 0;
  int64_t batches = 0;
  int64_t batch_rows = 0;
  std::vector<std::string> rows;  // encoded result table, in table order
};

AblationResult RunScanAgg(tpch::History* history, int count, bool batch) {
  RqlEngine* engine = history->engine();
  RqlOptions* opts = engine->mutable_options();
  // Decoded pages are cached in both configs, so the comparison isolates
  // the execution spine (per-row interpretation vs. vectorized folds)
  // rather than fetch/decode costs.
  opts->reuse_decoded_pages = true;
  opts->batch_execution = batch;
  std::string qs = history->QsInterval(1, count);
  // Warm-up evens out OS caches and the allocator; the measured run still
  // starts with a cold snapshot cache (cold_cache_per_run default).
  BENCH_CHECK(engine->CollateData(qs, kQqScanAgg, "ScanAgg"));
  BENCH_CHECK(engine->CollateData(qs, kQqScanAgg, "ScanAgg"));

  AblationResult r;
  const RqlRunStats& stats = engine->last_run_stats();
  for (const RqlIterationStats& it : stats.iterations) {
    r.query_ms += it.query_eval_us / 1000.0;
    r.batches += it.batches_scanned;
    r.batch_rows += it.batch_rows;
  }
  r.total_ms = RunTotalMs(stats);
  auto rows = history->meta()->Query("SELECT * FROM ScanAgg");
  if (!rows.ok()) Fail(rows.status(), "dump ScanAgg");
  for (const sql::Row& row : rows->rows) {
    r.rows.push_back(sql::EncodeRow(row));
  }
  *opts = RqlOptions{};
  return r;
}

int Run() {
  // The no-index case reuses the standard UW30 history.
  auto plain = GetHistory("uw30");
  auto indexed = GetHistory("uw30_lpk");
  if (!plain.ok()) Fail(plain.status(), "uw30 history");
  if (!indexed.ok()) Fail(indexed.status(), "uw30_lpk history");

  JsonWriter json("BENCH_cpu.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  bool checks_ok = true;

  std::printf("Figure 9: CPU-intensive Qq_cpu (join), "
              "AggregateDataInVariable(Qs_50, Qq_cpu, AVG), UW30\n");
  PrintBreakdownHeader("iteration");
  json.BeginArray("figure9");
  RunCase("w/o index", plain->get(), 25, &json);
  RunCase("w/ native index", indexed->get(), 25, &json);
  json.EndArray();

  // --- batch-execution ablation on the CPU-bound scan-aggregate ----------
  std::printf("\nBatch-execution ablation: CollateData(Qs_25, "
              "scan-filter-aggregate over lineitem)\n");
  std::printf("%-10s %12s %12s %10s %12s\n", "config", "query_ms",
              "total_ms", "batches", "batch_rows");
  AblationResult row_path = RunScanAgg(plain->get(), 25, false);
  AblationResult batch_path = RunScanAgg(plain->get(), 25, true);
  for (const auto& [name, r] :
       {std::pair<const char*, const AblationResult&>{"row", row_path},
        {"batch", batch_path}}) {
    std::printf("%-10s %12.2f %12.2f %10lld %12lld\n", name, r.query_ms,
                r.total_ms, static_cast<long long>(r.batches),
                static_cast<long long>(r.batch_rows));
  }
  double speedup =
      batch_path.query_ms > 0 ? row_path.query_ms / batch_path.query_ms : 0;
  std::printf("batch speedup on Qq evaluation: %.2fx\n", speedup);

  json.BeginObject("batch_ablation");
  json.Field("qq", "scan_filter_aggregate_lineitem");
  json.Field("row_query_ms", row_path.query_ms);
  json.Field("batch_query_ms", batch_path.query_ms);
  json.Field("row_total_ms", row_path.total_ms);
  json.Field("batch_total_ms", batch_path.total_ms);
  json.Field("batches_scanned", batch_path.batches);
  json.Field("batch_rows", batch_path.batch_rows);
  json.Field("speedup", speedup);
  bool rows_match = batch_path.rows == row_path.rows;
  json.Field("rows_match", rows_match);
  json.EndObject();

  // Correctness: the batch path is a pure optimization.
  if (!rows_match) {
    std::printf("CHECK FAILED: batch result table differs from row path\n");
    checks_ok = false;
  }
  if (batch_path.batches <= 0 || batch_path.batch_rows <= 0) {
    std::printf("CHECK FAILED: batch run scanned no batches\n");
    checks_ok = false;
  }
  if (row_path.batches != 0) {
    std::printf("CHECK FAILED: row run scanned %lld batches with the flag "
                "off\n", static_cast<long long>(row_path.batches));
    checks_ok = false;
  }
  // Acceptance: vectorization must pay on the CPU-bound scan-aggregate.
  if (speedup < 1.5) {
    std::printf("CHECK FAILED: batch speedup %.2fx (want >= 1.5x)\n",
                speedup);
    checks_ok = false;
  }
  // The join keeps its row-at-a-time plan even with the flag on.
  {
    RqlEngine* engine = plain->get()->engine();
    engine->mutable_options()->batch_execution = true;
    BENCH_CHECK(engine->AggregateDataInVariable(
        plain->get()->QsInterval(1, 5), kQqCpu, "Result", "avg"));
    int64_t join_batches = 0;
    for (const RqlIterationStats& it :
         engine->last_run_stats().iterations) {
      join_batches += it.batches_scanned;
    }
    *engine->mutable_options() = RqlOptions{};
    json.Field("join_batches_scanned", join_batches);
    if (join_batches != 0) {
      std::printf("CHECK FAILED: join Qq took the batch path (%lld "
                  "batches)\n", static_cast<long long>(join_batches));
      checks_ok = false;
    }
  }
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf(
      "\nExpected: without the native index, index_ms dominates both cold "
      "and hot\niterations (cold vs hot differ little). With the native "
      "index, index_ms ~ 0\nwhile io/spt grow (larger database and "
      "Pagelog). The batch ablation keeps the\nresult table byte-identical "
      "while cutting Qq evaluation >= 1.5x.\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Reproduces Figure 9: CPU-intensive Qq (the lineitem-part join, Qq_cpu)
// with AggregateDataInVariable(Qs_50, Qq_cpu, AVG) under UW30, with and
// without a native index on lineitem(l_partkey).
//
// Expected shape (paper): without a native index the engine builds a
// transient ("automatic covering") index on lineitem for every iteration,
// and that index creation dominates the iteration cost, dwarfing the
// cold/hot I/O difference. With a native index captured in the snapshots
// the index-creation bar disappears, while I/O and SPT-build grow a little
// because the index enlarges the database and the Pagelog.

#include "bench_common.h"

namespace rql::bench {
namespace {

void RunCase(const char* label, tpch::History* history, int count) {
  RqlEngine* engine = history->engine();
  BENCH_CHECK(engine->AggregateDataInVariable(
      history->QsInterval(1, count), kQqCpu, "Result", "avg"));
  const RqlRunStats& stats = engine->last_run_stats();
  PrintBreakdownRow(std::string(label) + " cold iteration",
                    FromIteration(stats.iterations[0]));
  PrintBreakdownRow(std::string(label) + " hot iteration",
                    MeanIterations(stats, 1));
}

int Run() {
  // The no-index case reuses the standard UW30 history.
  auto plain = GetHistory("uw30");
  auto indexed = GetHistory("uw30_lpk");
  if (!plain.ok()) Fail(plain.status(), "uw30 history");
  if (!indexed.ok()) Fail(indexed.status(), "uw30_lpk history");

  std::printf("Figure 9: CPU-intensive Qq_cpu (join), "
              "AggregateDataInVariable(Qs_50, Qq_cpu, AVG), UW30\n");
  PrintBreakdownHeader("iteration");
  RunCase("w/o index", plain->get(), 25);
  RunCase("w/ native index", indexed->get(), 25);

  std::printf(
      "\nExpected: without the native index, index_ms dominates both cold "
      "and hot\niterations (cold vs hot differ little). With the native "
      "index, index_ms ~ 0\nwhile io/spt grow (larger database and "
      "Pagelog).\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

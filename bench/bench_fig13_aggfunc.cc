// Reproduces Figure 13: AggregateDataInTable(Qs_50, Qq_agg, ...) with MAX
// vs. SUM as the aggregate function, under UW30 — and re-runs both with
// RqlOptions::batch_execution to confirm the vectorized spine reproduces
// the across-time GROUP BY byte-for-byte while reporting its speedup.
//
// Expected shape (paper): cold iterations cost the same (identical inserts
// and index build). Hot iterations do the same number of index probes, but
// SUM updates the result row for (almost) every record returned by Qq —
// the per-customer count changes every time — while MAX only updates when
// a new maximum appears, so SUM's hot iterations are noticeably costlier.
//
// Machine-readable output goes to BENCH_aggfunc.json (CI artifact); the
// bench exits non-zero if the batch path diverges from the row path.

#include "bench_common.h"

namespace rql::bench {
namespace {

struct FuncRun {
  Breakdown cold;
  Breakdown hot;
  double query_ms = 0;  // summed per-iteration Qq evaluation time
  int64_t batches = 0;
  std::vector<std::string> rows;  // encoded result table, in table order
};

FuncRun RunFunc(tpch::History* history, const char* table,
                const char* pairs) {
  RqlEngine* engine = history->engine();
  BENCH_CHECK(engine->AggregateDataInTable(history->QsInterval(1, 50),
                                           kQqAgg1, table, pairs));
  FuncRun r;
  const RqlRunStats& stats = engine->last_run_stats();
  r.cold = FromIteration(stats.iterations[0]);
  r.hot = MeanIterations(stats, 1);
  for (const RqlIterationStats& it : stats.iterations) {
    r.query_ms += it.query_eval_us / 1000.0;
    r.batches += it.batches_scanned;
  }
  auto rows = history->meta()->Query(std::string("SELECT * FROM ") + table);
  if (!rows.ok()) Fail(rows.status(), "dump result table");
  for (const sql::Row& row : rows->rows) {
    r.rows.push_back(sql::EncodeRow(row));
  }
  return r;
}

void WriteFuncJson(JsonWriter* json, const char* func, const FuncRun& row,
                   const FuncRun& batch) {
  json->BeginObject();
  json->Field("func", func);
  json->Field("cold_total_ms", row.cold.total_ms);
  json->Field("hot_total_ms", row.hot.total_ms);
  json->Field("hot_updates", row.hot.updates, 0);
  json->Field("hot_probes", row.hot.probes, 0);
  json->Field("row_query_ms", row.query_ms);
  json->Field("batch_query_ms", batch.query_ms);
  json->Field("batch_batches_scanned", batch.batches);
  json->Field("speedup",
              batch.query_ms > 0 ? row.query_ms / batch.query_ms : 0);
  json->Field("rows_match", batch.rows == row.rows);
  json->EndObject();
}

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();
  RqlEngine* engine = history->engine();

  std::printf("Figure 13: AggregateDataInTable aggregate functions "
              "(Qq_agg, Qs_50, UW30)\n");
  PrintBreakdownHeader("iteration");

  FuncRun max_row = RunFunc(history, "MaxResult", "(cn,max)");
  PrintBreakdownRow("MAX aggregation cold", max_row.cold);
  PrintBreakdownRow("MAX aggregation hot", max_row.hot);

  FuncRun sum_row = RunFunc(history, "SumResult", "(cn,sum)");
  PrintBreakdownRow("SUM aggregation cold", sum_row.cold);
  PrintBreakdownRow("SUM aggregation hot", sum_row.hot);

  // Same runs on the vectorized spine; PrepareResultTable drops the result
  // tables first, so the dumps compare run against run, not accumulations.
  engine->mutable_options()->batch_execution = true;
  FuncRun max_batch = RunFunc(history, "MaxResult", "(cn,max)");
  FuncRun sum_batch = RunFunc(history, "SumResult", "(cn,sum)");
  *engine->mutable_options() = RqlOptions{};

  std::printf("\nResult-table updates per hot iteration: MAX=%.0f SUM=%.0f "
              "(probes: MAX=%.0f SUM=%.0f)\n",
              max_row.hot.updates, sum_row.hot.updates, max_row.hot.probes,
              sum_row.hot.probes);
  std::printf("Batch execution Qq evaluation: MAX %.2f -> %.2f ms "
              "(%.2fx), SUM %.2f -> %.2f ms (%.2fx)\n",
              max_row.query_ms, max_batch.query_ms,
              max_batch.query_ms > 0 ? max_row.query_ms / max_batch.query_ms
                                     : 0,
              sum_row.query_ms, sum_batch.query_ms,
              sum_batch.query_ms > 0 ? sum_row.query_ms / sum_batch.query_ms
                                     : 0);

  JsonWriter json("BENCH_aggfunc.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  json.BeginArray("figure13");
  WriteFuncJson(&json, "max", max_row, max_batch);
  WriteFuncJson(&json, "sum", sum_row, sum_batch);
  json.EndArray();

  bool checks_ok = true;
  for (const auto& [func, row, batch] :
       {std::tuple<const char*, const FuncRun&, const FuncRun&>{
            "MAX", max_row, max_batch},
        {"SUM", sum_row, sum_batch}}) {
    if (batch.rows != row.rows) {
      std::printf("CHECK FAILED: %s batch result table differs from row "
                  "path\n", func);
      checks_ok = false;
    }
    if (batch.batches <= 0) {
      std::printf("CHECK FAILED: %s batch run scanned no batches\n", func);
      checks_ok = false;
    }
    if (row.batches != 0) {
      std::printf("CHECK FAILED: %s row run scanned %lld batches with the "
                  "flag off\n", func, static_cast<long long>(row.batches));
      checks_ok = false;
    }
  }
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf(
      "\nExpected: cold iterations match; hot iterations probe equally but "
      "SUM\nperforms updates for (almost) every probed record while MAX "
      "updates rarely,\nmaking SUM's hot iterations costlier. The batch "
      "re-runs must reproduce both\nresult tables byte-for-byte.\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Reproduces Figure 13: AggregateDataInTable(Qs_50, Qq_agg, ...) with MAX
// vs. SUM as the aggregate function, under UW30.
//
// Expected shape (paper): cold iterations cost the same (identical inserts
// and index build). Hot iterations do the same number of index probes, but
// SUM updates the result row for (almost) every record returned by Qq —
// the per-customer count changes every time — while MAX only updates when
// a new maximum appears, so SUM's hot iterations are noticeably costlier.

#include "bench_common.h"

namespace rql::bench {
namespace {

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();
  RqlEngine* engine = history->engine();

  std::printf("Figure 13: AggregateDataInTable aggregate functions "
              "(Qq_agg, Qs_50, UW30)\n");
  PrintBreakdownHeader("iteration");

  BENCH_CHECK(engine->AggregateDataInTable(history->QsInterval(1, 50),
                                           kQqAgg1, "MaxResult", "(cn,max)"));
  const RqlRunStats& max_stats = engine->last_run_stats();
  Breakdown max_cold = FromIteration(max_stats.iterations[0]);
  Breakdown max_hot = MeanIterations(max_stats, 1);
  PrintBreakdownRow("MAX aggregation cold", max_cold);
  PrintBreakdownRow("MAX aggregation hot", max_hot);

  BENCH_CHECK(engine->AggregateDataInTable(history->QsInterval(1, 50),
                                           kQqAgg1, "SumResult", "(cn,sum)"));
  const RqlRunStats& sum_stats = engine->last_run_stats();
  Breakdown sum_cold = FromIteration(sum_stats.iterations[0]);
  Breakdown sum_hot = MeanIterations(sum_stats, 1);
  PrintBreakdownRow("SUM aggregation cold", sum_cold);
  PrintBreakdownRow("SUM aggregation hot", sum_hot);

  std::printf("\nResult-table updates per hot iteration: MAX=%.0f SUM=%.0f "
              "(probes: MAX=%.0f SUM=%.0f)\n",
              max_hot.updates, sum_hot.updates, max_hot.probes,
              sum_hot.probes);
  std::printf(
      "\nExpected: cold iterations match; hot iterations probe equally but "
      "SUM\nperforms updates for (almost) every probed record while MAX "
      "updates rarely,\nmaking SUM's hot iterations costlier.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Reproduces Figure 10: single-iteration cost of CollateData(Qs_50,
// Qq_collate, T) as the Qq output size grows, under UW30. Qq_collate has a
// single date predicate; varying the date controls how many order keys
// each iteration returns, and every returned record triggers the RQL UDF
// callback (an insert into the result table).
//
// Expected shape (paper): the RQL UDF cost grows linearly with the output
// size and dominates the iteration for large outputs; snapshot page
// sharing (cold vs. hot) barely matters for this CPU-bound query.

#include <vector>

#include "bench_common.h"

namespace rql::bench {
namespace {

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();

  // Pick date predicates by quantile of the live order dates; the paper's
  // outputs (500 ... 1M rows over 1.5M orders) map to the same fractions
  // of our scaled order count.
  auto dates = history->data()->Query(
      "SELECT o_orderdate FROM orders ORDER BY o_orderdate");
  if (!dates.ok()) Fail(dates.status(), "order dates");
  size_t total = dates->rows.size();
  const double fractions[] = {0.0005, 0.03, 0.35, 0.95};

  std::printf("Figure 10: CollateData(Qs_50, Qq_collate, T) with varying Qq "
              "output size, UW30\n");
  PrintBreakdownHeader("iteration");
  for (double f : fractions) {
    size_t idx = std::min(total - 1, static_cast<size_t>(f * total));
    std::string date = dates->rows[idx][0].text();
    RqlEngine* engine = history->engine();
    BENCH_CHECK(engine->CollateData(history->QsInterval(1, 20),
                                    QqCollate(date), "Result"));
    const RqlRunStats& stats = engine->last_run_stats();
    int64_t rows = stats.iterations[0].qq_rows;
    PrintBreakdownRow("cold, ~" + std::to_string(rows) + " records",
                      FromIteration(stats.iterations[0]));
    PrintBreakdownRow("hot,  ~" + std::to_string(rows) + " records",
                      MeanIterations(stats, 1));
  }
  std::printf(
      "\nExpected: udf_ms scales with the record count and dominates the "
      "largest\noutputs; io_ms is small and similar across output sizes "
      "(the scan cost is\nfixed), so cold/hot differences stay minor.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Reproduces Figure 6: ratio C (RQL latency over all-cold latency) as the
// snapshot interval length grows, for update workloads UW30/UW15 and Qs
// steps 1 and 10, using AggregateDataInVariable(Qs_N, Qq_io, AVG) over old
// snapshots.
//
// Expected shape (paper): C starts near 1 for one-snapshot intervals,
// drops as the interval grows, and converges to a constant once the cold
// first iteration stops dominating (beyond ~20 snapshots). More sharing —
// UW15 instead of UW30, step 1 instead of step 10 — gives a lower C.

#include "bench_common.h"

namespace rql::bench {
namespace {

double MeasureC(tpch::History* history, int interval_len, int step) {
  RqlEngine* engine = history->engine();
  std::string qs = history->QsInterval(1, interval_len, step);

  engine->mutable_options()->cold_cache_per_iteration = false;
  // Warm up once (OS file cache, allocator) so the two measured runs see
  // the same environment; the snapshot cache itself still starts cold.
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double rql_ms = RunTotalMs(engine->last_run_stats());

  engine->mutable_options()->cold_cache_per_iteration = true;
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double all_cold_ms = RunTotalMs(engine->last_run_stats());
  engine->mutable_options()->cold_cache_per_iteration = false;

  return all_cold_ms > 0 ? rql_ms / all_cold_ms : 0.0;
}

int Run() {
  auto uw30 = GetHistory("uw30");
  auto uw15 = GetHistory("uw15");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  if (!uw15.ok()) Fail(uw15.status(), "uw15 history");

  const int lengths[] = {1, 2, 5, 10, 15, 20, 30, 40, 50};
  std::printf("Figure 6: ratio C with old snapshots "
              "(AggregateDataInVariable(Qs_N, Qq_io, AVG))\n");
  std::printf("%-10s %14s %14s %20s %20s\n", "interval", "UW30 step1",
              "UW15 step1", "UW30 step10", "UW15 step10");
  for (int n : lengths) {
    double c30 = MeasureC(uw30->get(), n, 1);
    double c15 = MeasureC(uw15->get(), n, 1);
    // The step-10 series spans 10x the history; cap it so every snapshot
    // in the set stays old.
    bool step10_fits = n * 10 + 120 <= kStandardSnapshots;
    double c30s = step10_fits ? MeasureC(uw30->get(), n, 10) : -1;
    double c15s = step10_fits ? MeasureC(uw15->get(), n, 10) : -1;
    std::printf("%-10d %14.3f %14.3f", n, c30, c15);
    if (step10_fits) {
      std::printf(" %20.3f %20.3f\n", c30s, c15s);
    } else {
      std::printf(" %20s %20s\n", "-", "-");
    }
  }
  std::printf(
      "\nExpected: C ~1 at length 1, monotone drop, convergence beyond ~20;"
      "\nordering UW15/step1 < UW30/step1 < step10 series (less sharing -> "
      "higher C).\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

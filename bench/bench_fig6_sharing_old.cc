// Reproduces Figure 6 — ratio C (RQL latency over all-cold latency) as the
// snapshot interval length grows, for update workloads UW30/UW15 and Qs
// steps 1 and 10, using AggregateDataInVariable(Qs_N, Qq_io, AVG) over old
// snapshots — and extends it with the COW page-sharing flag ablation:
// reuse_decoded_pages and skip_unchanged_iterations over a sparse-update
// history, where most consecutive snapshots map identical page versions
// for the table Qq reads.
//
// Expected shape (paper): C starts near 1 for one-snapshot intervals,
// drops as the interval grows, and converges to a constant once the cold
// first iteration stops dominating (beyond ~20 snapshots). More sharing —
// UW15 instead of UW30, step 1 instead of step 10 — gives a lower C.
//
// Machine-readable output goes to BENCH_sharing.json (CI artifact). The
// bench self-checks the ablation: every flag combination must reproduce
// the flags-off result table byte-for-byte, skipping and the decoded-page
// cache must actually engage on the high-sharing set, and both flags
// together must cut the end-to-end latency at least 2x.

#include "bench_common.h"
#include "storage/env.h"

namespace rql::bench {
namespace {

double MeasureC(tpch::History* history, int interval_len, int step) {
  RqlEngine* engine = history->engine();
  std::string qs = history->QsInterval(1, interval_len, step);

  engine->mutable_options()->cold_cache_per_iteration = false;
  // Warm up once (OS file cache, allocator) so the two measured runs see
  // the same environment; the snapshot cache itself still starts cold.
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double rql_ms = RunTotalMs(engine->last_run_stats());

  engine->mutable_options()->cold_cache_per_iteration = true;
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double all_cold_ms = RunTotalMs(engine->last_run_stats());
  engine->mutable_options()->cold_cache_per_iteration = false;

  return all_cold_ms > 0 ? rql_ms / all_cold_ms : 0.0;
}

// --- part 2: page-sharing flag ablation ------------------------------------

// The TPC-H update workloads touch `orders` in every snapshot, so no
// iteration can ever skip against them. The ablation therefore runs on a
// purpose-built sparse history: `stock` (the table Qq reads, ~27 heap
// pages) changes only every kStockPeriod-th snapshot — one row, so one
// page — while a `churn` side table changes every snapshot. Consecutive
// snapshots then share almost every `stock` page version, iterations
// between stock changes see Qq-disjoint Maplog deltas, and the history is
// still never trivially static.
constexpr int kSparseSnapshots = 48;
constexpr int kStockRows = 4000;
constexpr int kStockPeriod = 8;

struct SparseHistory {
  std::unique_ptr<storage::InMemoryEnv> env =
      std::make_unique<storage::InMemoryEnv>();
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<RqlEngine> engine;
};

SparseHistory BuildSparseHistory() {
  SparseHistory h;
  auto data = sql::Database::Open(h.env.get(), "sparse_data");
  auto meta = sql::Database::Open(h.env.get(), "sparse_meta");
  if (!data.ok()) Fail(data.status(), "sparse data db");
  if (!meta.ok()) Fail(meta.status(), "sparse meta db");
  h.data = std::move(*data);
  h.meta = std::move(*meta);
  h.engine = std::make_unique<RqlEngine>(h.data.get(), h.meta.get());
  BENCH_CHECK(h.engine->EnsureSnapIds());
  BENCH_CHECK(h.data->Exec("CREATE TABLE stock (item INTEGER, v INTEGER)"));
  BENCH_CHECK(h.data->Exec("CREATE TABLE churn (k INTEGER, v INTEGER)"));
  for (int s = 0; s < kSparseSnapshots; ++s) {
    BENCH_CHECK(h.data->Exec("BEGIN"));
    BENCH_CHECK(h.data->Exec("INSERT INTO churn VALUES (" +
                             std::to_string(s) + ", " + std::to_string(s * 7) +
                             ")"));
    if (s == 0) {
      for (int i = 0; i < kStockRows; ++i) {
        BENCH_CHECK(h.data->Exec("INSERT INTO stock VALUES (" +
                                 std::to_string(i) + ", " +
                                 std::to_string(i % 97) + ")"));
      }
    } else if (s % kStockPeriod == 0) {
      // One in-place update per active round, on a rotating row: exactly
      // one stock page changes, the other ~26 keep their version.
      int item = (s * 997) % kStockRows;
      BENCH_CHECK(h.data->Exec("UPDATE stock SET v = " + std::to_string(s) +
                               " WHERE item = " + std::to_string(item)));
    }
    auto snap = h.engine->CommitWithSnapshot("t" + std::to_string(s));
    if (!snap.ok()) Fail(snap.status(), "sparse snapshot");
  }
  return h;
}

struct AblationCell {
  const char* name;
  bool reuse, skip;
};

constexpr AblationCell kCells[] = {
    {"off", false, false},
    {"reuse_decoded_pages", true, false},
    {"skip_unchanged_iterations", false, true},
    {"both", true, true},
};

struct AblationResult {
  double total_ms = 0;
  int64_t iterations_skipped = 0;
  int64_t shared_page_hits = 0;
  int64_t delta_pages = 0;
  std::vector<std::string> rows;  // encoded result table, in table order
};

AblationResult RunCell(SparseHistory* h, const AblationCell& cell) {
  RqlEngine* engine = h->engine.get();
  RqlOptions* opts = engine->mutable_options();
  opts->reuse_decoded_pages = cell.reuse;
  opts->skip_unchanged_iterations = cell.skip;
  // Comparable across cells: every run starts with a cold snapshot cache.
  h->data->store()->ClearSnapshotCache();

  // Counters come from the metrics registry the engine publishes into at
  // run end (delta around the run == the run's RqlRunStats).
  retro::MetricsRegistry* metrics = engine->metrics();
  retro::MetricsRegistry::Snapshot before = metrics->TakeSnapshot();
  BENCH_CHECK(engine->CollateData(
      "SELECT snap_id FROM SnapIds",
      "SELECT COUNT(*) AS cnt, SUM(v) AS sv FROM stock", "Sharing"));
  retro::MetricsRegistry::Snapshot delta =
      metrics->TakeSnapshot().DeltaFrom(before);

  AblationResult r;
  r.total_ms = delta.counter("rql.total_us") / 1000.0;
  r.iterations_skipped = delta.counter("rql.iterations_skipped");
  r.shared_page_hits = delta.counter("rql.shared_page_hits");
  r.delta_pages = delta.counter("rql.delta_pages_scanned");

  auto rows = h->meta->Query("SELECT * FROM Sharing");
  if (!rows.ok()) Fail(rows.status(), "dump Sharing");
  for (const sql::Row& row : rows->rows) {
    r.rows.push_back(sql::EncodeRow(row));
  }

  opts->reuse_decoded_pages = false;
  opts->skip_unchanged_iterations = false;
  return r;
}

int Run() {
  auto uw30 = GetHistory("uw30");
  auto uw15 = GetHistory("uw15");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  if (!uw15.ok()) Fail(uw15.status(), "uw15 history");

  JsonWriter json("BENCH_sharing.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  bool checks_ok = true;

  const int lengths[] = {1, 2, 5, 10, 15, 20, 30, 40, 50};
  std::printf("Figure 6: ratio C with old snapshots "
              "(AggregateDataInVariable(Qs_N, Qq_io, AVG))\n");
  std::printf("%-10s %14s %14s %20s %20s\n", "interval", "UW30 step1",
              "UW15 step1", "UW30 step10", "UW15 step10");
  json.BeginArray("figure6");
  for (int n : lengths) {
    double c30 = MeasureC(uw30->get(), n, 1);
    double c15 = MeasureC(uw15->get(), n, 1);
    // The step-10 series spans 10x the history; cap it so every snapshot
    // in the set stays old.
    bool step10_fits = n * 10 + 120 <= kStandardSnapshots;
    double c30s = step10_fits ? MeasureC(uw30->get(), n, 10) : -1;
    double c15s = step10_fits ? MeasureC(uw15->get(), n, 10) : -1;
    std::printf("%-10d %14.3f %14.3f", n, c30, c15);
    if (step10_fits) {
      std::printf(" %20.3f %20.3f\n", c30s, c15s);
    } else {
      std::printf(" %20s %20s\n", "-", "-");
    }
    json.BeginObject();
    json.Field("interval", n);
    json.Field("uw30_step1", c30);
    json.Field("uw15_step1", c15);
    json.Field("uw30_step10", c30s);
    json.Field("uw15_step10", c15s);
    json.EndObject();
    // Timing ratios are noisy at smoke scale, so the hard check is only
    // that every measured pair of runs completed and produced a ratio.
    if (c30 <= 0 || c15 <= 0 || (step10_fits && (c30s <= 0 || c15s <= 0))) {
      std::printf("CHECK FAILED: non-positive ratio C at interval %d\n", n);
      checks_ok = false;
    }
  }
  json.EndArray();

  std::printf("\nPage-sharing flag ablation: CollateData over %d sparse "
              "snapshots\n(stock changes every %dth snapshot, one page per "
              "change)\n", kSparseSnapshots, kStockPeriod);
  std::printf("%-28s %10s %9s %9s %9s\n", "config", "total_ms", "skipped",
              "hits", "delta_pg");
  SparseHistory sparse = BuildSparseHistory();
  json.BeginArray("ablation");
  AblationResult off;
  double both_ms = 0;
  for (const AblationCell& cell : kCells) {
    AblationResult r = RunCell(&sparse, cell);
    if (!cell.reuse && !cell.skip) off = r;
    if (cell.reuse && cell.skip) both_ms = r.total_ms;
    bool rows_match = r.rows == off.rows;
    std::printf("%-28s %10.2f %9lld %9lld %9lld\n", cell.name, r.total_ms,
                static_cast<long long>(r.iterations_skipped),
                static_cast<long long>(r.shared_page_hits),
                static_cast<long long>(r.delta_pages));
    json.BeginObject();
    json.Field("name", cell.name);
    json.Field("total_ms", r.total_ms);
    json.Field("iterations_skipped", r.iterations_skipped);
    json.Field("shared_page_hits", r.shared_page_hits);
    json.Field("delta_pages_scanned", r.delta_pages);
    json.Field("rows_match", rows_match);
    json.EndObject();

    // Correctness: the flags are pure optimizations.
    if (!rows_match) {
      std::printf("CHECK FAILED: %s result table differs from flags-off\n",
                  cell.name);
      checks_ok = false;
    }
    // The mechanisms must actually engage on the high-sharing set.
    if (cell.reuse && r.shared_page_hits <= 0) {
      std::printf("CHECK FAILED: %s saw no shared-page cache hits\n",
                  cell.name);
      checks_ok = false;
    }
    if (cell.skip && r.iterations_skipped <= 0) {
      std::printf("CHECK FAILED: %s skipped no iterations\n", cell.name);
      checks_ok = false;
    }
    if (!cell.skip && r.iterations_skipped != 0) {
      std::printf("CHECK FAILED: %s skipped %lld iterations with the flag "
                  "off\n", cell.name,
                  static_cast<long long>(r.iterations_skipped));
      checks_ok = false;
    }
  }
  // Acceptance: the quiet iterations dominate the sparse set, so both
  // flags together must cut the end-to-end latency at least 2x.
  double speedup = both_ms > 0 ? off.total_ms / both_ms : 0.0;
  std::printf("both-flags speedup vs off: %.2fx\n", speedup);
  if (speedup < 2.0) {
    std::printf("CHECK FAILED: both-flags speedup %.2fx (want >= 2x)\n",
                speedup);
    checks_ok = false;
  }
  json.EndArray();
  json.Field("both_speedup", speedup);
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf(
      "\nExpected: C ~1 at length 1, monotone drop, convergence beyond ~20;"
      "\nordering UW15/step1 < UW30/step1 < step10 series (less sharing -> "
      "higher C).\nAblation: identical result tables in every cell; "
      "skipping replays the quiet\niterations and the decoded-page cache "
      "serves the shared stock pages.\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Cross-run memoization: persistent materialized retrospective views.
//
// A retrospective computation over a fixed snapshot set is deterministic,
// so its per-iteration Qq results can be memoized keyed by (canonical
// query fingerprint, page-version read set) and replayed on any later
// identical run — across engine restarts, because retro::MemoTable
// persists its entries in a checksummed append log. This bench runs
// CollateData over a 48-snapshot set three times on UW30:
//
//   baseline  memo-less oracle (the byte-identity reference),
//   cold      memoize_iterations on, fresh memo: every iteration misses,
//             executes normally and publishes its rows,
//   warm      the memo is closed and REOPENED from its on-disk log (a
//             fresh engine process would see the same bytes), then the
//             identical run replays from memo entries.
//
// Self-checks (CI gates): cold and warm result tables are byte-identical
// to the baseline, the warm run replays >= 90% of its iterations from the
// memo, and the warm run is >= 3x faster than the cold one. Results go to
// BENCH_memo.json (CI artifact).

#include "bench_common.h"

#include <cstdio>
#include <string>
#include <vector>

#include "rql/memo_table.h"

namespace rql::bench {
namespace {

constexpr int kSnapshots = 48;

struct RunResult {
  double total_ms = 0;
  int64_t iterations = 0;
  int64_t memo_hits = 0;
  int64_t memo_misses = 0;
  int64_t memo_bytes = 0;
  std::vector<std::string> rows;  // encoded result table, in table order
};

RunResult RunOnce(tpch::History* history, const std::string& qs,
                  const std::string& qq) {
  // Comparable Pagelog I/O across runs: every run starts page-cold. The
  // warm run's advantage must come from the memo, not the page cache.
  history->data()->store()->ClearSnapshotCache();
  BENCH_CHECK(history->engine()->CollateData(qs, qq, "MemoRerun"));

  RunResult r;
  const RqlRunStats& stats = history->engine()->last_run_stats();
  r.total_ms = RunTotalMs(stats);
  r.iterations = static_cast<int64_t>(stats.iterations.size());
  for (const RqlIterationStats& it : stats.iterations) {
    r.memo_hits += it.memo_hits;
    r.memo_misses += it.memo_misses;
    r.memo_bytes += it.memo_bytes;
  }
  auto rows = history->meta()->Query("SELECT * FROM MemoRerun");
  if (!rows.ok()) Fail(rows.status(), "dump MemoRerun");
  for (const sql::Row& row : rows->rows) {
    r.rows.push_back(sql::EncodeRow(row));
  }
  return r;
}

void WriteRunJson(JsonWriter* json, const char* key, const RunResult& r) {
  json->BeginObject(key);
  json->Field("total_ms", r.total_ms);
  json->Field("iterations", r.iterations);
  json->Field("memo_hits", r.memo_hits);
  json->Field("memo_misses", r.memo_misses);
  json->Field("memo_bytes_appended", r.memo_bytes);
  json->EndObject();
}

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();
  RqlEngine* engine = history->engine();

  const std::string qs = history->QsInterval(1, kSnapshots);
  // A selective date keeps the replayed fold small relative to the full
  // scan each miss pays, so the warm/cold gap measures memoization, not
  // result-table insert throughput (both runs pay that identically).
  const std::string qq = QqCollate("1992-06-01");
  const char* memo_name = "rql_bench_cache/memo_rerun";

  std::printf("Cross-run memoization: CollateData(Qs_%d ascending, "
              "Qq_collate), UW30\n\n", kSnapshots);

  // The bench must start memo-cold even though the cache dir persists
  // across invocations.
  (void)BenchEnv()->DeleteFile(std::string(memo_name) + ".memo");

  RunResult baseline = RunOnce(history, qs, qq);

  auto memo = retro::MemoTable::Open(BenchEnv(), memo_name);
  if (!memo.ok()) Fail(memo.status(), "open memo table");
  engine->mutable_options()->memoize_iterations = true;
  engine->mutable_options()->memo = memo->get();
  RunResult cold = RunOnce(history, qs, qq);

  // Cross-run persistence: drop the in-memory table and reopen from the
  // on-disk log, exactly what a fresh client process would do.
  engine->mutable_options()->memo = nullptr;
  memo->reset();
  auto reopened = retro::MemoTable::Open(BenchEnv(), memo_name);
  if (!reopened.ok()) Fail(reopened.status(), "reopen memo table");
  engine->mutable_options()->memo = reopened->get();
  RunResult warm = RunOnce(history, qs, qq);

  engine->mutable_options()->memoize_iterations = false;
  engine->mutable_options()->memo = nullptr;

  const double speedup =
      warm.total_ms > 0 ? cold.total_ms / warm.total_ms : 0;
  std::printf("%-10s %10s %6s %6s %12s\n", "run", "total_ms", "hits",
              "misses", "memo_bytes");
  std::printf("%-10s %10.2f %6lld %6lld %12lld\n", "baseline",
              baseline.total_ms, 0LL, 0LL, 0LL);
  std::printf("%-10s %10.2f %6lld %6lld %12lld\n", "cold", cold.total_ms,
              static_cast<long long>(cold.memo_hits),
              static_cast<long long>(cold.memo_misses),
              static_cast<long long>(cold.memo_bytes));
  std::printf("%-10s %10.2f %6lld %6lld %12lld\n", "warm", warm.total_ms,
              static_cast<long long>(warm.memo_hits),
              static_cast<long long>(warm.memo_misses),
              static_cast<long long>(warm.memo_bytes));
  std::printf("\nwarm speedup over cold: %.1fx (recovered %lld entries "
              "from the reopened log)\n", speedup,
              static_cast<long long>((*reopened)->recovered_entries()));

  bool checks_ok = true;
  if (cold.rows != baseline.rows) {
    std::printf("CHECK FAILED: cold memoized result table differs from "
                "the memo-less baseline\n");
    checks_ok = false;
  }
  if (warm.rows != baseline.rows) {
    std::printf("CHECK FAILED: warm memoized result table differs from "
                "the memo-less baseline\n");
    checks_ok = false;
  }
  if (cold.memo_hits != 0 || cold.memo_misses != cold.iterations) {
    std::printf("CHECK FAILED: cold run on a fresh memo should miss every "
                "iteration (hits=%lld misses=%lld of %lld)\n",
                static_cast<long long>(cold.memo_hits),
                static_cast<long long>(cold.memo_misses),
                static_cast<long long>(cold.iterations));
    checks_ok = false;
  }
  if (warm.memo_hits * 10 < warm.iterations * 9) {
    std::printf("CHECK FAILED: warm run replayed %lld of %lld iterations "
                "(< 90%%)\n", static_cast<long long>(warm.memo_hits),
                static_cast<long long>(warm.iterations));
    checks_ok = false;
  }
  if (warm.total_ms * 3 > cold.total_ms) {
    std::printf("CHECK FAILED: warm run %.2fms vs cold %.2fms "
                "(< 3x speedup)\n", warm.total_ms, cold.total_ms);
    checks_ok = false;
  }

  JsonWriter json("BENCH_memo.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  json.Field("snapshots", kSnapshots);
  WriteRunJson(&json, "baseline", baseline);
  WriteRunJson(&json, "cold", cold);
  WriteRunJson(&json, "warm", warm);
  json.Field("warm_speedup_over_cold", speedup, 2);
  json.Field("recovered_entries",
             static_cast<int64_t>((*reopened)->recovered_entries()));
  json.Field("memo_log_bytes",
             static_cast<int64_t>((*reopened)->log_bytes()));
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf("\nExpected: identical result tables in all three runs; the "
              "warm run replays\n>= 90%% of its iterations from the memo "
              "reopened off disk and finishes\n>= 3x faster than the "
              "publishing cold run.\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

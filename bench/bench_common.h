#ifndef RQL_BENCH_BENCH_COMMON_H_
#define RQL_BENCH_BENCH_COMMON_H_

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <type_traits>
#include <vector>

#include "common/clock.h"
#include "rql/rql.h"
#include "tpch/workload.h"

namespace rql::bench {

/// Scale factor for all benchmark databases. The paper uses TPC-H SF 1;
/// we default to SF 0.01 (15K orders) and keep the overwrite-cycle lengths
/// identical, so every sharing ratio the figures depend on is preserved.
/// Override with RQL_BENCH_SF.
inline double Sf() {
  const char* env = std::getenv("RQL_BENCH_SF");
  return env != nullptr ? std::atof(env) : 0.01;
}

/// Histories are expensive to build, so they are persisted across bench
/// binaries in ./rql_bench_cache (PosixEnv files) and reopened on reuse.
inline storage::Env* BenchEnv() {
  static storage::PosixEnv* env = new storage::PosixEnv();
  ::mkdir("rql_bench_cache", 0755);
  return env;
}

/// Standard history sizes. Figure 6's step-10 series over up to 30
/// snapshots spans 300 snapshots of history; adding the longest overwrite
/// cycle (UW15: 100) plus margin keeps the whole span "old".
inline constexpr int kStandardSnapshots = 420;
inline constexpr int kSmallSnapshots = 70;  // intervals memory study

inline Result<std::unique_ptr<tpch::History>> GetHistory(
    const std::string& key) {
  tpch::HistoryConfig config;
  config.tpch.scale_factor = Sf();
  if (key == "uw30") {
    config.workload = tpch::WorkloadSpec::UW30();
    config.snapshots = kStandardSnapshots;
  } else if (key == "uw15") {
    config.workload = tpch::WorkloadSpec::UW15();
    config.snapshots = kStandardSnapshots;
  } else if (key == "uw30_lpk") {
    config.workload = tpch::WorkloadSpec::UW30();
    config.snapshots = 160;
    config.tpch.index_lineitem_partkey = true;
  } else if (key == "uw7_5") {
    config.workload = tpch::WorkloadSpec::UW7_5();
    config.snapshots = kSmallSnapshots;
  } else if (key == "uw15_small") {
    config.workload = tpch::WorkloadSpec::UW15();
    config.snapshots = kSmallSnapshots;
  } else if (key == "uw30_small") {
    config.workload = tpch::WorkloadSpec::UW30();
    config.snapshots = kSmallSnapshots;
  } else if (key == "uw60") {
    config.workload = tpch::WorkloadSpec::UW60();
    config.snapshots = kSmallSnapshots;
  } else {
    return Status::InvalidArgument("unknown history key: " + key);
  }
  std::fprintf(stderr, "[bench] opening history %s (SF %.3f) ...\n",
               key.c_str(), Sf());
  Stopwatch sw;
  auto history =
      tpch::BuildHistory(BenchEnv(), "rql_bench_cache/" + key, config);
  if (history.ok()) {
    // Retro maintains the Skippy index as snapshots are declared; warm it
    // here so its one-off construction never pollutes a measured query.
    Status warm = (*history)->data()->store()->maplog()->PrewarmSkippy();
    if (!warm.ok()) return warm;
    std::fprintf(stderr, "[bench] history %s ready in %.1fs (Slast=%u)\n",
                 key.c_str(), sw.ElapsedSeconds(),
                 (*history)->last_snapshot());
  }
  return history;
}

// --- Table 1: the paper's queries ----------------------------------------

/// Qq_io: I/O intensive, computationally light.
inline constexpr char kQqIo[] =
    "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'O'";

/// Qq_cpu: computationally heavy join (drives covering-index creation).
inline constexpr char kQqCpu[] =
    "SELECT SUM(l_extendedprice) AS revenue FROM lineitem, part "
    "WHERE p_partkey = l_partkey AND p_type = 'STANDARD POLISHED TIN'";

/// Qq_collate: output size controlled by the date predicate.
inline std::string QqCollate(const std::string& date) {
  return "SELECT o_orderkey FROM orders WHERE o_orderdate < '" + date + "'";
}

/// Qq_agg: the across-snapshot GROUP BY workload.
inline constexpr char kQqAgg[] =
    "SELECT o_custkey, COUNT(*) AS cn, AVG(o_totalprice) AS av "
    "FROM orders GROUP BY o_custkey";

/// One-aggregate variant of Qq_agg. By the mechanism's definition every
/// Qq output column outside the pair list becomes a grouping column, so
/// the single-aggregate experiments must not return `av` (otherwise each
/// distinct (o_custkey, av) pair becomes its own group and the result
/// table balloons — see EXPERIMENTS.md).
inline constexpr char kQqAgg1[] =
    "SELECT o_custkey, COUNT(*) AS cn FROM orders GROUP BY o_custkey";

/// Qq_int: full projection used by the intervals study.
inline constexpr char kQqInt[] = "SELECT o_orderkey, o_custkey FROM orders";

// --- measurement helpers ---------------------------------------------------

struct Breakdown {
  double io_ms = 0;
  double spt_ms = 0;
  double query_ms = 0;
  double index_ms = 0;
  double udf_ms = 0;
  double total_ms = 0;
  double pagelog_pages = 0;
  double db_pages = 0;
  double probes = 0;
  double inserts = 0;
  double updates = 0;
};

inline Breakdown FromIteration(const RqlIterationStats& it) {
  Breakdown b;
  b.io_ms = it.io_us / 1000.0;
  b.spt_ms = it.spt_build_us / 1000.0;
  b.query_ms = it.query_eval_us / 1000.0;
  b.index_ms = it.index_create_us / 1000.0;
  b.udf_ms = it.udf_us / 1000.0;
  b.total_ms = it.TotalUs() / 1000.0;
  b.pagelog_pages = static_cast<double>(it.pagelog_pages);
  b.db_pages = static_cast<double>(it.db_pages);
  b.probes = static_cast<double>(it.result_probes);
  b.inserts = static_cast<double>(it.result_inserts);
  b.updates = static_cast<double>(it.result_updates);
  return b;
}

/// Mean over iterations [first, last); use first=1 to skip the cold one.
inline Breakdown MeanIterations(const RqlRunStats& stats, size_t first,
                                size_t last = SIZE_MAX) {
  Breakdown sum;
  size_t n = 0;
  if (last > stats.iterations.size()) last = stats.iterations.size();
  for (size_t i = first; i < last; ++i) {
    Breakdown b = FromIteration(stats.iterations[i]);
    sum.io_ms += b.io_ms;
    sum.spt_ms += b.spt_ms;
    sum.query_ms += b.query_ms;
    sum.index_ms += b.index_ms;
    sum.udf_ms += b.udf_ms;
    sum.total_ms += b.total_ms;
    sum.pagelog_pages += b.pagelog_pages;
    sum.db_pages += b.db_pages;
    sum.probes += b.probes;
    sum.inserts += b.inserts;
    sum.updates += b.updates;
    ++n;
  }
  if (n == 0) return sum;
  sum.io_ms /= n;
  sum.spt_ms /= n;
  sum.query_ms /= n;
  sum.index_ms /= n;
  sum.udf_ms /= n;
  sum.total_ms /= n;
  sum.pagelog_pages /= n;
  sum.db_pages /= n;
  sum.probes /= n;
  sum.inserts /= n;
  sum.updates /= n;
  return sum;
}

inline void PrintBreakdownHeader(const char* label_header) {
  std::printf("%-34s %9s %9s %9s %9s %9s %10s %8s %8s\n", label_header,
              "io_ms", "spt_ms", "query_ms", "index_ms", "udf_ms",
              "total_ms", "plogpg", "dbpg");
}

inline void PrintBreakdownRow(const std::string& label, const Breakdown& b) {
  std::printf("%-34s %9.2f %9.2f %9.2f %9.2f %9.2f %10.2f %8.0f %8.0f\n",
              label.c_str(), b.io_ms, b.spt_ms, b.query_ms, b.index_ms,
              b.udf_ms, b.total_ms, b.pagelog_pages, b.db_pages);
}

/// Total latency of the last run in milliseconds.
inline double RunTotalMs(const RqlRunStats& stats) {
  return stats.TotalUs() / 1000.0;
}

inline void Fail(const Status& status, const char* what) {
  std::fprintf(stderr, "FATAL %s: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

#define BENCH_CHECK(expr)                        \
  do {                                           \
    ::rql::Status _st = (expr);                  \
    if (!_st.ok()) ::rql::bench::Fail(_st, #expr); \
  } while (false)

// --- machine-readable output -----------------------------------------------

/// Streaming writer for the BENCH_*.json artifacts the self-checking
/// benches emit for CI. Handles the comma/indent bookkeeping the benches
/// used to hand-roll; values interleave freely with stdout reporting.
/// String values are written verbatim (callers pass plain identifiers).
class JsonWriter {
 public:
  explicit JsonWriter(const char* path) : f_(std::fopen(path, "w")) {
    if (f_ == nullptr) {
      Fail(Status::Internal(std::string("cannot open ") + path), "json");
    }
  }
  ~JsonWriter() { Close(); }
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  void Close() {
    if (f_ == nullptr) return;
    std::fputc('\n', f_);
    std::fclose(f_);
    f_ = nullptr;
  }

  void BeginObject(const char* key = nullptr) { Open(key, '{'); }
  void EndObject() { CloseScope('}'); }
  void BeginArray(const char* key = nullptr) { Open(key, '['); }
  void EndArray() { CloseScope(']'); }

  void Field(const char* key, const char* v) {
    Prefix(key);
    std::fprintf(f_, "\"%s\"", v);
  }
  void Field(const char* key, const std::string& v) { Field(key, v.c_str()); }
  void Field(const char* key, bool v) {
    Prefix(key);
    std::fputs(v ? "true" : "false", f_);
  }
  void Field(const char* key, double v, int precision = 3) {
    Prefix(key);
    std::fprintf(f_, "%.*f", precision, v);
  }
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  void Field(const char* key, T v) {
    Prefix(key);
    std::fprintf(f_, "%lld", static_cast<long long>(v));
  }

 private:
  // Comma-separates members, breaks the line, and indents to the current
  // depth; `key` is null for array elements.
  void Prefix(const char* key) {
    if (!scope_is_empty_.empty()) {
      if (!scope_is_empty_.back()) std::fputc(',', f_);
      scope_is_empty_.back() = false;
      std::fputc('\n', f_);
      for (size_t i = 0; i < scope_is_empty_.size(); ++i) {
        std::fputs("  ", f_);
      }
    }
    if (key != nullptr) std::fprintf(f_, "\"%s\": ", key);
  }
  void Open(const char* key, char bracket) {
    Prefix(key);
    std::fputc(bracket, f_);
    scope_is_empty_.push_back(true);
  }
  void CloseScope(char bracket) {
    bool empty = scope_is_empty_.back();
    scope_is_empty_.pop_back();
    if (!empty) {
      std::fputc('\n', f_);
      for (size_t i = 0; i < scope_is_empty_.size(); ++i) {
        std::fputs("  ", f_);
      }
    }
    std::fputc(bracket, f_);
  }

  std::FILE* f_;
  std::vector<bool> scope_is_empty_;  // per open scope: no members yet
};

// --- observability JSON ----------------------------------------------------

/// Dumps an RqlTrace under `key` as
/// {"capacity":N,"emitted":N,"dropped":N,"events":[{...}]}; each event
/// carries t_us, type (RqlTrace::TypeName), snapshot, worker and the raw
/// args array (per-type meaning documented in rql/trace.h).
inline void WriteTraceJson(JsonWriter* json, const char* key,
                           const RqlTrace& trace) {
  json->BeginObject(key);
  json->Field("capacity", static_cast<int64_t>(trace.capacity()));
  json->Field("emitted", trace.emitted());
  json->Field("dropped", trace.dropped());
  json->BeginArray("events");
  for (const RqlTraceEvent& ev : trace.Events()) {
    json->BeginObject();
    json->Field("t_us", ev.t_us);
    json->Field("type", RqlTrace::TypeName(ev.type));
    json->Field("snapshot", static_cast<int64_t>(ev.snapshot));
    json->Field("worker", static_cast<int64_t>(ev.worker));
    json->BeginArray("args");
    for (int64_t a : ev.args) json->Field(nullptr, a);
    json->EndArray();
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

/// JSONL form: one event object per line, for streaming consumers.
inline void WriteTraceJsonl(const RqlTrace& trace, std::FILE* f) {
  for (const RqlTraceEvent& ev : trace.Events()) {
    std::fprintf(f,
                 "{\"t_us\": %lld, \"type\": \"%s\", \"snapshot\": %lld, "
                 "\"worker\": %d, \"args\": [%lld, %lld, %lld, %lld, %lld, "
                 "%lld]}\n",
                 static_cast<long long>(ev.t_us), RqlTrace::TypeName(ev.type),
                 static_cast<long long>(ev.snapshot),
                 static_cast<int>(ev.worker),
                 static_cast<long long>(ev.args[0]),
                 static_cast<long long>(ev.args[1]),
                 static_cast<long long>(ev.args[2]),
                 static_cast<long long>(ev.args[3]),
                 static_cast<long long>(ev.args[4]),
                 static_cast<long long>(ev.args[5]));
  }
}

/// Dumps a MetricsRegistry snapshot (or delta) under `key` as
/// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum_us,
/// buckets}}}. Zero-valued counters/gauges are elided unless
/// `include_zero` (deltas read better without them; equality checks want
/// everything).
inline void WriteMetricsJson(JsonWriter* json, const char* key,
                             const retro::MetricsRegistry::Snapshot& snap,
                             bool include_zero = false) {
  json->BeginObject(key);
  json->BeginObject("counters");
  for (const auto& [name, v] : snap.counters) {
    if (include_zero || v != 0) json->Field(name.c_str(), v);
  }
  json->EndObject();
  json->BeginObject("gauges");
  for (const auto& [name, v] : snap.gauges) {
    if (include_zero || v != 0) json->Field(name.c_str(), v);
  }
  json->EndObject();
  json->BeginObject("histograms");
  for (const auto& [name, h] : snap.histograms) {
    if (!include_zero && h.count == 0) continue;
    json->BeginObject(name.c_str());
    json->Field("count", h.count);
    json->Field("sum_us", h.sum_us);
    json->BeginArray("buckets");
    for (int64_t b : h.buckets) json->Field(nullptr, b);
    json->EndArray();
    json->EndObject();
  }
  json->EndObject();
  json->EndObject();
}

}  // namespace rql::bench

#endif  // RQL_BENCH_BENCH_COMMON_H_

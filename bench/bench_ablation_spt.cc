// Ablation (design choice called out in DESIGN.md): SPT construction with
// the Skippy skip-level index vs. a naive linear Maplog scan. Skippy is
// the paper's cited mechanism (Shaull et al., SIGMOD'08) for keeping the
// scan length ~n log n instead of proportional to the history length.

#include "bench_common.h"

namespace rql::bench {
namespace {

struct Sample {
  double entries = 0;
  double pages = 0;
  double ms = 0;
};

Sample MeasureSpt(tpch::History* history, retro::SnapshotId snap,
                  bool skippy, int repeats) {
  retro::SnapshotStore* store = history->data()->store();
  store->maplog()->set_use_skippy(skippy);
  Sample sample;
  for (int r = 0; r < repeats; ++r) {
    store->ResetStats();
    auto view = store->OpenSnapshot(snap);
    if (!view.ok()) Fail(view.status(), "OpenSnapshot");
    const retro::SptBuildStats& spt = store->stats()->spt;
    sample.entries += static_cast<double>(spt.entries_scanned);
    sample.pages += static_cast<double>(spt.maplog_pages_read);
    sample.ms += store->stats()->SptUs(store->cost_model()) / 1000.0;
  }
  store->maplog()->set_use_skippy(true);
  sample.entries /= repeats;
  sample.pages /= repeats;
  sample.ms /= repeats;
  return sample;
}

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");
  tpch::History* history = uw30->get();
  retro::SnapshotId slast = history->last_snapshot();

  std::printf("Ablation: SPT build, Skippy skip levels vs linear Maplog "
              "scan (UW30, Slast=%u)\n", slast);
  std::printf("%-16s %12s %12s %10s %12s %12s %10s\n", "snapshot",
              "lin_entries", "lin_pages", "lin_ms", "sk_entries", "sk_pages",
              "sk_ms");
  const int offsets[] = {1, 2, 4, 8, 16, 32, 64, 128, 256,
                         static_cast<int>(slast) - 1};
  for (int offset : offsets) {
    auto snap = static_cast<retro::SnapshotId>(
        static_cast<int>(slast) - offset);
    if (snap < 1) continue;
    Sample linear = MeasureSpt(history, snap, /*skippy=*/false, 3);
    Sample skippy = MeasureSpt(history, snap, /*skippy=*/true, 3);
    std::printf("Slast-%-10d %12.0f %12.0f %10.2f %12.0f %12.0f %10.2f\n",
                offset, linear.entries, linear.pages, linear.ms,
                skippy.entries, skippy.pages, skippy.ms);
  }
  std::printf(
      "\nExpected: identical results (verified by tests); for old "
      "snapshots the\nlinear scan reads the whole Maplog suffix while "
      "Skippy reads each page's\nmapping roughly once per level, cutting "
      "entries and simulated I/O by ~4-10x.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Reproduces the Section 5.3 intervals study (reported in-text in the
// paper): memory footprint of CollateData vs. CollateDataIntoIntervals for
// Qq_int over 50 consecutive snapshots under four update workloads
// (UW7.5, UW15, UW30, UW60).
//
// Expected shape (paper): the CollateData result holds
// 50 x |orders| records regardless of workload; the intervals result is
// dramatically smaller and grows sublinearly as the per-snapshot update
// volume doubles from UW7.5 to UW60; the index adds roughly half of the
// result-table size again.

#include "bench_common.h"

namespace rql::bench {
namespace {

int Run() {
  const char* keys[] = {"uw7_5", "uw15_small", "uw30_small", "uw60"};
  const char* names[] = {"UW7.5", "UW15", "UW30", "UW60"};

  std::printf("Section 5.3: CollateData vs CollateDataIntoIntervals memory "
              "(Qq_int, 50 snapshots)\n");
  std::printf("%-8s %14s %14s %14s %14s %14s %12s\n", "workload",
              "collate_rows", "collate_kib", "interval_rows", "interval_kib",
              "index_kib", "ratio");
  for (int i = 0; i < 4; ++i) {
    auto history = GetHistory(keys[i]);
    if (!history.ok()) Fail(history.status(), keys[i]);
    tpch::History* h = history->get();
    RqlEngine* engine = h->engine();
    std::string qs = h->QsInterval(10, 50);

    BENCH_CHECK(engine->CollateData(qs, kQqInt, "CollateResult"));
    auto collate = h->meta()->GetTableStats("CollateResult");
    if (!collate.ok()) Fail(collate.status(), "collate stats");

    BENCH_CHECK(engine->CollateDataIntoIntervals(qs, kQqInt, "IntResult"));
    auto intervals = h->meta()->GetTableStats("IntResult");
    if (!intervals.ok()) Fail(intervals.status(), "interval stats");
    auto index = h->meta()->GetIndexStats("IntResult_rql_idx");
    uint64_t index_bytes = index.ok() ? index->bytes : 0;

    std::printf("%-8s %14llu %14.1f %14llu %14.1f %14.1f %12.1fx\n",
                names[i],
                static_cast<unsigned long long>(collate->rows),
                collate->bytes / 1024.0,
                static_cast<unsigned long long>(intervals->rows),
                intervals->bytes / 1024.0, index_bytes / 1024.0,
                collate->bytes /
                    std::max(1.0, static_cast<double>(intervals->bytes)));

    // Drop the large collate result so histories stay reusable on disk.
    BENCH_CHECK(h->meta()->Exec("DROP TABLE IF EXISTS CollateResult"));
    BENCH_CHECK(h->meta()->Exec("DROP TABLE IF EXISTS IntResult"));
  }
  std::printf(
      "\nExpected: collate_rows identical across workloads (50 x order "
      "count);\ninterval_rows grow with the update rate but far slower than "
      "2x per step;\nthe intervals representation is ~an order of magnitude "
      "smaller.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

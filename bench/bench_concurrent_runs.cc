// Store-scoped shared scan cache: concurrent RQL runs over one store.
//
// Four clients — each its own sql::Database handle Attach()ed to ONE
// SnapshotStore, its own metadata database and its own RqlEngine — run
// CollateData over heavily overlapping 40-snapshot intervals (staggered
// starts 1, 5, 9, 13; odd clients sweep descending so independent runs
// do not walk the history in lockstep), concurrently on four threads.
// The store simulates a bandwidth-limited cold archive — per-fetch
// latency plus a single fetch slot, so concurrent reads queue — and
// keeps a deliberately small snapshot page cache, so every decoded-page
// re-read the caching layer fails to absorb costs a real archive round
// trip. Three configurations:
//
//   oracle   each client sequentially, flag-off defaults, no simulated
//            latency: the byte-identity reference.
//   private  concurrent, reuse_decoded_pages: today's run-private cache.
//            Overlapping clients decode every shared page version once
//            PER CLIENT — up to 4x duplicated fetch + decode work.
//   shared   concurrent, one sql::SharedScanCache attached to all four
//            engines: cross-run hits, per-version single-flight decode,
//            and coalesced SPT builds in the store.
//
// Self-checks (CI gates):
//   * every unique page version is decoded exactly once in the shared
//     config (cache inserts == resident entries, no evictions, no
//     abandoned decodes);
//   * coalesced_decodes > 0 — concurrent runs actually blocked on each
//     other's in-flight decodes instead of duplicating them;
//   * per-iteration attribution is exact: client-summed hits / misses /
//     coalesced equal the cache's own global counters;
//   * aggregate throughput of the shared config is >= 2x the private
//     config under the same latency;
//   * both concurrent configs' result tables are byte-identical to the
//     sequential flag-off oracle, per client.
//
// Results go to BENCH_concurrent.json (CI artifact).

#include "bench_common.h"

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sql/shared_scan_cache.h"
#include "storage/env.h"

namespace rql::bench {
namespace {

constexpr int kClients = 4;
constexpr int kSnapshotsPerClient = 40;
/// Client i's interval starts at 1 + i*kStagger: consecutive clients
/// share 36 of their 40 snapshots, so most page versions are common.
constexpr int kStagger = 4;
constexpr int64_t kArchiveLatencyUs = 2000;
/// Far below the per-client working set, so a version evicted between
/// two clients' visits pays the archive latency again unless the shared
/// cache (which pins entries independently of the pool) serves it.
constexpr uint64_t kSnapshotCachePages = 32;
constexpr char kResultTable[] = "ConcOut";
/// Computationally trivial on purpose: per-iteration evaluation cost is
/// paid identically with or without the shared cache, so the query keeps
/// it minimal and the measurement isolates what the cache actually
/// shares — archive fetches, page decodes and SPT builds.
constexpr char kQqCount[] = "SELECT COUNT(*) FROM orders";

struct Client {
  std::unique_ptr<storage::InMemoryEnv> meta_env;
  std::unique_ptr<sql::Database> meta;
  std::unique_ptr<sql::Database> data;
  std::unique_ptr<RqlEngine> engine;
  std::string qs;
  // Harvested after each run.
  double wall_ms = 0;
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t coalesced = 0;
  std::vector<std::string> rows;  // encoded result table, in table order
};

/// Builds kClients independent engines over `history`'s data store. Each
/// gets a private in-memory metadata database seeded with the SnapIds
/// rows its Qs needs — the paper's architecture, one application client
/// at a time.
std::vector<Client> MakeClients(tpch::History* history,
                                const RqlOptions& base) {
  std::vector<Client> clients(kClients);
  for (int i = 0; i < kClients; ++i) {
    Client& c = clients[i];
    c.meta_env = std::make_unique<storage::InMemoryEnv>();
    auto meta = sql::Database::Open(c.meta_env.get(), "meta");
    if (!meta.ok()) Fail(meta.status(), "open client meta db");
    c.meta = std::move(*meta);
    auto data = sql::Database::Attach(history->data()->store());
    if (!data.ok()) Fail(data.status(), "attach client data db");
    c.data = std::move(*data);
    c.engine = std::make_unique<RqlEngine>(c.data.get(), c.meta.get(), base);
    BENCH_CHECK(c.engine->EnsureSnapIds());
    for (retro::SnapshotId s = 1; s <= history->last_snapshot(); ++s) {
      auto row = c.meta->AppendRow(
          "SnapIds", {sql::Value::Integer(s), sql::Value::Text("snap"),
                      sql::Value::Text("")});
      if (!row.ok()) Fail(row.status(), "populate client SnapIds");
    }
    c.qs = history->QsInterval(1 + i * kStagger, kSnapshotsPerClient);
    // Odd clients sweep their interval in descending order. Independent
    // clients are not synchronized in practice; lockstep ascending sweeps
    // would let even a tiny page cache serve every cross-client re-read,
    // hiding exactly the duplication this bench measures.
    if (i % 2 == 1) c.qs += " DESC";  // QsInterval ends in ORDER BY snap_id
  }
  return clients;
}

void RunOne(Client* c) {
  Stopwatch sw;
  BENCH_CHECK(c->engine->CollateData(c->qs, kQqCount, kResultTable));
  c->wall_ms = sw.ElapsedSeconds() * 1000.0;
  const RqlRunStats& stats = c->engine->last_run_stats();
  c->hits = stats.shared_page_hits;
  c->misses = stats.scan_cache_misses;
  c->coalesced = stats.coalesced_decodes;
  auto rows = c->meta->Query(std::string("SELECT * FROM ") + kResultTable);
  if (!rows.ok()) Fail(rows.status(), "dump result table");
  c->rows.clear();
  for (const sql::Row& row : rows->rows) {
    c->rows.push_back(sql::EncodeRow(row));
  }
}

/// Runs every client on its own thread; returns aggregate wall ms.
double RunConcurrent(std::vector<Client>* clients) {
  Stopwatch sw;
  std::vector<std::thread> threads;
  threads.reserve(clients->size());
  for (Client& c : *clients) {
    threads.emplace_back([&c] { RunOne(&c); });
  }
  for (std::thread& t : threads) t.join();
  return sw.ElapsedSeconds() * 1000.0;
}

void WriteConfigJson(JsonWriter* json, const char* key,
                     const std::vector<Client>& clients, double wall_ms) {
  json->BeginObject(key);
  json->Field("wall_ms", wall_ms);
  json->BeginArray("clients");
  for (const Client& c : clients) {
    json->BeginObject();
    json->Field("wall_ms", c.wall_ms);
    json->Field("scan_cache_hits", c.hits);
    json->Field("scan_cache_misses", c.misses);
    json->Field("coalesced_decodes", c.coalesced);
    json->Field("result_rows", static_cast<int64_t>(c.rows.size()));
    json->EndObject();
  }
  json->EndArray();
  json->EndObject();
}

int Run() {
  auto uw15 = GetHistory("uw15_small");
  if (!uw15.ok()) Fail(uw15.status(), "uw15_small history");
  tpch::History* history = uw15->get();
  retro::SnapshotStore* store = history->data()->store();

  std::printf("Shared scan cache: %d concurrent CollateData(Qq_io) runs, "
              "%d overlapping snapshots each, UW15\n\n",
              kClients, kSnapshotsPerClient);

  // Oracle: sequential, flag-off, no simulated latency. Defines the
  // byte-identity reference per client.
  RqlOptions oracle_opts;
  std::vector<Client> oracle = MakeClients(history, oracle_opts);
  for (Client& c : oracle) RunOne(&c);

  // Both concurrent configs run under identical store conditions: cold
  // page cache, simulated archive latency, a page cache far smaller than
  // the working set. cold_cache_per_run is off — it clears the shared
  // store cache, which concurrent runs must not do to each other.
  store->set_simulated_archive_latency_us(kArchiveLatencyUs);
  store->set_simulated_archive_fetch_slots(1);
  store->snapshot_cache()->set_capacity(kSnapshotCachePages);

  // Both concurrent configs run batch execution: page-at-a-time
  // evaluation keeps per-iteration CPU small relative to archive I/O,
  // which is the regime the shared cache targets (and exercises the
  // batch iterator against both cache implementations).
  RqlOptions private_opts;
  private_opts.cold_cache_per_run = false;
  private_opts.reuse_decoded_pages = true;
  private_opts.batch_execution = true;
  std::vector<Client> priv = MakeClients(history, private_opts);
  store->ClearSnapshotCache();
  const double wall_private = RunConcurrent(&priv);

  sql::SharedScanCache cache;
  RqlOptions shared_opts;
  shared_opts.cold_cache_per_run = false;
  shared_opts.shared_scan_cache = &cache;
  shared_opts.batch_execution = true;
  std::vector<Client> shared = MakeClients(history, shared_opts);
  store->ClearSnapshotCache();
  const int64_t spt_shared_before = store->shared_spt_builds_total();
  const double wall_shared = RunConcurrent(&shared);
  const int64_t spt_shared =
      store->shared_spt_builds_total() - spt_shared_before;

  store->set_simulated_archive_latency_us(0);
  store->set_simulated_archive_fetch_slots(0);
  const sql::SharedScanCache::Stats cs = cache.GetStats();

  int64_t sum_hits = 0;
  int64_t sum_misses = 0;
  int64_t sum_coalesced = 0;
  for (const Client& c : shared) {
    sum_hits += c.hits;
    sum_misses += c.misses;
    sum_coalesced += c.coalesced;
  }
  const double speedup = wall_shared > 0 ? wall_private / wall_shared : 0;

  std::printf("%-10s %10s %10s %10s %10s\n", "config", "wall_ms", "hits",
              "misses", "coalesced");
  auto print_config = [](const char* name, double wall_ms,
                         const std::vector<Client>& clients) {
    int64_t h = 0, m = 0, co = 0;
    for (const Client& c : clients) {
      h += c.hits;
      m += c.misses;
      co += c.coalesced;
    }
    std::printf("%-10s %10.2f %10lld %10lld %10lld\n", name, wall_ms,
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(co));
  };
  print_config("private", wall_private, priv);
  print_config("shared", wall_shared, shared);
  std::printf("\nshared-config speedup over private: %.1fx; cache: "
              "%llu entries, %llu bytes, %lld inserts, %lld evictions, "
              "%lld coalesced; %lld SPT builds shared\n",
              speedup, static_cast<unsigned long long>(cs.entries),
              static_cast<unsigned long long>(cs.bytes),
              static_cast<long long>(cs.inserts),
              static_cast<long long>(cs.evictions),
              static_cast<long long>(cs.coalesced_decodes),
              static_cast<long long>(spt_shared));

  bool checks_ok = true;
  for (int i = 0; i < kClients; ++i) {
    if (priv[i].rows != oracle[i].rows) {
      std::printf("CHECK FAILED: private-cache client %d result table "
                  "differs from the sequential oracle\n", i);
      checks_ok = false;
    }
    if (shared[i].rows != oracle[i].rows) {
      std::printf("CHECK FAILED: shared-cache client %d result table "
                  "differs from the sequential oracle\n", i);
      checks_ok = false;
    }
  }
  if (cs.inserts != static_cast<int64_t>(cs.entries) || cs.evictions != 0 ||
      cs.abandoned_decodes != 0) {
    std::printf("CHECK FAILED: expected every unique version decoded once "
                "(inserts=%lld entries=%llu evictions=%lld abandoned=%lld)\n",
                static_cast<long long>(cs.inserts),
                static_cast<unsigned long long>(cs.entries),
                static_cast<long long>(cs.evictions),
                static_cast<long long>(cs.abandoned_decodes));
    checks_ok = false;
  }
  if (cs.coalesced_decodes <= 0) {
    std::printf("CHECK FAILED: no coalesced decodes — concurrent runs "
                "never waited on each other's in-flight decode\n");
    checks_ok = false;
  }
  if (sum_hits != cs.shared_hits || sum_misses != cs.misses ||
      sum_coalesced != cs.coalesced_decodes) {
    std::printf("CHECK FAILED: per-iteration attribution drifted from the "
                "cache's global counters (clients %lld/%lld/%lld vs cache "
                "%lld/%lld/%lld)\n", static_cast<long long>(sum_hits),
                static_cast<long long>(sum_misses),
                static_cast<long long>(sum_coalesced),
                static_cast<long long>(cs.shared_hits),
                static_cast<long long>(cs.misses),
                static_cast<long long>(cs.coalesced_decodes));
    checks_ok = false;
  }
  if (wall_shared * 2 > wall_private) {
    std::printf("CHECK FAILED: shared %.2fms vs private %.2fms "
                "(< 2x aggregate throughput)\n", wall_shared, wall_private);
    checks_ok = false;
  }

  JsonWriter json("BENCH_concurrent.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  json.Field("clients", kClients);
  json.Field("snapshots_per_client", kSnapshotsPerClient);
  json.Field("archive_latency_us", kArchiveLatencyUs);
  json.Field("snapshot_cache_pages",
             static_cast<int64_t>(kSnapshotCachePages));
  WriteConfigJson(&json, "private", priv, wall_private);
  WriteConfigJson(&json, "shared", shared, wall_shared);
  json.BeginObject("shared_cache");
  json.Field("entries", static_cast<int64_t>(cs.entries));
  json.Field("bytes", static_cast<int64_t>(cs.bytes));
  json.Field("shared_hits", cs.shared_hits);
  json.Field("misses", cs.misses);
  json.Field("coalesced_decodes", cs.coalesced_decodes);
  json.Field("inserts", cs.inserts);
  json.Field("evictions", cs.evictions);
  json.Field("abandoned_decodes", cs.abandoned_decodes);
  json.EndObject();
  json.Field("shared_spt_builds", spt_shared);
  json.Field("shared_speedup_over_private", speedup, 2);
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf("\nExpected: byte-identical result tables in every config; "
              "the shared config\ndecodes each unique page version once "
              "across all four runs, coalesces racing\ndecodes, and "
              "finishes >= 2x faster in aggregate than run-private "
              "caches.\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Background prefetch pipeline: overlapping archive I/O with Qq compute.
//
// A sequential retrospective run alternates between fetching the archived
// pages iteration i needs and evaluating Qq over them. With
// RqlOptions::async_prefetch the engine issues the reads for iteration
// i+1 (delta head + residual tail, derived from the SPT mapping) while
// iteration i computes, so a latency-bound run approaches
// max(compute, fetch) per iteration instead of their sum.
//
// The bench makes the run latency-bound on purpose: simulated archive
// latency with a single fetch slot (the paper's remote-archive regime,
// Section 6.3), calibrated so the per-iteration fetch time is ~90% of the
// measured compute time — the regime where pipelining helps most and the
// ideal speedup is ~1.9x. Five runs on UW15:
//
//   oracle  all flags off, no latency: byte-identity reference,
//   calib   sync batch_pagelog_reads, no latency: per-iteration compute E,
//   trial   sync with a probe latency: measures effective per-iteration
//           fetch cost (sleep granularity included), yielding the
//           calibrated latency,
//   sync    sync batch_pagelog_reads under calibrated latency + 1 slot,
//   async   same + async_prefetch.
//
// Every run starts page-cold except snapshot 1's pages, which are warmed
// latency-free first so the one-off residual sweep of the first iteration
// (identical in sync and async) does not dilute the pipelining signal.
//
// Self-checks (CI gates): sync and async result tables byte-identical to
// the oracle, the async run serves prefetched pages (hits > 0), and async
// is >= 1.5x faster than sync by wall clock. Results go to
// BENCH_pipeline.json (CI artifact).

#include "bench_common.h"

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "retro/snapshot_store.h"

namespace rql::bench {
namespace {

constexpr int kSnapshots = 24;

struct RunConfig {
  bool batch = false;
  bool async = false;
  int64_t latency_us = 0;
};

struct RunResult {
  double wall_ms = 0;
  double steady_ms = 0;  // sum of per-iteration totals, cold one excluded
  int64_t iterations = 0;
  int64_t pagelog_pages = 0;
  int64_t prefetch_issued = 0;
  int64_t prefetch_hits = 0;
  int64_t prefetch_wasted = 0;
  int64_t prefetch_cancelled = 0;
  std::vector<std::string> rows;  // encoded result table, in table order
};

RunResult RunOnce(tpch::History* history, const std::string& qs,
                  const std::string& warm_qs, const std::string& qq,
                  const RunConfig& cfg) {
  retro::SnapshotStore* store = history->data()->store();
  RqlEngine* engine = history->engine();

  // Page-cold except snapshot 1: warm its pages latency-free so the first
  // iteration's residual sweep (unpipelineable, identical in every
  // configuration) does not dominate the measured interval. The warm run
  // batches, so the whole residual is warmed, not just Qq's footprint.
  // cold_cache_per_run (a paper-faithful default) would wipe the pool at
  // every run begin — cache control here is the explicit clear below.
  store->ClearSnapshotCache();
  store->set_simulated_archive_latency_us(0);
  store->set_simulated_archive_fetch_slots(0);
  RqlOptions* opt = engine->mutable_options();
  opt->cold_cache_per_run = false;
  opt->batch_pagelog_reads = true;
  opt->async_prefetch = false;
  BENCH_CHECK(engine->CollateData(warm_qs, qq, "PipelineWarm"));

  opt->batch_pagelog_reads = cfg.batch;
  opt->async_prefetch = cfg.async;
  opt->prefetch_budget_pages = 1024;
  store->set_simulated_archive_latency_us(cfg.latency_us);
  store->set_simulated_archive_fetch_slots(cfg.latency_us > 0 ? 1 : 0);

  Stopwatch sw;
  BENCH_CHECK(engine->CollateData(qs, qq, "Pipeline"));
  RunResult r;
  r.wall_ms = sw.ElapsedSeconds() * 1000.0;

  store->set_simulated_archive_latency_us(0);
  store->set_simulated_archive_fetch_slots(0);
  opt->batch_pagelog_reads = false;
  opt->async_prefetch = false;
  opt->cold_cache_per_run = true;

  const RqlRunStats& stats = engine->last_run_stats();
  r.iterations = static_cast<int64_t>(stats.iterations.size());
  for (size_t i = 0; i < stats.iterations.size(); ++i) {
    const RqlIterationStats& it = stats.iterations[i];
    if (i > 0) r.steady_ms += it.TotalUs() / 1000.0;
    r.pagelog_pages += it.pagelog_pages + it.batched_pagelog_reads;
    r.prefetch_issued += it.prefetch_issued;
    r.prefetch_hits += it.prefetch_hits;
    r.prefetch_wasted += it.prefetch_wasted;
    r.prefetch_cancelled += it.prefetch_cancelled;
  }
  auto rows = history->meta()->Query("SELECT * FROM Pipeline");
  if (!rows.ok()) Fail(rows.status(), "dump Pipeline");
  for (const sql::Row& row : rows->rows) {
    r.rows.push_back(sql::EncodeRow(row));
  }
  return r;
}

void WriteRunJson(JsonWriter* json, const char* key, const RunResult& r,
                  int64_t latency_us) {
  json->BeginObject(key);
  json->Field("wall_ms", r.wall_ms);
  json->Field("steady_ms", r.steady_ms);
  json->Field("iterations", r.iterations);
  json->Field("latency_us", latency_us);
  json->Field("pagelog_pages", r.pagelog_pages);
  json->Field("prefetch_issued", r.prefetch_issued);
  json->Field("prefetch_hits", r.prefetch_hits);
  json->Field("prefetch_wasted", r.prefetch_wasted);
  json->Field("prefetch_cancelled", r.prefetch_cancelled);
  json->EndObject();
}

int Run() {
  auto uw15 = GetHistory("uw15_small");
  if (!uw15.ok()) Fail(uw15.status(), "uw15_small history");
  tpch::History* history = uw15->get();

  const std::string qs = history->QsInterval(1, kSnapshots);
  const std::string warm_qs = history->QsInterval(1, 1);
  // The batched sweep fetches the whole per-snapshot delta (~all churned
  // tables), and the simulated fetch cannot cost less than the platform's
  // sleep granularity (~100us+), so the per-iteration fetch phase has a
  // hard floor of delta-pages x granularity. Qq must out-compute that
  // floor or nothing can hide behind it: a multi-aggregate pass over
  // lineitem — the bulk of the churned pages — is heavy enough, and its
  // footprint matches what the planners fetch.
  const std::string qq =
      "SELECT l_linenumber, COUNT(*) AS cn, SUM(l_quantity) AS sq, "
      "SUM(l_extendedprice) AS se, AVG(l_extendedprice) AS ae "
      "FROM lineitem GROUP BY l_linenumber";

  std::printf("Prefetch pipelining: CollateData(Qs_%d adjacent, lineitem "
              "aggregate), UW15, simulated archive latency, 1 fetch "
              "slot\n\n", kSnapshots);

  // Reference + calibration, both latency-free.
  RunResult oracle = RunOnce(history, qs, warm_qs, qq, {});
  RunConfig sync_cfg;
  sync_cfg.batch = true;
  RunResult calib = RunOnce(history, qs, warm_qs, qq, sync_cfg);

  const int64_t iters = std::max<int64_t>(calib.iterations, 1);
  const double compute_us = calib.wall_ms * 1000.0 / iters;

  // Calibrate the simulated latency so the run's total fetch time costs
  // ~75% of its total compute time. Wall clock, not per-iteration sums:
  // the batched sweep runs at snapshot-open time, outside the iteration
  // attribution. A probe run measures the *effective* per-run fetch cost
  // (the sleep has platform granularity well above small targets), then
  // one proportional correction lands close enough. 75% — not ~100%,
  // which maximizes the ideal ratio at 2x — leaves the pipeline
  // per-iteration headroom: the consuming iteration waits on any fetch
  // tail that outruns its compute window, so at parity scheduling jitter
  // turns directly into collect stalls. The ~1.75x ideal keeps a working
  // margin over the 1.5x gate.
  constexpr int64_t kProbeLatencyUs = 200;
  sync_cfg.latency_us = kProbeLatencyUs;
  RunResult trial = RunOnce(history, qs, warm_qs, qq, sync_cfg);
  const double fetch_ms = std::max(trial.wall_ms - calib.wall_ms, 1.0);
  // Affine cost model: each fetch pays the simulated latency plus a
  // constant per-page overhead (sleep granularity, slot handoff), so the
  // probe measurement extrapolates by slope pages-per-run, not
  // proportionally — a ratio correction would credit the overhead to the
  // latency term and overshoot.
  const double pages_per_run = std::max<double>(
      static_cast<double>(calib.pagelog_pages), 1.0);
  int64_t latency_us =
      kProbeLatencyUs +
      static_cast<int64_t>((0.75 * calib.wall_ms - fetch_ms) * 1000.0 /
                           pages_per_run);
  latency_us = std::min<int64_t>(std::max<int64_t>(latency_us, 50), 20000);

  std::printf("calibration: compute %.2f ms/iter (%.2f ms total), probe "
              "fetch %.2f ms total at %lld us -> latency %lld us\n\n",
              compute_us / 1000.0, calib.wall_ms, fetch_ms,
              static_cast<long long>(kProbeLatencyUs),
              static_cast<long long>(latency_us));

  sync_cfg.latency_us = latency_us;
  RunResult sync = RunOnce(history, qs, warm_qs, qq, sync_cfg);
  RunConfig async_cfg = sync_cfg;
  async_cfg.async = true;
  RunResult async = RunOnce(history, qs, warm_qs, qq, async_cfg);

  const double speedup = async.wall_ms > 0 ? sync.wall_ms / async.wall_ms : 0;
  const double steady_speedup =
      async.steady_ms > 0 ? sync.steady_ms / async.steady_ms : 0;

  std::printf("%-8s %9s %10s %8s %8s %8s %8s %8s\n", "run", "wall_ms",
              "steady_ms", "plogpg", "issued", "hits", "wasted", "cancel");
  auto print_row = [](const char* label, const RunResult& r) {
    std::printf("%-8s %9.2f %10.2f %8lld %8lld %8lld %8lld %8lld\n", label,
                r.wall_ms, r.steady_ms,
                static_cast<long long>(r.pagelog_pages),
                static_cast<long long>(r.prefetch_issued),
                static_cast<long long>(r.prefetch_hits),
                static_cast<long long>(r.prefetch_wasted),
                static_cast<long long>(r.prefetch_cancelled));
  };
  print_row("oracle", oracle);
  print_row("calib", calib);
  print_row("trial", trial);
  print_row("sync", sync);
  print_row("async", async);
  std::printf("\nasync speedup over sync: %.2fx wall (%.2fx steady-state)\n",
              speedup, steady_speedup);

  bool checks_ok = true;
  if (calib.pagelog_pages < calib.iterations) {
    std::printf("CHECK FAILED: too few archived pages fetched (%lld over "
                "%lld iterations) to exercise the pipeline\n",
                static_cast<long long>(calib.pagelog_pages),
                static_cast<long long>(calib.iterations));
    checks_ok = false;
  }
  if (sync.rows != oracle.rows) {
    std::printf("CHECK FAILED: sync result table differs from the "
                "flags-off oracle\n");
    checks_ok = false;
  }
  if (async.rows != oracle.rows) {
    std::printf("CHECK FAILED: async-prefetch result table differs from "
                "the flags-off oracle\n");
    checks_ok = false;
  }
  if (async.prefetch_issued <= 0 || async.prefetch_hits <= 0) {
    std::printf("CHECK FAILED: async run issued %lld prefetches with %lld "
                "hits; the pipeline never engaged\n",
                static_cast<long long>(async.prefetch_issued),
                static_cast<long long>(async.prefetch_hits));
    checks_ok = false;
  }
  if (async.prefetch_hits + async.prefetch_wasted > async.prefetch_issued) {
    std::printf("CHECK FAILED: prefetch accounting (hits %lld + wasted "
                "%lld > issued %lld)\n",
                static_cast<long long>(async.prefetch_hits),
                static_cast<long long>(async.prefetch_wasted),
                static_cast<long long>(async.prefetch_issued));
    checks_ok = false;
  }
  if (speedup < 1.5) {
    std::printf("CHECK FAILED: async %.2fms vs sync %.2fms "
                "(%.2fx < 1.5x)\n", async.wall_ms, sync.wall_ms, speedup);
    checks_ok = false;
  }

  JsonWriter json("BENCH_pipeline.json");
  json.BeginObject();
  json.Field("sf", Sf(), 4);
  json.Field("snapshots", kSnapshots);
  json.Field("calibrated_latency_us", latency_us);
  json.Field("fetch_slots", 1);
  json.Field("compute_us_per_iter", compute_us, 1);
  WriteRunJson(&json, "oracle", oracle, 0);
  WriteRunJson(&json, "calib", calib, 0);
  WriteRunJson(&json, "trial", trial, kProbeLatencyUs);
  WriteRunJson(&json, "sync", sync, latency_us);
  WriteRunJson(&json, "async", async, latency_us);
  json.Field("speedup", speedup, 2);
  json.Field("steady_speedup", steady_speedup, 2);
  json.Field("checks_ok", checks_ok);
  json.EndObject();
  json.Close();

  std::printf("\nExpected: identical result tables in oracle, sync and "
              "async runs; the async\nrun overlaps next-iteration archive "
              "fetches with Qq compute and finishes\n>= 1.5x faster under "
              "latency-bound I/O.\n");
  std::printf("checks: %s\n", checks_ok ? "OK" : "FAILED");
  return checks_ok ? 0 : 1;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

// Ablation (beyond the paper's figures): how much of the page-sharing
// benefit measured in Figure 6 comes from the snapshot page cache?
// Shrinking the cache to a single frame forces every shared pre-state to
// be re-fetched from the Pagelog, so the ratio C should climb back
// towards 1 — the all-cold behaviour.

#include "bench_common.h"

namespace rql::bench {
namespace {

double MeasureC(tpch::History* history, int interval_len,
                uint64_t cache_pages) {
  RqlEngine* engine = history->engine();
  storage::BufferPool* cache = history->data()->store()->snapshot_cache();
  uint64_t original = cache->capacity();
  cache->set_capacity(cache_pages);
  std::string qs = history->QsInterval(1, interval_len, 1);

  // Warm up once so both measured runs see the same environment.
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double rql_ms = RunTotalMs(engine->last_run_stats());

  engine->mutable_options()->cold_cache_per_iteration = true;
  BENCH_CHECK(engine->AggregateDataInVariable(qs, kQqIo, "Result", "avg"));
  double all_cold_ms = RunTotalMs(engine->last_run_stats());
  engine->mutable_options()->cold_cache_per_iteration = false;

  cache->set_capacity(original);
  return all_cold_ms > 0 ? rql_ms / all_cold_ms : 0.0;
}

int Run() {
  auto uw30 = GetHistory("uw30");
  if (!uw30.ok()) Fail(uw30.status(), "uw30 history");

  std::printf("Ablation: snapshot page cache capacity vs ratio C "
              "(AggV(Qs_30, Qq_io, AVG), UW30)\n");
  std::printf("%-22s %10s\n", "cache capacity", "ratio C");
  const uint64_t capacities[] = {1, 64, 256, 1024, 0 /* unbounded */};
  for (uint64_t cap : capacities) {
    double c = MeasureC(uw30->get(), 30, cap);
    std::printf("%-22s %10.3f\n",
                cap == 0 ? "unbounded" : std::to_string(cap).c_str(), c);
  }
  std::printf(
      "\nExpected: C near 1 with a one-page cache (no sharing benefit) and "
      "falling\nmonotonically to the Figure 6 plateau once the cache holds "
      "the query's\nsnapshot working set.\n");
  return 0;
}

}  // namespace
}  // namespace rql::bench

int main() { return rql::bench::Run(); }

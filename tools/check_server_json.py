#!/usr/bin/env python3
"""Schema check for the rql server's kStats JSON document (stdlib only).

Usage: check_server_json.py STATS.json
       rql_shell --connect SOCKET --pull-stats | check_server_json.py -

Validates the wire-protocol stats document CI pulls from a live
rql_serverd: the four sections (server, scheduler, scan_cache, store),
their field types, and the internal invariants a healthy server must
satisfy. Exits non-zero with a path-qualified message on the first
violation.
"""

import json
import sys

SECTIONS = {
    "server": {
        "active_sessions": int,
        "sessions_opened": int,
        "max_sessions": int,
        "runs_completed": int,
    },
    "scheduler": {
        "queued": int,
        "active": int,
        "queue_limit": int,
        "worker_budget": int,
        "admission_rejects": int,
        "completed": int,
        "cancelled": int,
    },
    "scan_cache": {
        "shared_hits": int,
        "misses": int,
        "coalesced_decodes": int,
        "inserts": int,
        "entries": int,
        "bytes": int,
    },
    "store": {
        "earliest_snapshot": int,
        "latest_snapshot": int,
    },
}


class SchemaError(Exception):
    pass


def require(cond, path, msg):
    if not cond:
        raise SchemaError(f"{path}: {msg}")


def check_stats(doc):
    require(isinstance(doc, dict), "$", "expected object")
    for section, fields in SECTIONS.items():
        require(section in doc, "$", f"missing section '{section}'")
        obj = doc[section]
        require(isinstance(obj, dict), f"$.{section}", "expected object")
        for name, typ in fields.items():
            require(name in obj, f"$.{section}", f"missing field '{name}'")
            require(
                isinstance(obj[name], typ) and not isinstance(obj[name], bool),
                f"$.{section}.{name}", f"expected {typ.__name__}")

    server = doc["server"]
    require(0 <= server["active_sessions"] <= server["max_sessions"],
            "$.server", "active_sessions outside [0, max_sessions]")
    require(server["sessions_opened"] >= server["active_sessions"],
            "$.server", "fewer sessions opened than active")

    sched = doc["scheduler"]
    require(sched["queued"] >= 0 and sched["active"] >= 0, "$.scheduler",
            "negative queue depth")
    require(sched["queued"] <= sched["queue_limit"], "$.scheduler",
            "queued beyond the admission limit")
    require(sched["cancelled"] <= sched["completed"], "$.scheduler",
            "more cancellations than completions")

    cache = doc["scan_cache"]
    require(cache["inserts"] <= cache["misses"], "$.scan_cache",
            "more publishes than claimed decodes")
    require(cache["entries"] <= cache["inserts"], "$.scan_cache",
            "more resident entries than publishes")
    require((cache["bytes"] > 0) == (cache["entries"] > 0), "$.scan_cache",
            "bytes/entries disagree about residency")

    store = doc["store"]
    require(store["earliest_snapshot"] <= store["latest_snapshot"] + 1,
            "$.store", "earliest snapshot beyond latest+1")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        if sys.argv[1] == "-":
            doc = json.load(sys.stdin)
        else:
            with open(sys.argv[1]) as f:
                doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_server_json: cannot load {sys.argv[1]}: {e}",
              file=sys.stderr)
        return 1
    try:
        check_stats(doc)
    except SchemaError as e:
        print(f"check_server_json: {e}", file=sys.stderr)
        return 1
    print(f"check_server_json: ok (sessions={doc['server']['active_sessions']}"
          f", runs_completed={doc['server']['runs_completed']})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

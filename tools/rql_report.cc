// rql_report: "EXPLAIN ANALYZE for RQL".
//
// Builds a small self-contained history (InMemoryEnv, no TPC-H data
// needed), runs all four retrospective mechanisms with tracing and
// cross-run memoization on — twice each, a cold pass that publishes the
// memo and a warm pass that replays it — and renders what the engine did
// per iteration: the Figure 8 phase breakdown (archive I/O, SPT build,
// Qq evaluation, index creation, UDF time) next to the page and row
// counts, plus the metrics-registry delta for each run, the memo-table
// totals, and the component gauges at exit.
//
// Every number is read through the observability layer — the per-run
// RqlTrace ring and the retro::MetricsRegistry delta — never by reaching
// into RqlRunStats, so this tool doubles as an end-to-end check of that
// layer (CI runs it with --json and validates the output against
// tools/check_report_json.py).
//
// Usage:
//   rql_report [--snapshots=N] [--workers=N] [--trace-capacity=N]
//              [--json=PATH] [--jsonl=PATH]

#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "rql/memo_table.h"
#include "rql/rql.h"
#include "sql/shared_scan_cache.h"

namespace rql::bench {
namespace {

struct ReportOptions {
  int snapshots = 8;
  int workers = 1;
  int64_t trace_capacity = 4096;
  std::string json_path;   // empty = no JSON artifact
  std::string jsonl_path;  // empty = no JSONL event stream
};

// One rendered row of the per-iteration table, assembled from the trace
// events that share a snapshot (iteration_begin/spt_build/archive_fetch/
// scan_cache/iteration_end, or a lone iteration_skip).
struct IterRow {
  int64_t index = -1;
  retro::SnapshotId snapshot = retro::kNoSnapshot;
  uint16_t worker = 0;
  bool skipped = false;
  bool memo_hit = false;
  int64_t validated_pages = 0;  // memo-hit rows: read-set pages validated
  int64_t io_us = 0, spt_us = 0, query_us = 0, index_us = 0, udf_us = 0;
  int64_t qq_rows = 0;
  int64_t maplog_pages = 0, pagelog_pages = 0, cache_hits = 0, db_pages = 0;
  int64_t scan_hits = 0, scan_misses = 0;
  int64_t delta_pages = 0;  // skip rows: changed pages in the read set
  // Background prefetch (async_prefetch): the iteration's kPrefetch event.
  bool prefetched = false;
  int64_t prefetch_issued = 0, prefetch_hits = 0, prefetch_cancelled = 0;
  int64_t prefetch_overlap_us = 0;

  int64_t TotalUs() const {
    return io_us + spt_us + query_us + index_us + udf_us;
  }
};

// Folds the flat event stream back into per-iteration rows. Events are
// keyed by (snapshot, worker) while in flight so interleaved parallel
// workers do not corrupt each other's rows.
std::vector<IterRow> RowsFromTrace(const RqlTrace& trace) {
  std::vector<IterRow> rows;
  std::map<std::pair<retro::SnapshotId, uint16_t>, IterRow> pending;
  for (const RqlTraceEvent& ev : trace.Events()) {
    auto key = std::make_pair(ev.snapshot, ev.worker);
    switch (ev.type) {
      case RqlTraceEventType::kIterationBegin: {
        IterRow row;
        row.index = ev.args[0];
        row.snapshot = ev.snapshot;
        row.worker = ev.worker;
        pending[key] = row;
        break;
      }
      case RqlTraceEventType::kSptBuild: {
        IterRow& row = pending[key];
        row.maplog_pages = ev.args[0];
        break;
      }
      case RqlTraceEventType::kArchiveFetch: {
        IterRow& row = pending[key];
        row.pagelog_pages = ev.args[0];
        row.cache_hits = ev.args[2];
        row.db_pages = ev.args[3];
        break;
      }
      case RqlTraceEventType::kScanCache: {
        if (ev.snapshot == retro::kNoSnapshot) break;  // run-level summary
        IterRow& row = pending[key];
        row.scan_hits = ev.args[0];
        row.scan_misses = ev.args[1];
        break;
      }
      case RqlTraceEventType::kPrefetch: {
        IterRow& row = pending[key];
        row.prefetched = true;
        row.prefetch_issued = ev.args[0];
        row.prefetch_hits = ev.args[1];
        row.prefetch_cancelled = ev.args[2];
        row.prefetch_overlap_us = ev.args[3];
        break;
      }
      case RqlTraceEventType::kIterationEnd: {
        IterRow row = pending[key];
        pending.erase(key);
        row.snapshot = ev.snapshot;
        row.worker = ev.worker;
        row.io_us = ev.args[0];
        row.spt_us = ev.args[1];
        row.query_us = ev.args[2];
        row.index_us = ev.args[3];
        row.udf_us = ev.args[4];
        row.qq_rows = ev.args[5];
        rows.push_back(row);
        break;
      }
      case RqlTraceEventType::kMemoHit: {
        // Parallel runs emit begin/end around the worker's probe and the
        // replay loop adds the memo_hit event afterwards: fold it into
        // the worker's row. Sequential hits have no begin/end pair, so
        // the event stands alone.
        bool merged = false;
        for (auto it = rows.rbegin(); it != rows.rend(); ++it) {
          if (it->snapshot == ev.snapshot && !it->memo_hit && !it->skipped) {
            it->memo_hit = true;
            it->validated_pages = ev.args[1];
            it->qq_rows = ev.args[2];
            it->udf_us += ev.args[3];
            merged = true;
            break;
          }
        }
        if (merged) break;
        IterRow row;
        row.index = ev.args[0];
        row.snapshot = ev.snapshot;
        row.worker = ev.worker;
        row.memo_hit = true;
        row.validated_pages = ev.args[1];
        row.qq_rows = ev.args[2];
        row.udf_us = ev.args[3];
        rows.push_back(row);
        break;
      }
      case RqlTraceEventType::kIterationSkip: {
        IterRow row;
        row.index = ev.args[0];
        row.snapshot = ev.snapshot;
        row.worker = ev.worker;
        row.skipped = true;
        row.delta_pages = ev.args[1];
        row.qq_rows = ev.args[2];
        row.udf_us = ev.args[3];
        rows.push_back(row);
        break;
      }
      default:
        break;  // run begin/end, worker_stall: rendered separately
    }
  }
  return rows;
}

void PrintIterationTable(const std::vector<IterRow>& rows) {
  std::printf("  %-4s %-6s %8s %8s %9s %9s %8s %9s %8s %7s %6s  %s\n", "it",
              "snap", "io_ms", "spt_ms", "query_ms", "index_ms", "udf_ms",
              "total_ms", "qq_rows", "plog_pg", "db_pg", "note");
  for (size_t i = 0; i < rows.size(); ++i) {
    const IterRow& r = rows[i];
    std::string note;
    if (r.memo_hit) {
      note = "memo hit (validated_pages=" + std::to_string(r.validated_pages) +
             ", replayed_rows=" + std::to_string(r.qq_rows) + ")";
    } else if (r.skipped) {
      note = "skipped (delta_pages=" + std::to_string(r.delta_pages) +
             ", replayed_rows=" + std::to_string(r.qq_rows) + ")";
    } else if (r.scan_hits + r.scan_misses > 0) {
      note = "scan_cache " + std::to_string(r.scan_hits) + "/" +
             std::to_string(r.scan_hits + r.scan_misses) + " hit";
    }
    if (r.prefetched) {
      if (!note.empty()) note += "; ";
      note += "prefetch issued=" + std::to_string(r.prefetch_issued) +
              " hits=" + std::to_string(r.prefetch_hits) +
              " cancelled=" + std::to_string(r.prefetch_cancelled);
    }
    std::printf("  %-4lld %-6u %8.2f %8.2f %9.2f %9.2f %8.2f %9.2f %8lld "
                "%7lld %6lld  %s\n",
                static_cast<long long>(r.index >= 0
                                           ? r.index
                                           : static_cast<int64_t>(i)),
                r.snapshot, r.io_us / 1000.0, r.spt_us / 1000.0,
                r.query_us / 1000.0, r.index_us / 1000.0, r.udf_us / 1000.0,
                r.TotalUs() / 1000.0, static_cast<long long>(r.qq_rows),
                static_cast<long long>(r.pagelog_pages),
                static_cast<long long>(r.db_pages), note.c_str());
  }
}

void PrintMetricsDelta(const retro::MetricsRegistry::Snapshot& delta) {
  std::printf("  metrics delta:\n");
  for (const auto& [name, v] : delta.counters) {
    if (v != 0) {
      std::printf("    %-32s %12lld\n", name.c_str(),
                  static_cast<long long>(v));
    }
  }
  for (const auto& [name, h] : delta.histograms) {
    if (h.count == 0) continue;
    std::printf("    %-32s count=%lld sum_us=%lld mean_us=%.0f\n",
                name.c_str(), static_cast<long long>(h.count),
                static_cast<long long>(h.sum_us),
                static_cast<double>(h.sum_us) / static_cast<double>(h.count));
  }
}

struct MechanismRun {
  std::string name;
  std::string table;
  const char* pass = "cold";  // "cold" publishes the memo, "warm" replays
  RqlTrace trace;  // copy of the engine's last-run trace
  retro::MetricsRegistry::Snapshot delta;
  std::vector<IterRow> rows;
};

// The LoggedIn-style synthetic history: `orders` changes on most
// snapshots; every third snapshot only touches `audit`, leaving `orders`
// byte-identical so skip_unchanged_iterations has something to skip.
Status BuildHistory(RqlEngine* engine, sql::Database* data, int snapshots) {
  RQL_RETURN_IF_ERROR(engine->EnsureSnapIds());
  RQL_RETURN_IF_ERROR(data->Exec(
      "CREATE TABLE orders (o_id INTEGER, o_status TEXT, o_price REAL)"));
  RQL_RETURN_IF_ERROR(
      data->Exec("CREATE TABLE audit (a_id INTEGER, a_note TEXT)"));
  int next_id = 1;
  for (int i = 1; i <= snapshots; ++i) {
    if (i > 1 && i % 3 == 0) {
      // Orders untouched: this iteration is skip-eligible.
      RQL_RETURN_IF_ERROR(data->Exec(
          "BEGIN; INSERT INTO audit VALUES (" + std::to_string(i) +
          ", 'no-op day')"));
    } else {
      std::string sql = "BEGIN";
      for (int r = 0; r < 4; ++r) {
        int id = next_id++;
        sql += "; INSERT INTO orders VALUES (" + std::to_string(id) + ", '" +
               (id % 2 == 0 ? "O" : "F") + "', " +
               std::to_string(100 + id) + ".5)";
      }
      // Flip one status so CollateDataIntoIntervals sees closing runs.
      sql += "; UPDATE orders SET o_status = 'F' WHERE o_id = " +
             std::to_string((i * 2) % next_id);
      RQL_RETURN_IF_ERROR(data->Exec(sql));
    }
    char ts[32];
    std::snprintf(ts, sizeof(ts), "2008-11-%02d 23:59:59", i);
    RQL_ASSIGN_OR_RETURN(retro::SnapshotId sid,
                         engine->CommitWithSnapshot(ts));
    (void)sid;
  }
  return Status::OK();
}

int Run(const ReportOptions& opt) {
  storage::InMemoryEnv env;
  auto data = sql::Database::Open(&env, "data");
  auto meta = sql::Database::Open(&env, "meta");
  if (!data.ok()) Fail(data.status(), "open data");
  if (!meta.ok()) Fail(meta.status(), "open meta");
  RqlEngine engine(data->get(), meta->get());

  Status built = BuildHistory(&engine, data->get(), opt.snapshots);
  if (!built.ok()) Fail(built, "build history");

  // Locally scoped registry: the engine and the store gauges both outlive
  // it being read, and a fresh registry keeps the report's deltas clean
  // of anything the process-wide default has accumulated.
  retro::MetricsRegistry registry;
  ScopedCleanup store_gauges = (*data)->store()->RegisterMetrics(&registry);

  // Store-scoped shared scan cache: the eight passes below all read the
  // same store, so each unique page version is decoded once by the first
  // mechanism to touch it and served as a shared hit to the other seven.
  sql::SharedScanCache shared_cache;
  ScopedCleanup cache_gauges =
      shared_cache.RegisterMetrics(&registry, "rql.scan_cache");

  RqlOptions* opts = engine.mutable_options();
  opts->trace = true;
  opts->trace_capacity = static_cast<size_t>(opt.trace_capacity);
  opts->metrics = &registry;
  opts->parallel_workers = opt.workers;
  opts->incremental_spt = true;
  opts->reuse_qq_plan = true;
  opts->batch_pagelog_reads = true;
  opts->reuse_decoded_pages = true;
  opts->skip_unchanged_iterations = true;
  opts->shared_scan_cache = &shared_cache;
  // Background archive prefetch: sequential runs overlap each iteration's
  // I/O with the previous one's execution (parallel runs ignore the flag).
  opts->async_prefetch = true;

  // Cross-run memoization: every mechanism runs twice, a cold pass that
  // publishes per-iteration results into the memo and a warm pass that
  // replays them — so the report shows both sides of the memo counters
  // and the memo_hit trace rows.
  auto memo = retro::MemoTable::Open(&env, "report_memo");
  if (!memo.ok()) Fail(memo.status(), "open memo table");
  opts->memoize_iterations = true;
  opts->memo = memo->get();

  const std::string qs = "SELECT snap_id FROM SnapIds";
  struct Mechanism {
    const char* name;
    const char* table;
    std::function<Status()> run;
  };
  const Mechanism mechanisms[] = {
      {"CollateData", "RepCollate",
       [&] {
         return engine.CollateData(
             qs,
             "SELECT o_id, current_snapshot() AS sid FROM orders "
             "WHERE o_status = 'O'",
             "RepCollate");
       }},
      {"AggregateDataInVariable", "RepAggVar",
       [&] {
         return engine.AggregateDataInVariable(
             qs, "SELECT COUNT(*) AS open_cnt FROM orders "
                 "WHERE o_status = 'O'",
             "RepAggVar", "avg");
       }},
      {"AggregateDataInTable", "RepAggTab",
       [&] {
         return engine.AggregateDataInTable(
             qs, "SELECT o_id, o_price FROM orders", "RepAggTab",
             "(o_price,max)");
       }},
      {"CollateDataIntoIntervals", "RepIntervals",
       [&] {
         return engine.CollateDataIntoIntervals(
             qs, "SELECT o_id, o_status FROM orders", "RepIntervals");
       }},
  };

  std::printf("rql_report: %d snapshots, %d worker%s, all amortizations on, "
              "trace capacity %lld\n",
              opt.snapshots, opt.workers, opt.workers == 1 ? "" : "s",
              static_cast<long long>(opt.trace_capacity));

  std::vector<MechanismRun> runs;
  for (const char* pass : {"cold", "warm"}) {
    for (const Mechanism& m : mechanisms) {
      retro::MetricsRegistry::Snapshot before = registry.TakeSnapshot();
      Status s = m.run();
      if (!s.ok()) Fail(s, m.name);
      MechanismRun run;
      run.name = m.name;
      run.table = m.table;
      run.pass = pass;
      run.trace = engine.last_run_trace();
      run.delta = registry.TakeSnapshot().DeltaFrom(before);
      run.rows = RowsFromTrace(run.trace);

      std::printf("\n== %s -> %s (%s) ==\n", run.name.c_str(),
                  run.table.c_str(), pass);
      PrintIterationTable(run.rows);
      if (run.trace.dropped() > 0) {
        std::printf("  (trace dropped %lld oldest events; raise "
                    "--trace-capacity for a full stream)\n",
                    static_cast<long long>(run.trace.dropped()));
      }
      PrintMetricsDelta(run.delta);
      runs.push_back(std::move(run));
    }
  }

  std::printf("\n== memo table ==\n");
  std::printf("  %-32s %12lld\n", "entries",
              static_cast<long long>((*memo)->entry_count()));
  std::printf("  %-32s %12lld\n", "bytes",
              static_cast<long long>((*memo)->bytes()));
  std::printf("  %-32s %12lld\n", "log_bytes",
              static_cast<long long>((*memo)->log_bytes()));
  std::printf("  %-32s %12lld\n", "evictions",
              static_cast<long long>((*memo)->evictions()));

  const sql::SharedScanCache::Stats cache_stats = shared_cache.GetStats();
  std::printf("\n== shared scan cache ==\n");
  std::printf("  %-32s %12lld\n", "entries",
              static_cast<long long>(cache_stats.entries));
  std::printf("  %-32s %12lld\n", "bytes",
              static_cast<long long>(cache_stats.bytes));
  std::printf("  %-32s %12lld\n", "shared_hits",
              static_cast<long long>(cache_stats.shared_hits));
  std::printf("  %-32s %12lld\n", "misses",
              static_cast<long long>(cache_stats.misses));
  std::printf("  %-32s %12lld\n", "coalesced_decodes",
              static_cast<long long>(cache_stats.coalesced_decodes));
  std::printf("  %-32s %12lld\n", "inserts",
              static_cast<long long>(cache_stats.inserts));
  std::printf("  %-32s %12lld\n", "evictions",
              static_cast<long long>(cache_stats.evictions));
  std::printf("  %-32s %12lld\n", "abandoned_decodes",
              static_cast<long long>(cache_stats.abandoned_decodes));
  std::printf("  %-32s %12lld\n", "truncate_invalidations",
              static_cast<long long>(cache_stats.truncate_invalidations));

  // Background prefetch totals, accumulated from the per-run registry
  // deltas (the same numbers the kPrefetch trace rows carry per
  // iteration).
  int64_t pf_issued = 0, pf_hits = 0, pf_wasted = 0, pf_cancelled = 0;
  int64_t pf_overlap_count = 0, pf_overlap_sum_us = 0;
  for (const MechanismRun& run : runs) {
    auto counter = [&run](const char* name) -> int64_t {
      auto it = run.delta.counters.find(name);
      return it == run.delta.counters.end() ? 0 : it->second;
    };
    pf_issued += counter("rql.prefetch_issued");
    pf_hits += counter("rql.prefetch_hits");
    pf_wasted += counter("rql.prefetch_wasted");
    pf_cancelled += counter("rql.prefetch_cancelled");
    auto hit = run.delta.histograms.find("rql.prefetch.overlap_us");
    if (hit != run.delta.histograms.end()) {
      pf_overlap_count += hit->second.count;
      pf_overlap_sum_us += hit->second.sum_us;
    }
  }
  std::printf("\n== background prefetch (async_prefetch) ==\n");
  std::printf("  %-32s %12lld\n", "issued", static_cast<long long>(pf_issued));
  std::printf("  %-32s %12lld\n", "hits", static_cast<long long>(pf_hits));
  std::printf("  %-32s %12lld\n", "wasted", static_cast<long long>(pf_wasted));
  std::printf("  %-32s %12lld\n", "cancelled",
              static_cast<long long>(pf_cancelled));
  std::printf("  %-32s %12lld\n", "overlap_jobs",
              static_cast<long long>(pf_overlap_count));
  std::printf("  %-32s %12lld\n", "overlap_sum_us",
              static_cast<long long>(pf_overlap_sum_us));

  retro::MetricsRegistry::Snapshot final_snap = registry.TakeSnapshot();
  // Pagelog diff-chain depth observed per archive read over the whole
  // report (always a single zero-depth bucket in kFull mode).
  {
    auto it = final_snap.histograms.find("rql.pagelog.diff_depth");
    std::printf("\n== pagelog diff-chain depth ==\n");
    if (it != final_snap.histograms.end() && it->second.count > 0) {
      std::printf("  %-32s %12lld\n", "reads_observed",
                  static_cast<long long>(it->second.count));
      std::printf("  %-32s %12.2f\n", "mean_depth",
                  static_cast<double>(it->second.sum_us) /
                      static_cast<double>(it->second.count));
    } else {
      std::printf("  (no archive reads observed)\n");
    }
  }
  std::printf("\n== component gauges (point-in-time) ==\n");
  for (const auto& [name, v] : final_snap.gauges) {
    std::printf("  %-32s %12lld\n", name.c_str(), static_cast<long long>(v));
  }

  if (!opt.json_path.empty()) {
    JsonWriter json(opt.json_path.c_str());
    json.BeginObject();
    json.Field("snapshots", opt.snapshots);
    json.Field("workers", opt.workers);
    json.Field("trace_capacity", opt.trace_capacity);
    json.BeginArray("runs");
    for (const MechanismRun& run : runs) {
      json.BeginObject();
      json.Field("mechanism", run.name);
      json.Field("table", run.table);
      json.Field("pass", run.pass);
      json.BeginArray("iterations");
      for (const IterRow& r : run.rows) {
        json.BeginObject();
        json.Field("index", r.index);
        json.Field("snapshot", static_cast<int64_t>(r.snapshot));
        json.Field("worker", static_cast<int64_t>(r.worker));
        json.Field("skipped", r.skipped);
        json.Field("memo_hit", r.memo_hit);
        json.Field("validated_pages", r.validated_pages);
        json.Field("io_us", r.io_us);
        json.Field("spt_build_us", r.spt_us);
        json.Field("query_eval_us", r.query_us);
        json.Field("index_create_us", r.index_us);
        json.Field("udf_us", r.udf_us);
        json.Field("total_us", r.TotalUs());
        json.Field("qq_rows", r.qq_rows);
        json.Field("maplog_pages", r.maplog_pages);
        json.Field("pagelog_pages", r.pagelog_pages);
        json.Field("cache_hits", r.cache_hits);
        json.Field("db_pages", r.db_pages);
        json.Field("delta_pages", r.delta_pages);
        json.Field("prefetched", r.prefetched);
        json.Field("prefetch_issued", r.prefetch_issued);
        json.Field("prefetch_hits", r.prefetch_hits);
        json.Field("prefetch_cancelled", r.prefetch_cancelled);
        json.Field("prefetch_overlap_us", r.prefetch_overlap_us);
        json.EndObject();
      }
      json.EndArray();
      WriteMetricsJson(&json, "metrics", run.delta);
      WriteTraceJson(&json, "trace", run.trace);
      json.EndObject();
    }
    json.EndArray();
    json.BeginObject("memo");
    json.Field("entries", static_cast<int64_t>((*memo)->entry_count()));
    json.Field("bytes", static_cast<int64_t>((*memo)->bytes()));
    json.Field("log_bytes", static_cast<int64_t>((*memo)->log_bytes()));
    json.Field("evictions", static_cast<int64_t>((*memo)->evictions()));
    json.EndObject();
    json.BeginObject("shared_cache");
    json.Field("entries", static_cast<int64_t>(cache_stats.entries));
    json.Field("bytes", static_cast<int64_t>(cache_stats.bytes));
    json.Field("shared_hits", cache_stats.shared_hits);
    json.Field("misses", cache_stats.misses);
    json.Field("coalesced_decodes", cache_stats.coalesced_decodes);
    json.Field("inserts", cache_stats.inserts);
    json.Field("evictions", cache_stats.evictions);
    json.Field("abandoned_decodes", cache_stats.abandoned_decodes);
    json.Field("truncate_invalidations", cache_stats.truncate_invalidations);
    json.EndObject();
    json.BeginObject("prefetch");
    json.Field("issued", pf_issued);
    json.Field("hits", pf_hits);
    json.Field("wasted", pf_wasted);
    json.Field("cancelled", pf_cancelled);
    json.Field("overlap_jobs", pf_overlap_count);
    json.Field("overlap_sum_us", pf_overlap_sum_us);
    json.EndObject();
    WriteMetricsJson(&json, "final", final_snap, /*include_zero=*/true);
    json.EndObject();
    json.Close();
    std::printf("\nwrote %s\n", opt.json_path.c_str());
  }

  if (!opt.jsonl_path.empty()) {
    std::FILE* f = std::fopen(opt.jsonl_path.c_str(), "w");
    if (f == nullptr) {
      Fail(Status::Internal("cannot open " + opt.jsonl_path), "jsonl");
    }
    for (const MechanismRun& run : runs) {
      std::fprintf(f, "{\"mechanism\": \"%s\"}\n", run.name.c_str());
      WriteTraceJsonl(run.trace, f);
    }
    std::fclose(f);
    std::printf("wrote %s\n", opt.jsonl_path.c_str());
  }
  return 0;
}

bool ParseArg(const char* arg, const char* name, const char** value) {
  size_t n = std::strlen(name);
  if (std::strncmp(arg, name, n) != 0 || arg[n] != '=') return false;
  *value = arg + n + 1;
  return true;
}

}  // namespace
}  // namespace rql::bench

int main(int argc, char** argv) {
  rql::bench::ReportOptions opt;
  for (int i = 1; i < argc; ++i) {
    const char* v = nullptr;
    if (rql::bench::ParseArg(argv[i], "--snapshots", &v)) {
      opt.snapshots = std::atoi(v);
    } else if (rql::bench::ParseArg(argv[i], "--workers", &v)) {
      opt.workers = std::atoi(v);
    } else if (rql::bench::ParseArg(argv[i], "--trace-capacity", &v)) {
      opt.trace_capacity = std::atoll(v);
    } else if (rql::bench::ParseArg(argv[i], "--json", &v)) {
      opt.json_path = v;
    } else if (rql::bench::ParseArg(argv[i], "--jsonl", &v)) {
      opt.jsonl_path = v;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--snapshots=N] [--workers=N] "
                   "[--trace-capacity=N] [--json=PATH] [--jsonl=PATH]\n",
                   argv[0]);
      return 2;
    }
  }
  if (opt.snapshots < 1 || opt.workers < 1 || opt.trace_capacity < 1) {
    std::fprintf(stderr, "rql_report: all numeric flags must be >= 1\n");
    return 2;
  }
  return rql::bench::Run(opt);
}

#!/usr/bin/env python3
"""Schema check for rql_report --json output (stdlib only).

Usage: check_report_json.py REPORT.json

Validates the structure CI depends on: the four mechanisms each run as a
cold (memo-publishing) and a warm (memo-replaying) pass, each with a
per-iteration phase breakdown, a metrics delta, and a well-formed bounded
trace, plus the memo-table totals. Exits non-zero with a path-qualified
message on the first violation.
"""

import json
import sys

EVENT_TYPES = {
    "run_begin", "run_end", "iteration_begin", "iteration_end",
    "spt_build", "archive_fetch", "scan_cache", "iteration_skip",
    "worker_stall", "memo_hit", "prefetch",
}

PASSES = {"cold", "warm"}

MECHANISMS = {
    "CollateData", "AggregateDataInVariable", "AggregateDataInTable",
    "CollateDataIntoIntervals",
}

ITERATION_FIELDS = {
    "index": int, "snapshot": int, "worker": int, "skipped": bool,
    "memo_hit": bool, "validated_pages": int,
    "io_us": int, "spt_build_us": int, "query_eval_us": int,
    "index_create_us": int, "udf_us": int, "total_us": int, "qq_rows": int,
    "maplog_pages": int, "pagelog_pages": int, "cache_hits": int,
    "db_pages": int, "delta_pages": int,
    "prefetched": bool, "prefetch_issued": int, "prefetch_hits": int,
    "prefetch_cancelled": int, "prefetch_overlap_us": int,
}


class SchemaError(Exception):
    pass


def require(cond, path, msg):
    if not cond:
        raise SchemaError(f"{path}: {msg}")


def check_typed_fields(obj, fields, path):
    require(isinstance(obj, dict), path, "expected object")
    for name, typ in fields.items():
        require(name in obj, path, f"missing field '{name}'")
        # bool is an int subclass in Python; keep the check strict.
        ok = isinstance(obj[name], typ) and (
            typ is bool or not isinstance(obj[name], bool))
        require(ok, f"{path}.{name}", f"expected {typ.__name__}")


def check_metrics(metrics, path):
    require(isinstance(metrics, dict), path, "expected object")
    for section in ("counters", "gauges", "histograms"):
        require(section in metrics, path, f"missing '{section}'")
        require(isinstance(metrics[section], dict), f"{path}.{section}",
                "expected object")
    for name, v in metrics["counters"].items():
        require(isinstance(v, int), f"{path}.counters.{name}",
                "expected integer")
    for name, v in metrics["gauges"].items():
        require(isinstance(v, int), f"{path}.gauges.{name}",
                "expected integer")
    for name, h in metrics["histograms"].items():
        hpath = f"{path}.histograms.{name}"
        check_typed_fields(h, {"count": int, "sum_us": int}, hpath)
        require(isinstance(h.get("buckets"), list), hpath,
                "missing bucket list")
        require(all(isinstance(b, int) for b in h["buckets"]), hpath,
                "non-integer bucket")


def check_trace(trace, path):
    check_typed_fields(trace, {"capacity": int, "emitted": int,
                               "dropped": int}, path)
    require(isinstance(trace.get("events"), list), path,
            "missing event list")
    retained = trace["emitted"] - trace["dropped"]
    require(len(trace["events"]) == retained, path,
            f"{len(trace['events'])} events != emitted-dropped {retained}")
    require(len(trace["events"]) <= trace["capacity"], path,
            "more events than capacity (trace not bounded)")
    last_t = None
    for i, ev in enumerate(trace["events"]):
        epath = f"{path}.events[{i}]"
        check_typed_fields(ev, {"t_us": int, "snapshot": int, "worker": int},
                           epath)
        require(ev.get("type") in EVENT_TYPES, epath,
                f"unknown event type {ev.get('type')!r}")
        require(isinstance(ev.get("args"), list) and len(ev["args"]) == 6 and
                all(isinstance(a, int) for a in ev["args"]), epath,
                "args must be 6 integers")
        if last_t is not None:
            require(ev["t_us"] >= last_t, epath,
                    "event timestamps not monotonic")
        last_t = ev["t_us"]


def check_run(run, path):
    require(run.get("mechanism") in MECHANISMS, path,
            f"unknown mechanism {run.get('mechanism')!r}")
    require(run.get("pass") in PASSES, path,
            f"unknown memo pass {run.get('pass')!r}")
    require(isinstance(run.get("table"), str) and run["table"], path,
            "missing result table name")
    require(isinstance(run.get("iterations"), list) and run["iterations"],
            path, "missing per-iteration breakdown")
    for i, it in enumerate(run["iterations"]):
        ipath = f"{path}.iterations[{i}]"
        check_typed_fields(it, ITERATION_FIELDS, ipath)
        phases = (it["io_us"] + it["spt_build_us"] + it["query_eval_us"] +
                  it["index_create_us"] + it["udf_us"])
        require(it["total_us"] == phases, ipath,
                "total_us != sum of phase times")
    check_metrics(run.get("metrics"), f"{path}.metrics")
    check_trace(run.get("trace"), f"{path}.trace")
    # Cross-check: the trace's run_end iteration count matches both the
    # rendered table and the published rql.iterations counter.
    run_ends = [e for e in run["trace"]["events"] if e["type"] == "run_end"]
    if run_ends:
        require(run_ends[-1]["args"][0] == len(run["iterations"]), path,
                "run_end iteration count != breakdown rows")
    counters = run["metrics"]["counters"]
    require(counters.get("rql.iterations") == len(run["iterations"]), path,
            "rql.iterations != breakdown rows")
    require(counters.get("rql.runs") == 1, path, "rql.runs != 1 in delta")
    # Memo cross-checks: counter deltas agree with the per-iteration rows,
    # and the cold/warm contract holds — a cold pass over a fresh memo hits
    # nothing; a warm pass replays at least one iteration from the memo.
    memo_rows = sum(1 for it in run["iterations"] if it["memo_hit"])
    require(counters.get("rql.memo_hits", 0) == memo_rows, path,
            "rql.memo_hits != memo_hit rows")
    # Prefetch cross-checks: the per-iteration kPrefetch rows sum to the
    # published counters (hits can also land on replayed/final iterations
    # whose rows carry no kPrefetch event, so issued is the exact check).
    pf_issued = sum(it["prefetch_issued"] for it in run["iterations"])
    require(counters.get("rql.prefetch_issued", 0) >= pf_issued, path,
            "rql.prefetch_issued < per-iteration prefetch rows")
    require(counters.get("rql.prefetch_hits", 0) <=
            counters.get("rql.prefetch_issued", 0), path,
            "more prefetch hits than pages issued")
    require(counters.get("rql.prefetch_wasted", 0) <=
            counters.get("rql.prefetch_issued", 0), path,
            "more prefetch waste than pages issued")
    if run["pass"] == "cold":
        require(memo_rows == 0, path, "cold pass served memo hits")
        require(counters.get("rql.memo_misses", 0) > 0, path,
                "cold pass published no memo entries")
    else:
        require(memo_rows > 0, path, "warm pass replayed nothing")


def check_report(doc):
    check_typed_fields(doc, {"snapshots": int, "workers": int,
                             "trace_capacity": int}, "$")
    require(isinstance(doc.get("runs"), list), "$", "missing runs array")
    seen = set()
    for i, run in enumerate(doc["runs"]):
        check_run(run, f"$.runs[{i}]")
        seen.add((run["mechanism"], run["pass"]))
    want = {(m, p) for m in MECHANISMS for p in PASSES}
    require(seen == want, "$.runs",
            f"mechanism passes missing: {sorted(want - seen)}")
    check_typed_fields(doc.get("memo"), {"entries": int, "bytes": int,
                                         "log_bytes": int, "evictions": int},
                       "$.memo")
    require(doc["memo"]["entries"] > 0, "$.memo",
            "memo table empty after the cold passes")
    check_typed_fields(doc.get("shared_cache"),
                       {"entries": int, "bytes": int, "shared_hits": int,
                        "misses": int, "coalesced_decodes": int,
                        "inserts": int, "evictions": int,
                        "abandoned_decodes": int,
                        "truncate_invalidations": int},
                       "$.shared_cache")
    cache = doc["shared_cache"]
    require(cache["misses"] > 0, "$.shared_cache",
            "no cold decodes — the cache was never exercised")
    require(cache["shared_hits"] > 0, "$.shared_cache",
            "no cross-run hits — eight passes over one store must share")
    require(cache["inserts"] <= cache["misses"], "$.shared_cache",
            "more publishes than claimed decodes")
    require(cache["entries"] <= cache["inserts"], "$.shared_cache",
            "more resident entries than publishes")
    check_typed_fields(doc.get("prefetch"),
                       {"issued": int, "hits": int, "wasted": int,
                        "cancelled": int, "overlap_jobs": int,
                        "overlap_sum_us": int},
                       "$.prefetch")
    pf = doc["prefetch"]
    require(pf["hits"] + pf["wasted"] <= pf["issued"], "$.prefetch",
            "hits + wasted exceed pages issued")
    if doc["workers"] == 1:
        require(pf["overlap_jobs"] > 0, "$.prefetch",
                "sequential report ran no prefetch jobs")
    check_metrics(doc.get("final"), "$.final")
    require("rql.pagelog.diff_depth" in doc["final"]["histograms"],
            "$.final.histograms", "missing rql.pagelog.diff_depth")
    require("rql.prefetch.overlap_us" in doc["final"]["histograms"],
            "$.final.histograms", "missing rql.prefetch.overlap_us")


def main():
    if len(sys.argv) != 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    try:
        with open(sys.argv[1]) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_report_json: cannot load {sys.argv[1]}: {e}",
              file=sys.stderr)
        return 1
    try:
        check_report(doc)
    except SchemaError as e:
        print(f"check_report_json: {e}", file=sys.stderr)
        return 1
    print(f"check_report_json: {sys.argv[1]} ok "
          f"({len(doc['runs'])} runs)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

// Interactive shell for the RQL database: a sqlite3-style REPL with the
// Retro snapshot extensions and the RQL mechanisms available both as C++
// driven dot-commands and as the paper's UDF-embedded SQL form.
//
// The REPL core (statement buffering, dot commands, table rendering)
// lives in src/server/repl.h and runs against either backend:
//
//   rql_shell [path-prefix]       embedded: persistent databases
//                                 <prefix>_data.* / <prefix>_meta.*
//                                 (in-memory when omitted)
//   rql_shell --connect SOCKET    socket client of rql_serverd
//
// Client-mode extras:
//   --pull-stats                  print the server's kStats JSON and exit
//                                 (CI smoke checks pipe this into
//                                 tools/check_server_json.py)
//   --run MECH QS QQ TABLE        submit one scheduled RQL run, wait for
//                                 its completion and print the summary
//                                 (MECH: collate | aggvar | aggtable |
//                                 intervals; aggvar reads the aggregate
//                                 function from --extra)
//   --extra ARG                   mechanism extra argument
//   --workers N                   parallel workers to request

#include <cstdio>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "server/client.h"
#include "server/repl.h"
#include "server/server.h"
#include "sql/database.h"
#include "storage/env.h"

namespace {

using rql::server::Client;
using rql::server::Mechanism;

int Usage() {
  std::fprintf(stderr,
               "usage: rql_shell [path-prefix]\n"
               "       rql_shell --connect SOCKET [--pull-stats]\n"
               "       rql_shell --connect SOCKET --run MECH QS QQ TABLE\n"
               "                 [--extra ARG] [--workers N]\n");
  return 2;
}

int RunEmbedded(const std::string& prefix, bool persistent) {
  rql::storage::InMemoryEnv mem_env;
  rql::storage::PosixEnv posix_env;
  rql::storage::Env* env = persistent
                               ? static_cast<rql::storage::Env*>(&posix_env)
                               : &mem_env;
  auto data = rql::sql::Database::Open(env, prefix + "_data");
  auto meta = rql::sql::Database::Open(env, prefix + "_meta");
  if (!data.ok() || !meta.ok()) {
    std::fprintf(stderr, "cannot open databases: %s\n",
                 (!data.ok() ? data.status() : meta.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  rql::RqlEngine engine(data->get(), meta->get());
  if (!engine.EnsureSnapIds().ok() || !engine.RegisterUdfs().ok()) {
    std::fprintf(stderr, "cannot initialize RQL\n");
    return 1;
  }
  rql::server::EmbeddedBackend backend(
      data->get(), meta->get(), &engine,
      std::string("rql shell — ") + (persistent ? "persistent" : "in-memory") +
          " databases '" + prefix + "_*'");
  return rql::server::RunRepl(std::cin, std::cout, &backend, true);
}

int RunOnce(Client* client, const std::string& mech_name,
            const std::string& qs, const std::string& qq,
            const std::string& table, const std::string& extra,
            int workers) {
  Mechanism mech;
  if (mech_name == "collate") {
    mech = Mechanism::kCollateData;
  } else if (mech_name == "aggvar") {
    mech = Mechanism::kAggregateDataInVariable;
  } else if (mech_name == "aggtable") {
    mech = Mechanism::kAggregateDataInTable;
  } else if (mech_name == "intervals") {
    mech = Mechanism::kCollateDataIntoIntervals;
  } else {
    std::fprintf(stderr, "unknown mechanism '%s'\n", mech_name.c_str());
    return 2;
  }
  auto run_id = client->StartRun(mech, qs, qq, table, extra, workers);
  if (!run_id.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 run_id.status().ToString().c_str());
    return 1;
  }
  auto done = client->WaitRun(*run_id);
  if (!done.ok()) {
    std::fprintf(stderr, "wait failed: %s\n",
                 done.status().ToString().c_str());
    return 1;
  }
  if (!done->status.ok()) {
    std::fprintf(stderr, "run %llu failed: %s\n",
                 static_cast<unsigned long long>(*run_id),
                 done->status.ToString().c_str());
    return 1;
  }
  std::printf("run %llu ok: %u iterations, %.2f ms, "
              "%lld shared page hits, %lld coalesced decodes, "
              "%lld skipped\n",
              static_cast<unsigned long long>(*run_id), done->iterations,
              done->total_us / 1000.0,
              static_cast<long long>(done->shared_page_hits),
              static_cast<long long>(done->coalesced_decodes),
              static_cast<long long>(done->iterations_skipped));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string prefix = "shell";
  bool persistent = false;
  bool pull_stats = false;
  std::string run_mech, run_qs, run_qq, run_table, run_extra;
  int workers = 1;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--connect") {
      if (i + 1 >= argc) return Usage();
      socket_path = argv[++i];
    } else if (arg == "--pull-stats") {
      pull_stats = true;
    } else if (arg == "--run") {
      if (i + 4 >= argc) return Usage();
      run_mech = argv[++i];
      run_qs = argv[++i];
      run_qq = argv[++i];
      run_table = argv[++i];
    } else if (arg == "--extra") {
      if (i + 1 >= argc) return Usage();
      run_extra = argv[++i];
    } else if (arg == "--workers") {
      if (i + 1 >= argc) return Usage();
      workers = std::atoi(argv[++i]);
    } else if (arg[0] == '-') {
      return Usage();
    } else {
      prefix = arg;
      persistent = true;
    }
  }

  if (socket_path.empty()) {
    if (pull_stats || !run_mech.empty()) return Usage();
    return RunEmbedded(prefix, persistent);
  }

  auto client = Client::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "cannot connect to %s: %s\n", socket_path.c_str(),
                 client.status().ToString().c_str());
    return 1;
  }
  if (pull_stats) {
    auto json = (*client)->StatsJson();
    if (!json.ok()) {
      std::fprintf(stderr, "stats pull failed: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::fputs(json->c_str(), stdout);
    return 0;
  }
  if (!run_mech.empty()) {
    return RunOnce(client->get(), run_mech, run_qs, run_qq, run_table,
                   run_extra, workers);
  }
  rql::server::RemoteBackend backend(
      client->get(), "rql shell — connected to " + socket_path +
                         " (session " +
                         std::to_string((*client)->session_id()) + ")");
  return rql::server::RunRepl(std::cin, std::cout, &backend, true);
}

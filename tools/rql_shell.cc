// Interactive shell for the RQL database: a sqlite3-style REPL with the
// Retro snapshot extensions and the RQL mechanisms available both as C++
// driven dot-commands and as the paper's UDF-embedded SQL form.
//
// Usage:
//   rql_shell [path-prefix]     # persistent databases <prefix>_data.* /
//                               # <prefix>_meta.* ; in-memory when omitted
//
// Dot commands:
//   .help                   this text
//   .tables                 list tables (data database)
//   .indexes                list indexes (data database)
//   .snapshot [label]       COMMIT WITH SNAPSHOT + SnapIds entry
//   .snapshots              show the SnapIds table
//   .meta <sql>             run SQL on the metadata database (SnapIds,
//                           RQL result tables; RQL UDFs are registered)
//   .stats                  cost breakdown of the last RQL run
//   .truncate <keep_from>   drop snapshots older than <keep_from> and
//                           compact the archive (retention)
//   .quit
//
// Everything else is SQL executed on the data database, including
// SELECT AS OF <sid> ... and BEGIN; ... COMMIT WITH SNAPSHOT;

#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "rql/rql.h"
#include "sql/database.h"
#include "storage/env.h"

namespace {

using rql::RqlEngine;
using rql::Status;
using rql::sql::Database;
using rql::sql::Row;

void PrintTable(const std::vector<std::string>& columns,
                const std::vector<Row>& rows) {
  std::vector<size_t> widths(columns.size());
  for (size_t c = 0; c < columns.size(); ++c) widths[c] = columns[c].size();
  std::vector<std::vector<std::string>> cells;
  for (const Row& row : rows) {
    std::vector<std::string> line;
    for (size_t c = 0; c < row.size(); ++c) {
      line.push_back(row[c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], line[c].size());
    }
    cells.push_back(std::move(line));
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    std::printf("%-*s  ", static_cast<int>(widths[c]), columns[c].c_str());
  }
  std::printf("\n");
  for (size_t c = 0; c < columns.size(); ++c) {
    std::printf("%s  ", std::string(widths[c], '-').c_str());
  }
  std::printf("\n");
  for (const auto& line : cells) {
    for (size_t c = 0; c < line.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), line[c].c_str());
    }
    std::printf("\n");
  }
  std::printf("(%zu row%s)\n", cells.size(), cells.size() == 1 ? "" : "s");
}

void RunSql(Database* db, const std::string& sql) {
  auto result = db->Query(sql);
  if (!result.ok()) {
    std::printf("error: %s\n", result.status().ToString().c_str());
    return;
  }
  if (!result->columns.empty() || !result->rows.empty()) {
    PrintTable(result->columns, result->rows);
  } else {
    std::printf("ok\n");
  }
}

void ShowStats(RqlEngine* engine) {
  const rql::RqlRunStats& stats = engine->last_run_stats();
  if (stats.iterations.empty()) {
    std::printf("no RQL run recorded yet\n");
    return;
  }
  std::printf("%-10s %10s %10s %10s %10s %8s %8s\n", "snapshot", "io_us",
              "spt_us", "query_us", "udf_us", "plog_pg", "rows");
  for (const rql::RqlIterationStats& it : stats.iterations) {
    std::printf("%-10u %10lld %10lld %10lld %10lld %8lld %8lld\n",
                it.snapshot, static_cast<long long>(it.io_us),
                static_cast<long long>(it.spt_build_us),
                static_cast<long long>(it.query_eval_us),
                static_cast<long long>(it.udf_us),
                static_cast<long long>(it.pagelog_pages),
                static_cast<long long>(it.qq_rows));
  }
  std::printf("total: %.2f ms over %zu iterations\n",
              stats.TotalUs() / 1000.0, stats.iterations.size());
}

constexpr char kHelp[] = R"(commands:
  .help                 this text
  .tables / .indexes    list schema objects in the data database
  .snapshot [label]     declare a snapshot (COMMIT WITH SNAPSHOT)
  .snapshots            show SnapIds
  .meta <sql>           SQL on the metadata database (RQL UDFs live here,
                        e.g. SELECT CollateData(snap_id, 'SELECT ...', 'T')
                        FROM SnapIds;)
  .stats                cost breakdown of the last RQL run
  .truncate <keep>      drop snapshots with id < keep; compact the archive
  .quit                 exit
anything else: SQL on the data database (AS OF, COMMIT WITH SNAPSHOT, ...)
)";

}  // namespace

int main(int argc, char** argv) {
  rql::storage::InMemoryEnv mem_env;
  rql::storage::PosixEnv posix_env;
  rql::storage::Env* env = &mem_env;
  std::string prefix = "shell";
  if (argc > 1) {
    env = &posix_env;
    prefix = argv[1];
  }

  auto data = Database::Open(env, prefix + "_data");
  auto meta = Database::Open(env, prefix + "_meta");
  if (!data.ok() || !meta.ok()) {
    std::fprintf(stderr, "cannot open databases: %s\n",
                 (!data.ok() ? data.status() : meta.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  RqlEngine engine(data->get(), meta->get());
  if (!engine.EnsureSnapIds().ok() || !engine.RegisterUdfs().ok()) {
    std::fprintf(stderr, "cannot initialize RQL\n");
    return 1;
  }

  std::printf("rql shell — %s databases '%s_*'; .help for commands\n",
              argc > 1 ? "persistent" : "in-memory", prefix.c_str());
  std::string buffer;
  std::string line;
  while (true) {
    std::printf("%s", buffer.empty() ? "rql> " : "...> ");
    std::fflush(stdout);
    if (!std::getline(std::cin, line)) break;

    if (buffer.empty() && !line.empty() && line[0] == '.') {
      std::istringstream iss(line);
      std::string cmd;
      iss >> cmd;
      if (cmd == ".quit" || cmd == ".exit") break;
      if (cmd == ".help") {
        std::printf("%s", kHelp);
      } else if (cmd == ".tables") {
        for (const auto& [key, table] :
             (*data)->catalog()->data().tables) {
          std::printf("%s (%s)\n", table.name.c_str(),
                      table.schema.Serialize().c_str());
        }
      } else if (cmd == ".indexes") {
        for (const auto& [key, index] :
             (*data)->catalog()->data().indexes) {
          std::printf("%s ON %s\n", index.name.c_str(),
                      index.table.c_str());
        }
      } else if (cmd == ".snapshot") {
        std::string label;
        std::getline(iss, label);
        auto snap = engine.CommitWithSnapshot("", label);
        if (snap.ok()) {
          std::printf("declared snapshot %u\n", *snap);
        } else {
          std::printf("error: %s\n", snap.status().ToString().c_str());
        }
      } else if (cmd == ".snapshots") {
        RunSql(meta->get(), "SELECT * FROM SnapIds");
      } else if (cmd == ".meta") {
        std::string sql;
        std::getline(iss, sql);
        RunSql(meta->get(), sql);
        (void)engine.FinishUdfRuns();
      } else if (cmd == ".stats") {
        ShowStats(&engine);
      } else if (cmd == ".truncate") {
        unsigned keep = 0;
        iss >> keep;
        if (keep == 0) {
          std::printf("usage: .truncate <keep_from_snapshot_id>\n");
        } else {
          auto s = (*data)->store()->TruncateHistory(keep);
          if (s.ok()) {
            std::printf("history truncated; earliest snapshot is now %u\n",
                        (*data)->store()->earliest_snapshot());
          } else {
            std::printf("error: %s\n", s.ToString().c_str());
          }
        }
      } else {
        std::printf("unknown command %s (.help)\n", cmd.c_str());
      }
      continue;
    }

    buffer += line;
    buffer += '\n';
    // Execute once the statement list is terminated.
    std::string trimmed = buffer;
    while (!trimmed.empty() &&
           (trimmed.back() == '\n' || trimmed.back() == ' ')) {
      trimmed.pop_back();
    }
    if (trimmed.empty()) {
      buffer.clear();
      continue;
    }
    if (trimmed.back() != ';') continue;
    RunSql(data->get(), buffer);
    buffer.clear();
  }
  std::printf("\nbye\n");
  return 0;
}

// Standalone crash-recovery torture driver.
//
// Runs the snapshotting TPC-H update workload fault-free to enumerate
// every durability sync point, then once per sync point with a simulated
// crash at that point, recovering and verifying after each (see
// tpch/crash_torture.h). Exits non-zero on the first violated invariant.
//
// Usage:
//   crash_torture [--sf=0.0002] [--snapshots=5] [--orders=2] [--seed=42]
//                 [--max-kill-points=0] [--quiet]

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "tpch/crash_torture.h"

namespace {

bool ParseFlag(const char* arg, const char* name, std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (std::strncmp(arg, prefix.c_str(), prefix.size()) != 0) return false;
  *value = arg + prefix.size();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  rql::tpch::TortureConfig config;
  config.verbose = true;
  for (int i = 1; i < argc; ++i) {
    std::string v;
    if (ParseFlag(argv[i], "sf", &v)) {
      config.scale_factor = std::atof(v.c_str());
    } else if (ParseFlag(argv[i], "snapshots", &v)) {
      config.snapshots = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "orders", &v)) {
      config.orders_per_snapshot = std::atoi(v.c_str());
    } else if (ParseFlag(argv[i], "seed", &v)) {
      config.seed = static_cast<uint64_t>(std::atoll(v.c_str()));
    } else if (ParseFlag(argv[i], "max-kill-points", &v)) {
      config.max_kill_points = std::atoi(v.c_str());
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      config.verbose = false;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      return 2;
    }
  }

  std::printf("crash torture: sf=%g snapshots=%d orders/snapshot=%d seed=%llu\n",
              config.scale_factor, config.snapshots,
              config.orders_per_snapshot,
              static_cast<unsigned long long>(config.seed));
  rql::tpch::TortureReport report;
  rql::Status s = rql::tpch::RunCrashTorture(config, &report);
  for (const std::string& line : report.log) {
    std::printf("%s\n", line.c_str());
  }
  if (!s.ok()) {
    std::fprintf(stderr, "FAILED after %d/%d kill points: %s\n",
                 report.completed_runs, report.sync_points,
                 s.ToString().c_str());
    return 1;
  }
  std::printf(
      "OK: %d sync points enumerated, %d kill points exercised, "
      "%d recovered and verified\n",
      report.sync_points, report.kill_points, report.completed_runs);
  return 0;
}
